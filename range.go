package bpagg

import (
	"context"
	"fmt"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/rangeidx"
	"bpagg/internal/vbp"
)

// Range and window aggregates over row positions (DESIGN.md §16).
//
// A filter-free Range/Window aggregate is answered from the table's
// prefix-sum range index (internal/rangeidx): SUM/COUNT/AVG over any row
// range cost one 128-bit prefix difference plus two masked boundary
// segments, MIN/MAX one sparse-table lookup plus the same fringes —
// independent of the range width. The index is built lazily on the first
// Range/Window call and maintained incrementally by every table append.
//
// Appends run concurrently with range queries: each append publishes a new
// immutable epoch through an atomic pointer, and every query pins exactly
// one epoch — it sees either the table before an append or after it, never
// a torn tail segment. Queries with Where clauses (or a materialized
// Selection, or on NULL-bearing columns) fall back to the scan pipeline
// with the range as one more conjunctive filter, bit-identical to the
// index path.

// tableEpoch is one published index state: the row high-water mark and a
// per-column snapshot. Columns carrying NULLs are absent — their range
// aggregates take the fallback path, where the validity bitmap applies.
type tableEpoch struct {
	rows int
	cols map[string]*rangeidx.Snapshot
}

// segRows returns the column's segment size in tuples — the unit the range
// index seals at.
func (c *Column) segRows() int {
	if c.layout == VBP {
		return vbp.SegBits
	}
	return c.h.ValuesPerSegment()
}

// rangeFringe captures the frozen word view over the first sealed
// segments, the fringe kernel backing of one epoch.
func (c *Column) rangeFringe(sealed int) rangeidx.Fringe {
	if c.layout == VBP {
		return c.v.Freeze(sealed)
	}
	return c.h.Freeze(sealed)
}

// segCache adapts a column's per-segment aggregate caches to the index
// builder's exactness contract: entries are vouched for only when the
// caches are live (not invalidated by zone adoption or resumed appends)
// and the code width guarantees the uint64 zSum cannot itself have
// wrapped. Otherwise the builder recomputes from the frozen words, so the
// index is exact regardless of cache staleness.
type segCache struct{ c *Column }

func (sc segCache) SegmentExact(seg int) (sum, mn, mx uint64, ok bool) {
	if sc.c.k > core.SumCacheExactK {
		return 0, 0, 0, false
	}
	var okS, okR bool
	if sc.c.layout == VBP {
		sum, okS = sc.c.v.SegmentSum(seg)
		mn, mx, okR = sc.c.v.SegmentRangeExact(seg)
	} else {
		sum, okS = sc.c.h.SegmentSum(seg)
		mn, mx, okR = sc.c.h.SegmentRangeExact(seg)
	}
	if !okS || !okR {
		return 0, 0, 0, false
	}
	return sum, mn, mx, true
}

// pinEpoch returns the current epoch, building and publishing the first
// one on demand (double-checked under the append lock). The returned
// epoch is immutable: concurrent appends publish successors, never mutate
// a published one.
func (t *Table) pinEpoch() *tableEpoch {
	if ep := t.epoch.Load(); ep != nil {
		return ep
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ep := t.epoch.Load(); ep != nil {
		return ep
	}
	t.ridx = make(map[string]*rangeidx.Builder, len(t.names))
	t.publishEpochLocked()
	return t.epoch.Load()
}

// publishEpochLocked extends every column's index builder to the current
// row count and publishes a fresh epoch. Caller holds t.mu; a no-op until
// the first Range/Window call allocates t.ridx. Sealed segments index in
// O(log S) amortized; the open tail (at most one segment per column) is
// copied to plain values so queries never read words an append mutates.
func (t *Table) publishEpochLocked() {
	if t.ridx == nil {
		return
	}
	ep := &tableEpoch{rows: t.rows, cols: make(map[string]*rangeidx.Snapshot, len(t.names))}
	for _, name := range t.names {
		c := t.cols[name]
		if c.nulls != nil {
			delete(t.ridx, name)
			continue
		}
		b := t.ridx[name]
		if b == nil {
			b = rangeidx.NewBuilder(c.segRows())
			t.ridx[name] = b
		}
		sealed := c.Len() / b.SegRows()
		fr := c.rangeFringe(sealed)
		b.Extend(c.Len(), segCache{c}, fr)
		tail := make([]uint64, c.Len()-sealed*b.SegRows())
		for i := range tail {
			tail[i] = c.Value(sealed*b.SegRows() + i)
		}
		ep.cols[name] = b.Snapshot(c.Len(), tail, fr)
	}
	t.epoch.Store(ep)
}

// Range restricts the query's aggregates to rows [lo, hi) by position
// (0-based, half-open; hi clips to the table). Filter-free queries answer
// from the prefix-sum range index in O(1); queries with Where clauses
// treat the range as one more conjunctive filter. It panics when lo is
// negative or hi < lo.
func (q *Query) Range(lo, hi int) *RangeQuery {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("bpagg: invalid row range [%d, %d)", lo, hi))
	}
	return &RangeQuery{q: q, lo: lo, hi: hi}
}

// RangeQuery aggregates over a row-position range. See Query.Range.
type RangeQuery struct {
	q      *Query
	lo, hi int
}

// snap returns the pinned index snapshot for the column when the fast
// path applies: no Where clauses, no materialized selection, and the
// column is indexed (NULL-free). Each aggregate call pins its own epoch.
func (r *RangeQuery) snap(column string) (*rangeidx.Snapshot, bool) {
	if len(r.q.clauses) != 0 || r.q.sel != nil {
		return nil, false
	}
	s := r.q.t.pinEpoch().cols[column]
	return s, s != nil
}

// selection materializes the fallback selection: the query's filter
// bitmap intersected with the range mask. The query's own selection is
// left untouched — later aggregates without the range see all rows.
func (r *RangeQuery) selection() *Bitmap {
	return r.q.Selection().Clone().And(rangeBitmap(r.q.t.rows, r.lo, r.hi))
}

// Selection materializes and returns the range's row mask intersected
// with the query's filter bitmap. The caller owns the result and may
// combine it with arbitrary bitmaps; the query's own selection is left
// untouched.
func (r *RangeQuery) Selection() *Bitmap {
	return r.selection()
}

// record books one index-served aggregate into the query's collector.
func (r *RangeQuery) record(n uint64, st rangeidx.Stats, start time.Time) {
	r.q.stats.Record(ExecStats{
		Aggregates:          n,
		AggNanos:            time.Since(start).Nanoseconds(),
		SegmentsIndexServed: st.IndexSegments,
		RangeFringeWords:    st.FringeWords,
	})
}

// CountRows returns the number of rows passing the filter within the
// range.
func (r *RangeQuery) CountRows() uint64 {
	cnt, err := r.CountRowsContext(nil)
	fusedMust(err)
	return cnt
}

// CountRowsContext is CountRows honoring ctx.
func (r *RangeQuery) CountRowsContext(ctx context.Context) (uint64, error) {
	if err := orBackground(ctx).Err(); err != nil {
		return 0, err
	}
	if len(r.q.clauses) == 0 && r.q.sel == nil {
		start := time.Now()
		lo, hi := clipRange(r.lo, r.hi, r.q.t.pinEpoch().rows)
		r.record(1, rangeidx.Stats{}, start)
		return uint64(hi - lo), nil
	}
	return uint64(r.selection().Count()), nil
}

// Count returns the number of non-NULL rows of the named column within
// the range that pass the filter.
func (r *RangeQuery) Count(column string) uint64 {
	cnt, err := r.CountContext(nil, column)
	fusedMust(err)
	return cnt
}

// CountContext is Count honoring ctx. Indexed columns are NULL-free, so
// the filter-free count is the clipped range width; NULL-bearing columns
// count their validity over the fallback selection.
func (r *RangeQuery) CountContext(ctx context.Context, column string) (uint64, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, err
	}
	if s, ok := r.snap(column); ok {
		if err := orBackground(ctx).Err(); err != nil {
			return 0, err
		}
		start := time.Now()
		lo, hi := clipRange(r.lo, r.hi, s.Rows())
		r.record(1, rangeidx.Stats{}, start)
		return uint64(hi - lo), nil
	}
	return col.CountContext(ctx, r.selection())
}

// Sum aggregates SUM over the named column within the range. A sum
// exceeding uint64 panics with *OverflowError (the index carries exact
// 128-bit prefixes, so the true total is always known).
func (r *RangeQuery) Sum(column string) uint64 {
	v, err := r.SumContext(nil, column)
	fusedMust(err)
	return v
}

// SumContext is Sum honoring ctx; overflow returns *OverflowError.
func (r *RangeQuery) SumContext(ctx context.Context, column string) (uint64, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, err
	}
	if s, ok := r.snap(column); ok {
		if err := orBackground(ctx).Err(); err != nil {
			return 0, err
		}
		start := time.Now()
		hi, lo, st := s.Sum(r.lo, r.hi)
		r.record(1, st, start)
		if hi != 0 {
			return 0, &OverflowError{Hi: hi, Lo: lo}
		}
		return lo, nil
	}
	return col.SumContext(ctx, r.selection(), r.q.execs...)
}

// Min aggregates MIN over the named column within the range; ok is false
// when no row qualifies.
func (r *RangeQuery) Min(column string) (uint64, bool) {
	v, ok, err := r.MinContext(nil, column)
	fusedMust(err)
	return v, ok
}

// Max aggregates MAX over the named column within the range.
func (r *RangeQuery) Max(column string) (uint64, bool) {
	v, ok, err := r.MaxContext(nil, column)
	fusedMust(err)
	return v, ok
}

// MinContext is Min honoring ctx.
func (r *RangeQuery) MinContext(ctx context.Context, column string) (uint64, bool, error) {
	return r.extremeContext(ctx, column, true)
}

// MaxContext is Max honoring ctx.
func (r *RangeQuery) MaxContext(ctx context.Context, column string) (uint64, bool, error) {
	return r.extremeContext(ctx, column, false)
}

func (r *RangeQuery) extremeContext(ctx context.Context, column string, wantMin bool) (uint64, bool, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if s, ok := r.snap(column); ok {
		if err := orBackground(ctx).Err(); err != nil {
			return 0, false, err
		}
		start := time.Now()
		var v uint64
		var any bool
		var st rangeidx.Stats
		if wantMin {
			v, any, st = s.Min(r.lo, r.hi)
		} else {
			v, any, st = s.Max(r.lo, r.hi)
		}
		r.record(1, st, start)
		return v, any, nil
	}
	if wantMin {
		return col.MinContext(ctx, r.selection(), r.q.execs...)
	}
	return col.MaxContext(ctx, r.selection(), r.q.execs...)
}

// Avg aggregates AVG over the named column within the range; ok is false
// when no row qualifies.
func (r *RangeQuery) Avg(column string) (float64, bool) {
	v, ok, err := r.AvgContext(nil, column)
	fusedMust(err)
	return v, ok
}

// AvgContext is Avg honoring ctx. Matching the scan path's contract, a
// range whose sum exceeds uint64 returns *OverflowError.
func (r *RangeQuery) AvgContext(ctx context.Context, column string) (float64, bool, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	if s, ok := r.snap(column); ok {
		if err := orBackground(ctx).Err(); err != nil {
			return 0, false, err
		}
		start := time.Now()
		hi, lo, st := s.Sum(r.lo, r.hi)
		a, b := clipRange(r.lo, r.hi, s.Rows())
		r.record(1, st, start)
		if a == b {
			return 0, false, nil
		}
		if hi != 0 {
			return 0, false, &OverflowError{Hi: hi, Lo: lo}
		}
		return float64(lo) / float64(b-a), true, nil
	}
	return col.AvgContext(ctx, r.selection(), r.q.execs...)
}

// Median aggregates the lower MEDIAN within the range. Rank-family
// aggregates have no O(1) index form; they run on the scan pipeline with
// the range as a filter.
func (r *RangeQuery) Median(column string) (uint64, bool) {
	v, ok, err := r.MedianContext(nil, column)
	fusedMust(err)
	return v, ok
}

// MedianContext is Median honoring ctx.
func (r *RangeQuery) MedianContext(ctx context.Context, column string) (uint64, bool, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	return col.MedianContext(ctx, r.selection(), r.q.execs...)
}

// Rank returns the rank-th smallest qualifying value within the range.
func (r *RangeQuery) Rank(column string, rank uint64) (uint64, bool) {
	v, ok, err := r.RankContext(nil, column, rank)
	fusedMust(err)
	return v, ok
}

// RankContext is Rank honoring ctx.
func (r *RangeQuery) RankContext(ctx context.Context, column string, rank uint64) (uint64, bool, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	return col.RankContext(ctx, r.selection(), rank, r.q.execs...)
}

// Quantile returns the q-quantile (nearest rank) within the range.
func (r *RangeQuery) Quantile(column string, quantile float64) (uint64, bool) {
	v, ok, err := r.QuantileContext(nil, column, quantile)
	fusedMust(err)
	return v, ok
}

// QuantileContext is Quantile honoring ctx.
func (r *RangeQuery) QuantileContext(ctx context.Context, column string, quantile float64) (uint64, bool, error) {
	col, err := r.q.colErr(column)
	if err != nil {
		return 0, false, err
	}
	return col.QuantileContext(ctx, r.selection(), quantile, r.q.execs...)
}

// clipRange bounds [lo, hi) to a table of rows rows.
func clipRange(lo, hi, rows int) (int, int) {
	if hi > rows {
		hi = rows
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// rangeBitmap builds the selection of rows [lo, hi) word-wise: interior
// words set whole, the two boundary words masked — the bitmap analogue of
// the index's fringe decomposition.
func rangeBitmap(rows, lo, hi int) *Bitmap {
	lo, hi = clipRange(lo, hi, rows)
	b := bitvec.New(rows)
	if lo < hi {
		wa, wb := lo/64, (hi-1)/64
		for w := wa; w <= wb; w++ {
			m := ^uint64(0)
			if w == wa {
				m &= ^uint64(0) << uint(lo%64)
			}
			if rem := hi - w*64; rem < 64 {
				m &= uint64(1)<<uint(rem) - 1
			}
			b.SetWord(w, m)
		}
	}
	return &Bitmap{b: b}
}
