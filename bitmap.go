package bpagg

import "bpagg/internal/bitvec"

// Bitmap is a selection of rows — the filter bit vector F of the paper.
// Scans produce it, logical operators combine it, and aggregates consume
// it. Bit i corresponds to row i.
type Bitmap struct {
	b *bitvec.Bitmap
}

// NewBitmap returns an empty (all-false) selection of n rows.
func NewBitmap(n int) *Bitmap { return &Bitmap{b: bitvec.New(n)} }

// Len returns the number of rows covered by the selection.
func (m *Bitmap) Len() int { return m.b.Len() }

// Count returns the number of selected rows.
func (m *Bitmap) Count() int { return m.b.Count() }

// Get reports whether row i is selected.
func (m *Bitmap) Get(i int) bool { return m.b.Get(i) }

// Set marks row i selected.
func (m *Bitmap) Set(i int) { m.b.Set(i) }

// Clear unmarks row i.
func (m *Bitmap) Clear(i int) { m.b.Clear(i) }

// And intersects m with o in place and returns m (conjunctive predicates,
// paper §II-E).
func (m *Bitmap) And(o *Bitmap) *Bitmap {
	m.b.And(o.b)
	return m
}

// Or unions m with o in place and returns m.
func (m *Bitmap) Or(o *Bitmap) *Bitmap {
	m.b.Or(o.b)
	return m
}

// AndNot removes o's rows from m in place and returns m.
func (m *Bitmap) AndNot(o *Bitmap) *Bitmap {
	m.b.AndNot(o.b)
	return m
}

// Not complements the selection in place and returns m.
func (m *Bitmap) Not() *Bitmap {
	m.b.Not()
	return m
}

// Clone returns an independent copy of the selection.
func (m *Bitmap) Clone() *Bitmap { return &Bitmap{b: m.b.Clone()} }

// ForEach calls fn with each selected row index in ascending order.
func (m *Bitmap) ForEach(fn func(row int)) { m.b.ForEachOne(fn) }
