package bpagg

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/nbp"
)

// AccessMethod selects how an aggregate is evaluated. The paper positions
// its bit-parallel algorithms as "additional access methods for the
// optimizer to consider when the queries are not highly selective"
// (§III); Auto implements exactly that choice.
type AccessMethod int

const (
	// BitParallel always runs the paper's bit-parallel algorithms
	// (package core) — the default.
	BitParallel AccessMethod = iota
	// Reconstruct always runs the non-bit-parallel baseline: reconstruct
	// each selected value, aggregate in plain form. Optimal for highly
	// selective queries.
	Reconstruct
	// Auto picks per call: bit-parallel when the selection is dense
	// enough that whole-word processing wins, reconstruction when only a
	// sliver of tuples passed the filter.
	Auto
)

// Access selects the aggregate evaluation strategy.
func Access(m AccessMethod) ExecOption {
	return func(c *execConfig) { c.access = m }
}

// autoThreshold returns the selectivity below which reconstruction wins
// for the layout. The defaults come from the measured crossovers in
// EXPERIMENTS.md (Figure 5): VBP reconstruction costs k bit-gathers per
// value and loses early; HBP reconstruction is a handful of shifts and
// stays competitive until selections get fairly dense.
func autoThreshold(layout Layout) float64 {
	if layout == VBP {
		return 0.02
	}
	return 0.10
}

// useReconstruct resolves the access decision for one aggregate call.
func (c *Column) useReconstruct(eff *bitvec.Bitmap, o execConfig) bool {
	switch o.access {
	case Reconstruct:
		return true
	case Auto:
		n := c.Len()
		if n == 0 {
			return false
		}
		return float64(eff.Count())/float64(n) < autoThreshold(c.layout)
	default:
		return false
	}
}

// nbpSource returns the reconstruction interface of the packed layout.
func (c *Column) nbpSource() interface {
	At(i int) uint64
	Len() int
} {
	if c.layout == VBP {
		return c.v
	}
	return c.h
}

func nbpOptions(o execConfig) nbp.Options {
	return nbp.Options{Threads: o.par.Threads}
}
