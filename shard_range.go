package bpagg

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
)

// Range restricts the sharded query's aggregates to global rows [lo, hi)
// by position (0-based, half-open; hi clips to the store). Shard s covers
// rows [s·shardRows, s·shardRows+rows(s)) — only the tail shard can be
// partial — so the range translates to one local range per shard, and
// shards entirely outside it prune in the catalog pass alongside the
// predicate-bounds pruning. Each surviving shard answers its local range
// through its own Table.Range (index-served when the per-shard query is
// filter-free), and partials merge in shard order exactly like every
// other sharded aggregate. It panics when lo is negative or hi < lo.
func (q *ShardedQuery) Range(lo, hi int) *ShardedRangeQuery {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("bpagg: invalid row range [%d, %d)", lo, hi))
	}
	return &ShardedRangeQuery{q: q, lo: lo, hi: hi}
}

// ShardedRangeQuery aggregates over a global row range of a ShardedTable.
// See ShardedQuery.Range.
type ShardedRangeQuery struct {
	q      *ShardedQuery
	lo, hi int
}

// plan prunes shards on catalog bounds (every clause plus any probe
// clauses) and on range overlap, recording both prunes in the same
// ShardsScanned/ShardsPruned counters. It returns the surviving shard
// indices with each one's local [lo, hi) slice of the global range,
// parallel to the live list.
func (r *ShardedRangeQuery) plan(extra []shardClause) (live, los, his []int) {
	st := r.q.st
	live, los, his = r.q.scratch.live[:0], r.q.scratch.rlo[:0], r.q.scratch.rhi[:0]
	glo, ghi := clipRange(r.lo, r.hi, st.rows)
shards:
	for s := range st.shards {
		base := s * st.shardRows
		a, b := glo-base, ghi-base
		if a < 0 {
			a = 0
		}
		if n := st.shards[s].Rows(); b > n {
			b = n
		}
		if a >= b {
			continue
		}
		for _, cls := range [][]shardClause{r.q.clauses, extra} {
			for _, cl := range cls {
				sb := st.bounds[s][cl.col]
				if !sb.any || !cl.pred.mayMatch(sb.min, sb.max) {
					continue shards
				}
			}
		}
		live = append(live, s)
		los = append(los, a)
		his = append(his, b)
	}
	r.q.stats.Record(ExecStats{
		ShardsScanned: uint64(len(live)),
		ShardsPruned:  uint64(len(st.shards) - len(live)),
	})
	r.q.scratch.live, r.q.scratch.rlo, r.q.scratch.rhi = live, los, his
	return live, los, his
}

// CountRows returns the number of rows passing the filter within the
// range.
func (r *ShardedRangeQuery) CountRows() uint64 {
	c, err := r.CountRowsContext(context.Background())
	fusedMust(err)
	return c
}

// CountRowsContext is CountRows honoring ctx.
func (r *ShardedRangeQuery) CountRowsContext(ctx context.Context) (uint64, error) {
	live, los, his := r.plan(nil)
	counts := r.q.scratch.uints(0, len(live))
	err := r.q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		c, err := sq.Range(los[slot], his[slot]).CountRowsContext(ctx)
		counts[slot] = c
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Count returns the number of non-NULL rows of the named column within
// the range that pass the filter.
func (r *ShardedRangeQuery) Count(column string) uint64 {
	c, err := r.CountContext(context.Background(), column)
	fusedMust(err)
	return c
}

// CountContext is Count honoring ctx.
func (r *ShardedRangeQuery) CountContext(ctx context.Context, column string) (uint64, error) {
	if _, err := r.q.specIdxErr(column); err != nil {
		return 0, err
	}
	live, los, his := r.plan(nil)
	counts := r.q.scratch.uints(0, len(live))
	err := r.q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		c, err := sq.Range(los[slot], his[slot]).CountContext(ctx, column)
		counts[slot] = c
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Sum aggregates SUM over the named column within the range; overflow
// panics with *OverflowError.
func (r *ShardedRangeQuery) Sum(column string) uint64 {
	v, err := r.SumContext(context.Background(), column)
	fusedMust(err)
	return v
}

// SumContext is Sum honoring ctx; overflow returns *OverflowError with
// the exact 128-bit total merged from the per-shard partials.
func (r *ShardedRangeQuery) SumContext(ctx context.Context, column string) (uint64, error) {
	hi, lo, _, err := r.sumCountParts(ctx, column)
	if err != nil {
		return 0, err
	}
	if hi != 0 {
		return 0, &OverflowError{Hi: hi, Lo: lo}
	}
	return lo, nil
}

// sumCountParts merges per-shard 128-bit SUM partials and the column's
// non-NULL counts in one fan-out; a shard-local overflow report merges
// like any other partial.
func (r *ShardedRangeQuery) sumCountParts(ctx context.Context, column string) (hi, lo, cnt uint64, err error) {
	if _, err := r.q.specIdxErr(column); err != nil {
		return 0, 0, 0, err
	}
	live, los, his := r.plan(nil)
	phis := r.q.scratch.uints(0, len(live))
	plos := r.q.scratch.uints(1, len(live))
	cnts := r.q.scratch.uints(2, len(live))
	err = r.q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		rq := sq.Range(los[slot], his[slot])
		c, err := rq.CountContext(ctx, column)
		if err != nil {
			return err
		}
		cnts[slot] = c
		v, err := rq.SumContext(ctx, column)
		if err != nil {
			var ov *OverflowError
			if errors.As(err, &ov) {
				phis[slot], plos[slot] = ov.Hi, ov.Lo
				return nil
			}
			return err
		}
		plos[slot] = v
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for i := range plos {
		var carry uint64
		lo, carry = bits.Add64(lo, plos[i], 0)
		hi += phis[i] + carry
		cnt += cnts[i]
	}
	return hi, lo, cnt, nil
}

// Min aggregates MIN over the named column within the range.
func (r *ShardedRangeQuery) Min(column string) (uint64, bool) {
	v, ok, err := r.MinContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// Max aggregates MAX over the named column within the range.
func (r *ShardedRangeQuery) Max(column string) (uint64, bool) {
	v, ok, err := r.MaxContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// MinContext is Min honoring ctx.
func (r *ShardedRangeQuery) MinContext(ctx context.Context, column string) (uint64, bool, error) {
	return r.extremeContext(ctx, column, true)
}

// MaxContext is Max honoring ctx.
func (r *ShardedRangeQuery) MaxContext(ctx context.Context, column string) (uint64, bool, error) {
	return r.extremeContext(ctx, column, false)
}

func (r *ShardedRangeQuery) extremeContext(ctx context.Context, column string, wantMin bool) (uint64, bool, error) {
	if _, err := r.q.specIdxErr(column); err != nil {
		return 0, false, err
	}
	live, los, his := r.plan(nil)
	vals := r.q.scratch.uints(0, len(live))
	oks := r.q.scratch.bools(len(live))
	err := r.q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		rq := sq.Range(los[slot], his[slot])
		var v uint64
		var ok bool
		var err error
		if wantMin {
			v, ok, err = rq.MinContext(ctx, column)
		} else {
			v, ok, err = rq.MaxContext(ctx, column)
		}
		vals[slot], oks[slot] = v, ok
		return err
	})
	if err != nil {
		return 0, false, err
	}
	var best uint64
	found := false
	for i, ok := range oks {
		if !ok {
			continue
		}
		if !found || (wantMin && vals[i] < best) || (!wantMin && vals[i] > best) {
			best = vals[i]
		}
		found = true
	}
	return best, found, nil
}

// Avg aggregates AVG over the named column within the range.
func (r *ShardedRangeQuery) Avg(column string) (float64, bool) {
	v, ok, err := r.AvgContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// AvgContext is Avg honoring ctx. The count divisor is the filtered
// non-NULL row count, so the merged mean matches the flat engine exactly.
func (r *ShardedRangeQuery) AvgContext(ctx context.Context, column string) (float64, bool, error) {
	hi, lo, cnt, err := r.sumCountParts(ctx, column)
	if err != nil {
		return 0, false, err
	}
	if cnt == 0 {
		return 0, false, nil
	}
	if hi != 0 {
		return 0, false, &OverflowError{Hi: hi, Lo: lo}
	}
	return float64(lo) / float64(cnt), true, nil
}

// countLE counts filtered rows within the range whose column value is
// <= v, with the probe clause participating in shard pruning.
func (r *ShardedRangeQuery) countLE(ctx context.Context, column string, idx int, v uint64) (uint64, error) {
	extra := []shardClause{{name: column, col: idx, pred: LessEq(v)}}
	live, los, his := r.plan(extra)
	counts := r.q.scratch.uints(0, len(live))
	err := r.q.runShards(ctx, live, extra, func(slot, _ int, sq *Query) error {
		c, err := sq.Range(los[slot], his[slot]).CountRowsContext(ctx)
		counts[slot] = c
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// rankSearch is the range-limited twin of ShardedQuery.rankSearch: binary
// search on the value domain with every counting probe restricted to the
// range.
func (r *ShardedRangeQuery) rankSearch(ctx context.Context, column string,
	rankOf func(uint64) (uint64, bool)) (uint64, bool, error) {
	idx, err := r.q.specIdxErr(column)
	if err != nil {
		return 0, false, err
	}
	u, err := r.CountContext(ctx, column)
	if err != nil {
		return 0, false, err
	}
	rk, ok := rankOf(u)
	if !ok || rk < 1 || rk > u {
		return 0, false, nil
	}
	lo, hi := uint64(0), maxValForBits(r.q.st.specs[idx].bits)
	for lo < hi {
		mid := lo + (hi-lo)/2
		cnt, err := r.countLE(ctx, column, idx, mid)
		if err != nil {
			return 0, false, err
		}
		if cnt >= rk {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true, nil
}

// Median aggregates the lower MEDIAN over the named column within the
// range.
func (r *ShardedRangeQuery) Median(column string) (uint64, bool) {
	v, ok, err := r.MedianContext(context.Background(), column)
	fusedMust(err)
	return v, ok
}

// MedianContext is Median honoring ctx.
func (r *ShardedRangeQuery) MedianContext(ctx context.Context, column string) (uint64, bool, error) {
	return r.rankSearch(ctx, column, medianRank)
}

// Rank returns the rank-th smallest filtered value within the range.
func (r *ShardedRangeQuery) Rank(column string, rank uint64) (uint64, bool) {
	v, ok, err := r.RankContext(context.Background(), column, rank)
	fusedMust(err)
	return v, ok
}

// RankContext is Rank honoring ctx.
func (r *ShardedRangeQuery) RankContext(ctx context.Context, column string, rank uint64) (uint64, bool, error) {
	return r.rankSearch(ctx, column, func(uint64) (uint64, bool) { return rank, true })
}

// Quantile returns the q-quantile (nearest rank) within the range.
func (r *ShardedRangeQuery) Quantile(column string, quantile float64) (uint64, bool) {
	if quantile < 0 || quantile > 1 {
		panic(fmt.Sprintf("bpagg: quantile %v outside [0,1]", quantile))
	}
	v, ok, err := r.QuantileContext(context.Background(), column, quantile)
	fusedMust(err)
	return v, ok
}

// QuantileContext is Quantile honoring ctx.
func (r *ShardedRangeQuery) QuantileContext(ctx context.Context, column string, quantile float64) (uint64, bool, error) {
	if quantile < 0 || quantile > 1 || quantile != quantile {
		return 0, false, fmt.Errorf("bpagg: quantile %v outside [0,1]", quantile)
	}
	return r.rankSearch(ctx, column, quantileRank(quantile))
}

// Window partitions the store's rows into windows of size rows every step
// rows and aggregates each window — the sharded twin of Query.Window.
// Each window is one ShardedRangeQuery fan-out, so catalog pruning and
// local-range translation apply per window. It panics unless size and
// step are at least 1.
func (q *ShardedQuery) Window(size, step int) *ShardedWindowQuery {
	if size < 1 || step < 1 {
		panic(fmt.Sprintf("bpagg: invalid window size %d step %d", size, step))
	}
	return &ShardedWindowQuery{q: q, size: size, step: step}
}

// ShardedWindowQuery aggregates per window over a ShardedTable. Windows
// start at rows 0, step, 2·step, … while the start is below the store's
// row count; an empty store yields empty result slices.
type ShardedWindowQuery struct {
	q          *ShardedQuery
	size, step int
}

// windows enumerates the window start offsets.
func (w *ShardedWindowQuery) windows() []int {
	starts := []int{}
	for b := 0; b < w.q.st.rows; b += w.step {
		starts = append(starts, b)
	}
	return starts
}

// CountRows returns each window's filtered row count.
func (w *ShardedWindowQuery) CountRows() []uint64 {
	out, err := w.CountRowsContext(context.Background())
	fusedMust(err)
	return out
}

// CountRowsContext is CountRows honoring ctx.
func (w *ShardedWindowQuery) CountRowsContext(ctx context.Context) ([]uint64, error) {
	out := []uint64{}
	for _, b := range w.windows() {
		c, err := w.q.Range(b, b+w.size).CountRowsContext(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Sum aggregates SUM of the named column per window.
func (w *ShardedWindowQuery) Sum(column string) []uint64 {
	out, err := w.SumContext(context.Background(), column)
	fusedMust(err)
	return out
}

// SumContext is Sum honoring ctx; an overflowing window returns
// *OverflowError.
func (w *ShardedWindowQuery) SumContext(ctx context.Context, column string) ([]uint64, error) {
	out := []uint64{}
	for _, b := range w.windows() {
		v, err := w.q.Range(b, b+w.size).SumContext(ctx, column)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Min aggregates MIN of the named column per window.
func (w *ShardedWindowQuery) Min(column string) ([]uint64, []bool) {
	out, oks, err := w.MinContext(context.Background(), column)
	fusedMust(err)
	return out, oks
}

// Max aggregates MAX of the named column per window.
func (w *ShardedWindowQuery) Max(column string) ([]uint64, []bool) {
	out, oks, err := w.MaxContext(context.Background(), column)
	fusedMust(err)
	return out, oks
}

// MinContext is Min honoring ctx.
func (w *ShardedWindowQuery) MinContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return w.extremeContext(ctx, column, true)
}

// MaxContext is Max honoring ctx.
func (w *ShardedWindowQuery) MaxContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return w.extremeContext(ctx, column, false)
}

func (w *ShardedWindowQuery) extremeContext(ctx context.Context, column string, wantMin bool) ([]uint64, []bool, error) {
	out, oks := []uint64{}, []bool{}
	for _, b := range w.windows() {
		rq := w.q.Range(b, b+w.size)
		var v uint64
		var any bool
		var err error
		if wantMin {
			v, any, err = rq.MinContext(ctx, column)
		} else {
			v, any, err = rq.MaxContext(ctx, column)
		}
		if err != nil {
			return nil, nil, err
		}
		out, oks = append(out, v), append(oks, any)
	}
	return out, oks, nil
}

// Avg aggregates AVG of the named column per window.
func (w *ShardedWindowQuery) Avg(column string) ([]float64, []bool) {
	out, oks, err := w.AvgContext(context.Background(), column)
	fusedMust(err)
	return out, oks
}

// AvgContext is Avg honoring ctx.
func (w *ShardedWindowQuery) AvgContext(ctx context.Context, column string) ([]float64, []bool, error) {
	out, oks := []float64{}, []bool{}
	for _, b := range w.windows() {
		v, any, err := w.q.Range(b, b+w.size).AvgContext(ctx, column)
		if err != nil {
			return nil, nil, err
		}
		out, oks = append(out, v), append(oks, any)
	}
	return out, oks, nil
}
