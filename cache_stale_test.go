package bpagg

import "testing"

// These tests drive the segment-aggregate cache staleness machinery that
// the public API cannot reach directly: zone adoption (the
// deserialization path) flips cachesOff, and the fused kernels must then
// recompute all-match segments instead of serving a stale zSum. The
// differential sweep covers the public build/rebuild/reload states; this
// file covers the internal stale window in between.

// naiveSum is the straight-line reference for one column's values.
func naiveSum(vals []uint64) uint64 {
	var s uint64
	for _, v := range vals {
		s += v
	}
	return s
}

// segmentSum asks the layout column for its cached per-segment sum.
func segmentSum(c *Column, seg int) (uint64, bool) {
	if c.layout == VBP {
		return c.v.SegmentSum(seg)
	}
	return c.h.SegmentSum(seg)
}

// segSize returns the layout's values-per-segment (64 for VBP; HBP
// segments hold FieldsPerWord × SubSegments values).
func segSize(c *Column) int {
	if c.layout == VBP {
		return 64
	}
	return c.h.ValuesPerSegment()
}

// checkSegmentSums verifies every cached per-segment sum against a naive
// slice sum of that segment's values.
func checkSegmentSums(t *testing.T, c *Column, all []uint64, when string) {
	t.Helper()
	vps := segSize(c)
	for seg, off := 0, 0; off < len(all); seg, off = seg+1, off+vps {
		end := off + vps
		if end > len(all) {
			end = len(all)
		}
		if s, ok := segmentSum(c, seg); !ok || s != naiveSum(all[off:end]) {
			t.Fatalf("%s %s: SegmentSum(%d) = %d (%v), want %d",
				c.layout, when, seg, s, ok, naiveSum(all[off:end]))
		}
	}
}

// staleZones re-adopts the column's own (sound) zones, which marks the
// aggregate caches stale exactly as the deserialization path does.
func staleZones(t *testing.T, c *Column) {
	t.Helper()
	var err error
	if c.layout == VBP {
		zMin, zMax := c.v.Zones()
		err = c.v.SetZones(append([]uint64(nil), zMin...), append([]uint64(nil), zMax...))
	} else {
		zMin, zMax := c.h.Zones()
		err = c.h.SetZones(append([]uint64(nil), zMin...), append([]uint64(nil), zMax...))
	}
	if err != nil {
		t.Fatalf("SetZones: %v", err)
	}
}

func TestStaleCacheNeverServed(t *testing.T) {
	vals := make([]uint64, 130) // two full segments + a tail
	for i := range vals {
		vals[i] = uint64(i * 31 % 1000)
	}
	want := naiveSum(vals)
	for _, layout := range []Layout{VBP, HBP} {
		tbl := NewTable()
		tbl.AddColumn("a", layout, 10)
		tbl.AppendColumnar(map[string][]uint64{"a": vals})
		col := tbl.Column("a")

		fusedSum := func() uint64 {
			q := tbl.Query().Where("a", LessEq(1023))
			if !q.Fused("a") {
				t.Fatalf("%s: all-match query not fused", layout)
			}
			return q.Sum("a")
		}
		if got := fusedSum(); got != want {
			t.Fatalf("%s: warm-cache fused sum = %d, want %d", layout, got, want)
		}

		// Adopt zones: caches go stale; the cache accessor must refuse
		// and the fused path must recompute to the same answer.
		staleZones(t, col)
		if _, ok := segmentSum(col, 0); ok {
			t.Fatalf("%s: SegmentSum served a stale cache after SetZones", layout)
		}
		if got := fusedSum(); got != want {
			t.Fatalf("%s: stale-cache fused sum = %d, want %d", layout, got, want)
		}

		// Rebuild restores exact caches.
		col.RebuildSegmentAggregates()
		checkSegmentSums(t, col, vals, "rebuilt")
		if got := fusedSum(); got != want {
			t.Fatalf("%s: rebuilt fused sum = %d, want %d", layout, got, want)
		}
	}
}

// TestAppendKeepsCachesExact pins the append-path invariant the sweep's
// "-extra" cases rely on: appends into a warm column (including into a
// partially-filled final segment) keep zSum exact without a rebuild.
func TestAppendKeepsCachesExact(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		vals := make([]uint64, 60) // partial final segment
		for i := range vals {
			vals[i] = uint64(i)
		}
		col := FromValues(layout, 16, vals)
		extra := []uint64{7, 9, 11, 13, 1000}
		col.Append(extra...) // crosses a segment boundary mid-append
		all := append(append([]uint64(nil), vals...), extra...)
		checkSegmentSums(t, col, all, "after append")

		// After staling, appends must NOT resurrect a partial cache.
		staleZones(t, col)
		col.Append(3, 4)
		if _, ok := segmentSum(col, 0); ok {
			t.Fatalf("%s: append after SetZones resurrected a stale cache", layout)
		}
		col.RebuildSegmentAggregates()
		all = append(all, 3, 4)
		checkSegmentSums(t, col, all, "after rebuild")
	}
}
