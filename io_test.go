package bpagg

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for _, layout := range []Layout{VBP, HBP} {
		for _, n := range []int{0, 1, 64, 1000} {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(rng.Intn(1 << 13))
			}
			col := FromValues(layout, 13, vals)
			var buf bytes.Buffer
			written, err := col.WriteTo(&buf)
			if err != nil {
				t.Fatalf("%v n=%d: WriteTo: %v", layout, n, err)
			}
			if written != int64(buf.Len()) {
				t.Fatalf("%v n=%d: WriteTo reported %d bytes, buffer has %d", layout, n, written, buf.Len())
			}
			got, err := ReadColumn(&buf)
			if err != nil {
				t.Fatalf("%v n=%d: ReadColumn: %v", layout, n, err)
			}
			if got.Layout() != layout || got.BitWidth() != 13 || got.Len() != n ||
				got.GroupBits() != col.GroupBits() {
				t.Fatalf("%v n=%d: metadata mismatch", layout, n)
			}
			for i, want := range vals {
				if got.Value(i) != want {
					t.Fatalf("%v n=%d: Value(%d) = %d, want %d", layout, n, i, got.Value(i), want)
				}
			}
			// Aggregates work on the deserialized column.
			if n > 0 {
				if got.Sum(got.All()) != col.Sum(col.All()) {
					t.Fatalf("%v n=%d: sums differ after round trip", layout, n)
				}
				gm, _ := got.Median(got.All())
				cm, _ := col.Median(col.All())
				if gm != cm {
					t.Fatalf("%v n=%d: medians differ after round trip", layout, n)
				}
			}
		}
	}
}

func TestColumnRoundTripWithNulls(t *testing.T) {
	col := NewColumn(HBP, 8)
	col.Append(1, 2)
	col.AppendNull()
	col.Append(3)
	var buf bytes.Buffer
	if _, err := col.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumn(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NullCount() != 1 || !got.IsNull(2) {
		t.Fatalf("nulls lost: count=%d", got.NullCount())
	}
	if got.Sum(got.All()) != 6 {
		t.Fatalf("Sum = %d", got.Sum(got.All()))
	}
}

func TestTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	tbl := NewTable()
	tbl.AddColumn("a", VBP, 10)
	tbl.AddColumn("b", HBP, 20)
	const n = 500
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i] = uint64(rng.Intn(1 << 10))
		b[i] = uint64(rng.Intn(1 << 20))
	}
	tbl.AppendColumnar(map[string][]uint64{"a": a, "b": b})

	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != n {
		t.Fatalf("Rows = %d", got.Rows())
	}
	cols := got.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("Columns = %v", cols)
	}
	wantSum := tbl.Query().Where("a", Less(512)).Sum("b")
	gotSum := got.Query().Where("a", Less(512)).Sum("b")
	if wantSum != gotSum {
		t.Fatalf("query after round trip: %d, want %d", gotSum, wantSum)
	}
}

func TestReadColumnRejectsCorruption(t *testing.T) {
	col := FromValues(VBP, 8, []uint64{1, 2, 3})
	var buf bytes.Buffer
	if _, err := col.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"bad layout", func(b []byte) []byte { b[6] = 7; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-4] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		data := append([]byte(nil), good...)
		data = c.mutate(data)
		if _, err := ReadColumn(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadColumn accepted corrupt input", c.name)
		}
	}
}

func TestReadColumnRejectsDelimiterCorruption(t *testing.T) {
	// Flip a bit inside the HBP payload so a delimiter becomes 1 — the
	// invariant check must catch it.
	col := FromValues(HBP, 8, []uint64{1, 2, 3})
	var buf bytes.Buffer
	if _, err := col.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header is 4+2+1+2+2+8+1 = 20 bytes, then the first group size (8
	// bytes), then payload words: set the delimiter bit of slot 0 (word
	// bit tau in the LSB-first layout).
	tau := col.GroupBits()
	data[28+tau/8] ^= 1 << uint(tau%8)
	if _, err := ReadColumn(bytes.NewReader(data)); err == nil {
		t.Error("ReadColumn accepted payload with delimiter bits set")
	}
}

func TestReadTableRejectsCorruption(t *testing.T) {
	tbl := NewTable()
	tbl.AddColumn("x", VBP, 4)
	tbl.AppendColumnar(map[string][]uint64{"x": {1, 2}})
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadTable(bytes.NewReader(bad)); err == nil {
		t.Error("ReadTable accepted bad magic")
	}
	if _, err := ReadTable(bytes.NewReader(good[:8])); err == nil {
		t.Error("ReadTable accepted truncated input")
	}
}

func TestZonesSurviveRoundTrip(t *testing.T) {
	// Sorted data: after a round trip, zone maps must still prune scans.
	vals := make([]uint64, 500)
	for i := range vals {
		vals[i] = uint64(i)
	}
	for _, layout := range []Layout{VBP, HBP} {
		col := FromValues(layout, 9, vals)
		var buf bytes.Buffer
		if _, err := col.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadColumn(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Zone presence: internal check via scan correctness + the raw
		// accessor used by serialization.
		zMin, zMax := got.rawZones()
		if len(zMin) == 0 || len(zMax) != len(zMin) {
			t.Fatalf("%v: zones lost in round trip", layout)
		}
		sel := got.Scan(Between(100, 199))
		if sel.Count() != 100 {
			t.Fatalf("%v: scan after round trip selected %d rows", layout, sel.Count())
		}
		for i := range vals {
			if sel.Get(i) != (vals[i] >= 100 && vals[i] <= 199) {
				t.Fatalf("%v: row %d wrong after round trip", layout, i)
			}
		}
	}
}

func TestReadColumnRejectsBadZones(t *testing.T) {
	col := FromValues(VBP, 8, []uint64{5, 6, 7})
	var buf bytes.Buffer
	if _, err := col.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the zone minimum (last 16 bytes are zMin+zMax for the single
	// segment) so min > max.
	data[len(data)-16] = 0xFF
	if _, err := ReadColumn(bytes.NewReader(data)); err == nil {
		t.Error("ReadColumn accepted inverted zone range")
	}
	// Bad zone flag.
	data2 := append([]byte(nil), buf.Bytes()...)
	data2[len(data2)-17] = 9
	if _, err := ReadColumn(bytes.NewReader(data2)); err == nil {
		t.Error("ReadColumn accepted bad zone flag")
	}
}
