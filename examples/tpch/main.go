// TPC-H-style analytics on a denormalized wide table — the setting of the
// paper's Table II. Joins and group-bys are materialized away up front
// (WideTable-style), so each query is a conjunctive filter scan plus
// aggregation over single columns, all bit-parallel.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"math/rand"
	"time"

	"bpagg"
)

const rows = 2 << 20 // scaled-down lineitem

func main() {
	fmt.Printf("building %d-row wide table...\n", rows)
	tbl, price := buildLineitem()

	// Q6-style: forecasting revenue change.
	//   SELECT SUM(revenue) WHERE shipdate in [8766, 9131)
	//     AND discount BETWEEN 5 AND 7 AND quantity < 24
	start := time.Now()
	q6 := tbl.Query().
		Where("shipdate", bpagg.Between(8766, 9130)).
		Where("discount", bpagg.Between(5, 7)).
		Where("quantity", bpagg.Less(24))
	revenue := q6.Sum("revenue")
	fmt.Printf("\nQ6  revenue=%s  rows=%d  sel=%.3f  (%v)\n",
		price.DecodeMoney(revenue), q6.CountRows(),
		float64(q6.CountRows())/float64(rows), time.Since(start))

	// Q1-style: pricing summary for shipped rows.
	start = time.Now()
	q1 := tbl.Query().Where("shipdate", bpagg.LessEq(9000))
	sumQty := q1.Sum("quantity")
	sumPrice := q1.Sum("extendedprice")
	avgQty, _ := q1.Avg("quantity")
	avgPrice, _ := q1.Avg("extendedprice")
	cnt := q1.CountRows()
	fmt.Printf("Q1  sum_qty=%d  sum_price=%s  avg_qty=%.2f  avg_price=%s  count=%d  (%v)\n",
		sumQty, price.DecodeMoney(sumPrice), avgQty,
		price.DecodeMoney(uint64(avgPrice)), cnt, time.Since(start))

	// Q15-style: revenue concentration — what does the top of the
	// distribution look like? MEDIAN and quantiles come from the same
	// r-selection algorithm.
	start = time.Now()
	q15 := tbl.Query().Where("shipdate", bpagg.Between(8500, 8590))
	medP, _ := q15.Median("extendedprice")
	p95, _ := q15.Quantile("extendedprice", 0.95)
	maxP, _ := q15.Max("extendedprice")
	fmt.Printf("Q15 median=%s  p95=%s  max=%s over %d rows  (%v)\n",
		price.DecodeMoney(medP), price.DecodeMoney(p95), price.DecodeMoney(maxP),
		q15.CountRows(), time.Since(start))

	// The same Q6 with multi-threading and wide words enabled.
	start = time.Now()
	revenue2 := tbl.Query().
		Where("shipdate", bpagg.Between(8766, 9130)).
		Where("discount", bpagg.Between(5, 7)).
		Where("quantity", bpagg.Less(24)).
		With(bpagg.Parallel(4), bpagg.WideWords()).
		Sum("revenue")
	fmt.Printf("\nQ6 again with Parallel(4)+WideWords: %v", time.Since(start))
	if revenue2 != revenue {
		fmt.Println("  MISMATCH!")
		return
	}
	fmt.Println("  (same answer)")
}

// money is a tiny helper bundling the fixed-point price codec.
type money struct{ bpagg.Decimal }

func (m money) DecodeMoney(code uint64) string {
	return fmt.Sprintf("$%.2f", m.DecodeSum(code))
}

func buildLineitem() (*bpagg.Table, money) {
	price := money{bpagg.Decimal{Scale: 2, Max: 104999.99}}
	rng := rand.New(rand.NewSource(7))

	shipdate := make([]uint64, rows)      // days since epoch, 14 bits
	quantity := make([]uint64, rows)      // 1..50, 6 bits
	discount := make([]uint64, rows)      // 0..10 percent, 4 bits
	extendedprice := make([]uint64, rows) // scaled cents, 24 bits
	revenue := make([]uint64, rows)       // materialized price*(1-disc), 24 bits

	for i := 0; i < rows; i++ {
		shipdate[i] = uint64(8000 + rng.Intn(1400))
		quantity[i] = uint64(1 + rng.Intn(50))
		discount[i] = uint64(rng.Intn(11))
		p := price.Encode(float64(rng.Intn(10000000)) / 100)
		extendedprice[i] = p
		revenue[i] = p * (100 - discount[i]) / 100
	}

	tbl := bpagg.NewTable()
	tbl.AddColumn("shipdate", bpagg.VBP, 14)
	tbl.AddColumn("quantity", bpagg.HBP, 6)
	tbl.AddColumn("discount", bpagg.VBP, 4)
	tbl.AddColumn("extendedprice", bpagg.VBP, price.Bits())
	tbl.AddColumn("revenue", bpagg.VBP, price.Bits())
	tbl.AppendColumnar(map[string][]uint64{
		"shipdate": shipdate, "quantity": quantity, "discount": discount,
		"extendedprice": extendedprice, "revenue": revenue,
	})
	return tbl, price
}
