// Telemetry percentiles: 12-bit ADC samples from a sensor fleet, windowed
// p50/p95/p99 latency-style reporting. MEDIAN and every other percentile
// come from the same bit-parallel r-selection (Algorithm 3/6 of the paper),
// so no sorting and no value reconstruction ever happens.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"math/rand"
	"time"

	"bpagg"
)

const (
	sensors     = 64
	samplesEach = 1 << 15
	total       = sensors * samplesEach
	adcBits     = 12 // raw 12-bit ADC codes
	sensorBits  = 6
	windowSize  = total / 8
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// One flat append-time-ordered table: sensor id + reading.
	readings := make([]uint64, total)
	ids := make([]uint64, total)
	for i := range readings {
		id := uint64(i % sensors)
		ids[i] = id
		// Each sensor has its own baseline; occasional spikes.
		base := 800 + 40*id
		v := base + uint64(rng.Intn(200))
		if rng.Intn(1000) == 0 {
			v += 1500 // spike
		}
		if v >= 1<<adcBits {
			v = 1<<adcBits - 1
		}
		readings[i] = v
	}

	tbl := bpagg.NewTable()
	tbl.AddColumn("sensor", bpagg.VBP, sensorBits)
	tbl.AddColumn("reading", bpagg.HBP, adcBits)
	tbl.AppendColumnar(map[string][]uint64{"sensor": ids, "reading": readings})
	reading := tbl.Column("reading")

	// Fleet-wide percentiles per time window. Window membership is just a
	// bitmap, so it composes with any scan by intersection.
	fmt.Println("window      rows     p50    p95    p99    max")
	start := time.Now()
	for w := 0; w*windowSize < total; w++ {
		win := windowBitmap(total, w*windowSize, (w+1)*windowSize)
		p50, _ := reading.Quantile(win, 0.50)
		p95, _ := reading.Quantile(win, 0.95)
		p99, _ := reading.Quantile(win, 0.99)
		max, _ := reading.Max(win)
		fmt.Printf("%6d  %8d  %6d %6d %6d %6d\n", w, win.Count(), p50, p95, p99, max)
	}
	fmt.Printf("8 windows x 4 percentile aggregates in %v\n\n", time.Since(start))

	// Drill into one sensor: its baseline tops out near 3720, so anything
	// above 3800 is a spike.
	q := tbl.Query().Where("sensor", bpagg.Equal(63))
	med, _ := q.Median("reading")
	spikes := tbl.Query().
		Where("sensor", bpagg.Equal(63)).
		Where("reading", bpagg.Greater(3800)).
		CountRows()
	fmt.Printf("sensor 63: median reading %d, %d spike samples above 3800\n", med, spikes)

	// Health check across the fleet: sensors whose median deviates from
	// their baseline would page the on-call. Per-sensor medians reuse one
	// scan per sensor id.
	worst, worstDev := uint64(0), 0.0
	for id := uint64(0); id < sensors; id++ {
		m, ok := tbl.Query().Where("sensor", bpagg.Equal(id)).Median("reading")
		if !ok {
			continue
		}
		baseline := float64(800 + 40*id + 100)
		dev := (float64(m) - baseline) / baseline
		if dev > worstDev {
			worst, worstDev = id, dev
		}
	}
	fmt.Printf("largest median deviation from baseline: sensor %d (%+.1f%%)\n",
		worst, 100*worstDev)
}

// windowBitmap selects rows [lo, hi) — time windows under append ordering.
func windowBitmap(n, lo, hi int) *bpagg.Bitmap {
	m := bpagg.NewBitmap(n)
	for i := lo; i < hi && i < n; i++ {
		m.Set(i)
	}
	return m
}
