// Web-log analytics: HTTP access records with dictionary-encoded methods
// and status classes, scanned and aggregated bit-parallel. Shows the
// codecs (Dict for strings, Decimal for response times) and bitmap
// composition (AND / OR / NOT of independent scans, §II-E of the paper).
//
//	go run ./examples/logscan
package main

import (
	"fmt"
	"math/rand"
	"time"

	"bpagg"
)

const requests = 2 << 20

func main() {
	// Dictionaries: order-preserving codes for low-cardinality strings.
	methods := bpagg.NewDict()
	for _, m := range []string{"DELETE", "GET", "HEAD", "POST", "PUT"} {
		methods.Add(m)
	}
	methods.Freeze()

	latency := bpagg.Decimal{Scale: 1, Max: 6553.5} // tenths of a millisecond

	rng := rand.New(rand.NewSource(2024))
	methodCol := make([]uint64, requests)
	statusCol := make([]uint64, requests)  // 100..599, 10 bits
	latencyCol := make([]uint64, requests) // scaled ms
	bytesCol := make([]uint64, requests)   // 20 bits

	names := []string{"GET", "GET", "GET", "GET", "POST", "PUT", "HEAD", "DELETE"}
	for i := 0; i < requests; i++ {
		name := names[rng.Intn(len(names))]
		code, _ := methods.Encode(name)
		methodCol[i] = code
		switch r := rng.Intn(100); {
		case r < 90:
			statusCol[i] = 200
		case r < 95:
			statusCol[i] = uint64(300 + rng.Intn(8))
		case r < 98:
			statusCol[i] = uint64(400 + rng.Intn(30))
		default:
			statusCol[i] = uint64(500 + rng.Intn(4))
		}
		ms := rng.ExpFloat64() * 25
		if statusCol[i] >= 500 {
			ms += 200 // slow failures
		}
		if ms > latency.Max {
			ms = latency.Max
		}
		latencyCol[i] = latency.Encode(ms)
		bytesCol[i] = uint64(rng.Intn(1 << 20))
	}

	tbl := bpagg.NewTable()
	tbl.AddColumn("method", bpagg.VBP, methods.Bits())
	tbl.AddColumn("status", bpagg.VBP, 10)
	tbl.AddColumn("latency", bpagg.VBP, latency.Bits())
	tbl.AddColumn("bytes", bpagg.HBP, 20)
	tbl.AppendColumnar(map[string][]uint64{
		"method": methodCol, "status": statusCol,
		"latency": latencyCol, "bytes": bytesCol,
	})

	start := time.Now()

	// Error-rate panel: status >= 400, split 4xx vs 5xx.
	status := tbl.Column("status")
	clientErr := status.Scan(bpagg.Between(400, 499))
	serverErr := status.Scan(bpagg.GreaterEq(500))
	allErr := clientErr.Clone().Or(serverErr)
	fmt.Printf("requests: %d   4xx: %d   5xx: %d   error rate: %.2f%%\n",
		requests, clientErr.Count(), serverErr.Count(),
		100*float64(allErr.Count())/requests)

	// Latency panel, overall and for errors only.
	lat := tbl.Column("latency")
	all := lat.All()
	p50, _ := lat.Quantile(all, 0.50)
	p99, _ := lat.Quantile(all, 0.99)
	e50, _ := lat.Quantile(serverErr, 0.50)
	fmt.Printf("latency p50: %.1f ms   p99: %.1f ms   5xx median: %.1f ms\n",
		latency.Decode(p50), latency.Decode(p99), latency.Decode(e50))

	// Method breakdown: GET traffic that succeeded, excluding errors.
	getCode, _ := methods.Encode("GET")
	getOK := tbl.Column("method").Scan(bpagg.Equal(getCode)).AndNot(allErr)
	bytes := tbl.Column("bytes")
	sumBytes := bytes.Sum(getOK, bpagg.Parallel(4))
	avgBytes, _ := bytes.Avg(getOK)
	fmt.Printf("successful GETs: %d  total %d MB  avg %.0f B\n",
		getOK.Count(), sumBytes>>20, avgBytes)

	// Slow-request investigation: NOT error AND latency > 100 ms.
	slowOK := lat.Scan(bpagg.Greater(latency.Encode(100))).AndNot(allErr)
	medBytes, ok := bytes.Median(slowOK)
	if ok {
		fmt.Printf("slow-but-successful requests: %d (median payload %d B)\n",
			slowOK.Count(), medBytes)
	}

	fmt.Printf("dashboard computed in %v\n", time.Since(start))
}
