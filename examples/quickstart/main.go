// Quickstart: pack a column, scan it, and run every aggregate — then check
// the same answers against a plain-slice implementation and compare times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bpagg"
)

const (
	n = 4 << 20 // tuples
	k = 16      // bits per value
)

func main() {
	rng := rand.New(rand.NewSource(42))
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(rng.Intn(1 << k))
	}

	// Pack the column. VBP stores exactly k bits per value; try bpagg.HBP
	// to trade a little space for cheaper row reconstruction.
	col := bpagg.FromValues(bpagg.VBP, k, values)
	fmt.Printf("packed %d values of %d bits into %d words (%.1f bits/value)\n",
		col.Len(), k, col.MemoryWords(), float64(64*col.MemoryWords())/float64(n))

	// Bit-parallel filter scan: WHERE value < 20000.
	start := time.Now()
	sel := col.Scan(bpagg.Less(20000))
	scanTime := time.Since(start)
	fmt.Printf("scan (value < 20000): %d rows in %v (%.2f ns/row)\n",
		sel.Count(), scanTime, float64(scanTime.Nanoseconds())/n)

	// Bit-parallel aggregation over the selection.
	start = time.Now()
	count := col.Count(sel)
	sum := col.Sum(sel)
	min, _ := col.Min(sel)
	max, _ := col.Max(sel)
	avg, _ := col.Avg(sel)
	med, _ := col.Median(sel)
	p99, _ := col.Quantile(sel, 0.99)
	bpTime := time.Since(start)
	fmt.Printf("aggregates: count=%d sum=%d min=%d max=%d avg=%.2f median=%d p99=%d\n",
		count, sum, min, max, avg, med, p99)
	fmt.Printf("bit-parallel aggregation of 7 aggregates: %v\n", bpTime)

	// The same, the usual way: walk a plain slice.
	start = time.Now()
	var (
		pCount, pSum uint64
		kept         []uint64
	)
	pMin, pMax := uint64(1<<k), uint64(0)
	for _, v := range values {
		if v < 20000 {
			pCount++
			pSum += v
			if v < pMin {
				pMin = v
			}
			if v > pMax {
				pMax = v
			}
			kept = append(kept, v)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	pMed := kept[(len(kept)+1)/2-1]
	pP99 := kept[(len(kept)*99+99)/100-1]
	plainTime := time.Since(start)
	fmt.Printf("plain-slice evaluation: %v (%.1fx slower)\n",
		plainTime, float64(plainTime)/float64(bpTime+scanTime))

	// Verify agreement.
	pAvg := float64(pSum) / float64(pCount)
	if count != pCount || sum != pSum || min != pMin || max != pMax ||
		avg != pAvg || med != pMed || p99 != pP99 {
		fmt.Println("MISMATCH between bit-parallel and plain results!")
		return
	}
	fmt.Println("bit-parallel and plain-slice results agree")
}
