package bpagg

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// Sharded-store behavioral tests: append atomicity (the torn-table
// regression pins), shard rollover, catalog pruning (metric-asserted),
// serialization round-trips with seed-file compatibility, and
// thread-count determinism. Bit-identity against the flat engine across
// the full route/layout matrix lives in shard_oracle_test.go.

// mustPanic runs fn and reports the recovered panic value; it fails the
// test if fn returns normally.
func mustPanic(t *testing.T, fn func()) (recovered any) {
	t.Helper()
	defer func() { recovered = recover() }()
	fn()
	t.Fatalf("expected panic, got none")
	return nil
}

func TestAppendColumnarZeroColumnRejected(t *testing.T) {
	tab := NewTable()
	mustPanic(t, func() { tab.AppendColumnar(map[string][]uint64{}) })
	if tab.Rows() != 0 {
		// The old bug: n stayed -1 and t.rows += n silently decremented.
		t.Fatalf("zero-column AppendColumnar changed Rows() to %d", tab.Rows())
	}
	mustPanic(t, func() { tab.AppendRow(map[string]uint64{}) })
	if tab.Rows() != 0 {
		t.Fatalf("zero-column AppendRow changed Rows() to %d", tab.Rows())
	}

	st := NewShardedTable(64)
	mustPanic(t, func() { st.AppendColumnar(map[string][]uint64{}) })
	mustPanic(t, func() { st.AppendRow(map[string]uint64{}) })
	if st.Rows() != 0 || st.NumShards() != 0 {
		t.Fatalf("zero-column sharded append mutated the store: rows=%d shards=%d", st.Rows(), st.NumShards())
	}
}

// tableState captures Rows() and every column length for the atomicity
// pins.
func tableState(tab *Table) (int, []int) {
	lens := make([]int, 0, len(tab.names))
	for _, name := range tab.names {
		lens = append(lens, tab.Column(name).Len())
	}
	return tab.Rows(), lens
}

func TestAppendRowAtomicOnBadValue(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		tab := NewTable()
		tab.AddColumn("a", layout, 8)
		tab.AddColumn("b", layout, 4)
		tab.AppendRow(map[string]uint64{"a": 200, "b": 15})

		rows, lens := tableState(tab)
		// "a" fits, "b" does not: the old code appended "a" before
		// panicking on "b", tearing the table.
		mustPanic(t, func() { tab.AppendRow(map[string]uint64{"a": 1, "b": 16}) })
		if r, l := tableState(tab); r != rows || l[0] != lens[0] || l[1] != lens[1] {
			t.Fatalf("%v: failed AppendRow tore the table: rows %d→%d, lens %v→%v", layout, rows, r, lens, l)
		}
		mustPanic(t, func() { tab.AppendRow(map[string]uint64{"a": 1, "zz": 2}) })
		if r, l := tableState(tab); r != rows || l[0] != lens[0] || l[1] != lens[1] {
			t.Fatalf("%v: missing-column AppendRow tore the table", layout)
		}
	}
}

func TestAppendColumnarAtomicOnBadValue(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		tab := NewTable()
		tab.AddColumn("a", layout, 8)
		tab.AddColumn("b", layout, 4)
		tab.AppendColumnar(map[string][]uint64{"a": {1, 2}, "b": {3, 4}})

		rows, lens := tableState(tab)
		// The width violation sits mid-slice in the second column: the old
		// code appended all of "a" and part of nothing before panicking
		// inside the layout, leaving unequal lengths.
		mustPanic(t, func() {
			tab.AppendColumnar(map[string][]uint64{"a": {5, 6, 7}, "b": {1, 16, 2}})
		})
		if r, l := tableState(tab); r != rows || l[0] != lens[0] || l[1] != lens[1] {
			t.Fatalf("%v: failed AppendColumnar tore the table: rows %d→%d, lens %v→%v", layout, rows, r, lens, l)
		}
		mustPanic(t, func() {
			tab.AppendColumnar(map[string][]uint64{"a": {5}, "b": {1, 2}})
		})
		if r, l := tableState(tab); r != rows || l[0] != lens[0] || l[1] != lens[1] {
			t.Fatalf("%v: ragged AppendColumnar tore the table", layout)
		}
	}
}

func TestShardedAppendAtomic(t *testing.T) {
	st := NewShardedTable(4)
	st.AddColumn("a", VBP, 8)
	st.AddColumn("b", HBP, 4)
	st.AppendColumnar(map[string][]uint64{"a": {1, 2, 3, 4, 5}, "b": {1, 2, 3, 0, 1}})
	rows, shards := st.Rows(), st.NumShards()

	mustPanic(t, func() { st.AppendRow(map[string]uint64{"a": 1, "b": 16}) })
	mustPanic(t, func() { st.AppendColumnar(map[string][]uint64{"a": {1, 300}, "b": {0, 0}}) })
	mustPanic(t, func() { st.AppendColumnar(map[string][]uint64{"a": {1}, "b": {0, 0}}) })
	if st.Rows() != rows || st.NumShards() != shards {
		t.Fatalf("failed sharded append mutated the store: rows %d→%d, shards %d→%d",
			rows, st.Rows(), shards, st.NumShards())
	}
	for s, sh := range st.shards {
		if _, lens := tableState(sh); lens[0] != lens[1] {
			t.Fatalf("shard %d torn: column lengths %v", s, lens)
		}
	}
}

func TestShardRollover(t *testing.T) {
	st := NewShardedTable(4)
	st.AddColumn("v", VBP, 8)
	for i := 0; i < 10; i++ {
		st.AppendRow(map[string]uint64{"v": uint64(i)})
	}
	if st.NumShards() != 3 || st.Rows() != 10 {
		t.Fatalf("10 rows at shard size 4: got %d shards, %d rows", st.NumShards(), st.Rows())
	}
	for s, want := range []int{4, 4, 2} {
		if st.shards[s].Rows() != want {
			t.Fatalf("shard %d has %d rows, want %d", s, st.shards[s].Rows(), want)
		}
	}
	// Columnar load tops up the tail (2 more fit) then rolls two fresh
	// shards, one of them a partial tail.
	vals := make([]uint64, 7)
	for i := range vals {
		vals[i] = uint64(100 + i)
	}
	st.AppendColumnar(map[string][]uint64{"v": vals})
	if st.NumShards() != 5 || st.Rows() != 17 {
		t.Fatalf("after top-up load: got %d shards, %d rows", st.NumShards(), st.Rows())
	}
	if got := st.Query().CountRows(); got != 17 {
		t.Fatalf("CountRows = %d, want 17", got)
	}
	if sum, want := st.Query().Sum("v"), uint64(0+1+2+3+4+5+6+7+8+9+100+101+102+103+104+105+106); sum != want {
		t.Fatalf("Sum = %d, want %d", sum, want)
	}
}

// buildDisjointShards fills each shard with values from its own disjoint
// range: shard s holds shardRows values in [s*gap, s*gap+spread].
func buildDisjointShards(layout Layout, shards, shardRows int) *ShardedTable {
	st := NewShardedTable(shardRows)
	st.AddColumn("v", layout, 16)
	rng := rand.New(rand.NewSource(7))
	const gap, spread = 1000, 99
	for s := 0; s < shards; s++ {
		vals := make([]uint64, shardRows)
		for i := range vals {
			vals[i] = uint64(s*gap) + uint64(rng.Intn(spread+1))
		}
		st.AppendColumnar(map[string][]uint64{"v": vals})
	}
	return st
}

func TestShardPruningMetrics(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		const shards = 6
		st := buildDisjointShards(layout, shards, 256)

		// A predicate inside shard 2's range only: every other shard must
		// prune at the catalog.
		q := st.Query().WithStats().Where("v", Between(2000, 2099))
		wantSum := uint64(0)
		for s := range st.shards {
			sel := st.shards[s].Query().Where("v", Between(2000, 2099))
			wantSum += sel.Sum("v")
		}
		if got := q.Sum("v"); got != wantSum {
			t.Fatalf("%v: pruned Sum = %d, want %d", layout, got, wantSum)
		}
		stats := q.Stats()
		if stats.ShardsScanned != 1 || stats.ShardsPruned != shards-1 {
			t.Fatalf("%v: shard counters = (scanned %d, pruned %d), want (1, %d)",
				layout, stats.ShardsScanned, stats.ShardsPruned, shards-1)
		}

		// A predicate outside every shard's bounds must scan zero shards
		// and touch zero words — pruning is proven by the cost counters,
		// not just the result.
		q2 := st.Query().WithStats().Where("v", Between(500, 999))
		if got := q2.Sum("v"); got != 0 {
			t.Fatalf("%v: out-of-bounds Sum = %d, want 0", layout, got)
		}
		s2 := q2.Stats()
		if s2.ShardsScanned != 0 || s2.ShardsPruned != shards {
			t.Fatalf("%v: out-of-bounds shard counters = (scanned %d, pruned %d), want (0, %d)",
				layout, s2.ShardsScanned, s2.ShardsPruned, shards)
		}
		if s2.WordsCompared != 0 || s2.WordsTouched != 0 || s2.SegmentsScanned != 0 {
			t.Fatalf("%v: catalog-pruned query still touched data: %+v", layout, s2)
		}
	}
}

func TestShardedIORoundTrip(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		st := buildDisjointShards(layout, 3, 100) // non-divisible tail vs segment size
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			t.Fatalf("%v: WriteTo: %v", layout, err)
		}
		for _, loader := range []string{"ReadShardedTable", "ReadPartitioned"} {
			var got *ShardedTable
			var err error
			if loader == "ReadShardedTable" {
				got, err = ReadShardedTable(bytes.NewReader(buf.Bytes()))
			} else {
				got, err = ReadPartitioned(bytes.NewReader(buf.Bytes()))
			}
			if err != nil {
				t.Fatalf("%v: %s: %v", layout, loader, err)
			}
			if got.Rows() != st.Rows() || got.NumShards() != st.NumShards() || got.ShardRows() != st.ShardRows() {
				t.Fatalf("%v: %s shape mismatch: rows %d/%d shards %d/%d size %d/%d", layout, loader,
					got.Rows(), st.Rows(), got.NumShards(), st.NumShards(), got.ShardRows(), st.ShardRows())
			}
			a, b := st.Query().Sum("v"), got.Query().Sum("v")
			if a != b {
				t.Fatalf("%v: %s Sum diverged: %d vs %d", layout, loader, a, b)
			}
			m1, ok1 := st.Query().Where("v", Greater(1000)).Median("v")
			m2, ok2 := got.Query().Where("v", Greater(1000)).Median("v")
			if m1 != m2 || ok1 != ok2 {
				t.Fatalf("%v: %s Median diverged: (%d,%v) vs (%d,%v)", layout, loader, m1, ok1, m2, ok2)
			}
		}
	}
}

func TestReadPartitionedSeedFlatFile(t *testing.T) {
	// Seed-era flat .bpag files must keep loading: a flat table stream is
	// adopted as a single-shard store with identical query results.
	tab := NewTable()
	tab.AddColumn("v", VBP, 12)
	vals := make([]uint64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = uint64(rng.Intn(4000))
	}
	tab.AppendColumnar(map[string][]uint64{"v": vals})
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadPartitioned(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadPartitioned(flat): %v", err)
	}
	if st.NumShards() != 1 || st.Rows() != 500 {
		t.Fatalf("flat adoption: %d shards, %d rows", st.NumShards(), st.Rows())
	}
	if a, b := tab.Query().Where("v", Less(2000)).Sum("v"), st.Query().Where("v", Less(2000)).Sum("v"); a != b {
		t.Fatalf("flat vs adopted Sum: %d vs %d", a, b)
	}
}

func TestShardedIOCorrupt(t *testing.T) {
	st := buildDisjointShards(VBP, 2, 64)
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{3, 10, len(good) / 2, len(good) - 4} {
			if _, err := ReadShardedTable(bytes.NewReader(good[:cut])); err == nil {
				t.Fatalf("truncation at %d loaded without error", cut)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := ReadShardedTable(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad magic loaded without error")
		}
		if _, err := ReadPartitioned(bytes.NewReader(bad)); err == nil {
			t.Fatal("ReadPartitioned accepted unknown magic")
		}
	})
	t.Run("catalog-tampered", func(t *testing.T) {
		// The catalog is the file's trailer; flipping a bound must be
		// caught by the recompute-and-compare check.
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0x40
		if _, err := ReadShardedTable(bytes.NewReader(bad)); err == nil {
			t.Fatal("tampered shard catalog loaded without error")
		}
	})
}

func TestShardedDeterminismAcrossThreads(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		st := buildDisjointShards(layout, 7, 100)
		type result struct {
			cnt    uint64
			sum    uint64
			min    uint64
			med    uint64
			keys   []uint64
			gsums  []uint64
			gcnt   []uint64
			stats  ExecStats
			statsT ExecStats
		}
		run := func(threads int) result {
			q := st.Query().WithStats().Where("v", GreaterEq(2000)).With(Parallel(threads))
			r := result{cnt: q.CountRows(), sum: q.Sum("v")}
			r.min, _ = q.Min("v")
			r.med, _ = q.Median("v")
			g := st.Query().With(Parallel(threads)).GroupBy("v")
			r.keys, r.gsums, r.gcnt = g.Keys(), g.Sum("v"), g.Count()
			r.stats = q.Stats()
			return r
		}
		base := run(1)
		for _, threads := range []int{2, 8} {
			got := run(threads)
			if got.cnt != base.cnt || got.sum != base.sum || got.min != base.min || got.med != base.med {
				t.Fatalf("%v: threads=%d scalar results diverged", layout, threads)
			}
			if len(got.keys) != len(base.keys) {
				t.Fatalf("%v: threads=%d group count diverged", layout, threads)
			}
			for i := range base.keys {
				if got.keys[i] != base.keys[i] || got.gsums[i] != base.gsums[i] || got.gcnt[i] != base.gcnt[i] {
					t.Fatalf("%v: threads=%d group %d diverged", layout, threads, i)
				}
			}
			// The analytic counters (shards, words) are thread-independent.
			if got.stats.ShardsScanned != base.stats.ShardsScanned ||
				got.stats.ShardsPruned != base.stats.ShardsPruned ||
				got.stats.WordsCompared != base.stats.WordsCompared ||
				got.stats.WordsTouched != base.stats.WordsTouched {
				t.Fatalf("%v: threads=%d analytic counters diverged:\n1: %+v\n%d: %+v",
					layout, threads, base.stats, threads, got.stats)
			}
		}
	}
}

func TestShardTableSplitsAndPreservesNulls(t *testing.T) {
	cols := []*Column{NewColumn(VBP, 8), NewColumn(VBP, 10)}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		cols[0].Append(uint64(rng.Intn(200)))
		if rng.Intn(5) == 0 {
			cols[1].AppendNull()
		} else {
			cols[1].Append(uint64(rng.Intn(1000)))
		}
	}
	tab := NewTableFromColumns([]string{"g", "v"}, cols)
	st := ShardTable(tab, 77) // non-divisible tail
	if st.NumShards() != 4 || st.Rows() != 300 {
		t.Fatalf("split shape: %d shards, %d rows", st.NumShards(), st.Rows())
	}
	fa, fok := tab.Query().Where("g", Less(100)).Avg("v")
	sa, sok := st.Query().Where("g", Less(100)).Avg("v")
	if fa != sa || fok != sok {
		t.Fatalf("flat vs split Avg: (%v,%v) vs (%v,%v)", fa, fok, sa, sok)
	}
	flatCnt, err := tab.Query().CountContext(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	if b := st.Query().Count("v"); flatCnt != b {
		t.Fatalf("flat vs split non-NULL Count: %d vs %d", flatCnt, b)
	}
}
