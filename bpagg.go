// Package bpagg is a main-memory columnar aggregation library built on
// intra-cycle (bit-level) parallelism. It implements the bit-parallel
// aggregation algorithms of Feng & Lo, "Accelerating Aggregation using
// Intra-cycle Parallelism" (ICDE 2015), together with the BitWeaving-style
// bit-packed storage layouts and filter scans they build on.
//
// Columns store k-bit codes packed into 64-bit processor words in one of
// two layouts: VBP (vertical bit packing — bit i of every value in word i)
// or HBP (horizontal bit packing — values side by side with a delimiter bit
// per field). Filter scans (=, <>, <, <=, >, >=, BETWEEN) and all standard
// aggregates (COUNT, SUM, MIN, MAX, AVG, MEDIAN, arbitrary rank/quantile)
// run directly on the packed words, typically processing 8-64 tuples per
// CPU instruction instead of one:
//
//	col := bpagg.NewColumn(bpagg.VBP, 16)
//	col.Append(codes...)
//	sel := col.Scan(bpagg.Less(100))
//	sum := col.Sum(sel)
//	med, ok := col.Median(sel)
//
// Aggregates accept execution options: bpagg.Parallel(n) partitions the
// column across n goroutines and bpagg.WideWords() switches to 256-bit
// wide-word (4x64 lane) kernels — the two acceleration axes of the paper's
// §IV-B.
//
// Values must be unsigned integer codes. The Decimal, Signed and Dict
// codecs provide order-preserving mappings for fixed-point decimals, signed
// integers and low-cardinality strings.
package bpagg

import (
	"fmt"
	"sort"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
)

// Layout selects the bit-packed storage format of a column.
type Layout int

const (
	// VBP is vertical bit packing: word i of a 64-tuple segment holds bit
	// i of all 64 values. Most space-efficient (exactly k bits per value)
	// and fastest for aggregation, but costly to reconstruct single rows.
	VBP Layout = iota
	// HBP is horizontal bit packing: values sit side by side in a word,
	// each in a delimited field. Slightly larger, cheaper single-row
	// reconstruction, one processing iteration per tau bits.
	HBP
)

// String returns the layout's conventional name.
func (l Layout) String() string {
	switch l {
	case VBP:
		return "VBP"
	case HBP:
		return "HBP"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ColumnOption configures NewColumn.
type ColumnOption func(*columnConfig)

type columnConfig struct {
	tau int
}

// WithGroupBits sets the bit-group size tau of the cache-line-optimized
// layout (paper §II-C). The default is 4 for VBP (the empirically optimal
// value of the paper) and the analytically space-optimal value for HBP.
func WithGroupBits(tau int) ColumnOption {
	return func(c *columnConfig) { c.tau = tau }
}

// Column is a bit-packed, append-only column of k-bit unsigned codes,
// optionally with SQL NULLs (tracked in a validity bitmap per [10] of the
// paper: scans never match NULL and aggregates skip it).
type Column struct {
	layout Layout
	k      int
	v      *vbp.Column
	h      *hbp.Column
	nulls  *bitvec.Bitmap // bit set = row is NULL; nil when no NULLs exist
}

// NewColumn returns an empty column of bitWidth-bit values in the given
// layout. bitWidth must be in [1, 64]; for HBP the effective bit-group size
// is additionally capped at 31.
func NewColumn(layout Layout, bitWidth int, opts ...ColumnOption) *Column {
	cfg := columnConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Column{layout: layout, k: bitWidth}
	switch layout {
	case VBP:
		tau := cfg.tau
		if tau == 0 {
			tau = 4
			if tau > bitWidth {
				tau = bitWidth
			}
		}
		c.v = vbp.New(bitWidth, tau)
	case HBP:
		tau := cfg.tau
		if tau == 0 {
			tau = hbp.DefaultTau(bitWidth)
		}
		c.h = hbp.New(bitWidth, tau)
	default:
		panic(fmt.Sprintf("bpagg: unknown layout %d", int(layout)))
	}
	return c
}

// FromValues packs values into a new column.
func FromValues(layout Layout, bitWidth int, values []uint64, opts ...ColumnOption) *Column {
	c := NewColumn(layout, bitWidth, opts...)
	c.Append(values...)
	return c
}

// Layout returns the column's storage layout.
func (c *Column) Layout() Layout { return c.layout }

// BitWidth returns k, the number of bits per value.
func (c *Column) BitWidth() int { return c.k }

// GroupBits returns the bit-group size tau in effect.
func (c *Column) GroupBits() int {
	if c.layout == VBP {
		return c.v.Tau()
	}
	return c.h.Tau()
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	if c.layout == VBP {
		return c.v.Len()
	}
	return c.h.Len()
}

// sumOverflowPossible reports whether SUM over any selection of this
// column could exceed uint64 (DESIGN.md §7): when true, SUM and AVG run
// on the checked 128-bit kernels and report a true overflow as
// *OverflowError instead of wrapping.
func (c *Column) sumOverflowPossible() bool {
	return core.SumOverflowPossible(c.k, c.Len())
}

// fits reports whether v is representable in the column's BitWidth bits —
// the same bound the layout Append enforces with a panic.
func (c *Column) fits(v uint64) bool {
	return c.k >= 64 || v>>uint(c.k) == 0
}

// checkFits panics if v does not fit the column, naming the column. Table
// appends call it on every value before mutating anything, so a width
// violation can never tear a multi-column append.
func (c *Column) checkFits(name string, v uint64) {
	if !c.fits(v) {
		panic(fmt.Sprintf("bpagg: value %d does not fit column %q (%d bits)", v, name, c.k))
	}
}

// Append adds values to the column. Values must fit in BitWidth bits.
func (c *Column) Append(values ...uint64) {
	if c.layout == VBP {
		c.v.Append(values...)
	} else {
		c.h.Append(values...)
	}
	if c.nulls != nil {
		c.nulls.Resize(c.Len())
	}
}

// AppendNull adds a NULL row. The packed storage holds a zero placeholder
// code; the validity bitmap keeps it out of every scan and aggregate.
func (c *Column) AppendNull() {
	if c.layout == VBP {
		c.v.Append(0)
	} else {
		c.h.Append(0)
	}
	if c.nulls == nil {
		c.nulls = bitvec.New(c.Len())
	} else {
		c.nulls.Resize(c.Len())
	}
	c.nulls.Set(c.Len() - 1)
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	if i < 0 || i >= c.Len() {
		panic(fmt.Sprintf("bpagg: IsNull(%d) out of range [0,%d)", i, c.Len()))
	}
	return c.nulls != nil && c.nulls.Get(i)
}

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int {
	if c.nulls == nil {
		return 0
	}
	return c.nulls.Count()
}

// effective intersects a selection with the validity bitmap. With no NULLs
// it returns the selection's backing vector unchanged (no copy).
func (c *Column) effective(sel *Bitmap) *bitvec.Bitmap {
	if c.nulls == nil {
		return sel.b
	}
	return sel.b.Clone().AndNot(c.nulls)
}

// Value reconstructs row i to plain form. This is the per-row path the
// bit-parallel operators avoid; use it for result materialization, not for
// bulk processing.
func (c *Column) Value(i int) uint64 {
	if c.layout == VBP {
		return c.v.At(i)
	}
	return c.h.At(i)
}

// MemoryWords reports the number of 64-bit words backing the column.
func (c *Column) MemoryWords() int {
	if c.layout == VBP {
		return c.v.MemoryWords()
	}
	return c.h.MemoryWords()
}

// RebuildSegmentAggregates recomputes the per-segment zone maps and
// aggregate caches (min/max/sum) from the packed words, discarding
// whatever cached state the column carried. Results of every aggregate
// are identical before and after — the caches are an acceleration, not
// a source of truth — which is exactly what the differential harness
// (internal/oracle/diff) asserts across fresh, rebuilt, and reloaded
// columns.
func (c *Column) RebuildSegmentAggregates() { c.rebuildSegmentAggregates() }

// All returns a selection containing every row of the column.
func (c *Column) All() *Bitmap {
	return &Bitmap{b: bitvec.NewFull(c.Len())}
}

// None returns an empty selection sized to the column.
func (c *Column) None() *Bitmap {
	return &Bitmap{b: bitvec.New(c.Len())}
}

// Scan evaluates a predicate with the layout's bit-parallel scan and
// returns the selection bitmap (the filter bit vector F of the paper).
// IN-lists run one equality scan per member and union the results (§II-E).
func (c *Column) Scan(p Predicate) *Bitmap {
	if p.list != nil {
		b := bitvec.New(c.Len())
		for _, v := range p.list {
			b.Or(c.scanSimple(scan.Predicate{Op: scan.EQ, A: v}))
		}
		if c.nulls != nil {
			b.AndNot(c.nulls)
		}
		return &Bitmap{b: b}
	}
	b := c.scanSimple(p.p)
	if c.nulls != nil {
		b.AndNot(c.nulls) // NULL compares as unknown: never selected
	}
	return &Bitmap{b: b}
}

func (c *Column) scanSimple(p scan.Predicate) *bitvec.Bitmap {
	if c.layout == VBP {
		return scan.VBP(c.v, p)
	}
	return scan.HBP(c.h, p)
}

// TopK returns the k largest selected values in descending order (ties
// included arbitrarily). It runs one r-selection to find the k-th largest
// value, one scan to collect everything above it, and reconstructs at most
// k rows — never the whole selection.
func (c *Column) TopK(sel *Bitmap, k int, opts ...ExecOption) []uint64 {
	return c.extremeK(sel, k, true, opts)
}

// BottomK returns the k smallest selected values in ascending order.
func (c *Column) BottomK(sel *Bitmap, k int, opts ...ExecOption) []uint64 {
	return c.extremeK(sel, k, false, opts)
}

func (c *Column) extremeK(sel *Bitmap, k int, top bool, opts []ExecOption) []uint64 {
	cnt := c.Count(sel)
	if k <= 0 || cnt == 0 {
		return nil
	}
	if uint64(k) > cnt {
		k = int(cnt)
	}
	var r uint64
	if top {
		r = cnt - uint64(k) + 1
	} else {
		r = uint64(k)
	}
	thr, _ := c.Rank(sel, r, opts...)
	// Values strictly beyond the threshold all belong to the result; there
	// are at most k-1 of them, the rest are copies of the threshold.
	var strict *Bitmap
	if top {
		strict = c.Scan(Greater(thr))
	} else {
		strict = c.Scan(Less(thr))
	}
	strict.b.And(c.effective(sel))
	out := make([]uint64, 0, k)
	strict.ForEach(func(row int) { out = append(out, c.Value(row)) })
	if top {
		sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	} else {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	for len(out) < k {
		out = append(out, thr)
	}
	return out
}

// Count returns the number of selected non-NULL rows (SQL COUNT(column)
// semantics; use sel.Count for COUNT(*)).
func (c *Column) Count(sel *Bitmap) uint64 {
	c.checkSel(sel)
	return core.Count(c.effective(sel))
}

// Sum returns the sum of the selected values. The caller must ensure the
// true sum fits in uint64 (guaranteed when Len < 2^(64-BitWidth)).
func (c *Column) Sum(sel *Bitmap, opts ...ExecOption) uint64 {
	c.checkSel(sel)
	if c.sumOverflowPossible() {
		// Reroute through the checked Context path so a true overflow
		// surfaces as a *OverflowError panic instead of a wrapped value.
		v, err := c.SumContext(nil, sel, opts...)
		fusedMust(err)
		return v
	}
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		return nbp.SumOpt(c.nbpSource(), eff, nbpOptions(o))
	}
	if c.layout == VBP {
		return parallel.VBPSum(c.v, eff, o.par)
	}
	return parallel.HBPSum(c.h, eff, o.par)
}

// Min returns the minimum selected value; ok is false when the selection is
// empty.
func (c *Column) Min(sel *Bitmap, opts ...ExecOption) (uint64, bool) {
	c.checkSel(sel)
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		return nbp.MinOpt(c.nbpSource(), eff, nbpOptions(o))
	}
	if c.layout == VBP {
		return parallel.VBPMin(c.v, eff, o.par)
	}
	return parallel.HBPMin(c.h, eff, o.par)
}

// Max returns the maximum selected value; ok is false when the selection is
// empty.
func (c *Column) Max(sel *Bitmap, opts ...ExecOption) (uint64, bool) {
	c.checkSel(sel)
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		return nbp.MaxOpt(c.nbpSource(), eff, nbpOptions(o))
	}
	if c.layout == VBP {
		return parallel.VBPMax(c.v, eff, o.par)
	}
	return parallel.HBPMax(c.h, eff, o.par)
}

// Avg returns the mean of the selected values; ok is false when the
// selection is empty.
func (c *Column) Avg(sel *Bitmap, opts ...ExecOption) (float64, bool) {
	c.checkSel(sel)
	if c.sumOverflowPossible() {
		v, ok, err := c.AvgContext(nil, sel, opts...)
		fusedMust(err)
		return v, ok
	}
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		return nbp.AvgOpt(c.nbpSource(), eff, nbpOptions(o))
	}
	if c.layout == VBP {
		return parallel.VBPAvg(c.v, eff, o.par)
	}
	return parallel.HBPAvg(c.h, eff, o.par)
}

// Median returns the lower median of the selected values; ok is false when
// the selection is empty.
func (c *Column) Median(sel *Bitmap, opts ...ExecOption) (uint64, bool) {
	c.checkSel(sel)
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		return nbp.MedianOpt(c.nbpSource(), eff, nbpOptions(o))
	}
	if c.layout == VBP {
		return parallel.VBPMedian(c.v, eff, o.par)
	}
	return parallel.HBPMedian(c.h, eff, o.par)
}

// Rank returns the r-th smallest selected value (1-based) — the
// r-selection the paper's MEDIAN algorithms generalize to. ok is false
// when fewer than r rows are selected or r is 0.
func (c *Column) Rank(sel *Bitmap, r uint64, opts ...ExecOption) (uint64, bool) {
	c.checkSel(sel)
	o := execOptions(opts)
	eff := c.effective(sel)
	if c.useReconstruct(eff, o) {
		defer recordReconstruct(o.par.Stats, eff, time.Now())
		return nbp.RankOpt(c.nbpSource(), eff, r, nbpOptions(o))
	}
	if c.layout == VBP {
		return parallel.VBPRank(c.v, eff, r, o.par)
	}
	return parallel.HBPRank(c.h, eff, r, o.par)
}

// Quantile returns the value at quantile q in [0, 1] of the selected rows
// (nearest-rank definition: rank = ceil(q*count), with q=0 meaning the
// minimum). ok is false when the selection is empty.
func (c *Column) Quantile(sel *Bitmap, q float64, opts ...ExecOption) (uint64, bool) {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("bpagg: quantile %v outside [0,1]", q))
	}
	cnt := c.Count(sel)
	if cnt == 0 {
		return 0, false
	}
	r := uint64(float64(cnt)*q + 0.999999999)
	if r == 0 {
		r = 1
	}
	if r > cnt {
		r = cnt
	}
	return c.Rank(sel, r, opts...)
}

func (c *Column) checkSel(sel *Bitmap) {
	if sel.b.Len() != c.Len() {
		panic(fmt.Sprintf("bpagg: selection length %d does not match column length %d",
			sel.b.Len(), c.Len()))
	}
}

// ExecOption configures aggregate execution: the paper's two §IV-B
// acceleration knobs (Parallel, WideWords) plus the §III access-method
// choice (Access).
type ExecOption func(*execConfig)

// execConfig is the resolved option bag of one aggregate call.
type execConfig struct {
	par    parallel.Options
	access AccessMethod
}

// Parallel partitions the work across n goroutines.
func Parallel(n int) ExecOption {
	return func(c *execConfig) { c.par.Threads = n }
}

// WideWords switches to the 256-bit wide-word kernels (four 64-bit lanes
// per step — the portable stand-in for the paper's AVX2 acceleration).
func WideWords() ExecOption {
	return func(c *execConfig) { c.par.Wide = true }
}

func execOptions(opts []ExecOption) execConfig {
	var c execConfig
	for _, f := range opts {
		f(&c)
	}
	return c
}
