package bpagg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Work-counter determinism (DESIGN.md §8): ExecStats counts work
// analytically from the layout geometry and the filter, so the same
// query must report identical WordsTouched and SegmentsAggregated at any
// thread count — and, of course, identical answers. This is what makes
// the counters usable in regression tests: a perf assertion that drifted
// with GOMAXPROCS would be noise.

func TestStatsThreadDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	const n, k = 5000, 14
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & ((1 << k) - 1)
	}

	type result struct {
		label string
		value uint64
		ok    bool
	}
	runAll := func(col *Column, sel *Bitmap, threads int) ([]result, ExecStats) {
		rec := NewStatsCollector()
		opts := []ExecOption{Parallel(threads), CollectStats(rec)}
		var out []result
		out = append(out, result{"SUM", col.Sum(sel, opts...), true})
		out = append(out, result{"COUNT", col.Count(sel), true})
		mn, okn := col.Min(sel, opts...)
		out = append(out, result{"MIN", mn, okn})
		mx, okx := col.Max(sel, opts...)
		out = append(out, result{"MAX", mx, okx})
		md, okd := col.Median(sel, opts...)
		out = append(out, result{"MEDIAN", md, okd})
		return out, rec.Snapshot()
	}

	for _, layout := range []Layout{VBP, HBP} {
		t.Run(layout.String(), func(t *testing.T) {
			col := NewColumn(layout, k)
			col.Append(vals...)
			for _, sel := range []struct {
				name string
				bm   *Bitmap
			}{
				{"all", col.All()},
				{"filtered", col.Scan(Less(1 << (k - 2)))},
				{"sparse", col.Scan(Equal(vals[17]))},
			} {
				t.Run(sel.name, func(t *testing.T) {
					r1, s1 := runAll(col, sel.bm, 1)
					r8, s8 := runAll(col, sel.bm, 8)
					for i := range r1 {
						if r1[i] != r8[i] {
							t.Errorf("%s: Threads=1 %+v, Threads=8 %+v", r1[i].label, r1[i], r8[i])
						}
					}
					if s1.WordsTouched != s8.WordsTouched {
						t.Errorf("WordsTouched: Threads=1 %d, Threads=8 %d", s1.WordsTouched, s8.WordsTouched)
					}
					if s1.SegmentsAggregated != s8.SegmentsAggregated {
						t.Errorf("SegmentsAggregated: Threads=1 %d, Threads=8 %d",
							s1.SegmentsAggregated, s8.SegmentsAggregated)
					}
					if s1.RadixRounds != s8.RadixRounds {
						t.Errorf("RadixRounds: Threads=1 %d, Threads=8 %d", s1.RadixRounds, s8.RadixRounds)
					}
					if s1.Aggregates != s8.Aggregates {
						t.Errorf("Aggregates: Threads=1 %d, Threads=8 %d", s1.Aggregates, s8.Aggregates)
					}
					if sel.name == "all" && s1.WordsTouched == 0 {
						t.Error("WordsTouched = 0 on a full selection; counters not wired")
					}
				})
			}
		})
	}
}

// TestStatsWideWordInvariance: the wide (256-bit) kernels process the
// same logical words, so counters must not depend on the Wide option
// either.
func TestStatsWideWordInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, k = 4096, 12
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & ((1 << k) - 1)
	}
	for _, layout := range []Layout{VBP, HBP} {
		col := NewColumn(layout, k)
		col.Append(vals...)
		sel := col.Scan(Greater(100))
		collect := func(opts ...ExecOption) ExecStats {
			rec := NewStatsCollector()
			col.Sum(sel, append(opts, CollectStats(rec))...)
			if _, ok := col.Median(sel, append(opts, CollectStats(rec))...); !ok {
				t.Fatalf("%v: empty median", layout)
			}
			return rec.Snapshot()
		}
		narrow := collect()
		wide := collect(WideWords())
		if narrow.WordsTouched != wide.WordsTouched {
			t.Errorf("%v: WordsTouched narrow %d, wide %d", layout, narrow.WordsTouched, wide.WordsTouched)
		}
		if narrow.SegmentsAggregated != wide.SegmentsAggregated {
			t.Errorf("%v: SegmentsAggregated narrow %d, wide %d",
				layout, narrow.SegmentsAggregated, wide.SegmentsAggregated)
		}
		if narrow.RadixRounds != wide.RadixRounds {
			t.Errorf("%v: RadixRounds narrow %d, wide %d", layout, narrow.RadixRounds, wide.RadixRounds)
		}
	}
}

// TestStatsConcurrentQueries hammers one shared collector from many
// concurrent queries — the serving-process shape — and checks the totals
// under the race detector. Counters are deterministic per query, so the
// aggregate must be exactly queries × one query's stats.
func TestStatsConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, k = 2000, 12
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & ((1 << k) - 1)
	}
	col := NewColumn(VBP, k)
	col.Append(vals...)

	one := NewStatsCollector()
	sel := col.ScanStats(Less(1<<11), one)
	col.Sum(sel, CollectStats(one))
	col.Median(sel, CollectStats(one))
	want := one.Snapshot()

	const goroutines, perG = 8, 25
	shared := NewStatsCollector()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s := col.ScanStats(Less(1<<11), shared)
				col.Sum(s, CollectStats(shared))
				col.Median(s, CollectStats(shared))
			}
		}()
	}
	wg.Wait()
	got := shared.Snapshot()
	const q = goroutines * perG
	if got.Scans != q*want.Scans || got.Aggregates != q*want.Aggregates {
		t.Errorf("counts: got scans=%d aggs=%d, want %d and %d",
			got.Scans, got.Aggregates, q*want.Scans, q*want.Aggregates)
	}
	if got.WordsCompared != q*want.WordsCompared {
		t.Errorf("WordsCompared = %d, want %d", got.WordsCompared, q*want.WordsCompared)
	}
	if got.WordsTouched != q*want.WordsTouched {
		t.Errorf("WordsTouched = %d, want %d", got.WordsTouched, q*want.WordsTouched)
	}
	if got.SegmentsAggregated != q*want.SegmentsAggregated {
		t.Errorf("SegmentsAggregated = %d, want %d", got.SegmentsAggregated, q*want.SegmentsAggregated)
	}
	if got.RadixRounds != q*want.RadixRounds {
		t.Errorf("RadixRounds = %d, want %d", got.RadixRounds, q*want.RadixRounds)
	}
}

// TestStatsDisabledIsDefault pins the disabled-path guarantee at the API
// level: without CollectStats, queries run and a nil collector snapshot
// is all zeros.
func TestStatsDisabledIsDefault(t *testing.T) {
	col := NewColumn(VBP, 8)
	col.Append(1, 2, 3, 4, 5)
	if got := col.Sum(col.All()); got != 15 {
		t.Fatalf("Sum = %d", got)
	}
	var rec *StatsCollector
	if s := rec.Snapshot(); s != (ExecStats{}) {
		t.Errorf("nil collector snapshot = %+v", s)
	}
	if bm := col.ScanStats(Less(4), nil); bm.Count() != 3 {
		t.Errorf("nil-rec ScanStats count = %d", bm.Count())
	}
}

func ExampleColumn_ScanStats() {
	col := NewColumn(VBP, 8)
	for v := uint64(0); v < 256; v++ {
		col.Append(v) // sorted, so zone maps prune range scans
	}
	rec := NewStatsCollector()
	sel := col.ScanStats(Less(64), rec)
	sum := col.Sum(sel, CollectStats(rec))
	s := rec.Snapshot()
	fmt.Println("sum:", sum)
	// Segment 0 (values 0-63) zone-prunes as all-match and segments 1-3
	// as no-match, so no segment needs its words compared.
	fmt.Println("scanned:", s.SegmentsScanned, "pruned:", s.SegmentsPruned())
	// Output:
	// sum: 2016
	// scanned: 0 pruned: 4
}
