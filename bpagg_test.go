package bpagg

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLayoutString(t *testing.T) {
	if VBP.String() != "VBP" || HBP.String() != "HBP" {
		t.Error("layout names wrong")
	}
}

func TestColumnBasics(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		col := NewColumn(layout, 12)
		if col.Len() != 0 || col.BitWidth() != 12 || col.Layout() != layout {
			t.Fatalf("%v: fresh column state wrong", layout)
		}
		col.Append(5, 100, 4095)
		if col.Len() != 3 {
			t.Fatalf("%v: Len = %d", layout, col.Len())
		}
		for i, want := range []uint64{5, 100, 4095} {
			if got := col.Value(i); got != want {
				t.Fatalf("%v: Value(%d) = %d, want %d", layout, i, got, want)
			}
		}
		if col.MemoryWords() == 0 {
			t.Fatalf("%v: MemoryWords = 0", layout)
		}
	}
}

func TestWithGroupBits(t *testing.T) {
	col := NewColumn(VBP, 12, WithGroupBits(3))
	if col.GroupBits() != 3 {
		t.Errorf("GroupBits = %d, want 3", col.GroupBits())
	}
	h := NewColumn(HBP, 12, WithGroupBits(5))
	if h.GroupBits() != 5 {
		t.Errorf("HBP GroupBits = %d, want 5", h.GroupBits())
	}
}

func TestVBPNarrowColumnDefaultTau(t *testing.T) {
	// Default VBP tau is 4 but must clamp for narrower values.
	col := NewColumn(VBP, 2)
	col.Append(1, 2, 3)
	if got := col.Sum(col.All()); got != 6 {
		t.Errorf("Sum = %d", got)
	}
}

// endToEnd cross-checks the whole public pipeline against plain-slice
// evaluation on a random workload.
func TestEndToEndAgainstPlainSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n, k = 3000, 14
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << k))
	}
	for _, layout := range []Layout{VBP, HBP} {
		col := FromValues(layout, k, vals)
		preds := []Predicate{
			Less(5000), Greater(5000), Equal(vals[17]), NotEqual(vals[17]),
			LessEq(vals[0]), GreaterEq(vals[0]), Between(1000, 9000),
		}
		for _, p := range preds {
			sel := col.Scan(p)
			var kept []uint64
			var sum uint64
			for i, v := range vals {
				if p.Matches(v) != sel.Get(i) {
					t.Fatalf("%v %s: row %d (value %d) mismatch", layout, p, i, v)
				}
				if sel.Get(i) {
					kept = append(kept, v)
					sum += v
				}
			}
			if got := col.Count(sel); got != uint64(len(kept)) {
				t.Fatalf("%v %s: Count = %d, want %d", layout, p, got, len(kept))
			}
			if got := col.Sum(sel); got != sum {
				t.Fatalf("%v %s: Sum = %d, want %d", layout, p, got, sum)
			}
			sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
			if len(kept) > 0 {
				if got, ok := col.Min(sel); !ok || got != kept[0] {
					t.Fatalf("%v %s: Min = (%d,%v), want %d", layout, p, got, ok, kept[0])
				}
				if got, ok := col.Max(sel); !ok || got != kept[len(kept)-1] {
					t.Fatalf("%v %s: Max = (%d,%v)", layout, p, got, ok)
				}
				wantMed := kept[(len(kept)+1)/2-1]
				if got, ok := col.Median(sel); !ok || got != wantMed {
					t.Fatalf("%v %s: Median = (%d,%v), want %d", layout, p, got, ok, wantMed)
				}
				wantAvg := float64(sum) / float64(len(kept))
				if got, ok := col.Avg(sel); !ok || got != wantAvg {
					t.Fatalf("%v %s: Avg = (%v,%v), want %v", layout, p, got, ok, wantAvg)
				}
			}
		}
	}
}

func TestExecOptionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const n, k = 5000, 20
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << k))
	}
	for _, layout := range []Layout{VBP, HBP} {
		col := FromValues(layout, k, vals)
		sel := col.Scan(Less(1 << 19))
		base := col.Sum(sel)
		baseMed, _ := col.Median(sel)
		for _, opts := range [][]ExecOption{
			{Parallel(4)},
			{WideWords()},
			{Parallel(4), WideWords()},
			{Parallel(1)},
		} {
			if got := col.Sum(sel, opts...); got != base {
				t.Fatalf("%v Sum with %d opts: got %d want %d", layout, len(opts), got, base)
			}
			if got, ok := col.Median(sel, opts...); !ok || got != baseMed {
				t.Fatalf("%v Median with opts: got (%d,%v) want %d", layout, got, ok, baseMed)
			}
		}
	}
}

func TestBitmapOps(t *testing.T) {
	col := FromValues(VBP, 8, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	lo := col.Scan(Less(5)) // 1,2,3,4
	even := NewBitmap(col.Len())
	for i := 1; i < 8; i += 2 {
		even.Set(i) // values 2,4,6,8
	}
	both := lo.Clone().And(even) // 2,4
	if both.Count() != 2 {
		t.Errorf("And count = %d", both.Count())
	}
	if got := col.Sum(both); got != 6 {
		t.Errorf("Sum over And = %d", got)
	}
	either := lo.Clone().Or(even)
	if either.Count() != 6 {
		t.Errorf("Or count = %d", either.Count())
	}
	neither := either.Clone().Not()
	if neither.Count() != 2 { // values 5,7
		t.Errorf("Not count = %d", neither.Count())
	}
	diff := lo.Clone().AndNot(even) // 1,3
	if got := col.Sum(diff); got != 4 {
		t.Errorf("Sum over AndNot = %d", got)
	}
	var rows []int
	both.ForEach(func(r int) { rows = append(rows, r) })
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 3 {
		t.Errorf("ForEach rows = %v", rows)
	}
}

func TestQuantile(t *testing.T) {
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i + 1) // 1..100
	}
	col := FromValues(HBP, 7, vals)
	all := col.All()
	cases := []struct {
		q    float64
		want uint64
	}{
		{0, 1}, {0.5, 50}, {0.99, 99}, {1, 100}, {0.25, 25},
	}
	for _, c := range cases {
		if got, ok := col.Quantile(all, c.q); !ok || got != c.want {
			t.Errorf("Quantile(%v) = (%d,%v), want %d", c.q, got, ok, c.want)
		}
	}
	if _, ok := col.Quantile(col.None(), 0.5); ok {
		t.Error("Quantile over empty selection should report !ok")
	}
}

func TestSelectionLengthMismatchPanics(t *testing.T) {
	a := FromValues(VBP, 8, []uint64{1, 2, 3})
	b := FromValues(VBP, 8, []uint64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched selection did not panic")
		}
	}()
	a.Sum(b.All())
}

func TestRankBounds(t *testing.T) {
	col := FromValues(VBP, 8, []uint64{9, 3, 7})
	all := col.All()
	if v, ok := col.Rank(all, 1); !ok || v != 3 {
		t.Errorf("Rank(1) = (%d,%v)", v, ok)
	}
	if v, ok := col.Rank(all, 3); !ok || v != 9 {
		t.Errorf("Rank(3) = (%d,%v)", v, ok)
	}
	if _, ok := col.Rank(all, 0); ok {
		t.Error("Rank(0) should report !ok")
	}
	if _, ok := col.Rank(all, 4); ok {
		t.Error("Rank(4) should report !ok")
	}
}
