// Overhead guard for the observability layer (DESIGN.md §8): metrics are
// disabled by default and the disabled path must cost nothing measurable
// on the hot aggregation loop. The paper's headline numbers are a few
// tenths of a ns/tuple, so even small fixed costs would show.
//
//	go test -bench 'VBPSumStats' -count 10
//
// compares the VBP SUM hot path with collection off (the default, which
// takes the identical pre-observability code path) and on (stats derived
// analytically per driver call). The off/on gap is the full price of
// observability; off vs the pre-metrics tree is by construction the same
// machine code plus one nil check per driver entry.
package bpagg_test

import (
	"bpagg"

	"math/rand"
	"testing"
)

func statsBenchColumn(b *testing.B, layout bpagg.Layout) (*bpagg.Column, *bpagg.Bitmap) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	const k = 25
	vals := make([]uint64, benchN)
	for i := range vals {
		vals[i] = rng.Uint64() & ((1 << k) - 1)
	}
	col := bpagg.NewColumn(layout, k)
	col.Append(vals...)
	return col, col.Scan(bpagg.Less(1 << (k - 1)))
}

func BenchmarkVBPSumStatsOff(b *testing.B) {
	col, sel := statsBenchColumn(b, bpagg.VBP)
	b.SetBytes(benchN / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Sum(sel)
	}
}

func BenchmarkVBPSumStatsOn(b *testing.B) {
	col, sel := statsBenchColumn(b, bpagg.VBP)
	rec := bpagg.NewStatsCollector()
	b.SetBytes(benchN / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Sum(sel, bpagg.CollectStats(rec))
	}
}

func BenchmarkVBPScanStatsOff(b *testing.B) {
	col, _ := statsBenchColumn(b, bpagg.VBP)
	b.SetBytes(benchN / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Scan(bpagg.Less(1 << 20))
	}
}

func BenchmarkVBPScanStatsOn(b *testing.B) {
	col, _ := statsBenchColumn(b, bpagg.VBP)
	rec := bpagg.NewStatsCollector()
	b.SetBytes(benchN / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.ScanStats(bpagg.Less(1<<20), rec)
	}
}
