package bpagg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Sharded tables serialize as a versioned container around the existing
// flat table framing: a schema header, then each shard as a complete
// table stream (so every shard round-trips through the validated
// ReadTable path, zones and caches included), then the shard catalog.
//
//	sharded := magic version shardRows shardCount colCount
//	           (nameLen name layout k tau)*         // schema
//	           table*                               // one flat framing per shard
//	           (any min max)*                       // catalog, shard-major
//
// The catalog is redundant with the data by construction; readers
// recompute the bounds from the loaded shards and reject a file whose
// stored catalog disagrees — a corruption check, not a trust decision.
// Seed-era flat `.bpag` files remain loadable through ReadPartitioned,
// which sniffs the magic and adopts a flat table as a single shard.
const (
	shardMagic     uint32 = 0x42505348 // "BPSH"
	shardIOVersion uint16 = 1
)

// WriteTo serializes the partitioned store. It implements io.WriterTo.
func (st *ShardedTable) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	hdr := []any{
		shardMagic, shardIOVersion, uint64(st.shardRows),
		uint32(len(st.shards)), uint32(len(st.specs)),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	// tau is resolved by the column constructor (defaulted or set via
	// WithGroupBits), so read it off a shard — a throwaway one when empty.
	probe := st.newShard()
	if len(st.shards) > 0 {
		probe = st.shards[0]
	}
	for _, sp := range st.specs {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(sp.name))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, sp.name); err != nil {
			return cw.n, err
		}
		tau := uint16(probe.Column(sp.name).GroupBits())
		for _, v := range []any{uint8(sp.layout), uint16(sp.bits), tau} {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return cw.n, err
			}
		}
	}
	for _, sh := range st.shards {
		if _, err := sh.WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	for s := range st.shards {
		for j := range st.specs {
			b := st.bounds[s][j]
			anyFlag := uint8(0)
			if b.any {
				anyFlag = 1
			}
			for _, v := range []any{anyFlag, b.min, b.max} {
				if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, nil
}

// ReadShardedTable deserializes a store written by ShardedTable.WriteTo.
// Every shard passes through the flat ReadTable validation; on top of
// that the reader checks that each shard matches the declared schema
// (names, layouts, widths, bit-group sizes), that all sealed shards are
// exactly full and the tail is not over-full, and that the stored shard
// catalog agrees with bounds recomputed from the data.
func ReadShardedTable(r io.Reader) (*ShardedTable, error) {
	var (
		magic      uint32
		version    uint16
		shardRows  uint64
		shardCount uint32
		colCount   uint32
	)
	for _, p := range []any{&magic, &version, &shardRows, &shardCount, &colCount} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("bpagg: reading sharded header: %w", err)
		}
	}
	if magic != shardMagic {
		return nil, fmt.Errorf("bpagg: bad sharded magic %#x", magic)
	}
	if version != shardIOVersion {
		return nil, fmt.Errorf("bpagg: unsupported sharded version %d", version)
	}
	if shardRows < 1 || shardRows > 1<<56 {
		return nil, fmt.Errorf("bpagg: implausible shard size %d", shardRows)
	}
	if shardCount > 1<<24 || colCount > 1<<20 {
		return nil, fmt.Errorf("bpagg: implausible shard/column counts (%d, %d)", shardCount, colCount)
	}

	st := NewShardedTable(int(shardRows))
	type schemaEntry struct {
		name   string
		layout Layout
		bits   int
		tau    int
	}
	schema := make([]schemaEntry, colCount)
	for i := range schema {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("bpagg: reading schema name length: %w", err)
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("bpagg: implausible column name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, fmt.Errorf("bpagg: reading schema name: %w", err)
		}
		var (
			layout uint8
			k, tau uint16
		)
		for _, p := range []any{&layout, &k, &tau} {
			if err := binary.Read(r, binary.LittleEndian, p); err != nil {
				return nil, fmt.Errorf("bpagg: reading schema entry: %w", err)
			}
		}
		if Layout(layout) != VBP && Layout(layout) != HBP {
			return nil, fmt.Errorf("bpagg: unknown layout %d", layout)
		}
		if k < 1 || k > 64 || tau < 1 || tau > k {
			return nil, fmt.Errorf("bpagg: implausible schema widths (k=%d tau=%d)", k, tau)
		}
		schema[i] = schemaEntry{string(nameBuf), Layout(layout), int(k), int(tau)}
		if _, dup := st.index[schema[i].name]; dup {
			return nil, fmt.Errorf("bpagg: duplicate column %q", schema[i].name)
		}
		st.AddColumn(schema[i].name, schema[i].layout, schema[i].bits, WithGroupBits(schema[i].tau))
	}

	rows := 0
	for s := uint32(0); s < shardCount; s++ {
		sh, err := ReadTable(r)
		if err != nil {
			return nil, fmt.Errorf("bpagg: shard %d: %w", s, err)
		}
		names := sh.Columns()
		if len(names) != len(schema) {
			return nil, fmt.Errorf("bpagg: shard %d has %d columns, schema has %d", s, len(names), len(schema))
		}
		for i, se := range schema {
			if names[i] != se.name {
				return nil, fmt.Errorf("bpagg: shard %d column %d is %q, schema says %q", s, i, names[i], se.name)
			}
			col := sh.Column(se.name)
			if col.Layout() != se.layout || col.BitWidth() != se.bits || col.GroupBits() != se.tau {
				return nil, fmt.Errorf("bpagg: shard %d column %q does not match the schema", s, se.name)
			}
		}
		if s < shardCount-1 && sh.Rows() != int(shardRows) {
			return nil, fmt.Errorf("bpagg: sealed shard %d has %d rows, want %d", s, sh.Rows(), shardRows)
		}
		if sh.Rows() < 1 || sh.Rows() > int(shardRows) {
			return nil, fmt.Errorf("bpagg: shard %d has %d rows, want 1..%d", s, sh.Rows(), shardRows)
		}
		rows += sh.Rows()
		st.shards = append(st.shards, sh)
		st.bounds = append(st.bounds, computeBounds(sh))
	}

	for s := uint32(0); s < shardCount; s++ {
		for j := range schema {
			var (
				anyFlag  uint8
				min, max uint64
			)
			for _, p := range []any{&anyFlag, &min, &max} {
				if err := binary.Read(r, binary.LittleEndian, p); err != nil {
					return nil, fmt.Errorf("bpagg: reading shard catalog: %w", err)
				}
			}
			if anyFlag > 1 {
				return nil, fmt.Errorf("bpagg: bad shard catalog flag %d", anyFlag)
			}
			got := st.bounds[s][j]
			want := shardBounds{min: min, max: max, any: anyFlag == 1}
			if got != want {
				return nil, fmt.Errorf("bpagg: shard %d column %q catalog bounds disagree with data", s, schema[j].name)
			}
		}
	}
	st.rows = rows
	return st, nil
}

// computeBounds derives one shard's catalog row from its column data,
// skipping NULLs (a scan never matches NULL, so NULL rows cannot defeat
// pruning).
func computeBounds(t *Table) []shardBounds {
	names := t.Columns()
	out := make([]shardBounds, len(names))
	for j, name := range names {
		col := t.Column(name)
		all := col.All()
		if lo, ok := col.Min(all); ok {
			hi, _ := col.Max(all)
			out[j] = shardBounds{min: lo, max: hi, any: true}
		}
	}
	return out
}

// ReadPartitioned loads either serialization format: a sharded container
// or a seed-era flat table file, which is adopted as a single-shard store
// (shard size = its row count). The shard catalog is computed from the
// data in both cases.
func ReadPartitioned(r io.Reader) (*ShardedTable, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("bpagg: reading magic: %w", err)
	}
	switch binary.LittleEndian.Uint32(head) {
	case shardMagic:
		return ReadShardedTable(br)
	case tableMagic:
		t, err := ReadTable(br)
		if err != nil {
			return nil, err
		}
		return PartitionTable(t), nil
	default:
		return nil, fmt.Errorf("bpagg: unrecognized magic %#x", binary.LittleEndian.Uint32(head))
	}
}

// PartitionTable adopts a flat table as a single-shard store without
// copying: the table becomes the store's only shard and the shard size is
// its row count. Use ShardTable to split into smaller shards instead.
func PartitionTable(t *Table) *ShardedTable {
	names := t.Columns()
	if len(names) == 0 {
		panic("bpagg: cannot shard a table with no columns")
	}
	shardRows := t.Rows()
	if shardRows < 1 {
		shardRows = 1
	}
	st := NewShardedTable(shardRows)
	for _, name := range names {
		c := t.Column(name)
		st.AddColumn(name, c.Layout(), c.BitWidth(), WithGroupBits(c.GroupBits()))
	}
	if t.Rows() > 0 {
		st.shards = append(st.shards, t)
		st.bounds = append(st.bounds, computeBounds(t))
		st.rows = t.Rows()
	}
	return st
}
