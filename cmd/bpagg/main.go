// Command bpagg is a small analytical query tool over bit-packed columnar
// files: load CSV data into a packed table once, then run aggregate
// queries against it at bit-parallel speed.
//
//	bpagg load  -csv sales.csv -schema 'price:decimal(2,105000),qty:uint(6):hbp,region:string' -out sales.bpag
//	bpagg load  -csv sales.csv -schema '...' -shard-rows 65536 -out sales.bpag   # sharded partitioned store
//	bpagg query -table sales.bpag 'SELECT SUM(price), MEDIAN(qty) WHERE region = "EU" GROUP BY region'
//	bpagg info  -table sales.bpag
//
// The query language is the aggregate subset the paper's wide-table
// setting reduces everything to: SELECT of aggregates (COUNT(*), COUNT,
// SUM, AVG, MIN, MAX, MEDIAN, QUANTILE(col, q)), a WHERE conjunction of
// simple predicates (=, !=, <, <=, >, >=, BETWEEN, IN), and an optional
// GROUP BY over one column.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -http
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bpagg"
	"bpagg/internal/catalog"
	"bpagg/internal/sqlmini"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "load":
		err = cmdLoad(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bpagg: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "bpagg: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "bpagg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bpagg load  -csv FILE -schema SPEC [-shard-rows N] -out FILE
              pack CSV into a .bpag table (N > 0 splits it into a
              sharded partitioned store with shard-catalog pruning)
  bpagg query -table FILE [-threads N] [-wide] [-timeout D] [-stats] [-http ADDR] [SQL]
              (omit SQL for an interactive session reading stdin)
  bpagg info  -table FILE

schema SPEC is comma-separated name:type[:layout] with types
  uint(bits) | decimal(scale,max) | int(min,max) | string
and layouts vbp (default) | hbp.

-timeout bounds each query (e.g. -timeout 2s); ctrl-C cancels the
query in flight (and, in the interactive session, returns to the
prompt instead of killing the process).`)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	csvPath := fs.String("csv", "", "input CSV file with a header row")
	schema := fs.String("schema", "", "schema specification")
	out := fs.String("out", "", "output .bpag file")
	shardRows := fs.Int("shard-rows", 0, "split into shards of this many rows (0 = flat table)")
	fs.Parse(args)
	if *csvPath == "" || *schema == "" || *out == "" {
		return fmt.Errorf("load needs -csv, -schema and -out")
	}
	specs, err := catalog.ParseSchema(*schema)
	if err != nil {
		return err
	}
	in, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer in.Close()

	start := time.Now()
	cat, err := catalog.LoadCSV(bufio.NewReader(in), specs)
	if err != nil {
		return err
	}
	if *shardRows > 0 {
		cat.Shard(*shardRows)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	n, err := cat.WriteTo(w)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if cat.Sharded != nil {
		fmt.Printf("loaded %d rows, %d columns, %d shards of %d rows -> %s (%d bytes) in %v\n",
			cat.Rows(), len(cat.Specs), cat.Sharded.NumShards(), cat.Sharded.ShardRows(),
			*out, n, time.Since(start).Round(time.Millisecond))
		return nil
	}
	fmt.Printf("loaded %d rows, %d columns -> %s (%d bytes) in %v\n",
		cat.Rows(), len(cat.Specs), *out, n, time.Since(start).Round(time.Millisecond))
	return nil
}

func openCatalog(path string) (*catalog.Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return catalog.Read(bufio.NewReader(f))
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	table := fs.String("table", "", "packed .bpag table")
	threads := fs.Int("threads", 1, "worker goroutines for aggregation")
	wide := fs.Bool("wide", false, "use 256-bit wide-word kernels")
	auto := fs.Bool("auto", true, "pick bit-parallel vs reconstruction per query selectivity")
	timeout := fs.Duration("timeout", 0, "per-query deadline (0 = none)")
	stats := fs.Bool("stats", false, "print per-query execution statistics after each result")
	httpAddr := fs.String("http", "", "serve /debug/pprof (profiles and execution traces) on this address, e.g. localhost:6060")
	fs.Parse(args)
	if *table == "" || fs.NArg() > 1 {
		return fmt.Errorf("query needs -table and at most one SQL argument (none starts a REPL)")
	}
	cat, err := openCatalog(*table)
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		// Diagnostics only: pprof profiles and runtime/trace capture for
		// long sessions. Queries never block on this server.
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bpagg: -http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "bpagg: pprof at http://%s/debug/pprof/\n", *httpAddr)
	}
	opts := sqlmini.ExecOptions{Threads: *threads, Wide: *wide, Auto: *auto}
	if *stats {
		opts.Stats = bpagg.NewStatsCollector()
	}
	if fs.NArg() == 1 {
		// One-shot query: ctrl-C cancels the in-flight aggregation and
		// the process exits cleanly (status 130) once workers join.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runQuery(ctx, cat, fs.Arg(0), opts, *timeout)
	}
	// REPL: one query per line from stdin; errors don't end the session.
	// Each query gets its own signal-aware context, so ctrl-C cancels
	// the running query and falls back to the prompt; at an idle prompt
	// the default SIGINT disposition (terminate) applies.
	fmt.Printf("bpagg> connected to %s (%d rows); one query per line, ctrl-D to exit\n",
		*table, cat.Rows())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("bpagg> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		err := runQuery(ctx, cat, line, opts, *timeout)
		stop()
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "bpagg: query canceled")
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "bpagg: query timed out after %v\n", *timeout)
		case err != nil:
			fmt.Fprintln(os.Stderr, "bpagg:", err)
		}
	}
}

func runQuery(ctx context.Context, cat *catalog.Catalog, sql string, opts sqlmini.ExecOptions, timeout time.Duration) error {
	q, err := sqlmini.Parse(sql)
	if err != nil {
		return err
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := sqlmini.ExecuteContext(ctx, cat, q, opts)
	if opts.Stats != nil {
		// ExecuteContext joins every worker goroutine before returning —
		// including on ctrl-C and deadline expiry — so the collector is
		// quiescent here and -stats can report the work actually done
		// (partial on a canceled query) without racing a straggler's
		// Record or truncating mid-write. Snapshot-and-reset so each REPL
		// query reports its own numbers.
		defer func() {
			printStats(opts.Stats.Snapshot())
			opts.Stats.Reset()
		}()
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && timeout > 0 {
			return fmt.Errorf("%w (budget %v)", err, timeout)
		}
		return err
	}
	printResult(res)
	fmt.Printf("(%d row(s) over %d tuples in %v)\n",
		len(res.Rows), cat.Rows(), time.Since(start).Round(time.Microsecond))
	return nil
}

// printStats renders one query's execution statistics. EXPLAIN ANALYZE
// shows the same counters per stage; this is the one-line-per-area
// summary for ordinary queries.
func printStats(es bpagg.ExecStats) {
	fmt.Printf("stats: scans=%d segments=%d pruned_all=%d pruned_none=%d (pruned %.1f%%) words_compared=%d scan_time=%v\n",
		es.Scans, es.SegmentsScanned, es.SegmentsPrunedAll, es.SegmentsPrunedNone,
		100*es.PruneRatio(), es.WordsCompared, es.ScanTime().Round(time.Microsecond))
	fmt.Printf("stats: aggregates=%d segments=%d words_touched=%d radix_rounds=%d reconstructed=%d busy=%v agg_time=%v\n",
		es.Aggregates, es.SegmentsAggregated, es.WordsTouched, es.RadixRounds,
		es.ReconstructedRows, es.WorkerBusy().Round(time.Microsecond), es.AggTime().Round(time.Microsecond))
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	table := fs.String("table", "", "packed .bpag table")
	fs.Parse(args)
	if *table == "" {
		return fmt.Errorf("info needs -table")
	}
	cat, err := openCatalog(*table)
	if err != nil {
		return err
	}
	fmt.Printf("rows: %d\n", cat.Rows())
	if cat.Sharded != nil {
		fmt.Printf("shards: %d (up to %d rows each)\n",
			cat.Sharded.NumShards(), cat.Sharded.ShardRows())
	}
	fmt.Printf("%-16s %-10s %-7s %6s %8s %10s\n",
		"column", "type", "layout", "bits", "nulls", "words")
	for _, sp := range cat.Specs {
		if cat.Sharded != nil {
			layout, bits, nulls, words := cat.Sharded.ColumnInfo(sp.Name)
			fmt.Printf("%-16s %-10s %-7s %6d %8d %10d\n",
				sp.Name, typeLabel(sp), layout, bits, nulls, words)
			continue
		}
		col := cat.Table.Column(sp.Name)
		fmt.Printf("%-16s %-10s %-7s %6d %8d %10d\n",
			sp.Name, typeLabel(sp), col.Layout(), col.BitWidth(),
			col.NullCount(), col.MemoryWords())
	}
	return nil
}

func typeLabel(sp catalog.Spec) string {
	switch sp.Kind {
	case catalog.Uint:
		return fmt.Sprintf("uint(%d)", sp.Bits)
	case catalog.Decimal:
		return fmt.Sprintf("decimal(%d)", sp.Scale)
	case catalog.Int:
		return fmt.Sprintf("int(%d..%d)", sp.MinInt, sp.MaxInt)
	case catalog.String:
		return fmt.Sprintf("string[%d]", len(sp.Keys))
	}
	return "?"
}

func printResult(res *sqlmini.Result) {
	widths := make([]int, len(res.Headers))
	for i, h := range res.Headers {
		widths[i] = len(h)
	}
	for _, row := range res.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	line(res.Headers)
	for _, row := range res.Rows {
		line(row)
	}
}
