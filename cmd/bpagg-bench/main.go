// Command bpagg-bench regenerates the paper's evaluation (Feng & Lo, ICDE
// 2015, §IV): Figures 5-7 (micro-benchmarks of the aggregation phase),
// Figure 8 (multi-threading and wide-word speedups) and Table II (TPC-H
// style queries), plus a fused-pipeline A/B comparison ("fused") of the
// scan→aggregate path against the two-phase scan-then-aggregate path,
// and a grouped A/B comparison ("groupby") of the single-pass bit-sliced
// GROUP BY engine against the legacy per-group walk across cardinalities,
// with a high-cardinality extension ("groupby-hicard") that sweeps group
// counts up to 2^20 through the hash-banked partition tier.
//
// Usage:
//
//	bpagg-bench -experiment all
//	bpagg-bench -experiment fig5 -n 16777216
//	bpagg-bench -experiment table2 -threads 8
//	bpagg-bench -json                       # also write BENCH_results.json
//
// Results print as aligned text tables matching the paper's layout; see
// EXPERIMENTS.md for the paper-vs-measured record. With -json, the same
// numbers are additionally written as machine-readable JSON (schema
// bpagg-bench/v1) so CI can archive the perf trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bpagg/internal/bench"
	"bpagg/internal/tpch"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig5 | fig6 | fig7 | fig8 | table2 | fused | groupby | groupby-hicard | concurrent-clients | oracle-soak | all")
		n          = flag.Int("n", 4<<20, "tuples per micro-benchmark column")
		k          = flag.Int("k", 25, "default value width in bits")
		sel        = flag.Float64("sel", 0.1, "default filter selectivity")
		threads    = flag.Int("threads", 4, "worker threads for fig8/table2")
		seed       = flag.Int64("seed", 1, "data generation seed")
		soakSeeds  = flag.Int("soak-seeds", 2, "seeds to run for -experiment oracle-soak")
		minTime    = flag.Duration("mintime", 150*time.Millisecond, "minimum measurement time per data point")
		skipSanity = flag.Bool("skip-sanity", false, "skip the BP-vs-NBP agreement pre-check")
		jsonOut    = flag.Bool("json", false, "also write machine-readable results (see -json-out)")
		jsonPath   = flag.String("json-out", "BENCH_results.json", "output file for -json")
	)
	flag.Parse()

	cfg := bench.Config{
		N: *n, K: *k, Sel: *sel, Threads: *threads, Seed: *seed, MinTime: *minTime,
	}
	fmt.Printf("bpagg-bench: n=%d k=%d sel=%v threads=%d GOMAXPROCS=%d\n\n",
		cfg.N, cfg.K, cfg.Sel, cfg.Threads, runtime.GOMAXPROCS(0))

	if *experiment == "oracle-soak" {
		// The soak is itself a (far stronger) BP-vs-reference check.
		*skipSanity = true
	}
	if !*skipSanity {
		if !bench.Sanity(cfg) {
			fmt.Fprintln(os.Stderr, "sanity check failed: BP and NBP disagree; not benchmarking")
			os.Exit(1)
		}
		fmt.Println("sanity: BP and NBP agree on all queries and layouts")
		fmt.Println()
	}

	var report *bench.Report
	if *jsonOut {
		report = bench.NewReport(cfg)
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "fig5":
			rows := bench.Fig5(cfg)
			bench.PrintFig5(os.Stdout, rows)
			report.AddFig5(rows)
		case "fig6":
			rows := bench.Fig6(cfg)
			bench.PrintFig6(os.Stdout, rows)
			report.AddFig6(rows)
		case "fig7":
			rows := bench.Fig7(cfg)
			bench.PrintFig7(os.Stdout, rows)
			report.AddFig7(rows)
		case "fig8":
			rows := bench.Fig8(cfg)
			bench.PrintFig8(os.Stdout, rows, cfg.Threads)
			report.AddFig8(rows)
		case "table2":
			vrows := bench.Table2(cfg, tpch.VBP)
			bench.PrintTable2(os.Stdout, tpch.VBP, vrows)
			fmt.Println()
			hrows := bench.Table2(cfg, tpch.HBP)
			bench.PrintTable2(os.Stdout, tpch.HBP, hrows)
			report.AddTable2(tpch.VBP, vrows)
			report.AddTable2(tpch.HBP, hrows)
		case "fused":
			rows := bench.Fused(cfg)
			bench.PrintFused(os.Stdout, rows, cfg)
			report.AddFused(rows)
		case "groupby":
			rows := bench.GroupBy(cfg)
			bench.PrintGroupBy(os.Stdout, rows, cfg)
			report.AddGroupBy(rows)
		case "groupby-hicard":
			// High-cardinality sweep into hash-tier territory; excluded
			// from "all" — the largest points build multi-million-row
			// tables and CI archives it as its own artifact.
			rows := bench.GroupByHiCard(cfg)
			bench.PrintGroupByHiCard(os.Stdout, rows, cfg)
			report.AddGroupByHiCard(rows)
		case "concurrent-clients":
			rows, err := bench.ConcurrentClients(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "concurrent-clients:", err)
				os.Exit(1)
			}
			bench.PrintServer(os.Stdout, rows)
			report.AddServer(rows)
		case "oracle-soak":
			// Correctness soak, not a benchmark: the Deep differential
			// sweep over [seed, seed+soak-seeds). Excluded from "all".
			if fails := bench.OracleSoak(os.Stdout, *seed, *soakSeeds); fails > 0 {
				fmt.Fprintf(os.Stderr, "oracle-soak: %d divergences\n", fails)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"fig5", "fig6", "fig7", "fig8", "table2", "fused", "groupby", "concurrent-clients"} {
			run(name)
		}
	} else {
		run(*experiment)
	}

	if report != nil {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpagg-bench:", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpagg-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
