// Command bpagg-bench regenerates the paper's evaluation (Feng & Lo, ICDE
// 2015, §IV): Figures 5-7 (micro-benchmarks of the aggregation phase),
// Figure 8 (multi-threading and wide-word speedups) and Table II (TPC-H
// style queries), plus a fused-pipeline A/B comparison ("fused") of the
// scan→aggregate path against the two-phase scan-then-aggregate path,
// a grouped A/B comparison ("groupby") of the single-pass bit-sliced
// GROUP BY engine against the legacy per-group walk across cardinalities,
// with a high-cardinality extension ("groupby-hicard") that sweeps group
// counts up to 2^20 through the hash-banked partition tier, a SUM
// kernel A/B comparison ("sum-kernels") of the carry-save positional-
// popcount kernels against the per-word-popcount bodies they replaced,
// a shard-count sweep ("shard-scale") of the sharded partitioned
// store against the flat table it was split from, and a range-width
// sweep ("range-scale") of the prefix-sum range index against the fused
// scan fallback on filter-free positional ranges.
//
// Usage:
//
//	bpagg-bench -experiment all
//	bpagg-bench -experiment fig5 -n 16777216
//	bpagg-bench -experiment table2 -threads 8
//	bpagg-bench -json                       # also write BENCH_results.json
//
// Results print as aligned text tables matching the paper's layout; see
// EXPERIMENTS.md for the paper-vs-measured record. With -json, the same
// numbers are additionally written as machine-readable JSON (schema
// bpagg-bench/v1) so CI can archive the perf trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"bpagg/internal/bench"
	"bpagg/internal/tpch"
)

// runCtx carries everything an experiment body needs beyond the shared
// Config: the optional JSON report (nil-safe Add methods) and the soak
// parameters.
type runCtx struct {
	cfg       bench.Config
	report    *bench.Report
	seed      int64
	soakSeeds int
}

// experimentSpec registers one experiment. The flag help text, the
// unknown-experiment error, and the "all" sequence are all derived from
// this table, so adding an experiment is one entry here.
type experimentSpec struct {
	name  string
	inAll bool // part of "-experiment all"
	run   func(rc runCtx) error
}

var experiments = []experimentSpec{
	{"fig5", true, func(rc runCtx) error {
		rows := bench.Fig5(rc.cfg)
		bench.PrintFig5(os.Stdout, rows)
		rc.report.AddFig5(rows)
		return nil
	}},
	{"fig6", true, func(rc runCtx) error {
		rows := bench.Fig6(rc.cfg)
		bench.PrintFig6(os.Stdout, rows)
		rc.report.AddFig6(rows)
		return nil
	}},
	{"fig7", true, func(rc runCtx) error {
		rows := bench.Fig7(rc.cfg)
		bench.PrintFig7(os.Stdout, rows)
		rc.report.AddFig7(rows)
		return nil
	}},
	{"fig8", true, func(rc runCtx) error {
		rows := bench.Fig8(rc.cfg)
		bench.PrintFig8(os.Stdout, rows, rc.cfg.Threads)
		rc.report.AddFig8(rows)
		return nil
	}},
	{"table2", true, func(rc runCtx) error {
		vrows := bench.Table2(rc.cfg, tpch.VBP)
		bench.PrintTable2(os.Stdout, tpch.VBP, vrows)
		fmt.Println()
		hrows := bench.Table2(rc.cfg, tpch.HBP)
		bench.PrintTable2(os.Stdout, tpch.HBP, hrows)
		rc.report.AddTable2(tpch.VBP, vrows)
		rc.report.AddTable2(tpch.HBP, hrows)
		return nil
	}},
	{"fused", true, func(rc runCtx) error {
		rows := bench.Fused(rc.cfg)
		bench.PrintFused(os.Stdout, rows, rc.cfg)
		rc.report.AddFused(rows)
		return nil
	}},
	{"shard-scale", true, func(rc runCtx) error {
		rows := bench.ShardScale(rc.cfg)
		bench.PrintShardScale(os.Stdout, rows, rc.cfg)
		rc.report.AddShardScale(rows)
		return nil
	}},
	{"range-scale", true, func(rc runCtx) error {
		rows := bench.RangeScale(rc.cfg)
		bench.PrintRangeScale(os.Stdout, rows, rc.cfg)
		rc.report.AddRangeScale(rows)
		return nil
	}},
	{"sum-kernels", true, func(rc runCtx) error {
		rows, wideRows := bench.SumKernels(rc.cfg)
		bench.PrintSumKernels(os.Stdout, rows, wideRows, rc.cfg)
		rc.report.AddSumKernels(rows, wideRows)
		return nil
	}},
	{"groupby", true, func(rc runCtx) error {
		rows := bench.GroupBy(rc.cfg)
		bench.PrintGroupBy(os.Stdout, rows, rc.cfg)
		rc.report.AddGroupBy(rows)
		return nil
	}},
	// High-cardinality sweep into hash-tier territory; excluded from
	// "all" — the largest points build multi-million-row tables and CI
	// archives it as its own artifact.
	{"groupby-hicard", false, func(rc runCtx) error {
		rows := bench.GroupByHiCard(rc.cfg)
		bench.PrintGroupByHiCard(os.Stdout, rows, rc.cfg)
		rc.report.AddGroupByHiCard(rows)
		return nil
	}},
	{"concurrent-clients", true, func(rc runCtx) error {
		rows, err := bench.ConcurrentClients(rc.cfg)
		if err != nil {
			return err
		}
		bench.PrintServer(os.Stdout, rows)
		rc.report.AddServer(rows)
		return nil
	}},
	// Correctness soak, not a benchmark: the Deep differential sweep
	// over [seed, seed+soak-seeds). Excluded from "all".
	{"oracle-soak", false, func(rc runCtx) error {
		if fails := bench.OracleSoak(os.Stdout, rc.seed, rc.soakSeeds); fails > 0 {
			return fmt.Errorf("%d divergences", fails)
		}
		return nil
	}},
}

// experimentNames returns the registered names in table order.
func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

func findExperiment(name string) *experimentSpec {
	for i := range experiments {
		if experiments[i].name == name {
			return &experiments[i]
		}
	}
	return nil
}

func main() {
	var (
		experiment = flag.String("experiment", "all",
			strings.Join(append(experimentNames(), "all"), " | "))
		n          = flag.Int("n", 4<<20, "tuples per micro-benchmark column")
		k          = flag.Int("k", 25, "default value width in bits")
		sel        = flag.Float64("sel", 0.1, "default filter selectivity")
		threads    = flag.Int("threads", 4, "worker threads for fig8/table2")
		seed       = flag.Int64("seed", 1, "data generation seed")
		soakSeeds  = flag.Int("soak-seeds", 2, "seeds to run for -experiment oracle-soak")
		minTime    = flag.Duration("mintime", 150*time.Millisecond, "minimum measurement time per data point")
		skipSanity = flag.Bool("skip-sanity", false, "skip the BP-vs-NBP agreement pre-check")
		jsonOut    = flag.Bool("json", false, "also write machine-readable results (see -json-out)")
		jsonPath   = flag.String("json-out", "BENCH_results.json", "output file for -json")
	)
	flag.Parse()

	if *experiment != "all" && findExperiment(*experiment) == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s\n",
			*experiment, strings.Join(append(experimentNames(), "all"), ", "))
		os.Exit(2)
	}

	cfg := bench.Config{
		N: *n, K: *k, Sel: *sel, Threads: *threads, Seed: *seed, MinTime: *minTime,
	}
	fmt.Printf("bpagg-bench: n=%d k=%d sel=%v threads=%d GOMAXPROCS=%d cpus=%d\n",
		cfg.N, cfg.K, cfg.Sel, cfg.Threads, runtime.GOMAXPROCS(0), runtime.NumCPU())
	if cfg.Threads > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr, "warning: -threads %d exceeds the %d available CPUs; "+
			"multi-threaded speedups will be contended, not parallel\n",
			cfg.Threads, runtime.NumCPU())
	}
	fmt.Println()

	if *experiment == "oracle-soak" {
		// The soak is itself a (far stronger) BP-vs-reference check.
		*skipSanity = true
	}
	if !*skipSanity {
		if !bench.Sanity(cfg) {
			fmt.Fprintln(os.Stderr, "sanity check failed: BP and NBP disagree; not benchmarking")
			os.Exit(1)
		}
		fmt.Println("sanity: BP and NBP agree on all queries and layouts")
		fmt.Println()
	}

	var report *bench.Report
	if *jsonOut {
		report = bench.NewReport(cfg)
	}
	rc := runCtx{cfg: cfg, report: report, seed: *seed, soakSeeds: *soakSeeds}

	run := func(e *experimentSpec) {
		start := time.Now()
		if err := e.run(rc); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for i := range experiments {
			if experiments[i].inAll {
				run(&experiments[i])
			}
		}
	} else {
		run(findExperiment(*experiment))
	}

	if report != nil {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpagg-bench:", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpagg-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
