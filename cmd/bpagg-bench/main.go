// Command bpagg-bench regenerates the paper's evaluation (Feng & Lo, ICDE
// 2015, §IV): Figures 5-7 (micro-benchmarks of the aggregation phase),
// Figure 8 (multi-threading and wide-word speedups) and Table II (TPC-H
// style queries).
//
// Usage:
//
//	bpagg-bench -experiment all
//	bpagg-bench -experiment fig5 -n 16777216
//	bpagg-bench -experiment table2 -threads 8
//
// Results print as aligned text tables matching the paper's layout; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bpagg/internal/bench"
	"bpagg/internal/tpch"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig5 | fig6 | fig7 | fig8 | table2 | all")
		n          = flag.Int("n", 4<<20, "tuples per micro-benchmark column")
		k          = flag.Int("k", 25, "default value width in bits")
		sel        = flag.Float64("sel", 0.1, "default filter selectivity")
		threads    = flag.Int("threads", 4, "worker threads for fig8/table2")
		seed       = flag.Int64("seed", 1, "data generation seed")
		minTime    = flag.Duration("mintime", 150*time.Millisecond, "minimum measurement time per data point")
		skipSanity = flag.Bool("skip-sanity", false, "skip the BP-vs-NBP agreement pre-check")
	)
	flag.Parse()

	cfg := bench.Config{
		N: *n, K: *k, Sel: *sel, Threads: *threads, Seed: *seed, MinTime: *minTime,
	}
	fmt.Printf("bpagg-bench: n=%d k=%d sel=%v threads=%d GOMAXPROCS=%d\n\n",
		cfg.N, cfg.K, cfg.Sel, cfg.Threads, runtime.GOMAXPROCS(0))

	if !*skipSanity {
		if !bench.Sanity(cfg) {
			fmt.Fprintln(os.Stderr, "sanity check failed: BP and NBP disagree; not benchmarking")
			os.Exit(1)
		}
		fmt.Println("sanity: BP and NBP agree on all queries and layouts")
		fmt.Println()
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "fig5":
			bench.PrintFig5(os.Stdout, bench.Fig5(cfg))
		case "fig6":
			bench.PrintFig6(os.Stdout, bench.Fig6(cfg))
		case "fig7":
			bench.PrintFig7(os.Stdout, bench.Fig7(cfg))
		case "fig8":
			bench.PrintFig8(os.Stdout, bench.Fig8(cfg), cfg.Threads)
		case "table2":
			bench.PrintTable2(os.Stdout, tpch.VBP, bench.Table2(cfg, tpch.VBP))
			fmt.Println()
			bench.PrintTable2(os.Stdout, tpch.HBP, bench.Table2(cfg, tpch.HBP))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"fig5", "fig6", "fig7", "fig8", "table2"} {
			run(name)
		}
		return
	}
	run(*experiment)
}
