// Command bpaggd serves sqlmini aggregate queries over HTTP from one
// packed .bpag table, wrapped in the robustness envelope of
// internal/server (DESIGN.md §13): bounded admission with fast 429
// shedding, per-query deadlines, graceful SIGTERM drain, worker-panic
// containment, and shared-scan batching that answers concurrent
// same-predicate queries from a single traversal.
//
//	bpagg load -csv sales.csv -schema 'price:decimal(2,105000),qty:uint(6):hbp,region:string' -out sales.bpag
//	bpaggd -table sales.bpag -addr :8080
//	curl -s -X POST 'localhost:8080/query?timeout=500ms' -d 'SELECT SUM(price) WHERE region = "EU"'
//
// Endpoints:
//
//	POST /query    SQL text in the body; ?timeout= overrides the default
//	               deadline (clamped to -max-timeout). JSON answer with
//	               headers/rows, ExecStats, and batch info when the query
//	               was answered from a shared scan.
//	GET  /healthz  200 while accepting queries, 503 once draining.
//	GET  /statz    cumulative engine totals + request counters.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"bpagg/internal/catalog"
	"bpagg/internal/server"
	"bpagg/internal/sqlmini"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bpaggd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bpaggd", flag.ExitOnError)
	table := fs.String("table", "", "packed .bpag table to serve (required)")
	addr := fs.String("addr", ":8080", "listen address")
	threads := fs.Int("threads", 0, "worker goroutines per query (0 = engine default)")
	wide := fs.Bool("wide", false, "use 256-bit wide-word kernels")
	auto := fs.Bool("auto", true, "pick bit-parallel vs reconstruction per query selectivity")
	timeout := fs.Duration("timeout", 2*time.Second, "default per-query deadline")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on per-request ?timeout= overrides")
	concurrency := fs.Int("concurrency", 0, "max queries executing at once (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queries waiting for a slot before shedding (0 = 4x concurrency)")
	drain := fs.Duration("drain", 5*time.Second, "grace for in-flight queries on shutdown before hard cancel")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "how long a shared-scan batch collects same-class queries")
	batchMin := fs.Int("batch-min-inflight", 4, "min in-house queries before batching engages")
	noBatch := fs.Bool("no-batch", false, "disable shared-scan batching")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on this address, e.g. localhost:6060")
	fs.Parse(args)
	if *table == "" {
		return errors.New("-table is required")
	}

	f, err := os.Open(*table)
	if err != nil {
		return err
	}
	cat, err := catalog.Read(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Catalog:          cat,
		Exec:             sqlmini.ExecOptions{Threads: *threads, Wide: *wide, Auto: *auto},
		MaxConcurrent:    *concurrency,
		MaxQueue:         *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DrainTimeout:     *drain,
		BatchWindow:      *batchWindow,
		BatchMinInflight: *batchMin,
		DisableBatching:  *noBatch,
	})
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bpaggd: -pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "bpaggd: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "bpaggd: serving %s (%d rows) on http://%s/query\n",
		*table, cat.Rows(), ln.Addr())

	// First SIGTERM/SIGINT: drain gracefully — stop admitting (healthz
	// flips to 503 so balancers re-route), let in-flight queries finish
	// up to -drain, then hard-cancel stragglers. A second signal skips
	// the grace and exits once the cancel propagates.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "bpaggd: %v: draining (grace %v; signal again to cancel now)\n", sig, *drain)
	}
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "bpaggd: %v: canceling in-flight queries\n", sig)
		srv.BeginDrain()
		// Zero the remaining grace by draining with an expired context:
		// Drain is idempotent and hard-cancels immediately.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = srv.Drain(ctx)
	}()

	drainErr := srv.Drain(context.Background())
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "bpaggd:", drainErr)
	}
	fmt.Fprintln(os.Stderr, "bpaggd: drained, bye")
	return nil
}
