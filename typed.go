package bpagg

import "fmt"

// Typed columns wrap Column with an order-preserving codec so applications
// work in their own domain (decimals, signed integers, strings) while every
// scan and aggregate still runs bit-parallel on packed codes. Raw exposes
// the underlying Column for selection composition across columns.

// DecimalColumn stores non-negative fixed-point decimals.
type DecimalColumn struct {
	col   *Column
	codec Decimal
}

// NewDecimalColumn returns an empty decimal column; the codec fixes the
// scale and maximum (and thereby the packed bit width).
func NewDecimalColumn(layout Layout, codec Decimal, opts ...ColumnOption) *DecimalColumn {
	return &DecimalColumn{col: NewColumn(layout, codec.Bits(), opts...), codec: codec}
}

// Raw returns the underlying packed column.
func (d *DecimalColumn) Raw() *Column { return d.col }

// Len returns the number of rows.
func (d *DecimalColumn) Len() int { return d.col.Len() }

// Append adds decimal values.
func (d *DecimalColumn) Append(vals ...float64) {
	for _, v := range vals {
		d.col.Append(d.codec.Encode(v))
	}
}

// AppendNull adds a NULL row.
func (d *DecimalColumn) AppendNull() { d.col.AppendNull() }

// Value reconstructs row i.
func (d *DecimalColumn) Value(i int) float64 { return d.codec.Decode(d.col.Value(i)) }

// ScanLess selects rows with value < v.
func (d *DecimalColumn) ScanLess(v float64) *Bitmap { return d.col.Scan(Less(d.codec.Encode(v))) }

// ScanLessEq selects rows with value <= v.
func (d *DecimalColumn) ScanLessEq(v float64) *Bitmap { return d.col.Scan(LessEq(d.codec.Encode(v))) }

// ScanGreater selects rows with value > v.
func (d *DecimalColumn) ScanGreater(v float64) *Bitmap { return d.col.Scan(Greater(d.codec.Encode(v))) }

// ScanGreaterEq selects rows with value >= v.
func (d *DecimalColumn) ScanGreaterEq(v float64) *Bitmap {
	return d.col.Scan(GreaterEq(d.codec.Encode(v)))
}

// ScanBetween selects rows with lo <= value <= hi.
func (d *DecimalColumn) ScanBetween(lo, hi float64) *Bitmap {
	return d.col.Scan(Between(d.codec.Encode(lo), d.codec.Encode(hi)))
}

// All selects every row.
func (d *DecimalColumn) All() *Bitmap { return d.col.All() }

// Sum returns the decimal sum of the selected rows.
func (d *DecimalColumn) Sum(sel *Bitmap, opts ...ExecOption) float64 {
	return d.codec.DecodeSum(d.col.Sum(sel, opts...))
}

// Avg returns the decimal mean of the selected rows.
func (d *DecimalColumn) Avg(sel *Bitmap, opts ...ExecOption) (float64, bool) {
	cnt := d.col.Count(sel)
	if cnt == 0 {
		return 0, false
	}
	return d.Sum(sel, opts...) / float64(cnt), true
}

// Min returns the smallest selected decimal.
func (d *DecimalColumn) Min(sel *Bitmap, opts ...ExecOption) (float64, bool) {
	c, ok := d.col.Min(sel, opts...)
	return d.codec.Decode(c), ok
}

// Max returns the largest selected decimal.
func (d *DecimalColumn) Max(sel *Bitmap, opts ...ExecOption) (float64, bool) {
	c, ok := d.col.Max(sel, opts...)
	return d.codec.Decode(c), ok
}

// Median returns the lower median of the selected decimals.
func (d *DecimalColumn) Median(sel *Bitmap, opts ...ExecOption) (float64, bool) {
	c, ok := d.col.Median(sel, opts...)
	return d.codec.Decode(c), ok
}

// Quantile returns the q-quantile (nearest rank) of the selected decimals.
func (d *DecimalColumn) Quantile(sel *Bitmap, q float64, opts ...ExecOption) (float64, bool) {
	c, ok := d.col.Quantile(sel, q, opts...)
	return d.codec.Decode(c), ok
}

// SignedColumn stores signed integers in a fixed range.
type SignedColumn struct {
	col   *Column
	codec Signed
}

// NewSignedColumn returns an empty signed-integer column.
func NewSignedColumn(layout Layout, codec Signed, opts ...ColumnOption) *SignedColumn {
	return &SignedColumn{col: NewColumn(layout, codec.Bits(), opts...), codec: codec}
}

// Raw returns the underlying packed column.
func (s *SignedColumn) Raw() *Column { return s.col }

// Len returns the number of rows.
func (s *SignedColumn) Len() int { return s.col.Len() }

// Append adds signed values.
func (s *SignedColumn) Append(vals ...int64) {
	for _, v := range vals {
		s.col.Append(s.codec.Encode(v))
	}
}

// AppendNull adds a NULL row.
func (s *SignedColumn) AppendNull() { s.col.AppendNull() }

// Value reconstructs row i.
func (s *SignedColumn) Value(i int) int64 { return s.codec.Decode(s.col.Value(i)) }

// ScanLess selects rows with value < v.
func (s *SignedColumn) ScanLess(v int64) *Bitmap { return s.col.Scan(Less(s.codec.Encode(v))) }

// ScanGreater selects rows with value > v.
func (s *SignedColumn) ScanGreater(v int64) *Bitmap { return s.col.Scan(Greater(s.codec.Encode(v))) }

// ScanBetween selects rows with lo <= value <= hi.
func (s *SignedColumn) ScanBetween(lo, hi int64) *Bitmap {
	return s.col.Scan(Between(s.codec.Encode(lo), s.codec.Encode(hi)))
}

// ScanEqual selects rows with value == v.
func (s *SignedColumn) ScanEqual(v int64) *Bitmap { return s.col.Scan(Equal(s.codec.Encode(v))) }

// All selects every row.
func (s *SignedColumn) All() *Bitmap { return s.col.All() }

// Sum returns the signed sum of the selected rows.
func (s *SignedColumn) Sum(sel *Bitmap, opts ...ExecOption) int64 {
	cnt := s.col.Count(sel)
	return s.codec.DecodeSum(s.col.Sum(sel, opts...), cnt)
}

// Avg returns the signed mean of the selected rows.
func (s *SignedColumn) Avg(sel *Bitmap, opts ...ExecOption) (float64, bool) {
	cnt := s.col.Count(sel)
	if cnt == 0 {
		return 0, false
	}
	return float64(s.Sum(sel, opts...)) / float64(cnt), true
}

// Min returns the smallest selected value.
func (s *SignedColumn) Min(sel *Bitmap, opts ...ExecOption) (int64, bool) {
	c, ok := s.col.Min(sel, opts...)
	return s.codec.Decode(c), ok
}

// Max returns the largest selected value.
func (s *SignedColumn) Max(sel *Bitmap, opts ...ExecOption) (int64, bool) {
	c, ok := s.col.Max(sel, opts...)
	return s.codec.Decode(c), ok
}

// Median returns the lower median of the selected values.
func (s *SignedColumn) Median(sel *Bitmap, opts ...ExecOption) (int64, bool) {
	c, ok := s.col.Median(sel, opts...)
	return s.codec.Decode(c), ok
}

// StringColumn stores low-cardinality strings through an order-preserving
// dictionary. The key set is fixed at construction (dictionary codes must
// be dense and sorted for range scans to stay exact).
type StringColumn struct {
	col  *Column
	dict *Dict
}

// NewStringColumn returns an empty string column over the given key set.
func NewStringColumn(layout Layout, keys []string, opts ...ColumnOption) *StringColumn {
	d := NewDict()
	for _, k := range keys {
		d.Add(k)
	}
	d.Freeze()
	return &StringColumn{col: NewColumn(layout, d.Bits(), opts...), dict: d}
}

// Raw returns the underlying packed column.
func (s *StringColumn) Raw() *Column { return s.col }

// Dict returns the column's dictionary.
func (s *StringColumn) Dict() *Dict { return s.dict }

// Len returns the number of rows.
func (s *StringColumn) Len() int { return s.col.Len() }

// Append adds string values; unknown keys panic (the dictionary is fixed).
func (s *StringColumn) Append(vals ...string) {
	for _, v := range vals {
		c, ok := s.dict.Encode(v)
		if !ok {
			panic(fmt.Sprintf("bpagg: string %q not in dictionary", v))
		}
		s.col.Append(c)
	}
}

// AppendNull adds a NULL row.
func (s *StringColumn) AppendNull() { s.col.AppendNull() }

// Value reconstructs row i.
func (s *StringColumn) Value(i int) string { return s.dict.Decode(s.col.Value(i)) }

// ScanEqual selects rows equal to key; unknown keys select nothing.
func (s *StringColumn) ScanEqual(key string) *Bitmap {
	c, ok := s.dict.Encode(key)
	if !ok {
		return s.col.None()
	}
	return s.col.Scan(Equal(c))
}

// ScanRange selects rows with lo <= value <= hi lexicographically; both
// keys must exist in the dictionary.
func (s *StringColumn) ScanRange(lo, hi string) *Bitmap {
	cl, okL := s.dict.Encode(lo)
	ch, okH := s.dict.Encode(hi)
	if !okL || !okH {
		panic(fmt.Sprintf("bpagg: range bound not in dictionary (%q, %q)", lo, hi))
	}
	return s.col.Scan(Between(cl, ch))
}

// All selects every row.
func (s *StringColumn) All() *Bitmap { return s.col.All() }

// Min returns the lexicographically smallest selected string.
func (s *StringColumn) Min(sel *Bitmap, opts ...ExecOption) (string, bool) {
	c, ok := s.col.Min(sel, opts...)
	if !ok {
		return "", false
	}
	return s.dict.Decode(c), true
}

// Max returns the lexicographically largest selected string.
func (s *StringColumn) Max(sel *Bitmap, opts ...ExecOption) (string, bool) {
	c, ok := s.col.Max(sel, opts...)
	if !ok {
		return "", false
	}
	return s.dict.Decode(c), true
}

// Median returns the lower median of the selected strings in dictionary
// order.
func (s *StringColumn) Median(sel *Bitmap, opts ...ExecOption) (string, bool) {
	c, ok := s.col.Median(sel, opts...)
	if !ok {
		return "", false
	}
	return s.dict.Decode(c), true
}

// Count returns the number of selected non-NULL rows.
func (s *StringColumn) Count(sel *Bitmap) uint64 { return s.col.Count(sel) }
