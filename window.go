package bpagg

import (
	"context"
	"fmt"
	"time"

	"bpagg/internal/rangeidx"
)

// Window partitions the table's rows into windows of size rows starting
// every step rows (size == step is tumbling, size > step sliding with
// overlap, size < step sampling with gaps) and aggregates each window.
// Filter-free windows answer from the prefix-sum range index — every
// window is one prefix difference, so a full sliding-window sweep costs
// O(windows), not O(windows × width) — and the whole sweep pins a single
// epoch: all windows see the same row high-water mark even while appends
// run concurrently. It panics unless size and step are at least 1.
func (q *Query) Window(size, step int) *WindowQuery {
	if size < 1 || step < 1 {
		panic(fmt.Sprintf("bpagg: invalid window size %d step %d", size, step))
	}
	return &WindowQuery{q: q, size: size, step: step}
}

// WindowQuery aggregates per window. See Query.Window. Windows start at
// rows 0, step, 2·step, … while the start is below the visible row count;
// the last windows clip to the table, and an empty table yields empty
// result slices.
type WindowQuery struct {
	q          *Query
	size, step int
}

// snap mirrors RangeQuery.snap: one pinned snapshot serves every window.
func (w *WindowQuery) snap(column string) (*rangeidx.Snapshot, bool) {
	if len(w.q.clauses) != 0 || w.q.sel != nil {
		return nil, false
	}
	s := w.q.t.pinEpoch().cols[column]
	return s, s != nil
}

// record books one window sweep into the query's collector.
func (w *WindowQuery) record(n int, st rangeidx.Stats, start time.Time) {
	w.q.stats.Record(ExecStats{
		Aggregates:          uint64(n),
		AggNanos:            time.Since(start).Nanoseconds(),
		SegmentsIndexServed: st.IndexSegments,
		RangeFringeWords:    st.FringeWords,
	})
}

// CountRows returns each window's row count after the filter.
func (w *WindowQuery) CountRows() []uint64 {
	out, err := w.CountRowsContext(nil)
	fusedMust(err)
	return out
}

// CountRowsContext is CountRows honoring ctx.
func (w *WindowQuery) CountRowsContext(ctx context.Context) ([]uint64, error) {
	ctx = orBackground(ctx)
	if len(w.q.clauses) == 0 && w.q.sel == nil {
		start := time.Now()
		rows := w.q.t.pinEpoch().rows
		out := []uint64{}
		for b := 0; b < rows; b += w.step {
			_, e := clipRange(b, b+w.size, rows)
			out = append(out, uint64(e-b))
		}
		w.record(len(out), rangeidx.Stats{}, start)
		return out, nil
	}
	base := w.q.Selection()
	rows := w.q.t.rows
	out := []uint64{}
	for b := 0; b < rows; b += w.step {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out = append(out, uint64(base.Clone().And(rangeBitmap(rows, b, b+w.size)).Count()))
	}
	return out, nil
}

// Sum aggregates SUM of the named column per window. Any window's sum
// exceeding uint64 panics with *OverflowError.
func (w *WindowQuery) Sum(column string) []uint64 {
	out, err := w.SumContext(nil, column)
	fusedMust(err)
	return out
}

// SumContext is Sum honoring ctx; an overflowing window returns
// *OverflowError.
func (w *WindowQuery) SumContext(ctx context.Context, column string) ([]uint64, error) {
	col, err := w.q.colErr(column)
	if err != nil {
		return nil, err
	}
	ctx = orBackground(ctx)
	if s, ok := w.snap(column); ok {
		start := time.Now()
		var st rangeidx.Stats
		out := []uint64{}
		for b := 0; b < s.Rows(); b += w.step {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi, lo, s1 := s.Sum(b, b+w.size)
			st.Add(s1)
			if hi != 0 {
				return nil, &OverflowError{Hi: hi, Lo: lo}
			}
			out = append(out, lo)
		}
		w.record(len(out), st, start)
		return out, nil
	}
	base := w.q.Selection()
	rows := w.q.t.rows
	out := []uint64{}
	for b := 0; b < rows; b += w.step {
		sel := base.Clone().And(rangeBitmap(rows, b, b+w.size))
		v, err := col.SumContext(ctx, sel, w.q.execs...)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Min aggregates MIN of the named column per window; oks[i] is false when
// window i holds no qualifying row.
func (w *WindowQuery) Min(column string) ([]uint64, []bool) {
	out, oks, err := w.MinContext(nil, column)
	fusedMust(err)
	return out, oks
}

// Max aggregates MAX of the named column per window.
func (w *WindowQuery) Max(column string) ([]uint64, []bool) {
	out, oks, err := w.MaxContext(nil, column)
	fusedMust(err)
	return out, oks
}

// MinContext is Min honoring ctx.
func (w *WindowQuery) MinContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return w.extremeContext(ctx, column, true)
}

// MaxContext is Max honoring ctx.
func (w *WindowQuery) MaxContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return w.extremeContext(ctx, column, false)
}

func (w *WindowQuery) extremeContext(ctx context.Context, column string, wantMin bool) ([]uint64, []bool, error) {
	col, err := w.q.colErr(column)
	if err != nil {
		return nil, nil, err
	}
	ctx = orBackground(ctx)
	out, oks := []uint64{}, []bool{}
	if s, ok := w.snap(column); ok {
		start := time.Now()
		var st rangeidx.Stats
		for b := 0; b < s.Rows(); b += w.step {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			var v uint64
			var any bool
			var s1 rangeidx.Stats
			if wantMin {
				v, any, s1 = s.Min(b, b+w.size)
			} else {
				v, any, s1 = s.Max(b, b+w.size)
			}
			st.Add(s1)
			out, oks = append(out, v), append(oks, any)
		}
		w.record(len(out), st, start)
		return out, oks, nil
	}
	base := w.q.Selection()
	rows := w.q.t.rows
	for b := 0; b < rows; b += w.step {
		sel := base.Clone().And(rangeBitmap(rows, b, b+w.size))
		var v uint64
		var any bool
		var err error
		if wantMin {
			v, any, err = col.MinContext(ctx, sel, w.q.execs...)
		} else {
			v, any, err = col.MaxContext(ctx, sel, w.q.execs...)
		}
		if err != nil {
			return nil, nil, err
		}
		out, oks = append(out, v), append(oks, any)
	}
	return out, oks, nil
}

// Avg aggregates AVG of the named column per window; oks[i] is false when
// window i holds no qualifying row.
func (w *WindowQuery) Avg(column string) ([]float64, []bool) {
	out, oks, err := w.AvgContext(nil, column)
	fusedMust(err)
	return out, oks
}

// AvgContext is Avg honoring ctx. Matching the scan path's contract, a
// window whose sum exceeds uint64 returns *OverflowError.
func (w *WindowQuery) AvgContext(ctx context.Context, column string) ([]float64, []bool, error) {
	col, err := w.q.colErr(column)
	if err != nil {
		return nil, nil, err
	}
	ctx = orBackground(ctx)
	out, oks := []float64{}, []bool{}
	if s, ok := w.snap(column); ok {
		start := time.Now()
		var st rangeidx.Stats
		for b := 0; b < s.Rows(); b += w.step {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			hi, lo, s1 := s.Sum(b, b+w.size)
			st.Add(s1)
			a, e := clipRange(b, b+w.size, s.Rows())
			if a == e {
				out, oks = append(out, 0), append(oks, false)
				continue
			}
			if hi != 0 {
				return nil, nil, &OverflowError{Hi: hi, Lo: lo}
			}
			out, oks = append(out, float64(lo)/float64(e-a)), append(oks, true)
		}
		w.record(len(out), st, start)
		return out, oks, nil
	}
	base := w.q.Selection()
	rows := w.q.t.rows
	for b := 0; b < rows; b += w.step {
		sel := base.Clone().And(rangeBitmap(rows, b, b+w.size))
		v, any, err := col.AvgContext(ctx, sel, w.q.execs...)
		if err != nil {
			return nil, nil, err
		}
		out, oks = append(out, v), append(oks, any)
	}
	return out, oks, nil
}
