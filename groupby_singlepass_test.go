package bpagg

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// buildGroupTable assembles a two-column table: "g" (grouping) and "v"
// (measure), with the given layouts and widths.
func buildGroupTable(t testing.TB, layoutG, layoutV Layout, kG, kV int, keys, vals []uint64) *Table {
	t.Helper()
	tbl := NewTable()
	tbl.AddColumn("g", layoutG, kG)
	tbl.AddColumn("v", layoutV, kV)
	tbl.AppendColumnar(map[string][]uint64{"g": keys, "v": vals})
	return tbl
}

// checkSinglePassVsLegacy runs the same grouped query through both
// partition engines and requires bit-identical keys, selections, and
// aggregates.
func checkSinglePassVsLegacy(t *testing.T, tbl *Table, threads int, withFilter bool) {
	t.Helper()
	mk := func() *Query {
		q := tbl.Query().With(Parallel(threads))
		if withFilter {
			q.Where("v", GreaterEq(1))
		}
		return q
	}
	qs := mk()
	sp := qs.GroupBy("g")
	if !sp.SinglePass() {
		t.Fatal("lazy query did not take the single-pass path")
	}
	ql := mk()
	ql.Selection()
	lg := ql.GroupBy("g")
	if lg.SinglePass() {
		t.Fatal("materialized selection did not force the legacy walk")
	}

	spKeys, lgKeys := sp.Keys(), lg.Keys()
	if len(spKeys) != len(lgKeys) {
		t.Fatalf("key counts differ: single-pass %d, legacy %d", len(spKeys), len(lgKeys))
	}
	for i := range spKeys {
		if spKeys[i] != lgKeys[i] {
			t.Fatalf("keys differ: single-pass %v, legacy %v", spKeys, lgKeys)
		}
		a, b := sp.Selection(i), lg.Selection(i)
		if a.Count() != b.Count() || a.Clone().AndNot(b).Count() != 0 {
			t.Fatalf("group %d selection differs (single-pass %d rows, legacy %d rows)",
				i, a.Count(), b.Count())
		}
	}
	cmp := func(name string, a, b []uint64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s differs at group %d: single-pass %d, legacy %d", name, i, a[i], b[i])
			}
		}
	}
	cmp("Count", sp.Count(), lg.Count())
	cmp("Sum", sp.Sum("v"), lg.Sum("v"))
	cmp("Min", sp.Min("v"), lg.Min("v"))
	cmp("Max", sp.Max("v"), lg.Max("v"))
	cmp("Median", sp.Median("v"), lg.Median("v"))
	spAvg, lgAvg := sp.Avg("v"), lg.Avg("v")
	for i := range spAvg {
		if spAvg[i] != lgAvg[i] {
			t.Fatalf("Avg differs at group %d: single-pass %v, legacy %v", i, spAvg[i], lgAvg[i])
		}
	}
}

// TestGroupSinglePassMatchesLegacy sweeps layouts, widths, cardinalities
// (including the G=1 and G=segment-count edges), and thread counts,
// requiring the two partition engines to agree everywhere.
func TestGroupSinglePassMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	layouts := []Layout{VBP, HBP}
	for _, n := range []int{63, 64, 200, 2048} {
		for _, G := range []int{1, 2, 7, 32, n} {
			if G > n || G > MaxSinglePassGroups {
				continue
			}
			for _, lg := range layouts {
				for _, lv := range layouts {
					kG := 1
					for 1<<kG < G {
						kG++
					}
					kV := 1 + rng.Intn(20)
					keys := make([]uint64, n)
					vals := make([]uint64, n)
					for i := range keys {
						keys[i] = uint64(rng.Intn(G))
						vals[i] = rng.Uint64() & ((1 << kV) - 1)
					}
					tbl := buildGroupTable(t, lg, lv, kG, kV, keys, vals)
					for _, th := range []int{1, 8} {
						checkSinglePassVsLegacy(t, tbl, th, false)
						checkSinglePassVsLegacy(t, tbl, th, true)
					}
				}
			}
		}
	}
}

// TestGroupSinglePassCardinalityFallback pins the strategy ladder around
// the direct tier's budget: a grouping column just past the 10-bit direct
// key width stays single-pass on the hash tier (the PR 7 contract — no
// legacy fallback below MaxSinglePassGroups), and a cardinality past the
// hash budget silently falls back to the legacy walk with identical
// answers. The hash budget is lowered through the unexported test hook so
// the fallback is exercised without building 2^20 distinct keys.
func TestGroupSinglePassCardinalityFallback(t *testing.T) {
	n := 1324 // past the direct tier's 1024-key budget, kG=11 > DirectKeyBits
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = uint64(i % 97)
	}
	tbl := buildGroupTable(t, VBP, VBP, 11, 7, keys, vals)

	check := func(g *Grouped, want GroupStrategy) {
		t.Helper()
		if g.Strategy() != want {
			t.Fatalf("strategy = %v, want %v", g.Strategy(), want)
		}
		if g.Len() != n {
			t.Fatalf("groups = %d, want %d", g.Len(), n)
		}
		sums := g.Sum("v")
		for i := range sums {
			if sums[i] != uint64(i%97) {
				t.Fatalf("group %d sum = %d, want %d", i, sums[i], i%97)
			}
		}
	}

	g := tbl.Query().GroupBy("g")
	if !g.SinglePass() {
		t.Fatalf("%d groups within MaxSinglePassGroups=%d must stay single-pass",
			n, MaxSinglePassGroups)
	}
	check(g, GroupHash)

	defer func(old int) { maxHashGroups = old }(maxHashGroups)
	maxHashGroups = 1000
	lg := tbl.Query().GroupBy("g")
	if lg.SinglePass() {
		t.Fatalf("%d groups exceed the lowered hash budget %d; expected legacy fallback",
			n, maxHashGroups)
	}
	check(lg, GroupLegacy)
}

// TestGroupSinglePassStats asserts the single-pass counters: one
// partition scan discovering all groups, banked words, exactly one
// recorded aggregate per banked call, and the exact words-touched
// relation vs the legacy path (a VBP measure column is read once per
// live segment instead of once per live segment per group — G×).
func TestGroupSinglePassStats(t *testing.T) {
	const n, groups = 2048, 8
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	rng := rand.New(rand.NewSource(72))
	for i := range keys {
		keys[i] = uint64(i % groups) // every group live in every segment
		vals[i] = uint64(rng.Intn(1 << 10))
	}
	tbl := buildGroupTable(t, VBP, VBP, 3, 10, keys, vals)

	q := tbl.Query().WithStats()
	g := q.GroupBy("g")
	if !g.SinglePass() {
		t.Fatal("expected the single-pass path")
	}
	s := q.Stats()
	if s.Scans != 1 {
		t.Errorf("partition Scans = %d, want 1 (one traversal for all groups)", s.Scans)
	}
	if s.GroupsDiscovered != groups {
		t.Errorf("GroupsDiscovered = %d, want %d", s.GroupsDiscovered, groups)
	}
	if want := uint64(groups * n / 64); s.GroupBankWords != want {
		t.Errorf("GroupBankWords = %d, want %d (every group live in every segment)",
			s.GroupBankWords, want)
	}

	g.Sum("v")
	afterSum := q.Stats()
	if got := afterSum.Aggregates - s.Aggregates; got != 1 {
		t.Errorf("banked Sum recorded %d aggregates, want 1", got)
	}
	spWords := afterSum.WordsTouched - s.WordsTouched
	if spWords == 0 {
		t.Error("banked Sum moved no WordsTouched")
	}

	g.Min("v")
	g.Max("v")
	afterExtremes := q.Stats()
	if got := afterExtremes.Aggregates - afterSum.Aggregates; got != 2 {
		t.Errorf("banked Min+Max recorded %d aggregates, want 2", got)
	}

	g.Count()
	afterCount := q.Stats()
	if got := afterCount.Aggregates - afterExtremes.Aggregates; got != groups {
		t.Errorf("Count recorded %d aggregates, want one per group (%d)", got, groups)
	}

	// Words-touched relation: the legacy path reads the measure column's
	// k planes once per live segment per group; the banked kernel reads
	// them once per live segment, shared by all groups — exactly G× less
	// here, where every group is live in every segment.
	ql := tbl.Query().WithStats()
	ql.Selection()
	lg := ql.GroupBy("g")
	base := ql.Stats()
	lg.Sum("v")
	lgWords := ql.Stats().WordsTouched - base.WordsTouched
	if lgWords != uint64(groups)*spWords {
		t.Errorf("words-touched relation: legacy %d, single-pass %d, want exactly %d× (%d)",
			lgWords, spWords, groups, uint64(groups)*spWords)
	}
}

// TestGroupedCountRecordsStatsLegacy pins the satellite contract on the
// legacy route too: Grouped.Count and CountContext record one aggregate
// per group whichever engine built the partition.
func TestGroupedCountRecordsStatsLegacy(t *testing.T) {
	tbl, groups := groupStatsTable(t)
	q := tbl.Query().WithStats()
	q.Selection()
	g := q.GroupBy("key")
	base := q.Stats()
	g.Count()
	after := q.Stats()
	if got := after.Aggregates - base.Aggregates; got != uint64(groups) {
		t.Errorf("legacy Count recorded %d aggregates, want %d", got, groups)
	}
	if _, err := g.CountContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	after2 := q.Stats()
	if got := after2.Aggregates - after.Aggregates; got != uint64(groups) {
		t.Errorf("legacy CountContext recorded %d aggregates, want %d", got, groups)
	}
}

// TestGroupedSumOverflow pins the grouped overflow contract on both
// engines: plain Sum/Avg panic with *OverflowError, SumContext/
// AvgContext return it, and the error carries the exact 128-bit total.
func TestGroupedSumOverflow(t *testing.T) {
	const n = 128
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i % 2)
		vals[i] = 1 << 63 // each group's sum is 64 << 63 = 2^69
	}
	for _, layout := range []Layout{VBP, HBP} {
		for _, forceLegacy := range []bool{false, true} {
			tbl := buildGroupTable(t, layout, layout, 1, 64, keys, vals)
			q := tbl.Query()
			if forceLegacy {
				q.Selection()
			}
			g := q.GroupBy("g")
			if g.SinglePass() == forceLegacy {
				t.Fatalf("layout %v: SinglePass = %v, want %v", layout, g.SinglePass(), !forceLegacy)
			}

			_, err := g.SumContext(context.Background(), "v")
			var ov *OverflowError
			if !errors.As(err, &ov) {
				t.Fatalf("layout %v legacy=%v: SumContext = %v, want *OverflowError", layout, forceLegacy, err)
			}
			want := "590295810358705651712" // 64 * 2^63 = 2^69
			if ov.Big().String() != want {
				t.Fatalf("layout %v: overflow total = %s, want %s", layout, ov.Big().String(), want)
			}
			if _, err := g.AvgContext(context.Background(), "v"); !errors.As(err, &ov) {
				t.Fatalf("layout %v legacy=%v: AvgContext = %v, want *OverflowError", layout, forceLegacy, err)
			}

			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("layout %v legacy=%v: plain Sum did not panic on overflow", layout, forceLegacy)
					}
					e, ok := r.(error)
					if !ok || !errors.As(e, &ov) {
						t.Fatalf("layout %v: plain Sum panicked with %v, want *OverflowError", layout, r)
					}
				}()
				g.Sum("v")
			}()
		}
	}
}

// FuzzGroupSinglePass drives the property check with fuzz-chosen data
// shapes: the single-pass engine must stay bit-identical to the legacy
// walk for any layout pair, width, cardinality, and thread count.
func FuzzGroupSinglePass(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(3), uint8(12), uint8(0), uint8(1))
	f.Add(int64(2), uint16(64), uint8(1), uint8(64), uint8(1), uint8(8))
	f.Add(int64(3), uint16(1000), uint8(6), uint8(30), uint8(2), uint8(4))
	f.Add(int64(4), uint16(63), uint8(10), uint8(7), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, kG, kV, layouts, threads uint8) {
		if n == 0 {
			return
		}
		kGi := 1 + int(kG)%10 // ≤ 2^10 keys: covers both direct and hash-adjacent widths cheaply
		kVi := 1 + int(kV)%64
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() & ((1 << kGi) - 1)
			var mask uint64 = (1 << kVi) - 1
			if kVi == 64 {
				mask = ^uint64(0)
			}
			vals[i] = rng.Uint64() & mask
		}
		lg, lv := VBP, VBP
		if layouts&1 != 0 {
			lg = HBP
		}
		if layouts&2 != 0 {
			lv = HBP
		}
		tbl := buildGroupTable(t, lg, lv, kGi, kVi, keys, vals)
		th := 1 + int(threads)%8

		mk := func() *Query { return tbl.Query().With(Parallel(th)) }
		qs := mk()
		sp := qs.GroupBy("g")
		if !sp.SinglePass() {
			t.Fatal("lazy query did not take the single-pass path")
		}
		ql := mk()
		ql.Selection()
		legacy := ql.GroupBy("g")

		spKeys, lgKeys := sp.Keys(), legacy.Keys()
		if len(spKeys) != len(lgKeys) {
			t.Fatalf("key counts differ: single-pass %d, legacy %d", len(spKeys), len(lgKeys))
		}
		for i := range spKeys {
			if spKeys[i] != lgKeys[i] {
				t.Fatalf("keys differ at %d: %d vs %d", i, spKeys[i], lgKeys[i])
			}
			if a, b := sp.Selection(i), legacy.Selection(i); a.Count() != b.Count() ||
				a.Clone().AndNot(b).Count() != 0 {
				t.Fatalf("group %d selections differ", i)
			}
		}
		ctx := context.Background()
		spSums, spErr := sp.SumContext(ctx, "v")
		lgSums, lgErr := legacy.SumContext(ctx, "v")
		var spOv, lgOv *OverflowError
		if errors.As(spErr, &spOv) != errors.As(lgErr, &lgOv) {
			t.Fatalf("overflow disagreement: single-pass err=%v, legacy err=%v", spErr, lgErr)
		}
		if spOv != nil {
			if spOv.Hi != lgOv.Hi || spOv.Lo != lgOv.Lo {
				t.Fatalf("overflow totals differ: %v vs %v", spOv.Big(), lgOv.Big())
			}
		} else {
			for i := range spSums {
				if spSums[i] != lgSums[i] {
					t.Fatalf("sum differs at group %d: %d vs %d", i, spSums[i], lgSums[i])
				}
			}
		}
		lgMin, lgMax, lgCnt := legacy.Min("v"), legacy.Max("v"), legacy.Count()
		for i, v := range sp.Min("v") {
			if v != lgMin[i] {
				t.Fatalf("min differs at group %d: %d vs %d", i, v, lgMin[i])
			}
		}
		for i, v := range sp.Max("v") {
			if v != lgMax[i] {
				t.Fatalf("max differs at group %d: %d vs %d", i, v, lgMax[i])
			}
		}
		for i, v := range sp.Count() {
			if v != lgCnt[i] {
				t.Fatalf("count differs at group %d: %d vs %d", i, v, lgCnt[i])
			}
		}
	})
}
