package bpagg

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"bpagg/internal/faultinject"
)

func bigColumn(t *testing.T, layout Layout, n, k int) (*Column, *Bitmap) {
	t.Helper()
	rng := rand.New(rand.NewSource(417))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & ((1 << uint(k)) - 1)
	}
	col := FromValues(layout, k, vals)
	return col, col.All()
}

// TestMedianDeadlineCancellation is the headline acceptance test: a
// parallel MEDIAN over >= 1M rows with an already-expired deadline must
// return context.DeadlineExceeded well before full-scan time.
func TestMedianDeadlineCancellation(t *testing.T) {
	const n = 1_500_000
	for _, layout := range []Layout{VBP, HBP} {
		col, sel := bigColumn(t, layout, n, 24)
		opts := []ExecOption{Parallel(4)}

		start := time.Now()
		want, ok, err := col.MedianContext(context.Background(), sel, opts...)
		full := time.Since(start)
		if err != nil || !ok {
			t.Fatalf("%v MedianContext baseline: ok=%v err=%v", layout, ok, err)
		}
		if m, mok := col.Median(sel, opts...); m != want || !mok {
			t.Fatalf("%v MedianContext=%d disagrees with Median=%d", layout, want, m)
		}

		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
		start = time.Now()
		_, _, err = col.MedianContext(ctx, sel, opts...)
		canceled := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v MedianContext with expired deadline = %v, want DeadlineExceeded", layout, err)
		}
		if canceled > full/2 {
			t.Fatalf("%v cancelled median took %v, full scan %v — cancellation not prompt", layout, canceled, full)
		}
	}
}

// TestMidFlightCancellation cancels a running parallel MEDIAN from
// another goroutine and requires prompt abort with context.Canceled.
func TestMidFlightCancellation(t *testing.T) {
	col, sel := bigColumn(t, VBP, 1_500_000, 24)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	_, _, err := col.MedianContext(ctx, sel, Parallel(4))
	// The aggregate may legitimately finish before the cancel lands on a
	// fast machine; either a clean result or context.Canceled is correct,
	// anything else is a bug.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("MedianContext after mid-flight cancel = %v, want nil or context.Canceled", err)
	}
}

// TestWorkerPanicBecomesError injects a panic into an aggregation
// worker and checks the process survives, the error is a *PanicError,
// all goroutines are joined, and the column still works afterwards.
func TestWorkerPanicBecomesError(t *testing.T) {
	defer faultinject.Reset()
	col, sel := bigColumn(t, VBP, 64*512, 16)
	wantSum := col.Sum(sel, Parallel(4))

	baseline := runtime.NumGoroutine()
	faultinject.Set(faultinject.SiteWorkerStart, func(args ...any) error {
		if args[0].(int) == 2 {
			panic("corrupt segment")
		}
		return nil
	})
	for i := 0; i < 10; i++ {
		_, err := col.SumContext(context.Background(), sel, Parallel(4))
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("SumContext with injected panic = %v, want *bpagg.PanicError", err)
		}
		if pe.Worker != 2 || len(pe.Stack) == 0 {
			t.Fatalf("PanicError worker=%d stackLen=%d, want worker 2 with stack", pe.Worker, len(pe.Stack))
		}
	}
	faultinject.Reset()

	// All workers joined: goroutine count returns to (near) baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Fatalf("goroutines leaked after worker panics: %d, baseline %d", g, baseline)
	}

	if got, err := col.SumContext(context.Background(), sel, Parallel(4)); err != nil || got != wantSum {
		t.Fatalf("SumContext after recovery = (%d, %v), want (%d, nil)", got, err, wantSum)
	}
}

// TestSlowSegmentDeadline uses the slow-segment injection to force a
// live deadline to expire mid-aggregation.
func TestSlowSegmentDeadline(t *testing.T) {
	defer faultinject.Reset()
	// Large enough that every worker's partition spans several
	// cancellation blocks — the deadline expires during the first block's
	// injected sleep and the next block's ctx check must catch it.
	col, sel := bigColumn(t, VBP, 3_000_000, 16)
	faultinject.Set(faultinject.SiteWorkerRange, func(args ...any) error {
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := col.SumContext(ctx, sel, Parallel(4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SumContext with slow segments = %v, want DeadlineExceeded", err)
	}
}

func TestQuantileContextRejectsBadQ(t *testing.T) {
	col, sel := bigColumn(t, VBP, 640, 8)
	for _, q := range []float64{-0.1, 1.0001, 2, math.NaN()} {
		if _, _, err := col.QuantileContext(context.Background(), sel, q); err == nil {
			t.Fatalf("QuantileContext(q=%v) returned nil error", q)
		}
	}
	if v, ok, err := col.QuantileContext(context.Background(), sel, 0.5); err != nil || !ok {
		t.Fatalf("QuantileContext(0.5) = (%d,%v,%v)", v, ok, err)
	}
}

func TestContextAPIValidatesSelection(t *testing.T) {
	col, _ := bigColumn(t, VBP, 640, 8)
	bad := NewBitmap(100) // wrong length
	if _, err := col.SumContext(context.Background(), bad); err == nil {
		t.Fatal("SumContext with mismatched selection returned nil error")
	}
	if _, _, err := col.MedianContext(context.Background(), bad); err == nil {
		t.Fatal("MedianContext with mismatched selection returned nil error")
	}
	if _, err := col.SumContext(context.Background(), nil); err == nil {
		t.Fatal("SumContext with nil selection returned nil error")
	}
}

func TestContextAggregatesMatchPlain(t *testing.T) {
	ctx := context.Background()
	for _, layout := range []Layout{VBP, HBP} {
		col, sel := bigColumn(t, layout, 64*101+17, 13)
		for _, opts := range [][]ExecOption{nil, {Parallel(4)}, {Parallel(4), WideWords()}, {Access(Auto)}} {
			if got, err := col.SumContext(ctx, sel, opts...); err != nil || got != col.Sum(sel, opts...) {
				t.Fatalf("%v SumContext: (%d,%v) vs %d", layout, got, err, col.Sum(sel, opts...))
			}
			wv, wok := col.Min(sel, opts...)
			if got, ok, err := col.MinContext(ctx, sel, opts...); err != nil || got != wv || ok != wok {
				t.Fatalf("%v MinContext: (%d,%v,%v) vs (%d,%v)", layout, got, ok, err, wv, wok)
			}
			wv, wok = col.Max(sel, opts...)
			if got, ok, err := col.MaxContext(ctx, sel, opts...); err != nil || got != wv || ok != wok {
				t.Fatalf("%v MaxContext: (%d,%v,%v) vs (%d,%v)", layout, got, ok, err, wv, wok)
			}
			wv, wok = col.Median(sel, opts...)
			if got, ok, err := col.MedianContext(ctx, sel, opts...); err != nil || got != wv || ok != wok {
				t.Fatalf("%v MedianContext: (%d,%v,%v) vs (%d,%v)", layout, got, ok, err, wv, wok)
			}
			wf, wok := col.Avg(sel, opts...)
			if got, ok, err := col.AvgContext(ctx, sel, opts...); err != nil || got != wf || ok != wok {
				t.Fatalf("%v AvgContext: (%v,%v,%v) vs (%v,%v)", layout, got, ok, err, wf, wok)
			}
			wv, wok = col.Rank(sel, 17, opts...)
			if got, ok, err := col.RankContext(ctx, sel, 17, opts...); err != nil || got != wv || ok != wok {
				t.Fatalf("%v RankContext: (%d,%v,%v) vs (%d,%v)", layout, got, ok, err, wv, wok)
			}
			wc, err := col.CountContext(ctx, sel)
			if err != nil || wc != col.Count(sel) {
				t.Fatalf("%v CountContext: (%d,%v) vs %d", layout, wc, err, col.Count(sel))
			}
		}
	}
}

func TestQueryContextAPI(t *testing.T) {
	ctx := context.Background()
	tbl := NewTable()
	tbl.AddColumn("price", VBP, 16)
	tbl.AddColumn("region", HBP, 3)
	tbl.AppendColumnar(map[string][]uint64{
		"price":  {10, 20, 30, 40, 50, 60},
		"region": {0, 1, 0, 1, 2, 2},
	})

	if _, err := tbl.ColumnErr("nope"); err == nil {
		t.Fatal("ColumnErr on unknown column returned nil error")
	}
	if _, err := tbl.Query().WhereErr("nope", Less(10)); err == nil {
		t.Fatal("WhereErr on unknown column returned nil error")
	}
	if _, err := tbl.Query().SumContext(ctx, "nope"); err == nil {
		t.Fatal("SumContext on unknown column returned nil error")
	}
	if _, err := tbl.Query().GroupByContext(ctx, "nope"); err == nil {
		t.Fatal("GroupByContext on unknown column returned nil error")
	}

	q, err := tbl.Query().WhereErr("price", GreaterEq(30))
	if err != nil {
		t.Fatalf("WhereErr = %v", err)
	}
	sum, err := q.SumContext(ctx, "price")
	if err != nil || sum != 30+40+50+60 {
		t.Fatalf("SumContext = (%d, %v), want (180, nil)", sum, err)
	}
	med, ok, err := q.MedianContext(ctx, "price")
	if err != nil || !ok || med != 40 {
		t.Fatalf("MedianContext = (%d,%v,%v), want (40,true,nil)", med, ok, err)
	}

	g, err := tbl.Query().GroupByContext(ctx, "region")
	if err != nil {
		t.Fatalf("GroupByContext = %v", err)
	}
	sums, err := g.SumContext(ctx, "price")
	if err != nil {
		t.Fatalf("Grouped.SumContext = %v", err)
	}
	want := []uint64{10 + 30, 20 + 40, 50 + 60}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("group sums = %v, want %v", sums, want)
		}
	}
	if _, err := g.MedianContext(ctx, "nope"); err == nil {
		t.Fatal("Grouped.MedianContext on unknown column returned nil error")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tbl.Query().GroupByContext(canceled, "region"); !errors.Is(err, context.Canceled) {
		t.Fatalf("GroupByContext with canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := g.SumContext(canceled, "price"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Grouped.SumContext with canceled ctx = %v, want context.Canceled", err)
	}
}
