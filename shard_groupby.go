package bpagg

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"bpagg/internal/parallel"
)

// ShardedGrouped is a ShardedQuery partitioned by grouping columns: each
// live shard runs its own (single-pass or legacy) GROUP BY partition, and
// the per-shard banks merge by sorted key into one global key list. All
// merges are performed in ascending key order over shard-order partials,
// so results are bit-identical to the flat engine at any thread count.
type ShardedGrouped struct {
	q      *ShardedQuery
	cols   []string
	widths []int
	keys   []uint64   // global sorted key union
	parts  []*Grouped // per live shard, in shard order
	pos    [][]int    // pos[p][gi] = global index of parts[p]'s group gi
}

// GroupByContext partitions the query's selection by the named columns'
// distinct values, honoring ctx. Every live shard partitions
// independently (the per-shard engine picks direct/hash/legacy as usual)
// and the key sets union in sorted order.
func (q *ShardedQuery) GroupByContext(ctx context.Context, columns ...string) (*ShardedGrouped, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("bpagg: GROUP BY needs at least one column")
	}
	widths := make([]int, len(columns))
	total := 0
	for i, column := range columns {
		idx := q.st.spec(column)
		if idx < 0 {
			return nil, fmt.Errorf("bpagg: unknown column %q", column)
		}
		widths[i] = q.st.specs[idx].bits
		total += widths[i]
	}
	if total > 64 {
		return nil, fmt.Errorf("bpagg: composite group key is %d bits wide — keys must pack into 64 bits", total)
	}

	live := q.plan(nil)
	parts := make([]*Grouped, len(live))
	err := q.runShards(ctx, live, nil, func(slot, _ int, sq *Query) error {
		g, err := sq.GroupByContext(ctx, columns...)
		parts[slot] = g
		return err
	})
	if err != nil {
		return nil, err
	}

	// Union the per-shard key sets (each already ascending) into the
	// global sorted key list, then index every shard group into it.
	var keys []uint64
	for _, part := range parts {
		keys = append(keys, part.keys...)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	keys = dedupeSorted(keys)
	at := make(map[uint64]int, len(keys))
	for i, k := range keys {
		at[k] = i
	}
	pos := make([][]int, len(parts))
	for p, part := range parts {
		pos[p] = make([]int, len(part.keys))
		for gi, k := range part.keys {
			pos[p][gi] = at[k]
		}
	}
	return &ShardedGrouped{q: q, cols: columns, widths: widths, keys: keys, parts: parts, pos: pos}, nil
}

// GroupBy partitions the query's current selection by the distinct
// values of the named columns.
func (q *ShardedQuery) GroupBy(columns ...string) *ShardedGrouped {
	g, err := q.GroupByContext(context.Background(), columns...)
	fusedMust(err)
	return g
}

// dedupeSorted removes adjacent duplicates in place.
func dedupeSorted(keys []uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Len returns the number of groups.
func (g *ShardedGrouped) Len() int { return len(g.keys) }

// Keys returns the distinct group keys in ascending order.
func (g *ShardedGrouped) Keys() []uint64 {
	return append([]uint64(nil), g.keys...)
}

// KeyParts unpacks group i's key into one code per grouping column.
func (g *ShardedGrouped) KeyParts(i int) []uint64 {
	parts := make([]uint64, len(g.widths))
	key := g.keys[i]
	for j := len(g.widths) - 1; j >= 0; j-- {
		w := uint(g.widths[j])
		parts[j] = key & (1<<w - 1)
		key >>= w
	}
	return parts
}

// CountContext returns each group's row count, honoring ctx.
func (g *ShardedGrouped) CountContext(ctx context.Context) ([]uint64, error) {
	out := make([]uint64, len(g.keys))
	for p, part := range g.parts {
		counts, err := part.CountContext(ctx)
		if err != nil {
			return nil, err
		}
		for gi, c := range counts {
			out[g.pos[p][gi]] += c
		}
	}
	return out, nil
}

// Count returns each group's row count.
func (g *ShardedGrouped) Count() []uint64 {
	out, err := g.CountContext(context.Background())
	fusedMust(err)
	return out
}

// groupSums128 returns one shard partition's per-group SUM partials in
// full 128-bit precision: the banked kernels expose hi/lo directly, and
// the per-group fallback recovers an overflowing group's exact total from
// its *OverflowError. Keeping partials exact is what makes the merged
// totals (and merged overflow reports) bit-identical to the flat engine.
func groupSums128(ctx context.Context, g *Grouped, column string) (his, los []uint64, err error) {
	col, err := g.q.colErr(column)
	if err != nil {
		return nil, nil, err
	}
	if o, ok := g.banked(col); ok {
		switch {
		case g.hp != nil:
			his, los, err = parallel.HashGroupSumCtx(ctx, measureGroupCol(col), g.hp, o.par)
		case col.layout == VBP:
			his, los, err = parallel.VBPGroupSumCtx(ctx, col.v, g.rawSels(), o.par)
		default:
			his, los, err = parallel.HBPGroupSumCtx(ctx, col.h, g.rawSels(), o.par)
		}
		return his, los, wrapExecErr(err)
	}
	his = make([]uint64, g.Len())
	los = make([]uint64, g.Len())
	for i := 0; i < g.Len(); i++ {
		v, err := col.SumContext(ctx, g.Selection(i), g.q.execs...)
		if err != nil {
			var ov *OverflowError
			if errors.As(err, &ov) {
				his[i], los[i] = ov.Hi, ov.Lo
				continue
			}
			return nil, nil, err
		}
		los[i] = v
	}
	return his, los, nil
}

// SumContext aggregates SUM of the named column per group, honoring ctx.
// A group whose merged total exceeds uint64 returns an *OverflowError
// carrying the exact 128-bit total and the offending group's key — the
// first such group in key order, matching the flat engine.
func (g *ShardedGrouped) SumContext(ctx context.Context, column string) ([]uint64, error) {
	his := make([]uint64, len(g.keys))
	los := make([]uint64, len(g.keys))
	for p, part := range g.parts {
		phis, plos, err := groupSums128(ctx, part, column)
		if err != nil {
			return nil, err
		}
		for gi := range plos {
			i := g.pos[p][gi]
			var carry uint64
			los[i], carry = bits.Add64(los[i], plos[gi], 0)
			his[i] += phis[gi] + carry
		}
	}
	for i, hi := range his {
		if hi != 0 {
			return nil, &OverflowError{Hi: hi, Lo: los[i], Group: g.KeyParts(i)}
		}
	}
	return los, nil
}

// Sum aggregates SUM of the named column per group.
func (g *ShardedGrouped) Sum(column string) []uint64 {
	out, err := g.SumContext(context.Background(), column)
	fusedMust(err)
	return out
}

// groupExtremes returns one shard partition's per-group MIN/MAX partials
// with presence flags (a group can hold only NULL measure values in one
// shard while other shards carry its values).
func groupExtremes(ctx context.Context, g *Grouped, column string, wantMin bool) (vals []uint64, anys []bool, err error) {
	col, err := g.q.colErr(column)
	if err != nil {
		return nil, nil, err
	}
	if o, ok := g.banked(col); ok {
		return g.bankedExtreme(ctx, col, o, wantMin)
	}
	vals = make([]uint64, g.Len())
	anys = make([]bool, g.Len())
	for i := 0; i < g.Len(); i++ {
		var v uint64
		var any bool
		var err error
		if wantMin {
			v, any, err = col.MinContext(ctx, g.Selection(i), g.q.execs...)
		} else {
			v, any, err = col.MaxContext(ctx, g.Selection(i), g.q.execs...)
		}
		if err != nil {
			return nil, nil, err
		}
		vals[i], anys[i] = v, any
	}
	return vals, anys, nil
}

func (g *ShardedGrouped) extremeOkContext(ctx context.Context, column string, wantMin bool) ([]uint64, []bool, error) {
	out := make([]uint64, len(g.keys))
	found := make([]bool, len(g.keys))
	for p, part := range g.parts {
		vals, anys, err := groupExtremes(ctx, part, column, wantMin)
		if err != nil {
			return nil, nil, err
		}
		for gi, any := range anys {
			if !any {
				continue
			}
			i := g.pos[p][gi]
			if !found[i] || (wantMin && vals[gi] < out[i]) || (!wantMin && vals[gi] > out[i]) {
				out[i] = vals[gi]
			}
			found[i] = true
		}
	}
	return out, found, nil
}

func (g *ShardedGrouped) extremeContext(ctx context.Context, column string, wantMin bool) ([]uint64, error) {
	out, found, err := g.extremeOkContext(ctx, column, wantMin)
	if err != nil {
		return nil, err
	}
	for _, ok := range found {
		if !ok {
			return nil, fmt.Errorf("bpagg: empty group selection — grouping invariant violated")
		}
	}
	return out, nil
}

// MinOkContext is the NULL-tolerant twin of MinContext: instead of
// treating an all-NULL group as an invariant violation, it reports
// ok[i]=false for groups with no non-NULL measure values — the semantics
// serving layers need to render NULL cells.
func (g *ShardedGrouped) MinOkContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return g.extremeOkContext(ctx, column, true)
}

// MaxOkContext is the NULL-tolerant twin of MaxContext; see MinOkContext.
func (g *ShardedGrouped) MaxOkContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return g.extremeOkContext(ctx, column, false)
}

// MinContext aggregates MIN of the named column per group, honoring ctx.
func (g *ShardedGrouped) MinContext(ctx context.Context, column string) ([]uint64, error) {
	return g.extremeContext(ctx, column, true)
}

// MaxContext aggregates MAX of the named column per group, honoring ctx.
func (g *ShardedGrouped) MaxContext(ctx context.Context, column string) ([]uint64, error) {
	return g.extremeContext(ctx, column, false)
}

// Min aggregates MIN of the named column per group.
func (g *ShardedGrouped) Min(column string) []uint64 {
	out, err := g.MinContext(context.Background(), column)
	fusedMust(err)
	return out
}

// Max aggregates MAX of the named column per group.
func (g *ShardedGrouped) Max(column string) []uint64 {
	out, err := g.MaxContext(context.Background(), column)
	fusedMust(err)
	return out
}

// measureNonNullCounts returns each group's count of non-NULL measure
// values — AVG's divisor. When no live shard's measure column carries
// NULLs this is exactly the merged row counts; otherwise each shard
// counts per group.
func (g *ShardedGrouped) measureNonNullCounts(ctx context.Context, column string) ([]uint64, error) {
	hasNulls := false
	for _, part := range g.parts {
		col, err := part.q.colErr(column)
		if err != nil {
			return nil, err
		}
		if col.nulls != nil {
			hasNulls = true
			break
		}
	}
	if !hasNulls {
		return g.CountContext(ctx)
	}
	out := make([]uint64, len(g.keys))
	for p, part := range g.parts {
		col, _ := part.q.colErr(column)
		for gi := range part.keys {
			c, err := col.CountContext(ctx, part.Selection(gi))
			if err != nil {
				return nil, err
			}
			out[g.pos[p][gi]] += c
		}
	}
	return out, nil
}

// AvgContext aggregates AVG of the named column per group, honoring ctx.
// The quotient divides the exact merged sum by the merged non-NULL count,
// so it is bit-identical to the flat engine's per-group AVG.
func (g *ShardedGrouped) AvgContext(ctx context.Context, column string) ([]float64, error) {
	his := make([]uint64, len(g.keys))
	los := make([]uint64, len(g.keys))
	for p, part := range g.parts {
		phis, plos, err := groupSums128(ctx, part, column)
		if err != nil {
			return nil, err
		}
		for gi := range plos {
			i := g.pos[p][gi]
			var carry uint64
			los[i], carry = bits.Add64(los[i], plos[gi], 0)
			his[i] += phis[gi] + carry
		}
	}
	for i, hi := range his {
		if hi != 0 {
			return nil, &OverflowError{Hi: hi, Lo: los[i], Group: g.KeyParts(i)}
		}
	}
	counts, err := g.measureNonNullCounts(ctx, column)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(g.keys))
	for i, s := range los {
		if counts[i] > 0 {
			out[i] = float64(s) / float64(counts[i])
		}
	}
	return out, nil
}

// Avg aggregates AVG of the named column per group.
func (g *ShardedGrouped) Avg(column string) []float64 {
	out, err := g.AvgContext(context.Background(), column)
	fusedMust(err)
	return out
}

// rankOkContext answers one order statistic per group: rankOf maps a
// group's non-NULL count to the target rank (ok=false when the group has
// no values, reported as ok[i]=false rather than an error). Each group
// binary-searches the value domain, counting per-shard within the
// group's selection.
func (g *ShardedGrouped) rankOkContext(ctx context.Context, column string,
	rankOf func(u uint64) (uint64, bool)) ([]uint64, []bool, error) {
	ctx = orBackground(ctx)
	idx := g.q.st.spec(column)
	if idx < 0 {
		return nil, nil, fmt.Errorf("bpagg: unknown column %q", column)
	}
	counts, err := g.measureNonNullCounts(ctx, column)
	if err != nil {
		return nil, nil, err
	}
	out := make([]uint64, len(g.keys))
	oks := make([]bool, len(g.keys))
	for i := range g.keys {
		r, ok := rankOf(counts[i])
		if !ok {
			continue
		}
		lo, hi := uint64(0), maxValForBits(g.q.st.specs[idx].bits)
		for lo < hi {
			mid := lo + (hi-lo)/2
			cnt, err := g.groupCountLE(ctx, column, i, mid)
			if err != nil {
				return nil, nil, err
			}
			if cnt >= r {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[i], oks[i] = lo, true
	}
	return out, oks, nil
}

// MedianContext aggregates the lower MEDIAN of the named column per
// group, honoring ctx.
func (g *ShardedGrouped) MedianContext(ctx context.Context, column string) ([]uint64, error) {
	out, oks, err := g.rankOkContext(ctx, column, medianRank)
	if err != nil {
		return nil, err
	}
	for _, ok := range oks {
		if !ok {
			return nil, fmt.Errorf("bpagg: empty group selection — grouping invariant violated")
		}
	}
	return out, nil
}

// MedianOkContext is the NULL-tolerant twin of MedianContext; see
// MinOkContext.
func (g *ShardedGrouped) MedianOkContext(ctx context.Context, column string) ([]uint64, []bool, error) {
	return g.rankOkContext(ctx, column, medianRank)
}

// QuantileOkContext answers the nearest-rank quantile of the named
// column per group, honoring ctx, with ok[i]=false for all-NULL groups.
func (g *ShardedGrouped) QuantileOkContext(ctx context.Context, column string, quantile float64) ([]uint64, []bool, error) {
	if quantile < 0 || quantile > 1 || quantile != quantile {
		return nil, nil, fmt.Errorf("bpagg: quantile %v outside [0,1]", quantile)
	}
	return g.rankOkContext(ctx, column, quantileRank(quantile))
}

// NonNullCountContext returns each group's count of non-NULL values of
// the named measure column, honoring ctx — COUNT(col)'s grouped answer
// and AVG's divisor.
func (g *ShardedGrouped) NonNullCountContext(ctx context.Context, column string) ([]uint64, error) {
	return g.measureNonNullCounts(orBackground(ctx), column)
}

// Median aggregates the lower MEDIAN of the named column per group.
func (g *ShardedGrouped) Median(column string) []uint64 {
	out, err := g.MedianContext(context.Background(), column)
	fusedMust(err)
	return out
}

// groupCountLE counts global group i's selected rows with measure value
// <= v, summed over the shards that contain the group.
func (g *ShardedGrouped) groupCountLE(ctx context.Context, column string, i int, v uint64) (uint64, error) {
	var total uint64
	for p, part := range g.parts {
		for gi, pi := range g.pos[p] {
			if pi != i {
				continue
			}
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			col, err := part.q.colErr(column)
			if err != nil {
				return 0, err
			}
			sel := part.Selection(gi).Clone().And(col.ScanStats(LessEq(v), g.q.stats))
			total += uint64(sel.Count())
		}
	}
	return total, nil
}
