package bpagg

import (
	"fmt"
	"math/big"
)

// OverflowError reports that the true value of a SUM — or the sum inside
// an AVG — does not fit in uint64. The engine detects the possibility up
// front (a column of n k-bit codes can only overflow when n·(2^k−1)
// exceeds 2^64−1) and reruns the aggregate on 128-bit checked kernels,
// so the exact total is always available: true sum = Hi·2^64 + Lo.
// No aggregate ever returns a silently wrapped value.
//
// Plain methods (Column.Sum, Query.Sum, Grouped.Sum, and their Avg
// twins) panic with *OverflowError, consistent with their contract that
// runtime failures propagate as panics; the ...Context methods return
// it. See DESIGN.md §7.
type OverflowError struct {
	Hi, Lo uint64
	// Group holds the offending group's key — one code per grouping
	// column — when the overflow happened inside a grouped aggregate;
	// nil for ungrouped SUM/AVG.
	Group []uint64
}

// Error implements the error interface.
func (e *OverflowError) Error() string {
	if e.Group != nil {
		return fmt.Sprintf("bpagg: SUM overflows uint64 in group %v (true sum %s)", e.Group, e.Big().String())
	}
	return fmt.Sprintf("bpagg: SUM overflows uint64 (true sum %s)", e.Big().String())
}

// Big returns the exact sum as a big.Int (Hi·2^64 + Lo).
func (e *OverflowError) Big() *big.Int {
	b := new(big.Int).SetUint64(e.Hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(e.Lo))
}
