package bpagg_test

import (
	"fmt"

	"bpagg"
)

// The basic pipeline: pack, scan, aggregate.
func Example() {
	col := bpagg.NewColumn(bpagg.VBP, 8)
	col.Append(10, 200, 30, 40, 250)

	sel := col.Scan(bpagg.Less(100))
	fmt.Println("selected:", sel.Count())
	fmt.Println("sum:", col.Sum(sel))
	med, _ := col.Median(sel)
	fmt.Println("median:", med)
	// Output:
	// selected: 3
	// sum: 80
	// median: 30
}

// Complex predicates compose by combining selection bitmaps (§II-E of the
// paper).
func ExampleBitmap_And() {
	price := bpagg.FromValues(bpagg.VBP, 8, []uint64{10, 20, 30, 40})
	qty := bpagg.FromValues(bpagg.HBP, 4, []uint64{1, 5, 2, 7})

	sel := price.Scan(bpagg.Greater(15)).And(qty.Scan(bpagg.Less(6)))
	fmt.Println(price.Sum(sel))
	// Output: 50
}

// Rank generalizes MEDIAN to any order statistic — here a p90.
func ExampleColumn_Quantile() {
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	col := bpagg.FromValues(bpagg.HBP, 7, vals)
	p90, _ := col.Quantile(col.All(), 0.9)
	fmt.Println(p90)
	// Output: 90
}

// Tables bundle columns into the paper's denormalized wide-table setting.
func ExampleTable() {
	tbl := bpagg.NewTable()
	tbl.AddColumn("region", bpagg.VBP, 2)
	tbl.AddColumn("amount", bpagg.HBP, 10)
	tbl.AppendColumnar(map[string][]uint64{
		"region": {0, 1, 0, 1, 2},
		"amount": {100, 200, 300, 400, 500},
	})

	sum := tbl.Query().Where("region", bpagg.Equal(1)).Sum("amount")
	fmt.Println(sum)
	// Output: 600
}

// GroupBy partitions a query by a column's distinct values, each group
// selected by one bit-parallel equality scan.
func ExampleQuery_GroupBy() {
	tbl := bpagg.NewTable()
	tbl.AddColumn("dept", bpagg.VBP, 2)
	tbl.AddColumn("salary", bpagg.VBP, 12)
	tbl.AppendColumnar(map[string][]uint64{
		"dept":   {0, 1, 0, 1, 1},
		"salary": {3000, 2000, 3500, 2500, 1500},
	})

	g := tbl.Query().GroupBy("dept")
	sums := g.Sum("salary")
	for i, key := range g.Keys() {
		fmt.Printf("dept %d: %d\n", key, sums[i])
	}
	// Output:
	// dept 0: 6500
	// dept 1: 6000
}

// Codecs map domain types onto the unsigned codes the bit-parallel
// operators require; typed columns bundle the two.
func ExampleDecimalColumn() {
	price := bpagg.NewDecimalColumn(bpagg.VBP, bpagg.Decimal{Scale: 2, Max: 1000})
	price.Append(19.99, 5.50, 127.45)

	cheap := price.ScanLess(20)
	fmt.Printf("%.2f\n", price.Sum(cheap))
	// Output: 25.49
}

// NULLs never match a scan and are skipped by aggregates, per SQL.
func ExampleColumn_AppendNull() {
	col := bpagg.NewColumn(bpagg.VBP, 8)
	col.Append(10)
	col.AppendNull()
	col.Append(20)

	all := col.All()
	fmt.Println("count(*): ", all.Count())
	fmt.Println("count(col):", col.Count(all))
	fmt.Println("sum:", col.Sum(all))
	// Output:
	// count(*):  3
	// count(col): 2
	// sum: 30
}

// The paper frames bit-parallel aggregation as an access method the
// optimizer picks for non-selective queries; Access(Auto) makes that
// choice per call from the realized selectivity.
func ExampleAccess() {
	vals := make([]uint64, 10000)
	for i := range vals {
		vals[i] = uint64(i % 256)
	}
	col := bpagg.FromValues(bpagg.HBP, 8, vals)

	needle := col.Scan(bpagg.Equal(7)) // ~0.4% selected: Auto reconstructs
	dense := col.Scan(bpagg.Less(128)) // 50% selected: Auto goes bit-parallel
	fmt.Println(col.Sum(needle, bpagg.Access(bpagg.Auto)))
	fmt.Println(col.Sum(dense, bpagg.Access(bpagg.Auto)))
	// Output:
	// 280
	// 317112
}

// Aggregation accelerates with goroutines and 256-bit wide words — the
// paper's two §IV-B axes.
func ExampleParallel() {
	vals := make([]uint64, 100000)
	for i := range vals {
		vals[i] = uint64(i % 1000)
	}
	col := bpagg.FromValues(bpagg.VBP, 10, vals)
	sum := col.Sum(col.All(), bpagg.Parallel(4), bpagg.WideWords())
	fmt.Println(sum)
	// Output: 49950000
}
