package bpagg

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"bpagg/internal/core"
	"bpagg/internal/faultinject"
	"bpagg/internal/parallel"
)

// TestErrorContract pins the error classification surface the serving
// layer depends on: every engine failure mode must satisfy errors.Is/As
// through arbitrary fmt.Errorf("%w") wrapping, so HTTP status mapping
// (internal/server.statusFor) never needs string sniffing. Each case
// produces its error from a REAL execution path, not a hand-built value
// — if a path stops returning the typed error, this test is what breaks.
func TestErrorContract(t *testing.T) {
	defer faultinject.Reset()

	overflowErr := func() error {
		// Two max-width values: 2·(2^64−1) cannot fit in uint64, so the
		// checked kernels must return the exact 128-bit total.
		tbl := NewTable()
		tbl.AddColumn("v", VBP, 64)
		tbl.AppendColumnar(map[string][]uint64{"v": {^uint64(0), ^uint64(0)}})
		_, err := tbl.Query().SumContext(context.Background(), "v")
		return err
	}

	panicErr := func() error {
		faultinject.Set(faultinject.SiteWorkerStart, func(args ...any) error {
			if args[0].(int) == 1 {
				panic("injected corrupt segment")
			}
			return nil
		})
		defer faultinject.Reset()
		col, sel := bigColumn(t, VBP, 64*512, 16)
		_, err := col.SumContext(context.Background(), sel, Parallel(4))
		return err
	}

	deadlineErr := func() error {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
		defer cancel()
		col, sel := bigColumn(t, HBP, 64*512, 16)
		_, err := col.SumContext(ctx, sel, Parallel(2))
		return err
	}

	cancelErr := func() error {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		col, sel := bigColumn(t, VBP, 64*512, 16)
		_, _, err := col.MedianContext(ctx, sel)
		return err
	}

	cardinalityErr := func() error {
		// Drive the partition kernel directly with > MaxGroups distinct
		// keys; the public GroupBy swallows this signal into the legacy
		// fallback, but kernel callers (and the serving layer, via the
		// exported sentinel) observe it as an error.
		n := (core.MaxGroups + 1) * 64
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i / 64)
		}
		col := FromValues(VBP, 16, vals)
		_, _, err := parallel.VBPGroupPartitionCtx(context.Background(), col.v, col.All().b, parallel.Options{})
		return err
	}

	cases := []struct {
		name string
		make func() error
		want func(error) bool
	}{
		{"overflow errors.As", overflowErr, func(err error) bool {
			var oe *OverflowError
			return errors.As(err, &oe) && oe.Hi == 1
		}},
		{"panic errors.As", panicErr, func(err error) bool {
			var pe *PanicError
			return errors.As(err, &pe) && pe.Worker == 1 && len(pe.Stack) > 0
		}},
		{"deadline errors.Is", deadlineErr, func(err error) bool {
			return errors.Is(err, context.DeadlineExceeded)
		}},
		{"canceled errors.Is", cancelErr, func(err error) bool {
			return errors.Is(err, context.Canceled)
		}},
		{"group cardinality errors.Is", cardinalityErr, func(err error) bool {
			return errors.Is(err, ErrGroupCardinality)
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.make()
			if err == nil {
				t.Fatal("execution path returned nil; expected a typed error")
			}
			if !tc.want(err) {
				t.Fatalf("raw error %v (%T) does not satisfy the contract", err, err)
			}
			// The contract must survive wrapping — twice, because serving
			// layers and callers both annotate.
			wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err))
			if !tc.want(wrapped) {
				t.Fatalf("wrapped error %v does not satisfy the contract", wrapped)
			}
		})
	}

	// The exported sentinel IS the internal one — not a lookalike — so
	// classification agrees on both sides of the internal boundary.
	if !errors.Is(core.ErrGroupCardinality, ErrGroupCardinality) {
		t.Error("bpagg.ErrGroupCardinality is not core.ErrGroupCardinality")
	}
}
