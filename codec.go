package bpagg

import "bpagg/internal/encode"

// The bit-parallel operators work on unsigned integer codes. These codecs
// provide the order-preserving mappings the paper refers to for other
// numeric types (§III footnote 3) and for dictionary-compressed strings.

// Decimal is a fixed-point codec for non-negative decimals in [0, Max],
// preserving Scale fractional digits. Order-preserving, so scans and rank
// aggregates on codes are exact; decode sums with DecodeSum.
type Decimal = encode.Decimal

// Signed is an offset codec for signed integers in [Min, Max].
type Signed = encode.Signed

// Dict is an order-preserving dictionary for low-cardinality strings.
type Dict = encode.Dict

// NewDict returns an empty string dictionary. Add all keys, Freeze, then
// Encode.
func NewDict() *Dict { return encode.NewDict() }

// BitsFor returns the minimum column bit width that can hold every code in
// [0, maxCode].
func BitsFor(maxCode uint64) int { return encode.BitsFor(maxCode) }
