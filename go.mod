module bpagg

go 1.22
