package bpagg_test

import (
	"testing"

	"bpagg/internal/oracle/diff"
)

// TestOracleDifferentialSweep is the PR-gating differential sweep: every
// generated adversarial case runs the full {fused, two-phase, wide,
// reconstruct} × {fresh, rebuilt, reloaded} × {1, 8 threads} matrix for
// all aggregates and predicate forms against the naive oracle
// (DESIGN.md §11). A failure message names the exact matrix cell and the
// case name embeds the generator seed — see README "Reproducing a
// divergence".
func TestOracleDifferentialSweep(t *testing.T) {
	// One seed keeps the gating sweep inside its 30s budget; the nightly
	// oracle-soak experiment runs many seeds with the Deep profile.
	seeds := []int64{1}
	for _, seed := range seeds {
		for _, c := range diff.Cases(diff.GenConfig{Seed: seed}) {
			c := c
			t.Run(c.Name, func(t *testing.T) {
				t.Parallel()
				if err := diff.Check(c); err != nil {
					t.Fatal(err)
				}
			})
		}
		// The high-cardinality grouped axis: direct vs hash vs legacy
		// partition tiers at G up to 65536, composite keys, and NULL
		// grouping keys, against the map-shaped scalar reference.
		for _, c := range diff.HighCardCases(diff.GenConfig{Seed: seed}) {
			c := c
			t.Run(c.Name, func(t *testing.T) {
				t.Parallel()
				if err := diff.CheckGrouped(c); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
