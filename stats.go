package bpagg

import (
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/metrics"
	"bpagg/internal/scan"
)

// ExecStats is a snapshot of execution counters: scan-side segment
// pruning and words compared, aggregate-side segments and words touched,
// radix rounds, reconstruction fallbacks, and wall/busy timers. See
// DESIGN.md §8 for the exact meaning and increment point of every
// counter. It is a plain value; snapshots from a StatsCollector can be
// diffed with Sub to isolate one operation.
type ExecStats = metrics.ExecStats

// StatsCollector accumulates ExecStats across scans and aggregates. It
// is safe for concurrent use — many queries may share one collector —
// and a nil *StatsCollector is valid everywhere and records nothing.
type StatsCollector = metrics.Collector

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector { return metrics.NewCollector() }

// CollectStats directs execution statistics of the aggregates run with
// this option into c. Collection is off by default; when off, execution
// takes exactly the pre-observability code paths (the disabled-path
// guarantee of DESIGN.md §8).
func CollectStats(c *StatsCollector) ExecOption {
	return func(cfg *execConfig) { cfg.par.Stats = c }
}

// ScanStats is Scan with observability: segments scanned vs zone-pruned,
// packed words compared, and scan wall time are recorded into rec. A nil
// rec degrades to a plain Scan.
func (c *Column) ScanStats(p Predicate, rec *StatsCollector) *Bitmap {
	if rec == nil {
		return c.Scan(p)
	}
	start := time.Now()
	var es metrics.ExecStats
	var b *bitvec.Bitmap
	if p.list != nil {
		// IN-lists run one equality scan per member (§II-E); each counts.
		b = bitvec.New(c.Len())
		for _, v := range p.list {
			b.Or(c.scanSimpleStats(scan.Predicate{Op: scan.EQ, A: v}, &es))
			es.Scans++
		}
	} else {
		b = c.scanSimpleStats(p.p, &es)
		es.Scans++
	}
	if c.nulls != nil {
		b.AndNot(c.nulls)
	}
	es.ScanNanos = time.Since(start).Nanoseconds()
	rec.Record(es)
	return &Bitmap{b: b}
}

func (c *Column) scanSimpleStats(p scan.Predicate, es *metrics.ExecStats) *bitvec.Bitmap {
	if c.layout == VBP {
		return scan.VBPStats(c.v, p, es)
	}
	return scan.HBPStats(c.h, p, es)
}

// recordReconstruct charges the collector for an aggregate served by the
// NBP reconstruction baseline: one aggregate invocation that
// materializes every selected row. Used as
// `defer recordReconstruct(rec, eff, time.Now())` so the deferred call
// observes the full reconstruction wall time.
func recordReconstruct(rec *StatsCollector, eff *bitvec.Bitmap, start time.Time) {
	if rec == nil {
		return
	}
	rec.Record(metrics.ExecStats{
		Aggregates:        1,
		ReconstructedRows: uint64(eff.Count()),
		AggNanos:          time.Since(start).Nanoseconds(),
	})
}
