package bpagg_test

import (
	"encoding/binary"
	"testing"

	"bpagg"
	"bpagg/internal/oracle"
	"bpagg/internal/oracle/diff"
)

// FuzzShardEquivalence drives the sharded differential harness from
// arbitrary bytes: it decodes a legal Case plus a shard size and demands
// the partitioned store agree with the naive oracle — and therefore with
// the flat engine — bit for bit on every aggregate, in both the split
// and reloaded store states. The shard size is fuzzer-chosen, so sealed
// shards, single-row shards, and non-divisible tails all emerge from the
// corpus.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(byte(0), byte(8), byte(2), byte(3), uint64(100), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(byte(1), byte(64), byte(5), byte(1), ^uint64(0), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(byte(0), byte(64), byte(0), byte(70), uint64(1)<<63, make([]byte, 8*70))
	f.Add(byte(1), byte(31), byte(7), byte(0), uint64(12345), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, layoutB, kB, opB, shardB byte, a uint64, data []byte) {
		layout := bpagg.VBP
		if layoutB&1 == 1 {
			layout = bpagg.HBP
		}
		k := 1 + int(kB)%64

		mask := uint64(1)<<uint(k) - 1
		if k == 64 {
			mask = ^uint64(0)
		}
		n := len(data) / 8
		if n > 300 {
			n = 300
		}
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(data[i*8:]) & mask
		}

		ops := []oracle.Op{oracle.EQ, oracle.NE, oracle.LT, oracle.LE,
			oracle.GT, oracle.GE, oracle.Between, oracle.In}
		p := oracle.Pred{Op: ops[int(opB)%len(ops)], A: a & mask}
		switch p.Op {
		case oracle.Between:
			p.B = (a >> 7) & mask
		case oracle.In:
			p.List = []uint64{a & mask, (a >> 13) & mask}
		}

		shardRows := 1 + int(shardB)%96
		c := diff.Case{
			Name:    "fuzz-shard",
			Layout:  layout,
			K:       k,
			A:       vals,
			Preds:   []diff.PredSpec{{Col: "a", Pred: p}},
			Threads: []int{1, 3},
		}
		if err := diff.CheckSharded(c, shardRows); err != nil {
			t.Fatal(err)
		}
	})
}
