package bpagg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"bpagg/internal/faultinject"
)

// Corruption-hardening tests: truncated, bit-flipped, and
// length-inflated serialized columns/tables must come back as errors —
// never a panic, never an allocation driven by a lying header.

func serializeColumn(t *testing.T, layout Layout, withNulls bool) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(571))
	col := NewColumn(layout, 11)
	for i := 0; i < 700; i++ {
		if withNulls && i%17 == 0 {
			col.AppendNull()
		} else {
			col.Append(rng.Uint64() & 0x7ff)
		}
	}
	var buf bytes.Buffer
	if _, err := col.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func serializeTable(t *testing.T) []byte {
	t.Helper()
	tbl := NewTable()
	tbl.AddColumn("a", VBP, 9)
	tbl.AddColumn("b", HBP, 5)
	vals := map[string][]uint64{"a": {}, "b": {}}
	rng := rand.New(rand.NewSource(572))
	for i := 0; i < 300; i++ {
		vals["a"] = append(vals["a"], rng.Uint64()&0x1ff)
		vals["b"] = append(vals["b"], rng.Uint64()&0x1f)
	}
	tbl.AppendColumnar(vals)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// mustNotPanic runs fn and converts any panic into a test failure with
// the corrupting mutation identified.
func mustNotPanic(t *testing.T, desc string, fn func() error) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panicked: %v", desc, r)
		}
	}()
	return fn()
}

func TestReadColumnTruncation(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		for _, withNulls := range []bool{false, true} {
			data := serializeColumn(t, layout, withNulls)
			for cut := 0; cut < len(data); cut++ {
				err := mustNotPanic(t, "truncated column", func() error {
					_, err := ReadColumn(bytes.NewReader(data[:cut]))
					return err
				})
				if err == nil {
					t.Fatalf("%v nulls=%v: ReadColumn of %d/%d bytes succeeded", layout, withNulls, cut, len(data))
				}
			}
			// The intact stream still round-trips.
			if _, err := ReadColumn(bytes.NewReader(data)); err != nil {
				t.Fatalf("%v nulls=%v: ReadColumn intact: %v", layout, withNulls, err)
			}
		}
	}
}

func TestReadColumnBitFlips(t *testing.T) {
	data := serializeColumn(t, VBP, true)
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			corrupt := append([]byte(nil), data...)
			corrupt[off] ^= 1 << uint(bit)
			// A flipped data bit may still deserialize (to different
			// values); a flipped structural field must error. Either way:
			// no panic.
			mustNotPanic(t, "bit-flipped column", func() error {
				_, err := ReadColumn(bytes.NewReader(corrupt))
				return err
			})
		}
	}
}

// TestReadColumnInflatedLengths hand-crafts headers whose length fields
// promise absurd amounts of data and asserts both the error and that
// decoding does not allocate anywhere near the claimed sizes.
func TestReadColumnInflatedLengths(t *testing.T) {
	data := serializeColumn(t, VBP, false)

	mutate := func(desc string, off int, v uint64, width int) {
		corrupt := append([]byte(nil), data...)
		switch width {
		case 2:
			binary.LittleEndian.PutUint16(corrupt[off:], uint16(v))
		case 8:
			binary.LittleEndian.PutUint64(corrupt[off:], v)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		err := mustNotPanic(t, desc, func() error {
			_, err := ReadColumn(bytes.NewReader(corrupt))
			return err
		})
		runtime.ReadMemStats(&after)
		if err == nil {
			t.Fatalf("%s: ReadColumn succeeded", desc)
		}
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
			t.Fatalf("%s: decoding allocated %d bytes for a %d-byte input", desc, grew, len(corrupt))
		}
	}

	// Offsets per the header layout: magic(4) version(2) layout(1) k(2)
	// tau(2) n(8) nullFlag(1), then per-group wordCount(8).
	mutate("row count n = 2^55", 11, 1<<55, 8)
	mutate("k = 65", 7, 65, 2)
	mutate("tau = 0", 9, 0, 2)
	mutate("group word count = 2^50", 20, 1<<50, 8)
}

func TestReadTableTruncationAndInflation(t *testing.T) {
	data := serializeTable(t)
	for cut := 0; cut < len(data); cut++ {
		err := mustNotPanic(t, "truncated table", func() error {
			_, err := ReadTable(bytes.NewReader(data[:cut]))
			return err
		})
		if err == nil {
			t.Fatalf("ReadTable of %d/%d bytes succeeded", cut, len(data))
		}
	}
	if _, err := ReadTable(bytes.NewReader(data)); err != nil {
		t.Fatalf("ReadTable intact: %v", err)
	}

	// Inflate the column count (offset 6, after magic+version).
	corrupt := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[6:], 1<<30)
	if err := mustNotPanic(t, "inflated column count", func() error {
		_, err := ReadTable(bytes.NewReader(corrupt))
		return err
	}); err == nil {
		t.Fatal("ReadTable with 2^30 columns succeeded")
	}

	// Inflate the first column-name length (offset 10).
	corrupt = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[10:], 1<<31)
	if err := mustNotPanic(t, "inflated name length", func() error {
		_, err := ReadTable(bytes.NewReader(corrupt))
		return err
	}); err == nil {
		t.Fatal("ReadTable with 2GB column name succeeded")
	}
}

func TestReadColumnRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(573))
	for i := 0; i < 200; i++ {
		garbage := make([]byte, rng.Intn(4096))
		rng.Read(garbage)
		mustNotPanic(t, "random garbage", func() error {
			_, err := ReadColumn(bytes.NewReader(garbage))
			return err
		})
		mustNotPanic(t, "random garbage table", func() error {
			_, err := ReadTable(bytes.NewReader(garbage))
			return err
		})
	}
}

// TestReadTableRowCountMismatch hand-crafts a table stream whose columns
// disagree on row count — each column frame is individually valid, so
// only the cross-column check in ReadTable can catch it. A table that
// loaded this way would report Rows() from one column while another is
// shorter, the read-path twin of the torn-append hazard.
func TestReadTableRowCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	for _, v := range []any{tableMagic, ioVersion, uint32(2)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	writeCol := func(name string, n int) {
		col := NewColumn(VBP, 8)
		for i := 0; i < n; i++ {
			col.Append(uint64(i % 200))
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(name))); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(name)
		if _, err := col.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	writeCol("a", 100)
	writeCol("b", 64)

	err := mustNotPanic(t, "row-count mismatch", func() error {
		_, err := ReadTable(bytes.NewReader(buf.Bytes()))
		return err
	})
	if err == nil {
		t.Fatal("ReadTable accepted columns with 100 and 64 rows")
	}
	err = mustNotPanic(t, "row-count mismatch via ReadPartitioned", func() error {
		_, err := ReadPartitioned(bytes.NewReader(buf.Bytes()))
		return err
	})
	if err == nil {
		t.Fatal("ReadPartitioned accepted columns with 100 and 64 rows")
	}
}

// TestShardedRandomGarbage extends the garbage hardening to the sharded
// container readers.
func TestShardedRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(574))
	for i := 0; i < 200; i++ {
		garbage := make([]byte, rng.Intn(4096))
		rng.Read(garbage)
		mustNotPanic(t, "random garbage sharded", func() error {
			_, err := ReadShardedTable(bytes.NewReader(garbage))
			return err
		})
		mustNotPanic(t, "random garbage partitioned", func() error {
			_, err := ReadPartitioned(bytes.NewReader(garbage))
			return err
		})
	}
}

// TestShortReadInjection simulates a stream that fails mid-read via the
// fault-injection hook in readWords.
func TestShortReadInjection(t *testing.T) {
	defer faultinject.Reset()
	data := serializeColumn(t, VBP, true)
	faultinject.Set(faultinject.SiteIOReadWords, func(args ...any) error {
		return io.ErrUnexpectedEOF
	})
	_, err := ReadColumn(bytes.NewReader(data))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadColumn with injected short read = %v, want ErrUnexpectedEOF", err)
	}
	faultinject.Reset()
	if _, err := ReadColumn(bytes.NewReader(data)); err != nil {
		t.Fatalf("ReadColumn after clearing injection: %v", err)
	}
}
