package bpagg

import (
	"math/rand"
	"testing"
)

// Property tests for the fused scan→aggregate path: for any column
// content, layout, predicate, and thread count, a fused query must return
// bit-identical results to the two-phase path (scan to bitmap, then
// aggregate), and for single predicates its scan-side counters must be
// exactly the ones ScanStats reports. Two-phase execution is forced by
// materializing the selection first — Selection() permanently disables
// fusion for a query.

type clauseSpec struct {
	col  string
	pred Predicate
}

func fusedQueryPair(tbl *Table, cls []clauseSpec, threads int) (fused, two *Query) {
	mk := func() *Query {
		q := tbl.Query().WithStats()
		if threads > 1 {
			q.With(Parallel(threads))
		}
		for _, c := range cls {
			q.Where(c.col, c.pred)
		}
		return q
	}
	fused, two = mk(), mk()
	two.Selection()
	return fused, two
}

// checkFusedEquivalence runs every aggregate on fresh fused/two-phase
// query pairs and compares results bit for bit. wantFused asserts the
// planner's routing decision for the aggregate column.
func checkFusedEquivalence(t *testing.T, tbl *Table, cls []clauseSpec, agg string, threads int, wantFused bool) {
	t.Helper()
	if f, _ := fusedQueryPair(tbl, cls, threads); f.Fused(agg) != wantFused {
		t.Fatalf("Fused(%q) = %v, want %v", agg, f.Fused(agg), wantFused)
	}

	f, tw := fusedQueryPair(tbl, cls, threads)
	if got, want := f.CountRows(), tw.CountRows(); got != want {
		t.Errorf("CountRows: fused %d, two-phase %d", got, want)
	}

	f, tw = fusedQueryPair(tbl, cls, threads)
	if got, want := f.Sum(agg), tw.Sum(agg); got != want {
		t.Errorf("Sum: fused %d, two-phase %d", got, want)
	}

	f, tw = fusedQueryPair(tbl, cls, threads)
	gv, gok := f.Min(agg)
	wv, wok := tw.Min(agg)
	if gv != wv || gok != wok {
		t.Errorf("Min: fused (%d,%v), two-phase (%d,%v)", gv, gok, wv, wok)
	}

	f, tw = fusedQueryPair(tbl, cls, threads)
	gv, gok = f.Max(agg)
	wv, wok = tw.Max(agg)
	if gv != wv || gok != wok {
		t.Errorf("Max: fused (%d,%v), two-phase (%d,%v)", gv, gok, wv, wok)
	}

	f, tw = fusedQueryPair(tbl, cls, threads)
	ga, gok := f.Avg(agg)
	wa, wok := tw.Avg(agg)
	if ga != wa || gok != wok {
		t.Errorf("Avg: fused (%v,%v), two-phase (%v,%v)", ga, gok, wa, wok)
	}

	f, tw = fusedQueryPair(tbl, cls, threads)
	gv, gok = f.Median(agg)
	wv, wok = tw.Median(agg)
	if gv != wv || gok != wok {
		t.Errorf("Median: fused (%d,%v), two-phase (%d,%v)", gv, gok, wv, wok)
	}

	for _, r := range []uint64{1, 3, uint64(tbl.Rows()) + 1} {
		f, tw = fusedQueryPair(tbl, cls, threads)
		gv, gok = f.Rank(agg, r)
		wv, wok = tw.Rank(agg, r)
		if gv != wv || gok != wok {
			t.Errorf("Rank(%d): fused (%d,%v), two-phase (%d,%v)", r, gv, gok, wv, wok)
		}
	}

	for _, qq := range []float64{0, 0.3, 0.5, 1} {
		f, tw = fusedQueryPair(tbl, cls, threads)
		gv, gok = f.Quantile(agg, qq)
		wv, wok = tw.Quantile(agg, qq)
		if gv != wv || gok != wok {
			t.Errorf("Quantile(%v): fused (%d,%v), two-phase (%d,%v)", qq, gv, gok, wv, wok)
		}
	}
}

// checkSinglePredScanStats pins the stats contract for single predicates:
// the fused pass reports exactly the scan counters the two-phase scan
// does, and never touches more aggregate words.
func checkSinglePredScanStats(t *testing.T, tbl *Table, cls []clauseSpec, agg string, threads int) {
	t.Helper()
	if len(cls) != 1 {
		t.Fatal("scan-counter exactness holds for single predicates only")
	}
	f, tw := fusedQueryPair(tbl, cls, threads)
	if f.Sum(agg) != tw.Sum(agg) {
		t.Fatal("sum mismatch")
	}
	fs, ts := f.Stats(), tw.Stats()
	if fs.Scans != ts.Scans {
		t.Errorf("Scans: fused %d, two-phase %d", fs.Scans, ts.Scans)
	}
	if fs.SegmentsScanned != ts.SegmentsScanned {
		t.Errorf("SegmentsScanned: fused %d, two-phase %d", fs.SegmentsScanned, ts.SegmentsScanned)
	}
	if fs.SegmentsPrunedNone != ts.SegmentsPrunedNone {
		t.Errorf("SegmentsPrunedNone: fused %d, two-phase %d", fs.SegmentsPrunedNone, ts.SegmentsPrunedNone)
	}
	if fs.SegmentsPrunedAll != ts.SegmentsPrunedAll {
		t.Errorf("SegmentsPrunedAll: fused %d, two-phase %d", fs.SegmentsPrunedAll, ts.SegmentsPrunedAll)
	}
	if fs.WordsCompared != ts.WordsCompared {
		t.Errorf("WordsCompared: fused %d, two-phase %d", fs.WordsCompared, ts.WordsCompared)
	}
	if fs.WordsTouched > ts.WordsTouched {
		t.Errorf("WordsTouched: fused %d > two-phase %d", fs.WordsTouched, ts.WordsTouched)
	}
}

func randVals(rng *rand.Rand, n, k int) []uint64 {
	max := uint64(1)<<uint(k) - 1
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & max
	}
	return out
}

func randPreds(rng *rand.Rand, k int) []Predicate {
	max := uint64(1)<<uint(k) - 1
	pick := func() uint64 { return rng.Uint64() & max }
	a, b := pick(), pick()
	if a > b {
		a, b = b, a
	}
	return []Predicate{
		Equal(pick()), NotEqual(pick()),
		Less(pick()), LessEq(pick()),
		Greater(pick()), GreaterEq(pick()),
		Between(a, b),
		Less(0),         // statically empty: every segment zone-prunes
		LessEq(max),     // statically full: every segment served all-match
		Less(max/2 + 1), // ~50% selective
	}
}

func TestFusedEquivalenceVBP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, k := range []int{1, 7, 10, 17} {
		for _, n := range []int{0, 61, 1003} {
			vals := randVals(rng, n, k)
			tbl := NewTableFromColumns(
				[]string{"x", "y"},
				[]*Column{FromValues(VBP, k, vals), FromValues(VBP, k, randVals(rng, n, k))},
			)
			for _, p := range randPreds(rng, k) {
				for _, threads := range []int{1, 8} {
					cls := []clauseSpec{{"x", p}}
					checkFusedEquivalence(t, tbl, cls, "y", threads, true)
					checkSinglePredScanStats(t, tbl, cls, "y", threads)
				}
			}
		}
	}
}

func TestFusedEquivalenceHBP(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, k := range []int{3, 6, 10} {
		for _, n := range []int{0, 100, 1003} {
			vals := randVals(rng, n, k)
			tbl := NewTableFromColumns(
				[]string{"x", "y"},
				[]*Column{FromValues(HBP, k, vals), FromValues(HBP, k, randVals(rng, n, k))},
			)
			for _, p := range randPreds(rng, k) {
				for _, threads := range []int{1, 8} {
					cls := []clauseSpec{{"x", p}}
					checkFusedEquivalence(t, tbl, cls, "y", threads, true)
					checkSinglePredScanStats(t, tbl, cls, "y", threads)
				}
			}
		}
	}
}

// TestFusedEquivalenceConjunction: AND-conjunctions fuse too; only the
// results are pinned (conjunction early-outs may legitimately compare
// fewer words than two independent scans).
func TestFusedEquivalenceConjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, layout := range []Layout{VBP, HBP} {
		k := 9
		if layout == HBP {
			k = 6
		}
		n := 777
		tbl := NewTableFromColumns(
			[]string{"a", "b", "c"},
			[]*Column{
				FromValues(layout, k, randVals(rng, n, k)),
				FromValues(layout, k, randVals(rng, n, k)),
				FromValues(layout, k, randVals(rng, n, k)),
			},
		)
		ps := randPreds(rng, k)
		for i := 0; i+1 < len(ps); i += 2 {
			cls := []clauseSpec{{"a", ps[i]}, {"b", ps[i+1]}}
			for _, threads := range []int{1, 8} {
				checkFusedEquivalence(t, tbl, cls, "c", threads, true)
			}
		}
	}
}

// TestFusedMixedLayoutWindows: fusion across layouts requires the window
// widths to coincide. HBP with 7-bit values packs exactly 64 tuples per
// segment and fuses with VBP's 64-tuple segments; HBP with 6-bit values
// packs 63 and must fall back — with identical results either way.
func TestFusedMixedLayoutWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 500
	tbl := NewTableFromColumns(
		[]string{"v", "h64", "h63"},
		[]*Column{
			FromValues(VBP, 10, randVals(rng, n, 10)),
			FromValues(HBP, 7, randVals(rng, n, 7)),
			FromValues(HBP, 6, randVals(rng, n, 6)),
		},
	)
	if got := tbl.Column("h64").Len(); got != n {
		t.Fatalf("h64 len = %d", got)
	}
	cls := []clauseSpec{{"v", Less(512)}}
	checkFusedEquivalence(t, tbl, cls, "h64", 4, true)
	checkFusedEquivalence(t, tbl, cls, "h63", 4, false)
	// And predicates on both matching-window layouts at once.
	cls = []clauseSpec{{"v", Less(700)}, {"h64", Greater(10)}}
	checkFusedEquivalence(t, tbl, cls, "h64", 4, true)
	checkFusedEquivalence(t, tbl, cls, "v", 4, true)
}

// TestFusedCacheServedVBP pins the aggregate-cache instrumentation on
// sorted data, where a selective range predicate makes most live segments
// all-match: the fused path must answer those from the per-segment caches,
// and the two-phase/fused WordsTouched difference must be exactly k words
// per cache-served segment (the dense kernels charge k per live segment).
func TestFusedCacheServedVBP(t *testing.T) {
	const k, n = 12, 4096
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	tbl := NewTableFromColumns([]string{"x"}, []*Column{FromValues(VBP, k, vals)})
	for _, threads := range []int{1, 8} {
		cls := []clauseSpec{{"x", Less(uint64(n / 2))}}
		f, tw := fusedQueryPair(tbl, cls, threads)
		if f.Sum("x") != tw.Sum("x") {
			t.Fatal("sum mismatch")
		}
		fs, ts := f.Stats(), tw.Stats()
		if fs.SegmentsCacheServed == 0 {
			t.Fatal("sorted selective scan served no segments from the cache")
		}
		if ts.SegmentsCacheServed != 0 {
			t.Fatalf("two-phase path reported cache-served segments: %d", ts.SegmentsCacheServed)
		}
		// The n/2 matching rows are segment-aligned, so every matching
		// segment is all-match and cache-served.
		if want := uint64(n / 2 / 64); fs.SegmentsCacheServed != want {
			t.Errorf("SegmentsCacheServed = %d, want %d", fs.SegmentsCacheServed, want)
		}
		if drop := ts.WordsTouched - fs.WordsTouched; drop != uint64(k)*fs.SegmentsCacheServed {
			t.Errorf("WordsTouched drop = %d, want k*cacheServed = %d",
				drop, uint64(k)*fs.SegmentsCacheServed)
		}
		if fs.SegmentsAggregated+fs.SegmentsCacheServed != ts.SegmentsAggregated {
			t.Errorf("SegmentsAggregated: fused %d + cache %d != two-phase %d",
				fs.SegmentsAggregated, fs.SegmentsCacheServed, ts.SegmentsAggregated)
		}
	}
}

// TestFusedCacheServedHBP: same scenario on HBP — the sub-segment word
// accounting differs, so only direction and result identity are pinned.
func TestFusedCacheServedHBP(t *testing.T) {
	const k, n = 7, 4096
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 128)
	}
	// Sort-cluster the values so zones are tight.
	for i := range vals {
		vals[i] = uint64(i * 128 / n)
	}
	tbl := NewTableFromColumns([]string{"x"}, []*Column{FromValues(HBP, k, vals)})
	for _, threads := range []int{1, 8} {
		cls := []clauseSpec{{"x", Less(64)}}
		f, tw := fusedQueryPair(tbl, cls, threads)
		if f.Sum("x") != tw.Sum("x") {
			t.Fatal("sum mismatch")
		}
		fs, ts := f.Stats(), tw.Stats()
		if fs.SegmentsCacheServed == 0 {
			t.Fatal("sorted selective scan served no segments from the cache")
		}
		if fs.WordsTouched >= ts.WordsTouched {
			t.Errorf("WordsTouched: fused %d, want < two-phase %d", fs.WordsTouched, ts.WordsTouched)
		}
		gm, gok := f.Min("x")
		wm, wok := tw.Min("x")
		if gm != wm || gok != wok {
			t.Errorf("Min: fused (%d,%v), two-phase (%d,%v)", gm, gok, wm, wok)
		}
	}
}

// TestFusedFallbacks: materialized selections and IN-lists must never
// fuse, and the results stay identical.
func TestFusedFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	vals := randVals(rng, 300, 8)
	tbl := NewTableFromColumns([]string{"x"}, []*Column{FromValues(VBP, 8, vals)})

	q := tbl.Query().Where("x", In(3, 5, 9))
	if q.Fused("x") {
		t.Error("IN-list query claims to fuse")
	}

	q = tbl.Query().Where("x", Less(100))
	q.Selection()
	if q.Fused("x") {
		t.Error("materialized query claims to fuse")
	}

	// A NULL-bearing aggregate column cannot fuse either.
	withNulls := NewColumn(VBP, 8)
	withNulls.Append(vals...)
	withNulls.AppendNull()
	plain := FromValues(VBP, 8, append(append([]uint64(nil), vals...), 0))
	tbl2 := NewTableFromColumns([]string{"x", "n"}, []*Column{plain, withNulls})
	q = tbl2.Query().Where("x", Less(100))
	if q.Fused("n") {
		t.Error("NULL-bearing aggregate column claims to fuse")
	}
	if !q.Fused("x") {
		t.Error("NULL-free column refuses to fuse")
	}
}

// FuzzFusedEquivalence is the fused-vs-two-phase differential fuzzer: any
// discrepancy in any aggregate between the fused path and the bitmap path
// is a bug, whatever the data, width, predicate, or thread count.
func FuzzFusedEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 17}, uint8(8), uint8(2), uint64(100), uint64(200), uint8(1), true)
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(0), uint64(0), uint64(1), uint8(4), false)
	f.Add([]byte{255, 254, 7}, uint8(13), uint8(6), uint64(50), uint64(5000), uint8(8), true)
	f.Add([]byte{}, uint8(5), uint8(4), uint64(9), uint64(9), uint8(2), false)

	f.Fuzz(func(t *testing.T, data []byte, kRaw, opRaw uint8, a, b uint64, threadsRaw uint8, useVBP bool) {
		k := int(kRaw)%17 + 1
		layout := HBP
		if useVBP {
			layout = VBP
		}
		max := uint64(1)<<uint(k) - 1
		vals := make([]uint64, len(data))
		for i, d := range data {
			v := uint64(d)
			if i > 0 {
				v |= uint64(data[i-1]) << 8
			}
			vals[i] = v & max
		}
		a, b = a&max, b&max
		if a > b {
			a, b = b, a
		}
		var pred Predicate
		switch opRaw % 7 {
		case 0:
			pred = Equal(a)
		case 1:
			pred = NotEqual(a)
		case 2:
			pred = Less(b)
		case 3:
			pred = LessEq(a)
		case 4:
			pred = Greater(a)
		case 5:
			pred = GreaterEq(b)
		default:
			pred = Between(a, b)
		}
		threads := int(threadsRaw)%8 + 1

		tbl := NewTableFromColumns([]string{"x"}, []*Column{FromValues(layout, k, vals)})
		mk := func() *Query {
			return tbl.Query().With(Parallel(threads)).Where("x", pred)
		}
		fq, tq := mk(), mk()
		tq.Selection()
		if got, want := fq.CountRows(), tq.CountRows(); got != want {
			t.Fatalf("CountRows: fused %d, two-phase %d", got, want)
		}
		fq, tq = mk(), mk()
		tq.Selection()
		if got, want := fq.Sum("x"), tq.Sum("x"); got != want {
			t.Fatalf("Sum: fused %d, two-phase %d", got, want)
		}
		fq, tq = mk(), mk()
		tq.Selection()
		gv, gok := fq.Min("x")
		wv, wok := tq.Min("x")
		if gv != wv || gok != wok {
			t.Fatalf("Min: fused (%d,%v), two-phase (%d,%v)", gv, gok, wv, wok)
		}
		fq, tq = mk(), mk()
		tq.Selection()
		gv, gok = fq.Max("x")
		wv, wok = tq.Max("x")
		if gv != wv || gok != wok {
			t.Fatalf("Max: fused (%d,%v), two-phase (%d,%v)", gv, gok, wv, wok)
		}
		fq, tq = mk(), mk()
		tq.Selection()
		gv, gok = fq.Median("x")
		wv, wok = tq.Median("x")
		if gv != wv || gok != wok {
			t.Fatalf("Median: fused (%d,%v), two-phase (%d,%v)", gv, gok, wv, wok)
		}
	})
}
