package bpagg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"bpagg/internal/bitvec"
	"bpagg/internal/faultinject"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
)

// Columns and tables serialize to a small little-endian binary format, so a
// packed column can be written once and mapped back without re-packing.
// The format is versioned; readers reject unknown versions and validate
// every length and HBP delimiter invariant before adopting the data.
//
//	column  := magic version layout k tau n nullFlag [nullWords]
//	           group* zoneFlag [zMin* zMax*]
//	group   := wordCount word*
//	table   := magic version columnCount (nameLen name column)*
//
// Zone maps (per-segment min/max used for scan pruning) serialize with the
// column so a reloaded table scans as fast as a freshly packed one.

const (
	colMagic   uint32 = 0x42504147 // "BPAG"
	tableMagic uint32 = 0x42505442 // "BPTB"
	ioVersion  uint16 = 1
)

// WriteTo serializes the column. It implements io.WriterTo.
func (c *Column) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	hdr := []any{
		colMagic, ioVersion, uint8(c.layout),
		uint16(c.k), uint16(c.GroupBits()), uint64(c.Len()),
	}
	nullFlag := uint8(0)
	if c.nulls != nil {
		nullFlag = 1
	}
	hdr = append(hdr, nullFlag)
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	if c.nulls != nil {
		if err := writeWords(bw, c.nulls.Words()); err != nil {
			return cw.n, err
		}
	}
	groups := c.rawGroups()
	for _, g := range groups {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(g))); err != nil {
			return cw.n, err
		}
		if err := writeWords(bw, g); err != nil {
			return cw.n, err
		}
	}
	zMin, zMax := c.rawZones()
	zoneFlag := uint8(0)
	if zMin != nil && len(zMin) == c.numSegments() {
		zoneFlag = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, zoneFlag); err != nil {
		return cw.n, err
	}
	if zoneFlag == 1 {
		if err := writeWords(bw, zMin); err != nil {
			return cw.n, err
		}
		if err := writeWords(bw, zMax); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadColumn deserializes a column written by WriteTo. It reads exactly
// the column's bytes, so multiple columns may share one stream (callers
// with unbuffered sources should wrap the whole stream in a bufio.Reader
// themselves).
func ReadColumn(r io.Reader) (*Column, error) {
	br := r
	var (
		magic    uint32
		version  uint16
		layout   uint8
		k, tau   uint16
		n        uint64
		nullFlag uint8
	)
	for _, p := range []any{&magic, &version, &layout, &k, &tau, &n, &nullFlag} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("bpagg: reading column header: %w", err)
		}
	}
	if magic != colMagic {
		return nil, fmt.Errorf("bpagg: bad column magic %#x", magic)
	}
	if version != ioVersion {
		return nil, fmt.Errorf("bpagg: unsupported column version %d", version)
	}
	if Layout(layout) != VBP && Layout(layout) != HBP {
		return nil, fmt.Errorf("bpagg: unknown layout %d", layout)
	}
	if k < 1 || k > 64 || n > 1<<56 {
		return nil, fmt.Errorf("bpagg: implausible header (k=%d n=%d)", k, n)
	}

	var nulls *bitvec.Bitmap
	if nullFlag == 1 {
		words, err := readWords(br, (int(n)+63)/64)
		if err != nil {
			return nil, fmt.Errorf("bpagg: reading null bitmap: %w", err)
		}
		nulls = bitvec.FromWords(int(n), words)
	} else if nullFlag != 0 {
		return nil, fmt.Errorf("bpagg: bad null flag %d", nullFlag)
	}

	if tau == 0 || int(tau) > int(k) {
		return nil, fmt.Errorf("bpagg: implausible tau %d for k %d", tau, k)
	}
	numGroups := (int(k) + int(tau) - 1) / int(tau)
	groups := make([][]uint64, numGroups)
	for g := range groups {
		var count uint64
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("bpagg: reading group %d size: %w", g, err)
		}
		if count > 1<<40 {
			return nil, fmt.Errorf("bpagg: implausible group size %d", count)
		}
		words, err := readWords(br, int(count))
		if err != nil {
			return nil, fmt.Errorf("bpagg: reading group %d: %w", g, err)
		}
		groups[g] = words
	}

	col := &Column{layout: Layout(layout), k: int(k), nulls: nulls}
	var err error
	if col.layout == VBP {
		col.v, err = vbp.FromWords(int(k), int(tau), int(n), groups)
	} else {
		col.h, err = hbp.FromWords(int(k), int(tau), int(n), groups)
	}
	if err != nil {
		return nil, fmt.Errorf("bpagg: %w", err)
	}

	var zoneFlag uint8
	if err := binary.Read(br, binary.LittleEndian, &zoneFlag); err != nil {
		return nil, fmt.Errorf("bpagg: reading zone flag: %w", err)
	}
	switch zoneFlag {
	case 0:
	case 1:
		nseg := col.numSegments()
		zMin, err := readWords(br, nseg)
		if err != nil {
			return nil, fmt.Errorf("bpagg: reading zone minima: %w", err)
		}
		zMax, err := readWords(br, nseg)
		if err != nil {
			return nil, fmt.Errorf("bpagg: reading zone maxima: %w", err)
		}
		if err := col.setZones(zMin, zMax); err != nil {
			return nil, fmt.Errorf("bpagg: %w", err)
		}
		// Adopted zones are sound but not trusted as exact; recompute the
		// per-segment aggregate caches from the data so a reloaded column
		// serves the fused path as well as a freshly packed one.
		col.rebuildSegmentAggregates()
	default:
		return nil, fmt.Errorf("bpagg: bad zone flag %d", zoneFlag)
	}
	return col, nil
}

// numSegments returns the column's physical segment count.
func (c *Column) numSegments() int {
	if c.layout == VBP {
		return c.v.NumSegments()
	}
	return c.h.NumSegments()
}

// rawZones exposes the per-segment zone arrays for serialization.
func (c *Column) rawZones() (zMin, zMax []uint64) {
	if c.layout == VBP {
		return c.v.Zones()
	}
	return c.h.Zones()
}

// setZones adopts validated zone arrays during deserialization.
func (c *Column) setZones(zMin, zMax []uint64) error {
	if c.layout == VBP {
		return c.v.SetZones(zMin, zMax)
	}
	return c.h.SetZones(zMin, zMax)
}

// rebuildSegmentAggregates recomputes the exact per-segment zone and sum
// caches from the packed data (deserialization path).
func (c *Column) rebuildSegmentAggregates() {
	if c.layout == VBP {
		c.v.RebuildSegmentAggregates()
	} else {
		c.h.RebuildSegmentAggregates()
	}
}

// WriteTo serializes the table with its column names. It implements
// io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if err := binary.Write(cw, binary.LittleEndian, tableMagic); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, ioVersion); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(t.names))); err != nil {
		return cw.n, err
	}
	for _, name := range t.names {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(name))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return cw.n, err
		}
		if _, err := t.cols[name].WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadTable deserializes a table written by Table.WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	var (
		magic   uint32
		version uint16
		count   uint32
	)
	for _, p := range []any{&magic, &version, &count} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("bpagg: reading table header: %w", err)
		}
	}
	if magic != tableMagic {
		return nil, fmt.Errorf("bpagg: bad table magic %#x", magic)
	}
	if version != ioVersion {
		return nil, fmt.Errorf("bpagg: unsupported table version %d", version)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("bpagg: implausible column count %d", count)
	}
	t := NewTable()
	rows := -1
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("bpagg: reading column name length: %w", err)
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("bpagg: implausible column name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, fmt.Errorf("bpagg: reading column name: %w", err)
		}
		col, err := ReadColumn(r)
		if err != nil {
			return nil, err
		}
		name := string(nameBuf)
		if _, dup := t.cols[name]; dup {
			return nil, fmt.Errorf("bpagg: duplicate column %q", name)
		}
		if rows == -1 {
			rows = col.Len()
		} else if col.Len() != rows {
			return nil, fmt.Errorf("bpagg: column %q has %d rows, want %d", name, col.Len(), rows)
		}
		t.cols[name] = col
		t.names = append(t.names, name)
	}
	if rows > 0 {
		t.rows = rows
	}
	return t, nil
}

// rawGroups exposes the packed word slices for serialization.
func (c *Column) rawGroups() [][]uint64 {
	if c.layout == VBP {
		gs := c.v.Groups()
		out := make([][]uint64, len(gs))
		for g := range gs {
			out[g] = gs[g].Words
		}
		return out
	}
	out := make([][]uint64, c.h.NumGroups())
	for g := range out {
		out[g] = c.h.GroupWords(g)
	}
	return out
}

func writeWords(w io.Writer, words []uint64) error {
	buf := make([]byte, 8*1024)
	for len(words) > 0 {
		chunk := len(words)
		if chunk > 1024 {
			chunk = 1024
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], words[i])
		}
		if _, err := w.Write(buf[:8*chunk]); err != nil {
			return err
		}
		words = words[chunk:]
	}
	return nil
}

// readWords reads count little-endian words. The result grows with the
// bytes actually read, never with the claimed count, so a corrupt header
// that lies about sizes fails at EOF instead of exhausting memory.
func readWords(r io.Reader, count int) ([]uint64, error) {
	if err := faultinject.Fire(faultinject.SiteIOReadWords); err != nil {
		return nil, err
	}
	initial := count
	if initial > 64*1024 {
		initial = 64 * 1024
	}
	words := make([]uint64, 0, initial)
	buf := make([]byte, 8*1024)
	for len(words) < count {
		chunk := count - len(words)
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:8*chunk]); err != nil {
			return nil, err
		}
		for j := 0; j < chunk; j++ {
			words = append(words, binary.LittleEndian.Uint64(buf[8*j:]))
		}
	}
	return words, nil
}

// countWriter tracks bytes written for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
