package bpagg

import "fmt"

// Grouped is a query partitioned by the distinct values of a grouping
// column. Following the paper's wide-table approach (§III, [11], [12]),
// grouping columns are materialized and dictionary-encoded, so GROUP BY
// reduces to one BIT-PARALLEL-EQUAL scan per distinct group value
// intersected with the query's filter.
//
// Group keys are discovered bit-parallel as well: repeated MIN walks the
// distinct values in ascending order without reconstructing a single
// row. Each step needs only the equality scan of the freshly found key —
// since that key is the minimum of the residual, removing its rows
// (AndNot) leaves exactly the strictly-greater residual the next step
// needs, so discovery costs G scans for G groups, not 2G.
// Grouping therefore suits low-cardinality columns (dictionary codes,
// flags, dates at coarse granularity) — the same regime the paper's
// materialization argument assumes.
type Grouped struct {
	q    *Query
	keys []uint64
	sels []*Bitmap
}

// GroupBy partitions the query's current selection by the named column's
// distinct values.
func (q *Query) GroupBy(column string) *Grouped {
	col := q.t.cols[column]
	if col == nil {
		panic(fmt.Sprintf("bpagg: unknown column %q", column))
	}
	g := &Grouped{q: q}
	base := q.Selection()
	rest := base.Clone()
	for {
		v, ok := col.Min(rest, q.execs...)
		if !ok {
			break
		}
		eq := col.ScanStats(Equal(v), q.stats)
		g.keys = append(g.keys, v)
		g.sels = append(g.sels, base.Clone().And(eq))
		rest.AndNot(eq)
	}
	return g
}

// Len returns the number of groups.
func (g *Grouped) Len() int { return len(g.keys) }

// Keys returns the distinct group values in ascending order. All per-group
// result slices below are parallel to it.
func (g *Grouped) Keys() []uint64 {
	return append([]uint64(nil), g.keys...)
}

// Selection returns group i's row bitmap (the query filter intersected
// with key equality).
func (g *Grouped) Selection(i int) *Bitmap { return g.sels[i] }

// Count returns each group's row count.
func (g *Grouped) Count() []uint64 {
	out := make([]uint64, len(g.keys))
	for i, sel := range g.sels {
		out[i] = uint64(sel.Count())
	}
	return out
}

// Sum aggregates SUM of the named column per group.
func (g *Grouped) Sum(column string) []uint64 {
	col := g.q.col(column)
	out := make([]uint64, len(g.keys))
	for i, sel := range g.sels {
		out[i] = col.Sum(sel, g.q.execs...)
	}
	return out
}

// Min aggregates MIN of the named column per group. Every group is
// non-empty by construction, so no ok flags are needed.
func (g *Grouped) Min(column string) []uint64 {
	return g.each(column, (*Column).Min)
}

// Max aggregates MAX of the named column per group.
func (g *Grouped) Max(column string) []uint64 {
	return g.each(column, (*Column).Max)
}

// Median aggregates the lower MEDIAN of the named column per group.
func (g *Grouped) Median(column string) []uint64 {
	return g.each(column, (*Column).Median)
}

// Avg aggregates AVG of the named column per group.
func (g *Grouped) Avg(column string) []float64 {
	col := g.q.col(column)
	out := make([]float64, len(g.keys))
	for i, sel := range g.sels {
		v, _ := col.Avg(sel, g.q.execs...)
		out[i] = v
	}
	return out
}

func (g *Grouped) each(column string, agg func(*Column, *Bitmap, ...ExecOption) (uint64, bool)) []uint64 {
	col := g.q.col(column)
	out := make([]uint64, len(g.keys))
	for i, sel := range g.sels {
		v, ok := agg(col, sel, g.q.execs...)
		if !ok {
			panic("bpagg: empty group selection — grouping invariant violated")
		}
		out[i] = v
	}
	return out
}
