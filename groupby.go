package bpagg

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/parallel"
)

// Grouped is a query partitioned by the distinct values of a grouping
// column. Following the paper's wide-table approach (§III, [11], [12]),
// grouping columns are materialized and dictionary-encoded, so GROUP BY
// reduces to refining the query's filter into one selection bitmap per
// distinct group value.
//
// Two execution strategies produce that partition (DESIGN.md §12):
//
//   - Single-pass: each 64-value segment is visited once, and the
//     grouping column's bit-tree is descended to split the segment's
//     filter word across all group keys simultaneously, discovering
//     keys as a side effect. One traversal of the packed column serves
//     every group; banked aggregate kernels then answer SUM/MIN/MAX for
//     all groups in one traversal of the measure column too.
//   - Legacy per-group: repeated MIN walks the distinct values in
//     ascending order, one BIT-PARALLEL-EQUAL scan per key intersected
//     with the filter. Each step needs only the equality scan of the
//     freshly found key — since that key is the minimum of the
//     residual, removing its rows (AndNot) leaves exactly the
//     strictly-greater residual the next step needs, so discovery costs
//     G scans for G groups, not 2G.
//
// GroupBy picks single-pass when the query qualifies (same spirit as
// the Query.Fused gate: no user bitmap, no NULLs on the grouping
// column, bit-parallel 64-bit execution, cardinality within
// MaxSinglePassGroups) and falls back to the legacy walk otherwise.
// Results are bit-identical either way. Grouping suits low-cardinality
// columns (dictionary codes, flags, dates at coarse granularity) — the
// same regime the paper's materialization argument assumes.
type Grouped struct {
	q          *Query
	keys       []uint64
	sels       []*Bitmap
	singlePass bool
}

// MaxSinglePassGroups is the group-cardinality ceiling of the
// single-pass partition path; queries grouping columns with more
// distinct values fall back to the legacy per-group walk.
const MaxSinglePassGroups = core.MaxGroups

// ErrGroupCardinality reports that a single-pass GROUP BY partition
// discovered more distinct keys than MaxSinglePassGroups. Inside the
// engine it is a fallback signal (GroupBy silently reruns the legacy
// per-group walk), so it normally never escapes; it is exported so
// callers that drive the partition kernels directly — and serving-layer
// error→status mappings — can classify it with errors.Is. The sentinel
// is wrap-stable: errors.Is matches it through any fmt.Errorf("%w")
// chain (pinned by the error-contract table test).
var ErrGroupCardinality = core.ErrGroupCardinality

// SinglePass reports whether this partition was built by the
// single-pass engine (EXPLAIN support). Banked per-group aggregate
// kernels are only available on single-pass partitions.
func (g *Grouped) SinglePass() bool { return g.singlePass }

// groupSinglePass attempts the single-pass partition. ok is false when
// the query does not qualify (pre-materialized or user-supplied
// selection, NULLs on the grouping column, wide words, non-bit-parallel
// access, or cardinality past MaxSinglePassGroups) — the caller then
// runs the legacy walk. A returned error is a real execution failure
// (cancellation, worker panic), never a fallback signal.
func (q *Query) groupSinglePass(ctx context.Context, col *Column) (*Grouped, bool, error) {
	if q.sel != nil || col.nulls != nil {
		return nil, false, nil
	}
	o := execOptions(q.execs)
	if o.access != BitParallel || o.par.Wide {
		return nil, false, nil
	}
	base := q.Selection()
	var (
		keys []uint64
		bs   []*bitvec.Bitmap
		err  error
	)
	if col.layout == VBP {
		keys, bs, err = parallel.VBPGroupPartitionCtx(ctx, col.v, base.b, o.par)
	} else {
		keys, bs, err = parallel.HBPGroupPartitionCtx(ctx, col.h, base.b, o.par)
	}
	if err != nil {
		if errors.Is(err, core.ErrGroupCardinality) {
			return nil, false, nil
		}
		return nil, false, wrapExecErr(err)
	}
	g := &Grouped{q: q, keys: keys, singlePass: true}
	g.sels = make([]*Bitmap, len(bs))
	for i, b := range bs {
		g.sels[i] = &Bitmap{b: b}
	}
	return g, true, nil
}

// GroupBy partitions the query's current selection by the named column's
// distinct values.
func (q *Query) GroupBy(column string) *Grouped {
	col := q.t.cols[column]
	if col == nil {
		panic(fmt.Sprintf("bpagg: unknown column %q", column))
	}
	g, ok, err := q.groupSinglePass(context.Background(), col)
	fusedMust(err)
	if ok {
		return g
	}
	g = &Grouped{q: q}
	base := q.Selection()
	rest := base.Clone()
	for {
		v, ok := col.Min(rest, q.execs...)
		if !ok {
			break
		}
		eq := col.ScanStats(Equal(v), q.stats)
		g.keys = append(g.keys, v)
		g.sels = append(g.sels, base.Clone().And(eq))
		rest.AndNot(eq)
	}
	return g
}

// Len returns the number of groups.
func (g *Grouped) Len() int { return len(g.keys) }

// Keys returns the distinct group values in ascending order. All per-group
// result slices below are parallel to it.
func (g *Grouped) Keys() []uint64 {
	return append([]uint64(nil), g.keys...)
}

// Selection returns group i's row bitmap (the query filter intersected
// with key equality).
func (g *Grouped) Selection(i int) *Bitmap { return g.sels[i] }

// banked reports whether a per-group aggregate over col can run the
// banked single-pass kernels, and resolves the execution options if so.
// The gate mirrors groupSinglePass's per-column conditions: the
// partition itself must be single-pass, the measure column NULL-free,
// and execution bit-parallel with 64-bit words.
func (g *Grouped) banked(col *Column) (execConfig, bool) {
	if !g.singlePass || col.nulls != nil {
		return execConfig{}, false
	}
	o := execOptions(g.q.execs)
	if o.access != BitParallel || o.par.Wide {
		return execConfig{}, false
	}
	return o, true
}

// rawSels unwraps the group selections for the internal drivers.
func (g *Grouped) rawSels() []*bitvec.Bitmap {
	bs := make([]*bitvec.Bitmap, len(g.sels))
	for i, s := range g.sels {
		bs[i] = s.b
	}
	return bs
}

// bankedSum runs the single-pass grouped SUM over all groups at once.
// The kernels accumulate 128 bits per group; any hi != 0 surfaces as an
// *OverflowError, honoring the same overflow contract as Column.Sum.
func (g *Grouped) bankedSum(ctx context.Context, col *Column, o execConfig) ([]uint64, error) {
	var his, los []uint64
	var err error
	if col.layout == VBP {
		his, los, err = parallel.VBPGroupSumCtx(ctx, col.v, g.rawSels(), o.par)
	} else {
		his, los, err = parallel.HBPGroupSumCtx(ctx, col.h, g.rawSels(), o.par)
	}
	if err != nil {
		return nil, wrapExecErr(err)
	}
	for i, hi := range his {
		if hi != 0 {
			return nil, &OverflowError{Hi: hi, Lo: los[i]}
		}
	}
	return los, nil
}

// bankedExtreme runs the single-pass grouped MIN/MAX over all groups at
// once. anys[i] is false only if group i's selection is empty, which
// the partition invariant rules out.
func (g *Grouped) bankedExtreme(ctx context.Context, col *Column, o execConfig, wantMin bool) ([]uint64, []bool, error) {
	var vals []uint64
	var anys []bool
	var err error
	if col.layout == VBP {
		vals, anys, err = parallel.VBPGroupExtremeCtx(ctx, col.v, g.rawSels(), wantMin, o.par)
	} else {
		vals, anys, err = parallel.HBPGroupExtremeCtx(ctx, col.h, g.rawSels(), wantMin, o.par)
	}
	if err != nil {
		return nil, nil, wrapExecErr(err)
	}
	return vals, anys, nil
}

// Count returns each group's row count. The popcounts are recorded into
// the query's stats collector as one aggregate per group, matching the
// other per-group aggregates.
func (g *Grouped) Count() []uint64 {
	start := time.Now()
	out := make([]uint64, len(g.keys))
	for i, sel := range g.sels {
		out[i] = uint64(sel.Count())
	}
	g.q.stats.Record(ExecStats{
		Aggregates: uint64(len(g.sels)),
		AggNanos:   time.Since(start).Nanoseconds(),
	})
	return out
}

// Sum aggregates SUM of the named column per group: banked single-pass
// over the measure column when the partition and column qualify, one
// Column.Sum per group otherwise. Either path panics with an
// *OverflowError when a group's sum exceeds uint64 (use SumContext to
// receive it as an error).
func (g *Grouped) Sum(column string) []uint64 {
	col := g.q.col(column)
	if o, ok := g.banked(col); ok {
		out, err := g.bankedSum(context.Background(), col, o)
		fusedMust(err)
		return out
	}
	out := make([]uint64, len(g.keys))
	for i, sel := range g.sels {
		out[i] = col.Sum(sel, g.q.execs...)
	}
	return out
}

// Min aggregates MIN of the named column per group. Every group is
// non-empty by construction, so no ok flags are needed.
func (g *Grouped) Min(column string) []uint64 {
	return g.extreme(column, true)
}

// Max aggregates MAX of the named column per group.
func (g *Grouped) Max(column string) []uint64 {
	return g.extreme(column, false)
}

func (g *Grouped) extreme(column string, wantMin bool) []uint64 {
	col := g.q.col(column)
	if o, ok := g.banked(col); ok {
		vals, anys, err := g.bankedExtreme(context.Background(), col, o, wantMin)
		fusedMust(err)
		for _, any := range anys {
			if !any {
				panic("bpagg: empty group selection — grouping invariant violated")
			}
		}
		return vals
	}
	if wantMin {
		return g.each(column, (*Column).Min)
	}
	return g.each(column, (*Column).Max)
}

// Median aggregates the lower MEDIAN of the named column per group.
func (g *Grouped) Median(column string) []uint64 {
	return g.each(column, (*Column).Median)
}

// Avg aggregates AVG of the named column per group. Like Sum, a group
// whose running sum exceeds uint64 panics with an *OverflowError (use
// AvgContext to receive it as an error).
func (g *Grouped) Avg(column string) []float64 {
	col := g.q.col(column)
	if o, ok := g.banked(col); ok {
		out, err := g.bankedAvg(context.Background(), col, o)
		fusedMust(err)
		return out
	}
	out := make([]float64, len(g.keys))
	for i, sel := range g.sels {
		v, _ := col.Avg(sel, g.q.execs...)
		out[i] = v
	}
	return out
}

// bankedAvg divides the banked sums by the group counts; with NULL-free
// columns (a banked-gate precondition) the divisor is exactly the
// group's row count, so the quotient is bit-identical to the per-group
// path's.
func (g *Grouped) bankedAvg(ctx context.Context, col *Column, o execConfig) ([]float64, error) {
	sums, err := g.bankedSum(ctx, col, o)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sums))
	for i, s := range sums {
		if cnt := g.sels[i].Count(); cnt > 0 {
			out[i] = float64(s) / float64(cnt)
		}
	}
	return out, nil
}

func (g *Grouped) each(column string, agg func(*Column, *Bitmap, ...ExecOption) (uint64, bool)) []uint64 {
	col := g.q.col(column)
	out := make([]uint64, len(g.keys))
	for i, sel := range g.sels {
		v, ok := agg(col, sel, g.q.execs...)
		if !ok {
			panic("bpagg: empty group selection — grouping invariant violated")
		}
		out[i] = v
	}
	return out
}
