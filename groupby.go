package bpagg

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/parallel"
)

// Grouped is a query partitioned by the distinct values of one or more
// grouping columns. Following the paper's wide-table approach (§III,
// [11], [12]), grouping columns are materialized and dictionary-encoded,
// so GROUP BY reduces to refining the query's filter into one selection
// per distinct group key. Multi-column keys pack each column's code into
// one uint64 composite (first column in the high bits), so the columns'
// combined width must fit 64 bits.
//
// Three execution strategies produce that partition (DESIGN.md §12):
//
//   - Direct (single column, key width ≤ core.DirectKeyBits): each
//     64-value segment is visited once and the grouping column's
//     bit-tree is descended to split the segment's filter word across
//     all group keys simultaneously, banking into a direct-mapped dense
//     bank. One traversal serves every group; banked aggregate kernels
//     then answer SUM/MIN/MAX for all groups in one traversal of the
//     measure column too.
//   - Hash (wider or composite keys, up to MaxSinglePassGroups keys):
//     the same one-traversal partition, banking into per-worker
//     open-addressing hash tables with sparse per-key (segment, word)
//     runs, merged by sorted key order. Selections stay sparse — counts
//     and the banked aggregates come straight off the merged run list,
//     and a dense bitmap is materialized per group only on demand.
//   - Legacy per-group: repeated MIN walks the distinct values in
//     ascending order, one BIT-PARALLEL-EQUAL scan per key intersected
//     with the filter (nested per column for composite keys). Each step
//     needs only the equality scan of the freshly found key — since that
//     key is the minimum of the residual, removing its rows (AndNot)
//     leaves exactly the strictly-greater residual the next step needs,
//     so discovery costs G scans for G groups, not 2G.
//
// GroupBy picks the strategy at plan time: direct or hash when the query
// qualifies (same spirit as the Query.Fused gate: no user bitmap, no
// NULLs on the grouping columns, bit-parallel 64-bit execution), legacy
// otherwise or past MaxSinglePassGroups discovered keys. Results are
// bit-identical across strategies and thread counts.
type Grouped struct {
	q        *Query
	cols     []*Column
	widths   []int
	keys     []uint64
	sels     []*Bitmap // dense selections (direct + legacy); nil for hash
	counts   []uint64  // per-group row counts (hash); nil otherwise
	hp       *parallel.HashPartition
	strategy GroupStrategy
}

// GroupStrategy identifies which partition strategy built a Grouped.
type GroupStrategy int

const (
	// GroupLegacy is the per-group MIN+equality walk.
	GroupLegacy GroupStrategy = iota
	// GroupDirect is the single-pass direct-mapped bank (key width ≤
	// core.DirectKeyBits).
	GroupDirect
	// GroupHash is the single-pass hash-banked tier.
	GroupHash
)

// String returns "legacy", "direct" or "hash".
func (s GroupStrategy) String() string {
	switch s {
	case GroupDirect:
		return "direct"
	case GroupHash:
		return "hash"
	default:
		return "legacy"
	}
}

// MaxSinglePassGroups is the group-cardinality ceiling of the
// single-pass partition path (the hash tier's key budget); queries
// grouping columns with more distinct values fall back to the legacy
// per-group walk.
const MaxSinglePassGroups = core.MaxHashGroups

// maxHashGroups is the hash tier's runtime key budget. It equals
// MaxSinglePassGroups except in tests that lower it to exercise the
// legacy fallback without building 2^20 distinct keys.
var maxHashGroups = core.MaxHashGroups

// ErrGroupCardinality reports that a single-pass GROUP BY partition
// discovered more distinct keys than MaxSinglePassGroups. Inside the
// engine it is a fallback signal (GroupBy silently reruns the legacy
// per-group walk), so it normally never escapes; it is exported so
// callers that drive the partition kernels directly — and serving-layer
// error→status mappings — can classify it with errors.Is. The sentinel
// is wrap-stable: errors.Is matches it through any fmt.Errorf("%w")
// chain (pinned by the error-contract table test).
var ErrGroupCardinality = core.ErrGroupCardinality

// SinglePass reports whether this partition was built by the
// single-pass engine (EXPLAIN support). Banked per-group aggregate
// kernels are only available on single-pass partitions.
func (g *Grouped) SinglePass() bool { return g.strategy != GroupLegacy }

// Strategy reports which partition strategy built this Grouped
// (EXPLAIN ANALYZE support).
func (g *Grouped) Strategy() GroupStrategy { return g.strategy }

// groupSinglePass attempts the single-pass partition (direct or hash
// tier). ok is false when the query does not qualify (pre-materialized
// or user-supplied selection, NULLs on a grouping column, wide words,
// non-bit-parallel access, or cardinality past the tier budget) — the
// caller then runs the legacy walk. A returned error is a real execution
// failure (cancellation, worker panic), never a fallback signal.
func (q *Query) groupSinglePass(ctx context.Context, cols []*Column, widths []int) (*Grouped, bool, error) {
	if q.sel != nil {
		return nil, false, nil
	}
	for _, col := range cols {
		if col.nulls != nil {
			return nil, false, nil
		}
	}
	o := execOptions(q.execs)
	if o.access != BitParallel || o.par.Wide {
		return nil, false, nil
	}
	base := q.Selection()

	if len(cols) == 1 && cols[0].k <= core.DirectKeyBits {
		col := cols[0]
		var (
			keys []uint64
			bs   []*bitvec.Bitmap
			err  error
		)
		if col.layout == VBP {
			keys, bs, err = parallel.VBPGroupPartitionCtx(ctx, col.v, base.b, o.par)
		} else {
			keys, bs, err = parallel.HBPGroupPartitionCtx(ctx, col.h, base.b, o.par)
		}
		if err != nil {
			if errors.Is(err, core.ErrGroupCardinality) {
				return nil, false, nil
			}
			return nil, false, wrapExecErr(err)
		}
		g := &Grouped{q: q, cols: cols, widths: widths, keys: keys, strategy: GroupDirect}
		g.sels = make([]*Bitmap, len(bs))
		for i, b := range bs {
			g.sels[i] = &Bitmap{b: b}
		}
		return g, true, nil
	}

	gcols := make([]parallel.GroupCol, len(cols))
	for i, col := range cols {
		if col.layout == VBP {
			gcols[i] = parallel.GroupCol{V: col.v}
		} else {
			gcols[i] = parallel.GroupCol{H: col.h}
		}
	}
	hp, err := parallel.HashGroupPartitionCtx(ctx, gcols, base.b, cols[0].Len(), maxHashGroups, o.par)
	if err != nil {
		if errors.Is(err, core.ErrGroupCardinality) {
			return nil, false, nil
		}
		return nil, false, wrapExecErr(err)
	}
	return &Grouped{
		q: q, cols: cols, widths: widths,
		keys: hp.Keys, counts: hp.Counts, hp: hp,
		strategy: GroupHash,
	}, true, nil
}

// groupByCols is the strategy selector shared by GroupBy and
// GroupByContext: composite width check, single-pass attempt (direct or
// hash tier), legacy walk fallback.
func (q *Query) groupByCols(ctx context.Context, cols []*Column) (*Grouped, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("bpagg: GROUP BY needs at least one column")
	}
	widths := make([]int, len(cols))
	total := 0
	for i, col := range cols {
		widths[i] = col.k
		total += col.k
	}
	if total > 64 {
		return nil, fmt.Errorf("bpagg: composite group key is %d bits wide — keys must pack into 64 bits", total)
	}
	if g, ok, err := q.groupSinglePass(ctx, cols, widths); err != nil {
		return nil, err
	} else if ok {
		return g, nil
	}
	return q.legacyGroupWalk(ctx, cols, widths)
}

// legacyGroupWalk runs the per-group MIN+equality walk, nesting one walk
// per grouping column for composite keys: each discovered value of
// column j refines its parent group's selection before recursing on
// column j+1, so keys come out in ascending packed order. Rows NULL in
// any grouping column never match an equality scan and drop out, the
// same semantics as the single-pass tiers' NULL gate.
func (q *Query) legacyGroupWalk(ctx context.Context, cols []*Column, widths []int) (*Grouped, error) {
	g := &Grouped{q: q, cols: cols, widths: widths, strategy: GroupLegacy}
	var walk func(sel *Bitmap, depth int, prefix uint64) error
	walk = func(sel *Bitmap, depth int, prefix uint64) error {
		col := cols[depth]
		rest := sel.Clone()
		for {
			v, ok, err := col.MinContext(ctx, rest, q.execs...)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			eq := col.ScanStats(Equal(v), q.stats)
			sub := sel.Clone().And(eq)
			key := prefix<<uint(widths[depth]) | v
			if depth == len(cols)-1 {
				g.keys = append(g.keys, key)
				g.sels = append(g.sels, sub)
			} else if err := walk(sub, depth+1, key); err != nil {
				return err
			}
			rest.AndNot(eq)
		}
	}
	if err := walk(q.Selection(), 0, 0); err != nil {
		return nil, err
	}
	return g, nil
}

// GroupBy partitions the query's current selection by the distinct
// values of the named columns. With several columns the group key is the
// packed composite of the columns' codes (see Keys/KeyParts); the
// combined key width must fit 64 bits.
func (q *Query) GroupBy(columns ...string) *Grouped {
	cols := make([]*Column, len(columns))
	for i, column := range columns {
		col := q.t.cols[column]
		if col == nil {
			panic(fmt.Sprintf("bpagg: unknown column %q", column))
		}
		cols[i] = col
	}
	g, err := q.groupByCols(context.Background(), cols)
	fusedMust(err)
	return g
}

// Len returns the number of groups.
func (g *Grouped) Len() int { return len(g.keys) }

// Keys returns the distinct group keys in ascending order. With one
// grouping column a key is the column's code; with several it is the
// packed composite (first column in the high bits). All per-group result
// slices below are parallel to it.
func (g *Grouped) Keys() []uint64 {
	return append([]uint64(nil), g.keys...)
}

// KeyParts unpacks group i's key into one code per grouping column.
func (g *Grouped) KeyParts(i int) []uint64 {
	parts := make([]uint64, len(g.widths))
	key := g.keys[i]
	for j := len(g.widths) - 1; j >= 0; j-- {
		w := uint(g.widths[j])
		parts[j] = key & (1<<w - 1)
		key >>= w
	}
	return parts
}

// Selection returns group i's row bitmap (the query filter intersected
// with key equality). The hash tier keeps selections sparse, so there it
// materializes a fresh bitmap per call; prefer the bulk aggregates,
// which never materialize.
func (g *Grouped) Selection(i int) *Bitmap {
	if g.sels != nil {
		return g.sels[i]
	}
	return &Bitmap{b: g.hp.Materialize(i)}
}

// groupCount returns group i's row count without materializing the hash
// tier's selection.
func (g *Grouped) groupCount(i int) uint64 {
	if g.counts != nil {
		return g.counts[i]
	}
	return uint64(g.sels[i].Count())
}

// banked reports whether a per-group aggregate over col can run the
// banked single-pass kernels, and resolves the execution options if so.
// The gate mirrors groupSinglePass's per-column conditions: the
// partition itself must be single-pass, the measure column NULL-free,
// and execution bit-parallel with 64-bit words.
func (g *Grouped) banked(col *Column) (execConfig, bool) {
	if !g.SinglePass() || col.nulls != nil {
		return execConfig{}, false
	}
	o := execOptions(g.q.execs)
	if o.access != BitParallel || o.par.Wide {
		return execConfig{}, false
	}
	return o, true
}

// rawSels unwraps the group selections for the internal drivers (direct
// tier only).
func (g *Grouped) rawSels() []*bitvec.Bitmap {
	bs := make([]*bitvec.Bitmap, len(g.sels))
	for i, s := range g.sels {
		bs[i] = s.b
	}
	return bs
}

// measureGroupCol wraps a measure column for the hash drivers.
func measureGroupCol(col *Column) parallel.GroupCol {
	if col.layout == VBP {
		return parallel.GroupCol{V: col.v}
	}
	return parallel.GroupCol{H: col.h}
}

// bankedSum runs the single-pass grouped SUM over all groups at once.
// The kernels accumulate 128 bits per group; any hi != 0 surfaces as an
// *OverflowError carrying the offending group's key, honoring the same
// overflow contract as Column.Sum.
func (g *Grouped) bankedSum(ctx context.Context, col *Column, o execConfig) ([]uint64, error) {
	var his, los []uint64
	var err error
	switch {
	case g.hp != nil:
		his, los, err = parallel.HashGroupSumCtx(ctx, measureGroupCol(col), g.hp, o.par)
	case col.layout == VBP:
		his, los, err = parallel.VBPGroupSumCtx(ctx, col.v, g.rawSels(), o.par)
	default:
		his, los, err = parallel.HBPGroupSumCtx(ctx, col.h, g.rawSels(), o.par)
	}
	if err != nil {
		return nil, wrapExecErr(err)
	}
	for i, hi := range his {
		if hi != 0 {
			return nil, &OverflowError{Hi: hi, Lo: los[i], Group: g.KeyParts(i)}
		}
	}
	return los, nil
}

// bankedExtreme runs the single-pass grouped MIN/MAX over all groups at
// once. anys[i] is false only if group i's selection is empty, which
// the partition invariant rules out.
func (g *Grouped) bankedExtreme(ctx context.Context, col *Column, o execConfig, wantMin bool) ([]uint64, []bool, error) {
	var vals []uint64
	var anys []bool
	var err error
	switch {
	case g.hp != nil:
		vals, anys, err = parallel.HashGroupExtremeCtx(ctx, measureGroupCol(col), g.hp, wantMin, o.par)
	case col.layout == VBP:
		vals, anys, err = parallel.VBPGroupExtremeCtx(ctx, col.v, g.rawSels(), wantMin, o.par)
	default:
		vals, anys, err = parallel.HBPGroupExtremeCtx(ctx, col.h, g.rawSels(), wantMin, o.par)
	}
	if err != nil {
		return nil, nil, wrapExecErr(err)
	}
	return vals, anys, nil
}

// Count returns each group's row count. The counts are recorded into
// the query's stats collector as one aggregate per group, matching the
// other per-group aggregates; the hash tier serves them from the counts
// tallied during partitioning.
func (g *Grouped) Count() []uint64 {
	start := time.Now()
	out := make([]uint64, len(g.keys))
	for i := range g.keys {
		out[i] = g.groupCount(i)
	}
	g.q.stats.Record(ExecStats{
		Aggregates: uint64(len(g.keys)),
		AggNanos:   time.Since(start).Nanoseconds(),
	})
	return out
}

// decorateOverflow attaches group i's key to an *OverflowError bubbling
// out of a per-group aggregate, so the grouped overflow contract (the
// error names the offending group) holds on every path.
func (g *Grouped) decorateOverflow(err error, i int) error {
	var ov *OverflowError
	if errors.As(err, &ov) && ov.Group == nil {
		ov.Group = g.KeyParts(i)
	}
	return err
}

// Sum aggregates SUM of the named column per group: banked single-pass
// over the measure column when the partition and column qualify, one
// Column.Sum per group otherwise. Either path panics with an
// *OverflowError naming the offending group when a group's sum exceeds
// uint64 (use SumContext to receive it as an error).
func (g *Grouped) Sum(column string) []uint64 {
	col := g.q.col(column)
	if o, ok := g.banked(col); ok {
		out, err := g.bankedSum(context.Background(), col, o)
		fusedMust(err)
		return out
	}
	out := make([]uint64, len(g.keys))
	for i := range g.keys {
		v, err := col.SumContext(context.Background(), g.Selection(i), g.q.execs...)
		fusedMust(g.decorateOverflow(err, i))
		out[i] = v
	}
	return out
}

// Min aggregates MIN of the named column per group. Every group is
// non-empty by construction, so no ok flags are needed.
func (g *Grouped) Min(column string) []uint64 {
	return g.extreme(column, true)
}

// Max aggregates MAX of the named column per group.
func (g *Grouped) Max(column string) []uint64 {
	return g.extreme(column, false)
}

func (g *Grouped) extreme(column string, wantMin bool) []uint64 {
	col := g.q.col(column)
	if o, ok := g.banked(col); ok {
		vals, anys, err := g.bankedExtreme(context.Background(), col, o, wantMin)
		fusedMust(err)
		for _, any := range anys {
			if !any {
				panic("bpagg: empty group selection — grouping invariant violated")
			}
		}
		return vals
	}
	if wantMin {
		return g.each(column, (*Column).Min)
	}
	return g.each(column, (*Column).Max)
}

// Median aggregates the lower MEDIAN of the named column per group.
func (g *Grouped) Median(column string) []uint64 {
	return g.each(column, (*Column).Median)
}

// Avg aggregates AVG of the named column per group. Like Sum, a group
// whose running sum exceeds uint64 panics with an *OverflowError (use
// AvgContext to receive it as an error).
func (g *Grouped) Avg(column string) []float64 {
	col := g.q.col(column)
	if o, ok := g.banked(col); ok {
		out, err := g.bankedAvg(context.Background(), col, o)
		fusedMust(err)
		return out
	}
	out := make([]float64, len(g.keys))
	for i := range g.keys {
		v, _ := col.Avg(g.Selection(i), g.q.execs...)
		out[i] = v
	}
	return out
}

// bankedAvg divides the banked sums by the group counts; with NULL-free
// columns (a banked-gate precondition) the divisor is exactly the
// group's row count, so the quotient is bit-identical to the per-group
// path's.
func (g *Grouped) bankedAvg(ctx context.Context, col *Column, o execConfig) ([]float64, error) {
	sums, err := g.bankedSum(ctx, col, o)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sums))
	for i, s := range sums {
		if cnt := g.groupCount(i); cnt > 0 {
			out[i] = float64(s) / float64(cnt)
		}
	}
	return out, nil
}

func (g *Grouped) each(column string, agg func(*Column, *Bitmap, ...ExecOption) (uint64, bool)) []uint64 {
	col := g.q.col(column)
	out := make([]uint64, len(g.keys))
	for i := range g.keys {
		v, ok := agg(col, g.Selection(i), g.q.execs...)
		if !ok {
			panic("bpagg: empty group selection — grouping invariant violated")
		}
		out[i] = v
	}
	return out
}
