package bpagg

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNullBasics(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		col := NewColumn(layout, 8)
		col.Append(10, 20)
		col.AppendNull()
		col.Append(30)
		col.AppendNull()
		if col.Len() != 5 {
			t.Fatalf("%v: Len = %d", layout, col.Len())
		}
		if col.NullCount() != 2 {
			t.Fatalf("%v: NullCount = %d", layout, col.NullCount())
		}
		for i, want := range []bool{false, false, true, false, true} {
			if col.IsNull(i) != want {
				t.Fatalf("%v: IsNull(%d) = %v", layout, i, !want)
			}
		}
	}
}

func TestNullScanAndAggregateSemantics(t *testing.T) {
	for _, layout := range []Layout{VBP, HBP} {
		col := NewColumn(layout, 8)
		col.Append(5)
		col.AppendNull() // placeholder code 0 must not match anything
		col.Append(0)    // a real zero must still match
		col.Append(200)

		// NULL never satisfies a predicate — including = 0 and < anything.
		if sel := col.Scan(LessEq(255)); sel.Count() != 3 {
			t.Fatalf("%v: full-range scan selected %d rows, want 3", layout, sel.Count())
		}
		zero := col.Scan(Equal(0))
		if zero.Count() != 1 || !zero.Get(2) || zero.Get(1) {
			t.Fatalf("%v: Equal(0) selected wrong rows: %s", layout, "")
		}

		all := col.All()
		// COUNT(column) skips NULL; COUNT(*) does not.
		if got := col.Count(all); got != 3 {
			t.Fatalf("%v: Count = %d, want 3", layout, got)
		}
		if all.Count() != 4 {
			t.Fatalf("%v: COUNT(*) = %d, want 4", layout, all.Count())
		}
		if got := col.Sum(all); got != 205 {
			t.Fatalf("%v: Sum = %d, want 205", layout, got)
		}
		if got, ok := col.Min(all); !ok || got != 0 {
			t.Fatalf("%v: Min = (%d,%v), want 0", layout, got, ok)
		}
		if got, ok := col.Max(all); !ok || got != 200 {
			t.Fatalf("%v: Max = (%d,%v), want 200", layout, got, ok)
		}
		// Median of {0, 5, 200} = 5.
		if got, ok := col.Median(all); !ok || got != 5 {
			t.Fatalf("%v: Median = (%d,%v), want 5", layout, got, ok)
		}
		if got, ok := col.Avg(all); !ok || got != 205.0/3 {
			t.Fatalf("%v: Avg = (%v,%v)", layout, got, ok)
		}
	}
}

func TestAllNullColumn(t *testing.T) {
	col := NewColumn(VBP, 8)
	col.AppendNull()
	col.AppendNull()
	all := col.All()
	if got := col.Count(all); got != 0 {
		t.Fatalf("Count over all-NULL = %d", got)
	}
	if got := col.Sum(all); got != 0 {
		t.Fatalf("Sum over all-NULL = %d", got)
	}
	if _, ok := col.Min(all); ok {
		t.Fatal("Min over all-NULL should report !ok")
	}
	if _, ok := col.Median(all); ok {
		t.Fatal("Median over all-NULL should report !ok")
	}
	if _, ok := col.Avg(all); ok {
		t.Fatal("Avg over all-NULL should report !ok")
	}
	if sel := col.Scan(GreaterEq(0)); sel.Count() != 0 {
		t.Fatal("scan over all-NULL selected rows")
	}
}

func TestNullsInterleavedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for _, layout := range []Layout{VBP, HBP} {
		col := NewColumn(layout, 10)
		var present []uint64
		const n = 2000
		isNull := make([]bool, n)
		vals := make([]uint64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				col.AppendNull()
				isNull[i] = true
				continue
			}
			v := uint64(rng.Intn(1 << 10))
			col.Append(v)
			vals[i] = v
			present = append(present, v)
		}
		cut := uint64(512)
		sel := col.Scan(Less(cut))
		var kept []uint64
		for i := 0; i < n; i++ {
			want := !isNull[i] && vals[i] < cut
			if sel.Get(i) != want {
				t.Fatalf("%v: row %d selection = %v, want %v", layout, i, sel.Get(i), want)
			}
			if want {
				kept = append(kept, vals[i])
			}
		}
		var wantSum uint64
		for _, v := range kept {
			wantSum += v
		}
		if got := col.Sum(sel); got != wantSum {
			t.Fatalf("%v: Sum = %d, want %d", layout, got, wantSum)
		}
		sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
		if len(kept) > 0 {
			med, ok := col.Median(sel)
			if !ok || med != kept[(len(kept)+1)/2-1] {
				t.Fatalf("%v: Median = (%d,%v)", layout, med, ok)
			}
		}
		// Rank walks the full distribution of non-NULL values.
		allPresent := append([]uint64(nil), present...)
		sort.Slice(allPresent, func(i, j int) bool { return allPresent[i] < allPresent[j] })
		all := col.All()
		for _, r := range []uint64{1, uint64(len(allPresent) / 2), uint64(len(allPresent))} {
			if got, ok := col.Rank(all, r); !ok || got != allPresent[r-1] {
				t.Fatalf("%v: Rank(%d) = (%d,%v), want %d", layout, r, got, ok, allPresent[r-1])
			}
		}
	}
}

func TestNullAfterAppendKeepsAlignment(t *testing.T) {
	// Appending non-NULL values after the first NULL must extend the
	// validity bitmap.
	col := NewColumn(HBP, 8)
	col.AppendNull()
	col.Append(make([]uint64, 200)...) // 200 zeros, all valid
	if col.NullCount() != 1 {
		t.Fatalf("NullCount = %d", col.NullCount())
	}
	if got := col.Count(col.All()); got != 200 {
		t.Fatalf("Count = %d, want 200", got)
	}
	if sel := col.Scan(Equal(0)); sel.Count() != 200 {
		t.Fatalf("Equal(0) = %d, want 200", sel.Count())
	}
}
