package bpagg_test

import (
	"fmt"
	"testing"

	"bpagg/internal/oracle/diff"
)

// TestShardedOracleSweep is the sharded arm of the differential gate:
// every generated adversarial case runs through the partitioned store at
// shard sizes derived per case — one shard, a two-way split, a seven-way
// split, and a fixed odd size that leaves a non-divisible tail — across
// {split, reloaded} store states and {1, 8} threads, against the same
// naive oracle the flat engine answers to. Sharding is a physical layout
// choice; any detectable difference from the flat engine's answers is a
// bug.
func TestShardedOracleSweep(t *testing.T) {
	for _, c := range diff.Cases(diff.GenConfig{Seed: 1}) {
		c := c
		for _, shardRows := range diff.ShardSizes(&c) {
			shardRows := shardRows
			t.Run(fmt.Sprintf("%s/shard%d", c.Name, shardRows), func(t *testing.T) {
				t.Parallel()
				if err := diff.CheckSharded(c, shardRows); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
