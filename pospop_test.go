package bpagg

import (
	"testing"

	"bpagg/internal/core"
)

// End-to-end guards for the carry-save kernel layer: the PosPopEnabled
// toggle and the WideWords option must both be invisible — same answers,
// and (narrow vs wide fused) the same ExecStats, since the counters are
// analytic (DESIGN.md §8) and both widths consume the same fused windows.

type fusedResults struct {
	rows, sum, cnt uint64
	mn, mx, md     uint64
	okN, okX, okD  bool
}

func runFusedSuite(t *testing.T, tbl *Table, rec *StatsCollector, opts ...ExecOption) fusedResults {
	t.Helper()
	// Both predicate columns and the aggregate column are VBP, so the
	// window geometry agrees and the planner fuses.
	q := func() *Query {
		q := tbl.Query().Where("price", Less(30000)).Where("region", Equal(2))
		if rec != nil {
			q = q.WithStatsInto(rec)
		}
		return q.With(opts...)
	}
	if !q().Fused("price") {
		t.Fatal("query did not plan fused")
	}
	var r fusedResults
	r.rows = q().CountRows()
	r.sum = q().Sum("price")
	r.cnt = q().CountRows()
	r.mn, r.okN = q().Min("price")
	r.mx, r.okX = q().Max("price")
	r.md, r.okD = q().Median("price")
	return r
}

func TestFusedWideWordsMatchesNarrow(t *testing.T) {
	tbl, _, _, _ := buildOrdersTable(t, 3000)
	for _, threads := range []int{1, 4} {
		narrowRec := NewStatsCollector()
		wideRec := NewStatsCollector()
		narrow := runFusedSuite(t, tbl, narrowRec, Parallel(threads))
		wide := runFusedSuite(t, tbl, wideRec, Parallel(threads), WideWords())
		if narrow != wide {
			t.Fatalf("threads=%d: narrow fused %+v, wide fused %+v", threads, narrow, wide)
		}
		ns, ws := narrowRec.Snapshot(), wideRec.Snapshot()
		if ns.WordsTouched != ws.WordsTouched ||
			ns.SegmentsAggregated != ws.SegmentsAggregated ||
			ns.SegmentsCacheServed != ws.SegmentsCacheServed ||
			ns.WordsCompared != ws.WordsCompared ||
			ns.RadixRounds != ws.RadixRounds {
			t.Fatalf("threads=%d: fused stats differ across widths:\nnarrow %+v\nwide   %+v",
				threads, ns, ws)
		}
	}
}

func TestPosPopToggleEndToEnd(t *testing.T) {
	tbl, _, _, _ := buildOrdersTable(t, 3000)
	old := core.PosPopEnabled
	defer func() { core.PosPopEnabled = old }()
	run := func(on bool, opts ...ExecOption) fusedResults {
		core.PosPopEnabled = on
		return runFusedSuite(t, tbl, nil, opts...)
	}
	for _, opts := range [][]ExecOption{nil, {WideWords()}, {Parallel(4)}} {
		legacy := run(false, opts...)
		pospop := run(true, opts...)
		if legacy != pospop {
			t.Fatalf("opts=%d: legacy %+v, pospop %+v", len(opts), legacy, pospop)
		}
	}
}
