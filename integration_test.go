package bpagg

import (
	"math/rand"
	"testing"
)

// TestLargePipeline is a scaled integration test (skipped with -short):
// a multi-million-row wide table driven through the full public surface,
// cross-checked against plain-slice evaluation.
func TestLargePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("large integration test")
	}
	const n = 2 << 20
	rng := rand.New(rand.NewSource(161))
	price := make([]uint64, n)
	qty := make([]uint64, n)
	region := make([]uint64, n)
	for i := 0; i < n; i++ {
		price[i] = uint64(rng.Intn(1 << 20))
		qty[i] = uint64(rng.Intn(64))
		region[i] = uint64(rng.Intn(8))
	}
	tbl := NewTable()
	tbl.AddColumn("price", VBP, 20)
	tbl.AddColumn("qty", HBP, 6)
	tbl.AddColumn("region", VBP, 3)
	tbl.AppendColumnar(map[string][]uint64{"price": price, "qty": qty, "region": region})

	q := tbl.Query().
		Where("price", Less(1<<19)).
		Where("qty", GreaterEq(10)).
		With(Parallel(4), WideWords())
	var wantCount, wantSum uint64
	perRegion := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		if price[i] < 1<<19 && qty[i] >= 10 {
			wantCount++
			wantSum += qty[i]
			perRegion[region[i]] += price[i]
		}
	}
	if got := q.CountRows(); got != wantCount {
		t.Fatalf("CountRows = %d, want %d", got, wantCount)
	}
	if got := q.Sum("qty"); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	g := tbl.Query().
		Where("price", Less(1<<19)).
		Where("qty", GreaterEq(10)).
		With(Access(Auto)).
		GroupBy("region")
	sums := g.Sum("price")
	for i, key := range g.Keys() {
		if sums[i] != perRegion[key] {
			t.Fatalf("region %d sum = %d, want %d", key, sums[i], perRegion[key])
		}
	}
}
