package bpagg

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"bpagg/internal/parallel"
)

// ShardedTable is the partitioned twin of Table: the same column schema
// replicated across fixed-size horizontal shards, each shard a complete
// Table with its own per-segment zone maps and aggregate caches. A shard
// catalog keeps per-shard per-column min/max bounds, so a query fans out
// only to shards whose bounds can satisfy every predicate — shard pruning
// feeding the existing zone pruning — and merges per-shard results in
// shard order, which keeps every aggregate bit-identical to the flat
// engine at any thread count.
//
// Appends are shard-local and atomic: the whole load is validated first
// (column set, lengths, bit widths), values stage into the open tail
// shard (rolling over to fresh shards as it fills), and the store's row
// count commits last — the structural fix for the torn-table append
// hazards the flat Table used to have.
type ShardedTable struct {
	shardRows int
	specs     []shardColSpec
	index     map[string]int // column name → specs index
	shards    []*Table
	bounds    [][]shardBounds // bounds[shard][col]
	rows      int
}

// shardColSpec is the schema entry every shard's column is built from.
type shardColSpec struct {
	name   string
	layout Layout
	bits   int
	opts   []ColumnOption
}

// shardBounds is one shard-catalog cell: the min/max of a shard column's
// non-NULL values. any is false while the cell has no non-NULL value, in
// which case no scan predicate can match and the shard prunes for free.
type shardBounds struct {
	min, max uint64
	any      bool
}

// note folds v into the bounds.
func (b *shardBounds) note(v uint64) {
	if !b.any {
		b.min, b.max, b.any = v, v, true
		return
	}
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
}

// NewShardedTable returns an empty partitioned store whose shards hold at
// most shardRows rows each.
func NewShardedTable(shardRows int) *ShardedTable {
	if shardRows < 1 {
		panic(fmt.Sprintf("bpagg: shard size %d, need at least 1 row per shard", shardRows))
	}
	return &ShardedTable{shardRows: shardRows, index: make(map[string]int)}
}

// AddColumn registers a column on the schema; every current and future
// shard carries it. It panics if the name is taken or rows have already
// been appended, mirroring Table.AddColumn.
func (st *ShardedTable) AddColumn(name string, layout Layout, bitWidth int, opts ...ColumnOption) {
	if _, dup := st.index[name]; dup {
		panic(fmt.Sprintf("bpagg: duplicate column %q", name))
	}
	if st.rows != 0 {
		panic("bpagg: AddColumn after rows were appended")
	}
	// Validate the spec eagerly: NewColumn panics on bad widths/options,
	// and the probe column is thrown away.
	NewColumn(layout, bitWidth, opts...)
	st.index[name] = len(st.specs)
	st.specs = append(st.specs, shardColSpec{name: name, layout: layout, bits: bitWidth, opts: opts})
}

// Columns returns the column names in registration order.
func (st *ShardedTable) Columns() []string {
	names := make([]string, len(st.specs))
	for i, sp := range st.specs {
		names[i] = sp.name
	}
	return names
}

// Rows returns the committed number of rows across all shards.
func (st *ShardedTable) Rows() int { return st.rows }

// ShardRows returns the per-shard row capacity.
func (st *ShardedTable) ShardRows() int { return st.shardRows }

// NumShards returns the number of shards currently backing the store.
func (st *ShardedTable) NumShards() int { return len(st.shards) }

// spec resolves a column name, or returns -1.
func (st *ShardedTable) spec(name string) int {
	if i, ok := st.index[name]; ok {
		return i
	}
	return -1
}

// newShard builds one empty shard table from the schema.
func (st *ShardedTable) newShard() *Table {
	t := NewTable()
	for _, sp := range st.specs {
		t.AddColumn(sp.name, sp.layout, sp.bits, sp.opts...)
	}
	return t
}

// tailShard returns the open tail shard, appending a fresh one when the
// store is empty or the tail is full.
func (st *ShardedTable) tailShard() *Table {
	if n := len(st.shards); n > 0 && st.shards[n-1].Rows() < st.shardRows {
		return st.shards[n-1]
	}
	st.shards = append(st.shards, st.newShard())
	st.bounds = append(st.bounds, make([]shardBounds, len(st.specs)))
	return st.shards[len(st.shards)-1]
}

// fitsBits reports whether v is representable in k bits — the spec-level
// twin of Column.fits, usable before any shard column exists.
func fitsBits(v uint64, k int) bool {
	return k >= 64 || v>>uint(k) == 0
}

// AppendRow appends one row to the open tail shard; vals must provide a
// code for every column. The row is validated in full before any shard is
// touched, and the store's row count commits last.
func (st *ShardedTable) AppendRow(vals map[string]uint64) {
	if len(st.specs) == 0 {
		panic("bpagg: AppendRow on a table with no columns")
	}
	if len(vals) != len(st.specs) {
		panic(fmt.Sprintf("bpagg: row has %d values, table has %d columns", len(vals), len(st.specs)))
	}
	for _, sp := range st.specs {
		v, ok := vals[sp.name]
		if !ok {
			panic(fmt.Sprintf("bpagg: row missing column %q", sp.name))
		}
		if !fitsBits(v, sp.bits) {
			panic(fmt.Sprintf("bpagg: value %d does not fit column %q (%d bits)", v, sp.name, sp.bits))
		}
	}
	tail := st.tailShard()
	shard := len(st.shards) - 1 // the tail is always the last shard
	tail.AppendRow(vals)
	for j, sp := range st.specs {
		st.bounds[shard][j].note(vals[sp.name])
	}
	st.rows++
}

// AppendColumnar bulk-loads per-column value slices of equal length. The
// whole load is validated before anything mutates; it then splits at
// shard boundaries — the first chunk tops up the open tail shard, the
// rest stage into fresh shards filled by parallel workers — and the
// store's row count commits last. Loads into a store with no columns are
// rejected because they carry no row count.
func (st *ShardedTable) AppendColumnar(vals map[string][]uint64) {
	if len(st.specs) == 0 {
		panic("bpagg: AppendColumnar on a table with no columns")
	}
	if len(vals) != len(st.specs) {
		panic(fmt.Sprintf("bpagg: load has %d columns, table has %d", len(vals), len(st.specs)))
	}
	n := -1
	for _, sp := range st.specs {
		col, ok := vals[sp.name]
		if !ok {
			panic(fmt.Sprintf("bpagg: load missing column %q", sp.name))
		}
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			panic(fmt.Sprintf("bpagg: column %q has %d values, want %d", sp.name, len(col), n))
		}
	}
	for _, sp := range st.specs {
		for _, v := range vals[sp.name] {
			if !fitsBits(v, sp.bits) {
				panic(fmt.Sprintf("bpagg: value %d does not fit column %q (%d bits)", v, sp.name, sp.bits))
			}
		}
	}
	if n == 0 {
		return
	}

	// Split the load at shard boundaries. chunk c covers vals[off:off+ln)
	// and lands in shard first+c; chunk 0 may top up the open tail.
	type chunk struct{ off, ln int }
	var chunks []chunk
	first := len(st.shards)
	off := 0
	if len(st.shards) > 0 {
		if room := st.shardRows - st.shards[first-1].Rows(); room > 0 {
			first--
			ln := min(room, n)
			chunks = append(chunks, chunk{0, ln})
			off = ln
		}
	}
	for off < n {
		ln := min(st.shardRows, n-off)
		chunks = append(chunks, chunk{off, ln})
		off += ln
	}
	for len(st.shards) < first+len(chunks) {
		st.shards = append(st.shards, st.newShard())
		st.bounds = append(st.bounds, make([]shardBounds, len(st.specs)))
	}

	// Every chunk targets a distinct shard, so the fan-out is race-free.
	// The load was validated above; a worker error here is an engine bug
	// (or an injected fault) and re-panics like a serial append would.
	err := parallel.ForEachIndexErr(context.Background(), len(chunks), runtime.GOMAXPROCS(0),
		func(c int) error {
			sub := make(map[string][]uint64, len(st.specs))
			for _, sp := range st.specs {
				sub[sp.name] = vals[sp.name][chunks[c].off : chunks[c].off+chunks[c].ln]
			}
			st.shards[first+c].AppendColumnar(sub)
			return nil
		})
	if err != nil {
		var pe *parallel.PanicError
		if errors.As(err, &pe) {
			panic(pe.Value)
		}
		panic(err)
	}

	for c, ch := range chunks {
		for j, sp := range st.specs {
			b := &st.bounds[first+c][j]
			for _, v := range vals[sp.name][ch.off : ch.off+ch.ln] {
				b.note(v)
			}
		}
	}
	st.rows += n
}

// ShardTable splits a flat table into a ShardedTable with shardRows rows
// per shard, preserving row order, NULLs, and every column's layout, bit
// width, and bit-group size. The shard catalog's bounds are computed from
// the data. The source table is not retained.
func ShardTable(t *Table, shardRows int) *ShardedTable {
	st := NewShardedTable(shardRows)
	names := t.Columns()
	if len(names) == 0 {
		panic("bpagg: cannot shard a table with no columns")
	}
	cols := make([]*Column, len(names))
	for i, name := range names {
		c := t.Column(name)
		cols[i] = c
		st.AddColumn(name, c.Layout(), c.BitWidth(), WithGroupBits(c.GroupBits()))
	}
	for lo := 0; lo < t.Rows(); lo += shardRows {
		hi := min(lo+shardRows, t.Rows())
		shard := st.tailShard()
		sIdx := len(st.shards) - 1
		for j, name := range names {
			src, dst := cols[j], shard.Column(name)
			for i := lo; i < hi; i++ {
				if src.IsNull(i) {
					dst.AppendNull()
				} else {
					v := src.Value(i)
					dst.Append(v)
					st.bounds[sIdx][j].note(v)
				}
			}
		}
		shard.rows = hi - lo
	}
	st.rows = t.Rows()
	return st
}

// ColumnInfo reports the named column's schema entry and its aggregate
// stats across every shard: total NULL count and total backing words. It
// panics on an unknown column, mirroring Table.Column callers.
func (st *ShardedTable) ColumnInfo(name string) (layout Layout, bits, nulls, words int) {
	idx := st.spec(name)
	if idx < 0 {
		panic(fmt.Sprintf("bpagg: unknown column %q", name))
	}
	sp := st.specs[idx]
	for _, sh := range st.shards {
		c := sh.Column(name)
		nulls += c.NullCount()
		words += c.MemoryWords()
	}
	return sp.layout, sp.bits, nulls, words
}

// MemoryWords reports the number of 64-bit words backing all shards.
func (st *ShardedTable) MemoryWords() int {
	total := 0
	for _, sh := range st.shards {
		for _, name := range sh.Columns() {
			total += sh.Column(name).MemoryWords()
		}
	}
	return total
}
