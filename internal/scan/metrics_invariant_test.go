package scan

import (
	"fmt"
	"testing"

	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Metric-asserted zone-map invariants (paper §II-E): on sorted data a
// range scan must prune at least 80% of the segments, and pruning must
// be invisible in the output — the bitmap is bit-identical to the one a
// pruning-disabled scan (a FromWords column, which carries no zones)
// produces over the same words.

// vbpNoZones clones a column's words into a zone-free column.
func vbpNoZones(t *testing.T, col *vbp.Column) *vbp.Column {
	t.Helper()
	groups := make([][]uint64, col.NumGroups())
	for g := range groups {
		groups[g] = col.Groups()[g].Words
	}
	out, err := vbp.FromWords(col.K(), col.Tau(), col.Len(), groups)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// hbpNoZones clones a column's words into a zone-free column.
func hbpNoZones(t *testing.T, col *hbp.Column) *hbp.Column {
	t.Helper()
	groups := make([][]uint64, col.NumGroups())
	for g := range groups {
		groups[g] = col.GroupWords(g)
	}
	out, err := hbp.FromWords(col.K(), col.Tau(), col.Len(), groups)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestZoneMapPruningInvariant(t *testing.T) {
	// Sorted data: vals[i] grows by 0..3 per step, so segments hold tight
	// disjoint ranges and range predicates prune nearly everything.
	const n, k = 100 * 64, 16
	vals := make([]uint64, n)
	var v uint64
	for i := range vals {
		v += uint64(i*2654435761) % 4
		vals[i] = v & word.LowMask(k)
	}
	max := vals[n-1]

	vcol := vbp.Pack(vals, k, 4)
	hcol := hbp.Pack(vals, k, hbp.DefaultTau(k))
	vplain := vbpNoZones(t, vcol)
	hplain := hbpNoZones(t, hcol)

	preds := []Predicate{
		{Op: LT, A: vals[n/16]},
		{Op: GE, A: vals[15*n/16]},
		{Op: Between, A: vals[n/2], B: vals[n/2+n/16]},
		{Op: GT, A: max},
	}
	for _, p := range preds {
		p := p
		t.Run(fmt.Sprintf("%s_%d", p.Op, p.A), func(t *testing.T) {
			var zoned, plain metrics.ExecStats
			vb := VBPStats(vcol, p, &zoned)
			vbPlain := VBPStats(vplain, p, &plain)
			checkPruning(t, "VBP", zoned, plain)
			if vb.Len() != vbPlain.Len() {
				t.Fatalf("VBP lengths differ: %d vs %d", vb.Len(), vbPlain.Len())
			}
			for i, w := range vb.Words() {
				if w != vbPlain.Word(i) {
					t.Fatalf("VBP bitmap word %d differs: pruned %#x, plain %#x", i, w, vbPlain.Word(i))
				}
			}

			zoned, plain = metrics.ExecStats{}, metrics.ExecStats{}
			hb := HBPStats(hcol, p, &zoned)
			hbPlain := HBPStats(hplain, p, &plain)
			checkPruning(t, "HBP", zoned, plain)
			if hb.Len() != hbPlain.Len() {
				t.Fatalf("HBP lengths differ: %d vs %d", hb.Len(), hbPlain.Len())
			}
			for i, w := range hb.Words() {
				if w != hbPlain.Word(i) {
					t.Fatalf("HBP bitmap word %d differs: pruned %#x, plain %#x", i, w, hbPlain.Word(i))
				}
			}
		})
	}
}

// TestVBPStatsMatchesVBP and TestHBPStatsMatchesHBP pin the counting
// loops to their uninstrumented twins: the disabled-path guarantee keeps
// the loops as separate code, so the counting copies must be proven to
// produce bit-identical filters.
func TestVBPStatsMatchesVBP(t *testing.T) {
	const n, k = 777, 13
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i*i+3*i) & word.LowMask(k)
	}
	col := vbp.Pack(vals, k, 4)
	for _, p := range []Predicate{
		{Op: LT, A: 1000}, {Op: GE, A: 4000}, {Op: EQ, A: vals[100]},
		{Op: NE, A: vals[100]}, {Op: Between, A: 500, B: 6000},
	} {
		var es metrics.ExecStats
		plain := VBP(col, p)
		counted := VBPStats(col, p, &es)
		for i := range plain.Words() {
			if plain.Word(i) != counted.Word(i) {
				t.Fatalf("VBP %s %d: word %d differs between twins", p.Op, p.A, i)
			}
		}
		if es.SegmentsConsidered() != uint64(col.NumSegments()) {
			t.Errorf("VBP %s %d: considered %d of %d segments", p.Op, p.A,
				es.SegmentsConsidered(), col.NumSegments())
		}
	}
}

func TestHBPStatsMatchesHBP(t *testing.T) {
	const n, k = 777, 13
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i*i+3*i) & word.LowMask(k)
	}
	col := hbp.Pack(vals, k, hbp.DefaultTau(k))
	for _, p := range []Predicate{
		{Op: LT, A: 1000}, {Op: GE, A: 4000}, {Op: EQ, A: vals[100]},
		{Op: NE, A: vals[100]}, {Op: Between, A: 500, B: 6000},
	} {
		var es metrics.ExecStats
		plain := HBP(col, p)
		counted := HBPStats(col, p, &es)
		for i := range plain.Words() {
			if plain.Word(i) != counted.Word(i) {
				t.Fatalf("HBP %s %d: word %d differs between twins", p.Op, p.A, i)
			}
		}
		if es.SegmentsConsidered() != uint64(col.NumSegments()) {
			t.Errorf("HBP %s %d: considered %d of %d segments", p.Op, p.A,
				es.SegmentsConsidered(), col.NumSegments())
		}
	}
}

// checkPruning asserts the §II-E contract on one zoned-vs-plain pair:
// ≥80% of segments pruned with zones, zero without, and strictly fewer
// words compared on the pruned side.
func checkPruning(t *testing.T, layout string, zoned, plain metrics.ExecStats) {
	t.Helper()
	if ratio := zoned.PruneRatio(); ratio < 0.80 {
		t.Errorf("%s: pruned %.1f%% of segments (%d/%d), want >= 80%%",
			layout, 100*ratio, zoned.SegmentsPruned(), zoned.SegmentsConsidered())
	}
	if plain.SegmentsPrunedAll != 0 || plain.SegmentsPrunedNone != 0 {
		t.Errorf("%s: zone-free column pruned segments (all=%d none=%d)",
			layout, plain.SegmentsPrunedAll, plain.SegmentsPrunedNone)
	}
	if zoned.SegmentsConsidered() != plain.SegmentsConsidered() {
		t.Errorf("%s: considered %d segments zoned vs %d plain",
			layout, zoned.SegmentsConsidered(), plain.SegmentsConsidered())
	}
	if zoned.WordsCompared >= plain.WordsCompared {
		t.Errorf("%s: pruning did not reduce word comparisons: %d zoned vs %d plain",
			layout, zoned.WordsCompared, plain.WordsCompared)
	}
}
