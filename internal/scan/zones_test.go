package scan

import (
	"math/rand"
	"sort"
	"testing"

	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func TestZoneDecisionTable(t *testing.T) {
	// Segment range [10, 20].
	cases := []struct {
		p         Predicate
		none, all bool
	}{
		{Predicate{Op: EQ, A: 5}, true, false},
		{Predicate{Op: EQ, A: 15}, false, false},
		{Predicate{Op: EQ, A: 25}, true, false},
		{Predicate{Op: NE, A: 5}, false, true},
		{Predicate{Op: NE, A: 15}, false, false},
		{Predicate{Op: LT, A: 10}, true, false},
		{Predicate{Op: LT, A: 21}, false, true},
		{Predicate{Op: LT, A: 15}, false, false},
		{Predicate{Op: LE, A: 9}, true, false},
		{Predicate{Op: LE, A: 20}, false, true},
		{Predicate{Op: GT, A: 20}, true, false},
		{Predicate{Op: GT, A: 9}, false, true},
		{Predicate{Op: GE, A: 21}, true, false},
		{Predicate{Op: GE, A: 10}, false, true},
		{Predicate{Op: Between, A: 21, B: 30}, true, false},
		{Predicate{Op: Between, A: 0, B: 9}, true, false},
		{Predicate{Op: Between, A: 10, B: 20}, false, true},
		{Predicate{Op: Between, A: 12, B: 18}, false, false},
	}
	for _, c := range cases {
		none, all := c.p.zoneDecision(10, 20)
		if none != c.none || all != c.all {
			t.Errorf("%s %d/%d on [10,20]: got (none=%v all=%v), want (none=%v all=%v)",
				c.p.Op, c.p.A, c.p.B, none, all, c.none, c.all)
		}
	}
	// Constant segment [15, 15].
	if none, all := (Predicate{Op: EQ, A: 15}).zoneDecision(15, 15); none || !all {
		t.Error("EQ on constant matching segment should be all")
	}
	if none, all := (Predicate{Op: NE, A: 15}).zoneDecision(15, 15); !none || all {
		t.Error("NE on constant matching segment should be none")
	}
}

// TestZonePrunedScanMatchesScalar runs scans over sorted data — the case
// where nearly every segment is zone-prunable — and checks exactness.
func TestZonePrunedScanMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n, k = 3000, 16
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	vcol := vbp.Pack(vals, k, 4)
	hcol := hbp.Pack(vals, k, hbp.DefaultTau(k))
	for _, p := range []Predicate{
		{Op: LT, A: vals[n/2]},
		{Op: GE, A: vals[n/4]},
		{Op: EQ, A: vals[n/3]},
		{Op: NE, A: vals[n/3]},
		{Op: Between, A: vals[n/4], B: vals[3*n/4]},
		{Op: LE, A: 0},
		{Op: GT, A: word.LowMask(k) - 1},
	} {
		vb := VBP(vcol, p)
		hb := HBP(hcol, p)
		for i, v := range vals {
			want := p.Matches(v)
			if vb.Get(i) != want {
				t.Fatalf("VBP %s %d: row %d (value %d) got %v", p.Op, p.A, i, v, vb.Get(i))
			}
			if hb.Get(i) != want {
				t.Fatalf("HBP %s %d: row %d (value %d) got %v", p.Op, p.A, i, v, hb.Get(i))
			}
		}
	}
}

// TestScanWithoutZones covers columns adopted via FromWords, which carry no
// zone maps: scans must fall back to full evaluation and stay exact.
func TestScanWithoutZones(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	vals := randValues(rng, 500, 12)
	{
		orig := vbp.Pack(vals, 12, 4)
		groups := make([][]uint64, orig.NumGroups())
		for g := range groups {
			groups[g] = orig.Groups()[g].Words
		}
		col, err := vbp.FromWords(12, 4, len(vals), groups)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := col.ZoneRange(0); ok {
			t.Fatal("FromWords column unexpectedly has zones")
		}
		p := Predicate{Op: LT, A: 2000}
		bm := VBP(col, p)
		for i, v := range vals {
			if bm.Get(i) != p.Matches(v) {
				t.Fatalf("VBP row %d mismatch without zones", i)
			}
		}
	}
	{
		orig := hbp.Pack(vals, 12, 4)
		groups := make([][]uint64, orig.NumGroups())
		for g := range groups {
			groups[g] = orig.GroupWords(g)
		}
		col, err := hbp.FromWords(12, 4, len(vals), groups)
		if err != nil {
			t.Fatal(err)
		}
		p := Predicate{Op: Between, A: 100, B: 3000}
		bm := HBP(col, p)
		for i, v := range vals {
			if bm.Get(i) != p.Matches(v) {
				t.Fatalf("HBP row %d mismatch without zones", i)
			}
		}
	}
}

// BenchmarkZonePruning shows the zone-map payoff on sorted data: a range
// predicate decides all but two segments from the zone alone.
func BenchmarkZonePruning(b *testing.B) {
	const n, k = 1 << 18, 20
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) % (1 << k) // sorted within each wraparound
	}
	sorted := vbp.Pack(vals, k, 4)
	shuffled := make([]uint64, n)
	copy(shuffled, vals)
	rand.New(rand.NewSource(1)).Shuffle(n, func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	random := vbp.Pack(shuffled, k, 4)
	p := Predicate{Op: Between, A: 1000, B: 2000}
	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			VBP(sorted, p)
		}
	})
	b.Run("shuffled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			VBP(random, p)
		}
	})
}
