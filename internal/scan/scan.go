// Package scan implements bit-parallel filter scans over VBP and HBP
// columns — the BitWeaving substrate (Li & Patel, SIGMOD 2013) that the
// paper's aggregation algorithms consume (§II) and build on (SLOTMIN uses
// BIT-PARALLEL-LESSTHAN, HBP MEDIAN uses BIT-PARALLEL-EQUAL).
//
// A scan evaluates one simple predicate over a packed column and produces a
// dense filter Bitmap (bit i = tuple i passed). Complex predicates compose
// by Bitmap intersection/union per §II-E.
package scan

import (
	"fmt"

	"bpagg/internal/word"
)

// Op is a comparison operator of a simple predicate.
type Op int

// Comparison operators. Between is inclusive on both ends.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
	Between
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case Between:
		return "BETWEEN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a simple comparison against constants. B is used only by
// Between (A <= v <= B).
type Predicate struct {
	Op   Op
	A, B uint64
}

// Matches reports whether a plain value satisfies the predicate — the
// scalar reference semantics all bit-parallel scans are tested against.
func (p Predicate) Matches(v uint64) bool {
	switch p.Op {
	case EQ:
		return v == p.A
	case NE:
		return v != p.A
	case LT:
		return v < p.A
	case LE:
		return v <= p.A
	case GT:
		return v > p.A
	case GE:
		return v >= p.A
	case Between:
		return p.A <= v && v <= p.B
	default:
		panic(fmt.Sprintf("scan: unknown op %d", int(p.Op)))
	}
}

// Fits reports whether the predicate's constants fit in k bits — the
// validation every scan enforces on entry, exposed so a planner can
// reject a clause at registration time instead of at execution.
func (p Predicate) Fits(k int) bool {
	max := word.LowMask(k)
	return p.A <= max && (p.Op != Between || p.B <= max)
}

func (p Predicate) check(k int) {
	max := word.LowMask(k)
	if p.A > max || (p.Op == Between && p.B > max) {
		panic(fmt.Sprintf("scan: predicate constant does not fit in %d bits", k))
	}
}

// state holds the per-segment staged comparison lanes shared by the VBP and
// HBP scan loops: eq starts all-ones and loses lanes as higher bits
// discriminate; lt and gt accumulate lanes decided at each stage.
type state struct {
	eq, lt, gt uint64
}

// step folds one stage into the state. ltg/gtg/eqg are the stage-local
// comparison lanes; only lanes still equal on all more significant bits may
// be decided here.
func (s *state) step(ltg, gtg, eqg uint64) {
	s.lt |= s.eq & ltg
	s.gt |= s.eq & gtg
	s.eq &= eqg
}

// result maps the final lanes to the predicate's truth lanes. full is the
// all-lanes mask (per-segment tuple mask for VBP, delimiter mask for HBP).
func (s *state) result(op Op, full uint64) uint64 {
	switch op {
	case EQ:
		return s.eq
	case NE:
		return (s.eq ^ full) & full
	case LT:
		return s.lt
	case LE:
		return s.lt | s.eq
	case GT:
		return s.gt
	case GE:
		return s.gt | s.eq
	default:
		panic(fmt.Sprintf("scan: unknown op %d", int(op)))
	}
}
