package scan

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/word"
)

// HBP evaluates p over an HBP column and returns the dense filter bitmap.
//
// Per sub-segment, each word-group contributes one full-word Lamport
// comparison on the delimiter lane (paper §II-B): the injected delimiter
// gives each field the headroom that turns a single 64-bit subtraction into
// c independent tau-bit comparisons. Groups are staged most significant
// first with running eq/lt/gt delimiter lanes, stopping early once every
// lane is decided.
//
// HBPStats is the observable twin; the loops stay separate for the same
// disabled-path reason as VBP/VBPStats. TestHBPStatsMatchesHBP pins them
// to identical outputs.
func HBP(col *hbp.Column, p Predicate) *bitvec.Bitmap {
	p.check(col.K())
	if p.Op == Between {
		return hbpBetween(col, p.A, p.B)
	}
	cw := constWordsHBP(col, p.A)
	delim := col.DelimMask()
	bGroups := col.NumGroups()
	subs := col.SubSegments()

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	for seg := 0; seg < nseg; seg++ {
		if lo, hi, ok := col.ZoneRange(seg); ok {
			if none, all := p.zoneDecision(lo, hi); none {
				continue // bitmap already zero
			} else if all {
				depositSegment(out, col, seg, word.LowMask(col.SegmentValues(seg)))
				continue
			}
		}
		var fw uint64
		base := seg * subs
		for t := 0; t < subs; t++ {
			st := state{eq: delim}
			for g := 0; g < bGroups; g++ {
				x := col.GroupWords(g)[base+t]
				y := cw[g]
				st.step(
					word.LTDelims(x, y, delim),
					word.GTDelims(x, y, delim),
					word.EQDelims(x, y, delim),
				)
				if st.eq == 0 {
					break
				}
			}
			fw |= col.ScatterDelims(st.result(p.Op, delim), t)
		}
		depositSegment(out, col, seg, fw&word.LowMask(col.SegmentValues(seg)))
	}
	return out
}

// HBPStats is HBP with observability: the scan reports segments scanned
// vs zone-pruned and the packed words actually compared (net of the
// per-sub-segment early stop). A nil es falls back to the uninstrumented
// HBP loop, so collection that is off costs nothing.
func HBPStats(col *hbp.Column, p Predicate, es *metrics.ExecStats) *bitvec.Bitmap {
	if es == nil {
		return HBP(col, p)
	}
	p.check(col.K())
	if p.Op == Between {
		return hbpBetweenStats(col, p.A, p.B, es)
	}
	cw := constWordsHBP(col, p.A)
	delim := col.DelimMask()
	bGroups := col.NumGroups()
	subs := col.SubSegments()

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	var scanned, prunedNone, prunedAll, words uint64
	for seg := 0; seg < nseg; seg++ {
		if lo, hi, ok := col.ZoneRange(seg); ok {
			if none, all := p.zoneDecision(lo, hi); none {
				prunedNone++
				continue // bitmap already zero
			} else if all {
				prunedAll++
				depositSegment(out, col, seg, word.LowMask(col.SegmentValues(seg)))
				continue
			}
		}
		scanned++
		var fw uint64
		base := seg * subs
		for t := 0; t < subs; t++ {
			st := state{eq: delim}
			for g := 0; g < bGroups; g++ {
				x := col.GroupWords(g)[base+t]
				y := cw[g]
				words++
				st.step(
					word.LTDelims(x, y, delim),
					word.GTDelims(x, y, delim),
					word.EQDelims(x, y, delim),
				)
				if st.eq == 0 {
					break
				}
			}
			fw |= col.ScatterDelims(st.result(p.Op, delim), t)
		}
		depositSegment(out, col, seg, fw&word.LowMask(col.SegmentValues(seg)))
	}
	es.SegmentsScanned += scanned
	es.SegmentsPrunedNone += prunedNone
	es.SegmentsPrunedAll += prunedAll
	es.WordsCompared += words
	return out
}

// hbpBetween evaluates A <= v <= B in a single pass per sub-segment.
// hbpBetweenStats is its counting twin.
func hbpBetween(col *hbp.Column, lo, hi uint64) *bitvec.Bitmap {
	cLo := constWordsHBP(col, lo)
	cHi := constWordsHBP(col, hi)
	delim := col.DelimMask()
	bGroups := col.NumGroups()
	subs := col.SubSegments()

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	for seg := 0; seg < nseg; seg++ {
		if zlo, zhi, ok := col.ZoneRange(seg); ok {
			p := Predicate{Op: Between, A: lo, B: hi}
			if none, all := p.zoneDecision(zlo, zhi); none {
				continue
			} else if all {
				depositSegment(out, col, seg, word.LowMask(col.SegmentValues(seg)))
				continue
			}
		}
		var fw uint64
		base := seg * subs
		for t := 0; t < subs; t++ {
			sLo := state{eq: delim}
			sHi := state{eq: delim}
			for g := 0; g < bGroups; g++ {
				x := col.GroupWords(g)[base+t]
				sLo.step(
					word.LTDelims(x, cLo[g], delim),
					word.GTDelims(x, cLo[g], delim),
					word.EQDelims(x, cLo[g], delim),
				)
				sHi.step(
					word.LTDelims(x, cHi[g], delim),
					word.GTDelims(x, cHi[g], delim),
					word.EQDelims(x, cHi[g], delim),
				)
				if sLo.eq == 0 && sHi.eq == 0 {
					break
				}
			}
			sel := sLo.result(GE, delim) & sHi.result(LE, delim)
			fw |= col.ScatterDelims(sel, t)
		}
		depositSegment(out, col, seg, fw&word.LowMask(col.SegmentValues(seg)))
	}
	return out
}

func hbpBetweenStats(col *hbp.Column, lo, hi uint64, es *metrics.ExecStats) *bitvec.Bitmap {
	cLo := constWordsHBP(col, lo)
	cHi := constWordsHBP(col, hi)
	delim := col.DelimMask()
	bGroups := col.NumGroups()
	subs := col.SubSegments()

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	var scanned, prunedNone, prunedAll, words uint64
	for seg := 0; seg < nseg; seg++ {
		if zlo, zhi, ok := col.ZoneRange(seg); ok {
			p := Predicate{Op: Between, A: lo, B: hi}
			if none, all := p.zoneDecision(zlo, zhi); none {
				prunedNone++
				continue
			} else if all {
				prunedAll++
				depositSegment(out, col, seg, word.LowMask(col.SegmentValues(seg)))
				continue
			}
		}
		scanned++
		var fw uint64
		base := seg * subs
		for t := 0; t < subs; t++ {
			sLo := state{eq: delim}
			sHi := state{eq: delim}
			for g := 0; g < bGroups; g++ {
				x := col.GroupWords(g)[base+t]
				words++
				sLo.step(
					word.LTDelims(x, cLo[g], delim),
					word.GTDelims(x, cLo[g], delim),
					word.EQDelims(x, cLo[g], delim),
				)
				sHi.step(
					word.LTDelims(x, cHi[g], delim),
					word.GTDelims(x, cHi[g], delim),
					word.EQDelims(x, cHi[g], delim),
				)
				if sLo.eq == 0 && sHi.eq == 0 {
					break
				}
			}
			sel := sLo.result(GE, delim) & sHi.result(LE, delim)
			fw |= col.ScatterDelims(sel, t)
		}
		depositSegment(out, col, seg, fw&word.LowMask(col.SegmentValues(seg)))
	}
	es.SegmentsScanned += scanned
	es.SegmentsPrunedNone += prunedNone
	es.SegmentsPrunedAll += prunedAll
	es.WordsCompared += words
	return out
}

// HBPEqualGroupLanes returns the delimiter lanes where the group-g fields of
// w equal the tau-bit constant bin packed across all slots. It is the
// BIT-PARALLEL-EQUAL step of Algorithm 6 line 11, applied to a single
// word-group rather than the whole value.
func HBPEqualGroupLanes(col *hbp.Column, w uint64, bin uint64) uint64 {
	delim := col.DelimMask()
	y := word.Repeat(bin, col.FieldWidth(), col.FieldsPerWord())
	return word.EQDelims(w, y, delim)
}

// constWordsHBP packs each bit-group of the constant into all fields of a
// word, one word per group (the paper's W_c of Figure 3b, per group).
func constWordsHBP(col *hbp.Column, c uint64) []uint64 {
	b, tau := col.NumGroups(), col.Tau()
	kPad := b * tau
	out := make([]uint64, b)
	for g := 0; g < b; g++ {
		bg := c >> uint(kPad-(g+1)*tau) & word.LowMask(tau)
		out[g] = word.Repeat(bg, col.FieldWidth(), col.FieldsPerWord())
	}
	return out
}

// depositSegment writes a segment's filter window into the dense bitmap,
// using the aligned fast path when a segment holds exactly 64 tuples.
func depositSegment(out *bitvec.Bitmap, col *hbp.Column, seg int, fw uint64) {
	vps := col.ValuesPerSegment()
	if vps == 64 {
		if seg < out.NumWords() {
			out.SetWord(seg, fw)
		}
		return
	}
	out.Deposit(seg*vps, vps, fw)
}
