package scan

import (
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// A WindowPred evaluates one predicate a segment window at a time, for the
// fused scan→aggregate path: instead of materializing a whole filter
// bitmap, the caller pulls each window's filter word while it is still
// register-resident and feeds it straight into an aggregate kernel.
//
// The evaluation (zone decisions, staged comparisons, early stops) and the
// words-compared accounting replicate the Stats scan twins exactly, so a
// fused query reports the same scan counters a two-phase one would.
// Implementations are read-only after construction and safe for
// concurrent use by parallel workers.
type WindowPred interface {
	// WindowBits is the number of tuples per window: 64 for VBP,
	// ValuesPerSegment for HBP. Fusion requires every predicate's window
	// to coincide with the aggregate column's.
	WindowBits() int
	// NumWindows is the number of windows (the column's segment count).
	NumWindows() int
	// Decide consults the zone map for window win. ok is false when no
	// zone is tracked; otherwise none/all mirror the scan's pruning
	// decision.
	Decide(win int) (none, all, ok bool)
	// Eval computes window win's filter word — bit j set iff tuple j of
	// the window matches — plus the packed words compared (net of early
	// stops). Bits at and above the window's valid tuple count are
	// unspecified; callers mask with the segment's value count.
	Eval(win int) (fw uint64, words uint64)
}

// vbpWindowPred evaluates a predicate over one VBP segment at a time,
// replicating the per-segment body of VBPStats.
type vbpWindowPred struct {
	col      *vbp.Column
	p        Predicate
	cbits    []uint64 // constant bit lanes (non-Between)
	cLo, cHi []uint64 // Between bounds
}

// NewVBPWindowPred returns the window evaluator for p over col. Like the
// scans, it panics when the predicate's constants do not fit in k bits.
func NewVBPWindowPred(col *vbp.Column, p Predicate) WindowPred {
	p.check(col.K())
	w := &vbpWindowPred{col: col, p: p}
	if p.Op == Between {
		w.cLo = constLanesVBP(p.A, col.K())
		w.cHi = constLanesVBP(p.B, col.K())
	} else {
		w.cbits = constLanesVBP(p.A, col.K())
	}
	return w
}

func (w *vbpWindowPred) WindowBits() int { return vbp.SegBits }
func (w *vbpWindowPred) NumWindows() int { return w.col.NumSegments() }

func (w *vbpWindowPred) Decide(win int) (none, all, ok bool) {
	lo, hi, ok := w.col.ZoneRange(win)
	if !ok {
		return false, false, false
	}
	none, all = w.p.zoneDecision(lo, hi)
	return none, all, true
}

func (w *vbpWindowPred) Eval(win int) (fw uint64, words uint64) {
	groups := w.col.Groups()
	if w.p.Op == Between {
		sLo := state{eq: ^uint64(0)}
		sHi := state{eq: ^uint64(0)}
		for g := range groups {
			gr := &groups[g]
			base := win * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				x := gr.Words[base+b]
				l, h := w.cLo[gr.StartBit+b], w.cHi[gr.StartBit+b]
				sLo.step(^x&l, x&^l, ^(x ^ l))
				sHi.step(^x&h, x&^h, ^(x ^ h))
			}
			words += uint64(gr.Bits)
			if sLo.eq == 0 && sHi.eq == 0 {
				break
			}
		}
		return sLo.result(GE, ^uint64(0)) & sHi.result(LE, ^uint64(0)), words
	}
	st := state{eq: ^uint64(0)}
	for g := range groups {
		gr := &groups[g]
		base := win * gr.Bits
		for b := 0; b < gr.Bits; b++ {
			x := gr.Words[base+b]
			c := w.cbits[gr.StartBit+b]
			st.step(^x&c, x&^c, ^(x ^ c))
		}
		words += uint64(gr.Bits)
		if st.eq == 0 {
			break
		}
	}
	return st.result(w.p.Op, ^uint64(0)), words
}

// hbpWindowPred evaluates a predicate over one HBP segment at a time,
// replicating the per-segment body of HBPStats.
type hbpWindowPred struct {
	col      *hbp.Column
	p        Predicate
	cw       []uint64 // per-group constant words (non-Between)
	cLo, cHi []uint64 // Between bounds
}

// NewHBPWindowPred returns the window evaluator for p over col. Like the
// scans, it panics when the predicate's constants do not fit in k bits.
func NewHBPWindowPred(col *hbp.Column, p Predicate) WindowPred {
	p.check(col.K())
	w := &hbpWindowPred{col: col, p: p}
	if p.Op == Between {
		w.cLo = constWordsHBP(col, p.A)
		w.cHi = constWordsHBP(col, p.B)
	} else {
		w.cw = constWordsHBP(col, p.A)
	}
	return w
}

func (w *hbpWindowPred) WindowBits() int { return w.col.ValuesPerSegment() }
func (w *hbpWindowPred) NumWindows() int { return w.col.NumSegments() }

func (w *hbpWindowPred) Decide(win int) (none, all, ok bool) {
	lo, hi, ok := w.col.ZoneRange(win)
	if !ok {
		return false, false, false
	}
	none, all = w.p.zoneDecision(lo, hi)
	return none, all, true
}

func (w *hbpWindowPred) Eval(win int) (fw uint64, words uint64) {
	col := w.col
	delim := col.DelimMask()
	bGroups := col.NumGroups()
	subs := col.SubSegments()
	base := win * subs
	if w.p.Op == Between {
		for t := 0; t < subs; t++ {
			sLo := state{eq: delim}
			sHi := state{eq: delim}
			for g := 0; g < bGroups; g++ {
				x := col.GroupWords(g)[base+t]
				words++
				sLo.step(
					word.LTDelims(x, w.cLo[g], delim),
					word.GTDelims(x, w.cLo[g], delim),
					word.EQDelims(x, w.cLo[g], delim),
				)
				sHi.step(
					word.LTDelims(x, w.cHi[g], delim),
					word.GTDelims(x, w.cHi[g], delim),
					word.EQDelims(x, w.cHi[g], delim),
				)
				if sLo.eq == 0 && sHi.eq == 0 {
					break
				}
			}
			sel := sLo.result(GE, delim) & sHi.result(LE, delim)
			fw |= col.ScatterDelims(sel, t)
		}
		return fw, words
	}
	for t := 0; t < subs; t++ {
		st := state{eq: delim}
		for g := 0; g < bGroups; g++ {
			x := col.GroupWords(g)[base+t]
			y := w.cw[g]
			words++
			st.step(
				word.LTDelims(x, y, delim),
				word.GTDelims(x, y, delim),
				word.EQDelims(x, y, delim),
			)
			if st.eq == 0 {
				break
			}
		}
		fw |= col.ScatterDelims(st.result(w.p.Op, delim), t)
	}
	return fw, words
}
