package scan

// zoneDecision classifies a predicate against a segment's zone-map range
// [lo, hi]: none means no value in the range can match (the whole segment
// skips with an all-zero filter word), all means every value must match
// (the segment skips with an all-one word). Both prunes avoid touching the
// segment's packed words entirely — the zone-map counterpart of the
// paper's early stopping, decisive on sorted or clustered columns.
func (p Predicate) zoneDecision(lo, hi uint64) (none, all bool) {
	switch p.Op {
	case EQ:
		return p.A < lo || p.A > hi, lo == hi && lo == p.A
	case NE:
		return lo == hi && lo == p.A, p.A < lo || p.A > hi
	case LT:
		return lo >= p.A, hi < p.A
	case LE:
		return lo > p.A, hi <= p.A
	case GT:
		return hi <= p.A, lo > p.A
	case GE:
		return hi < p.A, lo >= p.A
	case Between:
		return hi < p.A || lo > p.B, lo >= p.A && hi <= p.B
	default:
		return false, false
	}
}
