package scan

import (
	"math/rand"
	"testing"

	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func randValues(rng *rand.Rand, n, k int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() & word.LowMask(k)
	}
	return v
}

// allPredicates returns a representative predicate set for a k-bit domain,
// including boundary constants.
func allPredicates(rng *rand.Rand, k int) []Predicate {
	max := word.LowMask(k)
	consts := []uint64{0, max, max / 2, rng.Uint64() & max, rng.Uint64() & max}
	var ps []Predicate
	for _, c := range consts {
		for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
			ps = append(ps, Predicate{Op: op, A: c})
		}
	}
	lo := rng.Uint64() & max
	hi := rng.Uint64() & max
	if lo > hi {
		lo, hi = hi, lo
	}
	ps = append(ps,
		Predicate{Op: Between, A: lo, B: hi},
		Predicate{Op: Between, A: 0, B: max},
		Predicate{Op: Between, A: max, B: max},
	)
	return ps
}

func TestOpString(t *testing.T) {
	want := map[Op]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">=", Between: "BETWEEN"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op %d String = %q, want %q", int(op), op.String(), s)
		}
	}
}

func TestPredicateMatches(t *testing.T) {
	p := Predicate{Op: Between, A: 3, B: 7}
	for v, want := range map[uint64]bool{2: false, 3: true, 5: true, 7: true, 8: false} {
		if p.Matches(v) != want {
			t.Errorf("Between(3,7).Matches(%d) = %v", v, !want)
		}
	}
}

func TestVBPScanAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range []int{1, 2, 7, 12, 25, 33, 64} {
		for _, tau := range []int{1, 4, k} {
			if tau > k {
				continue
			}
			for _, n := range []int{1, 63, 64, 65, 257} {
				vals := randValues(rng, n, k)
				col := vbp.Pack(vals, k, tau)
				for _, p := range allPredicates(rng, k) {
					bm := VBP(col, p)
					if bm.Len() != n {
						t.Fatalf("k=%d: bitmap length %d, want %d", k, bm.Len(), n)
					}
					for i, v := range vals {
						if bm.Get(i) != p.Matches(v) {
							t.Fatalf("VBP k=%d tau=%d n=%d pred %v %d: tuple %d value %d got %v",
								k, tau, n, p.Op, p.A, i, v, bm.Get(i))
						}
					}
				}
			}
		}
	}
}

func TestHBPScanAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, k := range []int{1, 2, 7, 12, 25, 33, 64} {
		taus := []int{1, 3, 4, 7, k}
		for _, tau := range taus {
			if tau > k || tau > hbp.MaxTau {
				continue
			}
			for _, n := range []int{1, 59, 64, 65, 257} {
				vals := randValues(rng, n, k)
				col := hbp.Pack(vals, k, tau)
				for _, p := range allPredicates(rng, k) {
					bm := HBP(col, p)
					if bm.Len() != n {
						t.Fatalf("k=%d: bitmap length %d, want %d", k, bm.Len(), n)
					}
					for i, v := range vals {
						if bm.Get(i) != p.Matches(v) {
							t.Fatalf("HBP k=%d tau=%d n=%d pred %v %d/%d: tuple %d value %d got %v",
								k, tau, n, p.Op, p.A, p.B, i, v, bm.Get(i))
						}
					}
				}
			}
		}
	}
}

func TestScanTailPadding(t *testing.T) {
	// Padding tuples are zero; a predicate matching zero must not leak set
	// bits past Len().
	vals := []uint64{5, 6, 7}
	p := Predicate{Op: LT, A: 100}
	vcol := vbp.Pack(vals, 8, 4)
	if bm := VBP(vcol, p); bm.Count() != 3 {
		t.Errorf("VBP tail leak: count = %d, want 3", bm.Count())
	}
	hcol := hbp.Pack(vals, 8, 4)
	if bm := HBP(hcol, p); bm.Count() != 3 {
		t.Errorf("HBP tail leak: count = %d, want 3", bm.Count())
	}
}

func TestScanConstantOutOfRangePanics(t *testing.T) {
	col := vbp.Pack([]uint64{1}, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized constant did not panic")
		}
	}()
	VBP(col, Predicate{Op: EQ, A: 16})
}

func TestVBPSlotCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	k := 9
	for trial := 0; trial < 100; trial++ {
		xs := randValues(rng, 64, k)
		ys := randValues(rng, 64, k)
		if trial%4 == 0 {
			copy(ys, xs) // force equal lanes
		}
		// Build raw VBP word slices (bit position p at index p).
		toWords := func(vals []uint64) []uint64 {
			ws := make([]uint64, k)
			for j, v := range vals {
				for p := 0; p < k; p++ {
					if v>>uint(k-1-p)&1 == 1 {
						ws[p] |= 1 << uint(j)
					}
				}
			}
			return ws
		}
		xw, yw := toWords(xs), toWords(ys)
		lt, eq := VBPSlotCompare(xw, yw)
		gt, eq2 := VBPSlotCompareGT(xw, yw)
		if eq != eq2 {
			t.Fatal("eq lanes disagree between LT and GT variants")
		}
		for j := 0; j < 64; j++ {
			bit := uint64(1) << uint(j)
			if (lt&bit != 0) != (xs[j] < ys[j]) {
				t.Fatalf("slot %d lt: x=%d y=%d", j, xs[j], ys[j])
			}
			if (gt&bit != 0) != (xs[j] > ys[j]) {
				t.Fatalf("slot %d gt: x=%d y=%d", j, xs[j], ys[j])
			}
			if (eq&bit != 0) != (xs[j] == ys[j]) {
				t.Fatalf("slot %d eq: x=%d y=%d", j, xs[j], ys[j])
			}
		}
	}
}

func TestHBPEqualGroupLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	col := hbp.New(8, 4)
	vals := randValues(rng, 64, 8)
	col.Append(vals...)
	// Group 0 holds the high 4 bits. Check lanes for each bin value.
	for bin := uint64(0); bin < 16; bin++ {
		w := col.Word(0, 0, 0) // sub-segment 0
		lanes := HBPEqualGroupLanes(col, w, bin)
		for s := 0; s < col.FieldsPerWord(); s++ {
			// Tuple index: sub-segment 0, slot s.
			i := s * col.SubSegments()
			if i >= len(vals) {
				break
			}
			want := vals[i]>>4 == bin
			bit := uint64(1) << uint(s*col.FieldWidth()+col.Tau())
			if (lanes&bit != 0) != want {
				t.Fatalf("bin %d slot %d: value %d got %v", bin, s, vals[i], lanes&bit != 0)
			}
		}
	}
}

func TestScanSelectivityControl(t *testing.T) {
	// A LT-constant scan over uniform data should hit close to the target
	// selectivity — this is the generator contract the experiments rely on.
	rng := rand.New(rand.NewSource(35))
	k, n := 20, 1<<15
	vals := randValues(rng, n, k)
	col := vbp.Pack(vals, k, 4)
	cut := uint64(float64(word.LowMask(k)) * 0.3)
	bm := VBP(col, Predicate{Op: LT, A: cut})
	got := float64(bm.Count()) / float64(n)
	if got < 0.28 || got > 0.32 {
		t.Errorf("selectivity %f, want ~0.30", got)
	}
}

func BenchmarkVBPScanLT(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	vals := randValues(rng, 1<<16, 25)
	col := vbp.Pack(vals, 25, 4)
	p := Predicate{Op: LT, A: 1 << 20}
	b.SetBytes(int64(len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = VBP(col, p)
	}
}

func BenchmarkHBPScanLT(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	vals := randValues(rng, 1<<16, 25)
	col := hbp.Pack(vals, 25, hbp.DefaultTau(25))
	p := Predicate{Op: LT, A: 1 << 20}
	b.SetBytes(int64(len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HBP(col, p)
	}
}

// BenchmarkScanOps measures every operator on both layouts at the paper's
// default parameters — the full predicate surface of the substrate.
func BenchmarkScanOps(b *testing.B) {
	rng := rand.New(rand.NewSource(38))
	vals := randValues(rng, 1<<18, 25)
	vcol := vbp.Pack(vals, 25, 4)
	hcol := hbp.Pack(vals, 25, hbp.DefaultTau(25))
	preds := []Predicate{
		{Op: EQ, A: 1 << 20},
		{Op: NE, A: 1 << 20},
		{Op: LT, A: 1 << 24},
		{Op: GE, A: 1 << 24},
		{Op: Between, A: 1 << 20, B: 1 << 24},
	}
	for _, p := range preds {
		b.Run("VBP/"+p.Op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				VBP(vcol, p)
			}
		})
		b.Run("HBP/"+p.Op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				HBP(hcol, p)
			}
		})
	}
}
