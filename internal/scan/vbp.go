package scan

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
)

// VBP evaluates p over a VBP column and returns the dense filter bitmap.
//
// For each segment the comparison proceeds bit position by bit position
// (most significant first), word-group by word-group: lanes still equal so
// far are decided by the first differing bit, and the segment is abandoned
// early once every lane is decided (eq == 0) — the paper's §II-A early
// stop, which the word-group layout turns into skipped cache lines.
//
// VBPStats is the observable twin. The two keep separate loops on purpose:
// the counter accumulation measurably slows this hot loop, and the
// disabled-path guarantee (DESIGN.md §8) promises scans without collection
// cost exactly what they did before observability existed.
// TestVBPStatsMatchesVBP pins the twins to identical outputs.
func VBP(col *vbp.Column, p Predicate) *bitvec.Bitmap {
	p.check(col.K())
	if p.Op == Between {
		return vbpBetween(col, p.A, p.B)
	}
	k := col.K()
	groups := col.Groups()
	// cbits[p] is the constant's bit at position p spread to all 64 lanes.
	cbits := constLanesVBP(p.A, k)

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	for seg := 0; seg < nseg; seg++ {
		if lo, hi, ok := col.ZoneRange(seg); ok {
			if none, all := p.zoneDecision(lo, hi); none {
				continue // word already zero
			} else if all {
				out.SetWord(seg, ^uint64(0))
				continue
			}
		}
		st := state{eq: ^uint64(0)}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				w := gr.Words[base+b]
				c := cbits[gr.StartBit+b]
				// lanes where data bit 0, const bit 1 -> value < const.
				st.step(^w&c, w&^c, ^(w ^ c))
			}
			if st.eq == 0 {
				break
			}
		}
		out.SetWord(seg, st.result(p.Op, ^uint64(0)))
	}
	return out
}

// VBPStats is VBP with observability: the scan reports segments scanned
// vs zone-pruned and the packed words actually compared (net of early
// stops). Counting runs on local integers merged into es at the end. A
// nil es falls back to the uninstrumented VBP loop, so collection that
// is off costs nothing.
func VBPStats(col *vbp.Column, p Predicate, es *metrics.ExecStats) *bitvec.Bitmap {
	if es == nil {
		return VBP(col, p)
	}
	p.check(col.K())
	if p.Op == Between {
		return vbpBetweenStats(col, p.A, p.B, es)
	}
	k := col.K()
	groups := col.Groups()
	cbits := constLanesVBP(p.A, k)

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	var scanned, prunedNone, prunedAll, words uint64
	for seg := 0; seg < nseg; seg++ {
		if lo, hi, ok := col.ZoneRange(seg); ok {
			if none, all := p.zoneDecision(lo, hi); none {
				prunedNone++
				continue // word already zero
			} else if all {
				prunedAll++
				out.SetWord(seg, ^uint64(0))
				continue
			}
		}
		scanned++
		st := state{eq: ^uint64(0)}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				w := gr.Words[base+b]
				c := cbits[gr.StartBit+b]
				st.step(^w&c, w&^c, ^(w ^ c))
			}
			words += uint64(gr.Bits)
			if st.eq == 0 {
				break
			}
		}
		out.SetWord(seg, st.result(p.Op, ^uint64(0)))
	}
	es.SegmentsScanned += scanned
	es.SegmentsPrunedNone += prunedNone
	es.SegmentsPrunedAll += prunedAll
	es.WordsCompared += words
	return out
}

// vbpBetween evaluates A <= v <= B in a single pass, maintaining two staged
// comparisons (against A and against B) per segment. vbpBetweenStats is
// its counting twin.
func vbpBetween(col *vbp.Column, lo, hi uint64) *bitvec.Bitmap {
	k := col.K()
	groups := col.Groups()
	cLo := constLanesVBP(lo, k)
	cHi := constLanesVBP(hi, k)

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	for seg := 0; seg < nseg; seg++ {
		if zlo, zhi, ok := col.ZoneRange(seg); ok {
			p := Predicate{Op: Between, A: lo, B: hi}
			if none, all := p.zoneDecision(zlo, zhi); none {
				continue
			} else if all {
				out.SetWord(seg, ^uint64(0))
				continue
			}
		}
		sLo := state{eq: ^uint64(0)} // v versus lo
		sHi := state{eq: ^uint64(0)} // v versus hi
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				w := gr.Words[base+b]
				l, h := cLo[gr.StartBit+b], cHi[gr.StartBit+b]
				sLo.step(^w&l, w&^l, ^(w ^ l))
				sHi.step(^w&h, w&^h, ^(w ^ h))
			}
			if sLo.eq == 0 && sHi.eq == 0 {
				break
			}
		}
		ge := sLo.result(GE, ^uint64(0))
		le := sHi.result(LE, ^uint64(0))
		out.SetWord(seg, ge&le)
	}
	return out
}

func vbpBetweenStats(col *vbp.Column, lo, hi uint64, es *metrics.ExecStats) *bitvec.Bitmap {
	k := col.K()
	groups := col.Groups()
	cLo := constLanesVBP(lo, k)
	cHi := constLanesVBP(hi, k)

	out := bitvec.New(col.Len())
	nseg := col.NumSegments()
	var scanned, prunedNone, prunedAll, words uint64
	for seg := 0; seg < nseg; seg++ {
		if zlo, zhi, ok := col.ZoneRange(seg); ok {
			p := Predicate{Op: Between, A: lo, B: hi}
			if none, all := p.zoneDecision(zlo, zhi); none {
				prunedNone++
				continue
			} else if all {
				prunedAll++
				out.SetWord(seg, ^uint64(0))
				continue
			}
		}
		scanned++
		sLo := state{eq: ^uint64(0)}
		sHi := state{eq: ^uint64(0)}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				w := gr.Words[base+b]
				l, h := cLo[gr.StartBit+b], cHi[gr.StartBit+b]
				sLo.step(^w&l, w&^l, ^(w ^ l))
				sHi.step(^w&h, w&^h, ^(w ^ h))
			}
			words += uint64(gr.Bits)
			if sLo.eq == 0 && sHi.eq == 0 {
				break
			}
		}
		ge := sLo.result(GE, ^uint64(0))
		le := sHi.result(LE, ^uint64(0))
		out.SetWord(seg, ge&le)
	}
	es.SegmentsScanned += scanned
	es.SegmentsPrunedNone += prunedNone
	es.SegmentsPrunedAll += prunedAll
	es.WordsCompared += words
	return out
}

// constLanesVBP spreads each bit of the k-bit constant to a full word of
// lanes: entry p is all-ones iff bit p (0 = MSB) of c is set.
func constLanesVBP(c uint64, k int) []uint64 {
	lanes := make([]uint64, k)
	for p := 0; p < k; p++ {
		if c>>uint(k-1-p)&1 == 1 {
			lanes[p] = ^uint64(0)
		}
	}
	return lanes
}

// VBPSlotCompare runs the staged less-than/equal comparison between two
// segments given as word slices in VBP order (bit position p at index p,
// both of length k). It returns the lt and eq lane masks. It is the
// BIT-PARALLEL-LESSTHAN building block of SLOTMIN (Algorithm 2): lanes
// where x < y slot-wise.
func VBPSlotCompare(x, y []uint64) (lt, eq uint64) {
	st := state{eq: ^uint64(0)}
	for p := range x {
		st.step(^x[p]&y[p], x[p]&^y[p], ^(x[p] ^ y[p]))
		if st.eq == 0 {
			break
		}
	}
	return st.lt, st.eq
}

// VBPSlotCompareGT is the greater-than counterpart used by SLOTMAX.
func VBPSlotCompareGT(x, y []uint64) (gt, eq uint64) {
	st := state{eq: ^uint64(0)}
	for p := range x {
		st.step(^x[p]&y[p], x[p]&^y[p], ^(x[p] ^ y[p]))
		if st.eq == 0 {
			break
		}
	}
	return st.gt, st.eq
}
