package scan

import (
	"testing"
	"testing/quick"

	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Property tests: for quick-generated columns and constants, every
// bit-parallel scan must agree tuple-for-tuple with Predicate.Matches.

type scanInput struct {
	K    int
	Tau  int
	Vals []uint64
	A, B uint64
}

// normalize maps quick's raw generated values into a valid scan input.
func normalize(kRaw, tauRaw uint8, raw []uint64, a, b uint64) scanInput {
	k := int(kRaw)%64 + 1
	tau := int(tauRaw)%k + 1
	if tau > word.MaxTau {
		tau = word.MaxTau
	}
	vals := make([]uint64, len(raw))
	for i, v := range raw {
		vals[i] = v & word.LowMask(k)
	}
	a &= word.LowMask(k)
	b &= word.LowMask(k)
	if a > b {
		a, b = b, a
	}
	return scanInput{K: k, Tau: tau, Vals: vals, A: a, B: b}
}

func predicates(in scanInput) []Predicate {
	return []Predicate{
		{Op: EQ, A: in.A}, {Op: NE, A: in.A},
		{Op: LT, A: in.A}, {Op: LE, A: in.A},
		{Op: GT, A: in.A}, {Op: GE, A: in.A},
		{Op: Between, A: in.A, B: in.B},
	}
}

func TestPropVBPScanMatchesScalar(t *testing.T) {
	f := func(kRaw, tauRaw uint8, raw []uint64, a, b uint64) bool {
		in := normalize(kRaw, tauRaw, raw, a, b)
		col := vbp.Pack(in.Vals, in.K, in.Tau)
		for _, p := range predicates(in) {
			bm := VBP(col, p)
			for i, v := range in.Vals {
				if bm.Get(i) != p.Matches(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropHBPScanMatchesScalar(t *testing.T) {
	f := func(kRaw, tauRaw uint8, raw []uint64, a, b uint64) bool {
		in := normalize(kRaw, tauRaw, raw, a, b)
		col := hbp.Pack(in.Vals, in.K, in.Tau)
		for _, p := range predicates(in) {
			bm := HBP(col, p)
			for i, v := range in.Vals {
				if bm.Get(i) != p.Matches(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropScanComplementLaws(t *testing.T) {
	// EQ and NE partition the rows; LT|EQ == LE; GT|EQ == GE.
	f := func(kRaw, tauRaw uint8, raw []uint64, a uint64) bool {
		in := normalize(kRaw, tauRaw, raw, a, a)
		col := vbp.Pack(in.Vals, in.K, in.Tau)
		n := len(in.Vals)
		eq := VBP(col, Predicate{Op: EQ, A: in.A})
		ne := VBP(col, Predicate{Op: NE, A: in.A})
		lt := VBP(col, Predicate{Op: LT, A: in.A})
		le := VBP(col, Predicate{Op: LE, A: in.A})
		gt := VBP(col, Predicate{Op: GT, A: in.A})
		ge := VBP(col, Predicate{Op: GE, A: in.A})
		if eq.Count()+ne.Count() != n {
			return false
		}
		if lt.Count()+eq.Count() != le.Count() {
			return false
		}
		if gt.Count()+eq.Count() != ge.Count() {
			return false
		}
		return lt.Count()+gt.Count()+eq.Count() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropBetweenEqualsRangeConjunction(t *testing.T) {
	// BETWEEN(a,b) == GE(a) AND LE(b), for both layouts.
	f := func(kRaw, tauRaw uint8, raw []uint64, a, b uint64) bool {
		in := normalize(kRaw, tauRaw, raw, a, b)
		vcol := vbp.Pack(in.Vals, in.K, in.Tau)
		hcol := hbp.Pack(in.Vals, in.K, in.Tau)
		vbw := VBP(vcol, Predicate{Op: Between, A: in.A, B: in.B})
		vconj := VBP(vcol, Predicate{Op: GE, A: in.A}).And(VBP(vcol, Predicate{Op: LE, A: in.B}))
		hbw := HBP(hcol, Predicate{Op: Between, A: in.A, B: in.B})
		hconj := HBP(hcol, Predicate{Op: GE, A: in.A}).And(HBP(hcol, Predicate{Op: LE, A: in.B}))
		for i := range in.Vals {
			if vbw.Get(i) != vconj.Get(i) || hbw.Get(i) != hconj.Get(i) || vbw.Get(i) != hbw.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
