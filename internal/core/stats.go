package core

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
)

// Observability helpers: the aggregation kernels' work is fully
// determined by the layout geometry and which segments hold selected
// tuples, so the drivers compute their stats analytically with the
// functions below instead of instrumenting the kernel loops. That keeps
// the hot paths byte-identical whether collection is on or off, and
// makes the counts independent of thread count and of the 64-bit vs
// wide kernels (both read the same logical words).

// VBPLiveSegments counts the segments in [segLo, segHi) whose filter
// word selects at least one tuple — the segments a dense VBP kernel
// (SUM/MIN/MAX fold) processes; each costs k packed words.
func VBPLiveSegments(f *bitvec.Bitmap, segLo, segHi int) uint64 {
	var n uint64
	for seg := segLo; seg < segHi; seg++ {
		if f.Word(seg) != 0 {
			n++
		}
	}
	return n
}

// VBPLiveCandidates counts the segments in [segLo, segHi) with at least
// one live candidate — the segments one VBP radix round reads (one
// bit-position word each in the count pass, one more in the refine
// pass).
func VBPLiveCandidates(v []uint64, segLo, segHi int) uint64 {
	var n uint64
	for seg := segLo; seg < segHi; seg++ {
		if v[seg] != 0 {
			n++
		}
	}
	return n
}

// HBPLiveWindows counts, over segments [segLo, segHi) of an HBP column,
// the segments whose filter window selects at least one tuple and the
// sub-segments holding at least one selected tuple. A dense HBP kernel
// reads NumGroups packed words per live sub-segment.
func HBPLiveWindows(col *hbp.Column, f *bitvec.Bitmap, segLo, segHi int) (segs, subs uint64) {
	nsub := col.SubSegments()
	for seg := segLo; seg < segHi; seg++ {
		fw := segWindow(f, col, seg)
		if fw == 0 {
			continue
		}
		segs++
		for t := 0; t < nsub; t++ {
			if col.SubSegmentDelims(fw, t) != 0 {
				subs++
			}
		}
	}
	return segs, subs
}

// HBPLiveCandidateSubs counts the sub-segments in [segLo, segHi) with at
// least one live candidate — what one HBP radix round reads (one
// word-group word each in the histogram pass, one more in the refine
// pass).
func HBPLiveCandidateSubs(col *hbp.Column, v []uint64, segLo, segHi int) uint64 {
	nsub := col.SubSegments()
	var subs uint64
	for seg := segLo; seg < segHi; seg++ {
		fw := v[seg]
		if fw == 0 {
			continue
		}
		for t := 0; t < nsub; t++ {
			if col.SubSegmentDelims(fw, t) != 0 {
				subs++
			}
		}
	}
	return subs
}
