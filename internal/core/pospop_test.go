package core

import (
	"math/big"
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// The carry-save accumulators must be invisible: every routed kernel
// returns bit-identical results with PosPopEnabled on and off, and both
// agree with a big.Int scalar loop. Columns deliberately end mid-block
// (n not a multiple of 8·64) so partial trailing blocks and the run
// drains are always exercised.

func withPosPop(t *testing.T, on bool, f func()) {
	t.Helper()
	old := PosPopEnabled
	PosPopEnabled = on
	defer func() { PosPopEnabled = old }()
	f()
}

func TestPosPopSumToggleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int{1, 7, 25, 40, 63, 64} {
		for _, n := range []int{1, 64, 127, 64*8 + 1, 977, 64 * 21} {
			vals := make([]uint64, n)
			f := bitvec.New(n)
			want := new(big.Int)
			for i := range vals {
				vals[i] = rng.Uint64() & word.LowMask(k)
				if rng.Intn(3) != 0 {
					f.Set(i)
					want.Add(want, new(big.Int).SetUint64(vals[i]))
				}
			}
			tau := 4
			if tau > k {
				tau = k
			}
			col := vbp.Pack(vals, k, tau)
			nseg := col.NumSegments()

			var legacy, pospop uint64
			withPosPop(t, false, func() { legacy = VBPSumRange(col, f, 0, nseg) })
			withPosPop(t, true, func() { pospop = VBPSumRange(col, f, 0, nseg) })
			if legacy != pospop {
				t.Fatalf("k=%d n=%d: VBPSumRange legacy %d, pospop %d", k, n, legacy, pospop)
			}
			if !SumOverflowPossible(k, n) && want.Uint64() != pospop {
				t.Fatalf("k=%d n=%d: VBPSumRange %d, big.Int %s", k, n, pospop, want)
			}

			var lhi, llo, phi, plo uint64
			withPosPop(t, false, func() { lhi, llo = VBPSumRange128(col, f, 0, nseg) })
			withPosPop(t, true, func() { phi, plo = VBPSumRange128(col, f, 0, nseg) })
			if lhi != phi || llo != plo {
				t.Fatalf("k=%d n=%d: VBPSumRange128 legacy (%d,%d), pospop (%d,%d)", k, n, lhi, llo, phi, plo)
			}
			if big128(phi, plo).Cmp(want) != 0 {
				t.Fatalf("k=%d n=%d: VBPSumRange128 %s, big.Int %s", k, n, big128(phi, plo), want)
			}
		}
	}
}

func TestPosPopFusedToggleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const k, n = 25, 64*13 + 17
	// Sorted values give the predicate zones real pruning/all-match
	// decisions, so the cache-served route and mid-stream continues hit.
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
	}
	for _, sorted := range []bool{false, true} {
		if sorted {
			for i := 1; i < n; i++ {
				if vals[i] < vals[i-1] {
					vals[i], vals[i-1] = vals[i-1], vals[i]
				}
			}
		}
		col := vbp.Pack(vals, k, 4)
		cut := word.LowMask(k) / 3 * 2
		preds := []scan.WindowPred{scan.NewVBPWindowPred(col, scan.Predicate{Op: scan.LT, A: cut})}
		want := new(big.Int)
		var wantCnt uint64
		for _, v := range vals {
			if v < cut {
				want.Add(want, new(big.Int).SetUint64(v))
				wantCnt++
			}
		}

		var lSum, lCnt, pSum, pCnt uint64
		var lst, pst FusedStats
		withPosPop(t, false, func() { lSum, lCnt = VBPFusedSumCount(col, preds, 0, col.NumSegments(), &lst) })
		withPosPop(t, true, func() { pSum, pCnt = VBPFusedSumCount(col, preds, 0, col.NumSegments(), &pst) })
		if lSum != pSum || lCnt != pCnt {
			t.Fatalf("sorted=%v: fused legacy (%d,%d), pospop (%d,%d)", sorted, lSum, lCnt, pSum, pCnt)
		}
		if lst != pst {
			t.Fatalf("sorted=%v: FusedStats differ across toggle: %+v vs %+v", sorted, lst, pst)
		}
		if pSum != want.Uint64() || pCnt != wantCnt {
			t.Fatalf("sorted=%v: fused (%d,%d), scalar (%s,%d)", sorted, pSum, pCnt, want, wantCnt)
		}

		var hi, lo, cnt uint64
		var st FusedStats
		withPosPop(t, true, func() { hi, lo, cnt = VBPFusedSumCount128(col, preds, 0, col.NumSegments(), &st) })
		if big128(hi, lo).Cmp(want) != 0 || cnt != wantCnt {
			t.Fatalf("sorted=%v: fused128 (%s,%d), scalar (%s,%d)", sorted, big128(hi, lo), cnt, want, wantCnt)
		}

		var c1, c2 uint64
		var cst1, cst2 FusedStats
		withPosPop(t, false, func() { c1 = VBPFusedCount(col, preds, 0, col.NumSegments(), &cst1) })
		withPosPop(t, true, func() { c2 = VBPFusedCount(col, preds, 0, col.NumSegments(), &cst2) })
		if c1 != c2 || c2 != wantCnt || cst1 != cst2 {
			t.Fatalf("sorted=%v: fused count legacy %d, pospop %d, want %d", sorted, c1, c2, wantCnt)
		}
	}
}

// TestPosPopGroupSumToggle drives the direct grouped bank kernel with
// single-live-group runs (sorted group assignment), group changes, and
// interleaved multi-group segments, comparing toggle sides and big.Int.
func TestPosPopGroupSumToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const k, n, G = 30, 64*19 + 31, 5
	vals := make([]uint64, n)
	gis := make([]int, n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
		switch {
		case i < n/2:
			gis[i] = i * G / n // long sorted runs → run accumulator
		default:
			gis[i] = rng.Intn(G) // scattered → multi-live segments
		}
	}
	col := vbp.Pack(vals, k, 4)
	sels := make([]*bitvec.Bitmap, G)
	for g := range sels {
		sels[g] = bitvec.New(n)
	}
	want := make([]*big.Int, G)
	for g := range want {
		want[g] = new(big.Int)
	}
	for i, v := range vals {
		if rng.Intn(8) == 0 {
			continue // holes keep some groups dead per segment
		}
		sels[gis[i]].Set(i)
		want[gis[i]].Add(want[gis[i]], new(big.Int).SetUint64(v))
	}

	run := func() ([]uint64, []uint64) {
		bSums := make([]uint64, G*k)
		his := make([]uint64, G)
		los := make([]uint64, G)
		var st GroupStats
		VBPGroupSumRange128(col, sels, 0, col.NumSegments(), bSums, his, los, &st)
		VBPGroupSumFinish(k, bSums, his, los)
		return his, los
	}
	var lhis, llos, phis, plos []uint64
	withPosPop(t, false, func() { lhis, llos = run() })
	withPosPop(t, true, func() { phis, plos = run() })
	for g := 0; g < G; g++ {
		if lhis[g] != phis[g] || llos[g] != plos[g] {
			t.Fatalf("group %d: legacy (%d,%d), pospop (%d,%d)", g, lhis[g], llos[g], phis[g], plos[g])
		}
		if big128(phis[g], plos[g]).Cmp(want[g]) != 0 {
			t.Fatalf("group %d: banked %s, big.Int %s", g, big128(phis[g], plos[g]), want[g])
		}
	}
}

// TestPosPopHashSumRunsToggle builds a run list mixing single-entry runs
// (long same-group stretches and group flips, which exercise the drain)
// with multi-entry runs, on both the k ≤ 57 and the wide entry paths.
func TestPosPopHashSumRunsToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, k := range []int{25, 61} {
		const nseg, G = 37, 6
		vals := make([]uint64, nseg*64)
		for i := range vals {
			vals[i] = rng.Uint64() & word.LowMask(k)
		}
		col := vbp.Pack(vals, k, 4)
		se := &SegEntries{Start: []int32{0}}
		want := make([]*big.Int, G)
		for g := range want {
			want[g] = new(big.Int)
		}
		for seg := 0; seg < nseg; seg++ {
			var ents int
			switch seg % 5 {
			case 0, 1, 2: // single-entry runs, group changes every few segs
				gi := int32(seg / 3 % G)
				w := rng.Uint64()
				if seg%7 == 0 {
					w = word.LowMask(64) // whole-segment word (cache-serve shape)
				}
				se.GI = append(se.GI, gi)
				se.W = append(se.W, w)
				for j := 0; j < 64; j++ {
					if w>>uint(j)&1 == 1 {
						want[gi].Add(want[gi], new(big.Int).SetUint64(vals[seg*64+j]))
					}
				}
				ents = 1
			case 3: // dead segment
				continue
			default: // multi-entry run with disjoint words
				lo := rng.Uint64()
				for e, gi := range []int32{1, 4} {
					w := lo
					if e == 1 {
						w = ^lo
					}
					se.GI = append(se.GI, gi)
					se.W = append(se.W, w)
					for j := 0; j < 64; j++ {
						if w>>uint(j)&1 == 1 {
							want[gi].Add(want[gi], new(big.Int).SetUint64(vals[seg*64+j]))
						}
					}
				}
				ents = 2
			}
			se.Segs = append(se.Segs, int32(seg))
			se.Start = append(se.Start, se.Start[len(se.Start)-1]+int32(ents))
		}

		run := func() ([]uint64, []uint64) {
			his := make([]uint64, G)
			los := make([]uint64, G)
			var st GroupStats
			VBPHashSumRuns(col, se, 0, se.NumRuns(), his, los, &st)
			return his, los
		}
		var lhis, llos, phis, plos []uint64
		withPosPop(t, false, func() { lhis, llos = run() })
		withPosPop(t, true, func() { phis, plos = run() })
		for g := 0; g < G; g++ {
			if lhis[g] != phis[g] || llos[g] != plos[g] {
				t.Fatalf("k=%d group %d: legacy (%d,%d), pospop (%d,%d)", k, g, lhis[g], llos[g], phis[g], plos[g])
			}
			if big128(phis[g], plos[g]).Cmp(want[g]) != 0 {
				t.Fatalf("k=%d group %d: hashed %s, big.Int %s", k, g, big128(phis[g], plos[g]), want[g])
			}
		}
	}
}
