package core

import (
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Positional-popcount block accumulators (DESIGN.md §14). VBP SUM is a
// positional population count — sum = Σ_p popcount(plane_p & filter) <<
// (k-1-p) — and the kernels here replace the per-word POPCNT of that
// inner product with a Harley–Seal carry-save tree: filter-masked plane
// words buffer up in blocks of posPopBlock segments, each block folds
// through an unrolled word.CSA tree (the CSA8 shape, inlined) into
// persistent bit-sliced counters (ones/twos/fours per plane), and a
// POPCNT is paid only for the weight-8 overflow word of each block plus
// one residual fold per plane at the end. Zero words are
// carry-save no-ops, so partial trailing blocks zero-pad exactly.
//
// The accumulators change only the order in which exact per-plane counts
// are summed, never the counts themselves, so the 128-bit overflow
// contract (SumOverflowPossible, sumCacheExactK) is untouched: checked
// kernels feed the same bSum banks and combine with addShift128 as before.

// PosPopEnabled routes the VBP SUM/COUNT kernels through the carry-save
// accumulators. The legacy per-word-popcount bodies stay available for
// A/B measurement (bpagg-bench -experiment sum-kernels) and differential
// tests; flipping the toggle never changes results. Read once at kernel
// entry — not safe to flip mid-query.
var PosPopEnabled = true

// posPopBlock is the carry-save block span: how many (segment, filter)
// pairs buffer before each plane folds them through one CSA8 step.
const posPopBlock = 8

// vbpBlockSum accumulates per-plane popcounts of filter-masked segments
// into a caller-owned bSum bank through the carry-save tree. Segments
// arrive via push; finish folds residuals and must run before bSum is
// combined. The flush gather runs over the flat per-plane view so the
// ragged bit-group structure costs no per-block slice setup.
type vbpBlockSum struct {
	k                 int
	ones, twos, fours []uint64  // per-plane carry-save counters
	bSum              []uint64  // caller's per-plane totals
	pl                vbpPlanes // flat plane view, built on first flush
	segs              [posPopBlock]int
	fws               [posPopBlock]uint64
	n                 int
}

func newVBPBlockSum(k int, bSum []uint64) *vbpBlockSum {
	backing := make([]uint64, 3*k)
	return &vbpBlockSum{
		k:    k,
		ones: backing[:k], twos: backing[k : 2*k], fours: backing[2*k:],
		bSum: bSum,
	}
}

// push buffers one live segment's filter word, folding a block when full.
func (a *vbpBlockSum) push(col *vbp.Column, seg int, fw uint64) {
	a.segs[a.n], a.fws[a.n] = seg, fw
	a.n++
	if a.n == posPopBlock {
		a.flush(col)
	}
}

// flush folds the buffered block (zero-padded when partial) into the
// carry-save counters, paying one POPCNT per plane for the eights tier.
// Partial blocks alias their idle lanes to lane 0 with an all-zero filter
// (a carry-save no-op), so the body stays branch-free. The gather runs
// over the flat per-plane view (one multiply-indexed load per lane) with
// the eight lane indices and filters held in locals, feeding a fully
// unrolled CSA tree — no per-group slice setup, which matters when tau
// keeps the bit-groups shallow.
func (a *vbpBlockSum) flush(col *vbp.Column) {
	if a.pl.words == nil {
		a.pl = newVBPPlanes(col)
	}
	for i := a.n; i < posPopBlock; i++ {
		a.segs[i], a.fws[i] = a.segs[0], 0
	}
	g0, g1, g2, g3 := a.segs[0], a.segs[1], a.segs[2], a.segs[3]
	g4, g5, g6, g7 := a.segs[4], a.segs[5], a.segs[6], a.segs[7]
	f0, f1, f2, f3 := a.fws[0], a.fws[1], a.fws[2], a.fws[3]
	f4, f5, f6, f7 := a.fws[4], a.fws[5], a.fws[6], a.fws[7]
	pl := &a.pl
	for p := 0; p < a.k; p++ {
		ws, st, off := pl.words[p], pl.stride[p], pl.off[p]
		w0, w1 := ws[g0*st+off]&f0, ws[g1*st+off]&f1
		w2, w3 := ws[g2*st+off]&f2, ws[g3*st+off]&f3
		w4, w5 := ws[g4*st+off]&f4, ws[g5*st+off]&f5
		w6, w7 := ws[g6*st+off]&f6, ws[g7*st+off]&f7
		o, t, fr := a.ones[p], a.twos[p], a.fours[p]
		var tA, tB, fA, fB, eights uint64
		o, tA = word.CSA(o, w0, w1)
		o, tB = word.CSA(o, w2, w3)
		t, fA = word.CSA(t, tA, tB)
		o, tA = word.CSA(o, w4, w5)
		o, tB = word.CSA(o, w6, w7)
		t, fB = word.CSA(t, tA, tB)
		fr, eights = word.CSA(fr, fA, fB)
		a.ones[p], a.twos[p], a.fours[p] = o, t, fr
		if eights != 0 {
			a.bSum[p] += uint64(bits.OnesCount64(eights)) << 3
		}
	}
	a.n = 0
}

// finish folds any partial block plus the residual counters into bSum and
// resets the accumulator.
func (a *vbpBlockSum) finish(col *vbp.Column) {
	if a.n > 0 {
		a.flush(col)
	}
	for p := 0; p < a.k; p++ {
		a.bSum[p] += word.CSAFold(a.ones[p], a.twos[p], a.fours[p])
		a.ones[p], a.twos[p], a.fours[p] = 0, 0, 0
	}
}

// vbpBSumRange fills the per-plane popcount bank for segments
// [segLo, segHi) — the shared inner product of VBPSumRange and
// VBPSumRange128, which differ only in how they combine bSum.
//
// The carry-save branch skips the push/flush buffering entirely: the
// range is consecutive, so full blocks of posPopBlock segments feed the
// CSA tree directly (a zero filter word is a carry-save no-op, so only
// all-zero blocks are skipped), and lane indices advance by the plane
// stride instead of being gathered.
func vbpBSumRange(col *vbp.Column, f *bitvec.Bitmap, bSum []uint64, segLo, segHi int) {
	if PosPopEnabled {
		k := col.K()
		pl := newVBPPlanes(col)
		backing := make([]uint64, 3*k)
		ones, twos, fours := backing[:k], backing[k:2*k], backing[2*k:]
		seg := segLo
		for ; seg+posPopBlock <= segHi; seg += posPopBlock {
			f0, f1, f2, f3 := f.Word(seg), f.Word(seg+1), f.Word(seg+2), f.Word(seg+3)
			f4, f5, f6, f7 := f.Word(seg+4), f.Word(seg+5), f.Word(seg+6), f.Word(seg+7)
			if f0|f1|f2|f3|f4|f5|f6|f7 == 0 {
				continue
			}
			for p := 0; p < k; p++ {
				ws, st, off := pl.words[p], pl.stride[p], pl.off[p]
				i0 := seg*st + off
				i1, i2, i3 := i0+st, i0+2*st, i0+3*st
				i4, i5, i6, i7 := i0+4*st, i0+5*st, i0+6*st, i0+7*st
				w0, w1, w2, w3 := ws[i0]&f0, ws[i1]&f1, ws[i2]&f2, ws[i3]&f3
				w4, w5, w6, w7 := ws[i4]&f4, ws[i5]&f5, ws[i6]&f6, ws[i7]&f7
				o, t, fr := ones[p], twos[p], fours[p]
				var tA, tB, fA, fB, eights uint64
				o, tA = word.CSA(o, w0, w1)
				o, tB = word.CSA(o, w2, w3)
				t, fA = word.CSA(t, tA, tB)
				o, tA = word.CSA(o, w4, w5)
				o, tB = word.CSA(o, w6, w7)
				t, fB = word.CSA(t, tA, tB)
				fr, eights = word.CSA(fr, fA, fB)
				ones[p], twos[p], fours[p] = o, t, fr
				if eights != 0 {
					bSum[p] += uint64(bits.OnesCount64(eights)) << 3
				}
			}
		}
		for ; seg < segHi; seg++ {
			fw := f.Word(seg)
			if fw == 0 {
				continue
			}
			for p := 0; p < k; p++ {
				bSum[p] += uint64(bits.OnesCount64(pl.word(p, seg) & fw))
			}
		}
		for p := 0; p < k; p++ {
			bSum[p] += word.CSAFold(ones[p], twos[p], fours[p])
		}
		return
	}
	groups := col.Groups()
	for g := range groups {
		gr := &groups[g]
		for seg := segLo; seg < segHi; seg++ {
			fw := f.Word(seg)
			if fw == 0 {
				continue
			}
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				bSum[gr.StartBit+b] += uint64(bits.OnesCount64(gr.Words[base+b] & fw))
			}
		}
	}
}

// vbpRunSum is the grouped-bank variant of vbpBlockSum: it carry-saves
// runs of segments that all belong to ONE group (the dominant shape in
// sorted and hash-partitioned data, where most segments have a single
// live group), draining per-plane counts to a sink callback whenever the
// group changes. Multi-group segments don't fit per-group carry state —
// callers drain and fall back to the per-word loop for those. Plane reads
// go through the vbpPlanes view shared with the partition kernels.
type vbpRunSum struct {
	k                       int
	gi                      int // owning group of the buffered run; -1 idle
	ones, twos, fours, bSum []uint64
	segs                    [posPopBlock]int
	fws                     [posPopBlock]uint64
	n                       int
}

func newVBPRunSum(k int) *vbpRunSum {
	backing := make([]uint64, 4*k)
	return &vbpRunSum{
		k: k, gi: -1,
		ones: backing[:k], twos: backing[k : 2*k],
		fours: backing[2*k : 3*k], bSum: backing[3*k:],
	}
}

// push buffers one (segment, selection word) pair for group gi, draining
// the previous group's counts first when the group changes.
func (a *vbpRunSum) push(pl *vbpPlanes, gi, seg int, fw uint64, sink func(gi, p int, c uint64)) {
	if gi != a.gi {
		a.drain(pl, sink)
		a.gi = gi
	}
	a.segs[a.n], a.fws[a.n] = seg, fw
	a.n++
	if a.n == posPopBlock {
		a.flush(pl)
	}
}

func (a *vbpRunSum) flush(pl *vbpPlanes) {
	for i := a.n; i < posPopBlock; i++ {
		a.segs[i], a.fws[i] = a.segs[0], 0
	}
	g0, g1, g2, g3 := a.segs[0], a.segs[1], a.segs[2], a.segs[3]
	g4, g5, g6, g7 := a.segs[4], a.segs[5], a.segs[6], a.segs[7]
	f0, f1, f2, f3 := a.fws[0], a.fws[1], a.fws[2], a.fws[3]
	f4, f5, f6, f7 := a.fws[4], a.fws[5], a.fws[6], a.fws[7]
	for p := 0; p < a.k; p++ {
		ws, st, off := pl.words[p], pl.stride[p], pl.off[p]
		w0, w1 := ws[g0*st+off]&f0, ws[g1*st+off]&f1
		w2, w3 := ws[g2*st+off]&f2, ws[g3*st+off]&f3
		w4, w5 := ws[g4*st+off]&f4, ws[g5*st+off]&f5
		w6, w7 := ws[g6*st+off]&f6, ws[g7*st+off]&f7
		o, t, fr := a.ones[p], a.twos[p], a.fours[p]
		var tA, tB, fA, fB, eights uint64
		o, tA = word.CSA(o, w0, w1)
		o, tB = word.CSA(o, w2, w3)
		t, fA = word.CSA(t, tA, tB)
		o, tA = word.CSA(o, w4, w5)
		o, tB = word.CSA(o, w6, w7)
		t, fB = word.CSA(t, tA, tB)
		fr, eights = word.CSA(fr, fA, fB)
		a.ones[p], a.twos[p], a.fours[p] = o, t, fr
		if eights != 0 {
			a.bSum[p] += uint64(bits.OnesCount64(eights)) << 3
		}
	}
	a.n = 0
}

// drain flushes the buffered run and hands each plane's nonzero count to
// sink(gi, p, count), then goes idle. Safe to call when already idle.
func (a *vbpRunSum) drain(pl *vbpPlanes, sink func(gi, p int, c uint64)) {
	if a.gi < 0 {
		return
	}
	if a.n > 0 {
		a.flush(pl)
	}
	for p := 0; p < a.k; p++ {
		if c := a.bSum[p] + word.CSAFold(a.ones[p], a.twos[p], a.fours[p]); c != 0 {
			sink(a.gi, p, c)
		}
		a.ones[p], a.twos[p], a.fours[p], a.bSum[p] = 0, 0, 0, 0
	}
	a.gi = -1
}
