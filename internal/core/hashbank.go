package core

import (
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Hash-banked grouped partition (DESIGN.md §12): the tier that takes over
// when the direct-mapped GroupBank overflows its 10-bit key width or
// MaxGroups budget. Each worker banks per-key selection words into its own
// open-addressing flat hash table; keys are packed composite codes
// (per-column shift/width metadata lives in the caller), and the entry
// payload is a sparse (segment, word) run list rather than the direct
// tier's dense per-segment array, so memory is proportional to the words
// actually banked, not keys × segments. The parallel driver merges the
// per-worker tables by sorted key order, which keeps grouped results
// bit-identical across thread counts.

// MaxHashGroups bounds the distinct keys the hash-banked tier will
// discover before giving up. Past this cardinality per-group state (keys,
// counts, 128-bit accumulators) dominates the working set and the legacy
// per-group walk is no worse; the limit is an engine ceiling, not a table
// capacity — the tables grow incrementally up to it.
const MaxHashGroups = 1 << 20

// SegWord is one banked selection word: the filter bits of key's rows in
// window Seg of the grouping column's segmentation.
type SegWord struct {
	Seg int32
	W   uint64
}

// HashBank is one worker's open-addressing key table: linear probing over
// a power-of-two slot array (Fibonacci hashing picks the home slot),
// growing incrementally at 50% load. Keys holds the discovered keys in
// insertion order; Ents[i] is key Keys[i]'s (segment, word) run list,
// ascending by segment. Probes counts slot inspections and Growths table
// doublings — the raw material of the HashProbes/HashGrowths ExecStats.
// BankWords counts banked (key, segment) words, the bank's real memory
// footprint (same meaning as GroupBank.BankWords).
type HashBank struct {
	Keys      []uint64
	Ents      [][]SegWord
	Probes    uint64
	Growths   uint64
	BankWords uint64
	table     []int32 // slot → key index + 1; 0 = empty
	shift     uint    // 64 - log2(len(table))
	limit     int
}

// hashBankMinCap is the initial slot count; small enough that a
// low-cardinality partition stays cache-resident, large enough that
// typical segments insert without growing.
const hashBankMinCap = 64

// fibMul is the 64-bit Fibonacci hashing multiplier (2^64 / φ): the high
// bits of key*fibMul spread consecutive dictionary codes — the common
// case — across the table instead of clustering them.
const fibMul = 0x9E3779B97F4A7C15

// NewHashBank returns an empty bank that will refuse the limit+1-th
// distinct key. Callers pass MaxHashGroups in production; tests pass tiny
// budgets to exercise the cardinality fallback cheaply.
func NewHashBank(limit int) *HashBank {
	return &HashBank{
		table: make([]int32, hashBankMinCap),
		shift: 64 - uint(bits.TrailingZeros64(hashBankMinCap)),
		limit: limit,
	}
}

// find probes for key and returns its slot plus the key index, or -1 when
// absent (the slot is then the insertion point).
func (b *HashBank) find(key uint64) (int, int) {
	mask := uint64(len(b.table) - 1)
	i := (key * fibMul) >> b.shift
	for {
		b.Probes++
		ki := b.table[i]
		if ki == 0 {
			return int(i), -1
		}
		if b.Keys[ki-1] == key {
			return int(i), int(ki - 1)
		}
		i = (i + 1) & mask
	}
}

// grow doubles the slot array and rehashes every key.
func (b *HashBank) grow() {
	b.Growths++
	old := b.table
	b.table = make([]int32, len(old)*2)
	b.shift--
	mask := uint64(len(b.table) - 1)
	for _, ki := range old {
		if ki == 0 {
			continue
		}
		i := (b.Keys[ki-1] * fibMul) >> b.shift
		for b.table[i] != 0 {
			i = (i + 1) & mask
		}
		b.table[i] = ki
	}
}

// Bank merges selection word w into key's run list for window seg,
// discovering the key on first use. It reports false when the bank is at
// its key budget — the hash tier's ErrGroupCardinality signal. The
// partition kernels visit segments in ascending order, so a repeat
// banking of the last (key, segment) pair ORs in place; HBP produces one
// word per (sub-segment, code) peel and relies on this.
func (b *HashBank) Bank(key uint64, seg int32, w uint64) bool {
	slot, ki := b.find(key)
	if ki < 0 {
		if len(b.Keys) >= b.limit {
			return false
		}
		if 2*(len(b.Keys)+1) > len(b.table) {
			b.grow()
			slot, _ = b.find(key)
		}
		b.Keys = append(b.Keys, key)
		b.Ents = append(b.Ents, nil)
		ki = len(b.Keys) - 1
		b.table[slot] = int32(ki + 1)
	}
	es := b.Ents[ki]
	if n := len(es); n > 0 && es[n-1].Seg == seg {
		es[n-1].W |= w
		return true
	}
	b.Ents[ki] = append(es, SegWord{Seg: seg, W: w})
	b.BankWords++
	return true
}

// Lookup returns key's run list without discovering it.
func (b *HashBank) Lookup(key uint64) ([]SegWord, bool) {
	if _, ki := b.find(key); ki >= 0 {
		return b.Ents[ki], true
	}
	return nil, false
}

// RewindowSegWords converts a run list from vpsFrom-value windows to
// vpsTo-value windows over the same row space. Composite-key refinement
// and the banked aggregate kernels both index windows in a specific
// column's segmentation; when two columns disagree (HBP's
// values-per-segment depends on its bit-group size), the entries are
// re-windowed rather than falling back to the legacy walk. Input runs
// ascend by segment, so output runs ascend too and same-window spill from
// adjacent sources merges into the previous run.
func RewindowSegWords(es []SegWord, vpsFrom, vpsTo int) []SegWord {
	if vpsFrom == vpsTo {
		return es
	}
	out := make([]SegWord, 0, len(es)+1)
	for _, e := range es {
		base := int(e.Seg) * vpsFrom
		for m := base / vpsTo; m*vpsTo < base+vpsFrom; m++ {
			d := m*vpsTo - base
			var w uint64
			if d >= 0 {
				w = e.W >> uint(d)
			} else {
				w = e.W << uint(-d)
			}
			w &= word.LowMask(vpsTo)
			if w == 0 {
				continue
			}
			if n := len(out); n > 0 && out[n-1].Seg == int32(m) {
				out[n-1].W |= w
				continue
			}
			out = append(out, SegWord{Seg: int32(m), W: w})
		}
	}
	return out
}

// vbpSplitSeg splits one segment's selection word w into per-code words,
// writing (code, word) pairs into outP/outW and returning the pair count
// (≤ 64 — a segment holds at most 64 values). It is the unit step shared
// by the first-column hash partition and composite-key refinement: the
// same zone shortcuts as the direct kernel apply — a single-code segment
// is served without touching a packed word, and the codes' shared zone
// prefix skips the top planes of the descent. Stats follow the DESIGN.md
// §8 analytic conventions of VBPGroupPartitionRange.
func vbpSplitSeg(col *vbp.Column, pl *vbpPlanes, k, seg int, w uint64, outP, outW *[64]uint64, st *GroupStats) int {
	zlo, zhi, zok := col.ZoneRange(seg)
	if zok && zlo == zhi {
		outP[0], outW[0] = zlo, w
		st.CacheServed++
		return 1
	}
	if !zok {
		zlo, zhi = 0, word.LowMask(k)
	}
	shared := bits.LeadingZeros64(zlo^zhi) - (64 - k)
	if shared < 0 {
		shared = 0
	}
	st.Segments++
	st.Words += uint64(k - shared)
	var bufP, bufW [2][64]uint64
	curP, nxtP := bufP[0][:], bufP[1][:]
	curW, nxtW := bufW[0][:], bufW[1][:]
	curP[0] = zlo >> uint(k-shared)
	curW[0] = w
	cn := 1
	for p := shared; p < k; p++ {
		x := pl.word(p, seg)
		nn := 0
		for i := 0; i < cn; i++ {
			w, pre := curW[i], curP[i]<<1
			if w0 := w &^ x; w0 != 0 {
				nxtP[nn], nxtW[nn] = pre, w0
				nn++
			}
			if w1 := w & x; w1 != 0 {
				nxtP[nn], nxtW[nn] = pre|1, w1
				nn++
			}
		}
		curP, nxtP = nxtP, curP
		curW, nxtW = nxtW, curW
		cn = nn
	}
	copy(outP[:cn], curP[:cn])
	copy(outW[:cn], curW[:cn])
	return cn
}

// hbpSplitCtx hoists the per-column constants of hbpSplitSeg out of the
// per-segment loop.
type hbpSplitCtx struct {
	tau, b, subs, fWidth int
	delim, ones          uint64
	gws                  [][]uint64
}

func newHBPSplitCtx(col *hbp.Column) hbpSplitCtx {
	return hbpSplitCtx{
		tau: col.Tau(), b: col.NumGroups(), subs: col.SubSegments(),
		fWidth: col.FieldWidth(), delim: col.DelimMask(),
		ones: word.Repeat(1, col.FieldWidth(), col.FieldsPerWord()),
		gws:  groupSlices(col),
	}
}

// hbpSplitSeg is the HBP twin of vbpSplitSeg: per sub-segment window the
// pending delimiter bits peel one distinct code at a time, with one
// Lamport equality per word-group matching all its occurrences at once.
// The same code can surface from several sub-segments of the window, so
// output pairs dedup by linear scan (≤ 64 live codes per segment).
func hbpSplitSeg(col *hbp.Column, c *hbpSplitCtx, seg int, fw uint64, outP, outW *[64]uint64, st *GroupStats) int {
	if zlo, zhi, zok := col.ZoneRange(seg); zok && zlo == zhi {
		outP[0], outW[0] = zlo, fw
		st.CacheServed++
		return 1
	}
	st.Segments++
	base := seg * c.subs
	cn := 0
	for t := 0; t < c.subs; t++ {
		md := col.SubSegmentDelims(fw, t)
		if md == 0 {
			continue
		}
		st.Words += uint64(c.b)
		for md != 0 {
			s := bits.TrailingZeros64(md) / c.fWidth
			var key uint64
			eq := md
			for g := 0; g < c.b; g++ {
				x := c.gws[g][base+t]
				v := word.Field(x, c.tau, s)
				key = key<<uint(c.tau) | v
				eq &= word.EQDelims(x, v*c.ones, c.delim)
			}
			w := col.ScatterDelims(eq, t)
			j := 0
			for ; j < cn; j++ {
				if outP[j] == key {
					outW[j] |= w
					break
				}
			}
			if j == cn {
				outP[cn], outW[cn] = key, w
				cn++
			}
			md &^= eq
		}
	}
	return cn
}

// VBPHashPartitionRange banks per-code selection words of segments
// [segLo, segHi) into bank, discovering keys as a side effect. It is the
// hash-tier twin of VBPGroupPartitionRange: same traversal, same zone
// shortcuts and stats conventions, but an open-addressing bank with
// sparse run lists instead of the direct-mapped dense bank, so it scales
// to MaxHashGroups keys of any width.
func VBPHashPartitionRange(col *vbp.Column, f *bitvec.Bitmap, bank *HashBank, segLo, segHi int, st *GroupStats) error {
	k := col.K()
	pl := newVBPPlanes(col)
	var outP, outW [64]uint64
	for seg := segLo; seg < segHi; seg++ {
		fw := f.Word(seg) & word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cn := vbpSplitSeg(col, &pl, k, seg, fw, &outP, &outW, st)
		for i := 0; i < cn; i++ {
			if !bank.Bank(outP[i], int32(seg), outW[i]) {
				return ErrGroupCardinality
			}
		}
	}
	return nil
}

// HBPHashPartitionRange is the HBP twin of VBPHashPartitionRange.
func HBPHashPartitionRange(col *hbp.Column, f *bitvec.Bitmap, bank *HashBank, segLo, segHi int, st *GroupStats) error {
	c := newHBPSplitCtx(col)
	var outP, outW [64]uint64
	for seg := segLo; seg < segHi; seg++ {
		fw := segWindow(f, col, seg)
		if fw == 0 {
			continue
		}
		cn := hbpSplitSeg(col, &c, seg, fw, &outP, &outW, st)
		for i := 0; i < cn; i++ {
			if !bank.Bank(outP[i], int32(seg), outW[i]) {
				return ErrGroupCardinality
			}
		}
	}
	return nil
}

// VBPHashRefineRange refines an already-partitioned bank by one more
// grouping column: every (key, segment, word) entry splits into per-code
// words of col, banked into dst under the composite key key<<shift|code.
// Entries must already be in col's segmentation (see RewindowSegWords).
// Distinct source keys map to disjoint composite-key ranges, so dst's
// per-key runs stay ascending by segment.
func VBPHashRefineRange(col *vbp.Column, keys []uint64, ents [][]SegWord, shift uint, dst *HashBank, st *GroupStats) error {
	k := col.K()
	pl := newVBPPlanes(col)
	var outP, outW [64]uint64
	for ki, key := range keys {
		base := key << shift
		for _, e := range ents[ki] {
			cn := vbpSplitSeg(col, &pl, k, int(e.Seg), e.W, &outP, &outW, st)
			for i := 0; i < cn; i++ {
				if !dst.Bank(base|outP[i], e.Seg, outW[i]) {
					return ErrGroupCardinality
				}
			}
		}
	}
	return nil
}

// HBPHashRefineRange is the HBP twin of VBPHashRefineRange.
func HBPHashRefineRange(col *hbp.Column, keys []uint64, ents [][]SegWord, shift uint, dst *HashBank, st *GroupStats) error {
	c := newHBPSplitCtx(col)
	var outP, outW [64]uint64
	for ki, key := range keys {
		base := key << shift
		for _, e := range ents[ki] {
			cn := hbpSplitSeg(col, &c, int(e.Seg), e.W, &outP, &outW, st)
			for i := 0; i < cn; i++ {
				if !dst.Bank(base|outP[i], e.Seg, outW[i]) {
					return ErrGroupCardinality
				}
			}
		}
	}
	return nil
}
