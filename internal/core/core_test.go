package core

import (
	"math/rand"
	"sort"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// fixture is a random column with a random filter plus scalar ground truth.
type fixture struct {
	vals   []uint64
	filter *bitvec.Bitmap
	kept   []uint64 // sorted filtered values
	sum    uint64
}

func makeFixture(rng *rand.Rand, n, k int, sel float64) fixture {
	fx := fixture{
		vals:   make([]uint64, n),
		filter: bitvec.New(n),
	}
	for i := range fx.vals {
		fx.vals[i] = rng.Uint64() & word.LowMask(k)
		if rng.Float64() < sel {
			fx.filter.Set(i)
			fx.kept = append(fx.kept, fx.vals[i])
			fx.sum += fx.vals[i]
		}
	}
	sort.Slice(fx.kept, func(i, j int) bool { return fx.kept[i] < fx.kept[j] })
	return fx
}

func (fx fixture) refMin() (uint64, bool) {
	if len(fx.kept) == 0 {
		return 0, false
	}
	return fx.kept[0], true
}

func (fx fixture) refMax() (uint64, bool) {
	if len(fx.kept) == 0 {
		return 0, false
	}
	return fx.kept[len(fx.kept)-1], true
}

func (fx fixture) refRank(r uint64) (uint64, bool) {
	if r == 0 || r > uint64(len(fx.kept)) {
		return 0, false
	}
	return fx.kept[r-1], true
}

func (fx fixture) refMedian() (uint64, bool) {
	u := uint64(len(fx.kept))
	if u == 0 {
		return 0, false
	}
	return fx.refRank((u + 1) / 2)
}

var aggShapes = []struct {
	n   int
	k   int
	sel float64
}{
	{1, 1, 1},
	{1, 7, 0},
	{64, 8, 0.5},
	{65, 8, 0.5},
	{200, 1, 0.5},
	{257, 12, 0.1},
	{300, 25, 0.9},
	{511, 25, 0.01},
	{513, 33, 0.5},
	{128, 64, 0.5},
	{100, 5, 1},
}

func TestVBPAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range aggShapes {
		for _, tau := range []int{1, 4, sh.k} {
			if tau > sh.k {
				continue
			}
			fx := makeFixture(rng, sh.n, sh.k, sh.sel)
			col := vbp.Pack(fx.vals, sh.k, tau)

			if got := VBPSum(col, fx.filter); got != fx.sum {
				t.Fatalf("VBPSum n=%d k=%d tau=%d sel=%v: got %d want %d",
					sh.n, sh.k, tau, sh.sel, got, fx.sum)
			}
			if got := Count(fx.filter); got != uint64(len(fx.kept)) {
				t.Fatalf("Count: got %d want %d", got, len(fx.kept))
			}
			checkOpt(t, "VBPMin", sh, tau, got2(VBPMin(col, fx.filter)), got2(fx.refMin()))
			checkOpt(t, "VBPMax", sh, tau, got2(VBPMax(col, fx.filter)), got2(fx.refMax()))
			checkOpt(t, "VBPMedian", sh, tau, got2(VBPMedian(col, fx.filter)), got2(fx.refMedian()))
			// A few ranks, including boundaries.
			u := uint64(len(fx.kept))
			for _, r := range []uint64{0, 1, u / 2, u, u + 1} {
				checkOpt(t, "VBPRank", sh, tau, got2(VBPRank(col, fx.filter, r)), got2(fx.refRank(r)))
			}
			avg, avgOK := VBPAvg(col, fx.filter)
			if avgOK != (len(fx.kept) > 0) {
				t.Fatalf("VBPAvg ok mismatch")
			}
			if avgOK {
				want := float64(fx.sum) / float64(len(fx.kept))
				if avg != want {
					t.Fatalf("VBPAvg: got %v want %v", avg, want)
				}
			}
		}
	}
}

func TestHBPAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range aggShapes {
		taus := []int{1, 2, 3, 4, 7, sh.k}
		for _, tau := range taus {
			if tau > sh.k || tau > hbp.MaxTau {
				continue
			}
			fx := makeFixture(rng, sh.n, sh.k, sh.sel)
			col := hbp.Pack(fx.vals, sh.k, tau)

			if got := HBPSum(col, fx.filter); got != fx.sum {
				t.Fatalf("HBPSum n=%d k=%d tau=%d sel=%v: got %d want %d",
					sh.n, sh.k, tau, sh.sel, got, fx.sum)
			}
			checkOpt(t, "HBPMin", sh, tau, got2(HBPMin(col, fx.filter)), got2(fx.refMin()))
			checkOpt(t, "HBPMax", sh, tau, got2(HBPMax(col, fx.filter)), got2(fx.refMax()))
			checkOpt(t, "HBPMedian", sh, tau, got2(HBPMedian(col, fx.filter)), got2(fx.refMedian()))
			u := uint64(len(fx.kept))
			for _, r := range []uint64{0, 1, u / 2, u, u + 1} {
				checkOpt(t, "HBPRank", sh, tau, got2(HBPRank(col, fx.filter, r)), got2(fx.refRank(r)))
			}
			avg, avgOK := HBPAvg(col, fx.filter)
			if avgOK != (len(fx.kept) > 0) {
				t.Fatalf("HBPAvg ok mismatch")
			}
			if avgOK {
				want := float64(fx.sum) / float64(len(fx.kept))
				if avg != want {
					t.Fatalf("HBPAvg: got %v want %v", avg, want)
				}
			}
		}
	}
}

type optResult struct {
	v  uint64
	ok bool
}

func got2(v uint64, ok bool) optResult { return optResult{v, ok} }

func checkOpt(t *testing.T, name string, sh struct {
	n   int
	k   int
	sel float64
}, tau int, got, want optResult) {
	t.Helper()
	if got != want {
		t.Fatalf("%s n=%d k=%d tau=%d sel=%v: got (%d,%v) want (%d,%v)",
			name, sh.n, sh.k, tau, sh.sel, got.v, got.ok, want.v, want.ok)
	}
}

func TestAllEqualValues(t *testing.T) {
	// Degenerate distribution: every value identical. Median, min, max and
	// rank must all return it; sum must multiply it.
	vals := make([]uint64, 130)
	for i := range vals {
		vals[i] = 42
	}
	f := bitvec.NewFull(130)
	vcol := vbp.Pack(vals, 8, 4)
	hcol := hbp.Pack(vals, 8, 4)
	if s := VBPSum(vcol, f); s != 42*130 {
		t.Errorf("VBPSum = %d", s)
	}
	if s := HBPSum(hcol, f); s != 42*130 {
		t.Errorf("HBPSum = %d", s)
	}
	for _, fn := range []func() (uint64, bool){
		func() (uint64, bool) { return VBPMin(vcol, f) },
		func() (uint64, bool) { return VBPMax(vcol, f) },
		func() (uint64, bool) { return VBPMedian(vcol, f) },
		func() (uint64, bool) { return HBPMin(hcol, f) },
		func() (uint64, bool) { return HBPMax(hcol, f) },
		func() (uint64, bool) { return HBPMedian(hcol, f) },
		func() (uint64, bool) { return VBPRank(vcol, f, 130) },
		func() (uint64, bool) { return HBPRank(hcol, f, 1) },
	} {
		if v, ok := fn(); !ok || v != 42 {
			t.Errorf("degenerate aggregate: got (%d,%v), want (42,true)", v, ok)
		}
	}
}

func TestEmptyFilter(t *testing.T) {
	vals := []uint64{1, 2, 3}
	f := bitvec.New(3)
	vcol := vbp.Pack(vals, 4, 2)
	hcol := hbp.Pack(vals, 4, 2)
	if VBPSum(vcol, f) != 0 || HBPSum(hcol, f) != 0 {
		t.Error("sum over empty filter should be 0")
	}
	if _, ok := VBPMin(vcol, f); ok {
		t.Error("VBPMin over empty filter should report !ok")
	}
	if _, ok := HBPMedian(hcol, f); ok {
		t.Error("HBPMedian over empty filter should report !ok")
	}
	if _, ok := VBPAvg(vcol, f); ok {
		t.Error("VBPAvg over empty filter should report !ok")
	}
}

func TestSingleTuple(t *testing.T) {
	f := bitvec.NewFull(1)
	vcol := vbp.Pack([]uint64{7}, 3, 3)
	hcol := hbp.Pack([]uint64{7}, 3, 3)
	if v, ok := VBPMedian(vcol, f); !ok || v != 7 {
		t.Errorf("VBPMedian single = (%d,%v)", v, ok)
	}
	if v, ok := HBPMedian(hcol, f); !ok || v != 7 {
		t.Errorf("HBPMedian single = (%d,%v)", v, ok)
	}
}

func TestFilterLengthMismatchPanics(t *testing.T) {
	vcol := vbp.Pack([]uint64{1, 2, 3}, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched filter did not panic")
		}
	}()
	VBPSum(vcol, bitvec.New(4))
}

// TestMedianRadixDescentPaperExample reproduces the worked example of
// §III-A [MEDIAN]: segment values {1,7,2,1,6,0,2,7}, median (4th of 8) = 2.
func TestMedianRadixDescentPaperExample(t *testing.T) {
	vals := []uint64{1, 7, 2, 1, 6, 0, 2, 7}
	f := bitvec.NewFull(len(vals))
	vcol := vbp.Pack(vals, 3, 3)
	if m, ok := VBPMedian(vcol, f); !ok || m != 2 {
		t.Errorf("VBP paper example median = (%d,%v), want (2,true)", m, ok)
	}
	hcol := hbp.Pack(vals, 3, 3)
	if m, ok := HBPMedian(hcol, f); !ok || m != 2 {
		t.Errorf("HBP paper example median = (%d,%v), want (2,true)", m, ok)
	}
}

// TestSlotMinPaperExample reproduces the SLOTMIN example of §III-A:
// S1 = {1,7,2,1,6,0,2,7}, S2 = {1,3,2,0,0,2,2,3} -> min overall 0.
func TestSlotMinPaperExample(t *testing.T) {
	vals := append([]uint64{1, 7, 2, 1, 6, 0, 2, 7}, 1, 3, 2, 0, 0, 2, 2, 3)
	f := bitvec.NewFull(len(vals))
	if m, ok := VBPMin(vbp.Pack(vals, 3, 3), f); !ok || m != 0 {
		t.Errorf("VBPMin = (%d,%v), want (0,true)", m, ok)
	}
	if m, ok := VBPMax(vbp.Pack(vals, 3, 3), f); !ok || m != 7 {
		t.Errorf("VBPMax = (%d,%v), want (7,true)", m, ok)
	}
}

func TestSumNoOverflowAtWideWidths(t *testing.T) {
	// k=40 values near max with n=1000: sum ~ 2^50, well inside uint64.
	rng := rand.New(rand.NewSource(43))
	n, k := 1000, 40
	vals := make([]uint64, n)
	var want uint64
	for i := range vals {
		vals[i] = word.LowMask(k) - uint64(rng.Intn(1000))
		want += vals[i]
	}
	f := bitvec.NewFull(n)
	if got := VBPSum(vbp.Pack(vals, k, 4), f); got != want {
		t.Errorf("VBPSum wide: got %d want %d", got, want)
	}
	if got := HBPSum(hbp.Pack(vals, k, hbp.DefaultTau(k)), f); got != want {
		t.Errorf("HBPSum wide: got %d want %d", got, want)
	}
}
