package core

import (
	"sort"
	"testing"
	"testing/quick"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Property tests: for quick-generated columns and filters, every
// bit-parallel aggregate must agree with plain-slice evaluation, on both
// layouts, under arbitrary (k, tau).

type aggInput struct {
	K, Tau int
	Vals   []uint64
	Filter *bitvec.Bitmap
	Kept   []uint64 // sorted
}

func normalizeAgg(kRaw, tauRaw uint8, raw []uint64, mask []bool) aggInput {
	k := int(kRaw)%64 + 1
	tau := int(tauRaw)%k + 1
	if tau > word.MaxTau {
		tau = word.MaxTau
	}
	vals := make([]uint64, len(raw))
	f := bitvec.New(len(raw))
	var kept []uint64
	for i, v := range raw {
		vals[i] = v & word.LowMask(k)
		if i < len(mask) && mask[i] {
			f.Set(i)
			kept = append(kept, vals[i])
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	return aggInput{K: k, Tau: tau, Vals: vals, Filter: f, Kept: kept}
}

func (in aggInput) refSum() uint64 {
	var s uint64
	for _, v := range in.Kept {
		s += v
	}
	return s
}

func checkAggs(sum uint64, mn, mx, med uint64, okMin, okMax, okMed bool, in aggInput) bool {
	if sum != in.refSum() {
		return false
	}
	if okMin != (len(in.Kept) > 0) || okMax != okMin || okMed != okMin {
		return false
	}
	if len(in.Kept) == 0 {
		return true
	}
	return mn == in.Kept[0] &&
		mx == in.Kept[len(in.Kept)-1] &&
		med == in.Kept[(len(in.Kept)+1)/2-1]
}

func TestPropVBPAggregatesMatchScalar(t *testing.T) {
	f := func(kRaw, tauRaw uint8, raw []uint64, mask []bool) bool {
		in := normalizeAgg(kRaw, tauRaw, raw, mask)
		col := vbp.Pack(in.Vals, in.K, in.Tau)
		sum := VBPSum(col, in.Filter)
		mn, okMin := VBPMin(col, in.Filter)
		mx, okMax := VBPMax(col, in.Filter)
		med, okMed := VBPMedian(col, in.Filter)
		return checkAggs(sum, mn, mx, med, okMin, okMax, okMed, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropHBPAggregatesMatchScalar(t *testing.T) {
	f := func(kRaw, tauRaw uint8, raw []uint64, mask []bool) bool {
		in := normalizeAgg(kRaw, tauRaw, raw, mask)
		col := hbp.Pack(in.Vals, in.K, in.Tau)
		sum := HBPSum(col, in.Filter)
		mn, okMin := HBPMin(col, in.Filter)
		mx, okMax := HBPMax(col, in.Filter)
		med, okMed := HBPMedian(col, in.Filter)
		return checkAggs(sum, mn, mx, med, okMin, okMax, okMed, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropRankIsSortedIndex(t *testing.T) {
	// Rank(r) must equal the (r-1)-th element of the sorted kept values,
	// for every valid r, on both layouts.
	f := func(kRaw, tauRaw uint8, raw []uint64, mask []bool, rRaw uint8) bool {
		in := normalizeAgg(kRaw, tauRaw, raw, mask)
		if len(in.Kept) == 0 {
			return true
		}
		r := uint64(rRaw)%uint64(len(in.Kept)) + 1
		want := in.Kept[r-1]
		vcol := vbp.Pack(in.Vals, in.K, in.Tau)
		hcol := hbp.Pack(in.Vals, in.K, in.Tau)
		gv, okv := VBPRank(vcol, in.Filter, r)
		gh, okh := HBPRank(hcol, in.Filter, r)
		return okv && okh && gv == want && gh == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropLayoutsAgree(t *testing.T) {
	// The two layouts are alternative encodings of the same column: every
	// aggregate must coincide.
	f := func(kRaw, tauRaw uint8, raw []uint64, mask []bool) bool {
		in := normalizeAgg(kRaw, tauRaw, raw, mask)
		vcol := vbp.Pack(in.Vals, in.K, in.Tau)
		hcol := hbp.Pack(in.Vals, in.K, in.Tau)
		if VBPSum(vcol, in.Filter) != HBPSum(hcol, in.Filter) {
			return false
		}
		va, oka := VBPAvg(vcol, in.Filter)
		ha, okb := HBPAvg(hcol, in.Filter)
		return va == ha && oka == okb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropSumSplitsAcrossRanges(t *testing.T) {
	// Partial sums over a segment split must add up to the full sum — the
	// invariant multi-threading relies on.
	f := func(kRaw, tauRaw uint8, raw []uint64, mask []bool, cutRaw uint8) bool {
		in := normalizeAgg(kRaw, tauRaw, raw, mask)
		vcol := vbp.Pack(in.Vals, in.K, in.Tau)
		hcol := hbp.Pack(in.Vals, in.K, in.Tau)
		nsegV := vcol.NumSegments()
		if nsegV == 0 {
			return true
		}
		cutV := int(cutRaw) % (nsegV + 1)
		full := VBPSum(vcol, in.Filter)
		if VBPSumRange(vcol, in.Filter, 0, cutV)+VBPSumRange(vcol, in.Filter, cutV, nsegV) != full {
			return false
		}
		nsegH := hcol.NumSegments()
		cutH := int(cutRaw) % (nsegH + 1)
		fullH := HBPSum(hcol, in.Filter)
		return HBPSumRange(hcol, in.Filter, 0, cutH)+HBPSumRange(hcol, in.Filter, cutH, nsegH) == fullH
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
