package core

import (
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/word"
)

// segWindow reads the filter bits of one HBP segment from the dense bitmap,
// using the aligned word directly when a segment holds exactly 64 tuples.
func segWindow(f *bitvec.Bitmap, col *hbp.Column, seg int) uint64 {
	if col.ValuesPerSegment() == 64 {
		if seg < f.NumWords() {
			return f.Word(seg)
		}
		return 0
	}
	return f.Extract(seg*col.ValuesPerSegment(), col.ValuesPerSegment())
}

// HBPSum computes SUM over the filtered tuples of an HBP column
// (Algorithm 4). For each sub-segment the filter bits move onto the
// delimiter lane (GET-VALUE-FILTER), spread into a value mask that wipes
// non-qualifying slots, and each word-group's masked word is folded by the
// Gilles–Miller IN-WORD-SUM; one weighted shift-add per bit-group combines
// the partial sums at the end.
func HBPSum(col *hbp.Column, f *bitvec.Bitmap) uint64 {
	checkFilter(col.Len(), f)
	return HBPSumRange(col, f, 0, col.NumSegments())
}

// HBPSumRange computes the SUM contribution of segments [segLo, segHi).
func HBPSumRange(col *hbp.Column, f *bitvec.Bitmap, segLo, segHi int) uint64 {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	gws := groupSlices(col)

	sums := make([]uint64, b)
	if summer.Fast() {
		// Straight-line Gilles–Miller fold with hoisted constants,
		// iterating group-major so each inner pass walks one contiguous
		// word run. This loop runs once per data word and dominates SUM.
		// Sub-segments whose value filter is empty are skipped (the
		// GET-VALUE-FILTER early-out that makes selective filters cheap);
		// the all-active dense case keeps the branch-free contiguous walk.
		flush, fw2, fin, keep, mul := summer.Consts()
		peelV, peelF := summer.PeelMasks()
		var masks [word.MaxTau + 1]uint64
		allActive := uint64(1)<<uint(subs) - 1
		for seg := segLo; seg < segHi; seg++ {
			fw := segWindow(f, col, seg)
			if fw == 0 {
				continue
			}
			var active uint64
			for t := 0; t < subs; t++ {
				m := word.SpreadDelims(col.SubSegmentDelims(fw, t), tau)
				masks[t] = m
				if m != 0 {
					active |= 1 << uint(t)
				}
			}
			base := seg * subs
			if active == allActive {
				for g := 0; g < b; g++ {
					run := gws[g][base : base+subs]
					var part uint64
					for t, w := range run {
						w &= masks[t]
						x := (w &^ peelF) << flush
						x += x >> fw2
						x &= keep
						part += (x*mul)>>fin + w&peelV
					}
					sums[g] += part
				}
				continue
			}
			for g := 0; g < b; g++ {
				run := gws[g][base : base+subs]
				var part uint64
				for a := active; a != 0; a &= a - 1 {
					t := bits.TrailingZeros64(a)
					w := run[t] & masks[t]
					x := (w &^ peelF) << flush
					x += x >> fw2
					x &= keep
					part += (x*mul)>>fin + w&peelV
				}
				sums[g] += part
			}
		}
	} else {
		for seg := segLo; seg < segHi; seg++ {
			fw := segWindow(f, col, seg)
			if fw == 0 {
				continue
			}
			base := seg * subs
			for t := 0; t < subs; t++ {
				md := col.SubSegmentDelims(fw, t)
				if md == 0 {
					continue
				}
				m := word.SpreadDelims(md, tau)
				for g := 0; g < b; g++ {
					sums[g] += summer.Sum(gws[g][base+t] & m)
				}
			}
		}
	}
	var sum uint64
	for g := 0; g < b; g++ {
		sum += sums[g] << uint((b-1-g)*tau)
	}
	return sum
}

// groupSlices gathers the per-group word slices once so inner loops avoid
// repeated method dispatch.
func groupSlices(col *hbp.Column) [][]uint64 {
	gws := make([][]uint64, col.NumGroups())
	for g := range gws {
		gws[g] = col.GroupWords(g)
	}
	return gws
}

// HBPMin computes MIN over the filtered tuples (Algorithm 5): a running
// slot-wise minimum sub-segment folded via SUB-SLOTMIN, whose delimiter-lane
// less-than comes from the same Lamport comparison the scans use. Only the
// w/(tau+1) finalist slots are reconstructed at the end. ok is false when
// no tuple passes the filter.
func HBPMin(col *hbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return hbpExtreme(col, f, true)
}

// HBPMax computes MAX over the filtered tuples (the SUB-SLOTMAX variant of
// Algorithm 5).
func HBPMax(col *hbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return hbpExtreme(col, f, false)
}

func hbpExtreme(col *hbp.Column, f *bitvec.Bitmap, wantMin bool) (uint64, bool) {
	checkFilter(col.Len(), f)
	if !f.Any() {
		return 0, false
	}
	temp := NewHBPExtremeTemp(col, wantMin)
	HBPFoldExtreme(col, f, temp, wantMin, 0, col.NumSegments())
	return HBPFinishExtreme(col, [][]uint64{temp}, wantMin), true
}

// NewHBPExtremeTemp allocates the running slot-wise extreme sub-segment
// SS_temp, initialized to the identity (every slot 2^tau-1 per group for
// MIN, zero for MAX).
func NewHBPExtremeTemp(col *hbp.Column, wantMin bool) []uint64 {
	temp := make([]uint64, col.NumGroups())
	if wantMin {
		for g := range temp {
			temp[g] = col.ValueMask()
		}
	}
	return temp
}

// HBPFoldExtreme folds the sub-segments of segments [segLo, segHi) into
// temp via SUB-SLOTMIN (or SUB-SLOTMAX), honoring the filter.
func HBPFoldExtreme(col *hbp.Column, f *bitvec.Bitmap, temp []uint64, wantMin bool, segLo, segHi int) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	delim := col.DelimMask()
	x := make([]uint64, b)
	for seg := segLo; seg < segHi; seg++ {
		fw := segWindow(f, col, seg)
		if fw == 0 {
			continue
		}
		base := seg * subs
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(fw, t)
			if md == 0 {
				continue
			}
			for g := 0; g < b; g++ {
				x[g] = col.GroupWords(g)[base+t]
			}
			sel := hbpSlotLanes(x, temp, delim, wantMin)
			sel &= md
			if sel == 0 {
				continue
			}
			m := word.SpreadDelims(sel, tau)
			for g := 0; g < b; g++ {
				temp[g] = word.Blend(m, x[g], temp[g])
			}
		}
	}
}

// HBPFinishExtreme merges one temp sub-segment per worker, reconstructing
// the w/(tau+1) finalist slots of each.
func HBPFinishExtreme(col *hbp.Column, temps [][]uint64, wantMin bool) uint64 {
	tau, b, c := col.Tau(), col.NumGroups(), col.FieldsPerWord()
	best := reconstructHBPSlot(temps[0], tau, b, 0)
	for _, temp := range temps {
		for s := 0; s < c; s++ {
			v := reconstructHBPSlot(temp, tau, b, s)
			if wantMin && v < best || !wantMin && v > best {
				best = v
			}
		}
	}
	return best
}

// hbpSlotLanes returns delimiter lanes where x should replace y: x < y
// slot-wise for MIN, x > y for MAX, staged across bit-groups most
// significant first.
func hbpSlotLanes(x, y []uint64, delim uint64, wantMin bool) uint64 {
	eq := delim
	var sel uint64
	for g := range x {
		var lg uint64
		if wantMin {
			lg = word.LTDelims(x[g], y[g], delim)
		} else {
			lg = word.GTDelims(x[g], y[g], delim)
		}
		sel |= eq & lg
		eq &= word.EQDelims(x[g], y[g], delim)
		if eq == 0 {
			break
		}
	}
	return sel
}

// reconstructHBPSlot reassembles slot s from per-group words.
func reconstructHBPSlot(ws []uint64, tau, b, s int) uint64 {
	var v uint64
	for g := 0; g < b; g++ {
		v = v<<uint(tau) | word.Field(ws[g], tau, s)
	}
	return v
}

// HBPMedian computes the lower MEDIAN over the filtered tuples
// (Algorithm 6). ok is false when no tuple passes.
func HBPMedian(col *hbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	u := Count(f)
	if u == 0 {
		return 0, false
	}
	return HBPRank(col, f, lowerMedianRank(u))
}

// MaxHistBits bounds the histogram used by the HBP r-selection: 2^16
// 8-byte bins (512 KiB) is the largest table that still behaves like the
// paper's cache-resident histogram. Bit-groups wider than this descend in
// sub-chunks — bit-identical to Algorithm 6 when tau <= MaxHistBits, and a
// graceful multi-round descent otherwise (the paper instead constrains tau
// at storage-design time so that the histogram fits in cache).
const MaxHistBits = 16

// HBPChunks splits a tau-bit group into MSB-first descent chunks of at most
// MaxHistBits bits. Each chunk is (shift, width): the chunk covers field
// bits [shift, shift+width).
func HBPChunks(tau int) [][2]int {
	return hbpChunksWidth(tau, MaxHistBits)
}

func hbpChunksWidth(tau, maxBits int) [][2]int {
	var out [][2]int
	hi := tau
	for hi > 0 {
		w := hi
		if w > maxBits {
			w = maxBits
		}
		out = append(out, [2]int{hi - w, w})
		hi -= w
	}
	return out
}

// HBPRankChunks picks the descent chunking for a rank query over u
// candidates. The chunk width is a free policy choice — any MSB-first
// chunking determines the same value — so a wide bit-group only earns its
// full 2^MaxHistBits-bin histogram when the candidate population can
// populate it: a histogram over u candidates has at most u non-empty
// bins, and allocating (and re-zeroing, round after round) bins the data
// cannot reach costs far more than the extra scan rounds a narrower
// descent takes over a small candidate set. The width depends only on
// (tau, u), keeping RadixRounds identical across thread counts and the
// narrow/wide kernels. Returns the chunks and the histogram width to
// allocate.
func HBPRankChunks(tau int, u uint64) ([][2]int, int) {
	hb := tau
	if hb > MaxHistBits {
		hb = MaxHistBits
	}
	if need := bits.Len64(u) + 2; need < hb {
		hb = need
	}
	return hbpChunksWidth(tau, hb), hb
}

// HBPRank computes the r-th smallest filtered value (1-based) — the
// r-selection generalization of Algorithm 6. The value is determined
// bit-group by bit-group: a cumulative histogram over the possible group
// values locates the bin containing rank r, the rank re-bases within the
// bin, and the candidate set narrows to tuples equal to the bin in this
// group via BIT-PARALLEL-EQUAL. ok is false when fewer than r tuples pass.
func HBPRank(col *hbp.Column, f *bitvec.Bitmap, r uint64) (uint64, bool) {
	checkFilter(col.Len(), f)
	u := Count(f)
	if r == 0 || r > u {
		return 0, false
	}
	nseg := col.NumSegments()
	v := NewHBPCandidates(col, f, nseg)
	b := col.NumGroups()
	tau := col.Tau()
	chunks, histBits := HBPRankChunks(tau, u)
	hist := make([]uint64, 1<<uint(histBits))
	var m uint64
	for g := 0; g < b; g++ {
		for ci, ch := range chunks {
			shift, width := ch[0], ch[1]
			hw := hist[:1<<uint(width)]
			for i := range hw {
				hw[i] = 0
			}
			HBPHistogramChunk(col, v, g, shift, width, 0, nseg, hw)
			// Locate the bin containing rank r in the cumulative histogram
			// (Algorithm 6 lines 7-9; rank re-bases by the cumulative
			// count below the bin, per the paper's worked example).
			var cum uint64
			bin := 0
			for i, h := range hw {
				if cum+h >= r {
					bin = i
					break
				}
				cum += h
			}
			r -= cum
			m = m<<uint(width) | uint64(bin)

			if g == b-1 && ci == len(chunks)-1 {
				break
			}
			HBPRankRefineChunk(col, v, g, shift, width, uint64(bin), 0, nseg)
		}
	}
	return m, true
}

// NewHBPCandidates copies the filter windows into per-segment candidate
// vectors V (Algorithm 6 lines 3-4).
func NewHBPCandidates(col *hbp.Column, f *bitvec.Bitmap, nseg int) []uint64 {
	v := make([]uint64, nseg)
	for seg := range v {
		v[seg] = segWindow(f, col, seg)
	}
	return v
}

// HBPHistogramChunk accumulates the histogram of field bits
// [shift, shift+width) of the candidates' group-g values in segments
// [segLo, segHi) into hist (BUILD-HISTOGRAM of Algorithm 6; with
// shift == 0 and width == tau it covers the whole bit-group). Candidate
// slots are walked by peeling delimiter bits; empty segments and
// sub-segments are skipped.
func HBPHistogramChunk(col *hbp.Column, v []uint64, g, shift, width, segLo, segHi int, hist []uint64) {
	tau := col.Tau()
	subs := col.SubSegments()
	fWidth := col.FieldWidth()
	mask := word.LowMask(width)
	gw := col.GroupWords(g)
	for seg := segLo; seg < segHi; seg++ {
		if v[seg] == 0 {
			continue
		}
		base := seg * subs
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(v[seg], t)
			if md == 0 {
				continue
			}
			w := gw[base+t]
			for md != 0 {
				d := bits.TrailingZeros64(md)
				s := d / fWidth
				hist[word.Field(w, tau, s)>>uint(shift)&mask]++
				md &= md - 1
			}
		}
	}
}

// HBPRankRefineChunk narrows the candidate vectors of segments
// [segLo, segHi) to tuples whose group-g field bits [shift, shift+width)
// equal bin, via the full-word BIT-PARALLEL-EQUAL comparison (Algorithm 6
// lines 10-11). Masking the compared lane to the chunk keeps the Lamport
// equality arithmetic field-confined.
func HBPRankRefineChunk(col *hbp.Column, v []uint64, g, shift, width int, bin uint64, segLo, segHi int) {
	subs := col.SubSegments()
	delim := col.DelimMask()
	c := col.FieldsPerWord()
	fWidth := col.FieldWidth()
	laneMask := word.Repeat(word.LowMask(width)<<uint(shift), fWidth, c)
	binPacked := word.Repeat(bin<<uint(shift), fWidth, c)
	gw := col.GroupWords(g)
	for seg := segLo; seg < segHi; seg++ {
		if v[seg] == 0 {
			continue
		}
		base := seg * subs
		var nw uint64
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(v[seg], t)
			if md == 0 {
				continue
			}
			lanes := word.EQDelims(gw[base+t]&laneMask, binPacked, delim) & md
			nw |= col.ScatterDelims(lanes, t)
		}
		v[seg] = nw
	}
}

// HBPAvg computes AVG = SUM / COUNT (§III-B). ok is false when no tuple
// passes the filter.
func HBPAvg(col *hbp.Column, f *bitvec.Bitmap) (float64, bool) {
	cnt := Count(f)
	if cnt == 0 {
		return 0, false
	}
	return float64(HBPSum(col, f)) / float64(cnt), true
}
