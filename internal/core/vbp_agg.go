package core

import (
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// VBPSum computes SUM over the filtered tuples of a VBP column
// (Algorithm 1). Bit position p of the value contributes
// popcount(W_p AND F) * 2^(k-1-p); the per-position counts accumulate in
// bSum so only k shifts happen in total.
//
// The caller must ensure the true sum fits in uint64; with k-bit values that
// holds whenever n < 2^(64-k).
func VBPSum(col *vbp.Column, f *bitvec.Bitmap) uint64 {
	checkFilter(col.Len(), f)
	return VBPSumRange(col, f, 0, col.NumSegments())
}

// VBPSumRange computes the SUM contribution of segments [segLo, segHi) — the
// partition unit for multi-threaded execution (§IV-B). The per-plane
// popcounts run through the carry-save accumulator (DESIGN.md §14).
func VBPSumRange(col *vbp.Column, f *bitvec.Bitmap, segLo, segHi int) uint64 {
	k := col.K()
	bSum := make([]uint64, k)
	vbpBSumRange(col, f, bSum, segLo, segHi)
	var sum uint64
	for p := 0; p < k; p++ {
		sum += bSum[p] << uint(k-1-p)
	}
	return sum
}

// VBPMin computes MIN over the filtered tuples (Algorithm 2). A running
// slot-wise minimum segment S_temp is folded with every segment via SLOTMIN
// (the staged BIT-PARALLEL-LESSTHAN of the scan substrate plus a blend);
// only the w finalist slots are reconstructed to plain form at the end.
// ok is false when no tuple passes the filter.
func VBPMin(col *vbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return vbpExtreme(col, f, true)
}

// VBPMax computes MAX over the filtered tuples (the SLOTMAX variant of
// Algorithm 2).
func VBPMax(col *vbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return vbpExtreme(col, f, false)
}

func vbpExtreme(col *vbp.Column, f *bitvec.Bitmap, wantMin bool) (uint64, bool) {
	checkFilter(col.Len(), f)
	if !f.Any() {
		return 0, false
	}
	temp := NewVBPExtremeTemp(col.K(), wantMin)
	VBPFoldExtreme(col, f, temp, wantMin, 0, col.NumSegments())
	return VBPFinishExtreme([][]uint64{temp}, col.K(), wantMin), true
}

// NewVBPExtremeTemp allocates the running slot-wise extreme segment S_temp,
// initialized to the identity (all slots 2^k-1 for MIN, 0 for MAX).
func NewVBPExtremeTemp(k int, wantMin bool) []uint64 {
	temp := make([]uint64, k)
	if wantMin {
		for p := range temp {
			temp[p] = ^uint64(0)
		}
	}
	return temp
}

// VBPFoldExtreme folds segments [segLo, segHi) into temp via SLOTMIN (or
// SLOTMAX), honoring the filter.
func VBPFoldExtreme(col *vbp.Column, f *bitvec.Bitmap, temp []uint64, wantMin bool, segLo, segHi int) {
	k := col.K()
	groups := col.Groups()
	x := make([]uint64, k)
	for seg := segLo; seg < segHi; seg++ {
		fw := f.Word(seg)
		if fw == 0 {
			continue
		}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			copy(x[gr.StartBit:gr.StartBit+gr.Bits], gr.Words[base:base+gr.Bits])
		}
		var m uint64
		if wantMin {
			m, _ = scan.VBPSlotCompare(x, temp)
		} else {
			m, _ = scan.VBPSlotCompareGT(x, temp)
		}
		m &= fw
		if m == 0 {
			continue
		}
		for p := 0; p < k; p++ {
			temp[p] = word.Blend(m, x[p], temp[p])
		}
	}
}

// VBPFinishExtreme merges one temp segment per worker and reconstructs the
// w finalist slots of each — the only per-value reconstruction in the whole
// algorithm, O(w*k) per temp and negligible per the paper.
func VBPFinishExtreme(temps [][]uint64, k int, wantMin bool) uint64 {
	best := reconstructSlot(temps[0], k, 0)
	for _, temp := range temps {
		for j := 0; j < 64; j++ {
			v := reconstructSlot(temp, k, j)
			if wantMin && v < best || !wantMin && v > best {
				best = v
			}
		}
	}
	return best
}

// reconstructSlot gathers slot j's bits from a VBP-ordered word slice.
func reconstructSlot(ws []uint64, k, j int) uint64 {
	var v uint64
	for p := 0; p < k; p++ {
		v |= (ws[p] >> uint(j) & 1) << uint(k-1-p)
	}
	return v
}

// VBPMedian computes the lower MEDIAN over the filtered tuples
// (Algorithm 3). ok is false when no tuple passes.
func VBPMedian(col *vbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	u := Count(f)
	if u == 0 {
		return 0, false
	}
	return VBPRank(col, f, lowerMedianRank(u))
}

// VBPRank computes the r-th smallest filtered value (1-based) — the
// r-selection generalization the paper notes for Algorithm 3. ok is false
// when fewer than r tuples pass the filter or r == 0.
//
// The value is determined bit by bit, most significant first: at each bit
// position, c candidates have a 1 there; if the candidates with 0 (u-c of
// them) cannot cover rank r, the bit is 1 and the rank re-bases into the
// 1-side, otherwise the bit is 0. Candidate bit vectors V (one word per
// segment) shrink monotonically, and segments whose V reached zero skip
// their POPCNTs entirely.
func VBPRank(col *vbp.Column, f *bitvec.Bitmap, r uint64) (uint64, bool) {
	checkFilter(col.Len(), f)
	u := Count(f)
	if r == 0 || r > u {
		return 0, false
	}
	nseg := col.NumSegments()
	v := NewVBPCandidates(f, nseg)
	k := col.K()
	var m uint64
	for p := 0; p < k; p++ {
		c := VBPRankCount(col, v, p, 0, nseg)
		if u-c < r {
			// The r-th smallest lies among candidates with bit p set.
			m |= 1 << uint(k-1-p)
			r -= u - c
			u = c
			VBPRankRefine(col, v, p, true, 0, nseg)
		} else {
			u -= c
			VBPRankRefine(col, v, p, false, 0, nseg)
		}
	}
	return m, true
}

// NewVBPCandidates copies the filter words into the per-segment candidate
// vectors V (Algorithm 3 lines 4-5).
func NewVBPCandidates(f *bitvec.Bitmap, nseg int) []uint64 {
	v := make([]uint64, nseg)
	for seg := range v {
		v[seg] = f.Word(seg)
	}
	return v
}

// VBPRankCount counts the candidates in segments [segLo, segHi) whose bit at
// position p (0 = MSB) is set — the per-iteration global counter c the
// paper's multi-threaded variant synchronizes on.
func VBPRankCount(col *vbp.Column, v []uint64, p, segLo, segHi int) uint64 {
	grp := &col.Groups()[locateBit(col, p)]
	b := p - grp.StartBit
	var c uint64
	for seg := segLo; seg < segHi; seg++ {
		if v[seg] == 0 {
			continue
		}
		c += uint64(bits.OnesCount64(v[seg] & grp.Words[seg*grp.Bits+b]))
	}
	return c
}

// VBPRankRefine narrows the candidate vectors of segments [segLo, segHi) to
// those whose bit p matches the decided bit (keepOnes).
func VBPRankRefine(col *vbp.Column, v []uint64, p int, keepOnes bool, segLo, segHi int) {
	grp := &col.Groups()[locateBit(col, p)]
	b := p - grp.StartBit
	for seg := segLo; seg < segHi; seg++ {
		if v[seg] == 0 {
			continue
		}
		w := grp.Words[seg*grp.Bits+b]
		if keepOnes {
			v[seg] &= w
		} else {
			v[seg] &^= w
		}
	}
}

// locateBit maps a global bit position to its word-group index.
func locateBit(col *vbp.Column, p int) int {
	return p / col.Tau()
}

// VBPAvg computes AVG = SUM / COUNT (§III-A). ok is false when no tuple
// passes the filter.
func VBPAvg(col *vbp.Column, f *bitvec.Bitmap) (float64, bool) {
	cnt := Count(f)
	if cnt == 0 {
		return 0, false
	}
	return float64(VBPSum(col, f)) / float64(cnt), true
}

func checkFilter(n int, f *bitvec.Bitmap) {
	if f.Len() != n {
		panic("core: filter length does not match column length")
	}
}
