package core

import (
	"math/bits"

	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Banked aggregates over a hash partition. The parallel driver merges the
// per-worker hash banks into one canonical SegEntries list — segment-major
// runs of (group index, selection word), deterministic for any thread
// count — and the kernels below aggregate straight off it. Unlike the
// direct tier's kernels they never scan a per-group array to find the
// live groups of a segment (O(G) per segment is exactly what a 10^5-group
// partition cannot afford): the run list is the live set. Per-group state
// is two words (the 128-bit accumulator or the running extreme), so
// memory stays O(G + banked words) rather than the direct tier's
// O(G × segments).

// SegEntries is a segment-major run list over one column segmentation:
// run r covers window Segs[r] and spans entries [Start[r], Start[r+1]),
// each entry pairing a group index GI[e] with its selection word W[e].
// Runs ascend by segment and entries within a run ascend by group index.
type SegEntries struct {
	Segs  []int32
	Start []int32
	GI    []int32
	W     []uint64
}

// NumRuns returns the number of live segments.
func (se *SegEntries) NumRuns() int { return len(se.Segs) }

// VBPHashSumRuns accumulates each group's 128-bit SUM over runs
// [runLo, runHi) of the measure column. A run whose single entry covers
// the whole segment is served from the exact segment-sum cache. For
// k ≤ 57 a segment's per-entry sum fits uint64 (≤ 64 values of 2^k−1 <
// 2^63), so the plane loop accumulates shifted popcounts into a local
// bank and pays one 128-bit add per entry; wider codes take the checked
// 128-bit shift-add per plane. Stats follow the DESIGN.md §8 analytic
// conventions, so the counters are thread-invariant.
func VBPHashSumRuns(col *vbp.Column, se *SegEntries, runLo, runHi int, his, los []uint64, st *GroupStats) {
	k := col.K()
	pl := newVBPPlanes(col)
	cacheOK := k <= sumCacheExactK
	small := k <= 57
	// Single-entry runs (one live group in the segment — the common case
	// at high cardinality, where groups cluster) carry-save through the
	// run accumulator keyed on the entry's group; per-plane counts land as
	// checked shift-adds, exactly what the wide path below does per word.
	// Multi-entry runs drain first and take the per-word loops.
	var acc *vbpRunSum
	var sink func(gi, p int, c uint64)
	if PosPopEnabled {
		acc = newVBPRunSum(k)
		sink = func(gi, p int, c uint64) {
			his[gi], los[gi] = addShift128(his[gi], los[gi], c, uint(k-1-p))
		}
	}
	var esum [64]uint64
	for r := runLo; r < runHi; r++ {
		seg := int(se.Segs[r])
		lo, hi := int(se.Start[r]), int(se.Start[r+1])
		if cacheOK && hi == lo+1 && se.W[lo] == word.LowMask(col.SegmentValues(seg)) {
			if zs, ok := col.SegmentSum(seg); ok {
				gi := se.GI[lo]
				his[gi], los[gi] = add128(his[gi], los[gi], zs)
				st.CacheServed++
				continue
			}
		}
		st.Segments++
		st.Words += uint64(k)
		if acc != nil {
			if hi == lo+1 {
				acc.push(&pl, int(se.GI[lo]), seg, se.W[lo], sink)
				continue
			}
			acc.drain(&pl, sink)
		}
		if small {
			ne := hi - lo
			for i := 0; i < ne; i++ {
				esum[i] = 0
			}
			for p := 0; p < k; p++ {
				x := pl.word(p, seg)
				if x == 0 {
					continue
				}
				s := uint(k - 1 - p)
				for i := 0; i < ne; i++ {
					esum[i] += uint64(bits.OnesCount64(x&se.W[lo+i])) << s
				}
			}
			for i := 0; i < ne; i++ {
				if v := esum[i]; v != 0 {
					gi := se.GI[lo+i]
					his[gi], los[gi] = add128(his[gi], los[gi], v)
				}
			}
			continue
		}
		for p := 0; p < k; p++ {
			x := pl.word(p, seg)
			if x == 0 {
				continue
			}
			s := uint(k - 1 - p)
			for e := lo; e < hi; e++ {
				if c := uint64(bits.OnesCount64(x & se.W[e])); c != 0 {
					gi := se.GI[e]
					his[gi], los[gi] = addShift128(his[gi], los[gi], c, s)
				}
			}
		}
	}
	if acc != nil {
		acc.drain(&pl, sink)
	}
}

// HBPHashSumRuns is the HBP twin of VBPHashSumRuns: per entry the
// selection word moves onto the delimiter lanes, each word-group's masked
// word folds by the hoisted Gilles–Miller IN-WORD-SUM, and the weighted
// bit-group partials combine in 128 bits before one add into the entry's
// group. The per-bit-group partial fits uint64 (≤ 64 values of 2^tau−1),
// and (b−1)·tau < k ≤ 64 keeps the combine shift in range.
func HBPHashSumRuns(col *hbp.Column, se *SegEntries, runLo, runHi int, his, los []uint64, st *GroupStats) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	gws := groupSlices(col)
	cacheOK := col.K() <= sumCacheExactK
	fast := summer.Fast()
	flush, fw2, fin, keep, mul := summer.Consts()
	peelV, peelF := summer.PeelMasks()
	var masks [word.MaxTau + 1]uint64
	for r := runLo; r < runHi; r++ {
		seg := int(se.Segs[r])
		lo, hi := int(se.Start[r]), int(se.Start[r+1])
		if cacheOK && hi == lo+1 && se.W[lo] == word.LowMask(col.SegmentValues(seg)) {
			if zs, ok := col.SegmentSum(seg); ok {
				gi := se.GI[lo]
				his[gi], los[gi] = add128(his[gi], los[gi], zs)
				st.CacheServed++
				continue
			}
		}
		st.Segments++
		base := seg * subs
		for e := lo; e < hi; e++ {
			fw := se.W[e]
			var active uint64
			for t := 0; t < subs; t++ {
				m := word.SpreadDelims(col.SubSegmentDelims(fw, t), tau)
				masks[t] = m
				if m != 0 {
					active |= 1 << uint(t)
				}
			}
			st.Words += uint64(bits.OnesCount64(active)) * uint64(b)
			var ehi, elo uint64
			for g := 0; g < b; g++ {
				run := gws[g][base : base+subs]
				var part uint64
				if fast {
					for a := active; a != 0; a &= a - 1 {
						t := bits.TrailingZeros64(a)
						w := run[t] & masks[t]
						x := (w &^ peelF) << flush
						x += x >> fw2
						x &= keep
						part += (x*mul)>>fin + w&peelV
					}
				} else {
					for a := active; a != 0; a &= a - 1 {
						t := bits.TrailingZeros64(a)
						part += summer.Sum(run[t] & masks[t])
					}
				}
				ehi, elo = addShift128(ehi, elo, part, uint((b-1-g)*tau))
			}
			gi := se.GI[e]
			nl, carry := bits.Add64(los[gi], elo, 0)
			his[gi] += ehi + carry
			los[gi] = nl
		}
	}
}

// VBPHashExtremeRuns folds MIN (or MAX) candidates over runs
// [runLo, runHi): each entry's selection word descends the planes as a
// scalar bit-descent. A lone whole-segment entry is served from the exact
// zone range, and the segment zone range gates entries that cannot
// improve their group's running best (perf-only; the analytic counters
// ignore it, as in the direct kernels).
func VBPHashExtremeRuns(col *vbp.Column, se *SegEntries, wantMin bool, runLo, runHi int, bests []uint64, anys []bool, st *GroupStats) {
	k := col.K()
	pl := newVBPPlanes(col)
	for r := runLo; r < runHi; r++ {
		seg := int(se.Segs[r])
		lo, hi := int(se.Start[r]), int(se.Start[r+1])
		zlo, zhi, zok := col.ZoneRange(seg)
		if hi == lo+1 && se.W[lo] == word.LowMask(col.SegmentValues(seg)) {
			if l, h, ok := col.SegmentRangeExact(seg); ok {
				v := l
				if !wantMin {
					v = h
				}
				gi := se.GI[lo]
				if !anys[gi] || wantMin && v < bests[gi] || !wantMin && v > bests[gi] {
					bests[gi] = v
				}
				anys[gi] = true
				st.CacheServed++
				continue
			}
		}
		st.Segments++
		st.Words += uint64(k)
		for e := lo; e < hi; e++ {
			gi := se.GI[e]
			if zok && anys[gi] {
				if wantMin && zlo >= bests[gi] || !wantMin && zhi <= bests[gi] {
					continue
				}
			}
			m := se.W[e]
			var v uint64
			if wantMin {
				for p := 0; p < k; p++ {
					if z := m &^ pl.word(p, seg); z != 0 {
						m = z
					} else {
						v |= 1 << uint(k-1-p)
					}
				}
			} else {
				for p := 0; p < k; p++ {
					if z := m & pl.word(p, seg); z != 0 {
						m = z
						v |= 1 << uint(k-1-p)
					}
				}
			}
			if !anys[gi] || wantMin && v < bests[gi] || !wantMin && v > bests[gi] {
				bests[gi] = v
			}
			anys[gi] = true
		}
	}
}

// HBPHashExtremeRuns is the HBP twin of VBPHashExtremeRuns: selected
// tuples peel off each entry's sub-segment windows and reconstruct from
// the word-group fields.
func HBPHashExtremeRuns(col *hbp.Column, se *SegEntries, wantMin bool, runLo, runHi int, bests []uint64, anys []bool, st *GroupStats) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	fWidth := col.FieldWidth()
	gws := groupSlices(col)
	for r := runLo; r < runHi; r++ {
		seg := int(se.Segs[r])
		lo, hi := int(se.Start[r]), int(se.Start[r+1])
		zlo, zhi, zok := col.ZoneRange(seg)
		if hi == lo+1 && se.W[lo] == word.LowMask(col.SegmentValues(seg)) {
			if l, h, ok := col.SegmentRangeExact(seg); ok {
				v := l
				if !wantMin {
					v = h
				}
				gi := se.GI[lo]
				if !anys[gi] || wantMin && v < bests[gi] || !wantMin && v > bests[gi] {
					bests[gi] = v
				}
				anys[gi] = true
				st.CacheServed++
				continue
			}
		}
		st.Segments++
		base := seg * subs
		for e := lo; e < hi; e++ {
			fw := se.W[e]
			gi := se.GI[e]
			st.Words += hbpLiveSubs(col, fw) * uint64(b)
			if zok && anys[gi] {
				if wantMin && zlo >= bests[gi] || !wantMin && zhi <= bests[gi] {
					continue
				}
			}
			best, any := bests[gi], anys[gi]
			for t := 0; t < subs; t++ {
				md := col.SubSegmentDelims(fw, t)
				for ; md != 0; md &= md - 1 {
					s := bits.TrailingZeros64(md) / fWidth
					var v uint64
					for g := 0; g < b; g++ {
						v = v<<uint(tau) | word.Field(gws[g][base+t], tau, s)
					}
					if !any || wantMin && v < best || !wantMin && v > best {
						best = v
					}
					any = true
				}
			}
			bests[gi], anys[gi] = best, any
		}
	}
}
