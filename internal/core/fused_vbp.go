package core

import (
	"math/bits"

	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// VBPFusedSumCount computes SUM and COUNT over segments [segLo, segHi) in
// one fused pass: each segment's filter word comes straight from the
// predicate conjunction (never a bitmap), all-match segments are answered
// from the per-segment sum cache, and the rest run the per-bit popcount
// body of VBPSumRange.
func VBPFusedSumCount(col *vbp.Column, preds []scan.WindowPred, segLo, segHi int, st *FusedStats) (sum, cnt uint64) {
	k := col.K()
	bSum := make([]uint64, k)
	groups := col.Groups()
	var acc *vbpBlockSum
	if PosPopEnabled {
		acc = newVBPBlockSum(k, bSum)
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if zs, ok := col.SegmentSum(seg); ok {
				sum += zs
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += uint64(k)
		if acc != nil {
			acc.push(col, seg, fw)
			continue
		}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				bSum[gr.StartBit+b] += uint64(bits.OnesCount64(gr.Words[base+b] & fw))
			}
		}
	}
	if acc != nil {
		acc.finish(col)
	}
	for p := 0; p < k; p++ {
		sum += bSum[p] << uint(k-1-p)
	}
	return sum, cnt
}

// VBPFusedFoldExtreme folds segments [segLo, segHi) into temp via
// SLOTMIN/SLOTMAX with fused filter words. All-match segments are served
// from the exact zone extremes into the scalar running best instead of
// the fold; the caller merges best (when any is true) with the
// reconstructed temp finalists.
func VBPFusedFoldExtreme(col *vbp.Column, preds []scan.WindowPred, temp []uint64, wantMin bool, segLo, segHi int, st *FusedStats) (best uint64, any bool, cnt uint64) {
	k := col.K()
	groups := col.Groups()
	x := make([]uint64, k)
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if lo, hi, ok := col.SegmentRangeExact(seg); ok {
				v := lo
				if !wantMin {
					v = hi
				}
				if !any || wantMin && v < best || !wantMin && v > best {
					best = v
				}
				any = true
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += uint64(k)
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			copy(x[gr.StartBit:gr.StartBit+gr.Bits], gr.Words[base:base+gr.Bits])
		}
		var m uint64
		if wantMin {
			m, _ = scan.VBPSlotCompare(x, temp)
		} else {
			m, _ = scan.VBPSlotCompareGT(x, temp)
		}
		m &= fw
		if m == 0 {
			continue
		}
		for p := 0; p < k; p++ {
			temp[p] = word.Blend(m, x[p], temp[p])
		}
	}
	return best, any, cnt
}

// VBPFusedCount counts the tuples selected by the predicate conjunction
// over segments [segLo, segHi) without materializing anything: each
// filter word is popcounted while register-resident. COUNT touches no
// packed aggregate words, so only the scan-side counters move.
func VBPFusedCount(col *vbp.Column, preds []scan.WindowPred, segLo, segHi int, st *FusedStats) (cnt uint64) {
	if PosPopEnabled {
		var oc word.OnesCounter
		for seg := segLo; seg < segHi; seg++ {
			fw, _ := FusedWindow(preds, seg, st)
			oc.Feed(fw & word.LowMask(col.SegmentValues(seg)))
		}
		return oc.Total()
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, _ := FusedWindow(preds, seg, st)
		fw &= word.LowMask(col.SegmentValues(seg))
		cnt += uint64(bits.OnesCount64(fw))
	}
	return cnt
}

// VBPFusedCandidates fills the per-segment rank candidate vectors
// directly from the predicate conjunction — the fused replacement for
// scan + NewVBPCandidates — and returns the number of selected tuples.
// The radix rounds then run unchanged on v.
func VBPFusedCandidates(col *vbp.Column, preds []scan.WindowPred, v []uint64, segLo, segHi int, st *FusedStats) (cnt uint64) {
	if PosPopEnabled {
		var oc word.OnesCounter
		for seg := segLo; seg < segHi; seg++ {
			fw, _ := FusedWindow(preds, seg, st)
			fw &= word.LowMask(col.SegmentValues(seg))
			v[seg] = fw
			oc.Feed(fw)
		}
		return oc.Total()
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, _ := FusedWindow(preds, seg, st)
		fw &= word.LowMask(col.SegmentValues(seg))
		v[seg] = fw
		cnt += uint64(bits.OnesCount64(fw))
	}
	return cnt
}
