package core

import (
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func benchCol(b *testing.B, k, n int, sel float64) (*vbp.Column, *bitvec.Bitmap) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, n)
	f := bitvec.New(n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
		if rng.Float64() < sel {
			f.Set(i)
		}
	}
	return vbp.Pack(vals, k, 4), f
}

func benchSum(b *testing.B, on bool) {
	col, f := benchCol(b, 25, 1<<20, 0.1)
	old := PosPopEnabled
	PosPopEnabled = on
	defer func() { PosPopEnabled = old }()
	b.SetBytes(int64(25 * (1 << 20) / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VBPSumRange(col, f, 0, col.NumSegments())
	}
}

func BenchmarkVBPSumLegacy(b *testing.B) { benchSum(b, false) }
func BenchmarkVBPSumPosPop(b *testing.B) { benchSum(b, true) }
