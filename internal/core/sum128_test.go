package core

import (
	"math/big"
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func TestSumOverflowPossible(t *testing.T) {
	cases := []struct {
		k, n int
		want bool
	}{
		{1, 0, false},
		{0, 100, false},
		{64, 1, false}, // one max value is exactly 2^64-1
		{64, 2, true},  // 2·(2^64-1) wraps
		{63, 2, false}, // 2·(2^63-1) = 2^64-2 fits
		{63, 3, true},  // 3·(2^63-1) wraps
		{1, 1 << 30, false},
		{32, 1 << 30, false}, // 2^30·(2^32-1) < 2^64
		{32, 1 << 33, true},  // 2^33·(2^32-1) ≥ 2^64
	}
	for _, c := range cases {
		if got := SumOverflowPossible(c.k, c.n); got != c.want {
			t.Errorf("SumOverflowPossible(%d, %d) = %v, want %v", c.k, c.n, got, c.want)
		}
	}
}

func TestAdd128Primitives(t *testing.T) {
	hi, lo := add128(0, ^uint64(0), 1)
	if hi != 1 || lo != 0 {
		t.Fatalf("add128 carry: got (%d, %d)", hi, lo)
	}
	hi, lo = addShift128(0, 0, ^uint64(0), 1)
	if hi != 1 || lo != ^uint64(0)-1 {
		t.Fatalf("addShift128: got (%d, %d)", hi, lo)
	}
	hi, lo = addShift128(0, 0, 7, 0)
	if hi != 0 || lo != 7 {
		t.Fatalf("addShift128 s=0: got (%d, %d)", hi, lo)
	}
	hi, lo = add128Shifted(0, 0, 1, 1, 4)
	if hi != 16 || lo != 16 {
		t.Fatalf("add128Shifted: got (%d, %d)", hi, lo)
	}
	hi, lo = add128Shifted(2, 3, 1, 5, 0)
	if hi != 3 || lo != 8 {
		t.Fatalf("add128Shifted s=0: got (%d, %d)", hi, lo)
	}
}

// big128 maps (hi, lo) to a big.Int for comparison against a naive sum.
func big128(hi, lo uint64) *big.Int {
	b := new(big.Int).SetUint64(hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(lo))
}

// TestSumRange128MatchesBigInt drives both checked range kernels over
// random wide columns and filters and compares against a big.Int loop.
func TestSumRange128MatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{59, 62, 63, 64} {
		for _, n := range []int{1, 63, 64, 65, 200} {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64() & word.LowMask(k)
			}
			f := bitvec.New(n)
			want := new(big.Int)
			for i, v := range vals {
				if rng.Intn(4) != 0 {
					f.Set(i)
					want.Add(want, new(big.Int).SetUint64(v))
				}
			}

			vc := vbp.New(k, 4)
			vc.Append(vals...)
			hi, lo := VBPSumRange128(vc, f, 0, vc.NumSegments())
			if got := big128(hi, lo); got.Cmp(want) != 0 {
				t.Errorf("VBPSumRange128 k=%d n=%d: got %s, want %s", k, n, got, want)
			}

			tau := k
			if tau > 31 {
				tau = 31
			}
			hc := hbp.New(k, tau)
			hc.Append(vals...)
			hf := bitvec.New(n)
			for i := 0; i < n; i++ {
				if f.Get(i) {
					hf.Set(i)
				}
			}
			hi, lo = HBPSumRange128(hc, hf, 0, hc.NumSegments())
			if got := big128(hi, lo); got.Cmp(want) != 0 {
				t.Errorf("HBPSumRange128 k=%d tau=%d n=%d: got %s, want %s", k, tau, n, got, want)
			}
		}
	}
}

// TestSumRange128AgreesWithUnchecked pins the checked kernels to the
// unchecked ones on columns that provably cannot wrap.
func TestSumRange128AgreesWithUnchecked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k, n = 40, 300
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
	}
	f := bitvec.New(n)
	for i := 0; i < n; i += 3 {
		f.Set(i)
	}

	vc := vbp.New(k, 4)
	vc.Append(vals...)
	hi, lo := VBPSumRange128(vc, f, 0, vc.NumSegments())
	if want := VBPSumRange(vc, f, 0, vc.NumSegments()); hi != 0 || lo != want {
		t.Errorf("VBP: checked (%d, %d) vs unchecked %d", hi, lo, want)
	}

	hc := hbp.New(k, 8)
	hc.Append(vals...)
	hi, lo = HBPSumRange128(hc, f, 0, hc.NumSegments())
	if want := HBPSumRange(hc, f, 0, hc.NumSegments()); hi != 0 || lo != want {
		t.Errorf("HBP: checked (%d, %d) vs unchecked %d", hi, lo, want)
	}
}
