package core

import "bpagg/internal/scan"

// Fused scan→aggregate execution (single-pass operator fusion): per
// segment, the conjunction of WindowPred filter words is computed and fed
// into the aggregate kernel while still register-resident, so the filter
// bitmap never round-trips through memory. All-match segments — every
// predicate decided "all" by its zone — are answered from the per-segment
// aggregate caches (vbp/hbp SegmentSum, SegmentRangeExact) without
// touching a single packed word.
//
// The kernels stay bit-identical to the two-phase path: the window
// evaluation replicates the scan twins, the per-segment aggregate bodies
// replicate the Range kernels, and the cached answers equal what the
// kernels would compute (exact per-segment sums and extremes).

// FusedStats accumulates the work counters of one fused pass. The scan-
// side fields mirror the Stats scan twins (per predicate per window); the
// aggregate-side fields mirror the analytic collect helpers of the
// two-phase drivers, minus the cache-served segments — the measurable
// WordsTouched drop.
type FusedStats struct {
	SegmentsScanned     uint64
	SegmentsPrunedNone  uint64
	SegmentsPrunedAll   uint64
	WordsCompared       uint64
	SegmentsAggregated  uint64
	WordsTouched        uint64
	SegmentsCacheServed uint64
}

// Add merges worker partials; all fields are sums.
func (s FusedStats) Add(o FusedStats) FusedStats {
	s.SegmentsScanned += o.SegmentsScanned
	s.SegmentsPrunedNone += o.SegmentsPrunedNone
	s.SegmentsPrunedAll += o.SegmentsPrunedAll
	s.WordsCompared += o.WordsCompared
	s.SegmentsAggregated += o.SegmentsAggregated
	s.WordsTouched += o.WordsTouched
	s.SegmentsCacheServed += o.SegmentsCacheServed
	return s
}

// FusedWindow evaluates the AND-conjunction of preds over window win and
// returns the still-register-resident filter word. allMatch reports that
// every predicate zone-decided "all" (the cache-service opportunity); the
// returned word is then all-ones and the caller masks it to the window's
// valid tuples. Exported so the wide-word kernels of internal/wide feed
// from the same conjunction (and move the same counters) as the core ones.
//
// For a single predicate the counters are exactly those of the Stats scan
// twin. For conjunctions the fused path may count less: once a predicate
// prunes the window to none — or the running word empties — the remaining
// predicates are skipped entirely, which is the point of fusing.
func FusedWindow(preds []scan.WindowPred, win int, st *FusedStats) (fw uint64, allMatch bool) {
	fw = ^uint64(0)
	allMatch = true
	for _, p := range preds {
		none, all, ok := p.Decide(win)
		if ok {
			if none {
				st.SegmentsPrunedNone++
				return 0, false
			}
			if all {
				st.SegmentsPrunedAll++
				continue
			}
		}
		allMatch = false
		st.SegmentsScanned++
		w, words := p.Eval(win)
		st.WordsCompared += words
		fw &= w
		if fw == 0 {
			return 0, false
		}
	}
	return fw, allMatch
}
