package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/word"
)

func BenchmarkHBPSumProfile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	for _, k := range []int{24, 25} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & word.LowMask(k)
		}
		tau := hbp.DefaultTau(k)
		col := hbp.Pack(vals, k, tau)
		sparse := bitvec.New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.012 {
				sparse.Set(i)
			}
		}
		full := bitvec.NewFull(n)
		b.Run(fmt.Sprintf("k=%d/tau=%d/sparse", k, tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				HBPSum(col, sparse)
			}
		})
		b.Run(fmt.Sprintf("k=%d/tau=%d/dense", k, tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				HBPSum(col, full)
			}
		})
	}
}
