package core

import (
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// SumOverflowPossible reports whether SUM over any selection of n k-bit
// codes could exceed uint64: n·(2^k−1) ≥ 2^64. The test is column-level
// (it ignores the actual selection and data), so a true result only means
// the checked 128-bit kernels must run — they report overflow exactly.
// A false result is a proof: no selection of the column can wrap, and the
// unchecked kernels stay on their fast path.
func SumOverflowPossible(k, n int) bool {
	if k <= 0 || n <= 0 {
		return false
	}
	hi, _ := bits.Mul64(uint64(n), word.LowMask(k))
	return hi != 0
}

// SumCacheExactK is the widest code width at which a per-segment sum
// cache entry is trusted by the checked kernels: a segment holds at most
// 64 values, so its true sum is below 2^(k+6), and the uint64 zSum cannot
// itself have wrapped when k ≤ 58. For wider codes the checked kernels
// recompute the segment instead of serving the cache. Exported for the
// range index builder, which applies the same trust bound.
const SumCacheExactK = 58

const sumCacheExactK = SumCacheExactK

// add128, addShift128 and add128Shifted are the 128-bit accumulator
// primitives, shared with the prefix-sum range index via internal/word.
func add128(hi, lo, v uint64) (uint64, uint64) {
	return word.Add128(hi, lo, v)
}

func addShift128(hi, lo, v uint64, s uint) (uint64, uint64) {
	return word.AddShift128(hi, lo, v, s)
}

func add128Shifted(hi, lo, vhi, vlo uint64, s uint) (uint64, uint64) {
	return word.Add128Shifted(hi, lo, vhi, vlo, s)
}

// VBPSumRange128 is the checked twin of VBPSumRange: identical per-bit
// popcount accumulation (bSum[p] counts selected rows and cannot wrap),
// with the weighted shift-combine carried out in 128 bits.
func VBPSumRange128(col *vbp.Column, f *bitvec.Bitmap, segLo, segHi int) (hi, lo uint64) {
	k := col.K()
	bSum := make([]uint64, k)
	vbpBSumRange(col, f, bSum, segLo, segHi)
	for p := 0; p < k; p++ {
		hi, lo = addShift128(hi, lo, bSum[p], uint(k-1-p))
	}
	return hi, lo
}

// HBPSumRange128 is the checked twin of HBPSumRange. Per-group partial
// sums accumulate in 128 bits (one add per segment — the per-segment part
// of a group is at most 64 fields of τ ≤ 31 bits and cannot wrap), and
// the final weighted combine shifts the 128-bit group totals. Only the
// slow Gilles–Miller loop shape is kept: the checked path runs rarely
// (only when overflow is possible at all) and favors clarity.
func HBPSumRange128(col *hbp.Column, f *bitvec.Bitmap, segLo, segHi int) (hi, lo uint64) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	gws := groupSlices(col)

	his := make([]uint64, b)
	los := make([]uint64, b)
	parts := make([]uint64, b)
	for seg := segLo; seg < segHi; seg++ {
		fw := segWindow(f, col, seg)
		if fw == 0 {
			continue
		}
		for g := range parts {
			parts[g] = 0
		}
		base := seg * subs
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(fw, t)
			if md == 0 {
				continue
			}
			m := word.SpreadDelims(md, tau)
			for g := 0; g < b; g++ {
				parts[g] += summer.Sum(gws[g][base+t] & m)
			}
		}
		for g := 0; g < b; g++ {
			his[g], los[g] = add128(his[g], los[g], parts[g])
		}
	}
	for g := 0; g < b; g++ {
		hi, lo = add128Shifted(hi, lo, his[g], los[g], uint((b-1-g)*tau))
	}
	return hi, lo
}

// VBPFusedSumCount128 is the checked twin of VBPFusedSumCount. All-match
// segments are served from the zSum cache only when k ≤ sumCacheExactK
// (the cache entry itself is exact there); wider segments recompute.
func VBPFusedSumCount128(col *vbp.Column, preds []scan.WindowPred, segLo, segHi int, st *FusedStats) (hi, lo, cnt uint64) {
	k := col.K()
	bSum := make([]uint64, k)
	groups := col.Groups()
	cacheOK := k <= sumCacheExactK
	var acc *vbpBlockSum
	if PosPopEnabled {
		acc = newVBPBlockSum(k, bSum)
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch && cacheOK {
			if zs, ok := col.SegmentSum(seg); ok {
				hi, lo = add128(hi, lo, zs)
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += uint64(k)
		if acc != nil {
			acc.push(col, seg, fw)
			continue
		}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				bSum[gr.StartBit+b] += uint64(bits.OnesCount64(gr.Words[base+b] & fw))
			}
		}
	}
	if acc != nil {
		acc.finish(col)
	}
	for p := 0; p < k; p++ {
		hi, lo = addShift128(hi, lo, bSum[p], uint(k-1-p))
	}
	return hi, lo, cnt
}

// HBPFusedSumCount128 is the checked twin of HBPFusedSumCount, with the
// same cache gate and 128-bit accumulation as HBPSumRange128.
func HBPFusedSumCount128(col *hbp.Column, preds []scan.WindowPred, segLo, segHi int, st *FusedStats) (hi, lo, cnt uint64) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	gws := groupSlices(col)
	cacheOK := col.K() <= sumCacheExactK

	his := make([]uint64, b)
	los := make([]uint64, b)
	parts := make([]uint64, b)
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch && cacheOK {
			if zs, ok := col.SegmentSum(seg); ok {
				hi, lo = add128(hi, lo, zs)
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += hbpLiveSubs(col, fw) * uint64(b)
		for g := range parts {
			parts[g] = 0
		}
		base := seg * subs
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(fw, t)
			if md == 0 {
				continue
			}
			m := word.SpreadDelims(md, tau)
			for g := 0; g < b; g++ {
				parts[g] += summer.Sum(gws[g][base+t] & m)
			}
		}
		for g := 0; g < b; g++ {
			his[g], los[g] = add128(his[g], los[g], parts[g])
		}
	}
	for g := 0; g < b; g++ {
		hi, lo = add128Shifted(hi, lo, his[g], los[g], uint((b-1-g)*tau))
	}
	return hi, lo, cnt
}
