package core

import (
	"errors"
	"math/bits"
	"sort"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Single-pass grouped execution (DESIGN.md §12): instead of the legacy
// G-scan key discovery (repeated MIN + equality scans) followed by G
// independent aggregate passes, the partition kernels below visit each
// 64-value segment once, refine the query's filter word into per-group
// selection words for every dictionary code present, and discover the
// keys as a side effect. The VBP kernel descends the column's bit-planes
// as a binary tree — a node is (code prefix, selection word), and plane p
// splits every live node into its 0- and 1-children with two ANDs — so a
// segment costs at most k plane reads no matter how many groups it
// holds. The HBP kernel peels delimiter bits per sub-segment window and
// reconstructs each selected tuple's code from the word-group fields.
// Zone metadata short-circuits both: a segment whose zone range pins a
// single code banks its filter word without touching a packed word, and
// the shared zone prefix skips the top bit-planes of the VBP descent.
//
// The banked aggregate kernels then compute SUM/MIN/MAX for all groups
// in one further pass per measure column, sharing each packed plane read
// across every group live in the segment. SUM accumulates per-bit
// popcount banks (which cannot wrap — they count rows) and combines in
// 128 bits, so grouped sums inherit the exact-overflow contract of the
// checked kernels.

// MaxGroups bounds the distinct keys a single-pass GROUP BY will bank
// before giving up. Past this cardinality the per-group banks stop
// paying for themselves and the caller falls back to the legacy
// per-group path (the same shape as Query.Fused's fallback gate).
const MaxGroups = 1024

// ErrGroupCardinality reports that a partition kernel discovered more
// than MaxGroups distinct keys. It is a planner signal, not a failure:
// callers fall back to the legacy per-group path.
var ErrGroupCardinality = errors.New("core: group cardinality exceeds single-pass limit")

// GroupStats accumulates the work counters of one grouped pass.
// Segments and Words follow the analytic conventions of DESIGN.md §8:
// a live, non-cache-served segment charges its packed-word reads
// independent of thread count and of dynamic zone gating.
type GroupStats struct {
	Segments    uint64
	Words       uint64
	CacheServed uint64
}

// Add merges worker partials; all fields are sums.
func (s GroupStats) Add(o GroupStats) GroupStats {
	s.Segments += o.Segments
	s.Words += o.Words
	s.CacheServed += o.CacheServed
	return s
}

// GroupBank holds one worker's per-group selection words over its
// segment range [SegLo, SegHi). Keys stays sorted ascending; Words[i]
// holds key Keys[i]'s selection word for each segment (index seg-SegLo).
// BankWords counts the non-zero (key, segment) words banked — the
// bank's real memory footprint.
type GroupBank struct {
	SegLo, SegHi int
	Keys         []uint64
	Words        [][]uint64
	BankWords    uint64
	direct       []int32 // key → Keys index, -1 when absent; nil when disabled
}

// NewGroupBank returns an empty bank for segments [segLo, segHi).
func NewGroupBank(segLo, segHi int) *GroupBank {
	return &GroupBank{SegLo: segLo, SegHi: segHi}
}

// DirectKeyBits is the widest grouping-key width for which EnableDirect
// indexes keys with a direct-mapped table. 2^10 entries equals MaxGroups,
// so an enabled bank can always hold every possible key.
const DirectKeyBits = 10

// EnableDirect switches slot lookups from binary search to a
// direct-mapped table when the key width allows it. The partition
// kernels pay one slot lookup per distinct code per segment (VBP) or per
// sub-segment word (HBP), so the table is what keeps low-cardinality
// partitions cheap. No-op above DirectKeyBits.
func (b *GroupBank) EnableDirect(k int) {
	if k > DirectKeyBits {
		return
	}
	b.direct = make([]int32, 1<<uint(k))
	for i := range b.direct {
		b.direct[i] = -1
	}
}

// slot returns key's per-segment selection words, discovering the key on
// first use. ok is false when the bank is full (MaxGroups distinct keys).
func (b *GroupBank) slot(key uint64) ([]uint64, bool) {
	if b.direct != nil {
		if i := b.direct[key]; i >= 0 {
			return b.Words[i], true
		}
	}
	i := sort.Search(len(b.Keys), func(j int) bool { return b.Keys[j] >= key })
	if b.direct == nil && i < len(b.Keys) && b.Keys[i] == key {
		return b.Words[i], true
	}
	if len(b.Keys) >= MaxGroups {
		return nil, false
	}
	ws := make([]uint64, b.SegHi-b.SegLo)
	b.Keys = append(b.Keys, 0)
	copy(b.Keys[i+1:], b.Keys[i:])
	b.Keys[i] = key
	b.Words = append(b.Words, nil)
	copy(b.Words[i+1:], b.Words[i:])
	b.Words[i] = ws
	if b.direct != nil {
		b.direct[key] = int32(i)
		for _, k2 := range b.Keys[i+1:] {
			b.direct[k2]++
		}
	}
	return ws, true
}

// Lookup returns key's selection words without discovering it.
func (b *GroupBank) Lookup(key uint64) ([]uint64, bool) {
	i := sort.Search(len(b.Keys), func(j int) bool { return b.Keys[j] >= key })
	if i < len(b.Keys) && b.Keys[i] == key {
		return b.Words[i], true
	}
	return nil, false
}

// vbpPlanes builds the per-bit-position plane lookup: plane p of segment
// seg lives at words[p][seg*stride[p]+off[p]]. Bit position 0 is the MSB,
// matching the column's packing.
type vbpPlanes struct {
	words  [][]uint64
	stride []int
	off    []int
}

func newVBPPlanes(col *vbp.Column) vbpPlanes {
	k, tau := col.K(), col.Tau()
	groups := col.Groups()
	pl := vbpPlanes{
		words:  make([][]uint64, k),
		stride: make([]int, k),
		off:    make([]int, k),
	}
	for p := 0; p < k; p++ {
		gr := &groups[p/tau]
		pl.words[p] = gr.Words
		pl.stride[p] = gr.Bits
		pl.off[p] = p - gr.StartBit
	}
	return pl
}

func (pl *vbpPlanes) word(p, seg int) uint64 {
	return pl.words[p][seg*pl.stride[p]+pl.off[p]]
}

// VBPGroupPartitionRange refines the filter words of segments
// [segLo, segHi) into per-group selection words, banking them (and
// discovering keys) in bank. Each live segment descends the bit-planes
// once: a node (prefix, word) splits into (prefix·0, w AND NOT plane)
// and (prefix·1, w AND plane), so the segment costs at most k plane
// reads total. The zone range prunes the descent: a single-code segment
// banks its filter word directly (cache-served), and the codes' shared
// zone prefix skips the top planes.
func VBPGroupPartitionRange(col *vbp.Column, f *bitvec.Bitmap, bank *GroupBank, segLo, segHi int, st *GroupStats) error {
	k := col.K()
	pl := newVBPPlanes(col)
	var bufP, bufW [2][64]uint64
	curP, nxtP := bufP[0][:], bufP[1][:]
	curW, nxtW := bufW[0][:], bufW[1][:]
	for seg := segLo; seg < segHi; seg++ {
		fw := f.Word(seg) & word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		zlo, zhi, zok := col.ZoneRange(seg)
		if zok && zlo == zhi {
			ws, ok := bank.slot(zlo)
			if !ok {
				return ErrGroupCardinality
			}
			ws[seg-bank.SegLo] = fw
			bank.BankWords++
			st.CacheServed++
			continue
		}
		if !zok {
			zlo, zhi = 0, word.LowMask(k)
		}
		shared := bits.LeadingZeros64(zlo^zhi) - (64 - k)
		if shared < 0 {
			shared = 0
		}
		st.Segments++
		st.Words += uint64(k - shared)
		curP[0] = zlo >> uint(k-shared)
		curW[0] = fw
		cn := 1
		for p := shared; p < k; p++ {
			x := pl.word(p, seg)
			nn := 0
			for i := 0; i < cn; i++ {
				w, pre := curW[i], curP[i]<<1
				if w0 := w &^ x; w0 != 0 {
					nxtP[nn], nxtW[nn] = pre, w0
					nn++
				}
				if w1 := w & x; w1 != 0 {
					nxtP[nn], nxtW[nn] = pre|1, w1
					nn++
				}
			}
			curP, nxtP = nxtP, curP
			curW, nxtW = nxtW, curW
			cn = nn
		}
		for i := 0; i < cn; i++ {
			ws, ok := bank.slot(curP[i])
			if !ok {
				return ErrGroupCardinality
			}
			ws[seg-bank.SegLo] = curW[i]
			bank.BankWords++
		}
	}
	return nil
}

// HBPGroupPartitionRange is the HBP analogue: per sub-segment window the
// pending delimiter bits peel off one *distinct code* at a time — the
// lowest pending slot's code is assembled from its word-group fields,
// then one Lamport equality per word-group (the scans' BIT-PARALLEL-EQUAL)
// matches every other selected occurrence of that code in the word at
// once, so the slot lookup and bank update are paid per distinct code
// rather than per tuple. Single-code segments (by zone range) bank the
// whole filter window directly.
func HBPGroupPartitionRange(col *hbp.Column, f *bitvec.Bitmap, bank *GroupBank, segLo, segHi int, st *GroupStats) error {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	fWidth := col.FieldWidth()
	delim := col.DelimMask()
	ones := word.Repeat(1, fWidth, col.FieldsPerWord())
	gws := groupSlices(col)
	for seg := segLo; seg < segHi; seg++ {
		fw := segWindow(f, col, seg)
		if fw == 0 {
			continue
		}
		if zlo, zhi, zok := col.ZoneRange(seg); zok && zlo == zhi {
			ws, ok := bank.slot(zlo)
			if !ok {
				return ErrGroupCardinality
			}
			ws[seg-bank.SegLo] = fw
			bank.BankWords++
			st.CacheServed++
			continue
		}
		st.Segments++
		base := seg * subs
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(fw, t)
			if md == 0 {
				continue
			}
			st.Words += uint64(b)
			for md != 0 {
				s := bits.TrailingZeros64(md) / fWidth
				var key uint64
				eq := md
				for g := 0; g < b; g++ {
					x := gws[g][base+t]
					v := word.Field(x, tau, s)
					key = key<<uint(tau) | v
					eq &= word.EQDelims(x, v*ones, delim)
				}
				ws, ok := bank.slot(key)
				if !ok {
					return ErrGroupCardinality
				}
				w := &ws[seg-bank.SegLo]
				if *w == 0 {
					bank.BankWords++
				}
				*w |= col.ScatterDelims(eq, t)
				md &^= eq
			}
		}
	}
	return nil
}

// VBPGroupSumRange128 accumulates the SUM banks of every group over
// segments [segLo, segHi): bSums (len(sels)*k, bit-major per group)
// collects per-bit popcounts, sharing each plane read across all groups
// live in the segment; his/los (len(sels)) receive exact cache-served
// segment sums for groups covering a whole segment alone. The caller
// combines with VBPGroupSumFinish. Everything accumulates, so worker
// sub-range calls compose.
func VBPGroupSumRange128(col *vbp.Column, sels []*bitvec.Bitmap, segLo, segHi int, bSums, his, los []uint64, st *GroupStats) {
	k := col.K()
	pl := newVBPPlanes(col)
	cacheOK := k <= sumCacheExactK
	liveG := make([]int, 0, 64)
	liveW := make([]uint64, 0, 64)
	// Single-live-group runs (every segment of sorted data, most of
	// clustered data) carry-save through the run accumulator; the sink
	// lands in the same bSums bank the per-word loop fills, so the combine
	// in VBPGroupSumFinish is oblivious to the route. Cache-served
	// segments don't disturb the run — addition order is irrelevant.
	var acc *vbpRunSum
	var sink func(gi, p int, c uint64)
	if PosPopEnabled {
		acc = newVBPRunSum(k)
		sink = func(gi, p int, c uint64) { bSums[gi*k+p] += c }
	}
	for seg := segLo; seg < segHi; seg++ {
		liveG, liveW = liveG[:0], liveW[:0]
		for gi, s := range sels {
			if w := s.Word(seg); w != 0 {
				liveG = append(liveG, gi)
				liveW = append(liveW, w)
			}
		}
		if len(liveG) == 0 {
			continue
		}
		if cacheOK && len(liveG) == 1 && liveW[0] == word.LowMask(col.SegmentValues(seg)) {
			if zs, ok := col.SegmentSum(seg); ok {
				gi := liveG[0]
				his[gi], los[gi] = add128(his[gi], los[gi], zs)
				st.CacheServed++
				continue
			}
		}
		st.Segments++
		st.Words += uint64(k)
		if acc != nil && len(liveG) == 1 {
			acc.push(&pl, liveG[0], seg, liveW[0], sink)
			continue
		}
		if acc != nil {
			acc.drain(&pl, sink)
		}
		for p := 0; p < k; p++ {
			x := pl.word(p, seg)
			if x == 0 {
				continue
			}
			for i, gi := range liveG {
				bSums[gi*k+p] += uint64(bits.OnesCount64(x & liveW[i]))
			}
		}
	}
	if acc != nil {
		acc.drain(&pl, sink)
	}
}

// VBPGroupSumFinish folds the per-bit banks into the per-group 128-bit
// totals his/los, after all worker banks have been summed into bSums.
func VBPGroupSumFinish(k int, bSums, his, los []uint64) {
	for gi := range his {
		for p := 0; p < k; p++ {
			his[gi], los[gi] = addShift128(his[gi], los[gi], bSums[gi*k+p], uint(k-1-p))
		}
	}
}

// HBPGroupSumRange128 accumulates per-group per-bit-group 128-bit
// partials over segments [segLo, segHi): ghis/glos have len(sels)*b
// entries (bit-group-major per group). Cache-served whole-segment sums
// for a lone covering group go to his/los (len(sels)) directly. The
// caller combines with HBPGroupSumFinish.
func HBPGroupSumRange128(col *hbp.Column, sels []*bitvec.Bitmap, segLo, segHi int, ghis, glos, his, los []uint64, st *GroupStats) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	gws := groupSlices(col)
	cacheOK := col.K() <= sumCacheExactK
	liveG := make([]int, 0, 64)
	liveW := make([]uint64, 0, 64)
	// Hoisted Gilles–Miller fold constants, as in HBPSumRange: the banked
	// loop runs once per (live group, data word) and the call-free fold is
	// what keeps G live groups at G× the single-sum cost.
	fast := summer.Fast()
	flush, fw2, fin, keep, mul := summer.Consts()
	peelV, peelF := summer.PeelMasks()
	var masks [word.MaxTau + 1]uint64
	for seg := segLo; seg < segHi; seg++ {
		liveG, liveW = liveG[:0], liveW[:0]
		for gi, s := range sels {
			if w := segWindow(s, col, seg); w != 0 {
				liveG = append(liveG, gi)
				liveW = append(liveW, w)
			}
		}
		if len(liveG) == 0 {
			continue
		}
		if cacheOK && len(liveG) == 1 && liveW[0] == word.LowMask(col.SegmentValues(seg)) {
			if zs, ok := col.SegmentSum(seg); ok {
				gi := liveG[0]
				his[gi], los[gi] = add128(his[gi], los[gi], zs)
				st.CacheServed++
				continue
			}
		}
		st.Segments++
		base := seg * subs
		// Complement shortcut: when the live windows cover the whole
		// segment and its exact sum is cached, the last live group's
		// contribution is the cached sum minus the other groups' — one
		// full group pass saved per segment. The skipped group still
		// charges its analytic word count (the DESIGN.md §8 convention:
		// dynamic gating never changes the counters), so stats stay
		// thread-invariant.
		compLast := -1
		var zs uint64
		if cacheOK && len(liveG) > 1 {
			var union uint64
			for _, w := range liveW {
				union |= w
			}
			if union == word.LowMask(col.SegmentValues(seg)) {
				if s, ok := col.SegmentSum(seg); ok {
					zs = s
					compLast = len(liveG) - 1
				}
			}
		}
		var compSum uint64
		for i, gi := range liveG {
			fw := liveW[i]
			if i == compLast {
				st.Words += hbpLiveSubs(col, fw) * uint64(b)
				his[gi], los[gi] = add128(his[gi], los[gi], zs-compSum)
				continue
			}
			var active uint64
			for t := 0; t < subs; t++ {
				m := word.SpreadDelims(col.SubSegmentDelims(fw, t), tau)
				masks[t] = m
				if m != 0 {
					active |= 1 << uint(t)
				}
			}
			st.Words += uint64(bits.OnesCount64(active)) * uint64(b)
			for g := 0; g < b; g++ {
				run := gws[g][base : base+subs]
				var part uint64
				if fast {
					for a := active; a != 0; a &= a - 1 {
						t := bits.TrailingZeros64(a)
						w := run[t] & masks[t]
						x := (w &^ peelF) << flush
						x += x >> fw2
						x &= keep
						part += (x*mul)>>fin + w&peelV
					}
				} else {
					for a := active; a != 0; a &= a - 1 {
						t := bits.TrailingZeros64(a)
						part += summer.Sum(run[t] & masks[t])
					}
				}
				if compLast >= 0 {
					compSum += part << uint((b-1-g)*tau)
				}
				ghis[gi*b+g], glos[gi*b+g] = add128(ghis[gi*b+g], glos[gi*b+g], part)
			}
		}
	}
}

// HBPGroupSumFinish combines the weighted bit-group partials into the
// per-group 128-bit totals his/los, after all worker partials have been
// merged into ghis/glos.
func HBPGroupSumFinish(b, tau int, ghis, glos, his, los []uint64) {
	for gi := range his {
		for g := 0; g < b; g++ {
			his[gi], los[gi] = add128Shifted(his[gi], los[gi], ghis[gi*b+g], glos[gi*b+g], uint((b-1-g)*tau))
		}
	}
}

// Add128Pairs adds the 128-bit accumulators (ohis, olos) element-wise
// into (his, los) — the worker-merge primitive for the grouped drivers.
func Add128Pairs(his, los, ohis, olos []uint64) {
	for i := range his {
		lo, carry := bits.Add64(los[i], olos[i], 0)
		his[i] += ohis[i] + carry
		los[i] = lo
	}
}

// VBPGroupExtremeRange folds MIN (or MAX) candidates for every group
// over segments [segLo, segHi) into bests/anys (len(sels) each). Each
// group's selection word descends the shared plane reads as a scalar
// bit-descent; a group covering a whole segment alone is served from the
// exact zone range, and the segment zone range gates groups that cannot
// improve their running best. Stats follow the analytic convention:
// a live, non-fully-cache-served segment charges k words regardless of
// dynamic gating, so the counters stay thread-invariant.
func VBPGroupExtremeRange(col *vbp.Column, sels []*bitvec.Bitmap, wantMin bool, segLo, segHi int, bests []uint64, anys []bool, st *GroupStats) {
	k := col.K()
	pl := newVBPPlanes(col)
	liveG := make([]int, 0, 64)
	liveW := make([]uint64, 0, 64)
	for seg := segLo; seg < segHi; seg++ {
		liveG, liveW = liveG[:0], liveW[:0]
		for gi, s := range sels {
			if w := s.Word(seg); w != 0 {
				liveG = append(liveG, gi)
				liveW = append(liveW, w)
			}
		}
		if len(liveG) == 0 {
			continue
		}
		zlo, zhi, zok := col.ZoneRange(seg)
		full := word.LowMask(col.SegmentValues(seg))
		served := 0
		if len(liveG) == 1 && liveW[0] == full {
			if lo, hi, ok := col.SegmentRangeExact(seg); ok {
				v := lo
				if !wantMin {
					v = hi
				}
				gi := liveG[0]
				if !anys[gi] || wantMin && v < bests[gi] || !wantMin && v > bests[gi] {
					bests[gi] = v
				}
				anys[gi] = true
				st.CacheServed++
				served = 1
			}
		}
		if served == len(liveG) {
			continue
		}
		st.Segments++
		st.Words += uint64(k)
		for i, gi := range liveG {
			// Zone gate: this segment's values all lie in [zlo, zhi], so a
			// group whose running best already beats the whole range needs
			// no descent (a perf-only cut; the stats above ignore it).
			if zok && anys[gi] {
				if wantMin && zlo >= bests[gi] || !wantMin && zhi <= bests[gi] {
					continue
				}
			}
			m := liveW[i]
			var v uint64
			if wantMin {
				for p := 0; p < k; p++ {
					if z := m &^ pl.word(p, seg); z != 0 {
						m = z
					} else {
						v |= 1 << uint(k-1-p)
					}
				}
			} else {
				for p := 0; p < k; p++ {
					if z := m & pl.word(p, seg); z != 0 {
						m = z
						v |= 1 << uint(k-1-p)
					}
				}
			}
			if !anys[gi] || wantMin && v < bests[gi] || !wantMin && v > bests[gi] {
				bests[gi] = v
			}
			anys[gi] = true
		}
	}
}

// HBPGroupExtremeRange is the HBP analogue of VBPGroupExtremeRange:
// selected tuples peel off each group's sub-segment windows and
// reconstruct from the word-group fields, with the same zone serving and
// gating.
func HBPGroupExtremeRange(col *hbp.Column, sels []*bitvec.Bitmap, wantMin bool, segLo, segHi int, bests []uint64, anys []bool, st *GroupStats) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	fWidth := col.FieldWidth()
	gws := groupSlices(col)
	liveG := make([]int, 0, 64)
	liveW := make([]uint64, 0, 64)
	for seg := segLo; seg < segHi; seg++ {
		liveG, liveW = liveG[:0], liveW[:0]
		for gi, s := range sels {
			if w := segWindow(s, col, seg); w != 0 {
				liveG = append(liveG, gi)
				liveW = append(liveW, w)
			}
		}
		if len(liveG) == 0 {
			continue
		}
		zlo, zhi, zok := col.ZoneRange(seg)
		full := word.LowMask(col.SegmentValues(seg))
		served := 0
		if len(liveG) == 1 && liveW[0] == full {
			if lo, hi, ok := col.SegmentRangeExact(seg); ok {
				v := lo
				if !wantMin {
					v = hi
				}
				gi := liveG[0]
				if !anys[gi] || wantMin && v < bests[gi] || !wantMin && v > bests[gi] {
					bests[gi] = v
				}
				anys[gi] = true
				st.CacheServed++
				served = 1
			}
		}
		if served == len(liveG) {
			continue
		}
		st.Segments++
		base := seg * subs
		for i, gi := range liveG {
			fw := liveW[i]
			st.Words += hbpLiveSubs(col, fw) * uint64(b)
			if zok && anys[gi] {
				if wantMin && zlo >= bests[gi] || !wantMin && zhi <= bests[gi] {
					continue
				}
			}
			best, any := bests[gi], anys[gi]
			for t := 0; t < subs; t++ {
				md := col.SubSegmentDelims(fw, t)
				if md == 0 {
					continue
				}
				for ; md != 0; md &= md - 1 {
					s := bits.TrailingZeros64(md) / fWidth
					var v uint64
					for g := 0; g < b; g++ {
						v = v<<uint(tau) | word.Field(gws[g][base+t], tau, s)
					}
					if !any || wantMin && v < best || !wantMin && v > best {
						best = v
					}
					any = true
				}
			}
			bests[gi], anys[gi] = best, any
		}
	}
}
