// Package core implements the paper's contribution: bit-parallel
// aggregation over bit-packed columns (Feng & Lo, ICDE 2015, §III).
//
// Every function takes the column in its packed form plus the dense filter
// bit vector F produced by a bit-parallel scan, and computes the aggregate
// without reconstructing values to plain 64-bit form — the step that makes
// the non-bit-parallel baseline (package nbp) burn instructions.
//
//	COUNT   popcount of F                                O(n/w)
//	SUM     VBP: Algorithm 1 (per-bit popcounts)         O(nk/w)
//	        HBP: Algorithm 4 (Gilles–Miller in-word-sum) O(nk(τ+1)/(wτ))
//	MIN/MAX VBP: Algorithm 2 (SLOTMIN/SLOTMAX)           O(nk/w)
//	        HBP: Algorithm 5 (SUB-SLOTMIN/-MAX)          O(nk(τ+1)/(wτ))
//	MEDIAN  VBP: Algorithm 3 (bitwise radix descent)     O(nk/w)
//	        HBP: Algorithm 6 (bit-group histograms)      O(nk/τ)
//	AVG     SUM / COUNT
//
// MEDIAN generalizes to any r-selection (the r-th smallest value), exposed
// as the Rank functions.
//
// Aggregates over an empty selection return ok == false (there is no
// neutral element for MIN/MAX/MEDIAN); SUM of an empty selection is 0.
package core

import "bpagg/internal/bitvec"

// Count returns the COUNT aggregate: the number of tuples passing the
// filter. It is layout-independent (§III-A [COUNT]).
func Count(f *bitvec.Bitmap) uint64 {
	return uint64(f.Count())
}

// lowerMedianRank returns the 1-based rank of the lower median among u
// values: 4th of 8, 4th of 7 (matching the paper's worked examples).
func lowerMedianRank(u uint64) uint64 {
	return (u + 1) / 2
}
