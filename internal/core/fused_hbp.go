package core

import (
	"math/bits"

	"bpagg/internal/hbp"
	"bpagg/internal/scan"
	"bpagg/internal/word"
)

// hbpLiveSubs counts the sub-segments of window fw holding at least one
// selected tuple — the per-segment unit of the dense-kernel accounting
// (hbpCollectDense's analytic definition, applied to one window).
func hbpLiveSubs(col *hbp.Column, fw uint64) uint64 {
	subs := col.SubSegments()
	var n uint64
	for t := 0; t < subs; t++ {
		if col.SubSegmentDelims(fw, t) != 0 {
			n++
		}
	}
	return n
}

// HBPFusedSumCount computes SUM and COUNT over segments [segLo, segHi) in
// one fused pass, mirroring HBPSumRange's Gilles–Miller fold (with the
// same Fast/slow twin loops) on filter words that come straight from the
// predicate conjunction. All-match segments are answered from the
// per-segment sum cache.
func HBPFusedSumCount(col *hbp.Column, preds []scan.WindowPred, segLo, segHi int, st *FusedStats) (sum, cnt uint64) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	gws := groupSlices(col)

	sums := make([]uint64, b)
	if summer.Fast() {
		flush, fw2, fin, keep, mul := summer.Consts()
		peelV, peelF := summer.PeelMasks()
		var masks [word.MaxTau + 1]uint64
		allActive := uint64(1)<<uint(subs) - 1
		for seg := segLo; seg < segHi; seg++ {
			fw, allMatch := FusedWindow(preds, seg, st)
			if fw == 0 {
				continue
			}
			if allMatch {
				if zs, ok := col.SegmentSum(seg); ok {
					sum += zs
					cnt += uint64(col.SegmentValues(seg))
					st.SegmentsCacheServed++
					continue
				}
			}
			fw &= word.LowMask(col.SegmentValues(seg))
			if fw == 0 {
				continue
			}
			cnt += uint64(bits.OnesCount64(fw))
			var active uint64
			for t := 0; t < subs; t++ {
				m := word.SpreadDelims(col.SubSegmentDelims(fw, t), tau)
				masks[t] = m
				if m != 0 {
					active |= 1 << uint(t)
				}
			}
			st.SegmentsAggregated++
			st.WordsTouched += uint64(bits.OnesCount64(active)) * uint64(b)
			base := seg * subs
			if active == allActive {
				for g := 0; g < b; g++ {
					run := gws[g][base : base+subs]
					var part uint64
					for t, w := range run {
						w &= masks[t]
						x := (w &^ peelF) << flush
						x += x >> fw2
						x &= keep
						part += (x*mul)>>fin + w&peelV
					}
					sums[g] += part
				}
				continue
			}
			for g := 0; g < b; g++ {
				run := gws[g][base : base+subs]
				var part uint64
				for a := active; a != 0; a &= a - 1 {
					t := bits.TrailingZeros64(a)
					w := run[t] & masks[t]
					x := (w &^ peelF) << flush
					x += x >> fw2
					x &= keep
					part += (x*mul)>>fin + w&peelV
				}
				sums[g] += part
			}
		}
	} else {
		for seg := segLo; seg < segHi; seg++ {
			fw, allMatch := FusedWindow(preds, seg, st)
			if fw == 0 {
				continue
			}
			if allMatch {
				if zs, ok := col.SegmentSum(seg); ok {
					sum += zs
					cnt += uint64(col.SegmentValues(seg))
					st.SegmentsCacheServed++
					continue
				}
			}
			fw &= word.LowMask(col.SegmentValues(seg))
			if fw == 0 {
				continue
			}
			cnt += uint64(bits.OnesCount64(fw))
			st.SegmentsAggregated++
			st.WordsTouched += hbpLiveSubs(col, fw) * uint64(b)
			base := seg * subs
			for t := 0; t < subs; t++ {
				md := col.SubSegmentDelims(fw, t)
				if md == 0 {
					continue
				}
				m := word.SpreadDelims(md, tau)
				for g := 0; g < b; g++ {
					sums[g] += summer.Sum(gws[g][base+t] & m)
				}
			}
		}
	}
	for g := 0; g < b; g++ {
		sum += sums[g] << uint((b-1-g)*tau)
	}
	return sum, cnt
}

// HBPFusedFoldExtreme folds segments [segLo, segHi) into temp via
// SUB-SLOTMIN/SUB-SLOTMAX with fused filter words; all-match segments are
// served from the exact zone extremes into the scalar running best.
func HBPFusedFoldExtreme(col *hbp.Column, preds []scan.WindowPred, temp []uint64, wantMin bool, segLo, segHi int, st *FusedStats) (best uint64, any bool, cnt uint64) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	delim := col.DelimMask()
	x := make([]uint64, b)
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if lo, hi, ok := col.SegmentRangeExact(seg); ok {
				v := lo
				if !wantMin {
					v = hi
				}
				if !any || wantMin && v < best || !wantMin && v > best {
					best = v
				}
				any = true
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += hbpLiveSubs(col, fw) * uint64(b)
		base := seg * subs
		for t := 0; t < subs; t++ {
			md := col.SubSegmentDelims(fw, t)
			if md == 0 {
				continue
			}
			for g := 0; g < b; g++ {
				x[g] = col.GroupWords(g)[base+t]
			}
			sel := hbpSlotLanes(x, temp, delim, wantMin)
			sel &= md
			if sel == 0 {
				continue
			}
			m := word.SpreadDelims(sel, tau)
			for g := 0; g < b; g++ {
				temp[g] = word.Blend(m, x[g], temp[g])
			}
		}
	}
	return best, any, cnt
}

// HBPFusedCount counts the tuples selected by the predicate conjunction
// over segments [segLo, segHi) without materializing anything. COUNT
// touches no packed aggregate words, so only the scan-side counters move.
func HBPFusedCount(col *hbp.Column, preds []scan.WindowPred, segLo, segHi int, st *FusedStats) (cnt uint64) {
	if PosPopEnabled {
		var oc word.OnesCounter
		for seg := segLo; seg < segHi; seg++ {
			fw, _ := FusedWindow(preds, seg, st)
			oc.Feed(fw & word.LowMask(col.SegmentValues(seg)))
		}
		return oc.Total()
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, _ := FusedWindow(preds, seg, st)
		fw &= word.LowMask(col.SegmentValues(seg))
		cnt += uint64(bits.OnesCount64(fw))
	}
	return cnt
}

// HBPFusedCandidates fills the per-segment rank candidate vectors
// directly from the predicate conjunction — the fused replacement for
// scan + NewHBPCandidates — and returns the number of selected tuples.
func HBPFusedCandidates(col *hbp.Column, preds []scan.WindowPred, v []uint64, segLo, segHi int, st *FusedStats) (cnt uint64) {
	if PosPopEnabled {
		var oc word.OnesCounter
		for seg := segLo; seg < segHi; seg++ {
			fw, _ := FusedWindow(preds, seg, st)
			fw &= word.LowMask(col.SegmentValues(seg))
			v[seg] = fw
			oc.Feed(fw)
		}
		return oc.Total()
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, _ := FusedWindow(preds, seg, st)
		fw &= word.LowMask(col.SegmentValues(seg))
		v[seg] = fw
		cnt += uint64(bits.OnesCount64(fw))
	}
	return cnt
}
