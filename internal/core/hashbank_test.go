package core

import (
	"math/rand"
	"testing"
)

// TestHashBankBudget pins the cardinality refusal: a bank built with a
// tiny limit accepts exactly limit distinct keys and refuses the next,
// while repeat bankings of known keys keep succeeding.
func TestHashBankBudget(t *testing.T) {
	b := NewHashBank(4)
	for k := uint64(0); k < 4; k++ {
		if !b.Bank(k*1000, 0, 1) {
			t.Fatalf("key %d refused inside the budget", k*1000)
		}
	}
	if b.Bank(9999, 0, 1) {
		t.Fatal("5th distinct key accepted past limit=4")
	}
	if !b.Bank(2000, 5, 1<<7) {
		t.Fatal("repeat banking of a known key refused at the budget")
	}
	if len(b.Keys) != 4 {
		t.Fatalf("Keys = %d, want 4", len(b.Keys))
	}
}

// TestHashBankCounters asserts the analytic counters: every Bank call
// probes at least one slot, growing past 50% load doubles the table, and
// BankWords counts distinct (key, segment) words — an OR into the last
// run is not a new word.
func TestHashBankCounters(t *testing.T) {
	b := NewHashBank(MaxHashGroups)
	if !b.Bank(7, 0, 1) || b.Probes == 0 {
		t.Fatalf("Probes = %d after first Bank, want > 0", b.Probes)
	}
	if b.BankWords != 1 {
		t.Fatalf("BankWords = %d, want 1", b.BankWords)
	}
	if !b.Bank(7, 0, 2) {
		t.Fatal("repeat banking refused")
	}
	if b.BankWords != 1 {
		t.Fatalf("BankWords = %d after same-segment OR, want still 1", b.BankWords)
	}
	if !b.Bank(7, 1, 4) || b.BankWords != 2 {
		t.Fatalf("BankWords = %d after new segment, want 2", b.BankWords)
	}
	if es, ok := b.Lookup(7); !ok || len(es) != 2 || es[0].W != 3 || es[1].W != 4 {
		t.Fatalf("Lookup(7) = %v, %v; want two runs with ORed first word", es, ok)
	}

	// hashBankMinCap slots grow at 50% load: the 33rd key must have
	// doubled the table at least once.
	for k := uint64(0); k < 40; k++ {
		b.Bank(100+k, 0, 1)
	}
	if b.Growths == 0 {
		t.Fatalf("Growths = 0 after %d keys in a %d-slot table", len(b.Keys), hashBankMinCap)
	}
	// Every key must survive the rehash.
	for k := uint64(0); k < 40; k++ {
		if _, ok := b.Lookup(100 + k); !ok {
			t.Fatalf("key %d lost across growth", 100+k)
		}
	}
}

// TestRewindowSegWordsRoundTrip checks that re-windowing a run list
// preserves exactly the set of global row bits, both across a coarse→fine
// →coarse round trip and against a direct bit-level recomputation for
// random vps pairs (including HBP-style non-power-of-two windows).
func TestRewindowSegWordsRoundTrip(t *testing.T) {
	expand := func(es []SegWord, vps int) map[int]bool {
		rows := map[int]bool{}
		for _, e := range es {
			for i := 0; i < vps; i++ {
				if e.W>>uint(i)&1 != 0 {
					rows[int(e.Seg)*vps+i] = true
				}
			}
		}
		return rows
	}
	rng := rand.New(rand.NewSource(74))
	for _, pair := range [][2]int{{64, 20}, {64, 33}, {20, 64}, {48, 36}, {64, 64}} {
		from, to := pair[0], pair[1]
		var es []SegWord
		seg := int32(0)
		for len(es) < 12 {
			seg += int32(1 + rng.Intn(3)) // gaps between runs
			w := rng.Uint64() & ((1 << uint(from)) - 1)
			if from == 64 {
				w = rng.Uint64()
			}
			if w == 0 {
				continue
			}
			es = append(es, SegWord{Seg: seg, W: w})
		}
		want := expand(es, from)

		re := RewindowSegWords(es, from, to)
		if got := expand(re, to); len(got) != len(want) {
			t.Fatalf("%d→%d: %d rows, want %d", from, to, len(got), len(want))
		} else {
			for r := range want {
				if !got[r] {
					t.Fatalf("%d→%d: row %d lost", from, to, r)
				}
			}
		}
		// Output runs must ascend by segment with no duplicates — the
		// invariant the banked kernels rely on.
		for i := 1; i < len(re); i++ {
			if re[i].Seg <= re[i-1].Seg {
				t.Fatalf("%d→%d: runs not strictly ascending: %v", from, to, re)
			}
		}

		back := RewindowSegWords(re, to, from)
		if got := expand(back, from); len(got) != len(want) {
			t.Fatalf("%d→%d→%d: %d rows, want %d", from, to, from, len(got), len(want))
		}
	}
}
