package encode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsFor(t *testing.T) {
	cases := []struct {
		max  uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<24 - 1, 24}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := BitsFor(c.max); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestDecimalRoundTrip(t *testing.T) {
	d := Decimal{Scale: 2, Max: 99999.99}
	for _, v := range []float64{0, 0.01, 12.34, 99999.99, 50000} {
		if got := d.Decode(d.Encode(v)); got != v {
			t.Errorf("Decimal round trip %v -> %v", v, got)
		}
	}
}

func TestDecimalOrderPreserving(t *testing.T) {
	d := Decimal{Scale: 3, Max: 1000}
	f := func(a, b uint16) bool {
		x := float64(a) / 66
		y := float64(b) / 66
		cx, cy := d.Encode(x), d.Encode(y)
		if x < y && cx > cy {
			return false
		}
		if x > y && cx < cy {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecimalBits(t *testing.T) {
	// The paper's example: l_extendedprice needs 24 bits at cent precision.
	d := Decimal{Scale: 2, Max: 104999.99}
	if d.Bits() != 24 {
		t.Errorf("Bits = %d, want 24", d.Bits())
	}
}

func TestDecimalRangePanics(t *testing.T) {
	d := Decimal{Scale: 2, Max: 10}
	for _, v := range []float64{-0.01, 10.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%v) did not panic", v)
				}
			}()
			d.Encode(v)
		}()
	}
}

func TestDecimalDecodeSum(t *testing.T) {
	d := Decimal{Scale: 2, Max: 1000}
	sum := d.Encode(1.25) + d.Encode(2.75) + d.Encode(0.01)
	if got := d.DecodeSum(sum); got != 4.01 {
		t.Errorf("DecodeSum = %v", got)
	}
}

func TestSignedRoundTrip(t *testing.T) {
	s := Signed{Min: -1000, Max: 1000}
	for _, v := range []int64{-1000, -1, 0, 1, 999, 1000} {
		if got := s.Decode(s.Encode(v)); got != v {
			t.Errorf("Signed round trip %d -> %d", v, got)
		}
	}
	if s.Bits() != 11 {
		t.Errorf("Bits = %d, want 11", s.Bits())
	}
}

func TestSignedOrderPreserving(t *testing.T) {
	s := Signed{Min: -5000, Max: 5000}
	f := func(a, b int16) bool {
		x, y := int64(a)%5000, int64(b)%5000
		cx, cy := s.Encode(x), s.Encode(y)
		return (x < y) == (cx < cy) || x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedDecodeSum(t *testing.T) {
	s := Signed{Min: -100, Max: 100}
	vals := []int64{-50, 30, -20, 100}
	var codeSum uint64
	var want int64
	for _, v := range vals {
		codeSum += s.Encode(v)
		want += v
	}
	if got := s.DecodeSum(codeSum, uint64(len(vals))); got != want {
		t.Errorf("DecodeSum = %d, want %d", got, want)
	}
}

func TestSignedRangePanics(t *testing.T) {
	s := Signed{Min: 0, Max: 10}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Encode did not panic")
		}
	}()
	s.Encode(-1)
}

func TestDictBasics(t *testing.T) {
	d := NewDict()
	keys := []string{"pear", "apple", "orange", "apple"} // duplicate ignored
	for _, k := range keys {
		d.Add(k)
	}
	d.Freeze()
	d.Freeze() // idempotent
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Bits() != 2 {
		t.Errorf("Bits = %d", d.Bits())
	}
	// Codes follow lexicographic order: apple < orange < pear.
	a, _ := d.Encode("apple")
	o, _ := d.Encode("orange")
	p, _ := d.Encode("pear")
	if !(a < o && o < p) {
		t.Errorf("order broken: %d %d %d", a, o, p)
	}
	for _, k := range []string{"apple", "orange", "pear"} {
		c, ok := d.Encode(k)
		if !ok || d.Decode(c) != k {
			t.Errorf("round trip %q failed", k)
		}
	}
	if _, ok := d.Encode("mango"); ok {
		t.Error("unknown key encoded")
	}
}

func TestDictRangeScanSemantics(t *testing.T) {
	// Order preservation means a BETWEEN on codes equals a lexicographic
	// range on keys — the property dictionary scans rely on.
	d := NewDict()
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, w := range words {
		d.Add(w)
	}
	d.Freeze()
	lo, _ := d.Encode("bravo")
	hi, _ := d.Encode("delta")
	var inRange []string
	for c := lo; c <= hi; c++ {
		inRange = append(inRange, d.Decode(c))
	}
	want := []string{"bravo", "charlie", "delta"}
	if len(inRange) != len(want) {
		t.Fatalf("range decode = %v", inRange)
	}
	for i := range want {
		if inRange[i] != want[i] {
			t.Fatalf("range decode = %v, want %v", inRange, want)
		}
	}
}

func TestDictGuards(t *testing.T) {
	d := NewDict()
	d.Add("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Encode before Freeze did not panic")
			}
		}()
		d.Encode("x")
	}()
	d.Freeze()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add after Freeze did not panic")
			}
		}()
		d.Add("y")
	}()
}

func TestEmptyDict(t *testing.T) {
	d := NewDict()
	d.Freeze()
	if d.Bits() != 1 {
		t.Errorf("empty dict Bits = %d, want 1", d.Bits())
	}
}

func TestDecimalRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Decimal{Scale: 2, Max: 100000}
	for i := 0; i < 1000; i++ {
		v := math.Round(rng.Float64()*1e7) / 100
		if got := d.Decode(d.Encode(v)); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}
