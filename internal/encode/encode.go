// Package encode maps domain values onto the k-bit unsigned codes the
// bit-parallel algorithms operate on (paper §III footnote 3: "other numeric
// types like signed integers and floating point with limited precision can
// be mapped to unsigned integers with a scaling scheme").
//
// All codecs are order-preserving, so comparisons on codes match
// comparisons on the original values and the filter scans, MIN/MAX, MEDIAN
// and any rank query remain exact; SUM and AVG decode through the same
// linear mapping.
package encode

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// BitsFor returns the minimum number of bits that can represent every code
// in [0, maxCode]. BitsFor(0) is 1 so that a constant column still packs.
func BitsFor(maxCode uint64) int {
	if maxCode == 0 {
		return 1
	}
	return bits.Len64(maxCode)
}

// Decimal is a fixed-point codec for non-negative decimals: value v maps to
// round(v * 10^Scale). It covers TPC-H-style price and discount attributes
// (the paper's example: l_extendedprice fits 24 bits once scaled).
type Decimal struct {
	// Scale is the number of preserved fractional digits.
	Scale int
	// Max is the largest encodable value; used to size the bit width.
	Max float64
}

// Bits returns the bit width needed for this codec's code space.
func (d Decimal) Bits() int {
	return BitsFor(d.Encode(d.Max))
}

// Encode maps a decimal to its order-preserving code. v must lie in
// [0, Max].
func (d Decimal) Encode(v float64) uint64 {
	if v < 0 || v > d.Max {
		panic(fmt.Sprintf("encode: decimal %v outside [0, %v]", v, d.Max))
	}
	return uint64(math.Round(v * math.Pow10(d.Scale)))
}

// Decode maps a code back to its decimal value.
func (d Decimal) Decode(c uint64) float64 {
	return float64(c) / math.Pow10(d.Scale)
}

// DecodeSum rescales an aggregated sum of codes.
func (d Decimal) DecodeSum(sum uint64) float64 {
	return float64(sum) / math.Pow10(d.Scale)
}

// Signed is an offset codec for signed integers in [Min, Max]: value v maps
// to v - Min.
type Signed struct {
	Min, Max int64
}

// Bits returns the bit width needed for this codec's code space.
func (s Signed) Bits() int {
	return BitsFor(uint64(s.Max - s.Min))
}

// Encode maps a signed integer to its order-preserving code.
func (s Signed) Encode(v int64) uint64 {
	if v < s.Min || v > s.Max {
		panic(fmt.Sprintf("encode: %d outside [%d, %d]", v, s.Min, s.Max))
	}
	return uint64(v - s.Min)
}

// Decode maps a code back to the signed integer.
func (s Signed) Decode(c uint64) int64 {
	return int64(c) + s.Min
}

// DecodeSum converts an aggregated sum of n codes back to the signed sum.
func (s Signed) DecodeSum(sum uint64, n uint64) int64 {
	return int64(sum) + s.Min*int64(n)
}

// Dict is an order-preserving dictionary for low-cardinality string
// attributes (the standard column-store dictionary compression of [5]).
// Keys must be added before Freeze; codes are assigned in sorted key order
// so that range predicates on codes match lexicographic ranges on keys.
type Dict struct {
	codes  map[string]uint64
	keys   []string
	frozen bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint64)}
}

// Add registers a key. Adding after Freeze panics.
func (d *Dict) Add(key string) {
	if d.frozen {
		panic("encode: Add after Freeze")
	}
	if _, ok := d.codes[key]; ok {
		return
	}
	d.codes[key] = 0 // placeholder until Freeze
	d.keys = append(d.keys, key)
}

// Freeze sorts the key space and assigns final codes. It is idempotent.
func (d *Dict) Freeze() {
	if d.frozen {
		return
	}
	sort.Strings(d.keys)
	for i, k := range d.keys {
		d.codes[k] = uint64(i)
	}
	d.frozen = true
}

// Bits returns the bit width of the frozen code space.
func (d *Dict) Bits() int {
	d.mustBeFrozen()
	if len(d.keys) == 0 {
		return 1
	}
	return BitsFor(uint64(len(d.keys) - 1))
}

// Encode returns the code of key; ok is false for unknown keys.
func (d *Dict) Encode(key string) (uint64, bool) {
	d.mustBeFrozen()
	c, ok := d.codes[key]
	return c, ok
}

// Decode returns the key of a code.
func (d *Dict) Decode(c uint64) string {
	d.mustBeFrozen()
	return d.keys[c]
}

// Len returns the number of distinct keys.
func (d *Dict) Len() int { return len(d.keys) }

func (d *Dict) mustBeFrozen() {
	if !d.frozen {
		panic("encode: dictionary used before Freeze")
	}
}
