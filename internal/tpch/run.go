package tpch

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
)

// AggResult is the value of one aggregate expression (Float carries AVG,
// Uint everything else; Ok is false for empty selections on MIN/MAX/MEDIAN/
// AVG).
type AggResult struct {
	Uint  uint64
	Float float64
	Ok    bool
}

// RunAggBP evaluates every aggregate of the query with the bit-parallel
// algorithms (package core via the parallel drivers) over the filter f.
func (inst *Instance) RunAggBP(f *bitvec.Bitmap, o parallel.Options) []AggResult {
	out := make([]AggResult, len(inst.Query.Aggs))
	for i, spec := range inst.Query.Aggs {
		col := inst.Aggs[i]
		switch spec.Op {
		case CountOp:
			out[i] = AggResult{Uint: core.Count(f), Ok: true}
		case Sum:
			out[i] = AggResult{Uint: col.sumBP(f, o), Ok: true}
		case Avg:
			v, ok := col.avgBP(f, o)
			out[i] = AggResult{Float: v, Ok: ok}
		case Max:
			v, ok := col.maxBP(f, o)
			out[i] = AggResult{Uint: v, Ok: ok}
		case Median:
			v, ok := col.medianBP(f, o)
			out[i] = AggResult{Uint: v, Ok: ok}
		}
	}
	return out
}

// RunAggNBP evaluates every aggregate with the non-bit-parallel baseline
// (package nbp: reconstruct each passing value, aggregate in plain form),
// optionally multi-threaded so that Table II compares both methods under
// the same thread count.
func (inst *Instance) RunAggNBP(f *bitvec.Bitmap, o nbp.Options) []AggResult {
	out := make([]AggResult, len(inst.Query.Aggs))
	for i, spec := range inst.Query.Aggs {
		col := inst.Aggs[i]
		switch spec.Op {
		case CountOp:
			out[i] = AggResult{Uint: nbp.Count(f), Ok: true}
		case Sum:
			out[i] = AggResult{Uint: nbp.SumOpt(col.source(), f, o), Ok: true}
		case Avg:
			v, ok := nbp.AvgOpt(col.source(), f, o)
			out[i] = AggResult{Float: v, Ok: ok}
		case Max:
			v, ok := nbp.MaxOpt(col.source(), f, o)
			out[i] = AggResult{Uint: v, Ok: ok}
		case Median:
			v, ok := nbp.MedianOpt(col.source(), f, o)
			out[i] = AggResult{Uint: v, Ok: ok}
		}
	}
	return out
}

// AutoThreshold returns the selectivity below which the reconstruction
// baseline beats the bit-parallel sweep for the layout (the measured
// crossovers of EXPERIMENTS.md Figure 5). It drives RunAggAuto — the
// paper's §III framing of bit-parallel aggregation as an access method the
// optimizer picks for non-selective queries.
func AutoThreshold(layout Layout) float64 {
	if layout == VBP {
		return 0.02
	}
	return 0.10
}

// RunAggAuto evaluates the aggregates with the optimizer policy: the
// baseline when the realized selectivity is below the layout's threshold,
// the bit-parallel algorithms otherwise.
func (inst *Instance) RunAggAuto(f *bitvec.Bitmap, bp parallel.Options, nb nbp.Options) []AggResult {
	sel := float64(f.Count()) / float64(inst.N)
	if sel < AutoThreshold(inst.Layout) {
		return inst.RunAggNBP(f, nb)
	}
	return inst.RunAggBP(f, bp)
}

// source exposes the per-row reconstruction interface the NBP baseline
// drives.
func (c *Column) source() interface {
	At(i int) uint64
	Len() int
} {
	if c.layout == VBP {
		return c.v
	}
	return c.h
}

func (c *Column) sumBP(f *bitvec.Bitmap, o parallel.Options) uint64 {
	if c.layout == VBP {
		return parallel.VBPSum(c.v, f, o)
	}
	return parallel.HBPSum(c.h, f, o)
}

func (c *Column) avgBP(f *bitvec.Bitmap, o parallel.Options) (float64, bool) {
	if c.layout == VBP {
		return parallel.VBPAvg(c.v, f, o)
	}
	return parallel.HBPAvg(c.h, f, o)
}

func (c *Column) maxBP(f *bitvec.Bitmap, o parallel.Options) (uint64, bool) {
	if c.layout == VBP {
		return parallel.VBPMax(c.v, f, o)
	}
	return parallel.HBPMax(c.h, f, o)
}

func (c *Column) medianBP(f *bitvec.Bitmap, o parallel.Options) (uint64, bool) {
	if c.layout == VBP {
		return parallel.VBPMedian(c.v, f, o)
	}
	return parallel.HBPMedian(c.h, f, o)
}
