// Package tpch provides the synthetic TPC-H-style workload behind the
// paper's Table II (§IV-C).
//
// The paper runs nine TPC-H queries (those with selectivity above 0.01,
// minus the COUNT-only Q4) at scale factor 10 on a denormalized wide table
// (per WideTable [11]), so that every query reduces to a conjunctive filter
// scan plus aggregations over single columns. We do not have the dbgen
// data; what Table II measures, however, is cycles-per-tuple of the scan
// and aggregation phases as a function of (a) the query's selectivity and
// (b) the aggregate columns' bit widths — both of which this generator
// controls exactly:
//
//   - each query's published selectivity (Table II row 2) is reproduced by
//     uniform filter columns scanned with range predicates whose cutoffs
//     multiply out to the target;
//   - aggregate columns use the bit widths of the real query's aggregate
//     expressions (e.g. 24-bit scaled l_extendedprice — the paper's own
//     example — 6-bit l_quantity, 26-bit materialized charge expressions).
//
// The substitution is documented in DESIGN.md §4.
package tpch

import (
	"math/rand"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// AggOp is an aggregate operator of a query's select list.
type AggOp int

// Aggregate operators appearing in the nine Table II queries.
const (
	Sum AggOp = iota
	Avg
	CountOp
	Max
	Median
)

// String returns the SQL spelling.
func (o AggOp) String() string {
	switch o {
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case CountOp:
		return "COUNT"
	case Max:
		return "MAX"
	case Median:
		return "MEDIAN"
	default:
		return "?"
	}
}

// AggSpec is one aggregate expression: the operator and the bit width of
// the (possibly materialized) column it reads.
type AggSpec struct {
	Name string
	Op   AggOp
	Bits int
}

// FilterSpec is one conjunctive predicate source: a uniform Bits-wide
// column scanned with value < cutoff, where the cutoff realizes Sel.
type FilterSpec struct {
	Name string
	Bits int
	Sel  float64
}

// Query describes one Table II query.
type Query struct {
	Name        string
	Selectivity float64 // published overall selectivity
	Filters     []FilterSpec
	Aggs        []AggSpec
}

// Queries returns the nine Table II queries. Filter columns mirror the real
// predicates' columns (dates, flags, nations); their per-column
// selectivities multiply out to the published overall selectivity.
// Aggregate columns carry the real queries' expression widths.
func Queries() []Query {
	return []Query{
		{
			// Pricing summary report: one shipdate predicate passing almost
			// everything, and the heaviest select list in the benchmark.
			Name: "Q1", Selectivity: 0.986,
			Filters: []FilterSpec{{"l_shipdate", 12, 0.986}},
			Aggs: []AggSpec{
				{"sum_qty", Sum, 6},
				{"sum_base_price", Sum, 24},
				{"sum_disc_price", Sum, 25},
				{"sum_charge", Sum, 26},
				{"avg_qty", Avg, 6},
				{"avg_price", Avg, 24},
				{"avg_disc", Avg, 4},
				{"count_order", CountOp, 0},
			},
		},
		{
			// Forecasting revenue change: three tight range predicates, one
			// materialized revenue sum.
			Name: "Q6", Selectivity: 0.019,
			Filters: []FilterSpec{
				{"l_shipdate", 12, 0.30},
				{"l_discount", 10, 0.28},
				{"l_quantity", 10, 0.2262},
			},
			Aggs: []AggSpec{{"revenue", Sum, 24}},
		},
		{
			// Volume shipping between two nations over two years.
			Name: "Q7", Selectivity: 0.301,
			Filters: []FilterSpec{
				{"nation_pair", 7, 0.55},
				{"l_shipdate", 12, 0.5473},
			},
			Aggs: []AggSpec{{"volume", Sum, 24}},
		},
		{
			// Product type profit measure: part-name containment.
			Name: "Q9", Selectivity: 0.053,
			Filters: []FilterSpec{{"p_name_match", 8, 0.053}},
			Aggs:    []AggSpec{{"amount", Sum, 25}},
		},
		{
			// Returned item reporting: quarter of orders, RETURNFLAG = 'R'.
			Name: "Q10", Selectivity: 0.019,
			Filters: []FilterSpec{
				{"o_orderdate", 12, 0.076},
				{"l_returnflag", 2, 0.25},
			},
			Aggs: []AggSpec{{"revenue", Sum, 24}},
		},
		{
			// Important stock identification: one nation of suppliers.
			Name: "Q11", Selectivity: 0.041,
			Filters: []FilterSpec{{"s_nation", 5, 0.041}},
			Aggs:    []AggSpec{{"value", Sum, 26}},
		},
		{
			// Promotion effect: one month of shipments, two revenue sums
			// (promo and total).
			Name: "Q14", Selectivity: 0.012,
			Filters: []FilterSpec{{"l_shipdate", 12, 0.012}},
			Aggs: []AggSpec{
				{"promo_revenue", Sum, 24},
				{"total_revenue", Sum, 24},
			},
		},
		{
			// Top supplier: one quarter of shipments, revenue sum plus the
			// max for the having clause.
			Name: "Q15", Selectivity: 0.037,
			Filters: []FilterSpec{{"l_shipdate", 12, 0.037}},
			Aggs: []AggSpec{
				{"total_revenue", Sum, 24},
				{"max_revenue", Max, 24},
			},
		},
		{
			// Potential part promotion: parts and a shipdate year.
			Name: "Q20", Selectivity: 0.150,
			Filters: []FilterSpec{
				{"p_name_match", 8, 0.50},
				{"l_shipdate", 12, 0.30},
			},
			Aggs: []AggSpec{{"sum_quantity", Sum, 17}},
		},
	}
}

// Layout selects the storage layout of a generated instance.
type Layout int

// Storage layouts of Table II's two sections.
const (
	VBP Layout = iota
	HBP
)

// String returns the layout's conventional name.
func (l Layout) String() string {
	if l == VBP {
		return "VBP"
	}
	return "HBP"
}

// Column is a packed column in either layout, with the scan cutoff used by
// filter columns.
type Column struct {
	layout Layout
	v      *vbp.Column
	h      *hbp.Column
	cutoff uint64
}

// Instance is one query's generated data in one layout, ready to run.
type Instance struct {
	Query  Query
	Layout Layout
	N      int
	// Filters are scanned conjunctively; Aggs[i] corresponds to
	// Query.Aggs[i] (nil column for COUNT, which reads only the bitmap).
	Filters []*Column
	Aggs    []*Column
}

// Build generates the instance for q with n rows in the given layout,
// deterministically from seed.
func Build(q Query, layout Layout, n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{Query: q, Layout: layout, N: n}
	vals := make([]uint64, n)
	for _, fs := range q.Filters {
		max := word.LowMask(fs.Bits)
		for i := range vals {
			vals[i] = rng.Uint64() & max
		}
		cutoff := uint64(float64(max+1) * fs.Sel)
		inst.Filters = append(inst.Filters, pack(layout, fs.Bits, vals, cutoff))
	}
	for _, as := range q.Aggs {
		if as.Op == CountOp {
			inst.Aggs = append(inst.Aggs, nil)
			continue
		}
		max := word.LowMask(as.Bits)
		for i := range vals {
			vals[i] = rng.Uint64() & max
		}
		inst.Aggs = append(inst.Aggs, pack(layout, as.Bits, vals, 0))
	}
	return inst
}

func pack(layout Layout, bits int, vals []uint64, cutoff uint64) *Column {
	c := &Column{layout: layout, cutoff: cutoff}
	if layout == VBP {
		tau := 4
		if tau > bits {
			tau = bits
		}
		c.v = vbp.Pack(vals, bits, tau)
	} else {
		c.h = hbp.Pack(vals, bits, hbp.DefaultTau(bits))
	}
	return c
}

// Scan runs the query's conjunctive bit-parallel filter scan and returns
// the combined filter bit vector.
func (inst *Instance) Scan() *bitvec.Bitmap {
	var f *bitvec.Bitmap
	for _, c := range inst.Filters {
		p := scan.Predicate{Op: scan.LT, A: c.cutoff}
		var m *bitvec.Bitmap
		if c.layout == VBP {
			m = scan.VBP(c.v, p)
		} else {
			m = scan.HBP(c.h, p)
		}
		if f == nil {
			f = m
		} else {
			f.And(m)
		}
	}
	if f == nil {
		f = bitvec.NewFull(inst.N)
	}
	return f
}
