package tpch

import (
	"testing"

	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
)

func TestOpAndLayoutStrings(t *testing.T) {
	want := map[AggOp]string{
		Sum: "SUM", Avg: "AVG", CountOp: "COUNT", Max: "MAX", Median: "MEDIAN",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("AggOp %d String = %q", int(op), op.String())
		}
	}
	if VBP.String() != "VBP" || HBP.String() != "HBP" {
		t.Error("layout names wrong")
	}
}

func TestMedianAggOp(t *testing.T) {
	// No Table II query uses MEDIAN, but the runner supports it; exercise
	// it with a synthetic query on both layouts.
	q := Query{
		Name: "QM", Selectivity: 0.5,
		Filters: []FilterSpec{{"f", 10, 0.5}},
		Aggs:    []AggSpec{{"m", Median, 12}, {"c", CountOp, 0}},
	}
	for _, layout := range []Layout{VBP, HBP} {
		inst := Build(q, layout, 20000, 9)
		f := inst.Scan()
		bp := inst.RunAggBP(f, parallel.Options{})
		nb := inst.RunAggNBP(f, nbp.Options{})
		for i := range bp {
			if bp[i] != nb[i] {
				t.Errorf("%v agg %d: BP %+v NBP %+v", layout, i, bp[i], nb[i])
			}
		}
		if !bp[0].Ok {
			t.Errorf("%v median not ok", layout)
		}
	}
}
