package tpch

import (
	"math"
	"testing"

	"bpagg/internal/nbp"
	"bpagg/internal/parallel"
)

func TestQuerySpecsMatchPaperSelectivities(t *testing.T) {
	// The per-filter selectivities must multiply out to the published
	// overall selectivity of Table II (within cutoff-rounding tolerance).
	want := map[string]float64{
		"Q1": 0.986, "Q6": 0.019, "Q7": 0.301, "Q9": 0.053, "Q10": 0.019,
		"Q11": 0.041, "Q14": 0.012, "Q15": 0.037, "Q20": 0.150,
	}
	qs := Queries()
	if len(qs) != 9 {
		t.Fatalf("got %d queries, want 9", len(qs))
	}
	for _, q := range qs {
		if q.Selectivity != want[q.Name] {
			t.Errorf("%s: declared selectivity %v, paper says %v", q.Name, q.Selectivity, want[q.Name])
		}
		prod := 1.0
		for _, fs := range q.Filters {
			prod *= fs.Sel
		}
		if math.Abs(prod-q.Selectivity)/q.Selectivity > 0.02 {
			t.Errorf("%s: filter product %v, want %v", q.Name, prod, q.Selectivity)
		}
		if len(q.Aggs) == 0 {
			t.Errorf("%s: no aggregates", q.Name)
		}
	}
}

func TestRealizedSelectivity(t *testing.T) {
	const n = 200000
	for _, q := range Queries() {
		for _, layout := range []Layout{VBP, HBP} {
			inst := Build(q, layout, n, 7)
			f := inst.Scan()
			got := float64(f.Count()) / float64(n)
			// Bernoulli tolerance: generous absolute + relative band.
			tol := 0.01 + 0.12*q.Selectivity
			if math.Abs(got-q.Selectivity) > tol {
				t.Errorf("%s %v: realized selectivity %f, want %f ± %f",
					q.Name, layout, got, q.Selectivity, tol)
			}
		}
	}
}

func TestBPAndNBPAgreeOnEveryQuery(t *testing.T) {
	const n = 30000
	for _, q := range Queries() {
		for _, layout := range []Layout{VBP, HBP} {
			inst := Build(q, layout, n, 11)
			f := inst.Scan()
			bp := inst.RunAggBP(f, parallel.Options{})
			bpMT := inst.RunAggBP(f, parallel.Options{Threads: 4, Wide: true})
			nbpRes := inst.RunAggNBP(f, nbp.Options{Threads: 2})
			for i := range bp {
				if bp[i] != nbpRes[i] {
					t.Errorf("%s %v agg %s: BP %+v, NBP %+v",
						q.Name, layout, q.Aggs[i].Name, bp[i], nbpRes[i])
				}
				if bp[i] != bpMT[i] {
					t.Errorf("%s %v agg %s: serial %+v, MT+wide %+v",
						q.Name, layout, q.Aggs[i].Name, bp[i], bpMT[i])
				}
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	q := Queries()[1] // Q6
	a := Build(q, VBP, 5000, 42)
	b := Build(q, VBP, 5000, 42)
	fa, fb := a.Scan(), b.Scan()
	if fa.Count() != fb.Count() {
		t.Error("same seed produced different filters")
	}
	ra := a.RunAggBP(fa, parallel.Options{})
	rb := b.RunAggBP(fb, parallel.Options{})
	for i := range ra {
		if ra[i] != rb[i] {
			t.Error("same seed produced different aggregates")
		}
	}
	c := Build(q, VBP, 5000, 43)
	if fc := c.Scan(); fc.Count() == fa.Count() {
		// Extremely unlikely to collide exactly; treat as suspicious.
		t.Log("different seeds produced identical filter counts (possible but unlikely)")
	}
}

func TestNoFilterQueryScansAll(t *testing.T) {
	q := Query{Name: "QX", Selectivity: 1, Aggs: []AggSpec{{"s", Sum, 8}}}
	inst := Build(q, HBP, 1000, 3)
	f := inst.Scan()
	if f.Count() != 1000 {
		t.Errorf("filterless scan selected %d of 1000", f.Count())
	}
}
