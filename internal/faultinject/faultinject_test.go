package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestFireWithoutHooksIsNil(t *testing.T) {
	Reset()
	if err := Fire("nothing.registered"); err != nil {
		t.Fatalf("Fire with no hooks = %v, want nil", err)
	}
}

func TestSetFireClear(t *testing.T) {
	defer Reset()
	want := errors.New("injected")
	Set("site.a", func(args ...any) error { return want })
	if err := Fire("site.a"); err != want {
		t.Fatalf("Fire = %v, want %v", err, want)
	}
	if err := Fire("site.b"); err != nil {
		t.Fatalf("Fire on other site = %v, want nil", err)
	}
	Clear("site.a")
	if err := Fire("site.a"); err != nil {
		t.Fatalf("Fire after Clear = %v, want nil", err)
	}
}

func TestSetReplacesAndNilClears(t *testing.T) {
	defer Reset()
	e1, e2 := errors.New("one"), errors.New("two")
	Set("site", func(args ...any) error { return e1 })
	Set("site", func(args ...any) error { return e2 })
	if err := Fire("site"); err != e2 {
		t.Fatalf("Fire = %v, want replacement %v", err, e2)
	}
	Set("site", nil)
	if err := Fire("site"); err != nil {
		t.Fatalf("Fire after nil Set = %v, want nil", err)
	}
	if active.Load() != 0 {
		t.Fatalf("active = %d after clearing the only hook, want 0", active.Load())
	}
}

func TestArgsReachHook(t *testing.T) {
	defer Reset()
	var got []any
	Set("site", func(args ...any) error { got = append(got, args...); return nil })
	Fire("site", 3, "x")
	if len(got) != 2 || got[0] != 3 || got[1] != "x" {
		t.Fatalf("hook args = %v, want [3 x]", got)
	}
}

func TestConcurrentFire(t *testing.T) {
	defer Reset()
	Set("site", func(args ...any) error { return nil })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Fire("site")
				Fire("other")
			}
		}()
	}
	wg.Wait()
}
