// Package faultinject provides named fault-injection hooks for tests.
//
// Production code calls Fire at interesting sites (worker start, stream
// reads); tests register hooks that panic, sleep, or return errors to
// prove the surrounding machinery recovers, cancels, and propagates
// failures instead of crashing or deadlocking. With no hooks registered
// the cost of a site is one atomic load, so the hooks stay compiled into
// release builds without measurable overhead.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Hook sites used across the repository. Sites are plain strings so new
// ones need no central registration, but the shared ones live here to
// keep callers and tests in sync.
const (
	// SiteWorkerStart fires once at the start of every parallel worker
	// goroutine; args[0] is the worker index (int).
	SiteWorkerStart = "parallel.worker.start"
	// SiteWorkerRange fires before each block of segments a worker
	// processes; args[0] is the worker index (int).
	SiteWorkerRange = "parallel.worker.range"
	// SiteIOReadWords fires on every readWords call during column
	// deserialization; a non-nil return simulates a short/failed read.
	SiteIOReadWords = "bpagg.io.readWords"
)

// Func is an injected fault. Returning a non-nil error makes the site
// fail as if the underlying operation had; panicking exercises the
// caller's recovery path; sleeping simulates a slow segment.
type Func func(args ...any) error

var (
	active atomic.Int32 // number of registered hooks (fast-path gate)
	mu     sync.Mutex
	hooks  = map[string]Func{}
)

// Fire invokes the hook registered for site, if any. The zero-hook fast
// path is a single atomic load.
func Fire(site string, args ...any) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := hooks[site]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(args...)
}

// Set registers fn for site, replacing any previous hook. A nil fn
// clears the site.
func Set(site string, fn Func) {
	mu.Lock()
	defer mu.Unlock()
	_, had := hooks[site]
	if fn == nil {
		if had {
			delete(hooks, site)
			active.Add(-1)
		}
		return
	}
	if !had {
		active.Add(1)
	}
	hooks[site] = fn
}

// Clear removes the hook for site.
func Clear(site string) { Set(site, nil) }

// Reset removes every hook. Tests that register hooks should
// defer Reset() (or Clear their sites) so later tests run clean.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = map[string]Func{}
	active.Store(0)
}
