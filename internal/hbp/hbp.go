// Package hbp implements the Horizontal Bit Packing storage layout (paper
// §II-B, §II-C; BitWeaving/H of Li & Patel, after Lamport).
//
// A column of k-bit values is split into B = ceil(k/tau) bit-groups of tau
// bits (the value is zero-extended at the most significant end to B*tau bits
// so every group is uniform). Each bit-group is stored in a (tau+1)-bit
// field whose top bit is the delimiter — kept zero in storage so full-word
// add/subtract cannot carry across values. A word holds c = floor(64/(tau+1))
// fields, placed LSB-first: field s occupies bits [s*(tau+1), (s+1)*(tau+1)).
//
// A segment holds c*(tau+1) consecutive tuples in B*(tau+1) words. Tuples
// are assigned round-robin to the tau+1 sub-segments (tuple i of the segment
// goes to sub-segment i mod (tau+1), slot i div (tau+1)) so that the filter
// bit vector aligns with the delimiter lane after a single shift:
// M_d = (F << (tau-t)) & DelimMask for sub-segment t. Physically, words are
// grouped word-group-major (all sub-segments' group-g words of a segment are
// contiguous) for the cache-line optimization of §II-C.
//
// Setting tau = k yields the basic HBP format of Figure 3 (one bit-group,
// k+1-bit fields).
package hbp

import (
	"fmt"

	"bpagg/internal/word"
)

// MaxTau is the largest bit-group size (field width tau+1 must leave at
// least two fields per 64-bit word).
const MaxTau = word.MaxTau

// Column is an HBP-packed column of n values of k bits each.
type Column struct {
	k     int // logical value width
	tau   int // bit-group size
	b     int // number of bit-groups, ceil(k/tau)
	f     int // field width, tau+1
	c     int // fields per word, floor(64/f)
	vps   int // values per segment, c*(tau+1)
	n     int
	delim uint64 // cached DelimMask(tau, c): hot-loop operand
	vmask uint64 // cached ValueMask(tau, c)
	// groups[g] holds the group-g words of all segments, indexed
	// [seg*(tau+1) + t] for sub-segment t.
	groups [][]uint64
	// Per-segment zone map (see vbp.Column): min and max of each segment.
	zMin, zMax []uint64
	// Per-segment materialized sum (mod 2^64), maintained on append; the
	// fused scan→aggregate path answers all-match segments from zSum and
	// the exact zones without touching a packed word.
	zSum []uint64
	// cachesOff marks the segment aggregates stale (adopted zones or
	// resumed appends); see vbp.Column.
	cachesOff bool
}

// New returns an empty HBP column for k-bit values with bit-groups of tau
// bits. k must be in [1, 64] and tau in [1, min(k, MaxTau)].
func New(k, tau int) *Column {
	if k < 1 || k > 64 {
		panic(fmt.Sprintf("hbp: value width %d out of range [1,64]", k))
	}
	if tau < 1 || tau > MaxTau || tau > k {
		panic(fmt.Sprintf("hbp: bit-group size %d out of range [1,%d]", tau, min(k, MaxTau)))
	}
	b := (k + tau - 1) / tau
	f := tau + 1
	c := 64 / f
	return &Column{
		k: k, tau: tau, b: b, f: f, c: c,
		vps:    c * (tau + 1),
		delim:  word.DelimMask(tau, c),
		vmask:  word.ValueMask(tau, c),
		groups: make([][]uint64, b),
	}
}

// DefaultTau returns a bit-group size that minimizes words touched per
// value (B/c) for a k-bit column. Ties prefer field widths dividing 64
// (segments then hold exactly 64 tuples, enabling the aligned filter-window
// fast path) and then the smallest tau (keeping the MEDIAN histogram
// small). It mirrors the analytically determined tau of the paper's
// technical report.
func DefaultTau(k int) int {
	if k > MaxTau {
		k = MaxTau // a single value must fit at least one group per word
	}
	best, bestCost := 1, costPerValue(k, 1)
	for tau := 2; tau <= k; tau++ {
		c := costPerValue(k, tau)
		if c < bestCost || (c == bestCost && aligned(tau) && !aligned(best)) {
			best, bestCost = tau, c
		}
	}
	return best
}

// costPerValue returns B/c scaled to an integer comparison value.
func costPerValue(k, tau int) int {
	b := (k + tau - 1) / tau
	c := 64 / (tau + 1)
	return b * 1024 / c
}

// aligned reports whether the field width divides the processor word.
func aligned(tau int) bool { return 64%(tau+1) == 0 }

// Pack builds an HBP column from plain values. Every value must fit in k
// bits.
func Pack(values []uint64, k, tau int) *Column {
	c := New(k, tau)
	c.Append(values...)
	return c
}

// FromWords adopts raw group word slices as an n-value column — the
// deserialization path. Each groups[g] must hold NumSegments*(tau+1) words,
// and no word may carry delimiter or padding bits (which storage never
// produces, so their presence marks corruption).
func FromWords(k, tau, n int, groups [][]uint64) (*Column, error) {
	c := New(k, tau)
	if n < 0 {
		return nil, fmt.Errorf("hbp: negative length %d", n)
	}
	c.n = n
	if len(groups) != c.b {
		return nil, fmt.Errorf("hbp: %d groups, want %d", len(groups), c.b)
	}
	nseg := c.NumSegments()
	valid := word.ValueMask(tau, c.c)
	for g := range groups {
		if want := nseg * (tau + 1); len(groups[g]) != want {
			return nil, fmt.Errorf("hbp: group %d has %d words, want %d", g, len(groups[g]), want)
		}
		for wi, w := range groups[g] {
			if w&^valid != 0 {
				return nil, fmt.Errorf("hbp: group %d word %d has delimiter or padding bits set", g, wi)
			}
		}
	}
	c.groups = groups
	return c, nil
}

// K returns the value width in bits.
func (c *Column) K() int { return c.k }

// Tau returns the bit-group size.
func (c *Column) Tau() int { return c.tau }

// FieldWidth returns tau+1, the delimited field width.
func (c *Column) FieldWidth() int { return c.f }

// FieldsPerWord returns c, the number of fields (slots) per word.
func (c *Column) FieldsPerWord() int { return c.c }

// NumGroups returns B, the number of bit-groups.
func (c *Column) NumGroups() int { return c.b }

// ValuesPerSegment returns the number of tuples a segment holds,
// c*(tau+1) — 64 exactly when tau+1 divides 64.
func (c *Column) ValuesPerSegment() int { return c.vps }

// SubSegments returns tau+1, the number of sub-segments per segment.
func (c *Column) SubSegments() int { return c.tau + 1 }

// Len returns the number of values in the column.
func (c *Column) Len() int { return c.n }

// NumSegments returns the number of segments (the last may be partially
// filled; its unused fields are zero).
func (c *Column) NumSegments() int { return (c.n + c.vps - 1) / c.vps }

// GroupWords exposes the group-g word slice, indexed [seg*(tau+1)+t].
func (c *Column) GroupWords(g int) []uint64 { return c.groups[g] }

// Word returns the group-g word of sub-segment t of segment seg.
func (c *Column) Word(g, seg, t int) uint64 {
	return c.groups[g][seg*(c.tau+1)+t]
}

// locate maps a global tuple index to (segment, sub-segment, slot).
func (c *Column) locate(i int) (seg, t, s int) {
	seg = i / c.vps
	local := i % c.vps
	return seg, local % (c.tau + 1), local / (c.tau + 1)
}

// Append adds values to the column. Each value must fit in k bits.
//
// Runs of a full segment starting at a segment boundary take a bulk path
// that assembles each word in a register before a single store, instead of
// one read-modify-write per field.
func (c *Column) Append(values ...uint64) {
	max := word.LowMask(c.k)
	i := 0
	for i < len(values) {
		if c.n%c.vps == 0 && len(values)-i >= c.vps {
			c.appendSegment(values[i:i+c.vps], max)
			i += c.vps
			continue
		}
		c.appendOne(values[i], max)
		i++
	}
}

// appendSegment packs exactly one full segment.
func (c *Column) appendSegment(vals []uint64, max uint64) {
	lo, hi := vals[0], vals[0]
	var sum uint64
	for _, v := range vals {
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	c.ensureZones(c.n / c.vps)
	c.zMin = append(c.zMin, lo)
	c.zMax = append(c.zMax, hi)
	if !c.cachesOff {
		c.zSum = append(c.zSum, sum)
	}
	kPad := c.b * c.tau
	tmask := word.LowMask(c.tau)
	for g := 0; g < c.b; g++ {
		shift := uint(kPad - (g+1)*c.tau)
		for t := 0; t <= c.tau; t++ {
			var w uint64
			for s := c.c - 1; s >= 0; s-- {
				v := vals[s*(c.tau+1)+t]
				if v > max {
					panic(fmt.Sprintf("hbp: value %d does not fit in %d bits", v, c.k))
				}
				w = w<<uint(c.f) | (v>>shift)&tmask
			}
			c.groups[g] = append(c.groups[g], w)
		}
	}
	c.n += c.vps
}

// appendOne is the single-value path for partial segments.
func (c *Column) appendOne(v, max uint64) {
	if v > max {
		panic(fmt.Sprintf("hbp: value %d does not fit in %d bits", v, c.k))
	}
	seg, t, s := c.locate(c.n)
	if c.n%c.vps == 0 {
		for g := range c.groups {
			c.groups[g] = append(c.groups[g], make([]uint64, c.tau+1)...)
		}
		c.ensureZones(seg)
		c.zMin = append(c.zMin, v)
		c.zMax = append(c.zMax, v)
		if !c.cachesOff {
			c.zSum = append(c.zSum, v)
		}
	} else {
		c.ensureZones(seg + 1)
		if v < c.zMin[seg] {
			c.zMin[seg] = v
		}
		if v > c.zMax[seg] {
			c.zMax[seg] = v
		}
		if !c.cachesOff {
			c.zSum[seg] += v
		}
	}
	base := seg * (c.tau + 1)
	kPad := c.b * c.tau
	for g := 0; g < c.b; g++ {
		// Group g holds bits [kPad-g*tau-1 .. kPad-(g+1)*tau] of the
		// zero-extended value, i.e. shift right by the bits below it.
		bg := v >> uint(kPad-(g+1)*c.tau) & word.LowMask(c.tau)
		c.groups[g][base+t] = word.PutField(c.groups[g][base+t], c.tau, s, bg)
	}
	c.n++
}

// At reconstructs value i to plain form — the per-value path the paper's
// bit-parallel algorithms avoid; aggregation uses it only for the O(c)
// finalists of MIN/MAX.
func (c *Column) At(i int) uint64 {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("hbp: index %d out of range [0,%d)", i, c.n))
	}
	seg, t, s := c.locate(i)
	base := seg * (c.tau + 1)
	var v uint64
	for g := 0; g < c.b; g++ {
		v = v<<uint(c.tau) | word.Field(c.groups[g][base+t], c.tau, s)
	}
	return v
}

// Unpack reconstructs the whole column to plain form (for tests and
// debugging).
func (c *Column) Unpack() []uint64 {
	out := make([]uint64, c.n)
	for i := range out {
		out[i] = c.At(i)
	}
	return out
}

// SegmentValues returns how many tuples of segment seg hold real data.
func (c *Column) SegmentValues(seg int) int {
	if seg == c.NumSegments()-1 {
		if r := c.n % c.vps; r != 0 {
			return r
		}
	}
	return c.vps
}

// DelimMask returns the delimiter lane for this column's field shape.
func (c *Column) DelimMask() uint64 { return c.delim }

// ValueMask returns the value lanes for this column's field shape.
func (c *Column) ValueMask() uint64 { return c.vmask }

// SubSegmentDelims extracts the delimiter filter M_d for sub-segment t of
// segment seg from the dense window fw (the vps filter bits of the segment,
// LSB-first): M_d = (fw << (tau-t)) & DelimMask. Paper: GET-VALUE-FILTER
// step 1 and Algorithm 5 line 4 (shift direction flipped for LSB-first
// fields).
func (c *Column) SubSegmentDelims(fw uint64, t int) uint64 {
	return fw << uint(c.tau-t) & c.delim
}

// ScatterDelims is the inverse of SubSegmentDelims: it maps delimiter bits
// of sub-segment t back onto dense filter positions within the segment
// window.
func (c *Column) ScatterDelims(delims uint64, t int) uint64 {
	return delims >> uint(c.tau-t)
}

// Zones exposes the per-segment zone arrays for serialization; both are
// nil or shorter than NumSegments when zones are (partially) untracked.
func (c *Column) Zones() (zMin, zMax []uint64) { return c.zMin, c.zMax }

// SetZones adopts zone arrays (the deserialization path). Lengths must
// equal NumSegments and every range must be ordered and fit in k bits.
func (c *Column) SetZones(zMin, zMax []uint64) error {
	nseg := c.NumSegments()
	if len(zMin) != nseg || len(zMax) != nseg {
		return fmt.Errorf("%s: zone arrays have %d/%d entries, want %d", "hbp", len(zMin), len(zMax), nseg)
	}
	max := word.LowMask(c.k)
	for i := range zMin {
		if zMin[i] > zMax[i] || zMax[i] > max {
			return fmt.Errorf("%s: invalid zone [%d, %d] at segment %d", "hbp", zMin[i], zMax[i], i)
		}
	}
	c.zMin, c.zMax = zMin, zMax
	// Adopted zones are validated for soundness, not exactness, so the
	// segment-aggregate caches stay off until RebuildSegmentAggregates.
	c.cachesOff = true
	c.zSum = nil
	return nil
}

// ZoneRange returns the minimum and maximum value stored in segment seg.
// ok is false when no zone is tracked for the segment (columns adopted via
// FromWords carry no zones); callers must then assume the full k-bit range.
func (c *Column) ZoneRange(seg int) (lo, hi uint64, ok bool) {
	if seg >= len(c.zMin) {
		return 0, word.LowMask(c.k), false
	}
	return c.zMin[seg], c.zMax[seg], true
}

// ensureZones pads conservative full-range zones for segments [len, upto)
// — needed when appends resume on a column adopted via FromWords. Padded
// zones are sound for pruning but not exact, so the segment-aggregate
// caches are disabled until RebuildSegmentAggregates.
func (c *Column) ensureZones(upto int) {
	if len(c.zMin) < upto {
		c.cachesOff = true
		c.zSum = nil
	}
	for len(c.zMin) < upto {
		c.zMin = append(c.zMin, 0)
		c.zMax = append(c.zMax, word.LowMask(c.k))
	}
}

// SegmentSum returns the sum (mod 2^64) of the values stored in segment
// seg. ok is false when the cache is stale or untracked (see
// RebuildSegmentAggregates).
func (c *Column) SegmentSum(seg int) (sum uint64, ok bool) {
	if c.cachesOff || seg >= len(c.zSum) {
		return 0, false
	}
	return c.zSum[seg], true
}

// SegmentRangeExact returns the exact minimum and maximum value stored in
// segment seg — unlike ZoneRange, which may return conservative bounds
// for adopted or padded zones. ok is false when exactness cannot be
// guaranteed.
func (c *Column) SegmentRangeExact(seg int) (lo, hi uint64, ok bool) {
	if c.cachesOff || seg >= len(c.zMin) {
		return 0, 0, false
	}
	return c.zMin[seg], c.zMax[seg], true
}

// RebuildSegmentAggregates recomputes the per-segment zones and sums from
// the packed words, re-enabling the exact segment-aggregate caches after
// FromWords/SetZones. The deserializer calls it for columns that carry
// zones, so a reloaded column fuses as well as a freshly packed one.
func (c *Column) RebuildSegmentAggregates() {
	nseg := c.NumSegments()
	c.zMin = make([]uint64, nseg)
	c.zMax = make([]uint64, nseg)
	c.zSum = make([]uint64, nseg)
	for seg := 0; seg < nseg; seg++ {
		base := seg * c.vps
		cnt := c.SegmentValues(seg)
		lo, hi, sum := ^uint64(0), uint64(0), uint64(0)
		for j := 0; j < cnt; j++ {
			v := c.At(base + j)
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		c.zMin[seg], c.zMax[seg], c.zSum[seg] = lo, hi, sum
	}
	c.cachesOff = false
}

// MemoryWords returns the number of 64-bit words backing the column.
func (c *Column) MemoryWords() int {
	var t int
	for g := range c.groups {
		t += len(c.groups[g])
	}
	return t
}
