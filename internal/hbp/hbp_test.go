package hbp

import (
	"math/rand"
	"testing"

	"bpagg/internal/word"
)

func randValues(rng *rand.Rand, n, k int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() & word.LowMask(k)
	}
	return v
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int{1, 2, 3, 7, 8, 25, 31, 33, 63, 64} {
		taus := []int{1, 2, 3, 4, 7, 15, 31, k}
		for _, tau := range taus {
			if tau > k || tau > MaxTau {
				continue
			}
			for _, n := range []int{0, 1, 59, 60, 64, 65, 200} {
				vals := randValues(rng, n, k)
				c := Pack(vals, k, tau)
				if c.Len() != n {
					t.Fatalf("k=%d tau=%d n=%d: Len=%d", k, tau, n, c.Len())
				}
				got := c.Unpack()
				for i := range vals {
					if got[i] != vals[i] {
						t.Fatalf("k=%d tau=%d n=%d: value %d = %d, want %d",
							k, tau, n, i, got[i], vals[i])
					}
				}
			}
		}
	}
}

func TestShape(t *testing.T) {
	// Paper Figure 4b scaled to w=64: k=6, tau=3 -> fields of 4 bits,
	// 16 per word, 2 bit-groups, 4 sub-segments, 64 values per segment.
	c := New(6, 3)
	if c.FieldWidth() != 4 || c.FieldsPerWord() != 16 || c.NumGroups() != 2 ||
		c.SubSegments() != 4 || c.ValuesPerSegment() != 64 {
		t.Fatalf("unexpected shape: f=%d c=%d B=%d ss=%d vps=%d",
			c.FieldWidth(), c.FieldsPerWord(), c.NumGroups(), c.SubSegments(), c.ValuesPerSegment())
	}
	// Basic HBP (tau = k): one group, k+1-bit fields.
	b := New(25, 25)
	if b.NumGroups() != 1 || b.FieldWidth() != 26 || b.FieldsPerWord() != 2 ||
		b.ValuesPerSegment() != 52 {
		t.Fatalf("basic layout shape: B=%d f=%d c=%d vps=%d",
			b.NumGroups(), b.FieldWidth(), b.FieldsPerWord(), b.ValuesPerSegment())
	}
}

func TestDelimitersAlwaysZero(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, tau := range []int{1, 3, 4, 7} {
		k := 2 * tau
		c := Pack(randValues(rng, 300, k), k, tau)
		delim := c.DelimMask()
		for g := 0; g < c.NumGroups(); g++ {
			for wi, w := range c.GroupWords(g) {
				if w&delim != 0 {
					t.Fatalf("tau=%d group %d word %d has delimiter bits set: %#x", tau, g, wi, w)
				}
				// Padding bits above the last field must be zero too.
				if w&^word.FieldMask(tau, c.FieldsPerWord()) != 0 {
					t.Fatalf("tau=%d group %d word %d has padding bits set: %#x", tau, g, wi, w)
				}
			}
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	// k=6, tau=3: sub-segments get tuples round-robin; slot advances every
	// tau+1 tuples. Value j = j for traceability.
	vals := make([]uint64, 64)
	for j := range vals {
		vals[j] = uint64(j)
	}
	c := Pack(vals, 6, 3)
	for j := 0; j < 64; j++ {
		t1 := j % 4
		s := j / 4
		// Group 0 holds the high 3 bits, group 1 the low 3 bits.
		hi := word.Field(c.Word(0, 0, t1), 3, s)
		lo := word.Field(c.Word(1, 0, t1), 3, s)
		if got := hi<<3 | lo; got != uint64(j) {
			t.Fatalf("tuple %d: reassembled %d", j, got)
		}
	}
}

func TestSubSegmentDelimsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tau := range []int{1, 2, 3, 4, 7, 12} {
		c := New(2*tau, tau)
		vps := c.ValuesPerSegment()
		for trial := 0; trial < 50; trial++ {
			fw := rng.Uint64() & word.LowMask(vps)
			// Union over sub-segments of scattered delimiters must equal fw.
			var back uint64
			for t1 := 0; t1 < c.SubSegments(); t1++ {
				md := c.SubSegmentDelims(fw, t1)
				if md&^c.DelimMask() != 0 {
					t.Fatalf("tau=%d: M_d has non-delimiter bits", tau)
				}
				back |= c.ScatterDelims(md, t1)
			}
			if back != fw {
				t.Fatalf("tau=%d: scatter(gather(F)) = %#x, want %#x", tau, back, fw)
			}
		}
	}
}

func TestSubSegmentDelimsSemantics(t *testing.T) {
	// A delimiter must be set exactly for the tuples assigned to that
	// sub-segment and slot.
	c := New(6, 3) // vps=64
	for i := 0; i < 64; i++ {
		fw := uint64(1) << uint(i)
		tWant := i % 4
		sWant := i / 4
		for t1 := 0; t1 < 4; t1++ {
			md := c.SubSegmentDelims(fw, t1)
			if t1 != tWant {
				if md != 0 {
					t.Fatalf("tuple %d: sub-segment %d unexpectedly selected", i, t1)
				}
				continue
			}
			wantBit := uint64(1) << uint(sWant*4+3)
			if md != wantBit {
				t.Fatalf("tuple %d: M_d = %#x, want %#x", i, md, wantBit)
			}
		}
	}
}

func TestDefaultTau(t *testing.T) {
	for k := 1; k <= 64; k++ {
		tau := DefaultTau(k)
		if tau < 1 || tau > MaxTau || (k <= MaxTau && tau > k) {
			t.Fatalf("DefaultTau(%d) = %d out of range", k, tau)
		}
		// The choice must not be worse than basic HBP (tau=min(k,31)).
		basic := k
		if basic > MaxTau {
			basic = MaxTau
		}
		if costPerValue(min(k, MaxTau), tau) > costPerValue(min(k, MaxTau), basic) {
			t.Errorf("DefaultTau(%d)=%d costs more than basic tau=%d", k, tau, basic)
		}
	}
}

func TestSegmentValues(t *testing.T) {
	c := New(25, 25) // vps = 52
	c.Append(randValues(rand.New(rand.NewSource(24)), 105, 25)...)
	if c.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d, want 3", c.NumSegments())
	}
	if c.SegmentValues(0) != 52 || c.SegmentValues(2) != 1 {
		t.Errorf("SegmentValues = %d,%d", c.SegmentValues(0), c.SegmentValues(2))
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	cases := []struct{ k, tau int }{{0, 1}, {65, 4}, {8, 0}, {8, 9}, {40, 32}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.k, c.tau)
				}
			}()
			New(c.k, c.tau)
		}()
	}
}

func TestOversizedValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append of oversized value did not panic")
		}
	}()
	New(4, 2).Append(16)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
