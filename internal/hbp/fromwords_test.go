package hbp

import (
	"math/rand"
	"testing"
)

func TestAccessors(t *testing.T) {
	c := Pack([]uint64{1, 2, 3}, 10, 5)
	if c.K() != 10 || c.Tau() != 5 {
		t.Errorf("K=%d Tau=%d", c.K(), c.Tau())
	}
	if c.ValueMask()&c.DelimMask() != 0 {
		t.Error("value and delimiter masks overlap")
	}
	if c.MemoryWords() != c.NumGroups()*(c.Tau()+1)*c.NumSegments() {
		t.Errorf("MemoryWords = %d", c.MemoryWords())
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vals := randValues(rng, 200, 13)
	orig := Pack(vals, 13, 4)
	groups := make([][]uint64, orig.NumGroups())
	for g := range groups {
		groups[g] = append([]uint64(nil), orig.GroupWords(g)...)
	}
	got, err := FromWords(13, 4, 200, groups)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got.At(i) != want {
			t.Fatalf("At(%d) = %d, want %d", i, got.At(i), want)
		}
	}
}

func TestFromWordsValidation(t *testing.T) {
	orig := Pack([]uint64{1, 2, 3}, 8, 4)
	good := func() [][]uint64 {
		groups := make([][]uint64, orig.NumGroups())
		for g := range groups {
			groups[g] = append([]uint64(nil), orig.GroupWords(g)...)
		}
		return groups
	}

	if _, err := FromWords(8, 4, -1, good()); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := FromWords(8, 4, 3, good()[:1]); err == nil {
		t.Error("missing group accepted")
	}
	short := good()
	short[0] = short[0][:1]
	if _, err := FromWords(8, 4, 3, short); err == nil {
		t.Error("short group accepted")
	}
	bad := good()
	bad[0][0] |= 1 << 4 // delimiter of slot 0 (tau=4)
	if _, err := FromWords(8, 4, 3, bad); err == nil {
		t.Error("delimiter bit accepted")
	}
	pad := good()
	pad[1][0] |= 1 << 63 // padding above the last field (c=12, f=5 -> 60 bits)
	if _, err := FromWords(8, 4, 3, pad); err == nil {
		t.Error("padding bit accepted")
	}
}
