package hbp

import (
	"math/bits"

	"bpagg/internal/word"
)

// Frozen is an immutable view over a column's sealed packed words, captured
// for the prefix-sum range index (internal/rangeidx) — see vbp.Frozen for
// the immutability argument. Its kernels aggregate one segment under an
// explicit dense tuple mask, the fringe shape of a range query.
type Frozen struct {
	k, tau, b, c int
	delim        uint64
	summer       word.Summer
	groups       [][]uint64 // headers truncated to the sealed segments
}

// Freeze captures the first sealed segments of the column as a Frozen view.
// It must be called while no append is in flight (the table's append lock).
func (c *Column) Freeze(sealed int) *Frozen {
	f := &Frozen{
		k: c.k, tau: c.tau, b: c.b, c: c.c,
		delim:  c.delim,
		summer: word.NewSummer(c.tau, c.c),
		groups: make([][]uint64, c.b),
	}
	for g := range c.groups {
		n := sealed * (c.tau + 1)
		if n > len(c.groups[g]) {
			n = len(c.groups[g])
		}
		f.groups[g] = c.groups[g][:n:n]
	}
	return f
}

// SegRows returns the number of tuples per segment, c*(tau+1).
func (f *Frozen) SegRows() int { return f.c * (f.tau + 1) }

// SegWords returns the packed words one segment occupies: tau+1
// sub-segment words per bit-group.
func (f *Frozen) SegWords() int { return f.b * (f.tau + 1) }

// SumMasked returns the 128-bit sum of the segment's tuples selected by the
// dense mask (bit j = tuple j of the segment), plus the packed words
// touched. It is the in-word-sum kernel of HBPSumRange restricted to one
// segment: per sub-segment the mask aligns onto the delimiter lane, spreads
// over the value lanes, and each group's masked word folds to a partial sum
// weighted by the group's bit position.
func (f *Frozen) SumMasked(seg int, mask uint64) (hi, lo uint64, words int) {
	if mask == 0 {
		return 0, 0, 0
	}
	base := seg * (f.tau + 1)
	for g := 0; g < f.b; g++ {
		var part uint64
		gw := f.groups[g]
		for t := 0; t <= f.tau; t++ {
			md := mask << uint(f.tau-t) & f.delim
			if md == 0 {
				continue
			}
			m := word.SpreadDelims(md, f.tau)
			part += f.summer.Sum(gw[base+t] & m)
			if g == 0 {
				words += f.b
			}
		}
		hi, lo = word.AddShift128(hi, lo, part, uint((f.b-1-g)*f.tau))
	}
	return hi, lo, words
}

// at reconstructs the segment-local tuple i from the frozen words.
func (f *Frozen) at(seg, i int) uint64 {
	t, s := i%(f.tau+1), i/(f.tau+1)
	base := seg * (f.tau + 1)
	var v uint64
	for g := 0; g < f.b; g++ {
		v = v<<uint(f.tau) | word.Field(f.groups[g][base+t], f.tau, s)
	}
	return v
}

// MinMasked returns the minimum of the segment's masked tuples; ok is
// false when the mask is empty. A fringe holds at most SegRows tuples, so
// per-tuple field extraction is cheap enough here.
func (f *Frozen) MinMasked(seg int, mask uint64) (uint64, bool) {
	best, found := uint64(0), false
	for m := mask; m != 0; m &= m - 1 {
		v := f.at(seg, bits.TrailingZeros64(m))
		if !found || v < best {
			best = v
		}
		found = true
	}
	return best, found
}

// MaxMasked is the dual of MinMasked.
func (f *Frozen) MaxMasked(seg int, mask uint64) (uint64, bool) {
	best, found := uint64(0), false
	for m := mask; m != 0; m &= m - 1 {
		v := f.at(seg, bits.TrailingZeros64(m))
		if !found || v > best {
			best = v
		}
		found = true
	}
	return best, found
}
