package word

import "math/bits"

// 128-bit accumulator primitives shared by the checked SUM kernels
// (internal/core) and the prefix-sum range index (internal/rangeidx).
// A 128-bit value is an (hi, lo) pair of uint64: value = hi·2^64 + lo.

// Add128 adds v into the 128-bit accumulator (hi, lo).
func Add128(hi, lo, v uint64) (uint64, uint64) {
	nl, carry := bits.Add64(lo, v, 0)
	return hi + carry, nl
}

// AddShift128 adds v<<s (s in [0, 63]) into (hi, lo), keeping the bits
// that shift past the low word. Go defines v>>64 as 0, so s == 0 needs no
// special case.
func AddShift128(hi, lo, v uint64, s uint) (uint64, uint64) {
	nl, carry := bits.Add64(lo, v<<s, 0)
	return hi + carry + v>>(64-s), nl
}

// Add128Shifted adds the 128-bit value (vhi, vlo)<<s (s in [0, 63]) into
// (hi, lo). True sums stay below 2^128 (n < 2^64 codes of ≤ 64 bits), so
// bits shifted past 2^128 cannot occur for well-formed inputs.
func Add128Shifted(hi, lo, vhi, vlo uint64, s uint) (uint64, uint64) {
	slo := vlo << s
	shi := vhi<<s | vlo>>(64-s) // vlo>>64 is defined as 0, so s == 0 is exact
	nl, carry := bits.Add64(lo, slo, 0)
	return hi + carry + shi, nl
}

// Add128Pair adds the 128-bit value (vhi, vlo) into (hi, lo).
func Add128Pair(hi, lo, vhi, vlo uint64) (uint64, uint64) {
	nl, carry := bits.Add64(lo, vlo, 0)
	return hi + vhi + carry, nl
}

// Sub128 subtracts the 128-bit value (vhi, vlo) from (hi, lo). The caller
// guarantees (hi, lo) ≥ (vhi, vlo) — prefix sums are monotone, so a range
// difference can never go negative.
func Sub128(hi, lo, vhi, vlo uint64) (uint64, uint64) {
	nl, borrow := bits.Sub64(lo, vlo, 0)
	return hi - vhi - borrow, nl
}
