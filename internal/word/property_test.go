package word

import (
	"testing"
	"testing/quick"
)

// The property tests pin the SWAR primitives against their scalar meaning
// over quick-generated words. Raw uint64 inputs are masked into valid
// packed form (delimiters and padding zero) before use.

// sanitize clears delimiter and padding bits so w satisfies the packed-word
// contract for (tau, c).
func sanitize(w uint64, tau, c int) uint64 {
	return w & ValueMask(tau, c)
}

func TestPropInWordSumEqualsFieldSum(t *testing.T) {
	f := func(raw uint64, tauRaw, cRaw uint8) bool {
		tau := int(tauRaw)%MaxTau + 1
		maxC := FieldsPerWord(tau)
		c := int(cRaw)%maxC + 1
		w := sanitize(raw, tau, c)
		return InWordSum(w, tau, c) == InWordSumRef(w, tau, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropSummerEqualsInWordSum(t *testing.T) {
	f := func(raw uint64, tauRaw, cRaw uint8) bool {
		tau := int(tauRaw)%MaxTau + 1
		maxC := FieldsPerWord(tau)
		c := int(cRaw)%maxC + 1
		w := sanitize(raw, tau, c)
		return NewSummer(tau, c).Sum(w) == InWordSumRef(w, tau, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropComparisonTrichotomy(t *testing.T) {
	// Exactly one of LT, EQ, GT holds per slot, and GE = EQ OR GT.
	f := func(rawX, rawY uint64, tauRaw uint8) bool {
		tau := int(tauRaw)%MaxTau + 1
		c := FieldsPerWord(tau)
		x := sanitize(rawX, tau, c)
		y := sanitize(rawY, tau, c)
		d := DelimMask(tau, c)
		lt := LTDelims(x, y, d)
		eq := EQDelims(x, y, d)
		gt := GTDelims(x, y, d)
		if lt&eq != 0 || lt&gt != 0 || eq&gt != 0 {
			return false // overlap
		}
		if lt|eq|gt != d {
			return false // a slot decided nothing
		}
		return GEDelims(x, y, d) == (eq|gt) && LEDelims(x, y, d) == (eq|lt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropComparisonAntisymmetry(t *testing.T) {
	// x < y per slot iff y > x per slot; equality is symmetric.
	f := func(rawX, rawY uint64, tauRaw uint8) bool {
		tau := int(tauRaw)%MaxTau + 1
		c := FieldsPerWord(tau)
		x := sanitize(rawX, tau, c)
		y := sanitize(rawY, tau, c)
		d := DelimMask(tau, c)
		return LTDelims(x, y, d) == GTDelims(y, x, d) &&
			EQDelims(x, y, d) == EQDelims(y, x, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropBlendPicksPerBit(t *testing.T) {
	f := func(m, x, y uint64) bool {
		b := Blend(m, x, y)
		return b&m == x&m && b&^m == y&^m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSpreadDelimsCoversValueBits(t *testing.T) {
	// Spreading any sub-mask of the delimiter lane yields exactly the
	// value bits of the selected slots.
	f := func(sel uint64, tauRaw uint8) bool {
		tau := int(tauRaw)%MaxTau + 1
		c := FieldsPerWord(tau)
		md := sel & DelimMask(tau, c)
		got := SpreadDelims(md, tau)
		var want uint64
		for s := 0; s < c; s++ {
			if md&(1<<uint(s*(tau+1)+tau)) != 0 {
				want |= LowMask(tau) << uint(s*(tau+1))
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropFieldPutFieldInverse(t *testing.T) {
	f := func(raw, v uint64, tauRaw, sRaw uint8) bool {
		tau := int(tauRaw)%MaxTau + 1
		c := FieldsPerWord(tau)
		s := int(sRaw) % c
		v &= LowMask(tau)
		w := PutField(sanitize(raw, tau, c), tau, s, v)
		return Field(w, tau, s) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
