package word

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestLowMask(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{-1, 0},
		{0, 0},
		{1, 1},
		{4, 0xF},
		{63, 0x7FFFFFFFFFFFFFFF},
		{64, ^uint64(0)},
		{99, ^uint64(0)},
	}
	for _, c := range cases {
		if got := LowMask(c.n); got != c.want {
			t.Errorf("LowMask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestRepeat(t *testing.T) {
	cases := []struct {
		pattern uint64
		patBits int
		count   int
		want    uint64
	}{
		{0b1, 1, 64, ^uint64(0)},
		{0b1000, 4, 2, 0x88},
		{0b01, 2, 3, 0b010101},
		{0xFF, 4, 2, 0xFF}, // pattern truncated to patBits
		{0b1, 8, 0, 0},
	}
	for _, c := range cases {
		if got := Repeat(c.pattern, c.patBits, c.count); got != c.want {
			t.Errorf("Repeat(%#b,%d,%d) = %#x, want %#x", c.pattern, c.patBits, c.count, got, c.want)
		}
	}
}

func TestMasksStructure(t *testing.T) {
	for tau := 1; tau <= MaxTau; tau++ {
		c := FieldsPerWord(tau)
		d, v, f := DelimMask(tau, c), ValueMask(tau, c), FieldMask(tau, c)
		if d&v != 0 {
			t.Fatalf("tau=%d: delimiter and value masks overlap", tau)
		}
		if d|v != f {
			t.Fatalf("tau=%d: delim|value != field mask", tau)
		}
		if Popcount(d) != c {
			t.Fatalf("tau=%d: delim mask has %d bits, want %d", tau, Popcount(d), c)
		}
		if Popcount(v) != c*tau {
			t.Fatalf("tau=%d: value mask has %d bits, want %d", tau, Popcount(v), c*tau)
		}
		if Popcount(f) != c*(tau+1) {
			t.Fatalf("tau=%d: field mask has %d bits, want %d", tau, Popcount(f), c*(tau+1))
		}
	}
}

func TestFieldRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for tau := 1; tau <= MaxTau; tau++ {
		c := FieldsPerWord(tau)
		vals := make([]uint64, c)
		var w uint64
		for s := range vals {
			vals[s] = rng.Uint64() & LowMask(tau)
			w = PutField(w, tau, s, vals[s])
		}
		for s, want := range vals {
			if got := Field(w, tau, s); got != want {
				t.Fatalf("tau=%d field %d: got %d want %d", tau, s, got, want)
			}
		}
		if w&DelimMask(tau, c) != 0 {
			t.Fatalf("tau=%d: PutField touched delimiter bits", tau)
		}
	}
}

func TestPutFieldOverwrites(t *testing.T) {
	w := PutField(0, 3, 2, 0b101)
	w = PutField(w, 3, 2, 0b010)
	if got := Field(w, 3, 2); got != 0b010 {
		t.Fatalf("overwrite failed: got %#b", got)
	}
	// Other fields untouched.
	for s := 0; s < FieldsPerWord(3); s++ {
		if s != 2 && Field(w, 3, s) != 0 {
			t.Fatalf("field %d disturbed", s)
		}
	}
}

func TestBlend(t *testing.T) {
	x, y := uint64(0xAAAA), uint64(0x5555)
	if got := Blend(^uint64(0), x, y); got != x {
		t.Errorf("full mask: got %#x want %#x", got, x)
	}
	if got := Blend(0, x, y); got != y {
		t.Errorf("zero mask: got %#x want %#x", got, y)
	}
	if got := Blend(0xFF00, x, y); got != 0xAA55 {
		t.Errorf("mixed mask: got %#x", got)
	}
}

func TestSpreadDelims(t *testing.T) {
	for tau := 1; tau <= MaxTau; tau++ {
		c := FieldsPerWord(tau)
		full := DelimMask(tau, c)
		if got, want := SpreadDelims(full, tau), ValueMask(tau, c); got != want {
			t.Fatalf("tau=%d full: got %#x want %#x", tau, got, want)
		}
		// A single delimiter spreads to exactly its own value bits.
		for s := 0; s < c; s++ {
			md := uint64(1) << uint(s*(tau+1)+tau)
			want := LowMask(tau) << uint(s*(tau+1))
			if got := SpreadDelims(md, tau); got != want {
				t.Fatalf("tau=%d slot %d: got %#x want %#x", tau, s, got, want)
			}
		}
	}
}

// randPacked builds a word of c random tau-bit fields with zero delimiters.
func randPacked(rng *rand.Rand, tau, c int) uint64 {
	var w uint64
	for s := 0; s < c; s++ {
		w = PutField(w, tau, s, rng.Uint64()&LowMask(tau))
	}
	return w
}

func TestComparisonDelims(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for tau := 1; tau <= MaxTau; tau++ {
		c := FieldsPerWord(tau)
		delim := DelimMask(tau, c)
		for trial := 0; trial < 200; trial++ {
			x := randPacked(rng, tau, c)
			y := randPacked(rng, tau, c)
			if trial%5 == 0 {
				y = x // force equality slots
			}
			ge := GEDelims(x, y, delim)
			lt := LTDelims(x, y, delim)
			gt := GTDelims(x, y, delim)
			le := LEDelims(x, y, delim)
			eq := EQDelims(x, y, delim)
			ne := NEDelims(x, y, delim)
			for s := 0; s < c; s++ {
				bit := uint64(1) << uint(s*(tau+1)+tau)
				xv, yv := Field(x, tau, s), Field(y, tau, s)
				check := func(name string, mask uint64, want bool) {
					if (mask&bit != 0) != want {
						t.Fatalf("tau=%d slot %d %s: x=%d y=%d got %v want %v",
							tau, s, name, xv, yv, mask&bit != 0, want)
					}
				}
				check("GE", ge, xv >= yv)
				check("LT", lt, xv < yv)
				check("GT", gt, xv > yv)
				check("LE", le, xv <= yv)
				check("EQ", eq, xv == yv)
				check("NE", ne, xv != yv)
			}
		}
	}
}

func TestComparisonDelimsExtremes(t *testing.T) {
	for tau := 1; tau <= MaxTau; tau++ {
		c := FieldsPerWord(tau)
		delim := DelimMask(tau, c)
		zero := uint64(0)
		max := ValueMask(tau, c)
		if got := GEDelims(max, zero, delim); got != delim {
			t.Errorf("tau=%d: max >= 0 should hold everywhere", tau)
		}
		if got := LTDelims(zero, max, delim); got != delim {
			t.Errorf("tau=%d: 0 < max should hold everywhere", tau)
		}
		if got := EQDelims(max, max, delim); got != delim {
			t.Errorf("tau=%d: max == max should hold everywhere", tau)
		}
		if got := LTDelims(max, max, delim); got != 0 {
			t.Errorf("tau=%d: max < max should hold nowhere", tau)
		}
	}
}

func TestInWordSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for tau := 1; tau <= MaxTau; tau++ {
		maxC := FieldsPerWord(tau)
		for c := 1; c <= maxC; c++ {
			for trial := 0; trial < 64; trial++ {
				w := randPacked(rng, tau, c)
				want := InWordSumRef(w, tau, c)
				if got := InWordSum(w, tau, c); got != want {
					t.Fatalf("InWordSum tau=%d c=%d w=%#x: got %d want %d", tau, c, w, got, want)
				}
			}
		}
	}
}

func TestInWordSumWorstCase(t *testing.T) {
	// All fields at their maximum value: the largest total the accumulator
	// must hold.
	for tau := 1; tau <= MaxTau; tau++ {
		c := FieldsPerWord(tau)
		w := ValueMask(tau, c)
		want := uint64(c) * LowMask(tau)
		if got := InWordSum(w, tau, c); got != want {
			t.Fatalf("tau=%d c=%d all-max: got %d want %d", tau, c, got, want)
		}
	}
}

func TestInWordSumZero(t *testing.T) {
	for tau := 1; tau <= MaxTau; tau++ {
		for _, c := range []int{1, 2, FieldsPerWord(tau)} {
			if got := InWordSum(0, tau, c); got != 0 {
				t.Fatalf("tau=%d c=%d zero word: got %d", tau, c, got)
			}
		}
	}
}

func TestSummerMatchesInWordSum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for tau := 1; tau <= MaxTau; tau++ {
		maxC := FieldsPerWord(tau)
		for _, c := range []int{1, 2, 3, maxC - 1, maxC} {
			if c < 1 || c > maxC {
				continue
			}
			s := NewSummer(tau, c)
			for trial := 0; trial < 64; trial++ {
				w := randPacked(rng, tau, c)
				want := InWordSumRef(w, tau, c)
				if got := s.Sum(w); got != want {
					t.Fatalf("Summer tau=%d c=%d w=%#x: got %d want %d", tau, c, w, got, want)
				}
			}
		}
	}
}

func TestPopcount(t *testing.T) {
	for _, w := range []uint64{0, 1, ^uint64(0), 0xF0F0F0F0F0F0F0F0} {
		if got, want := Popcount(w), bits.OnesCount64(w); got != want {
			t.Errorf("Popcount(%#x) = %d, want %d", w, got, want)
		}
	}
}

func BenchmarkInWordSum(b *testing.B) {
	s := NewSummer(7, 8)
	w := randPacked(rand.New(rand.NewSource(5)), 7, 8)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Sum(w)
	}
	_ = sink
}

func BenchmarkInWordSumRef(b *testing.B) {
	w := randPacked(rand.New(rand.NewSource(5)), 7, 8)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += InWordSumRef(w, 7, 8)
	}
	_ = sink
}
