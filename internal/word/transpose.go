package word

// Transpose64 transposes a 64x64 bit matrix in place: afterwards, bit j of
// m[i] is the former bit i of m[j]. It is the recursive block-swap method
// (Hacker's Delight §7-3): swap progressively smaller off-diagonal blocks,
// six rounds of masked exchanges.
//
// Bulk VBP packing uses it to turn 64 row-ordered values into the 64
// bit-position words of a segment in ~6*64 word operations instead of
// 64*k single-bit deposits.
func Transpose64(m *[64]uint64) {
	j := 32
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((m[k] >> uint(j)) ^ m[k+j]) & mask
			m[k] ^= t << uint(j)
			m[k+j] ^= t
		}
		j >>= 1
		mask ^= mask << uint(j)
	}
}
