package word

import "math/bits"

// InWordSum returns the sum of the c tau-bit values packed in w (fields
// LSB-first, delimiter and padding bits zero). It is the IN-WORD-SUM
// procedure of Algorithm 4, derived from the Gilles–Miller method for
// sideways addition: one shifted add folds adjacent fields into pair sums, a
// mask keeps each pair sum once, and a single multiplication accumulates all
// pair sums into the top 2*(tau+1) bits of the product.
//
// tau must be in [1, MaxTau] and c in [1, FieldsPerWord(tau)]. For tau == 1
// the pair-sum accumulator (2*(tau+1) = 4 bits) cannot hold the worst-case
// total of 32, so the routine degenerates to POPCNT — which is precisely
// sideways addition at width one. For every tau >= 2 the worst-case total
// c*(2^tau - 1) fits in 2*(tau+1) bits at word width 64, so the multiply
// trick is exact.
func InWordSum(w uint64, tau, c int) uint64 {
	if tau == 1 {
		return uint64(bits.OnesCount64(w))
	}
	f := tau + 1
	end := c * f // bit just above the highest field

	// An odd field count would leave one field unpaired, so peel off the
	// bottom field and fold it back in at the end.
	var extra uint64
	if c&1 == 1 {
		extra = w & LowMask(tau)
		w &^= LowMask(f)
		c--
		if c == 0 {
			return extra
		}
	}

	// Flush the fields against the MSB so the accumulated total lands in a
	// slot that lies fully inside the word: the highest field moves to
	// [64-f, 64), and in MSB-indexed terms field m sits at [64-(m+1)f, 64-mf).
	x := w << uint(W-end)

	// Fold: field m becomes orig[m] + orig[m-1]; the delimiter bit gives the
	// pair sum headroom, so no fold crosses a field boundary.
	x += x >> uint(f)

	// Keep every second field (m = 1, 3, 5, ... from the MSB): those hold the
	// pair sums (0+1), (2+3), ...
	p := c / 2
	var keep uint64
	for j := 0; j < p; j++ {
		keep |= LowMask(f) << uint(W-2*f*(j+1))
	}
	x &= keep

	// One multiplication accumulates all pair sums into the top 2f bits:
	// pair j sits at offset 64-2f(j+1) and the multiplier's 2f*j term lifts
	// it to 64-2f. All other partial products land at lower slots (or shift
	// out entirely), and no slot overflows because every partial sum is
	// bounded by the grand total, which fits in 2f bits.
	var mul uint64
	for i := 0; i < p; i++ {
		mul |= 1 << uint(2*f*i)
	}
	return (x*mul)>>uint(W-2*f) + extra
}

// InWordSumRef is the scalar reference for InWordSum, used by tests and by
// code paths where clarity matters more than speed.
func InWordSumRef(w uint64, tau, c int) uint64 {
	var sum uint64
	for s := 0; s < c; s++ {
		sum += Field(w, tau, s)
	}
	return sum
}
