package word

import "math/bits"

// Positional-popcount primitives (DESIGN.md §14). VBP SUM reduces to one
// population count per plane word; a Harley–Seal carry-save network
// instead accumulates whole blocks of words into bit-sliced counters
// (ones/twos/fours planes) and pays one POPCNT per block tier, not per
// word. The primitives here are the per-word building blocks; the block
// accumulators that stream (segment, filter word) pairs through them live
// next to the kernels in internal/core and internal/wide.

// CSA is a carry-save adder: a, b and the incoming partial c are treated
// as 64 independent one-bit lanes, and each lane's full-adder sum and
// carry come back as two words. Five bitwise ops replace what would be 64
// scalar additions — the intra-cycle parallelism the paper builds on,
// applied to the counting itself.
func CSA(c, a, b uint64) (sum, carry uint64) {
	u := c ^ a
	return u ^ b, c&a | u&b
}

// CSA8 is the Harley–Seal block step: it folds eight words into the
// running bit-sliced counters ones/twos/fours (weights 1, 2 and 4) and
// returns the updated counters plus the eights word, every set bit of
// which carries weight 8. Callers add popcount(eights)·8 to their total —
// one POPCNT per eight words — and drain the residual counters with
// CSAFold once the stream ends. Zero input words pass through every adder
// unchanged, so partial blocks may be zero-padded exactly.
func CSA8(ones, twos, fours uint64, w *[8]uint64) (o, t, f, eights uint64) {
	var tA, tB, fA, fB uint64
	ones, tA = CSA(ones, w[0], w[1])
	ones, tB = CSA(ones, w[2], w[3])
	twos, fA = CSA(twos, tA, tB)
	ones, tA = CSA(ones, w[4], w[5])
	ones, tB = CSA(ones, w[6], w[7])
	twos, fB = CSA(twos, tA, tB)
	fours, eights = CSA(fours, fA, fB)
	return ones, twos, fours, eights
}

// CSAFold drains the residual counter state into a scalar count:
// popcount(ones) + 2·popcount(twos) + 4·popcount(fours). The weights are
// applied with the addition-doubling identity of the SWAR counting paper
// (2x computed as x+x), so the in-word fold is shift-free and the whole
// expression is a pure add tree.
func CSAFold(ones, twos, fours uint64) uint64 {
	t := uint64(bits.OnesCount64(twos))
	q := uint64(bits.OnesCount64(fours))
	q += q // 2·popcount(fours)
	return uint64(bits.OnesCount64(ones)) + t + t + q + q
}

// OnesCounter is a streaming population counter over a word sequence —
// the COUNT-side use of the carry-save network. Words are fed one at a
// time; odd arrivals wait in pend, and each completed pair costs one CSA
// plus two half-adds, paying a POPCNT only when a bit ripples into the
// weight-8 tier instead of once per word. The zero value is ready to use.
type OnesCounter struct {
	ones, twos, fours uint64
	pend              uint64
	has               bool
	total             uint64
}

// Feed accumulates the set bits of w.
func (c *OnesCounter) Feed(w uint64) {
	if !c.has {
		c.pend, c.has = w, true
		return
	}
	c.has = false
	var t, f, e uint64
	c.ones, t = CSA(c.ones, c.pend, w)
	c.twos, f = CSA(c.twos, t, 0)
	c.fours, e = CSA(c.fours, f, 0)
	if e != 0 {
		c.total += uint64(bits.OnesCount64(e)) << 3
	}
}

// Total returns the bits counted so far. The counter stays usable; Total
// folds the residual tiers without consuming them.
func (c *OnesCounter) Total() uint64 {
	n := c.total + CSAFold(c.ones, c.twos, c.fours)
	if c.has {
		n += uint64(bits.OnesCount64(c.pend))
	}
	return n
}
