// Package word provides 64-bit SWAR (SIMD Within A Register) primitives
// shared by the bit-packed storage layouts, the bit-parallel scan operators,
// and the bit-parallel aggregation algorithms.
//
// # Conventions
//
// The processor word width is fixed at W = 64 bits. Horizontally packed
// words hold c fields of width f = tau+1 bits each, placed LSB-first:
// field s occupies bits [s*f, (s+1)*f). The top bit of each field
// (bit s*f+tau) is the delimiter; stored data always keeps delimiters zero
// so that full-word addition and subtraction cannot carry or borrow across
// field boundaries. Bits at and above c*f are padding and must be zero.
//
// This is the mirror image of the paper's MSB-first figures; every formula
// flips its shift direction accordingly, and the property tests in this
// package pin each primitive against a scalar reference so the convention
// cannot drift.
package word

import "math/bits"

// W is the processor word width in bits.
const W = 64

// MaxTau is the largest supported bit-group size for horizontal packing.
// Field width is tau+1 and at least two fields must fit in a word.
const MaxTau = 31

// Popcount returns the number of set bits in w (the POPCNT procedure of the
// paper).
func Popcount(w uint64) int { return bits.OnesCount64(w) }

// LowMask returns a word with the n lowest bits set. n must be in [0, 64].
func LowMask(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= W {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Repeat tiles the low patBits bits of pattern count times, LSB-first:
// copy i occupies bits [i*patBits, (i+1)*patBits).
func Repeat(pattern uint64, patBits, count int) uint64 {
	pattern &= LowMask(patBits)
	var out uint64
	for i := 0; i < count; i++ {
		out |= pattern << uint(i*patBits)
	}
	return out
}

// DelimMask returns the delimiter lane: bit s*(tau+1)+tau set for each of the
// c fields, zeros elsewhere.
func DelimMask(tau, c int) uint64 {
	return Repeat(1<<uint(tau), tau+1, c)
}

// ValueMask returns the value lanes: the low tau bits of each of the c
// fields set, delimiters and padding zero.
func ValueMask(tau, c int) uint64 {
	return Repeat(LowMask(tau), tau+1, c)
}

// FieldMask returns all tau+1 bits of each of the c fields set.
func FieldMask(tau, c int) uint64 {
	return Repeat(LowMask(tau+1), tau+1, c)
}

// FieldsPerWord returns how many (tau+1)-bit fields fit in a 64-bit word.
func FieldsPerWord(tau int) int { return W / (tau + 1) }

// Field extracts the value bits (low tau bits) of field s from w.
func Field(w uint64, tau, s int) uint64 {
	return (w >> uint(s*(tau+1))) & LowMask(tau)
}

// PutField deposits v into the value bits of field s of w. Any previous
// contents of the field's value bits are cleared; v must fit in tau bits.
func PutField(w uint64, tau, s int, v uint64) uint64 {
	shift := uint(s * (tau + 1))
	w &^= LowMask(tau) << shift
	return w | v<<shift
}

// Blend selects, bit by bit, x where m is 1 and y where m is 0:
// (m AND x) OR (NOT m AND y). It is the slot-selection step of SLOTMIN and
// SUB-SLOTMIN.
func Blend(m, x, y uint64) uint64 {
	return (x & m) | (y &^ m)
}

// SpreadDelims expands a delimiter mask into a value-bit mask: each set
// delimiter bit d becomes the tau bits below d. It implements the paper's
// M := M_d - (M_d >> tau) step (GET-VALUE-FILTER step 2). Delimiter bits
// themselves end up zero in the result, which is what both SUM (values carry
// zero delimiters anyway) and SUB-SLOTMIN (delimiters stay zero in storage)
// require.
func SpreadDelims(md uint64, tau int) uint64 {
	return md - (md >> uint(tau))
}

// GEDelims compares fields of x and y as unsigned tau-bit integers and
// returns a word whose delimiter bit for field s is 1 iff x_s >= y_s.
// Both x and y must have zero delimiter and padding bits. delim is
// DelimMask(tau, c).
//
// It relies on Lamport's observation: (x_s + 2^tau) - y_s stays within the
// field for 0 <= x_s, y_s < 2^tau, and the borrow consumes the injected
// delimiter exactly when x_s < y_s.
func GEDelims(x, y, delim uint64) uint64 {
	return ((x | delim) - y) & delim
}

// LTDelims returns delimiter bits set where x_s < y_s.
func LTDelims(x, y, delim uint64) uint64 {
	return (GEDelims(x, y, delim) ^ delim) & delim
}

// GTDelims returns delimiter bits set where x_s > y_s.
func GTDelims(x, y, delim uint64) uint64 {
	return LTDelims(y, x, delim)
}

// LEDelims returns delimiter bits set where x_s <= y_s.
func LEDelims(x, y, delim uint64) uint64 {
	return (GEDelims(y, x, delim)) & delim
}

// EQDelims returns delimiter bits set where x_s == y_s. Both operands must
// have zero delimiter and padding bits.
//
// 2^tau - (x_s XOR y_s) keeps the delimiter bit exactly when the XOR is zero.
func EQDelims(x, y, delim uint64) uint64 {
	return (delim - (x ^ y)) & delim
}

// NEDelims returns delimiter bits set where x_s != y_s.
func NEDelims(x, y, delim uint64) uint64 {
	return (EQDelims(x, y, delim) ^ delim) & delim
}
