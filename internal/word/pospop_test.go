package word

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// csaRef is the scalar meaning of one carry-save step: per lane,
// sum + 2·carry must equal a + b + c.
func csaRef(c, a, b uint64) (sum, carry uint64) {
	sum = a ^ b ^ c
	carry = a&b | a&c | b&c
	return sum, carry
}

func TestPropCSAIsFullAdder(t *testing.T) {
	f := func(c, a, b uint64) bool {
		s, cy := CSA(c, a, b)
		rs, rcy := csaRef(c, a, b)
		return s == rs && cy == rcy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// feedBlocks streams ws through CSA8 in blocks of eight (zero-padding the
// trailing partial block) and returns the grand total of set bits.
func feedBlocks(ws []uint64) uint64 {
	var ones, twos, fours, total uint64
	var blk [8]uint64
	i := 0
	for ; i+8 <= len(ws); i += 8 {
		copy(blk[:], ws[i:i+8])
		var eights uint64
		ones, twos, fours, eights = CSA8(ones, twos, fours, &blk)
		total += uint64(bits.OnesCount64(eights)) << 3
	}
	if i < len(ws) {
		blk = [8]uint64{}
		copy(blk[:], ws[i:])
		var eights uint64
		ones, twos, fours, eights = CSA8(ones, twos, fours, &blk)
		total += uint64(bits.OnesCount64(eights)) << 3
	}
	return total + CSAFold(ones, twos, fours)
}

func TestCSA8CountsBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		// Random block lengths, including empty and partial trailing blocks.
		n := rng.Intn(45)
		ws := make([]uint64, n)
		var want uint64
		for i := range ws {
			ws[i] = rng.Uint64() >> uint(rng.Intn(64)) // vary density
			want += uint64(bits.OnesCount64(ws[i]))
		}
		if got := feedBlocks(ws); got != want {
			t.Fatalf("n=%d: CSA8 total %d, scalar %d", n, got, want)
		}
	}
}

func TestCSAFoldShiftFreeWeights(t *testing.T) {
	f := func(ones, twos, fours uint64) bool {
		want := uint64(bits.OnesCount64(ones)) +
			2*uint64(bits.OnesCount64(twos)) +
			4*uint64(bits.OnesCount64(fours))
		return CSAFold(ones, twos, fours) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestOnesCounterStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		var oc OnesCounter
		var want uint64
		n := rng.Intn(70) // odd lengths leave a pending word
		for i := 0; i < n; i++ {
			w := rng.Uint64() & (rng.Uint64() | rng.Uint64())
			want += uint64(bits.OnesCount64(w))
			oc.Feed(w)
			// Total must be exact mid-stream too, not only at the end.
			if i%7 == 3 && oc.Total() != want {
				t.Fatalf("mid-stream total %d, want %d", oc.Total(), want)
			}
		}
		if oc.Total() != want {
			t.Fatalf("n=%d: total %d, want %d", n, oc.Total(), want)
		}
	}
}

// TestPosPopAgainstReferences pins the carry-save counting path against
// both scalar references at once: random k-bit values are laid out as VBP
// bit planes (counted plane-wise through CSA8 and recombined by weight)
// and packed as tau-bit HBP fields (summed by InWordSum, whose odd
// field-count path exercises the peel), and both must equal the big.Int
// sum of the selected values.
func TestPosPopAgainstReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(MaxTau)
		nseg := 1 + rng.Intn(21) // odd counts leave partial CSA blocks
		nv := nseg * 64
		vals := make([]uint64, nv)
		sel := make([]bool, nv)
		want := new(big.Int)
		for i := range vals {
			vals[i] = rng.Uint64() & LowMask(k)
			sel[i] = rng.Intn(4) != 0
			if sel[i] {
				want.Add(want, new(big.Int).SetUint64(vals[i]))
			}
		}

		// VBP side: planes[p][seg], bit j of plane p = bit (k-1-p) of value.
		planes := make([][]uint64, k)
		for p := range planes {
			planes[p] = make([]uint64, nseg)
		}
		fws := make([]uint64, nseg)
		for i, v := range vals {
			if !sel[i] {
				continue
			}
			seg, j := i/64, uint(i%64)
			fws[seg] |= 1 << j
			for p := 0; p < k; p++ {
				planes[p][seg] |= (v >> uint(k-1-p) & 1) << j
			}
		}
		got := new(big.Int)
		masked := make([]uint64, nseg)
		for p := 0; p < k; p++ {
			for seg := range masked {
				masked[seg] = planes[p][seg] & fws[seg]
			}
			c := new(big.Int).SetUint64(feedBlocks(masked))
			got.Add(got, c.Lsh(c, uint(k-1-p)))
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("k=%d nseg=%d: CSA positional sum %v, big.Int %v", k, nseg, got, want)
		}

		// HBP side: pack the selected values into tau-bit fields and sum
		// word-wise with InWordSum (c odd about half the time → peel path).
		tau := k
		fpw := FieldsPerWord(tau)
		var hbpSum uint64
		var w uint64
		c := 0
		for i, v := range vals {
			if !sel[i] {
				continue
			}
			w = PutField(w, tau, c, v)
			c++
			if c == fpw {
				hbpSum += InWordSum(w, tau, c)
				w, c = 0, 0
			}
			_ = i
		}
		if c > 0 {
			hbpSum += InWordSum(w, tau, c)
		}
		// k ≤ 31 and nv ≤ 21·64 keep the packed-field sum inside uint64.
		if got.Cmp(new(big.Int).SetUint64(hbpSum)) != 0 {
			t.Fatalf("k=%d: CSA positional sum %v, InWordSum total %d", k, got, hbpSum)
		}
	}
}

// FuzzCSABlockCount cross-checks the carry-save block counter against
// plain popcounts on fuzz-chosen word streams.
func FuzzCSABlockCount(f *testing.F) {
	f.Add([]byte{0x01, 0xff, 0x00, 0x80}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, stride uint8) {
		// Decode a word stream from the raw bytes, 8 bytes per word,
		// repeated with a varying stride so lengths cross block borders.
		n := len(data)/8 + int(stride%19)
		ws := make([]uint64, n)
		var want uint64
		for i := range ws {
			var w uint64
			for j := 0; j < 8; j++ {
				idx := i*8 + j
				if idx < len(data) {
					w |= uint64(data[idx]) << uint(8*j)
				}
			}
			if i >= len(data)/8 {
				w = ^uint64(0) << uint((i+int(stride))%63)
			}
			ws[i] = w
			want += uint64(bits.OnesCount64(w))
		}
		if got := feedBlocks(ws); got != want {
			t.Fatalf("CSA total %d, scalar %d (n=%d)", got, want, n)
		}
		var oc OnesCounter
		for _, w := range ws {
			oc.Feed(w)
		}
		if got := oc.Total(); got != want {
			t.Fatalf("OnesCounter total %d, scalar %d (n=%d)", got, want, n)
		}
	})
}
