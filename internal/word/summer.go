package word

import "math/bits"

// Summer performs IN-WORD-SUM with the fold masks precomputed for a fixed
// (tau, c) shape. The aggregation inner loops call Sum once per data word,
// so the common path is kept small enough for the compiler to inline: four
// ALU operations and one multiplication.
type Summer struct {
	tau     int
	f       uint
	c       int    // even field count after peeling
	peelTau uint64 // LowMask(tau) when a bottom field must be peeled, else 0
	peelF   uint64 // LowMask(f) for the peeled field
	flush   uint   // left shift flushing fields against the MSB
	keep    uint64 // mask of pair-sum fields (odd MSB-indexed fields)
	mul     uint64 // multiplier accumulating pair sums into the top 2f bits
	fin     uint   // final right shift, W - 2f
	popcnt  bool   // tau == 1 degenerate mode
}

// NewSummer builds a Summer for c fields of tau value bits each.
// tau must be in [1, MaxTau] and c in [1, FieldsPerWord(tau)].
func NewSummer(tau, c int) Summer {
	s := Summer{tau: tau, f: uint(tau + 1), c: c}
	if tau == 1 {
		s.popcnt = true
		return s
	}
	f := tau + 1
	end := c * f
	if c&1 == 1 {
		s.peelTau = LowMask(tau)
		s.peelF = LowMask(f)
		s.c--
	}
	s.flush = uint(W - end)
	p := s.c / 2
	for j := 0; j < p; j++ {
		s.keep |= LowMask(f) << uint(W-2*f*(j+1))
	}
	for i := 0; i < p; i++ {
		s.mul |= 1 << uint(2*f*i)
	}
	s.fin = uint(W - 2*f)
	return s
}

// Sum returns the sum of the packed tau-bit fields of w. The contract on w
// matches InWordSum: delimiter and padding bits zero. The even-field-count,
// tau >= 2 fast path is branch-light and inlinable; degenerate shapes
// divert to sumSlow.
func (s Summer) Sum(w uint64) uint64 {
	if s.popcnt || s.peelTau != 0 {
		return s.sumSlow(w)
	}
	x := w << s.flush
	x += x >> s.f
	x &= s.keep
	return (x * s.mul) >> s.fin
}

// Fast reports whether the shape takes the branch-free fold path (every
// shape except the tau == 1 POPCNT degenerate). Hot loops may then hoist
// Consts/PeelMasks and apply the operations inline.
func (s Summer) Fast() bool { return !s.popcnt }

// Consts returns the fold constants: for a Fast shape,
// Sum(w) = fold(w &^ peelF) + (w & peelTau) where
// fold(x) = ((((x<<flush)+((x<<flush)>>f))&keep)*mul)>>fin.
// The peel masks (PeelMasks) are zero for even field counts, so callers
// apply them unconditionally.
func (s Summer) Consts() (flush, f, fin uint, keep, mul uint64) {
	return s.flush, s.f, s.fin, s.keep, s.mul
}

// PeelMasks returns the odd-field-count peel masks — both zero for even
// shapes.
func (s Summer) PeelMasks() (peelValue, peelField uint64) {
	return s.peelTau, s.peelF
}

// sumSlow handles tau == 1 (POPCNT degenerate) and odd field counts (peel
// the bottom field, fold the rest).
func (s Summer) sumSlow(w uint64) uint64 {
	if s.popcnt {
		return uint64(bits.OnesCount64(w))
	}
	extra := w & s.peelTau
	w &^= s.peelF
	if s.c == 0 {
		return extra
	}
	x := w << s.flush
	x += x >> s.f
	x &= s.keep
	return (x*s.mul)>>s.fin + extra
}
