package word

import (
	"math/rand"
	"testing"
)

func transposeRef(m [64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if m[i]>>uint(j)&1 == 1 {
				out[j] |= 1 << uint(i)
			}
		}
	}
	return out
}

func TestTranspose64AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		want := transposeRef(m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	var m [64]uint64
	for i := range m {
		m[i] = rng.Uint64()
	}
	twice := m
	Transpose64(&twice)
	Transpose64(&twice)
	if twice != m {
		t.Fatal("transpose twice is not the identity")
	}
}

func TestTranspose64Identity(t *testing.T) {
	// The identity matrix is its own transpose.
	var m [64]uint64
	for i := range m {
		m[i] = 1 << uint(i)
	}
	got := m
	Transpose64(&got)
	if got != m {
		t.Fatal("identity matrix changed under transpose")
	}
	// A single row becomes a single column.
	var row [64]uint64
	row[5] = ^uint64(0)
	Transpose64(&row)
	for i := range row {
		if row[i] != 1<<5 {
			t.Fatalf("row->column failed at %d: %#x", i, row[i])
		}
	}
}

func BenchmarkTranspose64(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	var m [64]uint64
	for i := range m {
		m[i] = rng.Uint64()
	}
	for i := 0; i < b.N; i++ {
		Transpose64(&m)
	}
}
