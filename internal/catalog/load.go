package catalog

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"bpagg"
)

// Catalog is a typed view over a packed table: the schema, the table, and
// the per-column dictionaries. When Sharded is non-nil the catalog is
// backed by a partitioned store and the SQL layer routes execution
// through it (shard-catalog pruning, parallel fan-out); Table may then be
// nil — every binding and formatting helper consults only Specs and the
// dictionaries.
type Catalog struct {
	Specs   []Spec
	Table   *bpagg.Table
	Sharded *bpagg.ShardedTable
	dicts   map[string]*bpagg.Dict
}

// Shard converts the catalog to sharded execution: the flat table is
// split into shards of shardRows rows each and dropped, so queries route
// through the partitioned store from then on.
func (c *Catalog) Shard(shardRows int) {
	if c.Sharded != nil || c.Table == nil {
		return
	}
	c.Sharded = bpagg.ShardTable(c.Table, shardRows)
	c.Table = nil
}

// Rows reports the row count of whichever store backs the catalog.
func (c *Catalog) Rows() int {
	if c.Sharded != nil {
		return c.Sharded.Rows()
	}
	return c.Table.Rows()
}

// Spec returns the named column's spec, or nil.
func (c *Catalog) Spec(name string) *Spec {
	for i := range c.Specs {
		if c.Specs[i].Name == name {
			return &c.Specs[i]
		}
	}
	return nil
}

// LoadCSV reads CSV with a header row into a new catalog. The header must
// contain every schema column (extra CSV columns are ignored). Empty cells
// load as NULL. String dictionaries are collected in a first pass, so the
// whole file is buffered; wide-table loads are one-time costs in this
// design (§III).
func LoadCSV(r io.Reader, specs []Spec) (*Catalog, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("catalog: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("catalog: CSV has no header row")
	}
	header := records[0]
	rows := records[1:]

	colIdx := make([]int, len(specs))
	for i, sp := range specs {
		colIdx[i] = -1
		for j, h := range header {
			if strings.TrimSpace(h) == sp.Name {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] == -1 {
			return nil, fmt.Errorf("catalog: CSV header missing column %q", sp.Name)
		}
	}

	// First pass: collect dictionary keys for string columns.
	cat := &Catalog{Specs: append([]Spec(nil), specs...), dicts: map[string]*bpagg.Dict{}}
	for i := range cat.Specs {
		sp := &cat.Specs[i]
		if sp.Kind != String {
			continue
		}
		seen := map[string]bool{}
		for _, rec := range rows {
			cell := rec[colIdx[i]]
			if cell == "" || seen[cell] {
				continue
			}
			seen[cell] = true
			sp.Keys = append(sp.Keys, cell)
		}
		sortKeys(sp)
	}
	cat.buildDicts()

	// Second pass: build standalone columns (NULLs go through AppendNull),
	// then assemble the table.
	names := make([]string, len(cat.Specs))
	cols := make([]*bpagg.Column, len(cat.Specs))
	for i := range cat.Specs {
		sp := &cat.Specs[i]
		names[i] = sp.Name
		cols[i] = bpagg.NewColumn(sp.Layout, sp.bits())
	}
	for rowNum, rec := range rows {
		for i := range cat.Specs {
			sp := &cat.Specs[i]
			cell := rec[colIdx[i]]
			if cell == "" {
				cols[i].AppendNull()
				continue
			}
			code, err := cat.encodeCell(sp, cell)
			if err != nil {
				return nil, fmt.Errorf("catalog: row %d column %q: %w", rowNum+2, sp.Name, err)
			}
			cols[i].Append(code)
		}
	}
	cat.Table = bpagg.NewTableFromColumns(names, cols)
	return cat, nil
}

func (c *Catalog) buildDicts() {
	for i := range c.Specs {
		sp := &c.Specs[i]
		if sp.Kind != String {
			continue
		}
		d := bpagg.NewDict()
		for _, k := range sp.Keys {
			d.Add(k)
		}
		d.Freeze()
		c.dicts[sp.Name] = d
	}
}

func sortKeys(sp *Spec) {
	sort.Strings(sp.Keys)
}

// encodeCell parses one CSV cell into the column's code.
func (c *Catalog) encodeCell(sp *Spec, cell string) (uint64, error) {
	switch sp.Kind {
	case Uint:
		v, err := strconv.ParseUint(strings.TrimSpace(cell), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad unsigned integer %q", cell)
		}
		if v > sp.maxCode() {
			return 0, fmt.Errorf("value %d exceeds %d bits", v, sp.Bits)
		}
		return v, nil
	case Decimal:
		v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		if err != nil {
			return 0, fmt.Errorf("bad decimal %q", cell)
		}
		if v < 0 || v > sp.Max {
			return 0, fmt.Errorf("decimal %v outside [0, %v]", v, sp.Max)
		}
		return bpagg.Decimal{Scale: sp.Scale, Max: sp.Max}.Encode(v), nil
	case Int:
		v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", cell)
		}
		if v < sp.MinInt || v > sp.MaxInt {
			return 0, fmt.Errorf("integer %d outside [%d, %d]", v, sp.MinInt, sp.MaxInt)
		}
		return bpagg.Signed{Min: sp.MinInt, Max: sp.MaxInt}.Encode(v), nil
	case String:
		code, ok := c.dicts[sp.Name].Encode(cell)
		if !ok {
			return 0, fmt.Errorf("string %q not in dictionary", cell)
		}
		return code, nil
	}
	return 0, fmt.Errorf("unknown kind")
}

// persistHeader is the JSON schema header of the catalog stream.
type persistHeader struct {
	Version int    `json:"version"`
	Specs   []Spec `json:"specs"`
}

// WriteTo persists schema and data to one stream. A flat catalog writes
// the seed-era version-1 framing unchanged; a sharded catalog writes
// version 2 with the sharded container in place of the table stream, so
// old readers reject it cleanly instead of misparsing.
func (c *Catalog) WriteTo(w io.Writer) (int64, error) {
	version := 1
	if c.Sharded != nil {
		version = 2
	}
	hdr, err := json.Marshal(persistHeader{Version: version, Specs: c.Specs})
	if err != nil {
		return 0, err
	}
	var n int64
	lenBuf := []byte(fmt.Sprintf("%12d\n", len(hdr)))
	m, err := w.Write(lenBuf)
	n += int64(m)
	if err != nil {
		return n, err
	}
	m, err = w.Write(hdr)
	n += int64(m)
	if err != nil {
		return n, err
	}
	if c.Sharded != nil {
		tn, err := c.Sharded.WriteTo(w)
		return n + tn, err
	}
	tn, err := c.Table.WriteTo(w)
	return n + tn, err
}

// Read restores a catalog persisted by WriteTo.
func Read(r io.Reader) (*Catalog, error) {
	lenBuf := make([]byte, 13)
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return nil, fmt.Errorf("catalog: reading header length: %w", err)
	}
	hlen, err := strconv.Atoi(strings.TrimSpace(string(lenBuf[:12])))
	if err != nil || hlen <= 0 || hlen > 1<<24 {
		return nil, fmt.Errorf("catalog: bad header length %q", lenBuf)
	}
	hdrBuf := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdrBuf); err != nil {
		return nil, fmt.Errorf("catalog: reading header: %w", err)
	}
	var hdr persistHeader
	if err := json.Unmarshal(hdrBuf, &hdr); err != nil {
		return nil, fmt.Errorf("catalog: decoding header: %w", err)
	}
	switch hdr.Version {
	case 1:
		tbl, err := bpagg.ReadTable(r)
		if err != nil {
			return nil, err
		}
		cat := &Catalog{Specs: hdr.Specs, Table: tbl, dicts: map[string]*bpagg.Dict{}}
		for _, sp := range cat.Specs {
			if tbl.Column(sp.Name) == nil {
				return nil, fmt.Errorf("catalog: schema column %q missing from table", sp.Name)
			}
		}
		cat.buildDicts()
		return cat, nil
	case 2:
		st, err := bpagg.ReadShardedTable(r)
		if err != nil {
			return nil, err
		}
		have := map[string]bool{}
		for _, name := range st.Columns() {
			have[name] = true
		}
		cat := &Catalog{Specs: hdr.Specs, Sharded: st, dicts: map[string]*bpagg.Dict{}}
		for _, sp := range cat.Specs {
			if !have[sp.Name] {
				return nil, fmt.Errorf("catalog: schema column %q missing from table", sp.Name)
			}
		}
		cat.buildDicts()
		return cat, nil
	default:
		return nil, fmt.Errorf("catalog: unsupported version %d", hdr.Version)
	}
}

// --- Literal binding -------------------------------------------------------

// CodeRange is a numeric literal translated into code space: the greatest
// code <= the literal (Floor) and the least code >= it (Ceil). Exact means
// the literal is itself a code. Below/Above flag literals outside the
// column's domain.
type CodeRange struct {
	Floor, Ceil  uint64
	Exact        bool
	Below, Above bool
}

// NumToCode translates a numeric literal for comparisons on the column.
func (c *Catalog) NumToCode(col string, v float64) (CodeRange, error) {
	sp := c.Spec(col)
	if sp == nil {
		return CodeRange{}, fmt.Errorf("catalog: unknown column %q", col)
	}
	var scaled float64
	switch sp.Kind {
	case Uint:
		scaled = v
	case Decimal:
		scaled = v * math.Pow10(sp.Scale)
	case Int:
		scaled = v - float64(sp.MinInt)
	case String:
		return CodeRange{}, fmt.Errorf("catalog: numeric literal on string column %q", col)
	}
	max := sp.maxCode()
	if scaled < 0 {
		return CodeRange{Below: true}, nil
	}
	if scaled > float64(max) {
		return CodeRange{Above: true}, nil
	}
	fl := math.Floor(scaled)
	ce := math.Ceil(scaled)
	return CodeRange{
		Floor: uint64(fl),
		Ceil:  uint64(ce),
		Exact: fl == ce,
	}, nil
}

// StrToCode translates a string literal; ok is false for keys absent from
// the dictionary (which match nothing).
func (c *Catalog) StrToCode(col, s string) (code uint64, ok bool, err error) {
	sp := c.Spec(col)
	if sp == nil {
		return 0, false, fmt.Errorf("catalog: unknown column %q", col)
	}
	if sp.Kind != String {
		return 0, false, fmt.Errorf("catalog: string literal on %s column %q", sp.Kind, col)
	}
	code, ok = c.dicts[col].Encode(s)
	return code, ok, nil
}

// MaxCode returns the column's largest valid code (for all-non-null scans).
func (c *Catalog) MaxCode(col string) (uint64, error) {
	sp := c.Spec(col)
	if sp == nil {
		return 0, fmt.Errorf("catalog: unknown column %q", col)
	}
	return sp.maxCode(), nil
}

// --- Result formatting ------------------------------------------------------

// FormatValue renders a single code in the column's domain.
func (c *Catalog) FormatValue(col string, code uint64) string {
	sp := c.Spec(col)
	switch sp.Kind {
	case Uint:
		return strconv.FormatUint(code, 10)
	case Decimal:
		return strconv.FormatFloat(
			bpagg.Decimal{Scale: sp.Scale, Max: sp.Max}.Decode(code), 'f', sp.Scale, 64)
	case Int:
		return strconv.FormatInt(bpagg.Signed{Min: sp.MinInt, Max: sp.MaxInt}.Decode(code), 10)
	case String:
		return c.dicts[col].Decode(code)
	}
	return "?"
}

// FormatSum renders an aggregated sum of n codes in the column's domain.
func (c *Catalog) FormatSum(col string, sum uint64, n uint64) string {
	sp := c.Spec(col)
	switch sp.Kind {
	case Uint:
		return strconv.FormatUint(sum, 10)
	case Decimal:
		return strconv.FormatFloat(
			bpagg.Decimal{Scale: sp.Scale, Max: sp.Max}.DecodeSum(sum), 'f', sp.Scale, 64)
	case Int:
		return strconv.FormatInt(
			bpagg.Signed{Min: sp.MinInt, Max: sp.MaxInt}.DecodeSum(sum, n), 10)
	case String:
		return "(sum of strings)"
	}
	return "?"
}

// FormatAvg renders the mean given the code sum and count.
func (c *Catalog) FormatAvg(col string, sum uint64, n uint64) string {
	if n == 0 {
		return "NULL"
	}
	sp := c.Spec(col)
	switch sp.Kind {
	case Uint:
		return formatFloat(float64(sum) / float64(n))
	case Decimal:
		return formatFloat(bpagg.Decimal{Scale: sp.Scale, Max: sp.Max}.DecodeSum(sum) / float64(n))
	case Int:
		s := bpagg.Signed{Min: sp.MinInt, Max: sp.MaxInt}.DecodeSum(sum, n)
		return formatFloat(float64(s) / float64(n))
	case String:
		return "(avg of strings)"
	}
	return "?"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// Summable reports whether SUM/AVG make sense on the column.
func (c *Catalog) Summable(col string) bool {
	sp := c.Spec(col)
	return sp != nil && sp.Kind != String
}
