package catalog

import (
	"bytes"
	"strings"
	"testing"

	"bpagg"
)

const ordersSchema = "price:decimal(2,105000):vbp, qty:uint(6):hbp, delta:int(-100,100), region:string"

const ordersCSV = `region,price,qty,delta,ignored
EU,10.50,5,-20,x
US,99.99,24,0,y
EU,0.01,1,100,z
APAC,50000.00,50,-100,w
US,,3,,v
`

func TestParseSchema(t *testing.T) {
	specs, err := ParseSchema(ordersSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Kind != Decimal || specs[0].Scale != 2 || specs[0].Max != 105000 ||
		specs[0].Layout != bpagg.VBP {
		t.Errorf("price spec = %+v", specs[0])
	}
	if specs[1].Kind != Uint || specs[1].Bits != 6 || specs[1].Layout != bpagg.HBP {
		t.Errorf("qty spec = %+v", specs[1])
	}
	if specs[2].Kind != Int || specs[2].MinInt != -100 || specs[2].MaxInt != 100 {
		t.Errorf("delta spec = %+v", specs[2])
	}
	if specs[3].Kind != String {
		t.Errorf("region spec = %+v", specs[3])
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"",
		"x",
		"x:frob(1)",
		"x:uint",
		"x:uint(0)",
		"x:uint(65)",
		"x:uint(8):mid",
		"x:decimal(2)",
		"x:decimal(-1,10)",
		"x:decimal(2,0)",
		"x:int(5,5)",
		"x:int(a,b)",
		"x:string(4)",
		"x:uint(8),x:uint(8)",
		"x:uint(8:vbp",
		":uint(8)",
	}
	for _, s := range cases {
		if _, err := ParseSchema(s); err == nil {
			t.Errorf("ParseSchema(%q) succeeded, want error", s)
		}
	}
}

func loadOrders(t *testing.T) *Catalog {
	t.Helper()
	specs, err := ParseSchema(ordersSchema)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := LoadCSV(strings.NewReader(ordersCSV), specs)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestLoadCSV(t *testing.T) {
	cat := loadOrders(t)
	if cat.Table.Rows() != 5 {
		t.Fatalf("rows = %d", cat.Table.Rows())
	}
	price := cat.Table.Column("price")
	if price.NullCount() != 1 || !price.IsNull(4) {
		t.Errorf("price nulls = %d", price.NullCount())
	}
	if got := cat.FormatValue("price", price.Value(0)); got != "10.50" {
		t.Errorf("price[0] = %q", got)
	}
	region := cat.Table.Column("region")
	if got := cat.FormatValue("region", region.Value(3)); got != "APAC" {
		t.Errorf("region[3] = %q", got)
	}
	delta := cat.Table.Column("delta")
	if got := cat.FormatValue("delta", delta.Value(0)); got != "-20" {
		t.Errorf("delta[0] = %q", got)
	}
	// Sorted dictionary: APAC < EU < US.
	if sp := cat.Spec("region"); len(sp.Keys) != 3 || sp.Keys[0] != "APAC" || sp.Keys[2] != "US" {
		t.Errorf("region keys = %v", cat.Spec("region").Keys)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	specs, _ := ParseSchema("a:uint(4)")
	cases := []string{
		"",         // no header
		"b\n1\n",   // missing column
		"a\nxyz\n", // bad number
		"a\n99\n",  // overflows 4 bits
	}
	for _, csvText := range cases {
		if _, err := LoadCSV(strings.NewReader(csvText), specs); err == nil {
			t.Errorf("LoadCSV(%q) succeeded, want error", csvText)
		}
	}
	dec, _ := ParseSchema("d:decimal(2,10)")
	if _, err := LoadCSV(strings.NewReader("d\n10.01\n"), dec); err == nil {
		t.Error("decimal above max accepted")
	}
	in, _ := ParseSchema("i:int(0,5)")
	if _, err := LoadCSV(strings.NewReader("i\n-1\n"), in); err == nil {
		t.Error("int below min accepted")
	}
}

func TestCatalogPersistRoundTrip(t *testing.T) {
	cat := loadOrders(t)
	var buf bytes.Buffer
	if _, err := cat.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Rows() != 5 {
		t.Fatalf("rows after restore = %d", got.Table.Rows())
	}
	// Dictionary survives: region decode works.
	region := got.Table.Column("region")
	if v := got.FormatValue("region", region.Value(0)); v != "EU" {
		t.Errorf("region[0] after restore = %q", v)
	}
	// Aggregates match.
	wantSum := cat.Table.Query().Sum("qty")
	if gotSum := got.Table.Query().Sum("qty"); gotSum != wantSum {
		t.Errorf("qty sum after restore = %d, want %d", gotSum, wantSum)
	}
	// NULLs survive.
	if got.Table.Column("price").NullCount() != 1 {
		t.Error("price null lost in round trip")
	}
}

func TestCatalogReadRejectsGarbage(t *testing.T) {
	for _, data := range []string{"", "garbage", "          12\nnot json....."} {
		if _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", data)
		}
	}
}

func TestNumToCode(t *testing.T) {
	cat := loadOrders(t)
	// price is decimal(2): 10.005 sits between codes 1000 and 1001.
	cr, err := cat.NumToCode("price", 10.005)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Exact || cr.Floor != 1000 || cr.Ceil != 1001 || cr.Below || cr.Above {
		t.Errorf("price 10.005 -> %+v", cr)
	}
	cr, _ = cat.NumToCode("price", 10.50)
	if !cr.Exact || cr.Floor != 1050 {
		t.Errorf("price 10.50 -> %+v", cr)
	}
	cr, _ = cat.NumToCode("price", -1)
	if !cr.Below {
		t.Errorf("price -1 -> %+v", cr)
	}
	cr, _ = cat.NumToCode("price", 1e12)
	if !cr.Above {
		t.Errorf("price 1e12 -> %+v", cr)
	}
	// delta is int(-100,100): -20 maps to code 80.
	cr, _ = cat.NumToCode("delta", -20)
	if !cr.Exact || cr.Floor != 80 {
		t.Errorf("delta -20 -> %+v", cr)
	}
	if _, err := cat.NumToCode("region", 5); err == nil {
		t.Error("numeric literal on string column accepted")
	}
	if _, err := cat.NumToCode("nope", 5); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestStrToCode(t *testing.T) {
	cat := loadOrders(t)
	code, ok, err := cat.StrToCode("region", "EU")
	if err != nil || !ok {
		t.Fatalf("EU: %v %v", ok, err)
	}
	if got := cat.FormatValue("region", code); got != "EU" {
		t.Errorf("EU code round trip = %q", got)
	}
	if _, ok, _ := cat.StrToCode("region", "MARS"); ok {
		t.Error("unknown key reported ok")
	}
	if _, _, err := cat.StrToCode("qty", "x"); err == nil {
		t.Error("string literal on uint column accepted")
	}
}

func TestFormatters(t *testing.T) {
	cat := loadOrders(t)
	if got := cat.FormatSum("price", 1050+9999, 2); got != "110.49" {
		t.Errorf("FormatSum price = %q", got)
	}
	if got := cat.FormatSum("qty", 29, 2); got != "29" {
		t.Errorf("FormatSum qty = %q", got)
	}
	// delta codes 80 (-20) and 100 (0): sum decodes to -20.
	if got := cat.FormatSum("delta", 180, 2); got != "-20" {
		t.Errorf("FormatSum delta = %q", got)
	}
	if got := cat.FormatAvg("qty", 29, 2); got != "14.5000" {
		t.Errorf("FormatAvg qty = %q", got)
	}
	if got := cat.FormatAvg("qty", 0, 0); got != "NULL" {
		t.Errorf("FormatAvg empty = %q", got)
	}
	if !cat.Summable("price") || cat.Summable("region") {
		t.Error("Summable wrong")
	}
}
