// Package catalog binds typed schemas to bpagg tables: it parses schema
// specifications, loads CSV data into packed columns through the
// order-preserving codecs, persists table+schema to one stream, and
// translates query literals into code space with exact floor/ceil
// semantics (so `price < 10.005` on a cent-scaled column selects exactly
// the right rows even though 10.005 has no code).
package catalog

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bpagg"
)

// Kind is a column's logical type.
type Kind int

// Column kinds of the schema language.
const (
	// Uint is an unsigned integer of a fixed bit width: `uint(bits)`.
	Uint Kind = iota
	// Decimal is a non-negative fixed-point decimal: `decimal(scale,max)`.
	Decimal
	// Int is a signed integer range: `int(min,max)`.
	Int
	// String is a dictionary-encoded string: `string` (keys collected from
	// the data at load time).
	String
)

// String returns the schema spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Uint:
		return "uint"
	case Decimal:
		return "decimal"
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one column of a schema.
type Spec struct {
	Name   string
	Kind   Kind
	Layout bpagg.Layout
	// Uint
	Bits int
	// Decimal
	Scale int
	Max   float64
	// Int
	MinInt, MaxInt int64
	// String: dictionary keys, sorted (filled during CSV load or restore)
	Keys []string
}

// ParseSchema parses a comma-separated schema:
//
//	name:uint(bits)[:vbp|:hbp]
//	name:decimal(scale,max)[:layout]
//	name:int(min,max)[:layout]
//	name:string[:layout]
//
// The default layout is VBP.
func ParseSchema(s string) ([]Spec, error) {
	var specs []Spec
	seen := map[string]bool{}
	for _, field := range splitTopLevel(s, ',') {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("catalog: bad column spec %q (want name:type[:layout])", field)
		}
		sp := Spec{Name: strings.TrimSpace(parts[0]), Layout: bpagg.VBP}
		if sp.Name == "" {
			return nil, fmt.Errorf("catalog: empty column name in %q", field)
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("catalog: duplicate column %q", sp.Name)
		}
		seen[sp.Name] = true
		if err := parseType(&sp, strings.TrimSpace(parts[1])); err != nil {
			return nil, err
		}
		if len(parts) == 3 {
			switch strings.ToLower(strings.TrimSpace(parts[2])) {
			case "vbp":
				sp.Layout = bpagg.VBP
			case "hbp":
				sp.Layout = bpagg.HBP
			default:
				return nil, fmt.Errorf("catalog: unknown layout %q for column %q", parts[2], sp.Name)
			}
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("catalog: empty schema")
	}
	return specs, nil
}

func parseType(sp *Spec, t string) error {
	name, args, err := splitTypeArgs(t)
	if err != nil {
		return fmt.Errorf("catalog: column %q: %w", sp.Name, err)
	}
	switch strings.ToLower(name) {
	case "uint":
		if len(args) != 1 {
			return fmt.Errorf("catalog: column %q: uint takes (bits)", sp.Name)
		}
		bits, err := strconv.Atoi(args[0])
		if err != nil || bits < 1 || bits > 64 {
			return fmt.Errorf("catalog: column %q: bad bit width %q", sp.Name, args[0])
		}
		sp.Kind = Uint
		sp.Bits = bits
	case "decimal":
		if len(args) != 2 {
			return fmt.Errorf("catalog: column %q: decimal takes (scale,max)", sp.Name)
		}
		scale, err := strconv.Atoi(args[0])
		if err != nil || scale < 0 || scale > 18 {
			return fmt.Errorf("catalog: column %q: bad scale %q", sp.Name, args[0])
		}
		max, err := strconv.ParseFloat(args[1], 64)
		if err != nil || max <= 0 {
			return fmt.Errorf("catalog: column %q: bad max %q", sp.Name, args[1])
		}
		sp.Kind = Decimal
		sp.Scale = scale
		sp.Max = max
	case "int":
		if len(args) != 2 {
			return fmt.Errorf("catalog: column %q: int takes (min,max)", sp.Name)
		}
		lo, err1 := strconv.ParseInt(args[0], 10, 64)
		hi, err2 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil || err2 != nil || lo >= hi {
			return fmt.Errorf("catalog: column %q: bad int range (%q,%q)", sp.Name, args[0], args[1])
		}
		sp.Kind = Int
		sp.MinInt, sp.MaxInt = lo, hi
	case "string":
		if len(args) != 0 {
			return fmt.Errorf("catalog: column %q: string takes no arguments", sp.Name)
		}
		sp.Kind = String
	default:
		return fmt.Errorf("catalog: column %q: unknown type %q", sp.Name, name)
	}
	return nil
}

func splitTypeArgs(t string) (name string, args []string, err error) {
	open := strings.IndexByte(t, '(')
	if open < 0 {
		return t, nil, nil
	}
	if !strings.HasSuffix(t, ")") {
		return "", nil, fmt.Errorf("unbalanced parentheses in type %q", t)
	}
	name = t[:open]
	inner := t[open+1 : len(t)-1]
	if strings.TrimSpace(inner) == "" {
		return name, nil, nil
	}
	for _, a := range strings.Split(inner, ",") {
		args = append(args, strings.TrimSpace(a))
	}
	return name, args, nil
}

// splitTopLevel splits s on sep outside parentheses, so type arguments like
// decimal(2,105000) survive the column split.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// bits returns the packed width of the spec's code space.
func (sp *Spec) bits() int {
	switch sp.Kind {
	case Uint:
		return sp.Bits
	case Decimal:
		return bpagg.Decimal{Scale: sp.Scale, Max: sp.Max}.Bits()
	case Int:
		return bpagg.Signed{Min: sp.MinInt, Max: sp.MaxInt}.Bits()
	case String:
		n := len(sp.Keys)
		if n <= 1 {
			return 1
		}
		return bpagg.BitsFor(uint64(n - 1))
	}
	panic("catalog: unknown kind")
}

// maxCode returns the largest valid code of the column.
func (sp *Spec) maxCode() uint64 {
	switch sp.Kind {
	case Uint:
		if sp.Bits >= 64 {
			return math.MaxUint64
		}
		return 1<<uint(sp.Bits) - 1
	case Decimal:
		return bpagg.Decimal{Scale: sp.Scale, Max: sp.Max}.Encode(sp.Max)
	case Int:
		return uint64(sp.MaxInt - sp.MinInt)
	case String:
		if len(sp.Keys) == 0 {
			return 0
		}
		return uint64(len(sp.Keys) - 1)
	}
	panic("catalog: unknown kind")
}
