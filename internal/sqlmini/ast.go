package sqlmini

import (
	"fmt"
	"strings"
)

// AggFunc is an aggregate function name.
type AggFunc int

// Aggregate functions of the SELECT list.
const (
	CountStar AggFunc = iota
	Count
	Sum
	Avg
	Min
	Max
	Median
	Quantile
)

// String returns the SQL spelling.
func (f AggFunc) String() string {
	switch f {
	case CountStar:
		return "COUNT(*)"
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Median:
		return "MEDIAN"
	case Quantile:
		return "QUANTILE"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// SelectExpr is one aggregate of the SELECT list.
type SelectExpr struct {
	Func   AggFunc
	Column string  // empty for COUNT(*)
	Arg    float64 // QUANTILE's q
}

// Label renders the expression for result headers.
func (s SelectExpr) Label() string {
	switch s.Func {
	case CountStar:
		return "count(*)"
	case Quantile:
		return fmt.Sprintf("quantile(%s,%g)", s.Column, s.Arg)
	default:
		return fmt.Sprintf("%s(%s)", strings.ToLower(s.Func.String()), s.Column)
	}
}

// CmpOp is a predicate comparison operator.
type CmpOp int

// Predicate operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn
)

// String returns the SQL spelling of the operator (BETWEEN and IN render
// through Condition.String, which owns their literal layout).
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Literal is a constant of a predicate: either numeric or string.
type Literal struct {
	IsString bool
	Str      string
	Num      float64 // numeric literals parse as float64; binders narrow
	Neg      bool    // the literal carried a leading minus
}

// String renders the literal in SQL form.
func (l Literal) String() string {
	if l.IsString {
		return "'" + l.Str + "'"
	}
	return fmt.Sprintf("%g", l.Num)
}

// Condition is one conjunctive predicate: Column Op Lits.
// OpBetween uses Lits[0..1]; OpIn uses all of Lits; others use Lits[0].
type Condition struct {
	Column string
	Op     CmpOp
	Lits   []Literal
}

// String renders the condition in SQL form (used by EXPLAIN plans).
func (c Condition) String() string {
	switch c.Op {
	case OpBetween:
		if len(c.Lits) >= 2 {
			return fmt.Sprintf("%s BETWEEN %s AND %s", c.Column, c.Lits[0], c.Lits[1])
		}
	case OpIn:
		parts := make([]string, len(c.Lits))
		for i, l := range c.Lits {
			parts[i] = l.String()
		}
		return fmt.Sprintf("%s IN (%s)", c.Column, strings.Join(parts, ", "))
	default:
		if len(c.Lits) >= 1 {
			return fmt.Sprintf("%s %s %s", c.Column, c.Op, c.Lits[0])
		}
	}
	return fmt.Sprintf("%s %s ?", c.Column, c.Op)
}

// Query is a parsed aggregate query.
type Query struct {
	Selects []SelectExpr
	From    string // optional, informational only
	Where   []Condition
	GroupBy []string // empty when ungrouped; several columns form a composite key
	// Explain marks an EXPLAIN ANALYZE query: execute fully, but return
	// the per-stage plan with execution statistics instead of the rows.
	Explain bool
}
