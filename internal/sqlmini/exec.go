package sqlmini

import (
	"context"
	"fmt"

	"bpagg"
	"bpagg/internal/catalog"
)

// Result is an executed query: one row when ungrouped, one row per group
// otherwise. Cells are rendered in each column's domain (decimals with
// their scale, dictionary strings as text).
type Result struct {
	Headers []string
	Rows    [][]string
}

// ExecOptions forwards execution knobs to the aggregates.
type ExecOptions struct {
	Threads int
	Wide    bool
	// Auto lets each aggregate pick between the bit-parallel kernels and
	// the reconstruction baseline from the realized selectivity (the
	// paper's optimizer policy). Queries eligible for the fused
	// scan→aggregate pipeline fuse regardless — there is no realized
	// selectivity to consult before the scan — so Auto governs only
	// queries that run the bitmap path.
	Auto bool
	// Stats, when non-nil, receives execution statistics from every scan
	// and aggregate the query runs.
	Stats *bpagg.StatsCollector
}

func (o ExecOptions) opts() []bpagg.ExecOption {
	var out []bpagg.ExecOption
	if o.Threads > 1 {
		out = append(out, bpagg.Parallel(o.Threads))
	}
	if o.Wide {
		out = append(out, bpagg.WideWords())
	}
	if o.Auto {
		out = append(out, bpagg.Access(bpagg.Auto))
	}
	if o.Stats != nil {
		out = append(out, bpagg.CollectStats(o.Stats))
	}
	return out
}

// Execute runs a parsed query against a catalog.
func Execute(cat *catalog.Catalog, q *Query, o ExecOptions) (*Result, error) {
	return ExecuteContext(context.Background(), cat, q, o)
}

// ExecuteContext runs a parsed query against a catalog, honoring ctx:
// cancellation and deadlines propagate into the aggregation workers
// (checked between segment blocks and at every MEDIAN radix
// rendezvous), and the first context error aborts the query.
//
// This is a trust boundary for query text and programmatically built
// ASTs: malformed input — unknown columns, out-of-range quantiles —
// returns an error, never panics. As defense in depth, any panic that
// does escape the engine is recovered into an error here so one bad
// query cannot take down a serving process.
func ExecuteContext(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("sql: internal error executing query: %v", r)
		}
	}()
	if q.Explain {
		// EXPLAIN ANALYZE executes fully but returns the plan tree,
		// rendered one stage per row so the CLI and REPL print it with
		// the machinery they already have.
		ex, err := ExplainAnalyzeContext(ctx, cat, q, o)
		if err != nil {
			return nil, err
		}
		out := &Result{Headers: []string{"QUERY PLAN"}}
		for _, line := range ex.Lines(false) {
			out.Rows = append(out.Rows, []string{line})
		}
		return out, nil
	}
	if err := validateSelects(cat, q); err != nil {
		return nil, err
	}

	// Row-position routing: WHERE rownum BETWEEN peels off into a range
	// restriction (see rownum.go) before any predicate binding — rownum is
	// no catalog column, so every later stage sees only the rest.
	rng, rest, err := splitRownum(cat, q.Where)
	if err != nil {
		return nil, err
	}

	// Partitioned-store routing: a sharded catalog executes through the
	// shard fan-out (see sharded.go); the flat paths below assume
	// cat.Table and never run for it.
	if cat.Sharded != nil {
		return executeSharded(ctx, cat, q, o, rng, rest)
	}

	if rng != nil {
		return executeRange(ctx, cat, q, o, rng, rest)
	}

	if len(q.GroupBy) == 0 {
		// Fused path first: when every conjunct translates to a simple
		// predicate and every aggregate fuses, no filter bitmap is built
		// (see fused.go). Otherwise fall through to the bitmap executor.
		if row, ok, err := tryFusedRow(ctx, cat, q, o); err != nil {
			return nil, err
		} else if ok {
			return &Result{Headers: headers(q, false), Rows: [][]string{row}}, nil
		}
	} else {
		// Grouped twin: single-pass partition + banked aggregates when the
		// query qualifies (see group_fast.go). Otherwise fall through to
		// the per-group walk below.
		if rows, ok, err := tryGroupedRows(ctx, cat, q, o); err != nil {
			return nil, err
		} else if ok {
			return &Result{Headers: headers(q, true), Rows: rows}, nil
		}
	}

	sel, err := bindWhere(cat, q.Where, o.Stats)
	if err != nil {
		return nil, err
	}
	return executeBitmap(ctx, cat, q, sel, o)
}

// executeBitmap is the bitmap executor's tail — the ungrouped aggregate
// row or the per-group walk — against an already-bound selection. Both
// the plain path and the rownum-masked path (executeRange) end here.
func executeBitmap(ctx context.Context, cat *catalog.Catalog, q *Query, sel *bpagg.Bitmap, o ExecOptions) (*Result, error) {
	if len(q.GroupBy) == 0 {
		row, err := aggregateRow(ctx, cat, q.Selects, sel, o)
		if err != nil {
			return nil, err
		}
		return &Result{Headers: headers(q, false), Rows: [][]string{row}}, nil
	}

	gcols, err := groupCols(cat, q)
	if err != nil {
		return nil, err
	}
	grouped, err := groupSelections(ctx, gcols, sel, o.Stats)
	if err != nil {
		return nil, err
	}
	res := &Result{Headers: headers(q, true)}
	for _, g := range grouped {
		row, err := aggregateRow(ctx, cat, q.Selects, g.sel, o)
		if err != nil {
			return nil, err
		}
		cells := make([]string, 0, len(q.GroupBy)+len(row))
		for j, name := range q.GroupBy {
			cells = append(cells, cat.FormatValue(name, g.parts[j]))
		}
		res.Rows = append(res.Rows, append(cells, row...))
	}
	return res, nil
}

// groupCols resolves the GROUP BY column list against the catalog.
func groupCols(cat *catalog.Catalog, q *Query) ([]*bpagg.Column, error) {
	cols := make([]*bpagg.Column, len(q.GroupBy))
	for i, name := range q.GroupBy {
		if cat.Spec(name) == nil {
			return nil, badf("sql: unknown GROUP BY column %q", name)
		}
		cols[i] = cat.Table.Column(name)
	}
	return cols, nil
}

// validateSelects checks the select list against the schema. Quantile
// arguments are re-checked because a Query need not come from Parse.
func validateSelects(cat *catalog.Catalog, q *Query) error {
	for _, sel := range q.Selects {
		if sel.Func == CountStar {
			continue
		}
		if cat.Spec(sel.Column) == nil {
			return badf("sql: unknown column %q", sel.Column)
		}
		if (sel.Func == Sum || sel.Func == Avg) && !cat.Summable(sel.Column) {
			return badf("sql: %s over string column %q", sel.Func, sel.Column)
		}
		if sel.Func == Quantile && (sel.Arg < 0 || sel.Arg > 1 || sel.Arg != sel.Arg) {
			return badf("sql: quantile %g outside [0,1]", sel.Arg)
		}
	}
	return nil
}

func headers(q *Query, grouped bool) []string {
	var hs []string
	if grouped {
		hs = append(hs, q.GroupBy...)
	}
	for _, s := range q.Selects {
		hs = append(hs, s.Label())
	}
	return hs
}

type group struct {
	parts []uint64 // one code per GROUP BY column
	sel   *bpagg.Bitmap
}

// groupSelections walks the distinct keys bit-parallel (repeated MIN plus
// one equality scan per key) and intersects per-key equality with the
// filter. The key is the minimum of the residual, so removing its rows
// (AndNot of the equality bitmap) leaves exactly the strictly-greater
// residual the next step needs — one scan per group, not two. Composite
// keys nest one walk per column: each discovered value refines its
// parent's selection before recursing, so groups come out in ascending
// composite order and rows NULL in any grouping column drop out. A
// canceled ctx stops the walk after the current key. A non-nil rec
// collects the walk's scan and MIN statistics.
func groupSelections(ctx context.Context, gcols []*bpagg.Column, sel *bpagg.Bitmap, rec *bpagg.StatsCollector) ([]group, error) {
	var gopts []bpagg.ExecOption
	if rec != nil {
		gopts = append(gopts, bpagg.CollectStats(rec))
	}
	var out []group
	var walk func(sel *bpagg.Bitmap, depth int, prefix []uint64) error
	walk = func(sel *bpagg.Bitmap, depth int, prefix []uint64) error {
		gcol := gcols[depth]
		rest := sel.Clone()
		for {
			v, ok, err := gcol.MinContext(ctx, rest, gopts...)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			eq := gcol.ScanStats(bpagg.Equal(v), rec)
			sub := sel.Clone().And(eq)
			parts := append(append([]uint64(nil), prefix...), v)
			if depth == len(gcols)-1 {
				out = append(out, group{parts: parts, sel: sub})
			} else if err := walk(sub, depth+1, parts); err != nil {
				return err
			}
			rest.AndNot(eq)
		}
	}
	if err := walk(sel, 0, nil); err != nil {
		return nil, err
	}
	return out, nil
}

func aggregateRow(ctx context.Context, cat *catalog.Catalog, sels []SelectExpr, sel *bpagg.Bitmap, o ExecOptions) ([]string, error) {
	row := make([]string, len(sels))
	for i, s := range sels {
		cell, err := computeCell(ctx, cat, s, sel, o)
		if err != nil {
			return nil, err
		}
		row[i] = cell
	}
	return row, nil
}

// computeCell evaluates one SELECT expression against a selection and
// renders the result cell. It is the per-aggregate unit both the
// per-query path (aggregateRow) and the shared-scan batch executor
// (ExecuteShared) call — the latter memoizes cells so N queries asking
// the same aggregate over the same selection pay for it once.
func computeCell(ctx context.Context, cat *catalog.Catalog, s SelectExpr, sel *bpagg.Bitmap, o ExecOptions) (string, error) {
	if s.Func == CountStar {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		return fmt.Sprintf("%d", sel.Count()), nil
	}
	opts := o.opts()
	col := cat.Table.Column(s.Column)
	switch s.Func {
	case Count:
		cnt, err := col.CountContext(ctx, sel)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d", cnt), nil
	case Sum:
		sum, err := col.SumContext(ctx, sel, opts...)
		if err != nil {
			return "", err
		}
		return cat.FormatSum(s.Column, sum, col.Count(sel)), nil
	case Avg:
		sum, err := col.SumContext(ctx, sel, opts...)
		if err != nil {
			return "", err
		}
		return cat.FormatAvg(s.Column, sum, col.Count(sel)), nil
	case Min:
		v, ok, err := col.MinContext(ctx, sel, opts...)
		if err != nil {
			return "", err
		}
		return formatOpt(cat, s.Column, v, ok), nil
	case Max:
		v, ok, err := col.MaxContext(ctx, sel, opts...)
		if err != nil {
			return "", err
		}
		return formatOpt(cat, s.Column, v, ok), nil
	case Median:
		v, ok, err := col.MedianContext(ctx, sel, opts...)
		if err != nil {
			return "", err
		}
		return formatOpt(cat, s.Column, v, ok), nil
	case Quantile:
		v, ok, err := col.QuantileContext(ctx, sel, s.Arg, opts...)
		if err != nil {
			return "", err
		}
		return formatOpt(cat, s.Column, v, ok), nil
	default:
		return "", badf("sql: unsupported aggregate %v", s.Func)
	}
}

func formatOpt(cat *catalog.Catalog, col string, code uint64, ok bool) string {
	if !ok {
		return "NULL"
	}
	return cat.FormatValue(col, code)
}

// bindWhere turns the conjunctive predicate list into one selection bitmap,
// translating literals into code space with floor/ceil semantics so
// unrepresentable constants (10.005 on a cent-scaled column, out-of-range
// values) select exactly the right rows.
func bindWhere(cat *catalog.Catalog, conds []Condition, rec *bpagg.StatsCollector) (*bpagg.Bitmap, error) {
	tbl := cat.Table
	if len(conds) == 0 {
		first := tbl.Column(tbl.Columns()[0])
		return first.All(), nil
	}
	var sel *bpagg.Bitmap
	for _, cond := range conds {
		m, err := bindCondition(cat, cond, rec)
		if err != nil {
			return nil, err
		}
		if sel == nil {
			sel = m
		} else {
			sel.And(m)
		}
	}
	return sel, nil
}

func bindCondition(cat *catalog.Catalog, cond Condition, rec *bpagg.StatsCollector) (*bpagg.Bitmap, error) {
	col := cat.Table.Column(cond.Column)
	if col == nil {
		return nil, badf("sql: unknown column %q", cond.Column)
	}
	switch cond.Op {
	case OpBetween:
		lo, err := bindOne(cat, col, Condition{Column: cond.Column, Op: OpGe, Lits: cond.Lits[:1]}, rec)
		if err != nil {
			return nil, err
		}
		hi, err := bindOne(cat, col, Condition{Column: cond.Column, Op: OpLe, Lits: cond.Lits[1:2]}, rec)
		if err != nil {
			return nil, err
		}
		return lo.And(hi), nil
	case OpIn:
		out := col.None()
		for _, lit := range cond.Lits {
			m, err := bindOne(cat, col, Condition{Column: cond.Column, Op: OpEq, Lits: []Literal{lit}}, rec)
			if err != nil {
				return nil, err
			}
			out.Or(m)
		}
		return out, nil
	default:
		return bindOne(cat, col, cond, rec)
	}
}

// bindOne binds a single-literal comparison.
func bindOne(cat *catalog.Catalog, col *bpagg.Column, cond Condition, rec *bpagg.StatsCollector) (*bpagg.Bitmap, error) {
	lit := cond.Lits[0]
	if lit.IsString {
		code, ok, err := cat.StrToCode(cond.Column, lit.Str)
		if err != nil {
			return nil, badQuery(err)
		}
		switch cond.Op {
		case OpEq:
			if !ok {
				return col.None(), nil
			}
			return col.ScanStats(bpagg.Equal(code), rec), nil
		case OpNe:
			if !ok {
				return allNonNull(cat, col, cond.Column, rec)
			}
			return col.ScanStats(bpagg.NotEqual(code), rec), nil
		default:
			return nil, badf("sql: only = and != apply to string column %q", cond.Column)
		}
	}

	cr, err := cat.NumToCode(cond.Column, lit.Num)
	if err != nil {
		return nil, badQuery(err)
	}
	all := func() (*bpagg.Bitmap, error) { return allNonNull(cat, col, cond.Column, rec) }
	none := func() (*bpagg.Bitmap, error) { return col.None(), nil }
	switch cond.Op {
	case OpEq:
		if cr.Below || cr.Above || !cr.Exact {
			return none()
		}
		return col.ScanStats(bpagg.Equal(cr.Floor), rec), nil
	case OpNe:
		if cr.Below || cr.Above || !cr.Exact {
			return all()
		}
		return col.ScanStats(bpagg.NotEqual(cr.Floor), rec), nil
	case OpLt:
		if cr.Below {
			return none()
		}
		if cr.Above {
			return all()
		}
		// v < L <=> code < ceil(L) when L is not a code, code < L otherwise.
		return col.ScanStats(bpagg.Less(cr.Ceil), rec), nil
	case OpLe:
		if cr.Below {
			return none()
		}
		if cr.Above {
			return all()
		}
		return col.ScanStats(bpagg.LessEq(cr.Floor), rec), nil
	case OpGt:
		if cr.Above {
			return none()
		}
		if cr.Below {
			return all()
		}
		return col.ScanStats(bpagg.Greater(cr.Floor), rec), nil
	case OpGe:
		if cr.Above {
			return none()
		}
		if cr.Below {
			return all()
		}
		return col.ScanStats(bpagg.GreaterEq(cr.Ceil), rec), nil
	}
	return nil, badf("sql: unsupported operator %d", int(cond.Op))
}

// allNonNull selects every non-NULL row of the column.
func allNonNull(cat *catalog.Catalog, col *bpagg.Column, name string, rec *bpagg.StatsCollector) (*bpagg.Bitmap, error) {
	max, err := cat.MaxCode(name)
	if err != nil {
		return nil, badQuery(err)
	}
	return col.ScanStats(bpagg.LessEq(max), rec), nil
}
