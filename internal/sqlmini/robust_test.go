package sqlmini

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// Regression tests for the hardened executor: malformed queries return
// errors from Exec — never a panic — and ctx cancellation propagates.

// execDontPanic parses (when the text parses) and executes, converting
// any panic into a test failure.
func execDontPanic(t *testing.T, sql string) error {
	t.Helper()
	cat := loadSales(t)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("query %q panicked: %v", sql, r)
		}
	}()
	q, err := Parse(sql)
	if err != nil {
		return err
	}
	_, err = Execute(cat, q, ExecOptions{})
	return err
}

func TestBadQueriesReturnErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT SUM(nope)",                       // unknown column in SELECT
		"SELECT COUNT(*) WHERE nope = 3",         // unknown column in WHERE
		"SELECT COUNT(*) GROUP BY nope",          // unknown GROUP BY column
		"SELECT MEDIAN(missing) WHERE price > 1", // unknown aggregate target
		"SELECT QUANTILE(qty, 1.5)",              // quantile out of range (parser)
		"SELECT QUANTILE(qty, -0.5)",             // negative quantile (parser)
		"SELECT SUM(region)",                     // SUM over string column
		"SELECT AVG(region)",                     // AVG over string column
		"SELECT COUNT(*) WHERE region < 'EU'",    // ordering on string column
		"SELECT FROBNICATE(qty)",                 // unknown aggregate
		"SELECT",                                 // truncated query
		"SELECT SUM(qty) WHERE",                  // truncated WHERE
		"SELECT SUM(qty) GROUP BY",               // truncated GROUP BY
		"SELECT SUM(qty) WHERE qty BETWEEN 1",    // truncated BETWEEN
		"SELECT SUM(qty) trailing garbage here",  // trailing tokens
		"SELECT QUANTILE(qty)",                   // missing quantile argument
		"SELECT SUM(qty) WHERE region IN ()",     // empty IN list
		"SELECT SUM(qty) WHERE qty = 'NaN'",      // string literal on numeric column
	} {
		if err := execDontPanic(t, sql); err == nil {
			t.Errorf("query %q: no error", sql)
		}
	}
}

// TestBadASTReturnsErrors drives Execute with hand-built ASTs that
// bypass the parser's validation — the path a programmatic caller (or a
// future parser bug) would take.
func TestBadASTReturnsErrors(t *testing.T) {
	cat := loadSales(t)
	for _, q := range []*Query{
		{Selects: []SelectExpr{{Func: Quantile, Column: "qty", Arg: 7.5}}},
		{Selects: []SelectExpr{{Func: Quantile, Column: "qty", Arg: -1}}},
		{Selects: []SelectExpr{{Func: AggFunc(99), Column: "qty"}}},
		{Selects: []SelectExpr{{Func: Sum, Column: "ghost"}}},
		{Selects: []SelectExpr{{Func: Min, Column: "qty"}}, GroupBy: []string{"ghost"}},
		{Selects: []SelectExpr{{Func: Min, Column: "qty"}}, GroupBy: []string{"region", "ghost"}},
		{Selects: []SelectExpr{{Func: Min, Column: "qty"}},
			Where: []Condition{{Column: "ghost", Op: OpEq, Lits: []Literal{{Num: 1}}}}},
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("AST %+v panicked: %v", q, r)
				}
			}()
			if _, err := Execute(cat, q, ExecOptions{}); err == nil {
				t.Errorf("AST %+v: no error", q)
			}
		}()
	}
}

func TestGoodQueriesStillWork(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT QUANTILE(qty, 0.5), MEDIAN(price) WHERE qty >= 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	cat := loadSales(t)
	q, err := Parse("SELECT SUM(qty), MEDIAN(price) GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, cat, q, ExecOptions{Threads: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext with canceled ctx = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := ExecuteContext(expired, cat, q, ExecOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExecuteContext with expired deadline = %v, want context.DeadlineExceeded", err)
	}

	// The same query still runs with a live ctx.
	if _, err := ExecuteContext(context.Background(), cat, q, ExecOptions{Threads: 2}); err != nil {
		t.Fatalf("ExecuteContext with live ctx: %v", err)
	}
}

// TestREPLStyleErrorRecovery mimics the CLI loop: a failing query must
// leave the catalog usable for the next one.
func TestREPLStyleErrorRecovery(t *testing.T) {
	cat := loadSales(t)
	for _, sql := range []string{
		"SELECT SUM(nope)",
		"SELECT SUM(qty)",
		"SELECT COUNT(*) WHERE ghost = 1",
		"SELECT MEDIAN(price) GROUP BY region",
	} {
		q, err := Parse(sql)
		if err != nil {
			continue
		}
		_, _ = Execute(cat, q, ExecOptions{})
	}
	res := run(t, cat, "SELECT COUNT(*)")
	if res.Rows[0][0] != "6" {
		t.Fatalf("catalog damaged by failed queries: COUNT(*) = %s", res.Rows[0][0])
	}
}

// TestFuzzSeedsNoPanic hammers Execute with a pile of structurally odd
// but parseable inputs.
func TestFuzzSeedsNoPanic(t *testing.T) {
	cat := loadSales(t)
	seeds := []string{
		"SELECT COUNT(*) WHERE price BETWEEN 99999 AND -99999",
		"SELECT MIN(delta) WHERE delta < -9999999",
		"SELECT MAX(qty) WHERE qty IN (0, 63, 64, 9999)",
		"SELECT QUANTILE(price, 0), QUANTILE(price, 1)",
		"SELECT SUM(qty) WHERE region != 'NOWHERE'",
		"SELECT AVG(price) WHERE price = 10.505",
		strings.Repeat("SELECT COUNT(*) WHERE qty > 1 AND qty > 2 AND qty > 3", 1),
	}
	for _, sql := range seeds {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("query %q panicked: %v", sql, r)
				}
			}()
			if _, err := Execute(cat, q, ExecOptions{Threads: 2, Wide: true, Auto: true}); err != nil {
				t.Errorf("query %q: %v", sql, err)
			}
		}()
	}
}
