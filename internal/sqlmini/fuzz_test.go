package sqlmini

import "testing"

// FuzzParse asserts the parser never panics and that anything it accepts
// round-trips through the AST invariants (non-empty select list, literal
// arity matching the operator).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT SUM(price), COUNT(*) WHERE qty < 24 GROUP BY region",
		"select quantile(lat, 0.99) from t where s = 'x' and v between -1 and 2.5",
		"SELECT MIN(a) WHERE b IN (1,2,3) AND c != 'q'",
		"SELECT COUNT(*)",
		"",
		"SELECT SUM( WHERE",
		"'", "((((", "SELECT SUM(x) WHERE a <",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if len(q.Selects) == 0 {
			t.Fatalf("accepted query with empty select list: %q", input)
		}
		for _, c := range q.Where {
			switch c.Op {
			case OpBetween:
				if len(c.Lits) != 2 {
					t.Fatalf("BETWEEN with %d literals: %q", len(c.Lits), input)
				}
			case OpIn:
				if len(c.Lits) == 0 {
					t.Fatalf("IN with no literals: %q", input)
				}
			default:
				if len(c.Lits) != 1 {
					t.Fatalf("comparison with %d literals: %q", len(c.Lits), input)
				}
			}
		}
	})
}
