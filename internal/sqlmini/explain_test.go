package sqlmini

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bpagg"
	"bpagg/internal/catalog"
)

// -update rewrites the golden plans under testdata/explain/ from the
// current output. Timings are normalized to "<dur>" so goldens only pin
// the deterministic counters.
var update = flag.Bool("update", false, "rewrite EXPLAIN ANALYZE golden files")

// loadOrders builds a deterministic 300-row catalog large enough for the
// plans to span several 64-tuple segments, with amount ascending so
// range scans get real zone-map pruning.
func loadOrders(t *testing.T) *catalog.Catalog {
	t.Helper()
	const schema = "amount:uint(10):vbp, qty:uint(6):hbp, region:string"
	var b strings.Builder
	b.WriteString("amount,qty,region\n")
	regions := []string{"EU", "US", "APAC"}
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,%d,%s\n", i*3, (i*7)%60, regions[i%3])
	}
	specs, err := catalog.ParseSchema(schema)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.LoadCSV(strings.NewReader(b.String()), specs)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func explainLines(t *testing.T, cat *catalog.Catalog, sql string) []string {
	return explainLinesOpts(t, cat, sql, ExecOptions{})
}

func explainLinesOpts(t *testing.T, cat *catalog.Catalog, sql string, o ExecOptions) []string {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	if !q.Explain {
		t.Fatalf("query %q did not parse as EXPLAIN ANALYZE", sql)
	}
	ex, err := ExplainAnalyze(cat, q, o)
	if err != nil {
		t.Fatalf("explain %q: %v", sql, err)
	}
	return ex.Lines(true)
}

func TestExplainGolden(t *testing.T) {
	cat := loadOrders(t)
	cases := []struct {
		name string
		sql  string
	}{
		{"sum_filtered", "EXPLAIN ANALYZE SELECT SUM(amount), COUNT(*) WHERE amount < 150"},
		{"median_two_preds", "EXPLAIN ANALYZE SELECT MEDIAN(qty) WHERE region = 'EU' AND amount BETWEEN 90 AND 600"},
		{"group_by", "EXPLAIN ANALYZE SELECT SUM(qty), MAX(amount) GROUP BY region"},
		{"no_predicates", "EXPLAIN ANALYZE SELECT COUNT(*), MIN(amount)"},
		{"in_list", "EXPLAIN ANALYZE SELECT SUM(amount) WHERE region IN ('EU', 'US') AND qty != 0"},
		{"rownum_range", "EXPLAIN ANALYZE SELECT SUM(amount), COUNT(*) WHERE rownum BETWEEN 64 AND 191"},
		{"rownum_masked", "EXPLAIN ANALYZE SELECT SUM(amount) WHERE rownum BETWEEN 10 AND 250 AND region = 'EU'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := strings.Join(explainLines(t, cat, tc.sql), "\n") + "\n"
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan mismatch for %q\n--- got ---\n%s--- want ---\n%s", tc.sql, got, want)
			}
		})
	}
}

// TestExplainGoldenHashTier pins the hash-banked plan shape: a composite
// GROUP BY routes single-pass through the hash tier and the node reports
// the tier plus its probe/growth counters. Threads is pinned to 1 because
// HashProbes depends on per-worker key arrival order (DESIGN.md §12) —
// with one worker the counters are exactly reproducible.
func TestExplainGoldenHashTier(t *testing.T) {
	cat := loadOrders(t)
	const sql = "EXPLAIN ANALYZE SELECT SUM(amount), COUNT(*) GROUP BY region, qty"
	got := strings.Join(explainLinesOpts(t, cat, sql, ExecOptions{Threads: 1}), "\n") + "\n"
	path := filepath.Join("testdata", "explain", "group_by_hash.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("plan mismatch for %q\n--- got ---\n%s--- want ---\n%s", sql, got, want)
	}
	if !strings.Contains(got, "[hash tier]") || !strings.Contains(got, "hash_probes=") {
		t.Errorf("hash-tier plan does not report the tier and probe counters:\n%s", got)
	}
}

// TestExplainExecuteRouting checks the EXPLAIN path through the normal
// Execute entry point: one "QUERY PLAN" column, one row per plan line.
// A fusible query collapses to the single scan+agg stage; an IN-list
// keeps the two-phase scan/combine tree.
func TestExplainExecuteRouting(t *testing.T) {
	cat := loadOrders(t)
	res := run(t, cat, "EXPLAIN ANALYZE SELECT COUNT(*) WHERE amount > 100")
	if len(res.Headers) != 1 || res.Headers[0] != "QUERY PLAN" {
		t.Fatalf("headers = %v", res.Headers)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("plan rows = %d, want query + fused stage:\n%s", len(res.Rows), planText(res))
	}
	if !strings.HasPrefix(res.Rows[0][0], "query ") {
		t.Errorf("first line = %q, want query root", res.Rows[0][0])
	}
	if !strings.Contains(res.Rows[1][0], "scan+agg (fused)") ||
		!strings.Contains(res.Rows[1][0], "amount > 100") {
		t.Errorf("second line = %q, want fused scan+agg stage for the predicate", res.Rows[1][0])
	}

	res = run(t, cat, "EXPLAIN ANALYZE SELECT COUNT(*) WHERE amount IN (30, 60)")
	if len(res.Rows) < 3 {
		t.Fatalf("plan rows = %d, want at least query/aggregate/scan:\n%s", len(res.Rows), planText(res))
	}
	var sawScan bool
	for _, row := range res.Rows {
		if strings.Contains(row[0], "scan amount IN") {
			sawScan = true
		}
		if strings.Contains(row[0], "fused") {
			t.Errorf("IN-list plan has a fused stage: %q", row[0])
		}
	}
	if !sawScan {
		t.Errorf("no scan node for the IN predicate in:\n%s", planText(res))
	}
}

// TestExplainFeedsSessionCollector: EXPLAIN ANALYZE executes the query,
// so a caller-supplied collector must accumulate its work — the CLI's
// -stats totals would otherwise read zero for explained queries.
func TestExplainFeedsSessionCollector(t *testing.T) {
	cat := loadOrders(t)
	q, err := Parse("EXPLAIN ANALYZE SELECT MEDIAN(qty) WHERE amount > 100")
	if err != nil {
		t.Fatal(err)
	}
	rec := bpagg.NewStatsCollector()
	ex, err := ExplainAnalyze(cat, q, ExecOptions{Stats: rec})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Scans == 0 || s.Aggregates == 0 || s.WordsTouched == 0 {
		t.Fatalf("session collector not fed by explain: %+v", s)
	}
	var scanNode *PlanNode
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == "scan" {
			scanNode = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ex.Root)
	if scanNode == nil {
		t.Fatal("no scan node in plan")
	}
	if s.WordsCompared != scanNode.Stats.WordsCompared {
		t.Errorf("session WordsCompared = %d, scan node reports %d",
			s.WordsCompared, scanNode.Stats.WordsCompared)
	}
}

func planText(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0])
		b.WriteString("\n")
	}
	return b.String()
}

// TestExplainPlainRejected pins the parser contract: EXPLAIN without
// ANALYZE is an error, not a silent execution.
func TestExplainPlainRejected(t *testing.T) {
	if _, err := Parse("EXPLAIN SELECT COUNT(*)"); err == nil {
		t.Fatal("plain EXPLAIN parsed; want error")
	} else if !strings.Contains(err.Error(), "ANALYZE") {
		t.Fatalf("error %q does not mention ANALYZE", err)
	}
}

// TestExplainCrossCheckMedian is the issue's acceptance check: the
// numbers EXPLAIN ANALYZE prints for a filtered MEDIAN query must be the
// same ones the public ExecStats API reports when the caller runs the
// stages by hand.
func TestExplainCrossCheckMedian(t *testing.T) {
	cat := loadOrders(t)
	const sql = "EXPLAIN ANALYZE SELECT MEDIAN(qty) WHERE amount BETWEEN 90 AND 600"
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExplainAnalyzeContext(context.Background(), cat, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Walk the tree: query → aggregate → combine → scan.
	root := ex.Root
	if root.Op != "query" || len(root.Children) != 1 {
		t.Fatalf("bad root: %+v", root)
	}
	agg := root.Children[0]
	if agg.Op != "aggregate" || len(agg.Children) != 1 {
		t.Fatalf("bad aggregate node: %+v", agg)
	}
	combine := agg.Children[0]
	if combine.Op != "combine" || len(combine.Children) != 1 {
		t.Fatalf("bad combine node: %+v", combine)
	}
	scanNode := combine.Children[0]
	if scanNode.Op != "scan" {
		t.Fatalf("bad scan node: %+v", scanNode)
	}

	// Re-run the scan stage by hand through the public API.
	col := cat.Table.Column("amount")
	srec := bpagg.NewStatsCollector()
	lo := col.ScanStats(bpagg.GreaterEq(90), srec)
	hi := col.ScanStats(bpagg.LessEq(600), srec)
	sel := lo.And(hi)
	ss := srec.Snapshot()
	if ss.Scans != scanNode.Stats.Scans {
		t.Errorf("scan Scans: plan %d, manual %d", scanNode.Stats.Scans, ss.Scans)
	}
	if ss.SegmentsScanned != scanNode.Stats.SegmentsScanned {
		t.Errorf("SegmentsScanned: plan %d, manual %d", scanNode.Stats.SegmentsScanned, ss.SegmentsScanned)
	}
	if ss.SegmentsPrunedAll != scanNode.Stats.SegmentsPrunedAll {
		t.Errorf("SegmentsPrunedAll: plan %d, manual %d", scanNode.Stats.SegmentsPrunedAll, ss.SegmentsPrunedAll)
	}
	if ss.SegmentsPrunedNone != scanNode.Stats.SegmentsPrunedNone {
		t.Errorf("SegmentsPrunedNone: plan %d, manual %d", scanNode.Stats.SegmentsPrunedNone, ss.SegmentsPrunedNone)
	}
	if ss.WordsCompared != scanNode.Stats.WordsCompared {
		t.Errorf("WordsCompared: plan %d, manual %d", scanNode.Stats.WordsCompared, ss.WordsCompared)
	}
	if uint64(sel.Count()) != scanNode.Rows {
		t.Errorf("scan rows: plan %d, manual %d", scanNode.Rows, sel.Count())
	}
	if uint64(sel.Count()) != combine.Rows {
		t.Errorf("combine rows: plan %d, manual %d", combine.Rows, sel.Count())
	}

	// Re-run the aggregate stage by hand: MEDIAN over the same selection.
	arec := bpagg.NewStatsCollector()
	wantMed, ok, err := cat.Table.Column("qty").MedianContext(context.Background(), sel, bpagg.CollectStats(arec))
	if err != nil || !ok {
		t.Fatalf("manual median: ok=%v err=%v", ok, err)
	}
	as := arec.Snapshot()
	if as.Aggregates != agg.Stats.Aggregates {
		t.Errorf("Aggregates: plan %d, manual %d", agg.Stats.Aggregates, as.Aggregates)
	}
	if as.SegmentsAggregated != agg.Stats.SegmentsAggregated {
		t.Errorf("SegmentsAggregated: plan %d, manual %d", agg.Stats.SegmentsAggregated, as.SegmentsAggregated)
	}
	if as.WordsTouched != agg.Stats.WordsTouched {
		t.Errorf("WordsTouched: plan %d, manual %d", agg.Stats.WordsTouched, as.WordsTouched)
	}
	if as.RadixRounds != agg.Stats.RadixRounds {
		t.Errorf("RadixRounds: plan %d, manual %d", agg.Stats.RadixRounds, as.RadixRounds)
	}
	if as.RadixRounds == 0 {
		t.Error("MEDIAN recorded zero radix rounds")
	}

	// And the plan's answer must match the plain query result.
	res := run(t, cat, "SELECT MEDIAN(qty) WHERE amount BETWEEN 90 AND 600")
	if want := cat.FormatValue("qty", wantMed); res.Rows[0][0] != want {
		t.Errorf("median: query %q, manual %q", res.Rows[0][0], want)
	}
}

// TestExplainStatsThreadInvariant: the work counters in a plan are defined
// analytically, so the same plan run with 8 threads must report the same
// segments/words/rounds (only timings may differ).
func TestExplainStatsThreadInvariant(t *testing.T) {
	cat := loadOrders(t)
	const sql = "EXPLAIN ANALYZE SELECT SUM(amount), MEDIAN(qty) WHERE amount > 120"
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	ex1, err := ExplainAnalyze(cat, q, ExecOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex8, err := ExplainAnalyze(cat, q, ExecOptions{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	l1, l8 := ex1.Lines(true), ex8.Lines(true)
	if len(l1) != len(l8) {
		t.Fatalf("plan shapes differ: %d vs %d lines", len(l1), len(l8))
	}
	for i := range l1 {
		if l1[i] != l8[i] {
			t.Errorf("line %d differs:\n  threads=1: %s\n  threads=8: %s", i, l1[i], l8[i])
		}
	}
}
