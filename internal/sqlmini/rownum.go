package sqlmini

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"bpagg"
	"bpagg/internal/catalog"
)

// rownum pseudo-column: WHERE rownum BETWEEN a AND b restricts the query
// to rows [a, b] by 0-based position, routed to the engine's prefix-sum
// range index (bpagg.Query.Range / ShardedQuery.Range, DESIGN.md §16).
// When nothing else filters the rows and the query is ungrouped, the
// aggregates answer from the index in O(1) per aggregate; otherwise the
// range becomes one more conjunctive mask on the bitmap path. A catalog
// column actually named "rownum" shadows the pseudo-column, so existing
// schemas keep their meaning.

const rownumName = "rownum"

// rowRange is a half-open row-position range [lo, hi).
type rowRange struct{ lo, hi int }

// clampRowBound narrows a parsed literal to a row index. Bounds beyond
// 2^53 exceed float64's integer range (and any table); they clamp rather
// than overflow the int conversion, and the engine clips to the row count
// anyway.
func clampRowBound(f float64) int {
	const max = 1 << 53
	if f < 0 {
		return -1
	}
	if f > max {
		return max
	}
	return int(f)
}

// splitRownum partitions the WHERE list into a row-position range and the
// remaining conditions. rng is nil when no rownum condition appears (or a
// real catalog column shadows the name); several rownum conditions
// intersect. Only BETWEEN with numeric bounds is accepted — row position
// is ordinal, so equality and one-sided forms are deliberately excluded
// rather than silently misread.
func splitRownum(cat *catalog.Catalog, conds []Condition) (*rowRange, []Condition, error) {
	if cat.Spec(rownumName) != nil {
		return nil, conds, nil
	}
	var rng *rowRange
	rest := make([]Condition, 0, len(conds))
	for _, cond := range conds {
		if cond.Column != rownumName {
			rest = append(rest, cond)
			continue
		}
		if cond.Op != OpBetween || len(cond.Lits) < 2 {
			return nil, nil, badf("sql: rownum supports only BETWEEN")
		}
		if cond.Lits[0].IsString || cond.Lits[1].IsString {
			return nil, nil, badf("sql: rownum bounds must be numeric")
		}
		// BETWEEN is inclusive over integer positions: fractional bounds
		// tighten inward (ceil the low, floor the high), and the inclusive
		// high becomes the half-open hi.
		lo := clampRowBound(math.Ceil(cond.Lits[0].Num))
		if lo < 0 {
			lo = 0
		}
		hi := lo
		if h := clampRowBound(math.Floor(cond.Lits[1].Num)); h >= lo {
			hi = h + 1
		}
		if rng == nil {
			rng = &rowRange{lo: lo, hi: hi}
			continue
		}
		if lo > rng.lo {
			rng.lo = lo
		}
		if hi < rng.hi {
			rng.hi = hi
		}
		if rng.hi < rng.lo {
			rng.hi = rng.lo
		}
	}
	return rng, rest, nil
}

// buildRangeQuery assembles the engine query whose Range serves the
// rownum restriction, directing its stats into the given collector (nil
// for none).
func buildRangeQuery(cat *catalog.Catalog, o ExecOptions, stats *bpagg.StatsCollector) *bpagg.Query {
	bq := cat.Table.Query()
	if o.Threads > 1 {
		bq.With(bpagg.Parallel(o.Threads))
	}
	if o.Wide {
		bq.With(bpagg.WideWords())
	}
	bq.WithStatsInto(stats)
	return bq
}

// rangeMask materializes the row-position mask through the engine's range
// selection.
func rangeMask(cat *catalog.Catalog, rng *rowRange) *bpagg.Bitmap {
	return cat.Table.Query().Range(rng.lo, rng.hi).Selection()
}

// executeRange runs a rownum-restricted query against a flat catalog.
// Ungrouped queries with no other predicate answer through the RangeQuery
// API — index-served per aggregate; anything else binds the remaining
// conjuncts as usual and applies the range as one more mask.
func executeRange(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions, rng *rowRange, rest []Condition) (*Result, error) {
	if len(rest) == 0 && len(q.GroupBy) == 0 {
		rq := buildRangeQuery(cat, o, o.Stats).Range(rng.lo, rng.hi)
		row, err := aggregateRowRange(ctx, cat, q.Selects, rq)
		if err != nil {
			return nil, err
		}
		return &Result{Headers: headers(q, false), Rows: [][]string{row}}, nil
	}
	sel, err := bindWhere(cat, rest, o.Stats)
	if err != nil {
		return nil, err
	}
	sel.And(rangeMask(cat, rng))
	return executeBitmap(ctx, cat, q, sel, o)
}

// aggregateRowRange renders one result row through the RangeQuery API —
// the row-position twin of aggregateRowQuery. SUM and AVG pair the
// prefix-difference sum with the range's non-NULL count so formatting
// never needs a bitmap; rank-family aggregates fall back inside the
// engine with the range as a filter.
func aggregateRowRange(ctx context.Context, cat *catalog.Catalog, sels []SelectExpr, rq *bpagg.RangeQuery) ([]string, error) {
	row := make([]string, len(sels))
	for i, s := range sels {
		switch s.Func {
		case CountStar:
			cnt, err := rq.CountRowsContext(ctx)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Count:
			cnt, err := rq.CountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Sum, Avg:
			sum, err := rq.SumContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			cnt, err := rq.CountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			if s.Func == Sum {
				row[i] = cat.FormatSum(s.Column, sum, cnt)
			} else {
				row[i] = cat.FormatAvg(s.Column, sum, cnt)
			}
		case Min:
			v, ok, err := rq.MinContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Max:
			v, ok, err := rq.MaxContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Median:
			v, ok, err := rq.MedianContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Quantile:
			v, ok, err := rq.QuantileContext(ctx, s.Column, s.Arg)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		default:
			return nil, fmt.Errorf("sql: unsupported aggregate %v", s.Func)
		}
	}
	return row, nil
}

// rangeDetail renders the range stage description: the aggregate list,
// the row window, and any residual predicate conjunction.
func rangeDetail(q *Query, rng *rowRange, conds []Condition) string {
	d := fmt.Sprintf("%s rows [%d, %d)", selectList(q), rng.lo, rng.hi)
	if len(conds) > 0 {
		parts := make([]string, len(conds))
		for i, c := range conds {
			parts[i] = c.String()
		}
		d += " where " + strings.Join(parts, " AND ")
	}
	return d
}

// explainRange builds the EXPLAIN ANALYZE tree for a rownum-restricted
// flat query, reproducing executeRange's routing exactly: the index-served
// form is the one stage that runs, the masked form is the bitmap plan with
// the range mask feeding combine alongside the predicate scans.
func explainRange(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions, queryStart time.Time, rng *rowRange, rest []Condition) (*ExplainResult, error) {
	if len(rest) != 0 || len(q.GroupBy) != 0 {
		return explainBitmap(ctx, cat, q, rest, rng, o, queryStart)
	}
	rec := bpagg.NewStatsCollector()
	rq := buildRangeQuery(cat, o, rec).Range(rng.lo, rng.hi)
	t0 := time.Now()
	if _, err := aggregateRowRange(ctx, cat, q.Selects, rq); err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	// Matching-row cardinality is plan decoration; count it stats-free so
	// the recorded counters stay exactly what execution cost.
	rows, err := buildRangeQuery(cat, o, nil).Range(rng.lo, rng.hi).CountRowsContext(ctx)
	if err != nil {
		return nil, err
	}
	node := &PlanNode{
		Op:     "range (prefix-index)",
		Detail: rangeDetail(q, rng, nil),
		Rows:   rows,
		Stats:  rec.Snapshot(),
		Wall:   wall,
	}
	root := &PlanNode{
		Op:       "query",
		Rows:     1,
		Wall:     time.Since(queryStart),
		Children: []*PlanNode{node},
	}
	if o.Stats != nil {
		recordTree(o.Stats, root)
	}
	return &ExplainResult{Root: root}, nil
}
