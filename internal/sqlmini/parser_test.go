package sqlmini

import (
	"strings"
	"testing"
)

func TestParseBasicSelect(t *testing.T) {
	q, err := Parse("SELECT SUM(price), COUNT(*) WHERE qty < 24")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selects) != 2 {
		t.Fatalf("selects = %d", len(q.Selects))
	}
	if q.Selects[0].Func != Sum || q.Selects[0].Column != "price" {
		t.Errorf("first select = %+v", q.Selects[0])
	}
	if q.Selects[1].Func != CountStar {
		t.Errorf("second select = %+v", q.Selects[1])
	}
	if len(q.Where) != 1 || q.Where[0].Op != OpLt || q.Where[0].Column != "qty" ||
		q.Where[0].Lits[0].Num != 24 {
		t.Errorf("where = %+v", q.Where)
	}
}

func TestParseAllAggregates(t *testing.T) {
	q, err := Parse("select count(a), sum(b), avg(c), min(d), max(e), median(f), quantile(g, 0.95)")
	if err != nil {
		t.Fatal(err)
	}
	want := []AggFunc{Count, Sum, Avg, Min, Max, Median, Quantile}
	for i, fn := range want {
		if q.Selects[i].Func != fn {
			t.Errorf("select %d: %v, want %v", i, q.Selects[i].Func, fn)
		}
	}
	if q.Selects[6].Arg != 0.95 {
		t.Errorf("quantile arg = %v", q.Selects[6].Arg)
	}
}

func TestParseOperators(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) WHERE a = 1 AND b != 2 AND c <> 3 AND d < 4
		AND e <= 5 AND f > 6 AND g >= 7 AND h BETWEEN 8 AND 9 AND i IN (1, 2, 3)
		AND s = 'hello' AND t != "world"`)
	if err != nil {
		t.Fatal(err)
	}
	ops := []CmpOp{OpEq, OpNe, OpNe, OpLt, OpLe, OpGt, OpGe, OpBetween, OpIn, OpEq, OpNe}
	if len(q.Where) != len(ops) {
		t.Fatalf("conditions = %d, want %d", len(q.Where), len(ops))
	}
	for i, op := range ops {
		if q.Where[i].Op != op {
			t.Errorf("cond %d op = %d, want %d", i, int(q.Where[i].Op), int(op))
		}
	}
	if got := q.Where[7].Lits; got[0].Num != 8 || got[1].Num != 9 {
		t.Errorf("between lits = %+v", got)
	}
	if got := q.Where[8].Lits; len(got) != 3 || got[2].Num != 3 {
		t.Errorf("in lits = %+v", got)
	}
	if !q.Where[9].Lits[0].IsString || q.Where[9].Lits[0].Str != "hello" {
		t.Errorf("string lit = %+v", q.Where[9].Lits[0])
	}
}

func TestParseGroupByAndFrom(t *testing.T) {
	q, err := Parse("SELECT SUM(v) FROM sales WHERE v > 0 GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "sales" || len(q.GroupBy) != 1 || q.GroupBy[0] != "region" {
		t.Errorf("from=%q groupby=%q", q.From, q.GroupBy)
	}
}

func TestParseGroupByMultiColumn(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM sales GROUP BY region, dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 2 || q.GroupBy[0] != "region" || q.GroupBy[1] != "dept" {
		t.Errorf("groupby=%q", q.GroupBy)
	}
	if _, err := Parse("SELECT COUNT(*) GROUP BY a,"); err == nil {
		t.Error("trailing comma in GROUP BY list parsed without error")
	}
}

func TestParseNegativeAndFloatLiterals(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) WHERE a >= -12.5 AND b < 0.25")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Lits[0].Num != -12.5 || !q.Where[0].Lits[0].Neg {
		t.Errorf("negative literal = %+v", q.Where[0].Lits[0])
	}
	if q.Where[1].Lits[0].Num != 0.25 {
		t.Errorf("float literal = %+v", q.Where[1].Lits[0])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select Sum(x) where X between 1 and 2 group by Y"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"FROM t",
		"SELECT",
		"SELECT frobnicate(x)",
		"SELECT SUM(x,)",
		"SELECT SUM(x) WHERE",
		"SELECT SUM(x) WHERE a",
		"SELECT SUM(x) WHERE a = ",
		"SELECT SUM(x) WHERE a BETWEEN 1",
		"SELECT SUM(x) WHERE a BETWEEN 1 OR 2",
		"SELECT SUM(x) WHERE a IN ()",
		"SELECT SUM(x) WHERE a IN (1",
		"SELECT SUM(x) GROUP region",
		"SELECT SUM(x) trailing garbage",
		"SELECT QUANTILE(x, 1.5)",
		"SELECT QUANTILE(x, 'a')",
		"SELECT SUM(x) WHERE s = 'unterminated",
		"SELECT COUNT(*) WHERE a = -'x'",
		"SELECT SUM(x) WHERE a @ 3",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSelectLabel(t *testing.T) {
	cases := []struct {
		sel  SelectExpr
		want string
	}{
		{SelectExpr{Func: CountStar}, "count(*)"},
		{SelectExpr{Func: Sum, Column: "x"}, "sum(x)"},
		{SelectExpr{Func: Quantile, Column: "lat", Arg: 0.99}, "quantile(lat,0.99)"},
	}
	for _, c := range cases {
		if got := c.sel.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("a <= 'b c' 1.5 <> (x)")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	want := []string{"a", "<=", "b c", "1.5", "<>", "(", "x", ")"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}
