package sqlmini

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"bpagg"
	"bpagg/internal/catalog"
)

// EXPLAIN ANALYZE: the query executes normally, but every stage runs
// with its own stats collector and the result is the plan tree instead
// of the rows. The tree mirrors the engine's actual dataflow —
// aggregates consume the combined filter, which intersects one
// bit-parallel scan per WHERE predicate:
//
//	query
//	└─ aggregate ...
//	   └─ [group by ...]
//	      └─ combine ...
//	         ├─ scan pred1 ...
//	         └─ scan pred2 ...
//
// When the executor takes the fused path instead (ungrouped, every
// conjunct a simple predicate, every aggregate fusible — see fused.go and
// DESIGN.md §10), the scan/combine/aggregate stages collapse into the one
// stage that actually runs:
//
//	query
//	└─ scan+agg (fused) ...
//
// Every counter on a node comes from the ExecStats machinery (DESIGN.md
// §8), so the plan's numbers are the same ones a caller would get from
// bpagg.CollectStats — a property the explain tests cross-check.

// PlanNode is one stage of an executed EXPLAIN ANALYZE plan.
type PlanNode struct {
	// Op identifies the stage: "query", "aggregate", "group", "combine",
	// "scan", "range mask", "scan+agg (fused)", "group+agg (single-pass)",
	// "range (prefix-index)", "shard scan+agg", "shard group+agg", or
	// "shard range".
	Op string
	// Detail is the stage's SQL-ish description (predicate, aggregate
	// list, grouping column).
	Detail string
	// Rows is the stage's output cardinality: matching rows for scans
	// and combine, groups for group, result rows for aggregate/query.
	Rows uint64
	// Stats holds the counters recorded while this stage ran.
	Stats bpagg.ExecStats
	// Wall is the stage's wall-clock time.
	Wall     time.Duration
	Children []*PlanNode
}

// ExplainResult is an executed EXPLAIN ANALYZE query.
type ExplainResult struct {
	Root *PlanNode
}

// ExplainAnalyze runs q and returns its plan tree. The query must have
// Explain semantics in mind but the flag itself is not consulted, so
// programmatically built queries can be explained too.
func ExplainAnalyze(cat *catalog.Catalog, q *Query, o ExecOptions) (*ExplainResult, error) {
	return ExplainAnalyzeContext(context.Background(), cat, q, o)
}

// ExplainAnalyzeContext is ExplainAnalyze honoring ctx, with the same
// cancellation and panic-recovery contract as ExecuteContext.
func ExplainAnalyzeContext(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions) (res *ExplainResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("sql: internal error explaining query: %v", r)
		}
	}()
	if err := validateSelects(cat, q); err != nil {
		return nil, err
	}
	queryStart := time.Now()

	// Row-position routing mirrors ExecuteContext: rownum peels off before
	// any predicate binding, and a rownum-only ungrouped query plans as the
	// one index-served stage:
	//
	//	query
	//	└─ range (prefix-index) ...
	rng, rest, err := splitRownum(cat, q.Where)
	if err != nil {
		return nil, err
	}

	// Sharded plan: the executor's routing is reproduced exactly — a
	// sharded catalog always takes the shard fan-out, so the plan is the
	// one stage that runs, with the shard-catalog pruning counters
	// (shards_scanned/shards_pruned) on it:
	//
	//	query
	//	└─ shard scan+agg ...      (or shard group+agg when grouped)
	if cat.Sharded != nil {
		return explainSharded(ctx, cat, q, o, queryStart, rng, rest)
	}

	if rng != nil {
		return explainRange(ctx, cat, q, o, queryStart, rng, rest)
	}

	// Fused plan: the executor's routing decision is reproduced exactly
	// (same bindPreds + queryFusesAll gate as ExecuteContext), so the plan
	// always shows the stages that would really run.
	if len(q.GroupBy) == 0 {
		if bps, ok := bindPreds(cat, q.Where); ok && len(bps) > 0 {
			rec := bpagg.NewStatsCollector()
			bq, err := buildFusedQuery(cat, bps, o, rec)
			if err == nil && queryFusesAll(bq, q.Selects) {
				t0 := time.Now()
				if _, err := aggregateRowQuery(ctx, cat, q.Selects, bq); err != nil {
					return nil, err
				}
				wall := time.Since(t0)
				// The matching-row cardinality is plan decoration the fused
				// aggregates never compute; count it on a stats-free twin so
				// the recorded counters stay exactly what execution cost.
				cq, err := buildFusedQuery(cat, bps, o, nil)
				if err != nil {
					return nil, err
				}
				rows, err := cq.CountRowsContext(ctx)
				if err != nil {
					return nil, err
				}
				fused := &PlanNode{
					Op:     "scan+agg (fused)",
					Detail: fusedDetail(q),
					Rows:   rows,
					Stats:  rec.Snapshot(),
					Wall:   wall,
				}
				root := &PlanNode{
					Op:       "query",
					Rows:     1,
					Wall:     time.Since(queryStart),
					Children: []*PlanNode{fused},
				}
				if o.Stats != nil {
					recordTree(o.Stats, root)
				}
				return &ExplainResult{Root: root}, nil
			}
		}
	}

	// Grouped single-pass plan: like the fused plan, the executor's
	// routing gate is reproduced exactly (groupSinglePassEligible is
	// complete — the dictionary bound rules out the runtime cardinality
	// fallback), so the plan shows the one stage that really runs:
	//
	//	query
	//	└─ group+agg (single-pass) ...
	if len(q.GroupBy) != 0 {
		if bps, ok := groupSinglePassEligible(cat, q, o); ok {
			rec := bpagg.NewStatsCollector()
			bq, err := buildFusedQuery(cat, bps, o, rec)
			if err == nil {
				oa := o
				oa.Stats = rec
				t0 := time.Now()
				g, err := bq.GroupByContext(ctx, q.GroupBy...)
				if err != nil {
					return nil, err
				}
				if _, err := groupedRows(ctx, cat, q, g, oa); err != nil {
					return nil, err
				}
				node := &PlanNode{
					Op:     "group+agg (single-pass)",
					Detail: groupFastDetail(q) + " [" + g.Strategy().String() + " tier]",
					Rows:   uint64(g.Len()),
					Stats:  rec.Snapshot(),
					Wall:   time.Since(t0),
				}
				root := &PlanNode{
					Op:       "query",
					Rows:     uint64(g.Len()),
					Wall:     time.Since(queryStart),
					Children: []*PlanNode{node},
				}
				if o.Stats != nil {
					recordTree(o.Stats, root)
				}
				return &ExplainResult{Root: root}, nil
			}
		}
	}

	return explainBitmap(ctx, cat, q, q.Where, nil, o, queryStart)
}

// explainBitmap builds the scan/combine/group/aggregate plan for the
// bitmap executor, over the given conditions. A non-nil rng adds the
// row-position mask as one more combine input — exactly how executeRange's
// fallback applies it.
func explainBitmap(ctx context.Context, cat *catalog.Catalog, q *Query, conds []Condition, rng *rowRange, o ExecOptions, queryStart time.Time) (*ExplainResult, error) {
	// Scan stage: one bit-parallel scan per WHERE predicate, each with
	// its own collector so per-predicate pruning is visible.
	var scans []*PlanNode
	var masks []*bpagg.Bitmap
	for _, cond := range conds {
		rec := bpagg.NewStatsCollector()
		t0 := time.Now()
		m, err := bindCondition(cat, cond, rec)
		if err != nil {
			return nil, err
		}
		scans = append(scans, &PlanNode{
			Op:     "scan",
			Detail: cond.String(),
			Rows:   uint64(m.Count()),
			Stats:  rec.Snapshot(),
			Wall:   time.Since(t0),
		})
		masks = append(masks, m)
	}
	if rng != nil {
		t0 := time.Now()
		m := rangeMask(cat, rng)
		scans = append(scans, &PlanNode{
			Op:     "range mask",
			Detail: fmt.Sprintf("rows [%d, %d)", rng.lo, rng.hi),
			Rows:   uint64(m.Count()),
			Wall:   time.Since(t0),
		})
		masks = append(masks, m)
	}

	// Combine stage: intersect the per-predicate selections (§II-E).
	t0 := time.Now()
	var sel *bpagg.Bitmap
	for _, m := range masks {
		if sel == nil {
			sel = m
		} else {
			sel.And(m)
		}
	}
	combine := &PlanNode{Op: "combine", Children: scans, Wall: time.Since(t0)}
	if sel == nil {
		tbl := cat.Table
		sel = tbl.Column(tbl.Columns()[0]).All()
		combine.Detail = "no predicates (all rows)"
	} else if len(masks) == 1 {
		combine.Detail = "1 predicate"
	} else {
		combine.Detail = fmt.Sprintf("%d predicates (AND)", len(masks))
	}
	combine.Rows = uint64(sel.Count())

	// Optional group stage: the bit-parallel distinct-key walk.
	agg := &PlanNode{Op: "aggregate", Detail: selectList(q)}
	above := combine
	var groups []group
	if len(q.GroupBy) != 0 {
		gcols, err := groupCols(cat, q)
		if err != nil {
			return nil, err
		}
		rec := bpagg.NewStatsCollector()
		t0 := time.Now()
		groups, err = groupSelections(ctx, gcols, sel, rec)
		if err != nil {
			return nil, err
		}
		above = &PlanNode{
			Op:       "group",
			Detail:   "by " + strings.Join(q.GroupBy, ", "),
			Rows:     uint64(len(groups)),
			Stats:    rec.Snapshot(),
			Wall:     time.Since(t0),
			Children: []*PlanNode{combine},
		}
	}
	agg.Children = []*PlanNode{above}

	// Aggregate stage: all SELECT expressions (per group when grouped)
	// share one collector.
	rec := bpagg.NewStatsCollector()
	oa := o
	oa.Stats = rec
	t0 = time.Now()
	if len(q.GroupBy) == 0 {
		if _, err := aggregateRow(ctx, cat, q.Selects, sel, oa); err != nil {
			return nil, err
		}
		agg.Rows = 1
	} else {
		for _, g := range groups {
			if _, err := aggregateRow(ctx, cat, q.Selects, g.sel, oa); err != nil {
				return nil, err
			}
		}
		agg.Rows = uint64(len(groups))
	}
	agg.Stats = rec.Snapshot()
	agg.Wall = time.Since(t0)

	root := &PlanNode{
		Op:       "query",
		Rows:     agg.Rows,
		Wall:     time.Since(queryStart),
		Children: []*PlanNode{agg},
	}
	if o.Stats != nil {
		// EXPLAIN ANALYZE executes the query for real, so a session-level
		// collector must see its work too. Stage collectors are
		// independent, so summing the tree never double-counts.
		recordTree(o.Stats, root)
	}
	return &ExplainResult{Root: root}, nil
}

func recordTree(rec *bpagg.StatsCollector, n *PlanNode) {
	rec.Record(n.Stats)
	for _, c := range n.Children {
		recordTree(rec, c)
	}
}

// selectList renders the aggregate list for the plan's aggregate node.
func selectList(q *Query) string {
	parts := make([]string, len(q.Selects))
	for i, s := range q.Selects {
		parts[i] = s.Label()
	}
	return strings.Join(parts, ", ")
}

// Render writes the plan as an indented tree. With normalizeTimes set,
// every duration prints as "<dur>" — the stable form the golden-file
// tests compare against.
func (e *ExplainResult) Render(w io.Writer, normalizeTimes bool) error {
	return renderNode(w, e.Root, "", "", normalizeTimes)
}

// Lines returns the rendered plan split into lines, for callers that
// present plans row-wise (the CLI wraps them in a Result).
func (e *ExplainResult) Lines(normalizeTimes bool) []string {
	var b strings.Builder
	e.Render(&b, normalizeTimes)
	return strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
}

func renderNode(w io.Writer, n *PlanNode, prefix, childPrefix string, norm bool) error {
	if _, err := fmt.Fprintf(w, "%s%s\n", prefix, n.describe(norm)); err != nil {
		return err
	}
	for i, c := range n.Children {
		branch, cont := "├─ ", "│  "
		if i == len(n.Children)-1 {
			branch, cont = "└─ ", "   "
		}
		if err := renderNode(w, c, childPrefix+branch, childPrefix+cont, norm); err != nil {
			return err
		}
	}
	return nil
}

// describe renders one node line: op, detail, then the counters relevant
// to the stage kind.
func (n *PlanNode) describe(norm bool) string {
	dur := func(d time.Duration) string {
		if norm {
			return "<dur>"
		}
		return d.Round(time.Microsecond).String()
	}
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	var fields []string
	add := func(format string, args ...any) {
		fields = append(fields, fmt.Sprintf(format, args...))
	}
	switch n.Op {
	case "scan":
		add("rows=%d", n.Rows)
		add("segments=%d", n.Stats.SegmentsScanned)
		add("pruned_none=%d", n.Stats.SegmentsPrunedNone)
		add("pruned_all=%d", n.Stats.SegmentsPrunedAll)
		add("pruned=%.1f%%", 100*n.Stats.PruneRatio())
		add("words=%d", n.Stats.WordsCompared)
		add("time=%s", dur(n.Wall))
	case "combine", "range mask":
		add("rows=%d", n.Rows)
		add("time=%s", dur(n.Wall))
	case "range (prefix-index)":
		add("rows=%d", n.Rows)
		add("aggs=%d", n.Stats.Aggregates)
		add("index_segments=%d", n.Stats.SegmentsIndexServed)
		add("fringe_words=%d", n.Stats.RangeFringeWords)
		add("busy=%s", dur(n.Stats.WorkerBusy()))
		add("time=%s", dur(n.Wall))
	case "shard range":
		add("rows=%d", n.Rows)
		add("shards_scanned=%d", n.Stats.ShardsScanned)
		add("shards_pruned=%d", n.Stats.ShardsPruned)
		add("aggs=%d", n.Stats.Aggregates)
		add("index_segments=%d", n.Stats.SegmentsIndexServed)
		add("fringe_words=%d", n.Stats.RangeFringeWords)
		add("busy=%s", dur(n.Stats.WorkerBusy()))
		add("time=%s", dur(n.Wall))
	case "group":
		add("groups=%d", n.Rows)
		add("scans=%d", n.Stats.Scans)
		add("words_compared=%d", n.Stats.WordsCompared)
		add("words_touched=%d", n.Stats.WordsTouched)
		add("time=%s", dur(n.Wall))
	case "scan+agg (fused)":
		add("rows=%d", n.Rows)
		add("aggs=%d", n.Stats.Aggregates)
		add("scans=%d", n.Stats.Scans)
		add("pruned_none=%d", n.Stats.SegmentsPrunedNone)
		add("pruned_all=%d", n.Stats.SegmentsPrunedAll)
		add("cache_served=%d", n.Stats.SegmentsCacheServed)
		add("words_compared=%d", n.Stats.WordsCompared)
		add("words_touched=%d", n.Stats.WordsTouched)
		if n.Stats.RadixRounds > 0 {
			add("radix_rounds=%d", n.Stats.RadixRounds)
		}
		add("busy=%s", dur(n.Stats.WorkerBusy()))
		add("time=%s", dur(n.Wall))
	case "shard scan+agg", "shard group+agg":
		if n.Op == "shard group+agg" {
			add("groups=%d", n.Rows)
		} else {
			add("rows=%d", n.Rows)
		}
		add("shards_scanned=%d", n.Stats.ShardsScanned)
		add("shards_pruned=%d", n.Stats.ShardsPruned)
		add("aggs=%d", n.Stats.Aggregates)
		add("scans=%d", n.Stats.Scans)
		add("pruned_none=%d", n.Stats.SegmentsPrunedNone)
		add("pruned_all=%d", n.Stats.SegmentsPrunedAll)
		add("cache_served=%d", n.Stats.SegmentsCacheServed)
		add("words_compared=%d", n.Stats.WordsCompared)
		add("words_touched=%d", n.Stats.WordsTouched)
		add("busy=%s", dur(n.Stats.WorkerBusy()))
		add("time=%s", dur(n.Wall))
	case "group+agg (single-pass)":
		add("groups=%d", n.Stats.GroupsDiscovered)
		add("aggs=%d", n.Stats.Aggregates)
		add("scans=%d", n.Stats.Scans)
		add("cache_served=%d", n.Stats.SegmentsCacheServed)
		add("words_compared=%d", n.Stats.WordsCompared)
		add("words_touched=%d", n.Stats.WordsTouched)
		add("bank_words=%d", n.Stats.GroupBankWords)
		if n.Stats.HashProbes > 0 || n.Stats.HashGrowths > 0 {
			add("hash_probes=%d", n.Stats.HashProbes)
			add("hash_growths=%d", n.Stats.HashGrowths)
		}
		add("busy=%s", dur(n.Stats.WorkerBusy()))
		add("time=%s", dur(n.Wall))
	case "aggregate":
		add("aggs=%d", n.Stats.Aggregates)
		add("segments=%d", n.Stats.SegmentsAggregated)
		add("words=%d", n.Stats.WordsTouched)
		add("radix_rounds=%d", n.Stats.RadixRounds)
		if n.Stats.ReconstructedRows > 0 {
			add("reconstructed=%d", n.Stats.ReconstructedRows)
		}
		add("busy=%s", dur(n.Stats.WorkerBusy()))
		add("time=%s", dur(n.Wall))
	default: // query
		add("rows=%d", n.Rows)
		add("time=%s", dur(n.Wall))
	}
	b.WriteString(" (")
	b.WriteString(strings.Join(fields, ", "))
	b.WriteString(")")
	return b.String()
}
