package sqlmini

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestRownumBasic(t *testing.T) {
	cat := loadSales(t)
	// Rows 1..3: (99.99,24,0,US), (0.01,1,10,EU), (500.00,50,-50,APAC).
	res := run(t, cat, "SELECT COUNT(*), SUM(qty), MIN(price), MAX(price), AVG(delta) WHERE rownum BETWEEN 1 AND 3")
	want := []string{"3", "75", "0.01", "500.00", "-13.3333"}
	if !reflect.DeepEqual(res.Rows[0], want) {
		t.Errorf("rownum 1..3 row = %v, want %v", res.Rows[0], want)
	}

	// Range past the table clips; an inverted range selects nothing.
	res = run(t, cat, "SELECT COUNT(*), MIN(qty) WHERE rownum BETWEEN 4 AND 99")
	if !reflect.DeepEqual(res.Rows[0], []string{"2", "3"}) {
		t.Errorf("clipped range row = %v", res.Rows[0])
	}
	res = run(t, cat, "SELECT COUNT(*), MIN(qty), AVG(qty) WHERE rownum BETWEEN 4 AND 2")
	if !reflect.DeepEqual(res.Rows[0], []string{"0", "NULL", "NULL"}) {
		t.Errorf("empty range row = %v", res.Rows[0])
	}

	// Fractional bounds tighten inward: 0.5..2.5 means rows 1..2.
	res = run(t, cat, "SELECT COUNT(*), SUM(qty) WHERE rownum BETWEEN 0.5 AND 2.5")
	if !reflect.DeepEqual(res.Rows[0], []string{"2", "25"}) {
		t.Errorf("fractional bounds row = %v", res.Rows[0])
	}

	// Two rownum conjuncts intersect.
	res = run(t, cat, "SELECT COUNT(*) WHERE rownum BETWEEN 1 AND 4 AND rownum BETWEEN 3 AND 5")
	if res.Rows[0][0] != "2" {
		t.Errorf("intersected ranges count = %q", res.Rows[0][0])
	}
}

// TestRownumMatchesScan cross-checks the index-served route against the
// same aggregates computed over an equality-free value predicate that
// selects exactly the same rows (amount = 3·rownum on the orders
// fixture), so the two routes must agree cell for cell.
func TestRownumMatchesScan(t *testing.T) {
	cat := loadOrders(t)
	ranges := [][2]int{{0, 299}, {0, 0}, {63, 64}, {64, 191}, {1, 298}, {250, 400}}
	for _, r := range ranges {
		posSQL := fmt.Sprintf(
			"SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount), MEDIAN(amount) WHERE rownum BETWEEN %d AND %d",
			r[0], r[1])
		valSQL := fmt.Sprintf(
			"SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount), MEDIAN(amount) WHERE amount BETWEEN %d AND %d",
			r[0]*3, r[1]*3)
		got := run(t, cat, posSQL)
		want := run(t, cat, valSQL)
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("range [%d,%d]: rownum route = %v, value route = %v", r[0], r[1], got.Rows, want.Rows)
		}
	}
}

// TestRownumWithPredicates exercises the masked fallback: rownum combined
// with ordinary conjuncts, grouped and ungrouped.
func TestRownumWithPredicates(t *testing.T) {
	cat := loadSales(t)
	// Rows 0..3 with region EU: rows 0 (qty 5) and 2 (qty 1).
	res := run(t, cat, "SELECT COUNT(*), SUM(qty) WHERE rownum BETWEEN 0 AND 3 AND region = 'EU'")
	if !reflect.DeepEqual(res.Rows[0], []string{"2", "6"}) {
		t.Errorf("masked row = %v", res.Rows[0])
	}

	res = run(t, cat, "SELECT COUNT(*), SUM(qty) WHERE rownum BETWEEN 0 AND 2 GROUP BY region")
	got := map[string][]string{}
	for _, row := range res.Rows {
		got[row[0]] = row[1:]
	}
	want := map[string][]string{"EU": {"2", "6"}, "US": {"1", "24"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grouped rownum rows = %v, want %v", got, want)
	}
}

func TestRownumErrors(t *testing.T) {
	cat := loadSales(t)
	for _, sql := range []string{
		"SELECT COUNT(*) WHERE rownum = 5",
		"SELECT COUNT(*) WHERE rownum >= 2",
		"SELECT COUNT(*) WHERE rownum IN (1, 2)",
		"SELECT COUNT(*) WHERE rownum BETWEEN 'a' AND 'b'",
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		_, err = Execute(cat, q, ExecOptions{})
		var bad *BadQueryError
		if !errors.As(err, &bad) {
			t.Errorf("%q: err = %v, want *BadQueryError", sql, err)
		}
	}
}

// TestRownumShardedMatchesFlat is the differential check: the same rownum
// queries against the flat catalog and its sharded twin must agree cell
// for cell — including NULL-bearing qty, whose COUNT/AVG divisors are the
// non-NULL counts on both routes.
func TestRownumShardedMatchesFlat(t *testing.T) {
	flat, sharded := bigSalesCatalogs(t, 1000, 128)
	queries := []string{
		"SELECT COUNT(*), COUNT(qty), SUM(qty), AVG(qty), MIN(qty), MAX(qty), MEDIAN(qty) WHERE rownum BETWEEN 100 AND 899",
		"SELECT SUM(price), AVG(delta), MIN(delta), MAX(price) WHERE rownum BETWEEN 127 AND 128",
		"SELECT COUNT(*), SUM(qty) WHERE rownum BETWEEN 0 AND 5000",
		"SELECT COUNT(*), MEDIAN(price) WHERE rownum BETWEEN 950 AND 20",
		"SELECT COUNT(*), SUM(price) WHERE rownum BETWEEN 200 AND 700 AND region = 'EU'",
		"SELECT COUNT(qty), AVG(qty) WHERE rownum BETWEEN 300 AND 650 AND delta >= 0",
	}
	for _, sql := range queries {
		fr := run(t, flat, sql)
		sr := run(t, sharded, sql)
		if !reflect.DeepEqual(fr.Rows, sr.Rows) {
			t.Errorf("%q:\n  flat    = %v\n  sharded = %v", sql, fr.Rows, sr.Rows)
		}
	}
}

func TestRownumShardedGroupByRejected(t *testing.T) {
	_, sharded := loadSalesSharded(t, 2)
	q, err := Parse("SELECT COUNT(*) WHERE rownum BETWEEN 0 AND 3 GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(sharded, q, ExecOptions{})
	var bad *BadQueryError
	if !errors.As(err, &bad) {
		t.Errorf("sharded rownum GROUP BY err = %v, want *BadQueryError", err)
	}
	if _, err := ExplainAnalyze(sharded, q, ExecOptions{}); !errors.As(err, &bad) {
		t.Errorf("explain sharded rownum GROUP BY err = %v, want *BadQueryError", err)
	}
}

// TestRownumNotBatchEligible pins the serving-layer gate: a
// rownum-restricted query must never join a shared-scan batch, whose
// selection ignores row position.
func TestRownumNotBatchEligible(t *testing.T) {
	cat := loadSales(t)
	q, err := Parse("SELECT COUNT(*) WHERE rownum BETWEEN 0 AND 3")
	if err != nil {
		t.Fatal(err)
	}
	if key, ok := BatchKey(cat, q); ok {
		t.Errorf("rownum query got batch key %q, want ineligible", key)
	}
}

// TestRownumExplainStages checks the plan shapes: index-served queries
// collapse to the one range stage, masked queries show the range mask
// feeding combine, sharded queries report the shard range fan-out.
func TestRownumExplainStages(t *testing.T) {
	cat := loadOrders(t)
	lines := strings.Join(explainLines(t, cat, "EXPLAIN ANALYZE SELECT SUM(amount) WHERE rownum BETWEEN 64 AND 191"), "\n")
	if !strings.Contains(lines, "range (prefix-index)") {
		t.Errorf("index-served plan missing range stage:\n%s", lines)
	}
	if !strings.Contains(lines, "index_segments=2, fringe_words=0") {
		t.Errorf("aligned range should be fully index-served:\n%s", lines)
	}

	lines = strings.Join(explainLines(t, cat, "EXPLAIN ANALYZE SELECT SUM(amount) WHERE rownum BETWEEN 10 AND 250 AND region = 'EU'"), "\n")
	if !strings.Contains(lines, "range mask") || !strings.Contains(lines, "scan region = 'EU'") {
		t.Errorf("masked plan missing range mask + scan stages:\n%s", lines)
	}

	_, sharded := bigSalesCatalogs(t, 1000, 128)
	q, err := Parse("EXPLAIN ANALYZE SELECT SUM(qty) WHERE rownum BETWEEN 300 AND 500")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExplainAnalyze(sharded, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lines = strings.Join(ex.Lines(true), "\n")
	if !strings.Contains(lines, "shard range") || !strings.Contains(lines, "shards_pruned=") {
		t.Errorf("sharded plan missing shard range stage:\n%s", lines)
	}
}
