package sqlmini

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"bpagg"
)

func parseQ(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

func TestBatchKeyCanonical(t *testing.T) {
	cat := loadSales(t)

	key := func(sql string) (string, bool) {
		k, ok := BatchKey(cat, parseQ(t, sql))
		return k, ok
	}

	// Conjunct order and the SELECT list must not affect the key.
	a, okA := key("SELECT SUM(qty) WHERE region = 'EU' AND qty >= 5")
	b, okB := key("SELECT COUNT(*), AVG(price) WHERE qty >= 5 AND region = 'EU'")
	if !okA || !okB {
		t.Fatalf("eligible queries rejected: okA=%v okB=%v", okA, okB)
	}
	if a != b {
		t.Errorf("permuted conjuncts produced different keys: %q vs %q", a, b)
	}

	// Different predicates must not coalesce.
	c, okC := key("SELECT SUM(qty) WHERE region = 'EU' AND qty >= 6")
	if !okC {
		t.Fatal("eligible query rejected")
	}
	if c == a {
		t.Errorf("distinct predicates share key %q", c)
	}

	// Semantically identical literals coalesce via code-space binding:
	// price < 10.505 and price < 10.51 bind to the same ceil code at
	// scale 2.
	d, _ := key("SELECT COUNT(*) WHERE price < 10.505")
	e, _ := key("SELECT COUNT(*) WHERE price < 10.51")
	if d != e {
		t.Errorf("equivalent literals keyed differently: %q vs %q", d, e)
	}

	// Unfiltered ungrouped queries share the all-rows class.
	f, okF := key("SELECT COUNT(*)")
	g, okG := key("SELECT MAX(price)")
	if !okF || !okG || f != g {
		t.Errorf("unfiltered queries: (%q,%v) vs (%q,%v)", f, okF, g, okG)
	}

	// Ineligible shapes.
	for _, sql := range []string{
		"SELECT COUNT(*) GROUP BY region",
		"EXPLAIN ANALYZE SELECT COUNT(*)",
		"SELECT COUNT(*) WHERE region IN ('EU','US')",
	} {
		if k, ok := key(sql); ok {
			t.Errorf("%q unexpectedly batch-eligible (key %q)", sql, k)
		}
	}
	if _, ok := BatchKey(cat, nil); ok {
		t.Error("nil query unexpectedly batch-eligible")
	}
}

func TestExecuteSharedMatchesSolo(t *testing.T) {
	cat := loadSales(t)
	sqls := []string{
		"SELECT SUM(qty), COUNT(*) WHERE region = 'EU' AND qty >= 5",
		"SELECT COUNT(*), MIN(price) WHERE qty >= 5 AND region = 'EU'",
		"SELECT AVG(price), MEDIAN(qty), QUANTILE(qty, 0.9) WHERE region = 'EU' AND qty >= 5",
		"SELECT SUM(qty) WHERE region = 'EU' AND qty >= 5",
	}
	qs := make([]*Query, len(sqls))
	for i, sql := range sqls {
		qs[i] = parseQ(t, sql)
	}

	out := ExecuteShared(context.Background(), cat, qs, ExecOptions{})
	if len(out) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(out), len(qs))
	}
	for i, sr := range out {
		if sr.Err != nil {
			t.Fatalf("shared member %d: %v", i, sr.Err)
		}
		solo, err := ExecuteContext(context.Background(), cat, qs[i], ExecOptions{})
		if err != nil {
			t.Fatalf("solo member %d: %v", i, err)
		}
		if !reflect.DeepEqual(sr.Res, solo) {
			t.Errorf("member %d: shared %+v != solo %+v", i, sr.Res, solo)
		}
	}
}

func TestExecuteSharedErrorIsolation(t *testing.T) {
	cat := loadSales(t)
	qs := []*Query{
		parseQ(t, "SELECT COUNT(*) WHERE qty >= 5"),
		parseQ(t, "SELECT SUM(nope) WHERE qty >= 5"),   // unknown column
		parseQ(t, "SELECT SUM(region) WHERE qty >= 5"), // SUM over string
		parseQ(t, "SELECT MAX(price) WHERE qty >= 5"),
	}
	out := ExecuteShared(context.Background(), cat, qs, ExecOptions{})
	if out[0].Err != nil || out[3].Err != nil {
		t.Fatalf("healthy members failed: %v / %v", out[0].Err, out[3].Err)
	}
	for _, i := range []int{1, 2} {
		var bad *BadQueryError
		if out[i].Err == nil || !errors.As(out[i].Err, &bad) {
			t.Errorf("member %d: want *BadQueryError, got %v", i, out[i].Err)
		}
		if out[i].Res != nil {
			t.Errorf("member %d: result alongside error", i)
		}
	}
}

func TestExecuteSharedClassMismatch(t *testing.T) {
	cat := loadSales(t)
	qs := []*Query{
		parseQ(t, "SELECT COUNT(*) WHERE qty >= 5"),
		parseQ(t, "SELECT COUNT(*) WHERE qty >= 6"), // different class
	}
	out := ExecuteShared(context.Background(), cat, qs, ExecOptions{})
	if out[0].Err != nil {
		t.Fatalf("leader failed: %v", out[0].Err)
	}
	var bad *BadQueryError
	if out[1].Err == nil || !errors.As(out[1].Err, &bad) {
		t.Errorf("mis-grouped member: want *BadQueryError, got %v", out[1].Err)
	}

	// A batch whose leader is ineligible fails every member.
	out = ExecuteShared(context.Background(), cat, []*Query{
		parseQ(t, "SELECT COUNT(*) GROUP BY region"),
	}, ExecOptions{})
	if out[0].Err == nil || !errors.As(out[0].Err, &bad) {
		t.Errorf("ineligible leader: want *BadQueryError, got %v", out[0].Err)
	}
}

func TestExecuteSharedCanceled(t *testing.T) {
	cat := loadSales(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := []*Query{
		parseQ(t, "SELECT SUM(qty) WHERE qty >= 5"),
		parseQ(t, "SELECT SUM(qty) WHERE qty >= 5"),
	}
	out := ExecuteShared(ctx, cat, qs, ExecOptions{})
	for i, sr := range out {
		if sr.Err == nil || !errors.Is(sr.Err, context.Canceled) {
			t.Errorf("member %d: want context.Canceled, got %v", i, sr.Err)
		}
	}
}

// TestExecuteSharedAmortizes pins the point of the whole layer: N queries
// of one batch class cost one WHERE binding and one kernel invocation per
// distinct aggregate, so the shared collector must record strictly fewer
// scans and touched words than N solo executions.
func TestExecuteSharedAmortizes(t *testing.T) {
	cat := loadSales(t)
	const n = 8
	sql := "SELECT SUM(qty), COUNT(*) WHERE region = 'EU' AND qty >= 5"

	solo := bpagg.NewStatsCollector()
	for i := 0; i < n; i++ {
		if _, err := ExecuteContext(context.Background(), cat, parseQ(t, sql), ExecOptions{Stats: solo}); err != nil {
			t.Fatal(err)
		}
	}
	soloStats := solo.Snapshot()

	shared := bpagg.NewStatsCollector()
	qs := make([]*Query, n)
	for i := range qs {
		qs[i] = parseQ(t, sql)
	}
	for i, sr := range ExecuteShared(context.Background(), cat, qs, ExecOptions{Stats: shared}) {
		if sr.Err != nil {
			t.Fatalf("member %d: %v", i, sr.Err)
		}
	}
	sharedStats := shared.Snapshot()

	if sharedStats.Scans == 0 || soloStats.Scans == 0 {
		t.Fatalf("stats not recorded: shared=%+v solo=%+v", sharedStats, soloStats)
	}
	if sharedStats.Scans*uint64(n) != soloStats.Scans {
		t.Errorf("shared Scans = %d, solo total = %d; want exactly 1/%d",
			sharedStats.Scans, soloStats.Scans, n)
	}
	if sharedStats.WordsTouched*uint64(n) != soloStats.WordsTouched {
		t.Errorf("shared WordsTouched = %d, solo total = %d; want exactly 1/%d",
			sharedStats.WordsTouched, soloStats.WordsTouched, n)
	}
	if sharedStats.Aggregates*uint64(n) != soloStats.Aggregates {
		t.Errorf("shared Aggregates = %d, solo total = %d; want exactly 1/%d",
			sharedStats.Aggregates, soloStats.Aggregates, n)
	}
}
