package sqlmini

import (
	"context"
	"fmt"
	"strings"

	"bpagg"
	"bpagg/internal/catalog"
)

// Fused routing: ungrouped queries whose WHERE conjuncts all translate to
// simple engine predicates run through a bpagg.Query instead of bindWhere,
// so the engine's planner can fuse each aggregate with the scans (no filter
// bitmap, all-match segments served from the per-segment aggregate caches).
// The translation is decided per conjunct; whenever any condition needs
// bitmap machinery (IN-lists) or any aggregate would not fuse (NULLs,
// mismatched window widths — WideWords now fuses, running the
// internal/wide fused twins), execution falls back to the
// bindWhere + bitmap path unchanged. ExecOptions.Auto only affects that
// fallback: fuse-eligible queries fuse regardless, Auto's bit-parallel
// vs reconstruction choice applying where a filter bitmap exists.

// boundPred is one WHERE conjunct translated into engine predicate space.
type boundPred struct {
	column string
	pred   bpagg.Predicate
}

// bindPreds translates the conjunctive condition list into engine
// predicates — the planner-level twin of bindWhere's literal translation
// (floor/ceil code semantics included). ok is false when a condition
// cannot be expressed as a simple predicate (IN-lists) or when the
// translation errors; callers then fall back to bindWhere, which reports
// the identical error. Conditions that statically match everything or
// nothing become predicates with the same semantics: "nothing" compares
// below code zero, so zone maps prune every segment without touching data.
func bindPreds(cat *catalog.Catalog, conds []Condition) ([]boundPred, bool) {
	out := make([]boundPred, 0, len(conds))
	for _, cond := range conds {
		switch cond.Op {
		case OpIn:
			return nil, false
		case OpBetween:
			lo, err := bindOnePred(cat, Condition{Column: cond.Column, Op: OpGe, Lits: cond.Lits[:1]})
			if err != nil {
				return nil, false
			}
			hi, err := bindOnePred(cat, Condition{Column: cond.Column, Op: OpLe, Lits: cond.Lits[1:2]})
			if err != nil {
				return nil, false
			}
			out = append(out, boundPred{cond.Column, lo}, boundPred{cond.Column, hi})
		default:
			p, err := bindOnePred(cat, cond)
			if err != nil {
				return nil, false
			}
			out = append(out, boundPred{cond.Column, p})
		}
	}
	return out, true
}

// bindOnePred translates a single-literal comparison, mirroring bindOne's
// case analysis exactly but producing a predicate instead of a bitmap.
func bindOnePred(cat *catalog.Catalog, cond Condition) (bpagg.Predicate, error) {
	// Consult the schema, not the table: sharded catalogs have no flat
	// table behind them.
	if cat.Spec(cond.Column) == nil {
		return bpagg.Predicate{}, fmt.Errorf("sql: unknown column %q", cond.Column)
	}
	lit := cond.Lits[0]
	if lit.IsString {
		code, ok, err := cat.StrToCode(cond.Column, lit.Str)
		if err != nil {
			return bpagg.Predicate{}, err
		}
		switch cond.Op {
		case OpEq:
			if !ok {
				return nonePred(), nil
			}
			return bpagg.Equal(code), nil
		case OpNe:
			if !ok {
				return allPred(cat, cond.Column)
			}
			return bpagg.NotEqual(code), nil
		default:
			return bpagg.Predicate{}, fmt.Errorf("sql: only = and != apply to string column %q", cond.Column)
		}
	}

	cr, err := cat.NumToCode(cond.Column, lit.Num)
	if err != nil {
		return bpagg.Predicate{}, err
	}
	switch cond.Op {
	case OpEq:
		if cr.Below || cr.Above || !cr.Exact {
			return nonePred(), nil
		}
		return bpagg.Equal(cr.Floor), nil
	case OpNe:
		if cr.Below || cr.Above || !cr.Exact {
			return allPred(cat, cond.Column)
		}
		return bpagg.NotEqual(cr.Floor), nil
	case OpLt:
		if cr.Below {
			return nonePred(), nil
		}
		if cr.Above {
			return allPred(cat, cond.Column)
		}
		return bpagg.Less(cr.Ceil), nil
	case OpLe:
		if cr.Below {
			return nonePred(), nil
		}
		if cr.Above {
			return allPred(cat, cond.Column)
		}
		return bpagg.LessEq(cr.Floor), nil
	case OpGt:
		if cr.Above {
			return nonePred(), nil
		}
		if cr.Below {
			return allPred(cat, cond.Column)
		}
		return bpagg.Greater(cr.Floor), nil
	case OpGe:
		if cr.Above {
			return nonePred(), nil
		}
		if cr.Below {
			return allPred(cat, cond.Column)
		}
		return bpagg.GreaterEq(cr.Ceil), nil
	}
	return bpagg.Predicate{}, fmt.Errorf("sql: unsupported operator %d", int(cond.Op))
}

// nonePred selects no rows: every code is >= 0, so zone maps prune every
// segment.
func nonePred() bpagg.Predicate { return bpagg.Less(0) }

// allPred selects every row — the predicate form of allNonNull.
func allPred(cat *catalog.Catalog, name string) (bpagg.Predicate, error) {
	max, err := cat.MaxCode(name)
	if err != nil {
		return bpagg.Predicate{}, err
	}
	return bpagg.LessEq(max), nil
}

// buildFusedQuery assembles the engine query for the translated conjuncts,
// directing its stats into the given collector (nil for none).
func buildFusedQuery(cat *catalog.Catalog, bps []boundPred, o ExecOptions, stats *bpagg.StatsCollector) (*bpagg.Query, error) {
	bq := cat.Table.Query()
	if o.Threads > 1 {
		bq.With(bpagg.Parallel(o.Threads))
	}
	if o.Wide {
		bq.With(bpagg.WideWords())
	}
	// Auto is deliberately NOT applied here: Auto delegates the access-path
	// choice to the planner, and for a fuse-eligible query the fused
	// pipeline is that choice. Ineligible queries fall back to the legacy
	// path, where Auto picks bit-parallel vs reconstruction as before.
	bq.WithStatsInto(stats)
	for _, bp := range bps {
		if _, err := bq.WhereErr(bp.column, bp.pred); err != nil {
			return nil, err
		}
	}
	return bq, nil
}

// queryFusesAll reports whether every SELECT expression would run the
// fused scan→aggregate path on bq. The check never executes anything, so
// a false answer leaves the legacy path's statistics untouched.
func queryFusesAll(bq *bpagg.Query, sels []SelectExpr) bool {
	for _, s := range sels {
		col := s.Column
		if s.Func == CountStar {
			col = ""
		}
		if !bq.Fused(col) {
			return false
		}
	}
	return true
}

// tryFusedRow attempts the fused execution path for an ungrouped query.
// ok is false when the query does not qualify — the caller then runs the
// legacy bitmap path, which also reproduces any binding error.
func tryFusedRow(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions) ([]string, bool, error) {
	bps, ok := bindPreds(cat, q.Where)
	if !ok || len(bps) == 0 {
		return nil, false, nil
	}
	bq, err := buildFusedQuery(cat, bps, o, o.Stats)
	if err != nil {
		return nil, false, nil
	}
	if !queryFusesAll(bq, q.Selects) {
		return nil, false, nil
	}
	row, err := aggregateRowQuery(ctx, cat, q.Selects, bq)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// aggregateRowQuery renders one result row through the fused Query API —
// the fused twin of aggregateRow. SUM and AVG use the one-pass SUM+COUNT
// kernel so formatting never needs a second scan.
func aggregateRowQuery(ctx context.Context, cat *catalog.Catalog, sels []SelectExpr, bq *bpagg.Query) ([]string, error) {
	row := make([]string, len(sels))
	for i, s := range sels {
		switch s.Func {
		case CountStar:
			cnt, err := bq.CountRowsContext(ctx)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Count:
			cnt, err := bq.CountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Sum:
			sum, cnt, err := bq.SumCountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = cat.FormatSum(s.Column, sum, cnt)
		case Avg:
			sum, cnt, err := bq.SumCountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = cat.FormatAvg(s.Column, sum, cnt)
		case Min:
			v, ok, err := bq.MinContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Max:
			v, ok, err := bq.MaxContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Median:
			v, ok, err := bq.MedianContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Quantile:
			v, ok, err := bq.QuantileContext(ctx, s.Column, s.Arg)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		default:
			return nil, fmt.Errorf("sql: unsupported aggregate %v", s.Func)
		}
	}
	return row, nil
}

// fusedDetail renders the scan+agg plan node's description: the aggregate
// list plus the fused predicate conjunction.
func fusedDetail(q *Query) string {
	if len(q.Where) == 0 {
		return selectList(q)
	}
	conds := make([]string, len(q.Where))
	for i, c := range q.Where {
		conds[i] = c.String()
	}
	return selectList(q) + " where " + strings.Join(conds, " AND ")
}
