package sqlmini

import "fmt"

// BadQueryError marks failures caused by the query text itself — unknown
// columns, aggregates that do not apply to the column's type, arguments
// outside their domain. The request, not the engine, is at fault, so
// serving layers map it to a client error (HTTP 400) with errors.As;
// everything else that comes out of execution is either a typed engine
// error (*bpagg.OverflowError, *bpagg.PanicError, context errors) or an
// internal failure.
type BadQueryError struct {
	Msg string
}

// Error implements the error interface.
func (e *BadQueryError) Error() string { return e.Msg }

// badf builds a *BadQueryError, mirroring fmt.Errorf.
func badf(format string, a ...any) error {
	return &BadQueryError{Msg: fmt.Sprintf(format, a...)}
}

// badQuery rewraps an error (typically a catalog binding failure over a
// user-supplied literal or column name) as a *BadQueryError, preserving
// its message.
func badQuery(err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*BadQueryError); ok {
		return err
	}
	return &BadQueryError{Msg: err.Error()}
}
