package sqlmini

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bpagg/internal/catalog"
)

// Shared-scan execution: the multi-query sharing layer under bpaggd's
// batching. Concurrent queries whose WHERE clauses bind to the same
// predicate conjunction form one batch class; the class executes as ONE
// traversal — the selection is materialized once and every distinct
// aggregate across the batch runs once against it — instead of N
// independent scan+aggregate passes. This is the cross-query form of the
// paper's intra-query amortization (tpchQ01_GPU answers NUM_AGGRS
// aggregates per pass; here N queries' aggregates share a pass), and the
// ExecStats of the shared collector prove it: one batch records one scan
// and one driver invocation per distinct aggregate, however many queries
// rode along.

// BatchKey returns the canonical shared-scan class of a query: two
// queries with equal keys select exactly the same rows, so their
// aggregates can be answered from one shared selection. The key is built
// from the *bound* predicates (literals translated to code space with
// the floor/ceil semantics of bindWhere), so textually different but
// semantically identical literals coalesce, and conjunct order never
// matters. ok is false when the query is not batch-eligible: grouped
// queries, EXPLAIN, and WHERE clauses that need bitmap machinery
// (IN-lists) or fail to bind.
func BatchKey(cat *catalog.Catalog, q *Query) (string, bool) {
	if q == nil || q.Explain || len(q.GroupBy) != 0 {
		return "", false
	}
	// Sharded catalogs are not batch-eligible: the shared selection is a
	// flat-table bitmap, and the partitioned store has no global row
	// numbering to build one against. Sharded queries execute (and prune)
	// individually through executeSharded instead.
	if cat.Sharded != nil {
		return "", false
	}
	// rownum-restricted queries are not batch-eligible either: the shared
	// selection ignores row position, and they answer in O(1) from the
	// range index individually, so batching buys nothing. bindPreds would
	// reject the pseudo-column anyway; the gate is explicit for clarity.
	if rng, _, err := splitRownum(cat, q.Where); err != nil || rng != nil {
		return "", false
	}
	bps, ok := bindPreds(cat, q.Where)
	if !ok {
		return "", false
	}
	if len(bps) == 0 {
		// No WHERE: every unfiltered ungrouped query shares the all-rows
		// selection.
		return "*", true
	}
	parts := make([]string, len(bps))
	for i, bp := range bps {
		parts[i] = bp.column + " " + bp.pred.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND "), true
}

// SharedResult is one query's outcome within a shared batch. Err is
// per-query: a cell that fails (overflow on one aggregate, an unknown
// column in one SELECT list) fails only the queries that asked for it,
// while batch-wide failures (selection binding, cancellation) fail every
// entry.
type SharedResult struct {
	Res *Result
	Err error
}

// ExecuteShared runs a batch of ungrouped queries belonging to one
// BatchKey class against a single shared selection. The WHERE
// conjunction is bound once (one scan pass, charged once to o.Stats) and
// result cells are memoized by aggregate label, so N queries asking
// SUM(price) pay for one SUM kernel invocation. Queries whose own key
// differs from the batch's (a caller bug) fail individually rather than
// corrupting their neighbors' results.
//
// Like ExecuteContext, this is a trust boundary: malformed queries
// return errors, and any panic escaping the engine is recovered so one
// bad batch member cannot take down a serving process.
func ExecuteShared(ctx context.Context, cat *catalog.Catalog, qs []*Query, o ExecOptions) (out []SharedResult) {
	out = make([]SharedResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("sql: internal error executing shared batch: %v", r)
			for i := range out {
				if out[i].Res == nil && out[i].Err == nil {
					out[i].Err = err
				}
			}
		}
	}()

	key0, ok := BatchKey(cat, qs[0])
	if !ok {
		err := badf("sql: query is not batch-eligible")
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	// Defense in depth against mis-grouped batches: a member whose bound
	// WHERE differs from the class leader's must not be answered from the
	// leader's selection.
	for i, q := range qs[1:] {
		if k, ok := BatchKey(cat, q); !ok || k != key0 {
			out[i+1].Err = badf("sql: query does not belong to shared batch class %q", key0)
		}
	}

	sel, err := bindWhere(cat, qs[0].Where, o.Stats)
	if err != nil {
		for i := range out {
			if out[i].Err == nil {
				out[i].Err = err
			}
		}
		return out
	}

	type cell struct {
		val string
		err error
	}
	memo := map[string]cell{}
	for i, q := range qs {
		if out[i].Err != nil {
			continue
		}
		if err := validateSelects(cat, q); err != nil {
			out[i].Err = err
			continue
		}
		row := make([]string, len(q.Selects))
		var qerr error
		for j, s := range q.Selects {
			label := s.Label()
			c, ok := memo[label]
			if !ok {
				v, err := computeCell(ctx, cat, s, sel, o)
				c = cell{val: v, err: err}
				memo[label] = c
			}
			if c.err != nil {
				qerr = c.err
				break
			}
			row[j] = c.val
		}
		if qerr != nil {
			out[i].Err = qerr
			continue
		}
		out[i].Res = &Result{Headers: headers(q, false), Rows: [][]string{row}}
	}
	return out
}
