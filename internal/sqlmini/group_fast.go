package sqlmini

import (
	"context"
	"fmt"
	"strings"

	"bpagg"
	"bpagg/internal/catalog"
)

// Single-pass GROUP BY routing: grouped queries whose WHERE conjuncts
// all translate to simple engine predicates run through
// bpagg.Query.GroupByContext, which partitions the filter across every
// group key in one traversal of the grouping column and answers
// SUM/MIN/MAX for all groups with the banked kernels (DESIGN.md §12).
// Whenever any condition needs bitmap machinery (IN-lists), the
// grouping column has NULLs, WideWords is requested, or the dictionary
// cardinality exceeds the engine's single-pass ceiling, execution falls
// back to the groupSelections walk + per-group aggregateRow path
// unchanged.

// groupSinglePassEligible reproduces the engine's single-pass gate at
// plan time so the executor and EXPLAIN route identically. The
// catalog's dictionary bounds make the check complete: the product of
// (max code + 1) over the grouping columns caps the runtime composite
// cardinality, so product ≤ MaxSinglePassGroups means the engine's
// cardinality fallback cannot trigger and a true answer here guarantees
// the single-pass path (direct tier for one ≤10-bit column, hash tier
// otherwise).
func groupSinglePassEligible(cat *catalog.Catalog, q *Query, o ExecOptions) ([]boundPred, bool) {
	if len(q.GroupBy) == 0 || o.Wide {
		return nil, false
	}
	bps, ok := bindPreds(cat, q.Where)
	if !ok {
		return nil, false
	}
	totalBits := 0
	card := uint64(1)
	for _, name := range q.GroupBy {
		if cat.Spec(name) == nil {
			return nil, false // the legacy path reports the unknown-column error
		}
		gcol := cat.Table.Column(name)
		if gcol == nil || gcol.NullCount() > 0 {
			return nil, false
		}
		totalBits += gcol.BitWidth()
		max, err := cat.MaxCode(name)
		if err != nil || max >= bpagg.MaxSinglePassGroups ||
			card > bpagg.MaxSinglePassGroups/(max+1) {
			return nil, false
		}
		card *= max + 1
	}
	if totalBits > 64 {
		return nil, false // composite key would not pack into one word
	}
	return bps, true
}

// tryGroupedRows attempts the single-pass grouped execution path. ok is
// false when the query does not qualify — the caller then runs the
// legacy walk, which also reproduces any binding error.
func tryGroupedRows(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions) ([][]string, bool, error) {
	bps, ok := groupSinglePassEligible(cat, q, o)
	if !ok {
		return nil, false, nil
	}
	bq, err := buildFusedQuery(cat, bps, o, o.Stats)
	if err != nil {
		return nil, false, nil
	}
	g, err := bq.GroupByContext(ctx, q.GroupBy...)
	if err != nil {
		return nil, false, err
	}
	rows, err := groupedRows(ctx, cat, q, g, o)
	if err != nil {
		return nil, false, err
	}
	return rows, true, nil
}

// groupedRows renders the grouped result through the Grouped API — the
// grouped twin of aggregateRow. Bulk per-group methods serve whole
// columns of the result at once (banked single-pass kernels when the
// measure column qualifies); NULL-bearing measure columns take the
// per-group Column calls so NULL semantics (all-NULL groups render
// NULL) match the legacy path exactly.
func groupedRows(ctx context.Context, cat *catalog.Catalog, q *Query, g *bpagg.Grouped, o ExecOptions) ([][]string, error) {
	counts, err := g.CountContext(ctx)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, g.Len())
	for i := range rows {
		rows[i] = make([]string, 0, len(q.Selects)+len(q.GroupBy))
		for j, part := range g.KeyParts(i) {
			rows[i] = append(rows[i], cat.FormatValue(q.GroupBy[j], part))
		}
	}
	for _, s := range q.Selects {
		cells, err := groupedCells(ctx, cat, g, s, counts, o.opts())
		if err != nil {
			return nil, err
		}
		for i := range rows {
			rows[i] = append(rows[i], cells[i])
		}
	}
	return rows, nil
}

func groupedCells(ctx context.Context, cat *catalog.Catalog, g *bpagg.Grouped,
	s SelectExpr, counts []uint64, opts []bpagg.ExecOption) ([]string, error) {
	out := make([]string, g.Len())
	if s.Func == CountStar {
		for i := range out {
			out[i] = fmt.Sprintf("%d", counts[i])
		}
		return out, nil
	}
	col := cat.Table.Column(s.Column)
	nullFree := col.NullCount() == 0
	nonNull := func(i int) uint64 {
		if nullFree {
			return counts[i]
		}
		return col.Count(g.Selection(i))
	}
	switch s.Func {
	case Count:
		for i := range out {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = fmt.Sprintf("%d", nonNull(i))
		}
	case Sum, Avg:
		sums, err := g.SumContext(ctx, s.Column)
		if err != nil {
			return nil, err
		}
		for i := range out {
			if s.Func == Sum {
				out[i] = cat.FormatSum(s.Column, sums[i], nonNull(i))
			} else {
				out[i] = cat.FormatAvg(s.Column, sums[i], nonNull(i))
			}
		}
	case Min, Max:
		if nullFree {
			var vals []uint64
			var err error
			if s.Func == Min {
				vals, err = g.MinContext(ctx, s.Column)
			} else {
				vals, err = g.MaxContext(ctx, s.Column)
			}
			if err != nil {
				return nil, err
			}
			for i, v := range vals {
				out[i] = cat.FormatValue(s.Column, v)
			}
			break
		}
		for i := range out {
			var v uint64
			var ok bool
			var err error
			if s.Func == Min {
				v, ok, err = col.MinContext(ctx, g.Selection(i), opts...)
			} else {
				v, ok, err = col.MaxContext(ctx, g.Selection(i), opts...)
			}
			if err != nil {
				return nil, err
			}
			out[i] = formatOpt(cat, s.Column, v, ok)
		}
	case Median:
		for i := range out {
			v, ok, err := col.MedianContext(ctx, g.Selection(i), opts...)
			if err != nil {
				return nil, err
			}
			out[i] = formatOpt(cat, s.Column, v, ok)
		}
	case Quantile:
		for i := range out {
			v, ok, err := col.QuantileContext(ctx, g.Selection(i), s.Arg, opts...)
			if err != nil {
				return nil, err
			}
			out[i] = formatOpt(cat, s.Column, v, ok)
		}
	default:
		return nil, fmt.Errorf("sql: unsupported aggregate %v", s.Func)
	}
	return out, nil
}

// groupFastDetail renders the single-pass plan node's description: the
// aggregate list, the grouping columns, and the predicate conjunction.
func groupFastDetail(q *Query) string {
	d := selectList(q) + " by " + strings.Join(q.GroupBy, ", ")
	if len(q.Where) == 0 {
		return d
	}
	conds := make([]string, len(q.Where))
	for i, c := range q.Where {
		conds[i] = c.String()
	}
	return d + " where " + strings.Join(conds, " AND ")
}
