package sqlmini

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bpagg"
	"bpagg/internal/catalog"
)

// loadSalesSharded builds the sales fixture twice: the flat catalog and a
// sharded twin at the given shard size.
func loadSalesSharded(t *testing.T, shardRows int) (flat, sharded *catalog.Catalog) {
	t.Helper()
	flat = loadSales(t)
	sharded = loadSales(t)
	sharded.Shard(shardRows)
	if sharded.Sharded == nil || sharded.Table != nil {
		t.Fatal("Shard did not convert the catalog")
	}
	return flat, sharded
}

// bigSalesCSV generates a larger fixture so shard pruning and grouped
// merges see multiple sealed shards.
func bigSalesCatalogs(t *testing.T, rows, shardRows int) (flat, sharded *catalog.Catalog) {
	t.Helper()
	specs, err := catalog.ParseSchema(salesSchema)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"EU", "US", "APAC", "LATAM"}
	rng := rand.New(rand.NewSource(99))
	var b strings.Builder
	b.WriteString("price,qty,delta,region\n")
	for i := 0; i < rows; i++ {
		if rng.Intn(23) == 0 { // empty qty cell → NULL
			fmt.Fprintf(&b, "%d.%02d,,%d,%s\n", rng.Intn(900), rng.Intn(100), rng.Intn(101)-50, regions[rng.Intn(4)])
		} else {
			fmt.Fprintf(&b, "%d.%02d,%d,%d,%s\n", rng.Intn(900), rng.Intn(100), rng.Intn(64), rng.Intn(101)-50, regions[rng.Intn(4)])
		}
	}
	csv := b.String()
	flat, err = catalog.LoadCSV(strings.NewReader(csv), specs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err = catalog.LoadCSV(strings.NewReader(csv), specs)
	if err != nil {
		t.Fatal(err)
	}
	sharded.Shard(shardRows)
	return flat, sharded
}

// shardedQueries is the differential battery: every SQL feature the
// sharded executor routes — plain aggregates, floor/ceil literal
// binding, strings, IN-lists, BETWEEN, GROUP BY with all aggregate
// kinds, NULL measures — must produce cell-identical results on the flat
// and sharded catalogs.
var shardedQueries = []string{
	"SELECT COUNT(*), SUM(qty), MIN(price), MAX(price), MEDIAN(qty), AVG(delta)",
	"SELECT COUNT(qty), QUANTILE(price, 0.9)",
	"SELECT COUNT(*), SUM(price) WHERE region = 'EU' AND qty >= 5",
	"SELECT COUNT(*) WHERE price < 10.505",
	"SELECT COUNT(*) WHERE price BETWEEN 10 AND 100",
	"SELECT SUM(qty) WHERE region IN ('EU', 'US')",
	"SELECT COUNT(*) WHERE region != 'EU'",
	"SELECT SUM(qty) WHERE delta > -1000",
	"SELECT COUNT(*) WHERE qty = 1000000",
	"SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(price), MEDIAN(price) GROUP BY region",
	"SELECT COUNT(qty), QUANTILE(qty, 0.25) WHERE price > 50 GROUP BY region",
	"SELECT COUNT(*) WHERE region IN ('EU') GROUP BY region",
}

func resultsEqual(a, b *Result) bool {
	return reflect.DeepEqual(a.Headers, b.Headers) && reflect.DeepEqual(a.Rows, b.Rows)
}

func TestShardedExecMatchesFlat(t *testing.T) {
	type fixture struct {
		name          string
		flat, sharded *catalog.Catalog
	}
	small, smallSharded := loadSalesSharded(t, 2)
	bigFlat, bigSharded := bigSalesCatalogs(t, 500, 77)
	for _, fx := range []fixture{
		{"small/shard2", small, smallSharded},
		{"big/shard77", bigFlat, bigSharded},
	} {
		for _, sql := range shardedQueries {
			for _, threads := range []int{1, 8} {
				q, err := Parse(sql)
				if err != nil {
					t.Fatalf("parse %q: %v", sql, err)
				}
				o := ExecOptions{Threads: threads}
				want, err := Execute(fx.flat, q, o)
				if err != nil {
					t.Fatalf("%s flat %q: %v", fx.name, sql, err)
				}
				got, err := Execute(fx.sharded, q, o)
				if err != nil {
					t.Fatalf("%s sharded %q: %v", fx.name, sql, err)
				}
				if !resultsEqual(want, got) {
					t.Fatalf("%s threads=%d %q diverged:\nflat:    %v\nsharded: %v",
						fx.name, threads, sql, want.Rows, got.Rows)
				}
			}
		}
	}
}

func TestShardedExecErrors(t *testing.T) {
	_, sharded := loadSalesSharded(t, 2)
	for _, sql := range []string{
		"SELECT COUNT(nope)",
		"SELECT SUM(region)",
		"SELECT COUNT(*) WHERE nope = 1",
		"SELECT COUNT(*) WHERE price < 'EU'",
		"SELECT COUNT(*) GROUP BY nope",
	} {
		q, err := Parse(sql)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Execute(sharded, q, ExecOptions{}); err == nil {
			t.Errorf("%q executed on sharded catalog without error", sql)
		}
	}
}

// Engine errors from sharded execution must keep their type: a deadline
// is not the client's fault, so it must surface as a context error, not
// *BadQueryError (the server maps the former to 504 and the latter to
// 400). Unknown grouping columns, by contrast, are the query's fault.
func TestShardedErrorClassification(t *testing.T) {
	_, sharded := bigSalesCatalogs(t, 2000, 77)
	q, err := Parse("SELECT MEDIAN(price) GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ExecuteContext(ctx, sharded, q, ExecOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sharded GROUP BY returned %v (%T), want context.Canceled", err, err)
	}
	var bad *BadQueryError
	if errors.As(err, &bad) {
		t.Fatalf("context error misclassified as BadQueryError: %v", err)
	}

	q, err = Parse("SELECT COUNT(*) GROUP BY nope")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(sharded, q, ExecOptions{})
	if !errors.As(err, &bad) {
		t.Fatalf("unknown GROUP BY column returned %v (%T), want *BadQueryError", err, err)
	}
}

// Sharded catalogs must decline shared-scan batching — ExecuteShared's
// selection is a flat-table bitmap — and fail cleanly (no panic) if a
// batch reaches them anyway.
func TestShardedNotBatchEligible(t *testing.T) {
	_, sharded := loadSalesSharded(t, 2)
	q, err := Parse("SELECT SUM(qty) WHERE qty < 24")
	if err != nil {
		t.Fatal(err)
	}
	if key, ok := BatchKey(sharded, q); ok {
		t.Fatalf("sharded catalog reported batch-eligible (key %q)", key)
	}
	res := ExecuteShared(context.Background(), sharded, []*Query{q}, ExecOptions{})
	if res[0].Err == nil {
		t.Fatal("ExecuteShared on a sharded catalog returned no error")
	}
}

func TestShardedExplainAnalyze(t *testing.T) {
	_, sharded := bigSalesCatalogs(t, 500, 77)
	q, err := Parse("EXPLAIN ANALYZE SELECT SUM(qty) WHERE qty >= 5")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExplainAnalyze(sharded, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan := strings.Join(ex.Lines(true), "\n")
	if !strings.Contains(plan, "shard scan+agg") {
		t.Fatalf("plan missing shard stage:\n%s", plan)
	}
	if !strings.Contains(plan, "shards_scanned=") || !strings.Contains(plan, "shards_pruned=") {
		t.Fatalf("plan missing shard counters:\n%s", plan)
	}
	node := ex.Root.Children[0]
	if node.Stats.ShardsScanned == 0 {
		t.Fatalf("shard stage recorded no scanned shards: %+v", node.Stats)
	}

	// Grouped twin.
	q, err = Parse("EXPLAIN ANALYZE SELECT COUNT(*) GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	ex, err = ExplainAnalyze(sharded, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan = strings.Join(ex.Lines(true), "\n")
	if !strings.Contains(plan, "shard group+agg") || !strings.Contains(plan, "shards_scanned=") {
		t.Fatalf("grouped plan missing shard stage:\n%s", plan)
	}
}

func TestShardedCatalogPersistRoundTrip(t *testing.T) {
	_, sharded := loadSalesSharded(t, 2)
	var buf bytes.Buffer
	if _, err := sharded.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := catalog.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sharded == nil {
		t.Fatal("restored catalog is not sharded")
	}
	if got.Sharded.NumShards() != sharded.Sharded.NumShards() {
		t.Fatalf("shards %d != %d", got.Sharded.NumShards(), sharded.Sharded.NumShards())
	}
	for _, sql := range shardedQueries {
		q, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Execute(sharded, q, ExecOptions{})
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		res, err := Execute(got, q, ExecOptions{})
		if err != nil {
			t.Fatalf("%q on restored catalog: %v", sql, err)
		}
		if !resultsEqual(want, res) {
			t.Fatalf("%q diverged after persist round-trip", sql)
		}
	}
	// bpagg.In with sharded stores backs the IN-list path; make sure stats
	// flow end to end as well.
	q, _ := Parse("SELECT COUNT(*) WHERE region IN ('EU', 'US')")
	rec := bpagg.NewStatsCollector()
	if _, err := Execute(got, q, ExecOptions{Stats: rec}); err != nil {
		t.Fatal(err)
	}
	if s := rec.Snapshot(); s.ShardsScanned == 0 && s.ShardsPruned == 0 {
		t.Fatalf("sharded execution recorded no shard counters: %+v", s)
	}
}
