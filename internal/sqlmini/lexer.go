// Package sqlmini implements the aggregate-query subset of SQL that the
// paper's setting reduces every query to (§III, after WideTable [11]):
// conjunctive predicates over single columns of a denormalized wide table,
// followed by aggregation, optionally grouped by one column.
//
//	SELECT SUM(price), MEDIAN(qty), COUNT(*)
//	WHERE qty < 24 AND region = 'EU' AND price BETWEEN 10.5 AND 99.9
//	GROUP BY region
//
// Supported aggregates: COUNT(*), COUNT(col), SUM, AVG, MIN, MAX, MEDIAN,
// QUANTILE(col, q). Predicate operators: =, !=/<>, <, <=, >, >=,
// BETWEEN ... AND ..., IN (...). An optional FROM clause is accepted and
// ignored (the engine queries one table at a time).
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifier (original case), number text, string contents, or symbol
	pos  int    // byte offset in the input, for error messages
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d == '.' {
					if seenDot {
						break
					}
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'' || c == '"':
			quote := c
			i++
			start := i
			for i < n && input[i] != quote {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start-1)
			}
			toks = append(toks, token{tokString, input[start:i], start})
			i++
		case c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < n && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				i++
			}
			toks = append(toks, token{tokSymbol, input[start:i], start})
		case strings.IndexByte("=(),*-", c) >= 0:
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
