package sqlmini

import (
	"strings"
	"testing"

	"bpagg/internal/catalog"
)

const salesSchema = "price:decimal(2,1000):vbp, qty:uint(6):hbp, delta:int(-50,50), region:string"

const salesCSV = `price,qty,delta,region
10.50,5,-20,EU
99.99,24,0,US
0.01,1,10,EU
500.00,50,-50,APAC
25.25,3,50,US
10.50,10,5,EU
`

func loadSales(t *testing.T) *catalog.Catalog {
	t.Helper()
	specs, err := catalog.ParseSchema(salesSchema)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.LoadCSV(strings.NewReader(salesCSV), specs)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func run(t *testing.T, cat *catalog.Catalog, sql string) *Result {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := Execute(cat, q, ExecOptions{})
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return res
}

func TestExecuteUngrouped(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT COUNT(*), SUM(qty), MIN(price), MAX(price), MEDIAN(qty), AVG(delta)")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	// qty: 5+24+1+50+3+10 = 93; price min 0.01 max 500.00;
	// qty sorted {1,3,5,10,24,50} lower median = 5;
	// delta: -20+0+10-50+50+5 = -5, avg -0.8333.
	want := []string{"6", "93", "0.01", "500.00", "5", "-0.8333"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("col %d (%s) = %q, want %q", i, res.Headers[i], row[i], w)
		}
	}
}

func TestExecuteWhere(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT COUNT(*), SUM(price) WHERE region = 'EU' AND qty >= 5")
	// EU rows with qty>=5: (10.50,5) and (10.50,10) -> count 2, sum 21.00.
	if res.Rows[0][0] != "2" || res.Rows[0][1] != "21.00" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestExecuteFractionalLiteralSemantics(t *testing.T) {
	cat := loadSales(t)
	// 10.505 is not representable at scale 2: price < 10.505 must include
	// both 10.50 rows and 0.01, excluding 25.25.
	res := run(t, cat, "SELECT COUNT(*) WHERE price < 10.505")
	if res.Rows[0][0] != "3" {
		t.Errorf("price < 10.505 count = %q", res.Rows[0][0])
	}
	res = run(t, cat, "SELECT COUNT(*) WHERE price <= 10.50")
	if res.Rows[0][0] != "3" {
		t.Errorf("price <= 10.50 count = %q", res.Rows[0][0])
	}
	res = run(t, cat, "SELECT COUNT(*) WHERE price > 10.505")
	if res.Rows[0][0] != "3" {
		t.Errorf("price > 10.505 count = %q", res.Rows[0][0])
	}
	// Equality with an unrepresentable literal matches nothing.
	res = run(t, cat, "SELECT COUNT(*) WHERE price = 10.505")
	if res.Rows[0][0] != "0" {
		t.Errorf("price = 10.505 count = %q", res.Rows[0][0])
	}
	// ... and != matches every non-NULL row.
	res = run(t, cat, "SELECT COUNT(*) WHERE price != 10.505")
	if res.Rows[0][0] != "6" {
		t.Errorf("price != 10.505 count = %q", res.Rows[0][0])
	}
}

func TestExecuteOutOfDomainLiterals(t *testing.T) {
	cat := loadSales(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT COUNT(*) WHERE price < 99999", "6"},
		{"SELECT COUNT(*) WHERE price > 99999", "0"},
		{"SELECT COUNT(*) WHERE price >= -5", "6"},
		{"SELECT COUNT(*) WHERE price < -5", "0"},
		{"SELECT COUNT(*) WHERE delta <= -50", "1"},
		{"SELECT COUNT(*) WHERE delta > 49", "1"},
		{"SELECT COUNT(*) WHERE delta BETWEEN -100 AND 100", "6"},
	}
	for _, c := range cases {
		res := run(t, cat, c.sql)
		if res.Rows[0][0] != c.want {
			t.Errorf("%s = %q, want %q", c.sql, res.Rows[0][0], c.want)
		}
	}
}

func TestExecuteInAndBetween(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT COUNT(*) WHERE qty IN (5, 50, 63)")
	if res.Rows[0][0] != "2" {
		t.Errorf("IN count = %q", res.Rows[0][0])
	}
	res = run(t, cat, "SELECT SUM(qty) WHERE qty BETWEEN 3 AND 10")
	if res.Rows[0][0] != "18" { // 5+3+10
		t.Errorf("BETWEEN sum = %q", res.Rows[0][0])
	}
}

func TestExecuteGroupBy(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT COUNT(*), SUM(qty), MAX(price) GROUP BY region")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Keys ascend in dictionary order: APAC, EU, US.
	wantRows := [][]string{
		{"APAC", "1", "50", "500.00"},
		{"EU", "3", "16", "10.50"},
		{"US", "2", "27", "99.99"},
	}
	for i, want := range wantRows {
		for j, w := range want {
			if res.Rows[i][j] != w {
				t.Errorf("group row %d col %d = %q, want %q", i, j, res.Rows[i][j], w)
			}
		}
	}
	if res.Headers[0] != "region" || res.Headers[1] != "count(*)" {
		t.Errorf("headers = %v", res.Headers)
	}
}

func TestExecuteGroupByMultiColumn(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT COUNT(*), SUM(qty) GROUP BY region, price")
	// Distinct (region, price) pairs ascending: APAC/500.00, EU/0.01,
	// EU/10.50 (two rows), US/25.25, US/99.99.
	wantRows := [][]string{
		{"APAC", "500.00", "1", "50"},
		{"EU", "0.01", "1", "1"},
		{"EU", "10.50", "2", "15"},
		{"US", "25.25", "1", "3"},
		{"US", "99.99", "1", "24"},
	}
	if len(res.Rows) != len(wantRows) {
		t.Fatalf("groups = %d: %v", len(res.Rows), res.Rows)
	}
	for i, want := range wantRows {
		for j, w := range want {
			if res.Rows[i][j] != w {
				t.Errorf("group row %d col %d = %q, want %q", i, j, res.Rows[i][j], w)
			}
		}
	}
	if res.Headers[0] != "region" || res.Headers[1] != "price" || res.Headers[2] != "count(*)" {
		t.Errorf("headers = %v", res.Headers)
	}

	// The legacy route (forced by an IN-list predicate, which never binds
	// to a simple engine predicate) must produce identical rows.
	legacy := run(t, cat, "SELECT COUNT(*), SUM(qty) WHERE qty IN (1, 3, 5, 10, 24, 50) GROUP BY region, price")
	if len(legacy.Rows) != len(res.Rows) {
		t.Fatalf("legacy groups = %d, single-pass %d", len(legacy.Rows), len(res.Rows))
	}
	for i := range legacy.Rows {
		for j := range legacy.Rows[i] {
			if legacy.Rows[i][j] != res.Rows[i][j] {
				t.Errorf("legacy row %d col %d = %q, single-pass %q", i, j, legacy.Rows[i][j], res.Rows[i][j])
			}
		}
	}
}

func TestExecuteGroupByWithWhere(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT SUM(qty) WHERE price < 50 GROUP BY region")
	// price<50: EU rows (qty 5,1,10), US row (qty 3). APAC filtered out.
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0] != "EU" || res.Rows[0][1] != "16" {
		t.Errorf("EU row = %v", res.Rows[0])
	}
	if res.Rows[1][0] != "US" || res.Rows[1][1] != "3" {
		t.Errorf("US row = %v", res.Rows[1])
	}
}

func TestExecuteQuantile(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT QUANTILE(qty, 0.5), QUANTILE(qty, 1)")
	if res.Rows[0][0] != "5" || res.Rows[0][1] != "50" {
		t.Errorf("quantiles = %v", res.Rows[0])
	}
}

func TestExecuteStringPredicates(t *testing.T) {
	cat := loadSales(t)
	res := run(t, cat, "SELECT COUNT(*) WHERE region != 'EU'")
	if res.Rows[0][0] != "3" {
		t.Errorf("!= EU count = %q", res.Rows[0][0])
	}
	res = run(t, cat, "SELECT COUNT(*) WHERE region = 'MARS'")
	if res.Rows[0][0] != "0" {
		t.Errorf("= MARS count = %q", res.Rows[0][0])
	}
	res = run(t, cat, "SELECT COUNT(*) WHERE region != 'MARS'")
	if res.Rows[0][0] != "6" {
		t.Errorf("!= MARS count = %q", res.Rows[0][0])
	}
}

func TestExecuteExecOptionsAgree(t *testing.T) {
	cat := loadSales(t)
	q, _ := Parse("SELECT SUM(qty), MEDIAN(price) WHERE qty > 1 GROUP BY region")
	base, err := Execute(cat, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Execute(cat, q, ExecOptions{Threads: 4, Wide: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Rows {
		for j := range base.Rows[i] {
			if base.Rows[i][j] != fast.Rows[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, base.Rows[i][j], fast.Rows[i][j])
			}
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	cat := loadSales(t)
	cases := []string{
		"SELECT SUM(nope)",
		"SELECT SUM(region)",
		"SELECT AVG(region)",
		"SELECT COUNT(*) WHERE nope = 1",
		"SELECT COUNT(*) WHERE region < 'EU'",
		"SELECT COUNT(*) WHERE qty = 'five'",
		"SELECT COUNT(*) GROUP BY nope",
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Execute(cat, q, ExecOptions{}); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", sql)
		}
	}
}

func TestExecuteNulls(t *testing.T) {
	specs, _ := catalog.ParseSchema("id:uint(8), v:uint(8)")
	cat, err := catalog.LoadCSV(strings.NewReader("id,v\n1,10\n2,\n3,30\n"), specs)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, cat, "SELECT COUNT(*), COUNT(v), SUM(v), MIN(v)")
	want := []string{"3", "2", "40", "10"}
	for i, w := range want {
		if res.Rows[0][i] != w {
			t.Errorf("col %d = %q, want %q", i, res.Rows[0][i], w)
		}
	}
}
