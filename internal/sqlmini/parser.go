package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one aggregate query. See the package comment for the
// accepted grammar.
// Lex and parse failures are the caller's fault, not the engine's, so
// they come back as *BadQueryError for errors.As classification.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, badQuery(err)
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, badQuery(err)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// keyword reports whether the current token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

// symbol consumes the given symbol or fails.
func (p *parser) symbol(s string) error {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.i++
		return nil
	}
	return fmt.Errorf("sql: expected %q at offset %d, found %q", s, t.pos, t.text)
}

// ident consumes an identifier or fails.
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier at offset %d, found %q", t.pos, t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.keyword("EXPLAIN") {
		// Only the ANALYZE form exists: the engine has no plan-only mode
		// (there is nothing to show without executing), so plain EXPLAIN
		// is rejected rather than silently executing.
		if !p.keyword("ANALYZE") {
			return nil, fmt.Errorf("sql: expected ANALYZE after EXPLAIN at offset %d (plain EXPLAIN is not supported)", p.cur().pos)
		}
		q.Explain = true
	}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("sql: query must start with SELECT")
	}
	for {
		sel, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		q.Selects = append(q.Selects, sel)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.i++
			continue
		}
		break
	}
	if p.keyword("FROM") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.From = name
	}
	if p.keyword("WHERE") {
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cond)
			if p.keyword("AND") {
				continue
			}
			break
		}
	}
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, fmt.Errorf("sql: expected BY after GROUP at offset %d", p.cur().pos)
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.i++
				continue
			}
			break
		}
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %q at offset %d", t.text, t.pos)
	}
	return q, nil
}

var aggNames = map[string]AggFunc{
	"COUNT": Count, "SUM": Sum, "AVG": Avg, "MIN": Min, "MAX": Max,
	"MEDIAN": Median, "QUANTILE": Quantile,
}

func (p *parser) parseSelectExpr() (SelectExpr, error) {
	name, err := p.ident()
	if err != nil {
		return SelectExpr{}, err
	}
	fn, ok := aggNames[strings.ToUpper(name)]
	if !ok {
		return SelectExpr{}, fmt.Errorf("sql: unknown aggregate %q", name)
	}
	if err := p.symbol("("); err != nil {
		return SelectExpr{}, err
	}
	if fn == Count && p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.i++
		if err := p.symbol(")"); err != nil {
			return SelectExpr{}, err
		}
		return SelectExpr{Func: CountStar}, nil
	}
	col, err := p.ident()
	if err != nil {
		return SelectExpr{}, err
	}
	sel := SelectExpr{Func: fn, Column: col}
	if fn == Quantile {
		if err := p.symbol(","); err != nil {
			return SelectExpr{}, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return SelectExpr{}, err
		}
		if lit.IsString {
			return SelectExpr{}, fmt.Errorf("sql: QUANTILE needs a numeric quantile")
		}
		sel.Arg = lit.Num
		if sel.Arg < 0 || sel.Arg > 1 {
			return SelectExpr{}, fmt.Errorf("sql: quantile %g outside [0,1]", sel.Arg)
		}
	}
	if err := p.symbol(")"); err != nil {
		return SelectExpr{}, err
	}
	return sel, nil
}

func (p *parser) parseCondition() (Condition, error) {
	col, err := p.ident()
	if err != nil {
		return Condition{}, err
	}
	t := p.cur()
	switch {
	case t.kind == tokSymbol:
		var op CmpOp
		switch t.text {
		case "=":
			op = OpEq
		case "!=", "<>":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return Condition{}, fmt.Errorf("sql: unexpected operator %q at offset %d", t.text, t.pos)
		}
		p.i++
		lit, err := p.parseLiteral()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Column: col, Op: op, Lits: []Literal{lit}}, nil

	case t.kind == tokIdent && strings.EqualFold(t.text, "BETWEEN"):
		p.i++
		lo, err := p.parseLiteral()
		if err != nil {
			return Condition{}, err
		}
		if !p.keyword("AND") {
			return Condition{}, fmt.Errorf("sql: expected AND in BETWEEN at offset %d", p.cur().pos)
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Column: col, Op: OpBetween, Lits: []Literal{lo, hi}}, nil

	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		p.i++
		if err := p.symbol("("); err != nil {
			return Condition{}, err
		}
		var lits []Literal
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return Condition{}, err
			}
			lits = append(lits, lit)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.i++
				continue
			}
			break
		}
		if err := p.symbol(")"); err != nil {
			return Condition{}, err
		}
		return Condition{Column: col, Op: OpIn, Lits: lits}, nil
	}
	return Condition{}, fmt.Errorf("sql: expected operator after %q at offset %d", col, t.pos)
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.i++
		return Literal{IsString: true, Str: t.text}, nil
	case tokNumber:
		p.i++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("sql: bad number %q at offset %d", t.text, t.pos)
		}
		return Literal{Num: v}, nil
	case tokSymbol:
		if t.text == "-" {
			p.i++
			inner, err := p.parseLiteral()
			if err != nil {
				return Literal{}, err
			}
			if inner.IsString {
				return Literal{}, fmt.Errorf("sql: cannot negate a string at offset %d", t.pos)
			}
			inner.Num = -inner.Num
			inner.Neg = true
			return inner, nil
		}
	}
	return Literal{}, fmt.Errorf("sql: expected literal at offset %d, found %q", t.pos, t.text)
}
