package sqlmini

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bpagg/internal/catalog"
)

// TestGenerativeQueriesMatchScalar builds random wide tables, generates
// random well-formed SQL, and checks every executor answer against direct
// plain-slice evaluation — end-to-end coverage of parser, binder, scans
// and aggregates in one property.
func TestGenerativeQueriesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 30; trial++ {
		n := 200 + rng.Intn(800)
		a := make([]uint64, n) // uint(10)
		b := make([]uint64, n) // uint(6)
		for i := 0; i < n; i++ {
			a[i] = uint64(rng.Intn(1 << 10))
			b[i] = uint64(rng.Intn(1 << 6))
		}
		var csv strings.Builder
		csv.WriteString("a,b\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&csv, "%d,%d\n", a[i], b[i])
		}
		specs, err := catalog.ParseSchema("a:uint(10):vbp, b:uint(6):hbp")
		if err != nil {
			t.Fatal(err)
		}
		cat, err := catalog.LoadCSV(strings.NewReader(csv.String()), specs)
		if err != nil {
			t.Fatal(err)
		}

		for q := 0; q < 20; q++ {
			conds, match := randomWhere(rng)
			sql := "SELECT COUNT(*), SUM(b), MIN(a), MAX(a), MEDIAN(b)" + conds
			parsed, err := Parse(sql)
			if err != nil {
				t.Fatalf("generated bad SQL %q: %v", sql, err)
			}
			res, err := Execute(cat, parsed, ExecOptions{})
			if err != nil {
				t.Fatalf("execute %q: %v", sql, err)
			}
			// Scalar reference.
			var cnt, sum uint64
			minA, maxA := uint64(1<<10), uint64(0)
			var kept []uint64
			for i := 0; i < n; i++ {
				if !match(a[i], b[i]) {
					continue
				}
				cnt++
				sum += b[i]
				if a[i] < minA {
					minA = a[i]
				}
				if a[i] > maxA {
					maxA = a[i]
				}
				kept = append(kept, b[i])
			}
			row := res.Rows[0]
			if row[0] != strconv.FormatUint(cnt, 10) {
				t.Fatalf("%q: count = %s, want %d", sql, row[0], cnt)
			}
			if row[1] != strconv.FormatUint(sum, 10) {
				t.Fatalf("%q: sum = %s, want %d", sql, row[1], sum)
			}
			if cnt == 0 {
				for _, cell := range row[2:] {
					if cell != "NULL" {
						t.Fatalf("%q: empty selection produced %v", sql, row)
					}
				}
				continue
			}
			if row[2] != strconv.FormatUint(minA, 10) || row[3] != strconv.FormatUint(maxA, 10) {
				t.Fatalf("%q: min/max = %s/%s, want %d/%d", sql, row[2], row[3], minA, maxA)
			}
			sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
			wantMed := kept[(len(kept)+1)/2-1]
			if row[4] != strconv.FormatUint(wantMed, 10) {
				t.Fatalf("%q: median = %s, want %d", sql, row[4], wantMed)
			}
		}
	}
}

// randomWhere builds a random conjunction over columns a and b, returning
// the SQL fragment and the matching predicate for reference evaluation.
func randomWhere(rng *rand.Rand) (string, func(a, b uint64) bool) {
	nConds := rng.Intn(3)
	if nConds == 0 {
		return "", func(a, b uint64) bool { return true }
	}
	var frags []string
	var fns []func(a, b uint64) bool
	for i := 0; i < nConds; i++ {
		col := "a"
		width := 10
		pick := func(a, b uint64) uint64 { return a }
		if rng.Intn(2) == 0 {
			col, width = "b", 6
			pick = func(a, b uint64) uint64 { return b }
		}
		c := uint64(rng.Intn(1 << width))
		switch rng.Intn(5) {
		case 0:
			frags = append(frags, fmt.Sprintf("%s < %d", col, c))
			fns = append(fns, func(a, b uint64) bool { return pick(a, b) < c })
		case 1:
			frags = append(frags, fmt.Sprintf("%s >= %d", col, c))
			fns = append(fns, func(a, b uint64) bool { return pick(a, b) >= c })
		case 2:
			frags = append(frags, fmt.Sprintf("%s != %d", col, c))
			fns = append(fns, func(a, b uint64) bool { return pick(a, b) != c })
		case 3:
			d := uint64(rng.Intn(1 << width))
			lo, hi := c, d
			if lo > hi {
				lo, hi = hi, lo
			}
			frags = append(frags, fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, hi))
			fns = append(fns, func(a, b uint64) bool { v := pick(a, b); return v >= lo && v <= hi })
		default:
			e1 := uint64(rng.Intn(1 << width))
			e2 := uint64(rng.Intn(1 << width))
			frags = append(frags, fmt.Sprintf("%s IN (%d, %d)", col, e1, e2))
			fns = append(fns, func(a, b uint64) bool { v := pick(a, b); return v == e1 || v == e2 })
		}
	}
	return " WHERE " + strings.Join(frags, " AND "), func(a, b uint64) bool {
		for _, fn := range fns {
			if !fn(a, b) {
				return false
			}
		}
		return true
	}
}
