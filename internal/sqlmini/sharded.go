package sqlmini

import (
	"context"
	"fmt"
	"time"

	"bpagg"
	"bpagg/internal/catalog"
)

// Sharded routing: when the catalog is backed by a partitioned store
// (catalog.Catalog.Sharded non-nil), queries execute through
// bpagg.ShardedQuery instead of the flat paths. Every WHERE conjunct
// translates to an engine predicate — including IN-lists, which the
// sharded engine evaluates natively — so the shard catalog prunes whole
// shards by min/max before any zone map or packed word is touched, and
// the surviving shards fan out in parallel with a deterministic
// shard-ordered merge. There is no bitmap fallback here: the store has
// no global row numbering to build one against.

// bindShardedPreds translates the conjunctive condition list into engine
// predicates, mirroring bindPreds' floor/ceil literal semantics and
// additionally binding IN-lists (each member translated exactly;
// unrepresentable members select nothing, so they drop out of the list).
func bindShardedPreds(cat *catalog.Catalog, conds []Condition) ([]boundPred, error) {
	out := make([]boundPred, 0, len(conds))
	for _, cond := range conds {
		switch cond.Op {
		case OpIn:
			if cat.Spec(cond.Column) == nil {
				return nil, badf("sql: unknown column %q", cond.Column)
			}
			codes, err := bindInCodes(cat, cond)
			if err != nil {
				return nil, badQuery(err)
			}
			out = append(out, boundPred{cond.Column, bpagg.In(codes...)})
		case OpBetween:
			lo, err := bindOnePred(cat, Condition{Column: cond.Column, Op: OpGe, Lits: cond.Lits[:1]})
			if err != nil {
				return nil, badQuery(err)
			}
			hi, err := bindOnePred(cat, Condition{Column: cond.Column, Op: OpLe, Lits: cond.Lits[1:2]})
			if err != nil {
				return nil, badQuery(err)
			}
			out = append(out, boundPred{cond.Column, lo}, boundPred{cond.Column, hi})
		default:
			p, err := bindOnePred(cat, cond)
			if err != nil {
				return nil, badQuery(err)
			}
			out = append(out, boundPred{cond.Column, p})
		}
	}
	return out, nil
}

// bindInCodes translates an IN-list's members to exact codes, dropping
// members no stored value can equal.
func bindInCodes(cat *catalog.Catalog, cond Condition) ([]uint64, error) {
	var codes []uint64
	for _, lit := range cond.Lits {
		if lit.IsString {
			code, ok, err := cat.StrToCode(cond.Column, lit.Str)
			if err != nil {
				return nil, err
			}
			if ok {
				codes = append(codes, code)
			}
			continue
		}
		cr, err := cat.NumToCode(cond.Column, lit.Num)
		if err != nil {
			return nil, err
		}
		if !cr.Below && !cr.Above && cr.Exact {
			codes = append(codes, cr.Floor)
		}
	}
	return codes, nil
}

// buildShardedQuery assembles the partitioned-store query for the
// translated conjuncts, directing its stats into the given collector
// (nil for none).
func buildShardedQuery(cat *catalog.Catalog, bps []boundPred, o ExecOptions, stats *bpagg.StatsCollector) (*bpagg.ShardedQuery, error) {
	sq := cat.Sharded.Query()
	if o.Threads > 1 {
		sq = sq.With(bpagg.Parallel(o.Threads))
	}
	if o.Wide {
		sq = sq.With(bpagg.WideWords())
	}
	if o.Auto {
		sq = sq.With(bpagg.Access(bpagg.Auto))
	}
	if stats != nil {
		sq = sq.WithStatsInto(stats)
	}
	for _, bp := range bps {
		var err error
		if sq, err = sq.WhereErr(bp.column, bp.pred); err != nil {
			return nil, badQuery(err)
		}
	}
	return sq, nil
}

// validateShardedGroupBy rejects unknown grouping columns before
// execution, so GroupByContext errors past this point are engine errors
// (deadline, cancel, overflow, cardinality) and propagate untyped —
// wrapping them as *BadQueryError would misclassify a timeout as the
// client's fault.
func validateShardedGroupBy(cat *catalog.Catalog, q *Query) error {
	for _, name := range q.GroupBy {
		if cat.Spec(name) == nil {
			return badf("sql: unknown GROUP BY column %q", name)
		}
	}
	return nil
}

// executeSharded runs a validated query against the partitioned store.
// A rownum range routes through ShardedQuery.Range — shards wholly
// outside the range prune in the catalog pass, and each survivor answers
// its local slice (index-served when no predicate remains). The grouped
// walk has no range form, so rownum with GROUP BY is rejected here rather
// than silently ignored.
func executeSharded(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions, rng *rowRange, rest []Condition) (*Result, error) {
	bps, err := bindShardedPreds(cat, rest)
	if err != nil {
		return nil, err
	}
	if rng != nil && len(q.GroupBy) != 0 {
		return nil, badf("sql: rownum with GROUP BY is not supported on a partitioned store")
	}
	sq, err := buildShardedQuery(cat, bps, o, o.Stats)
	if err != nil {
		return nil, err
	}
	if rng != nil {
		row, err := aggregateRowShardedRange(ctx, cat, q.Selects, sq.Range(rng.lo, rng.hi))
		if err != nil {
			return nil, err
		}
		return &Result{Headers: headers(q, false), Rows: [][]string{row}}, nil
	}
	if len(q.GroupBy) == 0 {
		row, err := aggregateRowSharded(ctx, cat, q.Selects, sq)
		if err != nil {
			return nil, err
		}
		return &Result{Headers: headers(q, false), Rows: [][]string{row}}, nil
	}
	if err := validateShardedGroupBy(cat, q); err != nil {
		return nil, err
	}
	g, err := sq.GroupByContext(ctx, q.GroupBy...)
	if err != nil {
		return nil, err
	}
	rows, err := shardedGroupedRows(ctx, cat, q, g)
	if err != nil {
		return nil, err
	}
	return &Result{Headers: headers(q, true), Rows: rows}, nil
}

// explainSharded builds the EXPLAIN ANALYZE tree for a sharded catalog:
// the query runs for real against the partitioned store with a
// stage-local collector, so the node's counters — including
// shards_scanned and shards_pruned from every aggregate's fan-out — are
// exactly what execution cost.
func explainSharded(ctx context.Context, cat *catalog.Catalog, q *Query, o ExecOptions, queryStart time.Time, rng *rowRange, rest []Condition) (*ExplainResult, error) {
	bps, err := bindShardedPreds(cat, rest)
	if err != nil {
		return nil, err
	}
	if rng != nil && len(q.GroupBy) != 0 {
		return nil, badf("sql: rownum with GROUP BY is not supported on a partitioned store")
	}
	rec := bpagg.NewStatsCollector()
	sq, err := buildShardedQuery(cat, bps, o, rec)
	if err != nil {
		return nil, err
	}

	var node *PlanNode
	t0 := time.Now()
	if rng != nil {
		if _, err := aggregateRowShardedRange(ctx, cat, q.Selects, sq.Range(rng.lo, rng.hi)); err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		// Cardinality decoration on a stats-free twin, like the other nodes.
		cq, err := buildShardedQuery(cat, bps, o, nil)
		if err != nil {
			return nil, err
		}
		rows, err := cq.Range(rng.lo, rng.hi).CountRowsContext(ctx)
		if err != nil {
			return nil, err
		}
		node = &PlanNode{
			Op:     "shard range",
			Detail: rangeDetail(q, rng, rest),
			Rows:   rows,
			Stats:  rec.Snapshot(),
			Wall:   wall,
		}
	} else if len(q.GroupBy) == 0 {
		if _, err := aggregateRowSharded(ctx, cat, q.Selects, sq); err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		// Matching-row cardinality is plan decoration; count it stats-free
		// so the recorded counters stay exactly what execution cost.
		cq, err := buildShardedQuery(cat, bps, o, nil)
		if err != nil {
			return nil, err
		}
		rows, err := cq.CountRowsContext(ctx)
		if err != nil {
			return nil, err
		}
		node = &PlanNode{
			Op:     "shard scan+agg",
			Detail: fusedDetail(q),
			Rows:   rows,
			Stats:  rec.Snapshot(),
			Wall:   wall,
		}
	} else {
		if err := validateShardedGroupBy(cat, q); err != nil {
			return nil, err
		}
		g, err := sq.GroupByContext(ctx, q.GroupBy...)
		if err != nil {
			return nil, err
		}
		if _, err := shardedGroupedRows(ctx, cat, q, g); err != nil {
			return nil, err
		}
		node = &PlanNode{
			Op:     "shard group+agg",
			Detail: groupFastDetail(q),
			Rows:   uint64(g.Len()),
			Stats:  rec.Snapshot(),
			Wall:   time.Since(t0),
		}
	}
	rows := node.Rows
	if len(q.GroupBy) == 0 {
		rows = 1
	}
	root := &PlanNode{
		Op:       "query",
		Rows:     rows,
		Wall:     time.Since(queryStart),
		Children: []*PlanNode{node},
	}
	if o.Stats != nil {
		recordTree(o.Stats, root)
	}
	return &ExplainResult{Root: root}, nil
}

// aggregateRowSharded renders one result row through the ShardedQuery
// API — the partitioned twin of aggregateRowQuery. Each aggregate plans
// its own shard fan-out (pruned shards recorded in the stats), and SUM
// and AVG use the one-pass SUM+COUNT merge.
func aggregateRowSharded(ctx context.Context, cat *catalog.Catalog, sels []SelectExpr, sq *bpagg.ShardedQuery) ([]string, error) {
	row := make([]string, len(sels))
	for i, s := range sels {
		switch s.Func {
		case CountStar:
			cnt, err := sq.CountRowsContext(ctx)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Count:
			cnt, err := sq.CountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Sum:
			sum, cnt, err := sq.SumCountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = cat.FormatSum(s.Column, sum, cnt)
		case Avg:
			sum, cnt, err := sq.SumCountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = cat.FormatAvg(s.Column, sum, cnt)
		case Min:
			v, ok, err := sq.MinContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Max:
			v, ok, err := sq.MaxContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Median:
			v, ok, err := sq.MedianContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Quantile:
			v, ok, err := sq.QuantileContext(ctx, s.Column, s.Arg)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		default:
			return nil, fmt.Errorf("sql: unsupported aggregate %v", s.Func)
		}
	}
	return row, nil
}

// aggregateRowShardedRange renders one result row through the
// ShardedRangeQuery API — the row-position twin of aggregateRowSharded.
// Each aggregate plans its own fan-out, pruning shards outside the range
// alongside the predicate bounds; SUM and AVG merge 128-bit partials so
// overflow surfaces exactly like the flat engine.
func aggregateRowShardedRange(ctx context.Context, cat *catalog.Catalog, sels []SelectExpr, rq *bpagg.ShardedRangeQuery) ([]string, error) {
	row := make([]string, len(sels))
	for i, s := range sels {
		switch s.Func {
		case CountStar:
			cnt, err := rq.CountRowsContext(ctx)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Count:
			cnt, err := rq.CountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = fmt.Sprintf("%d", cnt)
		case Sum, Avg:
			sum, err := rq.SumContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			cnt, err := rq.CountContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			if s.Func == Sum {
				row[i] = cat.FormatSum(s.Column, sum, cnt)
			} else {
				row[i] = cat.FormatAvg(s.Column, sum, cnt)
			}
		case Min:
			v, ok, err := rq.MinContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Max:
			v, ok, err := rq.MaxContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Median:
			v, ok, err := rq.MedianContext(ctx, s.Column)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		case Quantile:
			v, ok, err := rq.QuantileContext(ctx, s.Column, s.Arg)
			if err != nil {
				return nil, err
			}
			row[i] = formatOpt(cat, s.Column, v, ok)
		default:
			return nil, fmt.Errorf("sql: unsupported aggregate %v", s.Func)
		}
	}
	return row, nil
}

// shardedGroupedRows renders the grouped result through the
// ShardedGrouped API — per-shard partitions merged by sorted key. The
// NULL-tolerant Ok variants keep all-NULL groups rendering as NULL,
// matching the flat executor cell for cell.
func shardedGroupedRows(ctx context.Context, cat *catalog.Catalog, q *Query, g *bpagg.ShardedGrouped) ([][]string, error) {
	counts, err := g.CountContext(ctx)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, g.Len())
	for i := range rows {
		rows[i] = make([]string, 0, len(q.Selects)+len(q.GroupBy))
		for j, part := range g.KeyParts(i) {
			rows[i] = append(rows[i], cat.FormatValue(q.GroupBy[j], part))
		}
	}
	for _, s := range q.Selects {
		cells, err := shardedGroupedCells(ctx, cat, g, s, counts)
		if err != nil {
			return nil, err
		}
		for i := range rows {
			rows[i] = append(rows[i], cells[i])
		}
	}
	return rows, nil
}

func shardedGroupedCells(ctx context.Context, cat *catalog.Catalog, g *bpagg.ShardedGrouped,
	s SelectExpr, counts []uint64) ([]string, error) {
	out := make([]string, g.Len())
	if s.Func == CountStar {
		for i := range out {
			out[i] = fmt.Sprintf("%d", counts[i])
		}
		return out, nil
	}
	switch s.Func {
	case Count:
		nn, err := g.NonNullCountContext(ctx, s.Column)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = fmt.Sprintf("%d", nn[i])
		}
	case Sum, Avg:
		sums, err := g.SumContext(ctx, s.Column)
		if err != nil {
			return nil, err
		}
		nn, err := g.NonNullCountContext(ctx, s.Column)
		if err != nil {
			return nil, err
		}
		for i := range out {
			if s.Func == Sum {
				out[i] = cat.FormatSum(s.Column, sums[i], nn[i])
			} else {
				out[i] = cat.FormatAvg(s.Column, sums[i], nn[i])
			}
		}
	case Min, Max:
		var vals []uint64
		var oks []bool
		var err error
		if s.Func == Min {
			vals, oks, err = g.MinOkContext(ctx, s.Column)
		} else {
			vals, oks, err = g.MaxOkContext(ctx, s.Column)
		}
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = formatOpt(cat, s.Column, vals[i], oks[i])
		}
	case Median:
		vals, oks, err := g.MedianOkContext(ctx, s.Column)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = formatOpt(cat, s.Column, vals[i], oks[i])
		}
	case Quantile:
		vals, oks, err := g.QuantileOkContext(ctx, s.Column, s.Arg)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = formatOpt(cat, s.Column, vals[i], oks[i])
		}
	default:
		return nil, fmt.Errorf("sql: unsupported aggregate %v", s.Func)
	}
	return out, nil
}
