package wide

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// VBPSum computes SUM over a VBP column with 256-bit wide words.
func VBPSum(col *vbp.Column, f *bitvec.Bitmap) uint64 {
	return VBPSumRange(col, f, 0, col.NumSegments())
}

// VBPSumRange is the wide-word Algorithm 1 over segments [segLo, segHi):
// four consecutive segments form one 256-value segment. The refreshed
// kernel carry-saves whole blocks of wide words through CSA4 (one wide
// POPCNT per four Vecs plus residuals) instead of paying a wide POPCNT
// per plane word; the pre-refresh per-Vec-popcount body remains as the
// legacy A/B side behind core.PosPopEnabled.
func VBPSumRange(col *vbp.Column, f *bitvec.Bitmap, segLo, segHi int) uint64 {
	k := col.K()
	bSum := make([]uint64, k)
	if core.PosPopEnabled {
		vbpWideBSumRange(col, bSum, segLo, segHi, f.Word)
		var sum uint64
		for p := 0; p < k; p++ {
			sum += bSum[p] << uint(k-1-p)
		}
		return sum
	}
	groups := col.Groups()
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		fv := Vec{f.Word(seg), f.Word(seg + 1), f.Word(seg + 2), f.Word(seg + 3)}
		if fv.IsZero() {
			continue
		}
		for g := range groups {
			gr := &groups[g]
			b0 := (seg + 0) * gr.Bits
			b1 := (seg + 1) * gr.Bits
			b2 := (seg + 2) * gr.Bits
			b3 := (seg + 3) * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				wv := Vec{gr.Words[b0+b], gr.Words[b1+b], gr.Words[b2+b], gr.Words[b3+b]}
				bSum[gr.StartBit+b] += uint64(wv.And(fv).Popcount())
			}
		}
	}
	var sum uint64
	for p := 0; p < k; p++ {
		sum += bSum[p] << uint(k-1-p)
	}
	// Remainder segments take the scalar kernel.
	if seg < segHi {
		sum += core.VBPSumRange(col, f, seg, segHi)
	}
	return sum
}

// VBPMin computes MIN with wide words; ok is false when no tuple passes.
func VBPMin(col *vbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return vbpExtreme(col, f, true)
}

// VBPMax computes MAX with wide words.
func VBPMax(col *vbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return vbpExtreme(col, f, false)
}

func vbpExtreme(col *vbp.Column, f *bitvec.Bitmap, wantMin bool) (uint64, bool) {
	if f.Len() != col.Len() {
		panic("wide: filter length does not match column length")
	}
	if !f.Any() {
		return 0, false
	}
	temps := NewVBPExtremeTemps(col.K(), wantMin)
	VBPFoldExtremeRange(col, f, &temps, wantMin, 0, col.NumSegments())
	return core.VBPFinishExtreme(temps[:], col.K(), wantMin), true
}

// VBPExtremeTemps holds the four per-lane running extreme segments of the
// wide SLOTMIN/SLOTMAX.
type VBPExtremeTemps [4][]uint64

// NewVBPExtremeTemps allocates identity-initialized lane temps.
func NewVBPExtremeTemps(k int, wantMin bool) VBPExtremeTemps {
	var t VBPExtremeTemps
	for l := range t {
		t[l] = core.NewVBPExtremeTemp(k, wantMin)
	}
	return t
}

// VBPFoldExtremeRange folds segments [segLo, segHi) into the lane temps:
// lane l of each 4-segment block runs an independent SLOTMIN instance, and
// the staged comparison's early exit triggers only when all four lanes are
// fully decided — the shared-control-flow shape of one wide instruction
// stream.
func VBPFoldExtremeRange(col *vbp.Column, f *bitvec.Bitmap, temps *VBPExtremeTemps, wantMin bool, segLo, segHi int) {
	k := col.K()
	groups := col.Groups()
	var x [4][]uint64
	for l := range x {
		x[l] = make([]uint64, k)
	}
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		fv := Vec{f.Word(seg), f.Word(seg + 1), f.Word(seg + 2), f.Word(seg + 3)}
		if fv.IsZero() {
			continue
		}
		for g := range groups {
			gr := &groups[g]
			for l := 0; l < 4; l++ {
				base := (seg + l) * gr.Bits
				copy(x[l][gr.StartBit:gr.StartBit+gr.Bits], gr.Words[base:base+gr.Bits])
			}
		}
		// Four staged comparisons advance in lockstep.
		eq := Vec{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
		var sel Vec
		for p := 0; p < k; p++ {
			for l := 0; l < 4; l++ {
				xp, yp := x[l][p], temps[l][p]
				var lg uint64
				if wantMin {
					lg = ^xp & yp
				} else {
					lg = xp &^ yp
				}
				sel[l] |= eq[l] & lg
				eq[l] &= ^(xp ^ yp)
			}
			if eq.IsZero() {
				break
			}
		}
		sel = sel.And(fv)
		if sel.IsZero() {
			continue
		}
		for p := 0; p < k; p++ {
			for l := 0; l < 4; l++ {
				temps[l][p] = word.Blend(sel[l], x[l][p], temps[l][p])
			}
		}
	}
	if seg < segHi {
		core.VBPFoldExtreme(col, f, temps[0], wantMin, seg, segHi)
	}
}

// VBPMedian computes the lower MEDIAN with wide words.
func VBPMedian(col *vbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	u := core.Count(f)
	if u == 0 {
		return 0, false
	}
	return VBPRank(col, f, (u+1)/2)
}

// VBPRank computes the r-th smallest filtered value with wide words. The
// radix-descent control flow is inherently serial per bit (the paper's
// multi-thread sync point); the wide variant accelerates the two data-
// parallel phases, counting and candidate refinement.
func VBPRank(col *vbp.Column, f *bitvec.Bitmap, r uint64) (uint64, bool) {
	if f.Len() != col.Len() {
		panic("wide: filter length does not match column length")
	}
	u := core.Count(f)
	if r == 0 || r > u {
		return 0, false
	}
	nseg := col.NumSegments()
	v := core.NewVBPCandidates(f, nseg)
	k := col.K()
	var m uint64
	for p := 0; p < k; p++ {
		c := VBPRankCountRange(col, v, p, 0, nseg)
		if u-c < r {
			m |= 1 << uint(k-1-p)
			r -= u - c
			u = c
			VBPRankRefineRange(col, v, p, true, 0, nseg)
		} else {
			u -= c
			VBPRankRefineRange(col, v, p, false, 0, nseg)
		}
	}
	return m, true
}

// VBPRankCountRange is the wide counting phase of Algorithm 3.
func VBPRankCountRange(col *vbp.Column, v []uint64, p, segLo, segHi int) uint64 {
	grp := &col.Groups()[p/col.Tau()]
	b := p - grp.StartBit
	var c uint64
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		vv := Vec{v[seg], v[seg+1], v[seg+2], v[seg+3]}
		if vv.IsZero() {
			continue
		}
		wv := Vec{
			grp.Words[(seg+0)*grp.Bits+b],
			grp.Words[(seg+1)*grp.Bits+b],
			grp.Words[(seg+2)*grp.Bits+b],
			grp.Words[(seg+3)*grp.Bits+b],
		}
		c += uint64(vv.And(wv).Popcount())
	}
	if seg < segHi {
		c += core.VBPRankCount(col, v, p, seg, segHi)
	}
	return c
}

// VBPRankRefineRange is the wide candidate-refinement phase of Algorithm 3.
func VBPRankRefineRange(col *vbp.Column, v []uint64, p int, keepOnes bool, segLo, segHi int) {
	grp := &col.Groups()[p/col.Tau()]
	b := p - grp.StartBit
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		vv := Vec{v[seg], v[seg+1], v[seg+2], v[seg+3]}
		if vv.IsZero() {
			continue
		}
		wv := Vec{
			grp.Words[(seg+0)*grp.Bits+b],
			grp.Words[(seg+1)*grp.Bits+b],
			grp.Words[(seg+2)*grp.Bits+b],
			grp.Words[(seg+3)*grp.Bits+b],
		}
		if keepOnes {
			vv = vv.And(wv)
		} else {
			vv = vv.AndNot(wv)
		}
		v[seg], v[seg+1], v[seg+2], v[seg+3] = vv[0], vv[1], vv[2], vv[3]
	}
	if seg < segHi {
		core.VBPRankRefine(col, v, p, keepOnes, seg, segHi)
	}
}

// VBPAvg computes AVG = SUM / COUNT with wide words.
func VBPAvg(col *vbp.Column, f *bitvec.Bitmap) (float64, bool) {
	cnt := core.Count(f)
	if cnt == 0 {
		return 0, false
	}
	return float64(VBPSum(col, f)) / float64(cnt), true
}
