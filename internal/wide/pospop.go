package wide

import "bpagg/internal/vbp"

// Carry-save counting over Vec lanes (DESIGN.md §14). The wide VBP SUM
// bottleneck the package comment calls out — POPCNT has no 256-bit form,
// so every wide word costs four serial 64-bit counts — is exactly what a
// Harley–Seal tree removes: CSA4 folds four Vecs (sixteen 64-bit words)
// into bit-sliced counters with pure lane-wise logic, and the four-count
// popcount is paid only on the weight-8 overflow Vec of each block plus
// one residual fold per plane. The structure mirrors internal/core's
// vbpBlockSum so both word widths share the same kernel shape.

// CSA is the lane-wise carry-save adder over Vec operands — word.CSA
// lifted to 256 bits.
func CSA(c, a, b Vec) (sum, carry Vec) {
	u := c.Xor(a)
	return u.Xor(b), c.And(a).Or(u.And(b))
}

// CSA4 folds four Vecs into the running counters ones/twos/fours and
// returns the eights Vec, every set bit of which carries weight 8. The
// fours update is a half-add (the carry out IS the eights), so the block
// step is eleven Vec logic ops for sixteen words.
func CSA4(ones, twos, fours Vec, v *[4]Vec) (o, t, f, eights Vec) {
	var tA, tB, fA Vec
	ones, tA = CSA(ones, v[0], v[1])
	ones, tB = CSA(ones, v[2], v[3])
	twos, fA = CSA(twos, tA, tB)
	eights = fours.And(fA)
	fours = fours.Xor(fA)
	return ones, twos, fours, eights
}

// csaFold drains residual counters into a scalar count with the same
// shift-free addition-doubling as word.CSAFold.
func csaFold(ones, twos, fours Vec) uint64 {
	t := uint64(twos.Popcount())
	q := uint64(fours.Popcount())
	q += q
	return uint64(ones.Popcount()) + t + t + q + q
}

// vecSumBlock is how many (segment, filter word) pairs buffer before a
// flush: four Vecs of four segment lanes each.
const vecSumBlock = 16

// vbpPlanes is a flat per-plane view of a VBP column — plane p lives in
// words[p] at stride[p]*seg+off[p] — so block gathers pay one indexed
// load per lane instead of walking the ragged bit-group structure.
type vbpPlanes struct {
	words  [][]uint64
	stride []int
	off    []int
}

func newVBPPlanes(col *vbp.Column) vbpPlanes {
	k, tau := col.K(), col.Tau()
	groups := col.Groups()
	pl := vbpPlanes{
		words:  make([][]uint64, k),
		stride: make([]int, k),
		off:    make([]int, k),
	}
	for p := 0; p < k; p++ {
		gr := &groups[p/tau]
		pl.words[p] = gr.Words
		pl.stride[p] = gr.Bits
		pl.off[p] = p - gr.StartBit
	}
	return pl
}

// vbpVecSum is the wide twin of core's block accumulator: buffered
// segments flush through CSA4 per plane into persistent Vec counters,
// landing per-plane totals in the caller's bSum bank. Buffered segments
// need not be consecutive (fused passes skip cache-served ones), so the
// gather is strided; zero-padded tail lanes are carry-save no-ops.
type vbpVecSum struct {
	k                 int
	ones, twos, fours []Vec
	bSum              []uint64
	pl                vbpPlanes // flat plane view, built on first flush
	segs              [vecSumBlock]int
	fws               [vecSumBlock]uint64
	n                 int
}

func newVBPVecSum(k int, bSum []uint64) *vbpVecSum {
	backing := make([]Vec, 3*k)
	return &vbpVecSum{
		k:    k,
		ones: backing[:k], twos: backing[k : 2*k], fours: backing[2*k:],
		bSum: bSum,
	}
}

// push buffers one live segment's filter word, folding a block when full.
func (a *vbpVecSum) push(col *vbp.Column, seg int, fw uint64) {
	a.segs[a.n], a.fws[a.n] = seg, fw
	a.n++
	if a.n == vecSumBlock {
		a.flush(col)
	}
}

// csaStep4 folds four filter-masked words into one lane's carry-save
// state — the scalar CSA4 tree with the fours half-add exposing the
// eights. Small enough to inline into flush, which keeps the hot path
// free of Vec-by-value calls (three 32-byte operands per CSA add up).
func csaStep4(o, t, f, w0, w1, w2, w3 uint64) (uint64, uint64, uint64, uint64) {
	u := o ^ w0
	tA := o&w0 | u&w1
	o = u ^ w1
	u = o ^ w2
	tB := o&w2 | u&w3
	o = u ^ w3
	u = t ^ tA
	fA := t&tA | u&tB
	t = u ^ tB
	e := f & fA
	f ^= fA
	return o, t, f, e
}

// flush folds the buffered block into the carry-save counters. Idle tail
// lanes alias lane 0 with an all-zero filter (a carry-save no-op), so the
// body is branch-free: per plane, each of the four Vec lanes gathers four
// constant-index words and runs the scalar CSA tree, so everything stays
// in registers.
func (a *vbpVecSum) flush(col *vbp.Column) {
	if a.pl.words == nil {
		a.pl = newVBPPlanes(col)
	}
	for i := a.n; i < vecSumBlock; i++ {
		a.segs[i], a.fws[i] = a.segs[0], 0
	}
	pl := &a.pl
	for p := 0; p < a.k; p++ {
		ws, st, off := pl.words[p], pl.stride[p], pl.off[p]
		o, t, fr := a.ones[p], a.twos[p], a.fours[p]
		var e Vec
		o[0], t[0], fr[0], e[0] = csaStep4(o[0], t[0], fr[0],
			ws[a.segs[0]*st+off]&a.fws[0], ws[a.segs[4]*st+off]&a.fws[4],
			ws[a.segs[8]*st+off]&a.fws[8], ws[a.segs[12]*st+off]&a.fws[12])
		o[1], t[1], fr[1], e[1] = csaStep4(o[1], t[1], fr[1],
			ws[a.segs[1]*st+off]&a.fws[1], ws[a.segs[5]*st+off]&a.fws[5],
			ws[a.segs[9]*st+off]&a.fws[9], ws[a.segs[13]*st+off]&a.fws[13])
		o[2], t[2], fr[2], e[2] = csaStep4(o[2], t[2], fr[2],
			ws[a.segs[2]*st+off]&a.fws[2], ws[a.segs[6]*st+off]&a.fws[6],
			ws[a.segs[10]*st+off]&a.fws[10], ws[a.segs[14]*st+off]&a.fws[14])
		o[3], t[3], fr[3], e[3] = csaStep4(o[3], t[3], fr[3],
			ws[a.segs[3]*st+off]&a.fws[3], ws[a.segs[7]*st+off]&a.fws[7],
			ws[a.segs[11]*st+off]&a.fws[11], ws[a.segs[15]*st+off]&a.fws[15])
		a.ones[p], a.twos[p], a.fours[p] = o, t, fr
		if !e.IsZero() {
			a.bSum[p] += uint64(e.Popcount()) << 3
		}
	}
	a.n = 0
}

// finish folds any partial block plus the residual counters into bSum and
// resets the accumulator.
func (a *vbpVecSum) finish(col *vbp.Column) {
	if a.n > 0 {
		a.flush(col)
	}
	for p := 0; p < a.k; p++ {
		a.bSum[p] += csaFold(a.ones[p], a.twos[p], a.fours[p])
		a.ones[p], a.twos[p], a.fours[p] = Vec{}, Vec{}, Vec{}
	}
}

// vbpWideBSumRange fills the per-plane popcount bank for segments
// [segLo, segHi) with wide words — the carry-save replacement for the
// per-Vec-popcount loop, shared by VBPSumRange and its checked twin.
func vbpWideBSumRange(col *vbp.Column, bSum []uint64, segLo, segHi int, fword func(seg int) uint64) {
	acc := newVBPVecSum(col.K(), bSum)
	for seg := segLo; seg < segHi; seg++ {
		if fw := fword(seg); fw != 0 {
			acc.push(col, seg, fw)
		}
	}
	acc.finish(col)
}
