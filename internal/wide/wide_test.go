package wide

import (
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func TestVecOps(t *testing.T) {
	a := Vec{0xF0, 0x0F, ^uint64(0), 0}
	b := Vec{0xFF, 0xFF, 0, 1}
	if got := a.And(b); got != (Vec{0xF0, 0x0F, 0, 0}) {
		t.Errorf("And = %v", got)
	}
	if got := a.Or(b); got != (Vec{0xFF, 0xFF, ^uint64(0), 1}) {
		t.Errorf("Or = %v", got)
	}
	if got := a.Xor(b); got != (Vec{0x0F, 0xF0, ^uint64(0), 1}) {
		t.Errorf("Xor = %v", got)
	}
	if got := a.AndNot(b); got != (Vec{0, 0, ^uint64(0), 0}) {
		t.Errorf("AndNot = %v", got)
	}
	if got := a.Not()[3]; got != ^uint64(0) {
		t.Errorf("Not lane 3 = %#x", got)
	}
	if !(Vec{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if got := a.Popcount(); got != 4+4+64+0 {
		t.Errorf("Popcount = %d", got)
	}
}

// fixture builds a random column + filter for cross-checking wide against
// core.
func fixture(rng *rand.Rand, n, k int, sel float64) ([]uint64, *bitvec.Bitmap) {
	vals := make([]uint64, n)
	f := bitvec.New(n)
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
		if rng.Float64() < sel {
			f.Set(i)
		}
	}
	return vals, f
}

var shapes = []struct {
	n   int
	k   int
	sel float64
}{
	{1, 8, 1},        // single tuple: pure remainder path
	{64 * 3, 8, 0.5}, // fewer than 4 segments
	{64 * 4, 8, 0.5}, // exactly one wide block
	{64*7 + 13, 25, 0.3},
	{64*9 + 1, 12, 0.01},
	{64 * 8, 1, 0.5},
	{300, 33, 0.9},
	{500, 25, 0},
}

func TestWideVBPMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, sh := range shapes {
		vals, f := fixture(rng, sh.n, sh.k, sh.sel)
		tau := 4
		if tau > sh.k {
			tau = sh.k
		}
		col := vbp.Pack(vals, sh.k, tau)
		if got, want := VBPSum(col, f), core.VBPSum(col, f); got != want {
			t.Fatalf("VBPSum n=%d k=%d: wide %d core %d", sh.n, sh.k, got, want)
		}
		check := func(name string, gw uint64, okw bool, gc uint64, okc bool) {
			t.Helper()
			if gw != gc || okw != okc {
				t.Fatalf("VBP%s n=%d k=%d: wide (%d,%v) core (%d,%v)",
					name, sh.n, sh.k, gw, okw, gc, okc)
			}
		}
		gw, okw := VBPMin(col, f)
		gc, okc := core.VBPMin(col, f)
		check("Min", gw, okw, gc, okc)
		gw, okw = VBPMax(col, f)
		gc, okc = core.VBPMax(col, f)
		check("Max", gw, okw, gc, okc)
		gw, okw = VBPMedian(col, f)
		gc, okc = core.VBPMedian(col, f)
		check("Median", gw, okw, gc, okc)
		u := core.Count(f)
		for _, r := range []uint64{0, 1, u / 3, u, u + 1} {
			gw, okw := VBPRank(col, f, r)
			gc, okc := core.VBPRank(col, f, r)
			if gw != gc || okw != okc {
				t.Fatalf("VBPRank(%d) n=%d: wide (%d,%v) core (%d,%v)", r, sh.n, gw, okw, gc, okc)
			}
		}
		aw, okw2 := VBPAvg(col, f)
		ac, okc2 := core.VBPAvg(col, f)
		if aw != ac || okw2 != okc2 {
			t.Fatalf("VBPAvg n=%d: wide (%v,%v) core (%v,%v)", sh.n, aw, okw2, ac, okc2)
		}
	}
}

func TestWideHBPMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, sh := range shapes {
		for _, tau := range []int{3, 4, hbp.DefaultTau(sh.k)} {
			if tau > sh.k {
				continue
			}
			vals, f := fixture(rng, sh.n, sh.k, sh.sel)
			col := hbp.Pack(vals, sh.k, tau)
			if got, want := HBPSum(col, f), core.HBPSum(col, f); got != want {
				t.Fatalf("HBPSum n=%d k=%d tau=%d: wide %d core %d", sh.n, sh.k, tau, got, want)
			}
			gw, okw := HBPMin(col, f)
			gc, okc := core.HBPMin(col, f)
			if gw != gc || okw != okc {
				t.Fatalf("HBPMin n=%d k=%d tau=%d: wide (%d,%v) core (%d,%v)", sh.n, sh.k, tau, gw, okw, gc, okc)
			}
			gw, okw = HBPMax(col, f)
			gc, okc = core.HBPMax(col, f)
			if gw != gc || okw != okc {
				t.Fatalf("HBPMax n=%d k=%d tau=%d: wide (%d,%v) core (%d,%v)", sh.n, sh.k, tau, gw, okw, gc, okc)
			}
			gw, okw = HBPMedian(col, f)
			gc, okc = core.HBPMedian(col, f)
			if gw != gc || okw != okc {
				t.Fatalf("HBPMedian n=%d k=%d tau=%d: wide (%d,%v) core (%d,%v)", sh.n, sh.k, tau, gw, okw, gc, okc)
			}
			u := core.Count(f)
			for _, r := range []uint64{1, u / 2, u} {
				if r == 0 {
					continue
				}
				gw, okw := HBPRank(col, f, r)
				gc, okc := core.HBPRank(col, f, r)
				if gw != gc || okw != okc {
					t.Fatalf("HBPRank(%d): wide (%d,%v) core (%d,%v)", r, gw, okw, gc, okc)
				}
			}
		}
	}
}
