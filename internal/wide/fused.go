package wide

import (
	"math/bits"

	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// Fused scan→aggregate kernels on wide words. Filter words come from the
// same core.FusedWindow conjunction the 64-bit kernels use and every
// per-segment decision — cache service, masking, the FusedStats counters
// — matches core exactly, so EXPLAIN ANALYZE and the metric-invariant
// tests see identical numbers on either width (DESIGN.md §8: WordsTouched
// is analytic, counting algorithmic word visits, not machine loads).
// Aggregation-side work buffers into 4-lane (or 16-segment carry-save)
// blocks: live segments are not generally consecutive here — cache-served
// and pruned segments drop out — so lanes gather strided, and zero filter
// words pad partial tail blocks harmlessly.

// hbpLiveSubs mirrors the unexported core helper: the sub-segments of
// window fw holding at least one selected tuple.
func hbpLiveSubs(col *hbp.Column, fw uint64) uint64 {
	subs := col.SubSegments()
	var n uint64
	for t := 0; t < subs; t++ {
		if col.SubSegmentDelims(fw, t) != 0 {
			n++
		}
	}
	return n
}

// VBPFusedSumCount is the wide twin of core.VBPFusedSumCount: fused
// filter words feed the CSA4 block accumulator (or, on the legacy side of
// the toggle, a per-word popcount loop).
func VBPFusedSumCount(col *vbp.Column, preds []scan.WindowPred, segLo, segHi int, st *core.FusedStats) (sum, cnt uint64) {
	k := col.K()
	bSum := make([]uint64, k)
	groups := col.Groups()
	var acc *vbpVecSum
	if core.PosPopEnabled {
		acc = newVBPVecSum(k, bSum)
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := core.FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if zs, ok := col.SegmentSum(seg); ok {
				sum += zs
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += uint64(k)
		if acc != nil {
			acc.push(col, seg, fw)
			continue
		}
		for g := range groups {
			gr := &groups[g]
			base := seg * gr.Bits
			for b := 0; b < gr.Bits; b++ {
				bSum[gr.StartBit+b] += uint64(bits.OnesCount64(gr.Words[base+b] & fw))
			}
		}
	}
	if acc != nil {
		acc.finish(col)
	}
	for p := 0; p < k; p++ {
		sum += bSum[p] << uint(k-1-p)
	}
	return sum, cnt
}

// VBPFusedFoldExtreme is the wide twin of core.VBPFusedFoldExtreme: live
// segments buffer into 4-lane blocks that run the lockstep staged compare
// of VBPFoldExtremeRange against the lane temps. Padded lanes carry a
// zero filter word, so their selections mask away.
func VBPFusedFoldExtreme(col *vbp.Column, preds []scan.WindowPred, temps *VBPExtremeTemps, wantMin bool, segLo, segHi int, st *core.FusedStats) (best uint64, any bool, cnt uint64) {
	k := col.K()
	groups := col.Groups()
	var x [4][]uint64
	for l := range x {
		x[l] = make([]uint64, k)
	}
	var segs [4]int
	var fws [4]uint64
	n := 0
	flush := func() {
		for i := n; i < 4; i++ {
			segs[i], fws[i] = segs[0], 0
		}
		for g := range groups {
			gr := &groups[g]
			for l := 0; l < 4; l++ {
				base := segs[l] * gr.Bits
				copy(x[l][gr.StartBit:gr.StartBit+gr.Bits], gr.Words[base:base+gr.Bits])
			}
		}
		eq := Vec{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
		var sel Vec
		for p := 0; p < k; p++ {
			for l := 0; l < 4; l++ {
				xp, yp := x[l][p], temps[l][p]
				var lg uint64
				if wantMin {
					lg = ^xp & yp
				} else {
					lg = xp &^ yp
				}
				sel[l] |= eq[l] & lg
				eq[l] &= ^(xp ^ yp)
			}
			if eq.IsZero() {
				break
			}
		}
		sel = sel.And(Vec{fws[0], fws[1], fws[2], fws[3]})
		n = 0
		if sel.IsZero() {
			return
		}
		for p := 0; p < k; p++ {
			for l := 0; l < 4; l++ {
				temps[l][p] = word.Blend(sel[l], x[l][p], temps[l][p])
			}
		}
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := core.FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if lo, hi, ok := col.SegmentRangeExact(seg); ok {
				v := lo
				if !wantMin {
					v = hi
				}
				if !any || wantMin && v < best || !wantMin && v > best {
					best = v
				}
				any = true
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += uint64(k)
		segs[n], fws[n] = seg, fw
		n++
		if n == 4 {
			flush()
		}
	}
	if n > 0 {
		flush()
	}
	return best, any, cnt
}

// HBPFusedSumCount is the wide twin of core.HBPFusedSumCount: four
// buffered segments run independent Gilles–Miller fold chains per block,
// the paper's four-instance SIMD mapping applied to the fused feed.
func HBPFusedSumCount(col *hbp.Column, preds []scan.WindowPred, segLo, segHi int, st *core.FusedStats) (sum, cnt uint64) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	fold := summer.Sum
	if summer.Fast() {
		flushC, fsh, fin, keep, mul := summer.Consts()
		peelV, peelF := summer.PeelMasks()
		fold = func(w uint64) uint64 {
			x := (w &^ peelF) << flushC
			x += x >> fsh
			x &= keep
			return (x*mul)>>fin + w&peelV
		}
	}
	gws := make([][]uint64, b)
	for g := range gws {
		gws[g] = col.GroupWords(g)
	}

	sums := make([]uint64, b)
	var segs [4]int
	var fws [4]uint64
	n := 0
	flush := func() {
		for i := n; i < 4; i++ {
			segs[i], fws[i] = segs[0], 0
		}
		for t := 0; t < subs; t++ {
			var md Vec
			for l := 0; l < 4; l++ {
				md[l] = col.SubSegmentDelims(fws[l], t)
			}
			if md.IsZero() {
				continue
			}
			var m Vec
			for l := 0; l < 4; l++ {
				m[l] = word.SpreadDelims(md[l], tau)
			}
			for g := 0; g < b; g++ {
				gw := gws[g]
				sums[g] += fold(gw[segs[0]*subs+t]&m[0]) +
					fold(gw[segs[1]*subs+t]&m[1]) +
					fold(gw[segs[2]*subs+t]&m[2]) +
					fold(gw[segs[3]*subs+t]&m[3])
			}
		}
		n = 0
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := core.FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if zs, ok := col.SegmentSum(seg); ok {
				sum += zs
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += hbpLiveSubs(col, fw) * uint64(b)
		segs[n], fws[n] = seg, fw
		n++
		if n == 4 {
			flush()
		}
	}
	if n > 0 {
		flush()
	}
	for g := 0; g < b; g++ {
		sum += sums[g] << uint((b-1-g)*tau)
	}
	return sum, cnt
}

// HBPFusedFoldExtreme is the wide twin of core.HBPFusedFoldExtreme: four
// buffered segments run lockstep staged delimiter-lane compares against
// the lane temps of HBPFoldExtremeRange.
func HBPFusedFoldExtreme(col *hbp.Column, preds []scan.WindowPred, temps *HBPExtremeTemps, wantMin bool, segLo, segHi int, st *core.FusedStats) (best uint64, any bool, cnt uint64) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	delim := col.DelimMask()
	var x [4][]uint64
	for l := range x {
		x[l] = make([]uint64, b)
	}
	var segs [4]int
	var fws [4]uint64
	n := 0
	flush := func() {
		for i := n; i < 4; i++ {
			segs[i], fws[i] = segs[0], 0
		}
		for t := 0; t < subs; t++ {
			var md Vec
			for l := 0; l < 4; l++ {
				md[l] = col.SubSegmentDelims(fws[l], t)
			}
			if md.IsZero() {
				continue
			}
			for g := 0; g < b; g++ {
				gw := col.GroupWords(g)
				for l := 0; l < 4; l++ {
					x[l][g] = gw[segs[l]*subs+t]
				}
			}
			eq := Vec{delim, delim, delim, delim}
			var sel Vec
			for g := 0; g < b; g++ {
				for l := 0; l < 4; l++ {
					var lg uint64
					if wantMin {
						lg = word.LTDelims(x[l][g], temps[l][g], delim)
					} else {
						lg = word.GTDelims(x[l][g], temps[l][g], delim)
					}
					sel[l] |= eq[l] & lg
					eq[l] &= word.EQDelims(x[l][g], temps[l][g], delim)
				}
				if eq.IsZero() {
					break
				}
			}
			sel = sel.And(md)
			if sel.IsZero() {
				continue
			}
			var m Vec
			for l := 0; l < 4; l++ {
				m[l] = word.SpreadDelims(sel[l], tau)
			}
			for g := 0; g < b; g++ {
				for l := 0; l < 4; l++ {
					temps[l][g] = word.Blend(m[l], x[l][g], temps[l][g])
				}
			}
		}
		n = 0
	}
	for seg := segLo; seg < segHi; seg++ {
		fw, allMatch := core.FusedWindow(preds, seg, st)
		if fw == 0 {
			continue
		}
		if allMatch {
			if lo, hi, ok := col.SegmentRangeExact(seg); ok {
				v := lo
				if !wantMin {
					v = hi
				}
				if !any || wantMin && v < best || !wantMin && v > best {
					best = v
				}
				any = true
				cnt += uint64(col.SegmentValues(seg))
				st.SegmentsCacheServed++
				continue
			}
		}
		fw &= word.LowMask(col.SegmentValues(seg))
		if fw == 0 {
			continue
		}
		cnt += uint64(bits.OnesCount64(fw))
		st.SegmentsAggregated++
		st.WordsTouched += hbpLiveSubs(col, fw) * uint64(b)
		segs[n], fws[n] = seg, fw
		n++
		if n == 4 {
			flush()
		}
	}
	if n > 0 {
		flush()
	}
	return best, any, cnt
}
