package wide

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/word"
)

// HBPSum computes SUM over an HBP column with four independent 64-bit
// algorithm instances per loop iteration (the paper's SIMD mapping for
// HBP).
func HBPSum(col *hbp.Column, f *bitvec.Bitmap) uint64 {
	return HBPSumRange(col, f, 0, col.NumSegments())
}

// HBPSumRange is the wide Algorithm 4 over segments [segLo, segHi): each of
// four consecutive segments runs its own GET-VALUE-FILTER and IN-WORD-SUM
// chain, giving the scheduler four independent dependency chains.
func HBPSumRange(col *hbp.Column, f *bitvec.Bitmap, segLo, segHi int) uint64 {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	vps := col.ValuesPerSegment()
	summer := word.NewSummer(tau, col.FieldsPerWord())
	aligned := vps == 64

	sums := make([]uint64, b)
	gws := make([][]uint64, b)
	for g := range gws {
		gws[g] = col.GroupWords(g)
	}
	fast := summer.Fast()
	flush, fsh, fin, keep, mul := summer.Consts()
	peelV, peelF := summer.PeelMasks()
	fold := func(w uint64) uint64 {
		x := (w &^ peelF) << flush
		x += x >> fsh
		x &= keep
		return (x*mul)>>fin + w&peelV
	}
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		var fv Vec
		if aligned {
			fv = Vec{f.Word(seg), f.Word(seg + 1), f.Word(seg + 2), f.Word(seg + 3)}
		} else {
			for l := 0; l < 4; l++ {
				fv[l] = f.Extract((seg+l)*vps, vps)
			}
		}
		if fv.IsZero() {
			continue
		}
		for t := 0; t < subs; t++ {
			var md Vec
			for l := 0; l < 4; l++ {
				md[l] = col.SubSegmentDelims(fv[l], t)
			}
			if md.IsZero() {
				continue
			}
			var m Vec
			for l := 0; l < 4; l++ {
				m[l] = word.SpreadDelims(md[l], tau)
			}
			if fast {
				for g := 0; g < b; g++ {
					gw := gws[g]
					sums[g] += fold(gw[(seg+0)*subs+t]&m[0]) +
						fold(gw[(seg+1)*subs+t]&m[1]) +
						fold(gw[(seg+2)*subs+t]&m[2]) +
						fold(gw[(seg+3)*subs+t]&m[3])
				}
			} else {
				for g := 0; g < b; g++ {
					gw := gws[g]
					sums[g] += summer.Sum(gw[(seg+0)*subs+t]&m[0]) +
						summer.Sum(gw[(seg+1)*subs+t]&m[1]) +
						summer.Sum(gw[(seg+2)*subs+t]&m[2]) +
						summer.Sum(gw[(seg+3)*subs+t]&m[3])
				}
			}
		}
	}
	var sum uint64
	for g := 0; g < b; g++ {
		sum += sums[g] << uint((b-1-g)*tau)
	}
	if seg < segHi {
		sum += core.HBPSumRange(col, f, seg, segHi)
	}
	return sum
}

// HBPMin computes MIN with four wide lanes; ok is false when no tuple
// passes.
func HBPMin(col *hbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return hbpExtreme(col, f, true)
}

// HBPMax computes MAX with four wide lanes.
func HBPMax(col *hbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	return hbpExtreme(col, f, false)
}

func hbpExtreme(col *hbp.Column, f *bitvec.Bitmap, wantMin bool) (uint64, bool) {
	if f.Len() != col.Len() {
		panic("wide: filter length does not match column length")
	}
	if !f.Any() {
		return 0, false
	}
	temps := NewHBPExtremeTemps(col, wantMin)
	HBPFoldExtremeRange(col, f, &temps, wantMin, 0, col.NumSegments())
	return core.HBPFinishExtreme(col, temps[:], wantMin), true
}

// HBPExtremeTemps holds the four per-lane running extreme sub-segments.
type HBPExtremeTemps [4][]uint64

// NewHBPExtremeTemps allocates identity-initialized lane temps.
func NewHBPExtremeTemps(col *hbp.Column, wantMin bool) HBPExtremeTemps {
	var t HBPExtremeTemps
	for l := range t {
		t[l] = core.NewHBPExtremeTemp(col, wantMin)
	}
	return t
}

// HBPFoldExtremeRange folds segments [segLo, segHi) into the lane temps:
// lane l of each 4-segment block runs an independent SUB-SLOTMIN instance.
func HBPFoldExtremeRange(col *hbp.Column, f *bitvec.Bitmap, temps *HBPExtremeTemps, wantMin bool, segLo, segHi int) {
	tau := col.Tau()
	b := col.NumGroups()
	subs := col.SubSegments()
	vps := col.ValuesPerSegment()
	delim := col.DelimMask()
	aligned := vps == 64

	var x [4][]uint64
	for l := range x {
		x[l] = make([]uint64, b)
	}
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		var fv Vec
		if aligned {
			fv = Vec{f.Word(seg), f.Word(seg + 1), f.Word(seg + 2), f.Word(seg + 3)}
		} else {
			for l := 0; l < 4; l++ {
				fv[l] = f.Extract((seg+l)*vps, vps)
			}
		}
		if fv.IsZero() {
			continue
		}
		for t := 0; t < subs; t++ {
			var md Vec
			for l := 0; l < 4; l++ {
				md[l] = col.SubSegmentDelims(fv[l], t)
			}
			if md.IsZero() {
				continue
			}
			for g := 0; g < b; g++ {
				gw := col.GroupWords(g)
				for l := 0; l < 4; l++ {
					x[l][g] = gw[(seg+l)*subs+t]
				}
			}
			// Four staged delimiter-lane comparisons in lockstep.
			eq := Vec{delim, delim, delim, delim}
			var sel Vec
			for g := 0; g < b; g++ {
				for l := 0; l < 4; l++ {
					var lg uint64
					if wantMin {
						lg = word.LTDelims(x[l][g], temps[l][g], delim)
					} else {
						lg = word.GTDelims(x[l][g], temps[l][g], delim)
					}
					sel[l] |= eq[l] & lg
					eq[l] &= word.EQDelims(x[l][g], temps[l][g], delim)
				}
				if eq.IsZero() {
					break
				}
			}
			sel = sel.And(md)
			if sel.IsZero() {
				continue
			}
			var m Vec
			for l := 0; l < 4; l++ {
				m[l] = word.SpreadDelims(sel[l], tau)
			}
			for g := 0; g < b; g++ {
				for l := 0; l < 4; l++ {
					temps[l][g] = word.Blend(m[l], x[l][g], temps[l][g])
				}
			}
		}
	}
	if seg < segHi {
		core.HBPFoldExtreme(col, f, temps[0], wantMin, seg, segHi)
	}
}

// HBPMedian computes the lower MEDIAN with wide lanes.
func HBPMedian(col *hbp.Column, f *bitvec.Bitmap) (uint64, bool) {
	u := core.Count(f)
	if u == 0 {
		return 0, false
	}
	return HBPRank(col, f, (u+1)/2)
}

// HBPRank computes the r-th smallest filtered value. The histogram build
// walks candidate slots scalar-wise exactly as Algorithm 6 does; the
// refinement phase (full-word BIT-PARALLEL-EQUAL) runs four segments per
// iteration.
func HBPRank(col *hbp.Column, f *bitvec.Bitmap, r uint64) (uint64, bool) {
	if f.Len() != col.Len() {
		panic("wide: filter length does not match column length")
	}
	u := core.Count(f)
	if r == 0 || r > u {
		return 0, false
	}
	nseg := col.NumSegments()
	v := core.NewHBPCandidates(col, f, nseg)
	b := col.NumGroups()
	tau := col.Tau()
	chunks, histBits := core.HBPRankChunks(tau, u)
	hist := make([]uint64, 1<<uint(histBits))
	var m uint64
	for g := 0; g < b; g++ {
		for ci, ch := range chunks {
			shift, width := ch[0], ch[1]
			hw := hist[:1<<uint(width)]
			for i := range hw {
				hw[i] = 0
			}
			core.HBPHistogramChunk(col, v, g, shift, width, 0, nseg, hw)
			var cum uint64
			bin := 0
			for i, h := range hw {
				if cum+h >= r {
					bin = i
					break
				}
				cum += h
			}
			r -= cum
			m = m<<uint(width) | uint64(bin)
			if g == b-1 && ci == len(chunks)-1 {
				break
			}
			HBPRankRefineChunkRange(col, v, g, shift, width, uint64(bin), 0, nseg)
		}
	}
	return m, true
}

// HBPRankRefineChunkRange is the wide candidate-refinement phase of
// Algorithm 6, four segments per iteration.
func HBPRankRefineChunkRange(col *hbp.Column, v []uint64, g, shift, width int, bin uint64, segLo, segHi int) {
	subs := col.SubSegments()
	delim := col.DelimMask()
	c := col.FieldsPerWord()
	fWidth := col.FieldWidth()
	laneMask := word.Repeat(word.LowMask(width)<<uint(shift), fWidth, c)
	binPacked := word.Repeat(bin<<uint(shift), fWidth, c)
	gw := col.GroupWords(g)
	seg := segLo
	for ; seg+4 <= segHi; seg += 4 {
		vv := Vec{v[seg], v[seg+1], v[seg+2], v[seg+3]}
		if vv.IsZero() {
			continue
		}
		var nw Vec
		for t := 0; t < subs; t++ {
			for l := 0; l < 4; l++ {
				md := col.SubSegmentDelims(vv[l], t)
				if md == 0 {
					continue
				}
				lanes := word.EQDelims(gw[(seg+l)*subs+t]&laneMask, binPacked, delim) & md
				nw[l] |= col.ScatterDelims(lanes, t)
			}
		}
		v[seg], v[seg+1], v[seg+2], v[seg+3] = nw[0], nw[1], nw[2], nw[3]
	}
	if seg < segHi {
		core.HBPRankRefineChunk(col, v, g, shift, width, bin, seg, segHi)
	}
}

// HBPAvg computes AVG = SUM / COUNT with wide lanes.
func HBPAvg(col *hbp.Column, f *bitvec.Bitmap) (float64, bool) {
	cnt := core.Count(f)
	if cnt == 0 {
		return 0, false
	}
	return float64(HBPSum(col, f)) / float64(cnt), true
}
