package wide

import (
	"math/bits"
	"math/rand"
	"testing"

	"bpagg/internal/core"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func TestVecCSAPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		var c, a, b Vec
		for l := 0; l < 4; l++ {
			c[l], a[l], b[l] = rng.Uint64(), rng.Uint64(), rng.Uint64()
		}
		s, cy := CSA(c, a, b)
		for l := 0; l < 4; l++ {
			ws, wc := word.CSA(c[l], a[l], b[l])
			if s[l] != ws || cy[l] != wc {
				t.Fatalf("lane %d: Vec CSA (%#x,%#x), word CSA (%#x,%#x)", l, s[l], cy[l], ws, wc)
			}
		}
	}
	// CSA4 + csaFold count exactly: stream random Vec blocks.
	var ones, twos, fours Vec
	var total, want uint64
	for iter := 0; iter < 97; iter++ {
		var blk [4]Vec
		for j := range blk {
			for l := 0; l < 4; l++ {
				blk[j][l] = rng.Uint64() & rng.Uint64()
				want += uint64(bits.OnesCount64(blk[j][l]))
			}
		}
		var eights Vec
		ones, twos, fours, eights = CSA4(ones, twos, fours, &blk)
		total += uint64(eights.Popcount()) << 3
	}
	if got := total + csaFold(ones, twos, fours); got != want {
		t.Fatalf("CSA4 stream total %d, scalar %d", got, want)
	}
}

// TestWideSumToggleEquivalence pins the refreshed wide SUM against the
// legacy wide body and the core kernel across block-boundary lengths.
func TestWideSumToggleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	old := core.PosPopEnabled
	defer func() { core.PosPopEnabled = old }()
	for _, n := range []int{1, 64 * 3, 64 * 16, 64*16 + 7, 64*37 + 13} {
		const k = 25
		vals, f := fixture(rng, n, k, 0.6)
		col := vbp.Pack(vals, k, 4)
		core.PosPopEnabled = false
		legacy := VBPSumRange(col, f, 0, col.NumSegments())
		core.PosPopEnabled = true
		pospop := VBPSumRange(col, f, 0, col.NumSegments())
		want := core.VBPSumRange(col, f, 0, col.NumSegments())
		if legacy != pospop || pospop != want {
			t.Fatalf("n=%d: wide legacy %d, wide pospop %d, core %d", n, legacy, pospop, want)
		}
	}
}

// TestWideFusedMatchesCore pins the wide fused kernels — results AND
// FusedStats — to the core fused kernels on mixed uniform/sorted data.
func TestWideFusedMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const k, n = 20, 64*23 + 41
	for _, sorted := range []bool{false, true} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & word.LowMask(k)
		}
		if sorted {
			for i := 1; i < n; i++ {
				if vals[i] < vals[i-1] {
					vals[i], vals[i-1] = vals[i-1], vals[i]
				}
			}
		}
		col := vbp.Pack(vals, k, 4)
		cut := word.LowMask(k) / 2
		preds := []scan.WindowPred{scan.NewVBPWindowPred(col, scan.Predicate{Op: scan.LT, A: cut})}
		nseg := col.NumSegments()

		var cst, wst core.FusedStats
		cSum, cCnt := core.VBPFusedSumCount(col, preds, 0, nseg, &cst)
		wSum, wCnt := VBPFusedSumCount(col, preds, 0, nseg, &wst)
		if cSum != wSum || cCnt != wCnt {
			t.Fatalf("sorted=%v: core (%d,%d), wide (%d,%d)", sorted, cSum, cCnt, wSum, wCnt)
		}
		if cst != wst {
			t.Fatalf("sorted=%v: FusedStats differ across widths: core %+v, wide %+v", sorted, cst, wst)
		}

		for _, wantMin := range []bool{true, false} {
			var cst2, wst2 core.FusedStats
			cTemp := core.NewVBPExtremeTemp(k, wantMin)
			cBest, cAny, cCnt2 := core.VBPFusedFoldExtreme(col, preds, cTemp, wantMin, 0, nseg, &cst2)
			wTemps := NewVBPExtremeTemps(k, wantMin)
			wBest, wAny, wCnt2 := VBPFusedFoldExtreme(col, preds, &wTemps, wantMin, 0, nseg, &wst2)
			if cAny != wAny || cCnt2 != wCnt2 || cst2 != wst2 {
				t.Fatalf("sorted=%v min=%v: fold disagreement (any %v/%v cnt %d/%d)", sorted, wantMin, cAny, wAny, cCnt2, wCnt2)
			}
			cv := core.VBPFinishExtreme([][]uint64{cTemp}, k, wantMin)
			wv := core.VBPFinishExtreme(wTemps[:], k, wantMin)
			if cAny {
				if cv != wv || cBest != wBest {
					t.Fatalf("sorted=%v min=%v: core %d/%d, wide %d/%d", sorted, wantMin, cv, cBest, wv, wBest)
				}
			}
		}
	}
}
