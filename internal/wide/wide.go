// Package wide implements 256-bit "wide word" variants of the bit-parallel
// aggregation kernels — the portable substitute for the paper's AVX2 SIMD
// acceleration (§IV-B).
//
// The paper maps its algorithms onto 256-bit registers in exactly the two
// ways reproduced here:
//
//   - VBP uses only bitwise instructions, so a 256-bit register is treated
//     as one wide word and a segment simply grows to 256 values. Here a Vec
//     of four 64-bit lanes plays the register, and four consecutive
//     64-tuple segments play the 256-value segment. POPCNT has no 256-bit
//     form (on AVX2 or here), so population counts fall back to four serial
//     64-bit counts — the bottleneck the paper calls out for VBP.
//
//   - HBP relies on shifts, adds and multiplies that do not cross 64-bit
//     lanes, so the paper "runs four instances of the 64-bit algorithms" in
//     one register. Here four consecutive segments are processed per loop
//     iteration with four independent running states.
//
// Go has no stdlib SIMD intrinsics; these manually unrolled kernels
// exercise the identical algorithmic structure (and give the compiler
// straight-line independent lanes to schedule), which is what Figure 8's
// SIMD comparison measures. Results are bit-identical to package core, and
// the tests pin that.
package wide

import "math/bits"

// Vec is a 256-bit wide word: four 64-bit lanes.
type Vec [4]uint64

// And returns the lane-wise AND of a and b.
func (a Vec) And(b Vec) Vec {
	return Vec{a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]}
}

// Or returns the lane-wise OR of a and b.
func (a Vec) Or(b Vec) Vec {
	return Vec{a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]}
}

// AndNot returns the lane-wise a AND NOT b.
func (a Vec) AndNot(b Vec) Vec {
	return Vec{a[0] &^ b[0], a[1] &^ b[1], a[2] &^ b[2], a[3] &^ b[3]}
}

// Xor returns the lane-wise XOR of a and b.
func (a Vec) Xor(b Vec) Vec {
	return Vec{a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]}
}

// Not returns the lane-wise complement.
func (a Vec) Not() Vec {
	return Vec{^a[0], ^a[1], ^a[2], ^a[3]}
}

// IsZero reports whether every lane is zero.
func (a Vec) IsZero() bool {
	return a[0]|a[1]|a[2]|a[3] == 0
}

// Popcount returns the total set bits across all lanes. A 256-bit POPCNT
// does not exist, so this is four serial 64-bit counts — deliberately, per
// the package comment.
func (a Vec) Popcount() int {
	return bits.OnesCount64(a[0]) + bits.OnesCount64(a[1]) +
		bits.OnesCount64(a[2]) + bits.OnesCount64(a[3])
}
