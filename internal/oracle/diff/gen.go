package diff

import (
	"fmt"
	"math/rand"
	"sort"

	"bpagg"
	"bpagg/internal/oracle"
	"bpagg/internal/word"
)

// GenConfig parameterizes the adversarial case generator. Seed makes a
// run reproducible (a failing case's name plus the seed replays it);
// Deep widens every axis — the nightly oracle-soak profile — while the
// default profile keeps the PR-gating sweep under the 30s budget.
type GenConfig struct {
	Seed int64
	Deep bool
}

// Cases generates the differential scenarios for one seed: a sweep over
// layouts × bit widths × τ × table sizes × data patterns × predicate
// forms, plus hand-crafted adversaries (NULLs, fused conjunctions,
// GROUP BY, overflow shapes, mid-segment appends over warm caches).
func Cases(cfg GenConfig) []Case {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Case

	// k=31 is the HBP τ cap, k=59 the first width past the zSum cache
	// trust boundary (k ≤ 58), 63/64 the overflow widths.
	ks := []int{1, 8, 31, 59, 63, 64}
	if cfg.Deep {
		ks = append(ks, 2, 3, 4, 5, 6, 7, 12, 16, 17, 24, 32, 33, 40, 48, 57, 58, 60, 61, 62)
	}
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		for _, k := range ks {
			for _, tau := range taus(layout, k, cfg.Deep) {
				for _, n := range sizes(rng, cfg.Deep) {
					for _, pat := range pickPatterns(rng, k, cfg.Deep) {
						vals := genValues(rng, pat, n, k)
						battery := predBattery(rng, vals, k)
						for _, pi := range pickPreds(rng, len(battery), cfg.Deep) {
							c := Case{
								Name: fmt.Sprintf("%s-k%d-tau%d-n%d-%s-p%d-s%d",
									layout, k, tau, n, pat, pi, cfg.Seed),
								Layout:    layout,
								K:         k,
								Tau:       tau,
								A:         vals,
								Preds:     battery[pi],
								RowAppend: rng.Intn(2) == 0,
							}
							// A third of the cases append a short tail after
							// the cache treatment: mid-segment appends over
							// warm (rebuilt/reloaded) caches.
							if rng.Intn(3) == 0 {
								c.ExtraA = genValues(rng, pat, 1+rng.Intn(70), k)
								c.Name += "-extra"
							}
							out = append(out, c)
						}
					}
				}
			}
		}
	}
	out = append(out, craftedCases(rng, cfg)...)
	return out
}

// taus picks the bit-group sizes to sweep for a layout/width. The soak
// profile sweeps the full legal range τ∈{1..k} (HBP capped at 31); the
// short profile hits 1, the library default, and the cap.
func taus(layout bpagg.Layout, k int, deep bool) []int {
	maxTau := k
	if layout == bpagg.HBP && maxTau > 31 {
		maxTau = 31
	}
	if deep {
		// Dense at the low end (each small τ is a distinct group
		// geometry), strided above, and both values at the cap.
		set := map[int]bool{0: true, maxTau: true, maxTau - 1: true}
		for t := 1; t <= maxTau && t <= 6; t++ {
			set[t] = true
		}
		for t := 11; t < maxTau; t += 5 {
			set[t] = true
		}
		var ts []int
		for t := 0; t <= maxTau; t++ {
			if set[t] {
				ts = append(ts, t)
			}
		}
		return ts
	}
	set := map[int]bool{0: true, 1: true, maxTau: true}
	var ts []int
	for t := 0; t <= maxTau; t++ {
		if set[t] {
			ts = append(ts, t)
		}
	}
	return ts
}

// sizes picks table lengths: always one tiny table (empty or single
// value), one segment boundary (63/64/65 — exact 64-value segments and
// partial tails), and one multi-segment length. The soak profile samples
// each bucket from a wider pool (incl. larger tables) rather than
// exhausting it — the breadth comes from running many seeds.
func sizes(rng *rand.Rand, deep bool) []int {
	if deep {
		return []int{
			[]int{0, 1, 2}[rng.Intn(3)],
			[]int{63, 64, 65, 66}[rng.Intn(4)],
			[]int{127, 128, 129, 191, 192, 200}[rng.Intn(6)],
			[]int{256, 320, 511, 600 + rng.Intn(400)}[rng.Intn(4)],
		}
	}
	return []int{
		[]int{0, 1}[rng.Intn(2)],
		[]int{63, 64, 65}[rng.Intn(3)],
		[]int{127, 129, 200}[rng.Intn(3)],
	}
}

var allPatterns = []string{"uniform", "sorted", "rev", "const0", "constmax", "duo", "nearmax", "small"}

// pickPatterns selects data distributions. Near-max data is always in
// play for wide columns, where SUM overflow hides.
func pickPatterns(rng *rand.Rand, k int, deep bool) []string {
	pats := []string{"uniform", allPatterns[1+rng.Intn(len(allPatterns)-1)]}
	if deep {
		for len(pats) < 3 {
			p := allPatterns[1+rng.Intn(len(allPatterns)-1)]
			if p != pats[1] {
				pats = append(pats, p)
			}
		}
	}
	if k >= 59 && pats[1] != "nearmax" && pats[1] != "constmax" {
		pats = append(pats, "nearmax")
	}
	return pats
}

func genValues(rng *rand.Rand, pat string, n, k int) []uint64 {
	max := word.LowMask(k)
	vals := make([]uint64, n)
	switch pat {
	case "uniform":
		for i := range vals {
			vals[i] = rng.Uint64() & max
		}
	case "sorted", "rev":
		for i := range vals {
			vals[i] = rng.Uint64() & max
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if pat == "rev" {
			for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	case "const0":
		// already zero
	case "constmax":
		for i := range vals {
			vals[i] = max
		}
	case "duo":
		for i := range vals {
			if rng.Intn(2) == 0 {
				vals[i] = max
			}
		}
	case "nearmax":
		for i := range vals {
			d := uint64(rng.Intn(3))
			if d > max {
				d = max
			}
			vals[i] = max - d
		}
	case "small":
		for i := range vals {
			vals[i] = uint64(rng.Intn(4)) & max
		}
	default:
		panic("diff: unknown pattern " + pat)
	}
	return vals
}

// predBattery builds the predicate forms for one data set, with
// constants drawn from the data so selectivities vary: all-match (the
// cache-served fused path), none-match, every comparison operator,
// degenerate and inverted BETWEEN, IN-lists (including empty), and the
// zero-clause query.
func predBattery(rng *rand.Rand, vals []uint64, k int) [][]PredSpec {
	max := word.LowMask(k)
	v1, v2 := max/2, max/2+max/4
	if len(vals) > 0 {
		v1 = vals[rng.Intn(len(vals))]
		v2 = vals[rng.Intn(len(vals))]
	}
	lo, hi := v1, v2
	if lo > hi {
		lo, hi = hi, lo
	}
	one := func(p oracle.Pred) []PredSpec { return []PredSpec{{Col: "a", Pred: p}} }
	battery := [][]PredSpec{
		one(oracle.Pred{Op: oracle.LE, A: max}), // all-match
		one(oracle.Pred{Op: oracle.GT, A: max}), // none-match
		one(oracle.Pred{Op: oracle.GE, A: v1}),
		one(oracle.Pred{Op: oracle.LT, A: v2}),
		one(oracle.Pred{Op: oracle.LE, A: v1}),
		one(oracle.Pred{Op: oracle.EQ, A: v1}),
		one(oracle.Pred{Op: oracle.NE, A: v1}),
		one(oracle.Pred{Op: oracle.Between, A: lo, B: hi}),
		one(oracle.Pred{Op: oracle.Between, A: v1, B: v1}), // degenerate
		one(oracle.Pred{Op: oracle.In, List: []uint64{v1, v2, max}}),
		one(oracle.Pred{Op: oracle.In, List: nil}), // empty IN: matches nothing
		nil, // zero-clause query: all rows, never fused
	}
	if hi > lo {
		battery = append(battery, one(oracle.Pred{Op: oracle.Between, A: hi, B: lo})) // inverted: empty
	}
	return battery
}

// pickPreds selects which battery entries a table exercises: always the
// all-match entry (per-segment cache path) plus a sample of the rest —
// two more in the short profile, four more in the soak profile.
func pickPreds(rng *rand.Rand, n int, deep bool) []int {
	keep := 3
	if deep {
		keep = 5
	}
	idx := []int{0}
	for _, p := range rng.Perm(n - 1) {
		if len(idx) == keep {
			break
		}
		idx = append(idx, p+1)
	}
	return idx
}

// craftedCases are hand-built adversaries that the sweep's axes don't
// reach: NULLs, multi-column fused conjunctions, GROUP BY (including
// all-NULL groups and per-group overflow), and exact overflow shapes.
func craftedCases(rng *rand.Rand, cfg GenConfig) []Case {
	var out []Case
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		l := layout.String()

		// NULL handling: scattered NULLs, an all-NULL column, NULLs with
		// no predicate.
		n := 130
		vals := genValues(rng, "uniform", n, 16)
		nulls := make([]bool, n)
		for i := range nulls {
			nulls[i] = rng.Intn(5) == 0
		}
		v1 := vals[rng.Intn(n)]
		out = append(out,
			Case{Name: l + "-nulls-ge", Layout: layout, K: 16, A: vals, ANulls: nulls,
				Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: v1}}}},
			Case{Name: l + "-nulls-nopred", Layout: layout, K: 16, A: vals, ANulls: nulls},
			Case{Name: l + "-allnull", Layout: layout, K: 8, A: make([]uint64, 70),
				ANulls: allTrue(70),
				Preds:  []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.LE, A: 255}}}},
		)

		// Fused two-clause conjunction on same-width columns; the wide
		// variant overflows under the conjunction.
		b := genValues(rng, "uniform", n, 16)
		out = append(out, Case{
			Name: l + "-conj", Layout: layout, K: 16, A: vals, B: b,
			Preds: []PredSpec{
				{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: v1}},
				{Col: "b", Pred: oracle.Pred{Op: oracle.LE, A: b[rng.Intn(n)]}},
			},
		})
		wa := genValues(rng, "nearmax", n, 63)
		wb := genValues(rng, "uniform", n, 63)
		out = append(out, Case{
			Name: l + "-conj-overflow", Layout: layout, K: 63, A: wa, B: wb,
			Preds: []PredSpec{
				{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: 1}},
				{Col: "b", Pred: oracle.Pred{Op: oracle.LE, A: word.LowMask(63)}},
			},
		})

		// GROUP BY: low-cardinality keys; one variant with NULLs dense
		// enough that some group may lose every aggregate row, one with
		// per-group overflow.
		g := genValues(rng, "small", n, 16)
		out = append(out, Case{
			Name: l + "-groupby", Layout: layout, K: 16, A: vals, G: g,
			Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: v1}}},
		})
		densNulls := make([]bool, n)
		for i := range densNulls {
			densNulls[i] = rng.Intn(2) == 0
		}
		out = append(out, Case{
			Name: l + "-groupby-nulls", Layout: layout, K: 16, A: vals, ANulls: densNulls, G: g,
		})
		out = append(out, Case{
			Name: l + "-groupby-overflow", Layout: layout, K: 64,
			A: genValues(rng, "nearmax", n, 64), G: genValues(rng, "duo", n, 64),
		})

		// Multi-column GROUP BY: composite (g, g2) keys with mixed widths —
		// one narrow pair that fits the direct tier's 10 bits, one wider
		// pair that forces the hash tier, and an appended-tail variant.
		g2 := genValues(rng, "small", n, 16)
		wideG := genValues(rng, "uniform", n, 7)
		out = append(out,
			Case{Name: l + "-groupby-multi", Layout: layout, K: 16, GK: 4, G2K: 4,
				A: vals, G: g, G2: g2,
				Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: v1}}}},
			Case{Name: l + "-groupby-multi-hash", Layout: layout, K: 16, GK: 7, G2K: 7,
				A: vals, G: wideG, G2: genValues(rng, "uniform", n, 7)},
			Case{Name: l + "-groupby-multi-extra", Layout: layout, K: 16, GK: 4, G2K: 4,
				A: vals, G: g, G2: g2,
				ExtraA: genValues(rng, "uniform", 37, 16),
				ExtraG: genValues(rng, "small", 37, 16), ExtraG2: genValues(rng, "small", 37, 16)},
		)

		// NULLs in the grouping column itself: those rows belong to no
		// group, and the engine must fall back to the legacy walk.
		gNulls := make([]bool, n)
		for i := range gNulls {
			gNulls[i] = rng.Intn(4) == 0
		}
		out = append(out, Case{
			Name: l + "-groupby-gnulls", Layout: layout, K: 16, A: vals, G: g, GNulls: gNulls,
		})

		// Exact overflow boundaries: the largest sums that still fit and
		// the smallest that don't, around full and partial segments.
		out = append(out,
			Case{Name: l + "-sum-wrap-64", Layout: layout, K: 64,
				A:     []uint64{word.LowMask(64), 1},
				Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: 0}}}},
			Case{Name: l + "-sum-fit-64", Layout: layout, K: 64,
				A:     []uint64{word.LowMask(64), 0},
				Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: 0}}}},
			Case{Name: l + "-sum-wrap-tail", Layout: layout, K: 64,
				A: genValues(rng, "constmax", 65, 64)},
			Case{Name: l + "-sum-wrap-afterappend", Layout: layout, K: 62,
				A: genValues(rng, "constmax", 60, 62), ExtraA: genValues(rng, "constmax", 10, 62)},
		)

		// τ at its cap with an exactly-full segment and an all-match
		// predicate: the cache-served fused path with no tail.
		kCap := 64
		tCap := 64
		if layout == bpagg.HBP {
			tCap = 31
		}
		out = append(out, Case{
			Name: l + "-tau-cap-full-seg", Layout: layout, K: kCap, Tau: tCap,
			A:     genValues(rng, "uniform", 64, kCap),
			Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.LE, A: word.LowMask(kCap)}}},
		})
	}
	for i := range out {
		out[i].Name += fmt.Sprintf("-s%d", cfg.Seed)
	}
	return out
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}
