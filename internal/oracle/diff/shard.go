package diff

import (
	"bytes"
	"errors"
	"fmt"

	"bpagg"
	"bpagg/internal/oracle"
)

// CheckSharded runs the sharded partitioned store over one case and
// demands bit-identical answers to the naive oracle — the same arbiter
// the flat engine answers to in Check, so sharded-vs-flat identity
// follows transitively. The matrix is
//
//	{split, reloaded} store state ×
//	{1, 8} threads ×
//	{COUNT(*), COUNT, SUM, MIN, MAX, AVG, MEDIAN, rank, quantile}
//
// plus GROUP BY when the case carries a grouping column, and the
// positional Range/Window axis (checkShardedRange/checkShardedWindow),
// whose shard pruning and local-range translation must reproduce the
// flat verdicts. "split" shards
// the case's full flat table at the given shard size (exercising sealed
// shards, a possibly partial tail, and NULL preservation); "reloaded"
// round-trips that store through WriteTo/ReadShardedTable so the matrix
// also runs on deserialized shards and a recomputed catalog. Overflow
// discipline is identical to the flat engine: an overflowing SUM must
// surface as *bpagg.OverflowError carrying the exact 128-bit total even
// though no single shard's partial overflows.
func CheckSharded(c Case, shardRows int) error {
	if err := validate(&c); err != nil {
		return err
	}
	exp := expected(&c)
	threads := c.Threads
	if len(threads) == 0 {
		threads = []int{1, 8}
	}

	base := buildTable(&c)
	appendExtras(base, &c)
	split := bpagg.ShardTable(base, shardRows)

	type state struct {
		name string
		st   *bpagg.ShardedTable
	}
	states := []state{{fmt.Sprintf("split/%d", shardRows), split}}

	var buf bytes.Buffer
	if _, err := split.WriteTo(&buf); err != nil {
		return fmt.Errorf("case %s: serialize sharded: %w", c.Name, err)
	}
	reloaded, err := bpagg.ReadShardedTable(&buf)
	if err != nil {
		return fmt.Errorf("case %s: reload sharded: %w", c.Name, err)
	}
	states = append(states, state{fmt.Sprintf("reloaded/%d", shardRows), reloaded})

	for _, st := range states {
		for ti, th := range threads {
			if err := checkShardedAggs(&c, exp, st.name, st.st, th); err != nil {
				return err
			}
			if err := checkShardedRange(&c, exp, st.name, st.st, th, ti == 0); err != nil {
				return err
			}
			if err := checkShardedWindow(&c, exp, st.name, st.st, th, ti == 0); err != nil {
				return err
			}
			if c.G != nil {
				if err := checkShardedGroupBy(&c, exp, st.name, st.st, th); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// newShardedQuery mirrors newQuery on the partitioned store.
func newShardedQuery(c *Case, st *bpagg.ShardedTable, th int) *bpagg.ShardedQuery {
	q := st.Query().With(bpagg.Parallel(th))
	for _, ps := range c.Preds {
		q = q.Where(ps.Col, enginePred(ps.Pred))
	}
	return q
}

func checkShardedAggs(c *Case, exp *expectation, state string, st *bpagg.ShardedTable, th int) error {
	e := tag{c, state, "sharded", th}
	nq := func() *bpagg.ShardedQuery { return newShardedQuery(c, st, th) }

	cr, err := capture1(func() uint64 { return nq().CountRows() })
	if ferr := cmpU64(e, "COUNT(*)", cr, err, exp.countRows); ferr != nil {
		return ferr
	}
	cnt, err := capture1(func() uint64 { return nq().Count("a") })
	if ferr := cmpU64(e, "COUNT(a)", cnt, err, exp.count); ferr != nil {
		return ferr
	}

	sum, err := capture1(func() uint64 { return nq().Sum("a") })
	if ferr := cmpSum(e, "SUM", sum, err, exp); ferr != nil {
		return ferr
	}

	mn, ok, err := capture2(func() (uint64, bool) { return nq().Min("a") })
	if ferr := cmpOK(e, "MIN", mn, ok, err, exp.min); ferr != nil {
		return ferr
	}
	mx, ok, err := capture2(func() (uint64, bool) { return nq().Max("a") })
	if ferr := cmpOK(e, "MAX", mx, ok, err, exp.max); ferr != nil {
		return ferr
	}

	av, ok, err := capture2(func() (float64, bool) { return nq().Avg("a") })
	if ferr := cmpAvg(e, "AVG", av, ok, err, exp); ferr != nil {
		return ferr
	}

	md, ok, err := capture2(func() (uint64, bool) { return nq().Median("a") })
	if ferr := cmpOK(e, "MEDIAN", md, ok, err, exp.med); ferr != nil {
		return ferr
	}

	for _, r := range exp.rs {
		r := r
		v, ok, err := capture2(func() (uint64, bool) { return nq().Rank("a", r) })
		if ferr := cmpOK(e, fmt.Sprintf("RANK(%d)", r), v, ok, err, exp.ranks[r]); ferr != nil {
			return ferr
		}
	}
	for _, q := range exp.qs {
		q := q
		v, ok, err := capture2(func() (uint64, bool) { return nq().Quantile("a", q) })
		if ferr := cmpOK(e, fmt.Sprintf("QUANTILE(%v)", q), v, ok, err, exp.quants[q]); ferr != nil {
			return ferr
		}
	}
	return nil
}

// checkShardedGroupBy compares the sharded GROUP BY merge — per-shard
// banks unioned by sorted key — against the oracle, including the
// flat engine's documented behaviors: typed overflow for SUM/AVG and the
// empty-group panic for MIN/MAX/MEDIAN over an all-NULL group.
func checkShardedGroupBy(c *Case, exp *expectation, state string, st *bpagg.ShardedTable, th int) error {
	e := tag{c, state, "sharded-groupby", th}
	var keys []uint64
	var groups [][]bool
	if c.G2 != nil {
		keys, groups = oracle.GroupByComposite(
			[]*oracle.Column{exp.og, exp.og2},
			[]int{c.gk(), c.g2k()},
			exp.sel)
	} else {
		keys, groups = exp.og.GroupBy(exp.sel)
	}

	g, err := capture1(func() *bpagg.ShardedGrouped {
		q := newShardedQuery(c, st, th)
		if c.G2 != nil {
			return q.GroupBy("g", "g2")
		}
		return q.GroupBy("g")
	})
	if err != nil {
		return e.fail("GROUPBY", "unexpected panic: %v", err)
	}
	if ferr := cmpSlice(e, "KEYS", g.Keys(), keys); ferr != nil {
		return ferr
	}

	wantCounts := make([]uint64, len(keys))
	for i := range keys {
		wantCounts[i] = oracle.CountRows(groups[i])
	}
	counts, err := capture1(func() []uint64 { return g.Count() })
	if err != nil {
		return e.fail("COUNT", "unexpected error: %v", err)
	}
	if ferr := cmpSlice(e, "COUNT", counts, wantCounts); ferr != nil {
		return ferr
	}

	anyOverflow := false
	wantSums := make([]uint64, len(keys))
	for i := range keys {
		s, ok := exp.oa.SumUint64(groups[i])
		if !ok {
			anyOverflow = true
		}
		wantSums[i] = s
	}
	sums, err := capture1(func() []uint64 { return g.Sum("a") })
	if anyOverflow {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail("SUM", "a group sum overflows uint64; engine returned %v err=%v, want *bpagg.OverflowError", sums, err)
		}
	} else {
		if err != nil {
			return e.fail("SUM", "unexpected error: %v", err)
		}
		if ferr := cmpSlice(e, "SUM", sums, wantSums); ferr != nil {
			return ferr
		}
	}

	allGroupsHaveValues := true
	for i := range keys {
		if exp.oa.Count(groups[i]) == 0 {
			allGroupsHaveValues = false
		}
	}
	type groupAgg struct {
		name   string
		eng    func(string) []uint64
		oracle func([]bool) (uint64, bool)
	}
	for _, ga := range []groupAgg{
		{"MIN", g.Min, exp.oa.Min},
		{"MAX", g.Max, exp.oa.Max},
		{"MEDIAN", g.Median, exp.oa.Median},
	} {
		vals, err := capture1(func() []uint64 { return ga.eng("a") })
		if !allGroupsHaveValues {
			if err == nil {
				return e.fail(ga.name, "a group has only NULLs; engine returned %v, want the documented empty-group panic", vals)
			}
			continue
		}
		if err != nil {
			return e.fail(ga.name, "unexpected error: %v", err)
		}
		want := make([]uint64, len(keys))
		for i := range keys {
			want[i], _ = ga.oracle(groups[i])
		}
		if ferr := cmpSlice(e, ga.name, vals, want); ferr != nil {
			return ferr
		}
	}

	avgs, err := capture1(func() []float64 { return g.Avg("a") })
	if anyOverflow {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail("AVG", "a group sum overflows uint64; engine returned %v err=%v, want *bpagg.OverflowError", avgs, err)
		}
		return nil
	}
	if err != nil {
		return e.fail("AVG", "unexpected error: %v", err)
	}
	for i := range keys {
		want, ok := exp.oa.Avg(groups[i])
		if !ok {
			want = 0 // matches flat Grouped.Avg: 0 for an all-NULL group
		}
		if avgs[i] != want {
			return e.fail("AVG", "group %d (key %d): engine=%v oracle=%v", i, keys[i], avgs[i], want)
		}
	}
	return nil
}

// ShardSizes derives the sweep's shard-size axis from a case's row count:
// one shard (the degenerate flat-equivalent), an even two-way split, a
// seven-way split, and a fixed odd size chosen to leave a non-divisible
// tail shard for almost any n.
func ShardSizes(c *Case) []int {
	n := len(c.A) + len(c.ExtraA)
	if n == 0 {
		return []int{1}
	}
	ceil := func(parts int) int { return (n + parts - 1) / parts }
	sizes := []int{ceil(1), ceil(2), ceil(7), 77}
	out := sizes[:0]
	seen := map[int]bool{}
	for _, s := range sizes {
		if s >= 1 && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
