// Package diff is the differential harness that drives the real engine
// and the naive oracle (package oracle) over the same adversarial tables
// and demands bit-identical answers — the paper's §V methodology of
// validating SWAR kernels against scalar recomputation, built into the
// repo permanently (DESIGN.md §11).
//
// A Case pins one table shape: layout, bit width, bit-group size τ, data
// (with optional NULLs, a second predicate column, a grouping column, and
// post-build appends that land mid-segment), and a predicate conjunction.
// Check runs the full execution matrix over it:
//
//	{fresh, rebuilt, reloaded} cache state ×
//	{1, 8} threads ×
//	{fused, fused-wide, two-phase, wide-word, reconstruct} route ×
//	{COUNT(*), COUNT, SUM, MIN, MAX, AVG, MEDIAN, rank, quantile}
//
// plus GROUP BY, TopK/BottomK spot checks, and the positional axis
// (rangediff.go): Range over a deterministic probe battery and Window
// over tumbling/sliding/gapped shapes, each verdict computed over the
// positional slice of the case's selection — so the prefix-sum range
// index and the bitmap fallback answer to the same arbiter. Every cell
// is compared against the oracle; a disagreement returns an error naming
// the exact cell so the shape can be replayed as a regression test.
//
// The oracle is also the arbiter for overflow: when its big.Int SUM does
// not fit in uint64, the engine must refuse with *bpagg.OverflowError
// carrying the exact 128-bit total — a wrapped uint64 is a divergence.
package diff

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"bpagg"
	"bpagg/internal/oracle"
)

// PredSpec is one WHERE conjunct: a predicate against a named column of
// the case's table ("a", "b", or "g").
type PredSpec struct {
	Col  string
	Pred oracle.Pred
}

// Case is one differential scenario. A is the aggregate column ("a");
// B and G, when non-nil, add a second predicate column ("b") and a
// grouping column ("g") of the same length and τ. G2 adds a second
// grouping column ("g2"): GROUP BY then uses the composite (g, g2) key.
// Columns share the case's bit width K unless GK/G2K override the
// grouping columns' widths (0 = K) — high-cardinality grouped cases need
// a wide key next to a narrow measure. GNulls marks NULL rows of the
// grouping column; rows NULL in any grouping column belong to no group.
// ExtraA/B/G/G2 are appended after each state's cache treatment
// (rebuild, reload), so they land mid-segment on warmed caches — the
// append-path invalidation scenario. RowAppend forces
// one-value-at-a-time appends (the appendOne cache-maintenance path)
// instead of bulk packing.
type Case struct {
	Name   string
	Layout bpagg.Layout
	K      int
	Tau    int // 0 = library default
	GK     int // grouping-column width; 0 = K
	G2K    int // second grouping-column width; 0 = K

	A      []uint64
	ANulls []bool
	B      []uint64
	G      []uint64
	GNulls []bool
	G2     []uint64

	ExtraA  []uint64
	ExtraB  []uint64
	ExtraG  []uint64
	ExtraG2 []uint64

	Preds     []PredSpec
	Threads   []int // nil = {1, 8}
	RowAppend bool
}

// gk and g2k resolve the grouping-column widths.
func (c *Case) gk() int {
	if c.GK != 0 {
		return c.GK
	}
	return c.K
}

func (c *Case) g2k() int {
	if c.G2K != 0 {
		return c.G2K
	}
	return c.K
}

// valOK is a (value, found) aggregate result.
type valOK struct {
	v  uint64
	ok bool
}

// expectation is the oracle's verdict for a case, computed once.
type expectation struct {
	oa, ob, og *oracle.Column
	og2        *oracle.Column
	sel        []bool

	countRows uint64
	count     uint64
	sumFits   bool
	sumU      uint64
	sumBig    fmt.Stringer // *big.Int; Stringer keeps the import local
	min, max  valOK
	med       valOK
	avg       float64
	avgOK     bool
	rs        []uint64
	ranks     map[uint64]valOK
	qs        []float64
	quants    map[float64]valOK
}

// tag names one cell of the execution matrix for error messages.
type tag struct {
	c     *Case
	state string
	route string
	th    int
}

func (e tag) fail(agg, format string, args ...any) error {
	return fmt.Errorf("case %s [state=%s route=%s threads=%d] %s: %s",
		e.c.Name, e.state, e.route, e.th, agg, fmt.Sprintf(format, args...))
}

// Check runs the full differential matrix for one case and returns the
// first divergence found (nil when engine and oracle agree everywhere).
func Check(c Case) error {
	if err := validate(&c); err != nil {
		return err
	}
	exp := expected(&c)
	threads := c.Threads
	if len(threads) == 0 {
		threads = []int{1, 8}
	}

	type state struct {
		name string
		tbl  *bpagg.Table
	}
	var states []state

	fresh := buildTable(&c)
	appendExtras(fresh, &c)
	states = append(states, state{"fresh", fresh})

	rebuilt := buildTable(&c)
	for _, name := range rebuilt.Columns() {
		rebuilt.Column(name).RebuildSegmentAggregates()
	}
	appendExtras(rebuilt, &c) // extras land on freshly rebuilt caches
	states = append(states, state{"rebuilt", rebuilt})

	var buf bytes.Buffer
	if _, err := buildTable(&c).WriteTo(&buf); err != nil {
		return fmt.Errorf("case %s: serialize: %w", c.Name, err)
	}
	reloaded, err := bpagg.ReadTable(&buf)
	if err != nil {
		return fmt.Errorf("case %s: reload: %w", c.Name, err)
	}
	appendExtras(reloaded, &c) // extras land on deserialized, rebuilt caches
	states = append(states, state{"reloaded", reloaded})

	for _, st := range states {
		for ti, th := range threads {
			if err := checkFused(&c, exp, st.name, st.tbl, th, false); err != nil {
				return err
			}
			if err := checkColumn(&c, exp, st.name, st.tbl, th, "twophase"); err != nil {
				return err
			}
			if ti == 0 {
				if err := checkFused(&c, exp, st.name, st.tbl, th, true); err != nil {
					return err
				}
				if err := checkColumn(&c, exp, st.name, st.tbl, th, "wide"); err != nil {
					return err
				}
				if err := checkColumn(&c, exp, st.name, st.tbl, th, "recon"); err != nil {
					return err
				}
			}
			if err := checkRange(&c, exp, st.name, st.tbl, th, ti == 0); err != nil {
				return err
			}
			if err := checkWindow(&c, exp, st.name, st.tbl, th, ti == 0); err != nil {
				return err
			}
			if c.G != nil {
				for _, route := range []string{"singlepass", "legacy"} {
					if err := checkGroupBy(&c, exp, st.name, st.tbl, th, route); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func validate(c *Case) error {
	n := len(c.A)
	if c.ANulls != nil && len(c.ANulls) != n {
		return fmt.Errorf("case %s: ANulls length %d != %d", c.Name, len(c.ANulls), n)
	}
	if c.B != nil && len(c.B) != n {
		return fmt.Errorf("case %s: B length %d != %d", c.Name, len(c.B), n)
	}
	if c.G != nil && len(c.G) != n {
		return fmt.Errorf("case %s: G length %d != %d", c.Name, len(c.G), n)
	}
	if c.GNulls != nil && (c.G == nil || len(c.GNulls) != n) {
		return fmt.Errorf("case %s: GNulls length %d != G length %d", c.Name, len(c.GNulls), len(c.G))
	}
	if c.G2 != nil && (c.G == nil || len(c.G2) != n) {
		return fmt.Errorf("case %s: G2 requires G and length %d, got %d", c.Name, n, len(c.G2))
	}
	if c.B != nil && len(c.ExtraB) != len(c.ExtraA) {
		return fmt.Errorf("case %s: ExtraB length %d != ExtraA %d", c.Name, len(c.ExtraB), len(c.ExtraA))
	}
	if c.G != nil && len(c.ExtraG) != len(c.ExtraA) {
		return fmt.Errorf("case %s: ExtraG length %d != ExtraA %d", c.Name, len(c.ExtraG), len(c.ExtraA))
	}
	if c.G2 != nil && len(c.ExtraG2) != len(c.ExtraA) {
		return fmt.Errorf("case %s: ExtraG2 length %d != ExtraA %d", c.Name, len(c.ExtraG2), len(c.ExtraA))
	}
	return nil
}

// expected computes the oracle's verdict over the full (base + extra)
// data.
func expected(c *Case) *expectation {
	fullA := concat(c.A, c.ExtraA)
	var fullNulls []bool
	if c.ANulls != nil {
		fullNulls = append(append([]bool(nil), c.ANulls...), make([]bool, len(c.ExtraA))...)
	}
	e := &expectation{oa: &oracle.Column{Vals: fullA, Nulls: fullNulls}}
	if c.B != nil {
		e.ob = oracle.New(concat(c.B, c.ExtraB))
	}
	if c.G != nil {
		var gNulls []bool
		if c.GNulls != nil {
			gNulls = append(append([]bool(nil), c.GNulls...), make([]bool, len(c.ExtraG))...)
		}
		e.og = &oracle.Column{Vals: concat(c.G, c.ExtraG), Nulls: gNulls}
	}
	if c.G2 != nil {
		e.og2 = oracle.New(concat(c.G2, c.ExtraG2))
	}

	e.sel = e.oa.All()
	for _, ps := range c.Preds {
		e.sel = oracle.And(e.sel, e.oracleCol(ps.Col).Select(ps.Pred))
	}

	e.countRows = oracle.CountRows(e.sel)
	e.count = e.oa.Count(e.sel)
	big := e.oa.Sum(e.sel)
	e.sumBig = big
	e.sumU, e.sumFits = e.oa.SumUint64(e.sel)
	e.min.v, e.min.ok = e.oa.Min(e.sel)
	e.max.v, e.max.ok = e.oa.Max(e.sel)
	e.med.v, e.med.ok = e.oa.Median(e.sel)
	e.avg, e.avgOK = e.oa.Avg(e.sel)

	// Rank r = (count+1)/2 is covered by MEDIAN, so the explicit rank set
	// probes the remaining boundaries: invalid 0, first, last, past-last.
	e.ranks = map[uint64]valOK{}
	for _, r := range []uint64{0, 1, e.count, e.count + 1} {
		if _, seen := e.ranks[r]; seen {
			continue
		}
		var v valOK
		v.v, v.ok = e.oa.Rank(e.sel, r)
		e.ranks[r] = v
		e.rs = append(e.rs, r)
	}
	// The q=0 and q=1 clamp edges of the nearest-rank formula are
	// size-independent, so probing them on small tables suffices; large
	// tables keep one mid quantile (each quantile is a full rank
	// refinement — the priciest aggregate in the matrix).
	e.quants = map[float64]valOK{}
	e.qs = []float64{0.5}
	if e.count <= 65 {
		e.qs = []float64{0, 0.5, 1}
	}
	for _, q := range e.qs {
		var v valOK
		v.v, v.ok = e.oa.Quantile(e.sel, q)
		e.quants[q] = v
	}
	return e
}

func (e *expectation) oracleCol(name string) *oracle.Column {
	switch name {
	case "a":
		return e.oa
	case "b":
		return e.ob
	case "g":
		return e.og
	case "g2":
		return e.og2
	}
	panic(fmt.Sprintf("diff: unknown column %q", name))
}

func concat(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	return append(append([]uint64(nil), a...), b...)
}

// buildTable packs the case's base data into a fresh engine table.
func buildTable(c *Case) *bpagg.Table {
	names := []string{"a"}
	cols := []*bpagg.Column{buildColumn(c, c.K, c.A, c.ANulls)}
	if c.B != nil {
		names = append(names, "b")
		cols = append(cols, buildColumn(c, c.K, c.B, nil))
	}
	if c.G != nil {
		names = append(names, "g")
		cols = append(cols, buildColumn(c, c.gk(), c.G, c.GNulls))
	}
	if c.G2 != nil {
		names = append(names, "g2")
		cols = append(cols, buildColumn(c, c.g2k(), c.G2, nil))
	}
	return bpagg.NewTableFromColumns(names, cols)
}

func buildColumn(c *Case, k int, vals []uint64, nulls []bool) *bpagg.Column {
	var opts []bpagg.ColumnOption
	if c.Tau != 0 {
		opts = append(opts, bpagg.WithGroupBits(c.Tau))
	}
	col := bpagg.NewColumn(c.Layout, k, opts...)
	switch {
	case nulls != nil:
		for i, v := range vals {
			if nulls[i] {
				col.AppendNull()
			} else {
				col.Append(v)
			}
		}
	case c.RowAppend:
		for _, v := range vals {
			col.Append(v)
		}
	default:
		col.Append(vals...)
	}
	return col
}

// appendExtras lands the case's extra rows on the (possibly rebuilt or
// reloaded) table — mid-segment appends over warmed caches.
func appendExtras(t *bpagg.Table, c *Case) {
	if len(c.ExtraA) == 0 {
		return
	}
	m := map[string][]uint64{"a": c.ExtraA}
	if c.B != nil {
		m["b"] = c.ExtraB
	}
	if c.G != nil {
		m["g"] = c.ExtraG
	}
	if c.G2 != nil {
		m["g2"] = c.ExtraG2
	}
	t.AppendColumnar(m)
}

// enginePred translates an oracle predicate to the engine's form.
func enginePred(p oracle.Pred) bpagg.Predicate {
	switch p.Op {
	case oracle.EQ:
		return bpagg.Equal(p.A)
	case oracle.NE:
		return bpagg.NotEqual(p.A)
	case oracle.LT:
		return bpagg.Less(p.A)
	case oracle.LE:
		return bpagg.LessEq(p.A)
	case oracle.GT:
		return bpagg.Greater(p.A)
	case oracle.GE:
		return bpagg.GreaterEq(p.A)
	case oracle.Between:
		return bpagg.Between(p.A, p.B)
	case oracle.In:
		return bpagg.In(p.List...)
	}
	panic(fmt.Sprintf("diff: unknown op %d", int(p.Op)))
}

// newQuery builds the case's query on the given table (fused-eligible:
// no Selection call).
func newQuery(c *Case, tbl *bpagg.Table, th int) *bpagg.Query {
	q := tbl.Query().With(bpagg.Parallel(th))
	for _, ps := range c.Preds {
		q = q.Where(ps.Col, enginePred(ps.Pred))
	}
	return q
}

// catchPanic converts a panic from the engine's plain (non-Context) API
// into an error so the harness can compare it against expectations.
func catchPanic(err *error) {
	if r := recover(); r != nil {
		if e, ok := r.(error); ok {
			*err = e
		} else {
			*err = fmt.Errorf("panic: %v", r)
		}
	}
}

func capture1[T any](f func() T) (v T, err error) {
	defer catchPanic(&err)
	v = f()
	return
}

func capture2[T any](f func() (T, bool)) (v T, ok bool, err error) {
	defer catchPanic(&err)
	v, ok = f()
	return
}

// checkFused drives the lazy Query API — the fused path whenever the
// planner allows it, with its documented fallbacks otherwise. With wide
// set, the query additionally requests the 256-bit kernels, exercising
// the internal/wide fused twins.
func checkFused(c *Case, exp *expectation, state string, tbl *bpagg.Table, th int, wide bool) error {
	route := "fused"
	if wide {
		route = "fused-wide"
	}
	e := tag{c, state, route, th}
	ctx := context.Background()
	nq := func() *bpagg.Query {
		q := newQuery(c, tbl, th)
		if wide {
			q = q.With(bpagg.WideWords())
		}
		return q
	}

	cr, err := capture1(func() uint64 { return nq().CountRows() })
	if ferr := cmpU64(e, "COUNT(*)", cr, err, exp.countRows); ferr != nil {
		return ferr
	}

	sum, err := capture1(func() uint64 { return nq().Sum("a") })
	if ferr := cmpSum(e, "SUM", sum, err, exp); ferr != nil {
		return ferr
	}

	s2, c2, err := nq().SumCountContext(ctx, "a")
	if ferr := cmpSum(e, "SUM(ctx)", s2, err, exp); ferr != nil {
		return ferr
	}
	if exp.sumFits {
		if ferr := cmpU64(e, "COUNT(a)", c2, err, exp.count); ferr != nil {
			return ferr
		}
	}

	mn, ok, err := capture2(func() (uint64, bool) { return nq().Min("a") })
	if ferr := cmpOK(e, "MIN", mn, ok, err, exp.min); ferr != nil {
		return ferr
	}
	mx, ok, err := capture2(func() (uint64, bool) { return nq().Max("a") })
	if ferr := cmpOK(e, "MAX", mx, ok, err, exp.max); ferr != nil {
		return ferr
	}

	av, ok, err := capture2(func() (float64, bool) { return nq().Avg("a") })
	if ferr := cmpAvg(e, "AVG", av, ok, err, exp); ferr != nil {
		return ferr
	}

	md, ok, err := capture2(func() (uint64, bool) { return nq().Median("a") })
	if ferr := cmpOK(e, "MEDIAN", md, ok, err, exp.med); ferr != nil {
		return ferr
	}

	for _, r := range exp.rs {
		r := r
		v, ok, err := capture2(func() (uint64, bool) { return nq().Rank("a", r) })
		if ferr := cmpOK(e, fmt.Sprintf("RANK(%d)", r), v, ok, err, exp.ranks[r]); ferr != nil {
			return ferr
		}
	}
	for _, q := range exp.qs {
		q := q
		v, ok, err := capture2(func() (uint64, bool) { return nq().Quantile("a", q) })
		if ferr := cmpOK(e, fmt.Sprintf("QUANTILE(%v)", q), v, ok, err, exp.quants[q]); ferr != nil {
			return ferr
		}
	}
	return nil
}

// checkColumn drives the two-phase path: materialize the selection once,
// then run every aggregate through the Column Context API. route selects
// the execution options: "twophase" (bit-parallel 64-bit kernels),
// "wide" (256-bit wide-word kernels), "recon" (reconstruction baseline).
func checkColumn(c *Case, exp *expectation, state string, tbl *bpagg.Table, th int, route string) error {
	e := tag{c, state, route, th}
	ctx := context.Background()

	opts := []bpagg.ExecOption{bpagg.Parallel(th)}
	switch route {
	case "wide":
		opts = append(opts, bpagg.WideWords())
	case "recon":
		opts = append(opts, bpagg.Access(bpagg.Reconstruct))
	}

	q := newQuery(c, tbl, th)
	sel, err := capture1(func() *bpagg.Bitmap { return q.Selection() })
	if err != nil {
		return e.fail("Selection", "unexpected panic: %v", err)
	}
	col := tbl.Column("a")

	if ferr := cmpU64(e, "COUNT(*)", uint64(sel.Count()), nil, exp.countRows); ferr != nil {
		return ferr
	}
	cnt, err := col.CountContext(ctx, sel)
	if ferr := cmpU64(e, "COUNT(a)", cnt, err, exp.count); ferr != nil {
		return ferr
	}

	sum, err := col.SumContext(ctx, sel, opts...)
	if ferr := cmpSum(e, "SUM", sum, err, exp); ferr != nil {
		return ferr
	}
	psum, err := capture1(func() uint64 { return col.Sum(sel, opts...) })
	if ferr := cmpSum(e, "SUM(plain)", psum, err, exp); ferr != nil {
		return ferr
	}

	mn, ok, err := col.MinContext(ctx, sel, opts...)
	if ferr := cmpOK(e, "MIN", mn, ok, err, exp.min); ferr != nil {
		return ferr
	}
	mx, ok, err := col.MaxContext(ctx, sel, opts...)
	if ferr := cmpOK(e, "MAX", mx, ok, err, exp.max); ferr != nil {
		return ferr
	}

	av, ok, err := col.AvgContext(ctx, sel, opts...)
	if ferr := cmpAvg(e, "AVG", av, ok, err, exp); ferr != nil {
		return ferr
	}

	md, ok, err := col.MedianContext(ctx, sel, opts...)
	if ferr := cmpOK(e, "MEDIAN", md, ok, err, exp.med); ferr != nil {
		return ferr
	}

	for _, r := range exp.rs {
		v, ok, err := col.RankContext(ctx, sel, r, opts...)
		if ferr := cmpOK(e, fmt.Sprintf("RANK(%d)", r), v, ok, err, exp.ranks[r]); ferr != nil {
			return ferr
		}
	}
	for _, qq := range exp.qs {
		v, ok, err := col.QuantileContext(ctx, sel, qq, opts...)
		if ferr := cmpOK(e, fmt.Sprintf("QUANTILE(%v)", qq), v, ok, err, exp.quants[qq]); ferr != nil {
			return ferr
		}
	}

	if route == "twophase" {
		for _, k := range []int{1, 3} {
			eng, err := capture1(func() []uint64 { return col.TopK(sel, k, opts...) })
			if err != nil {
				return e.fail(fmt.Sprintf("TOPK(%d)", k), "unexpected panic: %v", err)
			}
			if ferr := cmpSlice(e, fmt.Sprintf("TOPK(%d)", k), eng, exp.oa.TopK(exp.sel, k)); ferr != nil {
				return ferr
			}
			eng, err = capture1(func() []uint64 { return col.BottomK(sel, k, opts...) })
			if err != nil {
				return e.fail(fmt.Sprintf("BOTTOMK(%d)", k), "unexpected panic: %v", err)
			}
			if ferr := cmpSlice(e, fmt.Sprintf("BOTTOMK(%d)", k), eng, exp.oa.BottomK(exp.sel, k)); ferr != nil {
				return ferr
			}
		}
	}
	return nil
}

// checkGroupBy compares GROUP BY keys and per-group aggregates. route
// selects the partition engine: "singlepass" leaves the query lazy so
// GroupBy takes the single-pass bit-sliced path (direct or hash tier),
// "legacy" materializes the selection first, which gates it off and
// forces the per-group MIN/Equal walk. Both must agree with the naive
// oracle bit for bit. When the case has a second grouping column the
// engine groups by the packed (g, g2) composite and the oracle by
// GroupByComposite with the same per-column widths.
func checkGroupBy(c *Case, exp *expectation, state string, tbl *bpagg.Table, th int, route string) error {
	e := tag{c, state, "groupby-" + route, th}
	var keys []uint64
	var groups [][]bool
	if c.G2 != nil {
		keys, groups = oracle.GroupByComposite(
			[]*oracle.Column{exp.og, exp.og2},
			[]int{c.gk(), c.g2k()},
			exp.sel)
	} else {
		keys, groups = exp.og.GroupBy(exp.sel)
	}

	g, err := capture1(func() *bpagg.Grouped {
		q := newQuery(c, tbl, th)
		if route == "legacy" {
			q.Selection()
		}
		if c.G2 != nil {
			return q.GroupBy("g", "g2")
		}
		return q.GroupBy("g")
	})
	if err != nil {
		return e.fail("GROUPBY", "unexpected panic: %v", err)
	}
	switch {
	case route == "legacy" && g.SinglePass():
		return e.fail("GROUPBY", "materialized selection must force the legacy walk")
	case route == "singlepass" && !g.SinglePass() &&
		c.GNulls == nil && // NULLs in a grouping column legitimately force legacy
		len(keys) <= bpagg.MaxSinglePassGroups:
		return e.fail("GROUPBY", "lazy query should take the single-pass path (%d keys)", len(keys))
	}
	if ferr := cmpSlice(e, "KEYS", g.Keys(), keys); ferr != nil {
		return ferr
	}

	wantCounts := make([]uint64, len(keys))
	for i := range keys {
		wantCounts[i] = oracle.CountRows(groups[i])
	}
	if ferr := cmpSlice(e, "COUNT", g.Count(), wantCounts); ferr != nil {
		return ferr
	}

	anyOverflow := false
	wantSums := make([]uint64, len(keys))
	for i := range keys {
		s, ok := exp.oa.SumUint64(groups[i])
		if !ok {
			anyOverflow = true
		}
		wantSums[i] = s
	}
	sums, err := capture1(func() []uint64 { return g.Sum("a") })
	if anyOverflow {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail("SUM", "a group sum overflows uint64; engine returned %v err=%v, want *bpagg.OverflowError", sums, err)
		}
	} else {
		if err != nil {
			return e.fail("SUM", "unexpected error: %v", err)
		}
		if ferr := cmpSlice(e, "SUM", sums, wantSums); ferr != nil {
			return ferr
		}
	}

	// A group whose aggregate-column rows are all NULL has no MIN/MAX/
	// MEDIAN; the engine's plain Grouped methods document a panic there.
	allGroupsHaveValues := true
	for i := range keys {
		if exp.oa.Count(groups[i]) == 0 {
			allGroupsHaveValues = false
		}
	}
	type groupAgg struct {
		name   string
		eng    func(string) []uint64
		oracle func([]bool) (uint64, bool)
	}
	for _, ga := range []groupAgg{
		{"MIN", g.Min, exp.oa.Min},
		{"MAX", g.Max, exp.oa.Max},
		{"MEDIAN", g.Median, exp.oa.Median},
	} {
		vals, err := capture1(func() []uint64 { return ga.eng("a") })
		if !allGroupsHaveValues {
			if err == nil {
				return e.fail(ga.name, "a group has only NULLs; engine returned %v, want the documented empty-group panic", vals)
			}
			continue
		}
		if err != nil {
			return e.fail(ga.name, "unexpected error: %v", err)
		}
		want := make([]uint64, len(keys))
		for i := range keys {
			want[i], _ = ga.oracle(groups[i])
		}
		if ferr := cmpSlice(e, ga.name, vals, want); ferr != nil {
			return ferr
		}
	}

	avgs, err := capture1(func() []float64 { return g.Avg("a") })
	if anyOverflow {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail("AVG", "a group sum overflows uint64; engine returned %v err=%v, want *bpagg.OverflowError", avgs, err)
		}
		return nil
	}
	if err != nil {
		return e.fail("AVG", "unexpected error: %v", err)
	}
	for i := range keys {
		want, ok := exp.oa.Avg(groups[i])
		if !ok {
			want = 0 // engine's Grouped.Avg yields 0 for an all-NULL group
		}
		if avgs[i] != want {
			return e.fail("AVG", "group %d (key %d): engine=%v oracle=%v", i, keys[i], avgs[i], want)
		}
	}
	return nil
}

func cmpU64(e tag, agg string, got uint64, gotErr error, want uint64) error {
	if gotErr != nil {
		return e.fail(agg, "unexpected error: %v", gotErr)
	}
	if got != want {
		return e.fail(agg, "engine=%d oracle=%d", got, want)
	}
	return nil
}

func cmpOK(e tag, agg string, got uint64, gotOK bool, gotErr error, want valOK) error {
	if gotErr != nil {
		return e.fail(agg, "unexpected error: %v", gotErr)
	}
	if gotOK != want.ok {
		return e.fail(agg, "engine ok=%v oracle ok=%v (engine=%d oracle=%d)", gotOK, want.ok, got, want.v)
	}
	if want.ok && got != want.v {
		return e.fail(agg, "engine=%d oracle=%d", got, want.v)
	}
	return nil
}

// cmpSum is overflow-aware: when the oracle's exact sum does not fit in
// uint64, the engine must produce *bpagg.OverflowError carrying the true
// 128-bit total; any plain uint64 result is a silent wrap.
func cmpSum(e tag, agg string, got uint64, gotErr error, exp *expectation) error {
	if !exp.sumFits {
		var ov *bpagg.OverflowError
		if !errors.As(gotErr, &ov) {
			return e.fail(agg, "true sum %s overflows uint64; engine returned %d err=%v, want *bpagg.OverflowError",
				exp.sumBig.String(), got, gotErr)
		}
		if ov.Big().String() != exp.sumBig.String() {
			return e.fail(agg, "OverflowError reports %s, true sum is %s", ov.Big().String(), exp.sumBig.String())
		}
		return nil
	}
	if gotErr != nil {
		return e.fail(agg, "unexpected error: %v", gotErr)
	}
	if got != exp.sumU {
		return e.fail(agg, "engine=%d oracle=%d", got, exp.sumU)
	}
	return nil
}

// cmpAvg mirrors cmpSum: AVG = SUM/COUNT, so an overflowing sum must
// surface as the same typed error.
func cmpAvg(e tag, agg string, got float64, gotOK bool, gotErr error, exp *expectation) error {
	if !exp.sumFits {
		var ov *bpagg.OverflowError
		if !errors.As(gotErr, &ov) {
			return e.fail(agg, "true sum %s overflows uint64; engine returned %v,%v err=%v, want *bpagg.OverflowError",
				exp.sumBig.String(), got, gotOK, gotErr)
		}
		return nil
	}
	if gotErr != nil {
		return e.fail(agg, "unexpected error: %v", gotErr)
	}
	if gotOK != exp.avgOK {
		return e.fail(agg, "engine ok=%v oracle ok=%v", gotOK, exp.avgOK)
	}
	if exp.avgOK && got != exp.avg {
		return e.fail(agg, "engine=%v oracle=%v (must be bit-identical)", got, exp.avg)
	}
	return nil
}

func cmpSlice[T comparable](e tag, agg string, got, want []T) error {
	if len(got) != len(want) {
		return e.fail(agg, "engine=%v oracle=%v (length %d vs %d)", got, want, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return e.fail(agg, "index %d: engine=%v oracle=%v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
	return nil
}
