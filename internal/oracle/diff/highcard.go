package diff

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"bpagg"
	"bpagg/internal/oracle"
)

// High-cardinality grouped axis: differential cases whose group count
// ranges from the direct tier's 1024-key budget up past the hash tier's
// growth path (G = 65536), including composite keys, predicates, and
// grouping-column NULLs. The per-group [][]bool oracle in checkGroupBy
// is O(G·n) memory, so this axis carries its own scalar reference
// (expectedGrouped) that accumulates per-key aggregates in one pass —
// the same straight-line code a student would write, just map-shaped.
//
// CheckGrouped runs a lighter matrix than Check — fresh table only,
// grouped aggregates only — because the point is the partition tiers,
// not the cache states (Check's crafted groupby cases cover those).

// HighCardCases generates the grouped high-cardinality scenarios for one
// seed: per layout, G ∈ {1024, 4096, 65536} uniform keys (direct tier,
// hash tier, grown hash tier), plus a predicate variant, a multi-column
// composite variant, and a NULL-groups variant. The Deep profile adds
// G = 16384 and larger tables.
func HighCardCases(cfg GenConfig) []Case {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Case
	gs := []int{1024, 4096, 65536}
	if cfg.Deep {
		gs = append(gs, 16384)
	}
	for _, layout := range []bpagg.Layout{bpagg.VBP, bpagg.HBP} {
		l := layout.String()
		for _, g := range gs {
			kG := bits.Len(uint(g - 1))
			n := 4 * g
			if limit := 1 << 18; n > limit {
				n = limit
			}
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(rng.Intn(g))
			}
			out = append(out, Case{
				Name:   fmt.Sprintf("%s-hicard-G%d-s%d", l, g, cfg.Seed),
				Layout: layout, K: 16, GK: kG,
				A: genValues(rng, "uniform", n, 16), G: keys,
			})
		}

		// Predicate variant: ~half the rows selected, so some keys vanish
		// from the result and per-group tallies shrink mid-partition.
		{
			const g, n = 4096, 16384
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(rng.Intn(g))
			}
			a := genValues(rng, "uniform", n, 16)
			out = append(out, Case{
				Name:   fmt.Sprintf("%s-hicard-pred-s%d", l, cfg.Seed),
				Layout: layout, K: 16, GK: 12,
				A: a, G: keys,
				Preds: []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.GE, A: a[rng.Intn(n)]}}},
			})
		}

		// Multi-column composite: 6-bit × 10-bit keys pack to 16 bits —
		// up to 65536 distinct composites, hash tier by construction.
		{
			const n = 1 << 16
			g1 := make([]uint64, n)
			g2 := make([]uint64, n)
			for i := range g1 {
				g1[i] = uint64(rng.Intn(64))
				g2[i] = uint64(rng.Intn(1024))
			}
			out = append(out, Case{
				Name:   fmt.Sprintf("%s-hicard-multi-s%d", l, cfg.Seed),
				Layout: layout, K: 16, GK: 6, G2K: 10,
				A: genValues(rng, "uniform", n, 16), G: g1, G2: g2,
			})
		}

		// NULL grouping keys force the legacy walk; kept small so the
		// per-key scan stays cheap.
		{
			const g, n = 1024, 4096
			keys := make([]uint64, n)
			gNulls := make([]bool, n)
			for i := range keys {
				keys[i] = uint64(rng.Intn(g))
				gNulls[i] = rng.Intn(8) == 0
			}
			out = append(out, Case{
				Name:   fmt.Sprintf("%s-hicard-gnulls-s%d", l, cfg.Seed),
				Layout: layout, K: 16, GK: 10,
				A: genValues(rng, "uniform", n, 16), G: keys, GNulls: gNulls,
			})
		}
	}
	return out
}

// groupedExpect is the scalar reference for one case: per-key tallies
// accumulated in a single pass, keys ascending.
type groupedExpect struct {
	keys     []uint64
	counts   []uint64 // selected rows per group (COUNT(*))
	nnz      []uint64 // selected non-NULL measure rows per group
	sums     []uint64
	overflow bool // any group's true sum exceeds uint64
	mins     []uint64
	maxs     []uint64
	allVals  bool // every group has at least one measure value
}

// expectedGrouped computes the reference grouped aggregates with plain
// map-and-loop code.
func expectedGrouped(c *Case) *groupedExpect {
	e := expected(c) // reuses the predicate/selection machinery
	type acc struct {
		count, nnz, sum uint64
		ovf             bool
		min, max        uint64
	}
	m := map[uint64]*acc{}
	for i, s := range e.sel {
		if !s || e.og.IsNull(i) {
			continue
		}
		key := e.og.Vals[i]
		if e.og2 != nil {
			if e.og2.IsNull(i) {
				continue
			}
			key = key<<uint(c.g2k()) | e.og2.Vals[i]
		}
		a := m[key]
		if a == nil {
			a = &acc{}
			m[key] = a
		}
		a.count++
		if !e.oa.IsNull(i) {
			v := e.oa.Vals[i]
			sum, carry := bits.Add64(a.sum, v, 0)
			a.sum = sum
			if carry != 0 {
				a.ovf = true
			}
			if a.nnz == 0 || v < a.min {
				a.min = v
			}
			if a.nnz == 0 || v > a.max {
				a.max = v
			}
			a.nnz++
		}
	}
	ge := &groupedExpect{allVals: true}
	for k := range m {
		ge.keys = append(ge.keys, k)
	}
	sort.Slice(ge.keys, func(i, j int) bool { return ge.keys[i] < ge.keys[j] })
	for _, k := range ge.keys {
		a := m[k]
		ge.counts = append(ge.counts, a.count)
		ge.nnz = append(ge.nnz, a.nnz)
		ge.sums = append(ge.sums, a.sum)
		ge.mins = append(ge.mins, a.min)
		ge.maxs = append(ge.maxs, a.max)
		if a.ovf {
			ge.overflow = true
		}
		if a.nnz == 0 {
			ge.allVals = false
		}
	}
	return ge
}

// legacyRouteCap bounds the legacy comparison leg: the per-key MIN/Equal
// walk is O(G) full scans, so it only runs when the group count is small
// enough to stay inside the sweep's time budget. The single-pass leg
// always runs — that is the tier under test.
const legacyRouteCap = 4096

// CheckGrouped runs the grouped differential matrix for one
// high-cardinality case: fresh table, each thread count, single-pass
// route always and the legacy route when the group count permits, with
// the partition tier asserted against the plan-time strategy rule.
func CheckGrouped(c Case) error {
	if err := validate(&c); err != nil {
		return err
	}
	exp := expectedGrouped(&c)
	threads := c.Threads
	if len(threads) == 0 {
		threads = []int{1, 8}
	}
	tbl := buildTable(&c)
	appendExtras(tbl, &c)

	routes := []string{"singlepass"}
	if len(exp.keys) <= legacyRouteCap {
		routes = append(routes, "legacy")
	}
	for _, th := range threads {
		for _, route := range routes {
			if err := checkGrouped1(&c, exp, tbl, th, route); err != nil {
				return err
			}
		}
	}
	return nil
}

// wantStrategy is the plan-time strategy rule the engine must follow for
// a lazy (single-pass-eligible) grouped query: direct for one grouping
// column within the 10-bit direct key budget, hash otherwise, legacy
// only when grouping-column NULLs gate single-pass off entirely.
func wantStrategy(c *Case) bpagg.GroupStrategy {
	switch {
	case c.GNulls != nil:
		return bpagg.GroupLegacy
	case c.G2 == nil && c.gk() <= 10: // core.DirectKeyBits
		return bpagg.GroupDirect
	}
	return bpagg.GroupHash
}

func checkGrouped1(c *Case, exp *groupedExpect, tbl *bpagg.Table, th int, route string) error {
	e := tag{c, "fresh", "grouped-" + route, th}

	g, err := capture1(func() *bpagg.Grouped {
		q := newQuery(c, tbl, th)
		if route == "legacy" {
			q.Selection()
		}
		if c.G2 != nil {
			return q.GroupBy("g", "g2")
		}
		return q.GroupBy("g")
	})
	if err != nil {
		return e.fail("GROUPBY", "unexpected panic: %v", err)
	}

	if route == "legacy" {
		if g.Strategy() != bpagg.GroupLegacy {
			return e.fail("STRATEGY", "materialized selection must force the legacy walk, got %s", g.Strategy())
		}
	} else if want := wantStrategy(c); g.Strategy() != want {
		return e.fail("STRATEGY", "engine chose %s tier, strategy rule says %s (%d keys, gk=%d)",
			g.Strategy(), want, len(exp.keys), c.gk())
	}

	if ferr := cmpSlice(e, "KEYS", g.Keys(), exp.keys); ferr != nil {
		return ferr
	}
	if ferr := cmpSlice(e, "COUNT", g.Count(), exp.counts); ferr != nil {
		return ferr
	}

	sums, err := capture1(func() []uint64 { return g.Sum("a") })
	if exp.overflow {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail("SUM", "a group sum overflows uint64; engine returned err=%v, want *bpagg.OverflowError", err)
		}
	} else {
		if err != nil {
			return e.fail("SUM", "unexpected error: %v", err)
		}
		if ferr := cmpSlice(e, "SUM", sums, exp.sums); ferr != nil {
			return ferr
		}
	}

	if exp.allVals {
		mins, err := capture1(func() []uint64 { return g.Min("a") })
		if err != nil {
			return e.fail("MIN", "unexpected error: %v", err)
		}
		if ferr := cmpSlice(e, "MIN", mins, exp.mins); ferr != nil {
			return ferr
		}
		maxs, err := capture1(func() []uint64 { return g.Max("a") })
		if err != nil {
			return e.fail("MAX", "unexpected error: %v", err)
		}
		if ferr := cmpSlice(e, "MAX", maxs, exp.maxs); ferr != nil {
			return ferr
		}
	}

	if !exp.overflow && exp.allVals {
		avgs, err := capture1(func() []float64 { return g.Avg("a") })
		if err != nil {
			return e.fail("AVG", "unexpected error: %v", err)
		}
		for i := range exp.keys {
			want := float64(exp.sums[i]) / float64(exp.nnz[i])
			if avgs[i] != want {
				return e.fail("AVG", "group %d (key %d): engine=%v oracle=%v", i, exp.keys[i], avgs[i], want)
			}
		}
	}
	return nil
}
