package diff

import (
	"context"
	"errors"
	"fmt"

	"bpagg"
	"bpagg/internal/oracle"
)

// Positional range/window differential axis. The prefix-sum range index
// (internal/rangeidx) answers filter-free Range/Window aggregates from
// 128-bit prefix differences and sparse-table extremes; queries with
// predicates fall back to the bitmap pipeline with the range as one more
// conjunct. Both routes must agree bit-for-bit with the oracle computed
// over the positional slice of the case's selection — including the
// overflow contract (an over-uint64 range SUM surfaces as
// *bpagg.OverflowError carrying the exact total) and the NULL rules
// (NULL-bearing columns are never index-served, so the fallback's
// non-null COUNT and AVG divisors are checked against the same oracle).
// checkRange/checkWindow run inside Check's {fresh, rebuilt, reloaded} ×
// {1, 8} threads matrix; checkShardedRange/checkShardedWindow run the
// partitioned twins inside CheckSharded's {split, reloaded} matrix, so
// shard pruning and per-shard local-range translation answer to the same
// arbiter.

// rangeProbes returns the deterministic positional probes for an n-row
// table: full, empty, past-the-end clipping, single rows at the head and
// interior, segment-aligned whole segments, and fringe-heavy interior
// shapes where both boundary segments are partial.
func rangeProbes(n int) [][2]int {
	ps := [][2]int{
		{0, n},             // full table
		{0, 0},             // empty prefix
		{n, n + 13},        // starts past the end: clips to empty
		{0, 1},             // head row
		{n / 2, n/2 + 1},   // interior single row
		{64, 192},          // aligned whole segments (clips on small tables)
		{1, max(1, n - 1)}, // both boundary fringes partial
		{n / 4, 3*n/4 + 1}, // interior, misaligned on both ends
	}
	out := ps[:0]
	seen := map[[2]int]bool{}
	for _, p := range ps {
		if p[1] < p[0] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// windowProbes returns the {size, step} window shapes: segment-aligned
// tumbling, fringe-heavy sliding with overlap, and sampling with gaps.
func windowProbes() [][2]int {
	return [][2]int{{64, 64}, {37, 23}, {96, 128}}
}

// rangeSel restricts a selection to rows [lo, hi), clipped to the data.
func rangeSel(base []bool, lo, hi int) []bool {
	out := make([]bool, len(base))
	if hi > len(base) {
		hi = len(base)
	}
	for i := lo; i < hi; i++ {
		out[i] = base[i]
	}
	return out
}

// cmpSumSel is cmpSum against an oracle verdict computed over an ad-hoc
// selection (one range or window) instead of the case-wide expectation.
func cmpSumSel(e tag, agg string, got uint64, gotErr error, oa *oracle.Column, sel []bool) error {
	sumU, fits := oa.SumUint64(sel)
	if !fits {
		var ov *bpagg.OverflowError
		if !errors.As(gotErr, &ov) {
			return e.fail(agg, "true sum %s overflows uint64; engine returned %d err=%v, want *bpagg.OverflowError",
				oa.Sum(sel).String(), got, gotErr)
		}
		if ov.Big().String() != oa.Sum(sel).String() {
			return e.fail(agg, "OverflowError reports %s, true sum is %s", ov.Big().String(), oa.Sum(sel).String())
		}
		return nil
	}
	if gotErr != nil {
		return e.fail(agg, "unexpected error: %v", gotErr)
	}
	if got != sumU {
		return e.fail(agg, "engine=%d oracle=%d", got, sumU)
	}
	return nil
}

// cmpAvgSel mirrors cmpSumSel for AVG: an overflowing sum must surface
// as the same typed error, and a fitting one must divide bit-identically.
func cmpAvgSel(e tag, agg string, got float64, gotOK bool, gotErr error, oa *oracle.Column, sel []bool) error {
	if _, fits := oa.SumUint64(sel); !fits {
		var ov *bpagg.OverflowError
		if !errors.As(gotErr, &ov) {
			return e.fail(agg, "true sum %s overflows uint64; engine returned %v,%v err=%v, want *bpagg.OverflowError",
				oa.Sum(sel).String(), got, gotOK, gotErr)
		}
		return nil
	}
	if gotErr != nil {
		return e.fail(agg, "unexpected error: %v", gotErr)
	}
	want, wantOK := oa.Avg(sel)
	if gotOK != wantOK {
		return e.fail(agg, "engine ok=%v oracle ok=%v", gotOK, wantOK)
	}
	if wantOK && got != want {
		return e.fail(agg, "engine=%v oracle=%v (must be bit-identical)", got, want)
	}
	return nil
}

// rangeAggs is the aggregate battery one positional range answers to,
// shared by the flat and sharded drivers. probe is the range's [lo, hi)
// pair (for cell naming); full gates the rank family (MEDIAN, RANK,
// QUANTILE), which costs a bit-sliced binary search each — on the
// sharded driver every search step is a whole-store fan-out.
type rangeAggs struct {
	CountRows func(context.Context) (uint64, error)
	Count     func(context.Context, string) (uint64, error)
	Sum       func(context.Context, string) (uint64, error)
	PlainSum  func(string) uint64
	Min       func(context.Context, string) (uint64, bool, error)
	Max       func(context.Context, string) (uint64, bool, error)
	Avg       func(context.Context, string) (float64, bool, error)
	Median    func(context.Context, string) (uint64, bool, error)
	Rank      func(context.Context, string, uint64) (uint64, bool, error)
	Quantile  func(context.Context, string, float64) (uint64, bool, error)
}

func checkRangeAggs(e tag, oa *oracle.Column, rsel []bool, probe [2]int, full bool, nr func() rangeAggs) error {
	ctx := context.Background()
	name := func(agg string) string { return fmt.Sprintf("%s[%d,%d)", agg, probe[0], probe[1]) }

	cr, err := nr().CountRows(ctx)
	if ferr := cmpU64(e, name("COUNT(*)"), cr, err, oracle.CountRows(rsel)); ferr != nil {
		return ferr
	}
	cnt, err := nr().Count(ctx, "a")
	if ferr := cmpU64(e, name("COUNT(a)"), cnt, err, oa.Count(rsel)); ferr != nil {
		return ferr
	}

	sum, err := nr().Sum(ctx, "a")
	if ferr := cmpSumSel(e, name("SUM"), sum, err, oa, rsel); ferr != nil {
		return ferr
	}
	psum, err := capture1(func() uint64 { return nr().PlainSum("a") })
	if ferr := cmpSumSel(e, name("SUM(plain)"), psum, err, oa, rsel); ferr != nil {
		return ferr
	}

	var want valOK
	mn, ok, err := nr().Min(ctx, "a")
	want.v, want.ok = oa.Min(rsel)
	if ferr := cmpOK(e, name("MIN"), mn, ok, err, want); ferr != nil {
		return ferr
	}
	mx, ok, err := nr().Max(ctx, "a")
	want.v, want.ok = oa.Max(rsel)
	if ferr := cmpOK(e, name("MAX"), mx, ok, err, want); ferr != nil {
		return ferr
	}

	av, ok, err := nr().Avg(ctx, "a")
	if ferr := cmpAvgSel(e, name("AVG"), av, ok, err, oa, rsel); ferr != nil {
		return ferr
	}

	if !full {
		return nil
	}
	md, ok, err := nr().Median(ctx, "a")
	want.v, want.ok = oa.Median(rsel)
	if ferr := cmpOK(e, name("MEDIAN"), md, ok, err, want); ferr != nil {
		return ferr
	}
	for _, r := range []uint64{1, oa.Count(rsel)} {
		v, ok, err := nr().Rank(ctx, "a", r)
		want.v, want.ok = oa.Rank(rsel, r)
		if ferr := cmpOK(e, name(fmt.Sprintf("RANK(%d)", r)), v, ok, err, want); ferr != nil {
			return ferr
		}
	}
	v, ok, err := nr().Quantile(ctx, "a", 0.5)
	want.v, want.ok = oa.Quantile(rsel, 0.5)
	return cmpOK(e, name("QUANTILE(0.5)"), v, ok, err, want)
}

// checkRange drives the flat positional Range API over the probe battery.
// Predicate-free cases take the index-served O(1) path (NULL-bearing
// columns fall back internally); cases with predicates exercise the
// range-as-conjunct bitmap fallback. Every third probe adds the
// rank-family battery. With deep unset (the secondary thread counts),
// only that rank-bearing subset runs — thread sensitivity lives in the
// kernels the primary thread already swept probe by probe.
func checkRange(c *Case, exp *expectation, state string, tbl *bpagg.Table, th int, deep bool) error {
	e := tag{c, state, "range", th}
	for i, p := range rangeProbes(len(exp.oa.Vals)) {
		p := p
		if !deep && i%3 != 0 {
			continue
		}
		rsel := rangeSel(exp.sel, p[0], p[1])
		nr := func() rangeAggs {
			r := newQuery(c, tbl, th).Range(p[0], p[1])
			return rangeAggs{
				CountRows: r.CountRowsContext,
				Count:     r.CountContext,
				Sum:       r.SumContext,
				PlainSum:  r.Sum,
				Min:       r.MinContext,
				Max:       r.MaxContext,
				Avg:       r.AvgContext,
				Median:    r.MedianContext,
				Rank:      r.RankContext,
				Quantile:  r.QuantileContext,
			}
		}
		if err := checkRangeAggs(e, exp.oa, rsel, p, i%3 == 0, nr); err != nil {
			return err
		}
	}
	return nil
}

// checkShardedRange is checkRange on the partitioned store: the same
// probes route through ShardedRangeQuery, whose shard pruning, local
// range translation, 128-bit partial merge, and range-restricted rank
// search must reproduce the flat verdicts exactly. The rank family runs
// on the full-table probe of the primary thread only: a sharded
// range-restricted rank is a binary search whose every countLE step is
// a whole-store fan-out, and the flat driver already sweeps the family
// probe by probe on both threads.
func checkShardedRange(c *Case, exp *expectation, state string, st *bpagg.ShardedTable, th int, deep bool) error {
	e := tag{c, state, "sharded-range", th}
	for i, p := range rangeProbes(len(exp.oa.Vals)) {
		p := p
		if !deep && i%3 != 0 {
			continue
		}
		rsel := rangeSel(exp.sel, p[0], p[1])
		nr := func() rangeAggs {
			r := newShardedQuery(c, st, th).Range(p[0], p[1])
			return rangeAggs{
				CountRows: r.CountRowsContext,
				Count:     r.CountContext,
				Sum:       r.SumContext,
				PlainSum:  r.Sum,
				Min:       r.MinContext,
				Max:       r.MaxContext,
				Avg:       r.AvgContext,
				Median:    r.MedianContext,
				Rank:      r.RankContext,
				Quantile:  r.QuantileContext,
			}
		}
		if err := checkRangeAggs(e, exp.oa, rsel, p, deep && i == 0, nr); err != nil {
			return err
		}
	}
	return nil
}

// windowAggs is the per-window battery shared by the flat and sharded
// window drivers.
type windowAggs struct {
	CountRows func(context.Context) ([]uint64, error)
	Sum       func(context.Context, string) ([]uint64, error)
	Min       func(context.Context, string) ([]uint64, []bool, error)
	Max       func(context.Context, string) ([]uint64, []bool, error)
	Avg       func(context.Context, string) ([]float64, []bool, error)
}

func checkWindowAggs(e tag, oa *oracle.Column, sel []bool, size, step int, nw func() windowAggs) error {
	ctx := context.Background()
	name := func(agg string) string { return fmt.Sprintf("%s w%d/s%d", agg, size, step) }

	var wsels [][]bool
	for b := 0; b < len(oa.Vals); b += step {
		wsels = append(wsels, rangeSel(sel, b, b+size))
	}
	// The first window whose true sum exceeds uint64, if any: SUM and AVG
	// abort the whole sweep there with the typed overflow error.
	ovIdx := -1
	for i, ws := range wsels {
		if _, fits := oa.SumUint64(ws); !fits {
			ovIdx = i
			break
		}
	}

	crs, err := nw().CountRows(ctx)
	if err != nil {
		return e.fail(name("COUNT(*)"), "unexpected error: %v", err)
	}
	want := make([]uint64, len(wsels))
	for i, ws := range wsels {
		want[i] = oracle.CountRows(ws)
	}
	if ferr := cmpSlice(e, name("COUNT(*)"), crs, want); ferr != nil {
		return ferr
	}

	sums, err := nw().Sum(ctx, "a")
	if ovIdx >= 0 {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail(name("SUM"), "window %d's true sum overflows uint64; engine returned %v err=%v, want *bpagg.OverflowError",
				ovIdx, sums, err)
		}
		if ov.Big().String() != oa.Sum(wsels[ovIdx]).String() {
			return e.fail(name("SUM"), "OverflowError reports %s, window %d's true sum is %s",
				ov.Big().String(), ovIdx, oa.Sum(wsels[ovIdx]).String())
		}
	} else {
		if err != nil {
			return e.fail(name("SUM"), "unexpected error: %v", err)
		}
		for i, ws := range wsels {
			want[i], _ = oa.SumUint64(ws)
		}
		if ferr := cmpSlice(e, name("SUM"), sums, want); ferr != nil {
			return ferr
		}
	}

	type winExtreme struct {
		name   string
		eng    func(context.Context, string) ([]uint64, []bool, error)
		oracle func([]bool) (uint64, bool)
	}
	for _, wx := range []winExtreme{{"MIN", nw().Min, oa.Min}, {"MAX", nw().Max, oa.Max}} {
		vals, oks, err := wx.eng(ctx, "a")
		if err != nil {
			return e.fail(name(wx.name), "unexpected error: %v", err)
		}
		wantOKs := make([]bool, len(wsels))
		for i, ws := range wsels {
			want[i], wantOKs[i] = wx.oracle(ws)
		}
		if ferr := cmpSlice(e, name(wx.name+" oks"), oks, wantOKs); ferr != nil {
			return ferr
		}
		for i := range vals {
			if wantOKs[i] && vals[i] != want[i] {
				return e.fail(name(wx.name), "window %d: engine=%d oracle=%d", i, vals[i], want[i])
			}
		}
	}

	avgs, oks, err := nw().Avg(ctx, "a")
	if ovIdx >= 0 {
		var ov *bpagg.OverflowError
		if !errors.As(err, &ov) {
			return e.fail(name("AVG"), "window %d's true sum overflows uint64; engine returned err=%v, want *bpagg.OverflowError", ovIdx, err)
		}
		return nil
	}
	if err != nil {
		return e.fail(name("AVG"), "unexpected error: %v", err)
	}
	for i, ws := range wsels {
		wantAvg, wantOK := oa.Avg(ws)
		if oks[i] != wantOK {
			return e.fail(name("AVG"), "window %d: engine ok=%v oracle ok=%v", i, oks[i], wantOK)
		}
		if wantOK && avgs[i] != wantAvg {
			return e.fail(name("AVG"), "window %d: engine=%v oracle=%v (must be bit-identical)", i, avgs[i], wantAvg)
		}
	}
	return nil
}

// checkWindow drives the flat Window sweep over every probe shape: the
// index-served prefix-difference sweep for predicate-free cases, the
// per-window bitmap fallback otherwise. With deep unset only the first
// (segment-aligned tumbling) shape runs.
func checkWindow(c *Case, exp *expectation, state string, tbl *bpagg.Table, th int, deep bool) error {
	e := tag{c, state, "window", th}
	for i, p := range windowProbes() {
		p := p
		if !deep && i != 0 {
			continue
		}
		nw := func() windowAggs {
			w := newQuery(c, tbl, th).Window(p[0], p[1])
			return windowAggs{
				CountRows: w.CountRowsContext,
				Sum:       w.SumContext,
				Min:       w.MinContext,
				Max:       w.MaxContext,
				Avg:       w.AvgContext,
			}
		}
		if err := checkWindowAggs(e, exp.oa, exp.sel, p[0], p[1], nw); err != nil {
			return err
		}
	}
	return nil
}

// checkShardedWindow is checkWindow on the partitioned store. The
// fringe-heavy slider (probe 1) stays flat-only: every window is one
// whole-store fan-out here, and the flat driver already sweeps that
// shape; the sharded twin keeps the tumbling and gap shapes.
func checkShardedWindow(c *Case, exp *expectation, state string, st *bpagg.ShardedTable, th int, deep bool) error {
	e := tag{c, state, "sharded-window", th}
	for i, p := range windowProbes() {
		p := p
		if i == 1 || (!deep && i != 0) {
			continue
		}
		nw := func() windowAggs {
			w := newShardedQuery(c, st, th).Window(p[0], p[1])
			return windowAggs{
				CountRows: w.CountRowsContext,
				Sum:       w.SumContext,
				Min:       w.MinContext,
				Max:       w.MaxContext,
				Avg:       w.AvgContext,
			}
		}
		if err := checkWindowAggs(e, exp.oa, exp.sel, p[0], p[1], nw); err != nil {
			return err
		}
	}
	return nil
}
