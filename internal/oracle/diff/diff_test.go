package diff

import (
	"strings"
	"testing"

	"bpagg"
	"bpagg/internal/oracle"
)

// TestValidateRejectsMismatchedColumns pins the harness's own input
// checking: auxiliary columns must match the aggregate column row for
// row, including the appended tails.
func TestValidateRejectsMismatchedColumns(t *testing.T) {
	base := Case{Name: "v", Layout: bpagg.VBP, K: 8, A: []uint64{1, 2, 3}}

	c := base
	c.ANulls = []bool{true}
	if err := Check(c); err == nil || !strings.Contains(err.Error(), "ANulls") {
		t.Errorf("short ANulls: err = %v", err)
	}

	c = base
	c.B = []uint64{1}
	if err := Check(c); err == nil || !strings.Contains(err.Error(), "B length") {
		t.Errorf("short B: err = %v", err)
	}

	c = base
	c.G = []uint64{1, 2}
	if err := Check(c); err == nil || !strings.Contains(err.Error(), "G length") {
		t.Errorf("short G: err = %v", err)
	}

	c = base
	c.B = []uint64{4, 5, 6}
	c.ExtraA = []uint64{9}
	if err := Check(c); err == nil || !strings.Contains(err.Error(), "ExtraB") {
		t.Errorf("missing ExtraB: err = %v", err)
	}
}

// TestCheckDetectsDivergence feeds the harness a case whose oracle
// expectation cannot match (a predicate constant that does not fit the
// engine column is the easiest controlled divergence: the engine panics,
// the oracle answers), proving failures actually surface.
func TestCheckDetectsDivergence(t *testing.T) {
	c := Case{
		Name:   "must-fail",
		Layout: bpagg.VBP,
		K:      4,
		A:      []uint64{1, 2, 3},
		Preds:  []PredSpec{{Col: "a", Pred: oracle.Pred{Op: oracle.LE, A: 1 << 20}}},
	}
	err := Check(c)
	if err == nil {
		t.Fatal("Check passed a case whose predicate constant exceeds the column width")
	}
	if !strings.Contains(err.Error(), "must-fail") {
		t.Errorf("failure does not name the case: %v", err)
	}
}

// TestCasesDeterministic: the generator must be a pure function of its
// seed so a failing case name replays exactly.
func TestCasesDeterministic(t *testing.T) {
	a := Cases(GenConfig{Seed: 42})
	b := Cases(GenConfig{Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("case counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].A) != len(b[i].A) {
			t.Fatalf("case %d differs: %s vs %s", i, a[i].Name, b[i].Name)
		}
		for j := range a[i].A {
			if a[i].A[j] != b[i].A[j] {
				t.Fatalf("case %s: data differs at %d", a[i].Name, j)
			}
		}
	}
	if len(Cases(GenConfig{Seed: 43})) == 0 {
		t.Fatal("seed 43 generated no cases")
	}
}

// TestCasesCoverCriticalAxes: the short profile must always include the
// overflow widths, both layouts, and the crafted adversaries.
func TestCasesCoverCriticalAxes(t *testing.T) {
	cases := Cases(GenConfig{Seed: 1})
	sawK64 := false
	sawHBP, sawVBP := false, false
	crafted := map[string]bool{}
	for _, c := range cases {
		if c.K == 64 {
			sawK64 = true
		}
		if c.Layout == bpagg.HBP {
			sawHBP = true
		} else {
			sawVBP = true
		}
		for _, tag := range []string{"sum-wrap-64", "groupby-overflow", "nulls-ge", "tau-cap-full-seg"} {
			if strings.Contains(c.Name, tag) {
				crafted[tag] = true
			}
		}
	}
	if !sawK64 || !sawHBP || !sawVBP {
		t.Fatalf("axes missing: k64=%v hbp=%v vbp=%v", sawK64, sawHBP, sawVBP)
	}
	for _, tag := range []string{"sum-wrap-64", "groupby-overflow", "nulls-ge", "tau-cap-full-seg"} {
		if !crafted[tag] {
			t.Errorf("crafted case %q missing from sweep", tag)
		}
	}
}
