package oracle

import (
	"math"
	"testing"
)

func TestPredMatches(t *testing.T) {
	cases := []struct {
		p    Pred
		v    uint64
		want bool
	}{
		{Pred{Op: EQ, A: 5}, 5, true},
		{Pred{Op: EQ, A: 5}, 6, false},
		{Pred{Op: NE, A: 5}, 6, true},
		{Pred{Op: LT, A: 5}, 4, true},
		{Pred{Op: LT, A: 5}, 5, false},
		{Pred{Op: LE, A: 5}, 5, true},
		{Pred{Op: GT, A: 5}, 5, false},
		{Pred{Op: GT, A: 5}, 6, true},
		{Pred{Op: GE, A: 5}, 5, true},
		{Pred{Op: Between, A: 2, B: 4}, 2, true},
		{Pred{Op: Between, A: 2, B: 4}, 4, true},
		{Pred{Op: Between, A: 2, B: 4}, 5, false},
		{Pred{Op: In, List: []uint64{1, 9}}, 9, true},
		{Pred{Op: In, List: []uint64{1, 9}}, 2, false},
		{Pred{Op: In}, 0, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("Pred%+v.Matches(%d) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestAggregatesKnownAnswers(t *testing.T) {
	c := New([]uint64{5, 1, 4, 1, 9, 2, 6})
	sel := c.All()
	if got := c.Count(sel); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := c.Sum(sel); !got.IsUint64() || got.Uint64() != 28 {
		t.Errorf("Sum = %v, want 28", got)
	}
	if v, ok := c.Min(sel); !ok || v != 1 {
		t.Errorf("Min = %d,%v want 1", v, ok)
	}
	if v, ok := c.Max(sel); !ok || v != 9 {
		t.Errorf("Max = %d,%v want 9", v, ok)
	}
	if v, ok := c.Avg(sel); !ok || v != 4.0 {
		t.Errorf("Avg = %v,%v want 4", v, ok)
	}
	// sorted: 1 1 2 4 5 6 9; lower median is rank (7+1)/2 = 4 -> 4.
	if v, ok := c.Median(sel); !ok || v != 4 {
		t.Errorf("Median = %d,%v want 4", v, ok)
	}
	if v, ok := c.Rank(sel, 1); !ok || v != 1 {
		t.Errorf("Rank(1) = %d,%v want 1", v, ok)
	}
	if v, ok := c.Rank(sel, 7); !ok || v != 9 {
		t.Errorf("Rank(7) = %d,%v want 9", v, ok)
	}
	if _, ok := c.Rank(sel, 0); ok {
		t.Error("Rank(0) should not be ok")
	}
	if _, ok := c.Rank(sel, 8); ok {
		t.Error("Rank(8) should not be ok")
	}
	if v, ok := c.Quantile(sel, 0); !ok || v != 1 {
		t.Errorf("Quantile(0) = %d,%v want 1", v, ok)
	}
	if v, ok := c.Quantile(sel, 1); !ok || v != 9 {
		t.Errorf("Quantile(1) = %d,%v want 9", v, ok)
	}
}

func TestEvenCountMedianIsLower(t *testing.T) {
	c := New([]uint64{10, 20, 30, 40})
	// Lower median of an even count: rank (4+1)/2 = 2 -> 20, never 30.
	if v, ok := c.Median(c.All()); !ok || v != 20 {
		t.Errorf("Median = %d,%v want lower median 20", v, ok)
	}
}

func TestSumNeverOverflows(t *testing.T) {
	c := New([]uint64{math.MaxUint64, math.MaxUint64, 3})
	sum := c.Sum(c.All())
	if sum.IsUint64() {
		t.Fatalf("Sum %v unexpectedly fits uint64", sum)
	}
	if _, ok := c.SumUint64(c.All()); ok {
		t.Fatal("SumUint64 should report overflow")
	}
	// 2*(2^64-1)+3 = 2^65+1
	want := "36893488147419103233"
	if sum.String() != want {
		t.Fatalf("Sum = %v, want %s", sum, want)
	}
}

func TestNullsAreSkipped(t *testing.T) {
	c := &Column{Vals: []uint64{7, 0, 3}, Nulls: []bool{false, true, false}}
	sel := c.Select(Pred{Op: GE, A: 0})
	if sel[1] {
		t.Fatal("NULL row matched a predicate")
	}
	if got := c.Count(c.All()); got != 2 {
		t.Errorf("Count = %d, want 2 (NULL skipped)", got)
	}
	if got := CountRows(c.All()); got != 3 {
		t.Errorf("CountRows = %d, want 3 (COUNT(*) counts NULL)", got)
	}
	if s, ok := c.SumUint64(c.All()); !ok || s != 10 {
		t.Errorf("Sum = %d,%v want 10", s, ok)
	}
	if v, ok := c.Min(c.All()); !ok || v != 3 {
		t.Errorf("Min = %d,%v want 3 (placeholder 0 not read)", v, ok)
	}
}

func TestGroupBy(t *testing.T) {
	key := New([]uint64{2, 1, 2, 3, 1})
	val := New([]uint64{10, 20, 30, 40, 50})
	keys, groups := key.GroupBy(key.All())
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("keys = %v, want [1 2 3]", keys)
	}
	sums := []uint64{70, 40, 40}
	for i := range keys {
		if s, ok := val.SumUint64(groups[i]); !ok || s != sums[i] {
			t.Errorf("group %d sum = %d, want %d", keys[i], s, sums[i])
		}
	}
}

func TestEmptySelection(t *testing.T) {
	c := New(nil)
	sel := c.All()
	if got := c.Count(sel); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
	if _, ok := c.Min(sel); ok {
		t.Error("Min of empty should not be ok")
	}
	if _, ok := c.Median(sel); ok {
		t.Error("Median of empty should not be ok")
	}
	if s := c.Sum(sel); s.Sign() != 0 {
		t.Errorf("Sum = %v, want 0", s)
	}
}
