// Package oracle is a deliberately naive row-store reference engine for
// differential testing of the bit-parallel aggregation paths (DESIGN.md
// §11). It evaluates the same predicate/aggregate surface as the real
// engine — all comparison predicates plus BETWEEN/IN and NULL handling,
// COUNT/SUM/MIN/MAX/AVG/MEDIAN/rank/quantile, and GROUP BY — over plain
// []uint64 slices with straight-line loops. Sums accumulate in big.Int so
// the oracle can never overflow; everything else is the obvious scalar
// code a first-year student would write. The paper's §V validates its SWAR
// kernels against exactly this kind of scalar recomputation.
//
// The oracle is the arbiter: when it and the engine disagree, the engine
// is wrong (or the oracle has a bug — which is why this package has its
// own brute-force tests and no clever code).
package oracle

import (
	"math/big"
	"sort"
)

// Op enumerates the comparison operators of the engine's predicate
// surface, in the same semantic order as package scan.
type Op int

const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
	Between // A <= v && v <= B
	In      // v ∈ List (empty list matches nothing)
)

// Pred is one predicate against constant codes. For In, List carries the
// members; for Between, A and B are the inclusive bounds; otherwise A is
// the comparison constant.
type Pred struct {
	Op   Op
	A, B uint64
	List []uint64
}

// Matches reports whether a plain (non-NULL) value satisfies the
// predicate.
func (p Pred) Matches(v uint64) bool {
	switch p.Op {
	case EQ:
		return v == p.A
	case NE:
		return v != p.A
	case LT:
		return v < p.A
	case LE:
		return v <= p.A
	case GT:
		return v > p.A
	case GE:
		return v >= p.A
	case Between:
		return p.A <= v && v <= p.B
	case In:
		for _, x := range p.List {
			if v == x {
				return true
			}
		}
		return false
	}
	return false
}

// Column is a plain row-store column: Vals[i] is row i's code, and
// Nulls[i] (when Nulls is non-nil) marks row i as SQL NULL. NULL rows
// keep a placeholder code that no scan or aggregate ever reads, matching
// the engine's validity-bitmap semantics.
type Column struct {
	Vals  []uint64
	Nulls []bool
}

// New returns a column over vals with no NULLs. The slice is referenced,
// not copied.
func New(vals []uint64) *Column { return &Column{Vals: vals} }

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.Vals) }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Select evaluates the predicate over every row and returns the selection
// (NULL compares as unknown: never selected).
func (c *Column) Select(p Pred) []bool {
	sel := make([]bool, len(c.Vals))
	for i, v := range c.Vals {
		sel[i] = !c.IsNull(i) && p.Matches(v)
	}
	return sel
}

// All returns a selection of every row.
func (c *Column) All() []bool {
	sel := make([]bool, len(c.Vals))
	for i := range sel {
		sel[i] = true
	}
	return sel
}

// And intersects two selections into a fresh slice.
func And(a, b []bool) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] && b[i]
	}
	return out
}

// CountRows returns the number of selected rows — SQL COUNT(*), which
// counts NULL rows too.
func CountRows(sel []bool) uint64 {
	var n uint64
	for _, s := range sel {
		if s {
			n++
		}
	}
	return n
}

// Count returns the number of selected non-NULL rows — SQL COUNT(column).
func (c *Column) Count(sel []bool) uint64 {
	var n uint64
	for i, s := range sel {
		if s && !c.IsNull(i) {
			n++
		}
	}
	return n
}

// Sum returns the exact sum of the selected non-NULL values. big.Int
// arithmetic means the result is always the true sum, however wide the
// column or long the selection.
func (c *Column) Sum(sel []bool) *big.Int {
	sum := new(big.Int)
	var v big.Int
	for i, s := range sel {
		if s && !c.IsNull(i) {
			v.SetUint64(c.Vals[i])
			sum.Add(sum, &v)
		}
	}
	return sum
}

// SumUint64 returns the sum when it fits in uint64; ok is false when the
// true sum overflows (the engine must then report an overflow error, not
// a wrapped value).
func (c *Column) SumUint64(sel []bool) (sum uint64, ok bool) {
	b := c.Sum(sel)
	if !b.IsUint64() {
		return 0, false
	}
	return b.Uint64(), true
}

// Min returns the minimum selected non-NULL value; ok is false when the
// effective selection is empty.
func (c *Column) Min(sel []bool) (uint64, bool) {
	var m uint64
	found := false
	for i, s := range sel {
		if s && !c.IsNull(i) {
			if !found || c.Vals[i] < m {
				m = c.Vals[i]
			}
			found = true
		}
	}
	return m, found
}

// Max returns the maximum selected non-NULL value; ok is false when the
// effective selection is empty.
func (c *Column) Max(sel []bool) (uint64, bool) {
	var m uint64
	found := false
	for i, s := range sel {
		if s && !c.IsNull(i) {
			if !found || c.Vals[i] > m {
				m = c.Vals[i]
			}
			found = true
		}
	}
	return m, found
}

// Avg returns the mean of the selected non-NULL values; ok is false when
// the effective selection is empty. When the sum fits in uint64 the
// division replicates the engine's float64(sum)/float64(cnt) bit for bit;
// otherwise the exact big.Int sum is converted (the engine reports
// overflow there, so the value is for diagnostics only).
func (c *Column) Avg(sel []bool) (float64, bool) {
	cnt := c.Count(sel)
	if cnt == 0 {
		return 0, false
	}
	if sum, ok := c.SumUint64(sel); ok {
		return float64(sum) / float64(cnt), true
	}
	f, _ := new(big.Float).SetInt(c.Sum(sel)).Float64()
	return f / float64(cnt), true
}

// Median returns the lower median of the selected non-NULL values — the
// value at 1-based rank (count+1)/2, matching every engine path. ok is
// false when the effective selection is empty.
func (c *Column) Median(sel []bool) (uint64, bool) {
	vals := c.collect(sel)
	if len(vals) == 0 {
		return 0, false
	}
	return c.Rank(sel, (uint64(len(vals))+1)/2)
}

// Rank returns the r-th smallest selected non-NULL value (1-based). ok is
// false when r is 0 or exceeds the effective selection count.
func (c *Column) Rank(sel []bool, r uint64) (uint64, bool) {
	vals := c.collect(sel)
	if r == 0 || r > uint64(len(vals)) {
		return 0, false
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[r-1], true
}

// Quantile returns the value at quantile q in [0, 1] with the engine's
// nearest-rank definition: rank = ceil(q*count) computed with the same
// float arithmetic, q = 0 meaning the minimum. ok is false when the
// effective selection is empty.
func (c *Column) Quantile(sel []bool, q float64) (uint64, bool) {
	cnt := c.Count(sel)
	if cnt == 0 {
		return 0, false
	}
	r := uint64(float64(cnt)*q + 0.999999999)
	if r == 0 {
		r = 1
	}
	if r > cnt {
		r = cnt
	}
	return c.Rank(sel, r)
}

// collect gathers the selected non-NULL values into a fresh slice.
func (c *Column) collect(sel []bool) []uint64 {
	var vals []uint64
	for i, s := range sel {
		if s && !c.IsNull(i) {
			vals = append(vals, c.Vals[i])
		}
	}
	return vals
}

// GroupBy partitions the selection by the distinct non-NULL values of the
// key column, keys ascending — exactly the engine's GroupBy contract.
// groups[i] is the sub-selection of rows whose key equals keys[i].
func (c *Column) GroupBy(sel []bool) (keys []uint64, groups [][]bool) {
	seen := map[uint64]int{}
	for i, s := range sel {
		if !s || c.IsNull(i) {
			continue
		}
		k := c.Vals[i]
		gi, ok := seen[k]
		if !ok {
			gi = len(keys)
			seen[k] = gi
			keys = append(keys, k)
			groups = append(groups, make([]bool, len(sel)))
		}
		groups[gi][i] = true
	}
	// Sort keys ascending, carrying the groups along.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	outK := make([]uint64, len(keys))
	outG := make([][]bool, len(keys))
	for i, j := range idx {
		outK[i], outG[i] = keys[j], groups[j]
	}
	return outK, outG
}

// GroupByComposite partitions the selection by the distinct composite
// keys of several grouping columns, packing column i's value into the
// key at widths[i] bits (first column in the high bits) — exactly the
// engine's multi-column GroupBy contract. Rows NULL in any grouping
// column are dropped. Keys ascend in packed order.
func GroupByComposite(cols []*Column, widths []int, sel []bool) (keys []uint64, groups [][]bool) {
	seen := map[uint64]int{}
rows:
	for i, s := range sel {
		if !s {
			continue
		}
		var k uint64
		for j, c := range cols {
			if c.IsNull(i) {
				continue rows
			}
			k = k<<uint(widths[j]) | c.Vals[i]
		}
		gi, ok := seen[k]
		if !ok {
			gi = len(keys)
			seen[k] = gi
			keys = append(keys, k)
			groups = append(groups, make([]bool, len(sel)))
		}
		groups[gi][i] = true
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	outK := make([]uint64, len(keys))
	outG := make([][]bool, len(keys))
	for i, j := range idx {
		outK[i], outG[i] = keys[j], groups[j]
	}
	return outK, outG
}

// TopK returns the k largest selected values in descending order and
// BottomK the k smallest in ascending order, both with the engine's
// tie-filling semantics (at most k values, padded with the threshold).
func (c *Column) TopK(sel []bool, k int) []uint64 {
	vals := c.collect(sel)
	if k <= 0 || len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	if k > len(vals) {
		k = len(vals)
	}
	return vals[:k]
}

// BottomK is TopK's ascending twin.
func (c *Column) BottomK(sel []bool, k int) []uint64 {
	vals := c.collect(sel)
	if k <= 0 || len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if k > len(vals) {
		k = len(vals)
	}
	return vals[:k]
}
