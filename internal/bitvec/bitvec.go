// Package bitvec implements dense filter bit vectors.
//
// A Bitmap represents the filter bit vector F of the paper: bit i is 1 iff
// tuple i passed the filter. Bits are stored LSB-first in 64-bit words, so
// tuple i lives at bit i%64 of word i/64. The bits at positions >= Len() of
// the last word are always zero — every mutating operation restores that
// invariant, which lets Count, aggregation loops, and word-at-a-time readers
// skip per-call boundary checks.
package bitvec

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a fixed-length dense bit vector.
type Bitmap struct {
	n     int
	words []uint64
}

// New returns an all-zero Bitmap of n bits. n must be >= 0.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns an all-one Bitmap of n bits.
func NewFull(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
	return b
}

// FromWords adopts words as the backing store of an n-bit Bitmap. The
// slice length must match New(n)'s allocation; tail bits are cleared.
func FromWords(n int, words []uint64) *Bitmap {
	if want := (n + wordBits - 1) / wordBits; len(words) != want {
		panic(fmt.Sprintf("bitvec: %d words for %d bits, want %d", len(words), n, want))
	}
	b := &Bitmap{n: n, words: words}
	b.trim()
	return b
}

// FromBools builds a Bitmap from a boolean slice; bit i is set iff v[i].
func FromBools(v []bool) *Bitmap {
	b := New(len(v))
	for i, x := range v {
		if x {
			b.Set(i)
		}
	}
	return b
}

// trim clears the unused high bits of the last word.
func (b *Bitmap) trim() {
	if r := b.n % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Len returns the number of bits in the Bitmap.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words. The caller must preserve the
// zero-tail-bits invariant when mutating them.
func (b *Bitmap) Words() []uint64 { return b.words }

// NumWords returns the number of backing 64-bit words.
func (b *Bitmap) NumWords() int { return len(b.words) }

// Word returns the i-th aligned 64-bit word (bits [64i, 64i+64)).
func (b *Bitmap) Word(i int) uint64 { return b.words[i] }

// SetWord overwrites the i-th aligned word. If i is the last word, the bits
// beyond Len() are discarded.
func (b *Bitmap) SetWord(i int, w uint64) {
	b.words[i] = w
	if i == len(b.words)-1 {
		b.trim()
	}
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: Clear(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetBool sets bit i to v.
func (b *Bitmap) SetBool(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Count returns the number of set bits (the COUNT aggregate over F).
func (b *Bitmap) Count() int {
	var c int
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Resize changes the length to n bits. Growing appends zero bits; shrinking
// discards and zeroes the tail.
func (b *Bitmap) Resize(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	nw := (n + wordBits - 1) / wordBits
	for len(b.words) < nw {
		b.words = append(b.words, 0)
	}
	b.words = b.words[:nw]
	b.n = n
	b.trim()
}

// And intersects b with o in place and returns b. Lengths must match.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.checkLen(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return b
}

// Or unions b with o in place and returns b. Lengths must match.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.checkLen(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return b
}

// AndNot removes o's bits from b in place and returns b. Lengths must match.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.checkLen(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
	return b
}

// Xor symmetric-differences b with o in place and returns b.
func (b *Bitmap) Xor(o *Bitmap) *Bitmap {
	b.checkLen(o)
	for i := range b.words {
		b.words[i] ^= o.words[i]
	}
	return b
}

// Not complements b in place and returns b.
func (b *Bitmap) Not() *Bitmap {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
	return b
}

func (b *Bitmap) checkLen(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", b.n, o.n))
	}
}

// Extract reads count bits (count in [0, 64]) starting at bit offset start.
// Bits beyond Len() read as zero, so callers may extract a full window that
// overhangs the end of the vector.
func (b *Bitmap) Extract(start, count int) uint64 {
	if count == 0 {
		return 0
	}
	if count < 0 || count > wordBits {
		panic(fmt.Sprintf("bitvec: Extract count %d out of range", count))
	}
	wi, off := start/wordBits, uint(start%wordBits)
	var w uint64
	if wi < len(b.words) {
		w = b.words[wi] >> off
	}
	if off != 0 && wi+1 < len(b.words) {
		w |= b.words[wi+1] << (wordBits - off)
	}
	if count < wordBits {
		w &= (uint64(1) << uint(count)) - 1
	}
	return w
}

// Deposit writes the low count bits of w at bit offset start, replacing the
// previous contents of that window. Writes beyond Len() are discarded.
func (b *Bitmap) Deposit(start, count int, w uint64) {
	if count == 0 {
		return
	}
	if count < 0 || count > wordBits {
		panic(fmt.Sprintf("bitvec: Deposit count %d out of range", count))
	}
	mask := ^uint64(0)
	if count < wordBits {
		mask = (uint64(1) << uint(count)) - 1
	}
	w &= mask
	wi, off := start/wordBits, uint(start%wordBits)
	if wi < len(b.words) {
		b.words[wi] = b.words[wi]&^(mask<<off) | w<<off
	}
	if off != 0 && wi+1 < len(b.words) {
		rem := uint(wordBits) - off
		b.words[wi+1] = b.words[wi+1]&^(mask>>rem) | w>>rem
	}
	b.trim()
}

// NextOne returns the position of the first set bit at or after from, or -1
// if there is none.
func (b *Bitmap) NextOne(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	wi, off := from/wordBits, uint(from%wordBits)
	w := b.words[wi] >> off
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// ForEachOne calls fn for every set bit in ascending order.
func (b *Bitmap) ForEachOne(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1 // unset the lowest 1 (paper step 3)
		}
	}
}

// Rank returns the number of set bits strictly below position i.
func (b *Bitmap) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > b.n {
		i = b.n
	}
	wi, off := i/wordBits, uint(i%wordBits)
	var c int
	for j := 0; j < wi; j++ {
		c += bits.OnesCount64(b.words[j])
	}
	if off != 0 {
		c += bits.OnesCount64(b.words[wi] & ((1 << off) - 1))
	}
	return c
}

// String renders the bitmap as a 0/1 string, tuple 0 first, for debugging.
func (b *Bitmap) String() string {
	buf := make([]byte, b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
