package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		if b.Len() != n {
			t.Errorf("Len() = %d, want %d", b.Len(), n)
		}
		if b.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, b.Count())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		b := NewFull(n)
		if b.Count() != n {
			t.Errorf("NewFull(%d).Count() = %d", n, b.Count())
		}
		// Tail invariant: words beyond n are zero.
		if n%64 != 0 && n > 0 {
			last := b.Word(b.NumWords() - 1)
			if last>>(uint(n%64)) != 0 {
				t.Errorf("NewFull(%d) tail bits set: %#x", n, last)
			}
		}
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		b.Set(i)
	}
	if b.Count() != len(idx) {
		t.Fatalf("Count() = %d, want %d", b.Count(), len(idx))
	}
	for _, i := range idx {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Get(2) || b.Get(66) {
		t.Error("unexpected bits set")
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("Clear(64) failed")
	}
	b.SetBool(64, true)
	b.SetBool(0, false)
	if !b.Get(64) || b.Get(0) {
		t.Error("SetBool failed")
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			b.Set(i)
		}()
	}
}

func TestLogicOps(t *testing.T) {
	n := 200
	rng := rand.New(rand.NewSource(7))
	x, y := make([]bool, n), make([]bool, n)
	for i := range x {
		x[i] = rng.Intn(2) == 1
		y[i] = rng.Intn(2) == 1
	}
	bx, by := FromBools(x), FromBools(y)

	and := bx.Clone().And(by)
	or := bx.Clone().Or(by)
	andNot := bx.Clone().AndNot(by)
	xor := bx.Clone().Xor(by)
	not := bx.Clone().Not()
	for i := 0; i < n; i++ {
		if and.Get(i) != (x[i] && y[i]) {
			t.Fatalf("And bit %d", i)
		}
		if or.Get(i) != (x[i] || y[i]) {
			t.Fatalf("Or bit %d", i)
		}
		if andNot.Get(i) != (x[i] && !y[i]) {
			t.Fatalf("AndNot bit %d", i)
		}
		if xor.Get(i) != (x[i] != y[i]) {
			t.Fatalf("Xor bit %d", i)
		}
		if not.Get(i) != !x[i] {
			t.Fatalf("Not bit %d", i)
		}
	}
	// Not preserves the tail invariant.
	if not.Count() != n-bx.Count() {
		t.Fatalf("Not count %d, want %d", not.Count(), n-bx.Count())
	}
}

func TestLogicOpLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestDeMorganProperty(t *testing.T) {
	f := func(xs, ys []bool) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x := FromBools(xs[:n])
		y := FromBools(ys[:n])
		// NOT(x AND y) == NOT x OR NOT y
		lhs := x.Clone().And(y).Not()
		rhs := x.Clone().Not().Or(y.Clone().Not())
		for i := 0; i < n; i++ {
			if lhs.Get(i) != rhs.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExtractDeposit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	ref := make([]bool, n)
	b := New(n)
	for trial := 0; trial < 500; trial++ {
		start := rng.Intn(n)
		count := 1 + rng.Intn(64)
		w := rng.Uint64()
		b.Deposit(start, count, w)
		for j := 0; j < count; j++ {
			if start+j < n {
				ref[start+j] = (w>>uint(j))&1 == 1
			}
		}
		// Full consistency check.
		got := b.Extract(start, count)
		var want uint64
		for j := 0; j < count; j++ {
			if start+j < n && ref[start+j] {
				want |= 1 << uint(j)
			}
		}
		if got != want {
			t.Fatalf("trial %d: Extract(%d,%d) = %#x, want %#x", trial, start, count, got, want)
		}
	}
	for i := 0; i < n; i++ {
		if b.Get(i) != ref[i] {
			t.Fatalf("bit %d drifted from reference", i)
		}
	}
}

func TestExtractOverhang(t *testing.T) {
	b := NewFull(70)
	// Window [40, 104): bits 40..69 are ones, the rest zero.
	got := b.Extract(40, 64)
	want := (uint64(1) << 30) - 1
	if got != want {
		t.Fatalf("Extract(40,64) = %#x, want %#x", got, want)
	}
	if got := b.Extract(100, 64); got != 0 {
		t.Fatalf("Extract beyond end = %#x, want 0", got)
	}
}

func TestDepositOverhangDiscarded(t *testing.T) {
	b := New(70)
	b.Deposit(40, 64, ^uint64(0))
	if b.Count() != 30 {
		t.Fatalf("Count() = %d, want 30", b.Count())
	}
	// Tail invariant must hold after an overhanging deposit.
	if b.Word(1)>>6 != 0 {
		t.Fatalf("tail bits set: %#x", b.Word(1))
	}
}

func TestExtractAligned(t *testing.T) {
	b := New(128)
	b.SetWord(0, 0xDEADBEEFCAFEF00D)
	b.SetWord(1, 0x0123456789ABCDEF)
	if got := b.Extract(0, 64); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("aligned extract word 0: %#x", got)
	}
	if got := b.Extract(64, 64); got != 0x0123456789ABCDEF {
		t.Fatalf("aligned extract word 1: %#x", got)
	}
	if got := b.Extract(32, 64); got != 0x89ABCDEFDEADBEEF {
		t.Fatalf("straddling extract: %#x", got)
	}
}

func TestNextOneAndForEach(t *testing.T) {
	b := New(200)
	set := []int{3, 64, 65, 130, 199}
	for _, i := range set {
		b.Set(i)
	}
	var got []int
	for i := b.NextOne(0); i >= 0; i = b.NextOne(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(set) {
		t.Fatalf("NextOne walk found %v, want %v", got, set)
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("NextOne walk found %v, want %v", got, set)
		}
	}
	var fe []int
	b.ForEachOne(func(i int) { fe = append(fe, i) })
	for i := range set {
		if fe[i] != set[i] {
			t.Fatalf("ForEachOne found %v, want %v", fe, set)
		}
	}
	if b.NextOne(200) != -1 || New(10).NextOne(0) != -1 {
		t.Error("NextOne should return -1 when exhausted")
	}
}

func TestRank(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	for _, i := range []int{0, 1, 3, 4, 64, 100, 200, 300, -5} {
		want := 0
		for j := 0; j < i && j < 200; j++ {
			if b.Get(j) {
				want++
			}
		}
		if got := b.Rank(i); got != want {
			t.Errorf("Rank(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestCountMatchesRankProperty(t *testing.T) {
	f := func(xs []bool) bool {
		b := FromBools(xs)
		return b.Count() == b.Rank(len(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAnyAndString(t *testing.T) {
	b := New(5)
	if b.Any() {
		t.Error("empty bitmap Any() = true")
	}
	b.Set(2)
	if !b.Any() {
		t.Error("Any() = false after Set")
	}
	if got := b.String(); got != "00100" {
		t.Errorf("String() = %q", got)
	}
}

func BenchmarkCount(b *testing.B) {
	bm := NewFull(1 << 20)
	for i := 0; i < b.N; i++ {
		_ = bm.Count()
	}
}

func BenchmarkExtractUnaligned(b *testing.B) {
	bm := NewFull(1 << 20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += bm.Extract((i*52)%(1<<19), 52)
	}
	_ = sink
}
