// Package rangeidx is a per-column prefix-sum index over the per-segment
// aggregate caches: the promotion of zSum and the exact zone bounds from a
// point-wise cache (the fused path serves all-match segments one at a
// time) into an index that answers aggregates over arbitrary row ranges
// without scanning.
//
// Three layers, all maintained incrementally as segments seal:
//
//   - 128-bit prefix sums of the segment sums: SUM/COUNT/AVG over any run
//     of full segments is one 128-bit subtraction (Zhang et al.'s
//     prefix-sums-over-block-aggregates, PAPERS.md). Prefixes are kept in
//     128 bits so the index is exact at any code width; overflow of the
//     uint64 result surfaces at the API layer, never as a wrapped value.
//   - A sparse table over the segment min/max: MIN/MAX over any run of
//     full segments is two overlapping-power-of-two lookups, O(1) after
//     the O(S log S) table build (one ≤log2(S) column per sealed segment).
//   - Fringe kernels (vbp.Frozen / hbp.Frozen): only the two partial
//     boundary segments of a range touch packed words, under an explicit
//     tuple mask — the register-resident filter-word shape of the fused
//     scan→aggregate pipeline.
//
// Concurrency model: a Builder is mutable and owned by the table's append
// lock. Its arrays are append-only, so a Snapshot — an immutable view
// published through an atomic pointer — shares their backing: later
// appends write only beyond every published snapshot's length (or
// reallocate, leaving old backing intact). The open tail segment's packed
// words are the one thing later appends do mutate in place, so a Snapshot
// carries the tail rows as copied plain values and never reads tail words.
package rangeidx

import (
	"math/bits"

	"bpagg/internal/word"
)

// Fringe aggregates one sealed segment of frozen packed words under a
// dense tuple mask (bit j = tuple j of the segment). Implemented by
// vbp.Frozen and hbp.Frozen.
type Fringe interface {
	// SumMasked returns the 128-bit sum of the masked tuples and the
	// packed words touched.
	SumMasked(seg int, mask uint64) (hi, lo uint64, words int)
	// MinMasked returns the minimum masked tuple; ok false on empty mask.
	MinMasked(seg int, mask uint64) (uint64, bool)
	// MaxMasked returns the maximum masked tuple; ok false on empty mask.
	MaxMasked(seg int, mask uint64) (uint64, bool)
	// SegWords returns the packed words one segment occupies — the cost
	// an extreme fringe charges to FringeWords.
	SegWords() int
}

// Cache vouches for exact per-segment aggregates. ok must be false
// whenever exactness cannot be guaranteed — stale caches (adopted zones,
// resumed appends) or code widths where the uint64 segment sum itself may
// have wrapped; the builder then recomputes the segment from its frozen
// words, so the index is exact regardless of cache state.
type Cache interface {
	SegmentExact(seg int) (sum, min, max uint64, ok bool)
}

// Builder maintains the index layers incrementally as segments seal. All
// methods must run under the owning table's append lock.
type Builder struct {
	segRows int
	sealed  int
	// psum[s] = 128-bit sum of segments [0, s); len sealed+1.
	psumHi, psumLo []uint64
	// minTab/maxTab[j][i] = extreme over sealed segments [i, i+2^j).
	minTab, maxTab [][]uint64
}

// NewBuilder returns an empty builder for segments of segRows tuples.
func NewBuilder(segRows int) *Builder {
	return &Builder{segRows: segRows, psumHi: []uint64{0}, psumLo: []uint64{0}}
}

// SegRows returns the tuples per segment.
func (b *Builder) SegRows() int { return b.segRows }

// Sealed returns the number of sealed segments indexed so far.
func (b *Builder) Sealed() int { return b.sealed }

// Extend seals every segment completed by the first rows tuples of the
// column: exact per-segment aggregates come from cache when it can vouch
// for them and are otherwise recomputed from the frozen words, then extend
// the prefix-sum arrays and sparse tables. Cost is O(log S) per segment
// plus the recompute, amortized one segment per segment appended.
func (b *Builder) Extend(rows int, cache Cache, fr Fringe) {
	full := word.LowMask(b.segRows)
	for s := b.sealed; s < rows/b.segRows; s++ {
		var shi, slo, mn, mx uint64
		var ok bool
		if cache != nil {
			slo, mn, mx, ok = cache.SegmentExact(s)
		}
		if !ok {
			shi, slo, _ = fr.SumMasked(s, full)
			mn, _ = fr.MinMasked(s, full)
			mx, _ = fr.MaxMasked(s, full)
		}
		last := len(b.psumHi) - 1
		nh, nl := word.Add128Pair(b.psumHi[last], b.psumLo[last], shi, slo)
		b.psumHi = append(b.psumHi, nh)
		b.psumLo = append(b.psumLo, nl)
		b.minTab = push(b.minTab, mn, minU64)
		b.maxTab = push(b.maxTab, mx, maxU64)
		b.sealed++
	}
}

func minU64(a, c uint64) uint64 {
	if c < a {
		return c
	}
	return a
}

func maxU64(a, c uint64) uint64 {
	if c > a {
		return c
	}
	return a
}

// push appends one sealed segment's extreme to the sparse table: level 0
// gets the value itself; every level j with 2^j ≤ n gains exactly the one
// new window [n-2^j, n), combined from two level j-1 windows.
func push(tab [][]uint64, v uint64, better func(a, b uint64) uint64) [][]uint64 {
	if len(tab) == 0 {
		tab = append(tab, nil)
	}
	tab[0] = append(tab[0], v)
	n := len(tab[0])
	for j := 1; 1<<uint(j) <= n; j++ {
		if j == len(tab) {
			tab = append(tab, nil)
		}
		i := n - 1<<uint(j)
		tab[j] = append(tab[j], better(tab[j-1][i], tab[j-1][i+1<<uint(j-1)]))
	}
	return tab
}

// Snapshot publishes the index state for the first rows tuples as an
// immutable view. tail holds the copied plain values of the open tail
// segment (rows beyond the last sealed boundary); fr is the frozen word
// view backing fringe reads. Extend must have been called for rows first.
func (b *Builder) Snapshot(rows int, tail []uint64, fr Fringe) *Snapshot {
	sealed := rows / b.segRows
	if sealed > b.sealed {
		sealed = b.sealed
	}
	return &Snapshot{
		segRows: b.segRows,
		rows:    rows,
		sealed:  sealed,
		psumHi:  b.psumHi[:sealed+1:sealed+1],
		psumLo:  b.psumLo[:sealed+1:sealed+1],
		minTab:  clipTab(b.minTab, sealed),
		maxTab:  clipTab(b.maxTab, sealed),
		tail:    tail,
		fr:      fr,
	}
}

// clipTab copies the level headers with lengths valid for n sealed
// segments, so a snapshot never observes entries sealed after it.
func clipTab(tab [][]uint64, n int) [][]uint64 {
	out := make([][]uint64, 0, len(tab))
	for j := range tab {
		ln := n - 1<<uint(j) + 1
		if ln <= 0 {
			break
		}
		if ln > len(tab[j]) {
			ln = len(tab[j])
		}
		out = append(out, tab[j][:ln:ln])
	}
	return out
}

// Stats reports what one range lookup cost: full segments answered from
// the prefix arrays / sparse tables, and packed words the two boundary
// fringes touched. Tail rows (served from copied values) count in
// neither.
type Stats struct {
	IndexSegments uint64
	FringeWords   uint64
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.IndexSegments += o.IndexSegments
	s.FringeWords += o.FringeWords
}

// Add is the exported twin of add for callers accumulating across lookups.
func (s *Stats) Add(o Stats) { s.add(o) }

// Snapshot is one epoch's immutable index view: the row high-water mark,
// the sealed prefix arrays and sparse tables, the copied tail values, and
// the frozen fringe kernels. Safe for concurrent use; never mutated.
type Snapshot struct {
	segRows int
	rows    int
	sealed  int
	psumHi  []uint64
	psumLo  []uint64
	minTab  [][]uint64
	maxTab  [][]uint64
	tail    []uint64
	fr      Fringe
}

// Rows returns the snapshot's row high-water mark: rows appended after it
// was published are invisible to every lookup.
func (s *Snapshot) Rows() int { return s.rows }

// SegRows returns the tuples per segment.
func (s *Snapshot) SegRows() int { return s.segRows }

// clip bounds [lo, hi) to the snapshot's visible rows.
func (s *Snapshot) clip(lo, hi int) (int, int) {
	if hi > s.rows {
		hi = s.rows
	}
	if lo > hi {
		lo = hi
	}
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// Sum returns the exact 128-bit sum over rows [lo, hi), clipped to the
// snapshot. Full interior segments come from one prefix difference, the
// two boundary segments from masked fringe kernels, tail rows from the
// copied values.
func (s *Snapshot) Sum(lo, hi int) (sumHi, sumLo uint64, st Stats) {
	lo, hi = s.clip(lo, hi)
	sealedEnd := s.sealed * s.segRows
	for i := maxInt(lo, sealedEnd); i < hi; i++ {
		sumHi, sumLo = word.Add128(sumHi, sumLo, s.tail[i-sealedEnd])
	}
	if lo >= sealedEnd {
		return sumHi, sumLo, st
	}
	end := minInt(hi, sealedEnd)
	segA, offA := lo/s.segRows, lo%s.segRows
	segB, offB := end/s.segRows, end%s.segRows
	if segA == segB {
		// Both bounds inside one segment: a single two-sided fringe.
		h, l, w := s.fr.SumMasked(segA, word.LowMask(offB)&^word.LowMask(offA))
		st.FringeWords += uint64(w)
		sumHi, sumLo = word.Add128Pair(sumHi, sumLo, h, l)
		return sumHi, sumLo, st
	}
	fullA := segA
	if offA != 0 {
		h, l, w := s.fr.SumMasked(segA, word.LowMask(s.segRows)&^word.LowMask(offA))
		st.FringeWords += uint64(w)
		sumHi, sumLo = word.Add128Pair(sumHi, sumLo, h, l)
		fullA++
	}
	if offB != 0 {
		h, l, w := s.fr.SumMasked(segB, word.LowMask(offB))
		st.FringeWords += uint64(w)
		sumHi, sumLo = word.Add128Pair(sumHi, sumLo, h, l)
	}
	if fullA < segB {
		dh, dl := word.Sub128(s.psumHi[segB], s.psumLo[segB], s.psumHi[fullA], s.psumLo[fullA])
		sumHi, sumLo = word.Add128Pair(sumHi, sumLo, dh, dl)
		st.IndexSegments += uint64(segB - fullA)
	}
	return sumHi, sumLo, st
}

// Min returns the minimum over rows [lo, hi), clipped to the snapshot;
// ok is false when the clipped range is empty.
func (s *Snapshot) Min(lo, hi int) (uint64, bool, Stats) {
	return s.extreme(lo, hi, true)
}

// Max is the dual of Min.
func (s *Snapshot) Max(lo, hi int) (uint64, bool, Stats) {
	return s.extreme(lo, hi, false)
}

func (s *Snapshot) extreme(lo, hi int, wantMin bool) (uint64, bool, Stats) {
	var st Stats
	lo, hi = s.clip(lo, hi)
	best, found := uint64(0), false
	take := func(v uint64, ok bool) {
		if !ok {
			return
		}
		if !found || (wantMin && v < best) || (!wantMin && v > best) {
			best = v
		}
		found = true
	}
	sealedEnd := s.sealed * s.segRows
	for i := maxInt(lo, sealedEnd); i < hi; i++ {
		take(s.tail[i-sealedEnd], true)
	}
	if lo >= sealedEnd {
		return best, found, st
	}
	end := minInt(hi, sealedEnd)
	segA, offA := lo/s.segRows, lo%s.segRows
	segB, offB := end/s.segRows, end%s.segRows
	fringe := func(seg int, mask uint64) {
		var v uint64
		var ok bool
		if wantMin {
			v, ok = s.fr.MinMasked(seg, mask)
		} else {
			v, ok = s.fr.MaxMasked(seg, mask)
		}
		if mask != 0 {
			st.FringeWords += uint64(s.fr.SegWords())
		}
		take(v, ok)
	}
	if segA == segB {
		fringe(segA, word.LowMask(offB)&^word.LowMask(offA))
		return best, found, st
	}
	fullA := segA
	if offA != 0 {
		fringe(segA, word.LowMask(s.segRows)&^word.LowMask(offA))
		fullA++
	}
	if offB != 0 {
		fringe(segB, word.LowMask(offB))
	}
	if fullA < segB {
		tab := s.minTab
		better := minU64
		if !wantMin {
			tab, better = s.maxTab, maxU64
		}
		j := bits.Len(uint(segB-fullA)) - 1
		take(better(tab[j][fullA], tab[j][segB-1<<uint(j)]), true)
		st.IndexSegments += uint64(segB - fullA)
	}
	return best, found, st
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
