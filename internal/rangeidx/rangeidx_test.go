package rangeidx

import (
	"math/big"
	"math/rand"
	"testing"

	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

// fringeFor builds the layout column, its frozen view, and the tail copy
// for the first rows values.
type layoutCase struct {
	name    string
	segRows func(k, tau int) int
	build   func(vals []uint64, k, tau int, sealed int) Fringe
}

func layouts() []layoutCase {
	return []layoutCase{
		{
			name:    "vbp",
			segRows: func(k, tau int) int { return vbp.SegBits },
			build: func(vals []uint64, k, tau, sealed int) Fringe {
				return vbp.Pack(vals, k, tau).Freeze(sealed)
			},
		},
		{
			name:    "hbp",
			segRows: func(k, tau int) int { return hbp.New(k, tau).ValuesPerSegment() },
			build: func(vals []uint64, k, tau, sealed int) Fringe {
				return hbp.Pack(vals, k, tau).Freeze(sealed)
			},
		},
	}
}

// naiveSum returns the exact big.Int sum of vals[lo:hi].
func naiveSum(vals []uint64, lo, hi int) *big.Int {
	s := new(big.Int)
	var v big.Int
	for _, x := range vals[lo:hi] {
		s.Add(s, v.SetUint64(x))
	}
	return s
}

func naiveExtreme(vals []uint64, lo, hi int, wantMin bool) (uint64, bool) {
	if lo >= hi {
		return 0, false
	}
	best := vals[lo]
	for _, v := range vals[lo+1 : hi] {
		if (wantMin && v < best) || (!wantMin && v > best) {
			best = v
		}
	}
	return best, true
}

func big128(hi, lo uint64) *big.Int {
	b := new(big.Int).SetUint64(hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(lo))
}

func buildSnapshot(t *testing.T, lc layoutCase, vals []uint64, k, tau int) *Snapshot {
	t.Helper()
	segRows := lc.segRows(k, tau)
	sealed := len(vals) / segRows
	fr := lc.build(vals, k, tau, sealed)
	b := NewBuilder(segRows)
	b.Extend(len(vals), nil, fr)
	tail := append([]uint64(nil), vals[sealed*segRows:]...)
	return b.Snapshot(len(vals), tail, fr)
}

func TestSnapshotAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, lc := range layouts() {
		for _, k := range []int{1, 7, 13, 31, 59, 64} {
			tau := 4
			if tau > k {
				tau = k
			}
			if lc.name == "hbp" {
				tau = hbp.DefaultTau(k)
			}
			for _, n := range []int{0, 1, 63, 64, 65, 130, 1000} {
				vals := make([]uint64, n)
				mask := word.LowMask(k)
				for i := range vals {
					vals[i] = rng.Uint64() & mask
				}
				s := buildSnapshot(t, lc, vals, k, tau)
				ranges := [][2]int{{0, n}, {0, 0}, {n, n}, {0, 1}, {n / 3, 2 * n / 3},
					{1, n}, {0, n - 1}, {n / 2, n/2 + 1}, {63, 65}, {64, 128}, {0, n + 50}}
				for _, r := range ranges {
					lo, hi := r[0], r[1]
					if lo < 0 || lo > n {
						continue
					}
					cl := hi
					if cl > n {
						cl = n
					}
					if lo > cl {
						continue
					}
					sh, sl, _ := s.Sum(lo, hi)
					if got, want := big128(sh, sl), naiveSum(vals, lo, cl); got.Cmp(want) != 0 {
						t.Fatalf("%s k=%d n=%d Sum(%d,%d) = %s, want %s", lc.name, k, n, lo, hi, got, want)
					}
					mn, mok, _ := s.Min(lo, hi)
					wmn, wok := naiveExtreme(vals, lo, cl, true)
					if mok != wok || (mok && mn != wmn) {
						t.Fatalf("%s k=%d n=%d Min(%d,%d) = (%d,%v), want (%d,%v)", lc.name, k, n, lo, hi, mn, mok, wmn, wok)
					}
					mx, xok, _ := s.Max(lo, hi)
					wmx, wok2 := naiveExtreme(vals, lo, cl, false)
					if xok != wok2 || (xok && mx != wmx) {
						t.Fatalf("%s k=%d n=%d Max(%d,%d) = (%d,%v), want (%d,%v)", lc.name, k, n, lo, hi, mx, xok, wmx, wok2)
					}
				}
			}
		}
	}
}

// TestIncrementalMatchesBulk grows a builder value by value and checks
// every intermediate snapshot against a reference over exhaustive ranges.
func TestIncrementalMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, lc := range layouts() {
		k, tau := 9, 3
		segRows := lc.segRows(k, tau)
		n := segRows*3 + segRows/2
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & word.LowMask(k)
		}
		b := NewBuilder(segRows)
		for rows := 0; rows <= n; rows += 13 {
			sealed := rows / segRows
			fr := lc.build(vals[:rows], k, tau, sealed)
			b.Extend(rows, nil, fr)
			tail := append([]uint64(nil), vals[sealed*segRows:rows]...)
			s := b.Snapshot(rows, tail, fr)
			for lo := 0; lo <= rows; lo += 7 {
				for hi := lo; hi <= rows; hi += 11 {
					sh, sl, _ := s.Sum(lo, hi)
					if got, want := big128(sh, sl), naiveSum(vals, lo, hi); got.Cmp(want) != 0 {
						t.Fatalf("%s rows=%d Sum(%d,%d) = %s, want %s", lc.name, rows, lo, hi, got, want)
					}
					mn, mok, _ := s.Min(lo, hi)
					wmn, wok := naiveExtreme(vals, lo, hi, true)
					if mok != wok || (mok && mn != wmn) {
						t.Fatalf("%s rows=%d Min(%d,%d) = (%d,%v), want (%d,%v)", lc.name, rows, lo, hi, mn, mok, wmn, wok)
					}
				}
			}
		}
	}
}

// TestStatsShape pins the cost model: a long aligned range is served from
// the index with zero fringe words; an unaligned range touches at most two
// segments' worth of words.
func TestStatsShape(t *testing.T) {
	for _, lc := range layouts() {
		k, tau := 16, 4
		if lc.name == "hbp" {
			tau = hbp.DefaultTau(k)
		}
		segRows := lc.segRows(k, tau)
		n := segRows * 20
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) & word.LowMask(k)
		}
		s := buildSnapshot(t, lc, vals, k, tau)

		_, _, st := s.Sum(0, n)
		if st.IndexSegments != uint64(20) || st.FringeWords != 0 {
			t.Fatalf("%s aligned full-range stats = %+v, want 20 index segments, 0 fringe words", lc.name, st)
		}
		_, _, st = s.Sum(1, n-1)
		if st.IndexSegments != uint64(18) {
			t.Fatalf("%s unaligned stats = %+v, want 18 index segments", lc.name, st)
		}
		if st.FringeWords == 0 {
			t.Fatalf("%s unaligned range reported no fringe words", lc.name)
		}
	}
}
