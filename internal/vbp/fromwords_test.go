package vbp

import (
	"math/rand"
	"testing"
)

func TestAccessors(t *testing.T) {
	c := Pack([]uint64{1, 2, 3}, 10, 4)
	if c.K() != 10 || c.Tau() != 4 {
		t.Errorf("K=%d Tau=%d", c.K(), c.Tau())
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	vals := randValues(rng, 200, 13)
	orig := Pack(vals, 13, 4)
	groups := make([][]uint64, orig.NumGroups())
	for g := range groups {
		groups[g] = append([]uint64(nil), orig.Groups()[g].Words...)
	}
	got, err := FromWords(13, 4, 200, groups)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got.At(i) != want {
			t.Fatalf("At(%d) = %d, want %d", i, got.At(i), want)
		}
	}
}

func TestFromWordsValidation(t *testing.T) {
	orig := Pack([]uint64{1, 2, 3}, 8, 4)
	good := func() [][]uint64 {
		groups := make([][]uint64, orig.NumGroups())
		for g := range groups {
			groups[g] = append([]uint64(nil), orig.Groups()[g].Words...)
		}
		return groups
	}
	if _, err := FromWords(8, 4, -1, good()); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := FromWords(8, 4, 3, good()[:1]); err == nil {
		t.Error("missing group accepted")
	}
	short := good()
	short[1] = short[1][:2]
	if _, err := FromWords(8, 4, 3, short); err == nil {
		t.Error("short group accepted")
	}
}
