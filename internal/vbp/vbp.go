// Package vbp implements the Vertical Bit Packing storage layout (paper
// §II-A, §II-C; BitWeaving/V of Li & Patel).
//
// A column of k-bit values is stored one bit position per processor word: a
// segment holds 64 consecutive tuples, and word i of the segment carries bit
// i (counting from the most significant bit of the value) of all 64 tuples.
// Tuple j of the segment occupies bit j (LSB-first) of every word, matching
// the filter-bit-vector convention of package bitvec.
//
// For the cache-line optimization of §II-C the k bit positions are split
// into bit-groups of tau bits. All words of one bit-group are stored
// contiguously (segment-major within the group), so a scan that prunes every
// tuple after the first group never touches the memory of later groups.
// The last group may be ragged (k - (B-1)*tau bits).
package vbp

import (
	"fmt"

	"bpagg/internal/word"
)

// SegBits is the number of tuples per VBP segment (one per bit of a word).
const SegBits = 64

// Group is one bit-group: a contiguous run of bit positions of the value,
// stored as numSegments*Bits words.
type Group struct {
	// StartBit is the first bit position of the group, counting from 0 at
	// the value's most significant bit.
	StartBit int
	// Bits is the number of bit positions in the group (tau, except for a
	// ragged last group).
	Bits int
	// Words holds the group's data, indexed [seg*Bits + b] where b is the
	// bit position within the group.
	Words []uint64
}

// Column is a VBP-packed column of n values of k bits each.
type Column struct {
	k      int
	tau    int
	n      int
	groups []Group
	// Per-segment zone map: the min and max value of each segment,
	// maintained on append. Scans prune segments whose range cannot
	// intersect a predicate (and emit all-match words when it is
	// contained), which pays off heavily on sorted or clustered data.
	zMin, zMax []uint64
	// Per-segment materialized aggregate: the sum (mod 2^64) of the
	// segment's values, maintained on append alongside the zones. The
	// fused scan→aggregate path answers all-match segments from zSum and
	// the (exact) zMin/zMax without touching a packed word.
	zSum []uint64
	// cachesOff marks the segment aggregates stale: set when zones are
	// adopted from outside (SetZones) or when appends resume on a column
	// whose earlier segments were never tracked (FromWords). Zones stay
	// usable for conservative pruning; SegmentSum/SegmentRangeExact
	// refuse until RebuildSegmentAggregates recomputes from the data.
	cachesOff bool
}

// New returns an empty VBP column for k-bit values with bit-groups of tau
// bits. k must be in [1, 64] and tau in [1, k].
func New(k, tau int) *Column {
	if k < 1 || k > 64 {
		panic(fmt.Sprintf("vbp: value width %d out of range [1,64]", k))
	}
	if tau < 1 || tau > k {
		panic(fmt.Sprintf("vbp: bit-group size %d out of range [1,%d]", tau, k))
	}
	b := (k + tau - 1) / tau
	groups := make([]Group, b)
	for g := range groups {
		groups[g].StartBit = g * tau
		groups[g].Bits = tau
	}
	groups[b-1].Bits = k - (b-1)*tau
	return &Column{k: k, tau: tau, groups: groups}
}

// Pack builds a VBP column from plain values. Every value must fit in k
// bits.
func Pack(values []uint64, k, tau int) *Column {
	c := New(k, tau)
	c.Append(values...)
	return c
}

// FromWords adopts raw group word slices as an n-value column — the
// deserialization path. groups[g] must hold NumSegments*Bits(g) words in
// the layout documented on Group.
func FromWords(k, tau, n int, groups [][]uint64) (*Column, error) {
	c := New(k, tau)
	if n < 0 {
		return nil, fmt.Errorf("vbp: negative length %d", n)
	}
	c.n = n
	if len(groups) != len(c.groups) {
		return nil, fmt.Errorf("vbp: %d groups, want %d", len(groups), len(c.groups))
	}
	nseg := c.NumSegments()
	for g := range c.groups {
		if want := nseg * c.groups[g].Bits; len(groups[g]) != want {
			return nil, fmt.Errorf("vbp: group %d has %d words, want %d", g, len(groups[g]), want)
		}
		c.groups[g].Words = groups[g]
	}
	return c, nil
}

// K returns the value width in bits.
func (c *Column) K() int { return c.k }

// Tau returns the bit-group size.
func (c *Column) Tau() int { return c.tau }

// Len returns the number of values in the column.
func (c *Column) Len() int { return c.n }

// NumSegments returns the number of 64-tuple segments (the last may be
// partially filled; its unused tuple slots are zero).
func (c *Column) NumSegments() int { return (c.n + SegBits - 1) / SegBits }

// NumGroups returns the number of bit-groups B.
func (c *Column) NumGroups() int { return len(c.groups) }

// Groups exposes the bit-groups. Callers must not resize the slices.
func (c *Column) Groups() []Group { return c.groups }

// Word returns the word of bit position b (within group g) of segment seg.
func (c *Column) Word(g, seg, b int) uint64 {
	return c.groups[g].Words[seg*c.groups[g].Bits+b]
}

// Append adds values to the column. Each value must fit in k bits.
//
// Runs of 64 values starting at a segment boundary take the bulk path: one
// 64x64 bit-matrix transpose yields all bit-position words of the segment
// at once (~6 word operations per row instead of k single-bit deposits per
// value).
func (c *Column) Append(values ...uint64) {
	max := word.LowMask(c.k)
	i := 0
	for i < len(values) {
		if c.n%SegBits == 0 && len(values)-i >= SegBits {
			c.appendSegment(values[i:i+SegBits], max)
			i += SegBits
			continue
		}
		c.appendOne(values[i], max)
		i++
	}
}

// appendSegment packs exactly one full segment via transpose.
func (c *Column) appendSegment(vals []uint64, max uint64) {
	var m [64]uint64
	lo, hi := vals[0], vals[0]
	var sum uint64
	for j, v := range vals {
		if v > max {
			panic(fmt.Sprintf("vbp: value %d does not fit in %d bits", v, c.k))
		}
		m[j] = v
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	c.ensureZones(c.n / SegBits)
	c.zMin = append(c.zMin, lo)
	c.zMax = append(c.zMax, hi)
	if !c.cachesOff {
		c.zSum = append(c.zSum, sum)
	}
	word.Transpose64(&m)
	// Now m[b] holds, at bit j, bit b (LSB-indexed) of value j; the word
	// for bit position p (0 = MSB) is therefore m[k-1-p].
	for g := range c.groups {
		gr := &c.groups[g]
		for b := 0; b < gr.Bits; b++ {
			gr.Words = append(gr.Words, m[c.k-1-(gr.StartBit+b)])
		}
	}
	c.n += SegBits
}

// appendOne is the single-value path for partial segments.
func (c *Column) appendOne(v, max uint64) {
	if v > max {
		panic(fmt.Sprintf("vbp: value %d does not fit in %d bits", v, c.k))
	}
	seg, slot := c.n/SegBits, uint(c.n%SegBits)
	if slot == 0 {
		for g := range c.groups {
			gr := &c.groups[g]
			gr.Words = append(gr.Words, make([]uint64, gr.Bits)...)
		}
		c.ensureZones(seg)
		c.zMin = append(c.zMin, v)
		c.zMax = append(c.zMax, v)
		if !c.cachesOff {
			c.zSum = append(c.zSum, v)
		}
	} else {
		c.ensureZones(seg + 1)
		if v < c.zMin[seg] {
			c.zMin[seg] = v
		}
		if v > c.zMax[seg] {
			c.zMax[seg] = v
		}
		if !c.cachesOff {
			c.zSum[seg] += v
		}
	}
	for g := range c.groups {
		gr := &c.groups[g]
		base := seg * gr.Bits
		for b := 0; b < gr.Bits; b++ {
			bitPos := gr.StartBit + b // 0 = MSB of the value
			if v>>(uint(c.k-1-bitPos))&1 == 1 {
				gr.Words[base+b] |= 1 << slot
			}
		}
	}
	c.n++
}

// At reconstructs value i to plain form. It is the per-value reconstruction
// path whose cost the paper's bit-parallel algorithms avoid; aggregation
// code uses it only for the O(w) finalist values of MIN/MAX.
func (c *Column) At(i int) uint64 {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("vbp: index %d out of range [0,%d)", i, c.n))
	}
	seg, slot := i/SegBits, uint(i%SegBits)
	var v uint64
	for g := range c.groups {
		gr := &c.groups[g]
		base := seg * gr.Bits
		for b := 0; b < gr.Bits; b++ {
			bit := gr.Words[base+b] >> slot & 1
			v |= bit << uint(c.k-1-(gr.StartBit+b))
		}
	}
	return v
}

// Unpack reconstructs the whole column to plain form (for tests and
// debugging).
func (c *Column) Unpack() []uint64 {
	out := make([]uint64, c.n)
	for i := range out {
		out[i] = c.At(i)
	}
	return out
}

// SegmentValues returns how many tuples of segment seg hold real data (64
// for all but possibly the last segment).
func (c *Column) SegmentValues(seg int) int {
	if seg == c.NumSegments()-1 {
		if r := c.n % SegBits; r != 0 {
			return r
		}
	}
	return SegBits
}

// Zones exposes the per-segment zone arrays for serialization; both are
// nil or shorter than NumSegments when zones are (partially) untracked.
func (c *Column) Zones() (zMin, zMax []uint64) { return c.zMin, c.zMax }

// SetZones adopts zone arrays (the deserialization path). Lengths must
// equal NumSegments and every range must be ordered and fit in k bits.
func (c *Column) SetZones(zMin, zMax []uint64) error {
	nseg := c.NumSegments()
	if len(zMin) != nseg || len(zMax) != nseg {
		return fmt.Errorf("%s: zone arrays have %d/%d entries, want %d", "vbp", len(zMin), len(zMax), nseg)
	}
	max := word.LowMask(c.k)
	for i := range zMin {
		if zMin[i] > zMax[i] || zMax[i] > max {
			return fmt.Errorf("%s: invalid zone [%d, %d] at segment %d", "vbp", zMin[i], zMax[i], i)
		}
	}
	c.zMin, c.zMax = zMin, zMax
	// Adopted zones are validated for soundness, not exactness, so the
	// segment-aggregate caches stay off until RebuildSegmentAggregates.
	c.cachesOff = true
	c.zSum = nil
	return nil
}

// ZoneRange returns the minimum and maximum value stored in segment seg.
// ok is false when no zone is tracked for the segment (columns adopted via
// FromWords carry no zones); callers must then assume the full k-bit range.
func (c *Column) ZoneRange(seg int) (lo, hi uint64, ok bool) {
	if seg >= len(c.zMin) {
		return 0, word.LowMask(c.k), false
	}
	return c.zMin[seg], c.zMax[seg], true
}

// ensureZones pads conservative full-range zones for segments [len, upto)
// — needed when appends resume on a column adopted via FromWords. Padded
// zones are sound for pruning but not exact, so the segment-aggregate
// caches are disabled until RebuildSegmentAggregates.
func (c *Column) ensureZones(upto int) {
	if len(c.zMin) < upto {
		c.cachesOff = true
		c.zSum = nil
	}
	for len(c.zMin) < upto {
		c.zMin = append(c.zMin, 0)
		c.zMax = append(c.zMax, word.LowMask(c.k))
	}
}

// SegmentSum returns the sum (mod 2^64) of the values stored in segment
// seg. ok is false when the cache is stale or untracked (see
// RebuildSegmentAggregates).
func (c *Column) SegmentSum(seg int) (sum uint64, ok bool) {
	if c.cachesOff || seg >= len(c.zSum) {
		return 0, false
	}
	return c.zSum[seg], true
}

// SegmentRangeExact returns the exact minimum and maximum value stored in
// segment seg — unlike ZoneRange, which may return conservative bounds
// for adopted or padded zones. ok is false when exactness cannot be
// guaranteed.
func (c *Column) SegmentRangeExact(seg int) (lo, hi uint64, ok bool) {
	if c.cachesOff || seg >= len(c.zMin) {
		return 0, 0, false
	}
	return c.zMin[seg], c.zMax[seg], true
}

// RebuildSegmentAggregates recomputes the per-segment zones and sums from
// the packed words, re-enabling the exact segment-aggregate caches after
// FromWords/SetZones. The deserializer calls it for columns that carry
// zones, so a reloaded column fuses as well as a freshly packed one.
func (c *Column) RebuildSegmentAggregates() {
	nseg := c.NumSegments()
	c.zMin = make([]uint64, nseg)
	c.zMax = make([]uint64, nseg)
	c.zSum = make([]uint64, nseg)
	for seg := 0; seg < nseg; seg++ {
		base := seg * SegBits
		cnt := c.SegmentValues(seg)
		lo, hi, sum := ^uint64(0), uint64(0), uint64(0)
		for j := 0; j < cnt; j++ {
			v := c.At(base + j)
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		c.zMin[seg], c.zMax[seg], c.zSum[seg] = lo, hi, sum
	}
	c.cachesOff = false
}

// MemoryWords returns the number of 64-bit words backing the column,
// used by space-efficiency reporting (VBP stores exactly k bits per value,
// §II-D).
func (c *Column) MemoryWords() int {
	var t int
	for g := range c.groups {
		t += len(c.groups[g].Words)
	}
	return t
}
