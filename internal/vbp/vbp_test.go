package vbp

import (
	"math/rand"
	"testing"

	"bpagg/internal/word"
)

func randValues(rng *rand.Rand, n, k int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() & word.LowMask(k)
	}
	return v
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 7, 8, 25, 33, 63, 64} {
		for _, tau := range []int{1, 2, 4, k} {
			if tau > k {
				continue
			}
			for _, n := range []int{0, 1, 63, 64, 65, 200} {
				vals := randValues(rng, n, k)
				c := Pack(vals, k, tau)
				if c.Len() != n {
					t.Fatalf("k=%d tau=%d n=%d: Len=%d", k, tau, n, c.Len())
				}
				got := c.Unpack()
				for i := range vals {
					if got[i] != vals[i] {
						t.Fatalf("k=%d tau=%d n=%d: value %d = %d, want %d",
							k, tau, n, i, got[i], vals[i])
					}
				}
			}
		}
	}
}

func TestGroupShape(t *testing.T) {
	c := New(25, 4)
	if c.NumGroups() != 7 {
		t.Fatalf("k=25 tau=4: NumGroups=%d, want 7", c.NumGroups())
	}
	groups := c.Groups()
	for g := 0; g < 6; g++ {
		if groups[g].Bits != 4 {
			t.Errorf("group %d bits = %d, want 4", g, groups[g].Bits)
		}
		if groups[g].StartBit != g*4 {
			t.Errorf("group %d start = %d", g, groups[g].StartBit)
		}
	}
	if groups[6].Bits != 1 {
		t.Errorf("ragged last group bits = %d, want 1", groups[6].Bits)
	}
}

func TestSegmentLayout(t *testing.T) {
	// 64 values whose bit pattern we can predict: value j = j (6 bits).
	vals := make([]uint64, 64)
	for j := range vals {
		vals[j] = uint64(j)
	}
	c := Pack(vals, 6, 3)
	if c.NumSegments() != 1 {
		t.Fatalf("NumSegments = %d", c.NumSegments())
	}
	// Word of bit position p holds bit (k-1-p of the value) of each tuple at
	// tuple position j.
	for p := 0; p < 6; p++ {
		g, b := p/3, p%3
		w := c.Word(g, 0, b)
		for j := 0; j < 64; j++ {
			want := uint64(j) >> uint(6-1-p) & 1
			if w>>uint(j)&1 != want {
				t.Fatalf("bit position %d tuple %d: got %d want %d", p, j, w>>uint(j)&1, want)
			}
		}
	}
}

func TestSegmentValues(t *testing.T) {
	c := Pack(randValues(rand.New(rand.NewSource(1)), 130, 8), 8, 4)
	if c.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d", c.NumSegments())
	}
	if c.SegmentValues(0) != 64 || c.SegmentValues(1) != 64 {
		t.Error("full segments should report 64 values")
	}
	if c.SegmentValues(2) != 2 {
		t.Errorf("tail segment values = %d, want 2", c.SegmentValues(2))
	}
	full := Pack(randValues(rand.New(rand.NewSource(2)), 128, 8), 8, 4)
	if full.SegmentValues(1) != 64 {
		t.Error("exactly-full tail segment should report 64")
	}
}

func TestMemoryWords(t *testing.T) {
	// 128 values of 10 bits: 2 segments * 10 words = exactly k bits/value.
	c := Pack(randValues(rand.New(rand.NewSource(3)), 128, 10), 10, 4)
	if got := c.MemoryWords(); got != 20 {
		t.Errorf("MemoryWords = %d, want 20", got)
	}
}

func TestAppendIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New(12, 4)
	var ref []uint64
	for i := 0; i < 150; i++ {
		v := rng.Uint64() & word.LowMask(12)
		c.Append(v)
		ref = append(ref, v)
		if c.At(i) != v {
			t.Fatalf("At(%d) immediately after append: got %d want %d", i, c.At(i), v)
		}
	}
	for i, want := range ref {
		if got := c.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	cases := []struct{ k, tau int }{{0, 1}, {65, 4}, {8, 0}, {8, 9}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.k, c.tau)
				}
			}()
			New(c.k, c.tau)
		}()
	}
}

func TestOversizedValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append of oversized value did not panic")
		}
	}()
	New(4, 2).Append(16)
}

func TestAtOutOfRangePanics(t *testing.T) {
	c := Pack([]uint64{1, 2, 3}, 4, 2)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			c.At(i)
		}()
	}
}

func TestBulkAppendMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, k := range []int{1, 7, 25, 64} {
		vals := randValues(rng, 300, k)
		tau := 4
		if tau > k {
			tau = k
		}
		bulk := Pack(vals, k, tau)
		one := New(k, tau)
		for _, v := range vals {
			one.Append(v)
		}
		for g := range bulk.groups {
			for wi := range bulk.groups[g].Words {
				if bulk.groups[g].Words[wi] != one.groups[g].Words[wi] {
					t.Fatalf("k=%d: word (%d,%d) differs between bulk and incremental", k, g, wi)
				}
			}
		}
	}
}

func BenchmarkPackBulk(b *testing.B) {
	vals := randValues(rand.New(rand.NewSource(1)), 1<<16, 25)
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		Pack(vals, 25, 4)
	}
}

func BenchmarkPackIncremental(b *testing.B) {
	vals := randValues(rand.New(rand.NewSource(1)), 1<<16, 25)
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		c := New(25, 4)
		for _, v := range vals {
			c.Append(v)
		}
	}
}
