package vbp

import (
	"math/bits"

	"bpagg/internal/word"
)

// Frozen is an immutable view over a column's sealed packed words, captured
// for the prefix-sum range index (internal/rangeidx). Sealed segments are
// write-once — appends only ever mutate the open tail segment's words, and
// slice growth either writes beyond the captured length or reallocates,
// leaving the captured backing intact — so a Frozen view taken under the
// table's append lock can be read concurrently with later appends.
//
// Its kernels are the fringe kernels of the range index: a range query's
// two partial boundary segments are aggregated under an explicit tuple
// mask, the same register-resident filter-word shape the fused
// scan→aggregate pipeline uses.
type Frozen struct {
	k      int
	groups []Group // Words headers truncated to the sealed segments
}

// Freeze captures the first sealed segments of the column as a Frozen view.
// It must be called while no append is in flight (the table's append lock).
func (c *Column) Freeze(sealed int) *Frozen {
	f := &Frozen{k: c.k, groups: make([]Group, len(c.groups))}
	for g := range c.groups {
		gr := c.groups[g]
		n := sealed * gr.Bits
		if n > len(gr.Words) {
			n = len(gr.Words)
		}
		f.groups[g] = Group{StartBit: gr.StartBit, Bits: gr.Bits, Words: gr.Words[:n:n]}
	}
	return f
}

// SegRows returns the number of tuples per segment.
func (f *Frozen) SegRows() int { return SegBits }

// SegWords returns the packed words one segment occupies: one per bit
// position.
func (f *Frozen) SegWords() int { return f.k }

// SumMasked returns the 128-bit sum of the segment's tuples selected by
// mask (bit j = tuple j of the segment), plus the packed words touched.
// It is the per-bit-plane popcount kernel of VBPSumRange restricted to one
// segment: popcount(plane & mask) tuples contribute 2^(k-1-p) each.
func (f *Frozen) SumMasked(seg int, mask uint64) (hi, lo uint64, words int) {
	if mask == 0 {
		return 0, 0, 0
	}
	for g := range f.groups {
		gr := &f.groups[g]
		base := seg * gr.Bits
		for b := 0; b < gr.Bits; b++ {
			cnt := uint64(bits.OnesCount64(gr.Words[base+b] & mask))
			hi, lo = word.AddShift128(hi, lo, cnt, uint(f.k-1-(gr.StartBit+b)))
		}
	}
	return hi, lo, f.k
}

// MinMasked returns the minimum of the segment's masked tuples via a
// bit-plane descent (MSB to LSB): tuples with a zero at the current plane
// are strictly smaller, so they become the new candidate set whenever any
// survive. ok is false when the mask is empty.
func (f *Frozen) MinMasked(seg int, mask uint64) (uint64, bool) {
	if mask == 0 {
		return 0, false
	}
	cand := mask
	var v uint64
	for g := range f.groups {
		gr := &f.groups[g]
		base := seg * gr.Bits
		for b := 0; b < gr.Bits; b++ {
			w := gr.Words[base+b]
			if z := cand &^ w; z != 0 {
				cand = z
			} else {
				v |= 1 << uint(f.k-1-(gr.StartBit+b))
			}
		}
	}
	return v, true
}

// MaxMasked is the dual of MinMasked: tuples with a one at the current
// plane are strictly larger.
func (f *Frozen) MaxMasked(seg int, mask uint64) (uint64, bool) {
	if mask == 0 {
		return 0, false
	}
	cand := mask
	var v uint64
	for g := range f.groups {
		gr := &f.groups[g]
		base := seg * gr.Bits
		for b := 0; b < gr.Bits; b++ {
			if o := cand & gr.Words[base+b]; o != 0 {
				cand = o
				v |= 1 << uint(f.k-1-(gr.StartBit+b))
			}
		}
	}
	return v, true
}
