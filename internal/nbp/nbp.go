// Package nbp implements the non-bit-parallel aggregation baseline of the
// paper (§III introduction): the method suggested by BitWeaving for
// aggregating after a bit-parallel scan.
//
// For each set bit of the filter bit vector F — found with the
// F AND (F-1) erasure loop — the corresponding data value is reconstructed
// from its packed form into a standalone 64-bit word, and the aggregate is
// computed over the plain values. The reconstruction is the cost the
// bit-parallel algorithms of package core avoid: a VBP value gathers one
// bit from each of k words; an HBP value shifts and masks one field from
// each of its B bit-group words.
//
// MEDIAN collects the reconstructed values and runs quickselect — the
// natural plain-form r-selection.
package nbp

import (
	"math/bits"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
)

// Count returns the number of tuples passing the filter. Counting needs no
// reconstruction, so the paper's NBP and BP COUNT coincide.
func Count(f *bitvec.Bitmap) uint64 {
	return uint64(f.Count())
}

// valueSource reconstructs tuple i to plain form. Both layouts implement it.
type valueSource interface {
	At(i int) uint64
	Len() int
}

// forEachValue drives the paper's four-step reconstruction loop: walk each
// word of F, peel the lowest set bit, reconstruct that tuple, repeat until
// the word is exhausted.
func forEachValue(col valueSource, f *bitvec.Bitmap, fn func(v uint64)) {
	if f.Len() != col.Len() {
		panic("nbp: filter length does not match column length")
	}
	words := f.Words()
	for wi, w := range words {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			fn(col.At(i))
			w &= w - 1
		}
	}
}

// Sum aggregates SUM by reconstructing every passing value.
func Sum(col valueSource, f *bitvec.Bitmap) uint64 {
	var sum uint64
	forEachValue(col, f, func(v uint64) { sum += v })
	return sum
}

// Sum128 aggregates SUM into a 128-bit accumulator — the checked twin of
// Sum, used when the column is wide or long enough that the true total
// could exceed uint64 (hi != 0 then signals overflow to the caller).
func Sum128(col valueSource, f *bitvec.Bitmap) (hi, lo uint64) {
	forEachValue(col, f, func(v uint64) {
		nl, carry := bits.Add64(lo, v, 0)
		lo = nl
		hi += carry
	})
	return hi, lo
}

// Min aggregates MIN; ok is false when no tuple passes.
func Min(col valueSource, f *bitvec.Bitmap) (uint64, bool) {
	var m uint64
	found := false
	forEachValue(col, f, func(v uint64) {
		if !found || v < m {
			m, found = v, true
		}
	})
	return m, found
}

// Max aggregates MAX; ok is false when no tuple passes.
func Max(col valueSource, f *bitvec.Bitmap) (uint64, bool) {
	var m uint64
	found := false
	forEachValue(col, f, func(v uint64) {
		if !found || v > m {
			m, found = v, true
		}
	})
	return m, found
}

// Avg aggregates AVG; ok is false when no tuple passes.
func Avg(col valueSource, f *bitvec.Bitmap) (float64, bool) {
	var sum, cnt uint64
	forEachValue(col, f, func(v uint64) { sum += v; cnt++ })
	if cnt == 0 {
		return 0, false
	}
	return float64(sum) / float64(cnt), true
}

// Median aggregates the lower MEDIAN; ok is false when no tuple passes.
func Median(col valueSource, f *bitvec.Bitmap) (uint64, bool) {
	vals := collect(col, f)
	if len(vals) == 0 {
		return 0, false
	}
	return Quickselect(vals, (uint64(len(vals))+1)/2), true
}

// Rank returns the r-th smallest passing value (1-based); ok is false when
// fewer than r tuples pass or r == 0.
func Rank(col valueSource, f *bitvec.Bitmap, r uint64) (uint64, bool) {
	vals := collect(col, f)
	if r == 0 || r > uint64(len(vals)) {
		return 0, false
	}
	return Quickselect(vals, r), true
}

func collect(col valueSource, f *bitvec.Bitmap) []uint64 {
	vals := make([]uint64, 0, f.Count())
	forEachValue(col, f, func(v uint64) { vals = append(vals, v) })
	return vals
}

// Quickselect returns the r-th smallest element (1-based) of vals,
// reordering vals in place. It uses median-of-three pivoting with a
// three-way partition, so duplicate-heavy inputs stay linear.
func Quickselect(vals []uint64, r uint64) uint64 {
	lo, hi := 0, len(vals)-1
	k := int(r - 1)
	for lo < hi {
		p := medianOfThree(vals, lo, hi)
		lt, gt := partition3(vals, lo, hi, p)
		switch {
		case k < lt:
			hi = lt - 1
		case k > gt:
			lo = gt + 1
		default:
			return vals[k]
		}
	}
	return vals[k]
}

// medianOfThree returns a pivot value drawn from the ends and middle.
func medianOfThree(v []uint64, lo, hi int) uint64 {
	mid := int(uint(lo+hi) >> 1)
	a, b, c := v[lo], v[mid], v[hi]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

// partition3 performs a Dutch-national-flag partition of v[lo..hi] around
// pivot p, returning the bounds [lt, gt] of the equal run.
func partition3(v []uint64, lo, hi int, p uint64) (lt, gt int) {
	lt, gt = lo, hi
	i := lo
	for i <= gt {
		switch {
		case v[i] < p:
			v[i], v[lt] = v[lt], v[i]
			lt++
			i++
		case v[i] > p:
			v[i], v[gt] = v[gt], v[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt
}

// Compile-time checks that both layouts satisfy the reconstruction
// interface.
var (
	_ valueSource = (*vbp.Column)(nil)
	_ valueSource = (*hbp.Column)(nil)
)
