package nbp

import (
	"math/rand"
	"testing"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func TestParallelNBPMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, sh := range []struct {
		n   int
		k   int
		sel float64
	}{
		{1, 8, 1}, {700, 25, 0.3}, {3000, 12, 0.01}, {500, 8, 0},
	} {
		vals := make([]uint64, sh.n)
		f := bitvec.New(sh.n)
		for i := range vals {
			vals[i] = rng.Uint64() & word.LowMask(sh.k)
			if rng.Float64() < sh.sel {
				f.Set(i)
			}
		}
		cols := []valueSource{
			vbp.Pack(vals, sh.k, 4),
			hbp.Pack(vals, sh.k, hbp.DefaultTau(sh.k)),
		}
		for ci, col := range cols {
			for _, o := range []Options{{Threads: 0}, {Threads: 1}, {Threads: 3}, {Threads: 16}} {
				if got, want := SumOpt(col, f, o), Sum(col, f); got != want {
					t.Fatalf("col %d SumOpt %+v: got %d want %d", ci, o, got, want)
				}
				gm, okm := MinOpt(col, f, o)
				wm, wok := Min(col, f)
				if gm != wm || okm != wok {
					t.Fatalf("col %d MinOpt %+v: got (%d,%v) want (%d,%v)", ci, o, gm, okm, wm, wok)
				}
				gm, okm = MaxOpt(col, f, o)
				wm, wok = Max(col, f)
				if gm != wm || okm != wok {
					t.Fatalf("col %d MaxOpt %+v: got (%d,%v) want (%d,%v)", ci, o, gm, okm, wm, wok)
				}
				gm, okm = MedianOpt(col, f, o)
				wm, wok = Median(col, f)
				if gm != wm || okm != wok {
					t.Fatalf("col %d MedianOpt %+v: got (%d,%v) want (%d,%v)", ci, o, gm, okm, wm, wok)
				}
				ga, oka := AvgOpt(col, f, o)
				wa, wokA := Avg(col, f)
				if ga != wa || oka != wokA {
					t.Fatalf("col %d AvgOpt %+v: got (%v,%v) want (%v,%v)", ci, o, ga, oka, wa, wokA)
				}
				u := uint64(f.Count())
				for _, r := range []uint64{0, 1, u / 2, u, u + 1} {
					gr, okr := RankOpt(col, f, r, o)
					wr, wokR := Rank(col, f, r)
					if gr != wr || okr != wokR {
						t.Fatalf("col %d RankOpt(%d) %+v: got (%d,%v) want (%d,%v)", ci, r, o, gr, okr, wr, wokR)
					}
				}
			}
		}
	}
}
