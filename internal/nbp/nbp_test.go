package nbp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bpagg/internal/bitvec"
	"bpagg/internal/hbp"
	"bpagg/internal/vbp"
	"bpagg/internal/word"
)

func makeData(rng *rand.Rand, n, k int, sel float64) ([]uint64, *bitvec.Bitmap, []uint64) {
	vals := make([]uint64, n)
	f := bitvec.New(n)
	var kept []uint64
	for i := range vals {
		vals[i] = rng.Uint64() & word.LowMask(k)
		if rng.Float64() < sel {
			f.Set(i)
			kept = append(kept, vals[i])
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	return vals, f, kept
}

func TestAggregatesBothLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, sh := range []struct {
		n   int
		k   int
		sel float64
	}{
		{1, 4, 1}, {64, 8, 0.5}, {257, 25, 0.1}, {300, 12, 0.9}, {100, 8, 0},
	} {
		vals, f, kept := makeData(rng, sh.n, sh.k, sh.sel)
		cols := []valueSource{
			vbp.Pack(vals, sh.k, 4),
			hbp.Pack(vals, sh.k, hbp.DefaultTau(sh.k)),
		}
		var wantSum uint64
		for _, v := range kept {
			wantSum += v
		}
		for ci, col := range cols {
			if got := Sum(col, f); got != wantSum {
				t.Fatalf("col %d Sum = %d, want %d", ci, got, wantSum)
			}
			gotMin, okMin := Min(col, f)
			gotMax, okMax := Max(col, f)
			gotMed, okMed := Median(col, f)
			if okMin != (len(kept) > 0) || okMax != okMin || okMed != okMin {
				t.Fatalf("col %d ok flags wrong", ci)
			}
			if len(kept) > 0 {
				if gotMin != kept[0] {
					t.Fatalf("col %d Min = %d, want %d", ci, gotMin, kept[0])
				}
				if gotMax != kept[len(kept)-1] {
					t.Fatalf("col %d Max = %d, want %d", ci, gotMax, kept[len(kept)-1])
				}
				wantMed := kept[(len(kept)+1)/2-1]
				if gotMed != wantMed {
					t.Fatalf("col %d Median = %d, want %d", ci, gotMed, wantMed)
				}
				for _, r := range []uint64{1, uint64(len(kept)) / 2, uint64(len(kept))} {
					if r == 0 {
						continue
					}
					if got, ok := Rank(col, f, r); !ok || got != kept[r-1] {
						t.Fatalf("col %d Rank(%d) = (%d,%v), want %d", ci, r, got, ok, kept[r-1])
					}
				}
				avg, _ := Avg(col, f)
				if want := float64(wantSum) / float64(len(kept)); avg != want {
					t.Fatalf("col %d Avg = %v, want %v", ci, avg, want)
				}
			}
		}
	}
}

func TestEmptySelection(t *testing.T) {
	col := vbp.Pack([]uint64{5, 6}, 4, 2)
	f := bitvec.New(2)
	if Sum(col, f) != 0 {
		t.Error("Sum over empty selection should be 0")
	}
	if _, ok := Min(col, f); ok {
		t.Error("Min over empty selection should report !ok")
	}
	if _, ok := Rank(col, f, 1); ok {
		t.Error("Rank over empty selection should report !ok")
	}
	if _, ok := Avg(col, f); ok {
		t.Error("Avg over empty selection should report !ok")
	}
}

func TestCount(t *testing.T) {
	f := bitvec.New(10)
	f.Set(1)
	f.Set(9)
	if Count(f) != 2 {
		t.Errorf("Count = %d", Count(f))
	}
}

func TestFilterLengthMismatchPanics(t *testing.T) {
	col := vbp.Pack([]uint64{1}, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched filter did not panic")
		}
	}()
	Sum(col, bitvec.New(2))
}

func TestQuickselectAgainstSort(t *testing.T) {
	f := func(raw []uint64, rSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := uint64(rSeed)%uint64(len(raw)) + 1
		sorted := append([]uint64(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		work := append([]uint64(nil), raw...)
		return Quickselect(work, r) == sorted[r-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickselectDuplicateHeavy(t *testing.T) {
	vals := make([]uint64, 10000)
	for i := range vals {
		vals[i] = uint64(i % 3)
	}
	// Ranks 1..3334 -> 0, 3335..6667 -> 1, 6668..10000 -> 2.
	for _, c := range []struct{ r, want uint64 }{
		{1, 0}, {3334, 0}, {3335, 1}, {6667, 1}, {6668, 2}, {10000, 2},
	} {
		work := append([]uint64(nil), vals...)
		if got := Quickselect(work, c.r); got != c.want {
			t.Errorf("Quickselect rank %d = %d, want %d", c.r, got, c.want)
		}
	}
}
