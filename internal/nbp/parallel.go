package nbp

import (
	"math/bits"
	"sync"

	"bpagg/internal/bitvec"
)

// Options selects multi-threaded baseline execution, mirroring the
// partition-and-combine scheme the paper applies to both methods in its
// Table II runs ("multi-threaded; SIMD-enabled"). Reconstruction is scalar
// by nature, so there is no wide-word variant.
type Options struct {
	// Threads is the number of worker goroutines; values < 2 mean serial.
	Threads int
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// wordRanges partitions the filter's word index space into at most n
// contiguous ranges.
func wordRanges(f *bitvec.Bitmap, n int) [][2]int {
	nw := f.NumWords()
	if n > nw {
		n = nw
	}
	if n < 1 {
		n = 1
	}
	out := make([][2]int, 0, n)
	base, rem := nw/n, nw%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// forEachValueRange reconstructs the passing values of filter words
// [wordLo, wordHi).
func forEachValueRange(col valueSource, f *bitvec.Bitmap, wordLo, wordHi int, fn func(v uint64)) {
	words := f.Words()
	for wi := wordLo; wi < wordHi; wi++ {
		w := words[wi]
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			fn(col.At(i))
			w &= w - 1
		}
	}
}

// SumOpt is Sum with optional multithreading.
func SumOpt(col valueSource, f *bitvec.Bitmap, o Options) uint64 {
	if o.threads() == 1 {
		return Sum(col, f)
	}
	parts := wordRanges(f, o.threads())
	partials := make([]uint64, len(parts))
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s uint64
			forEachValueRange(col, f, lo, hi, func(v uint64) { s += v })
			partials[w] = s
		}(w, p[0], p[1])
	}
	wg.Wait()
	var sum uint64
	for _, p := range partials {
		sum += p
	}
	return sum
}

// MinOpt is Min with optional multithreading.
func MinOpt(col valueSource, f *bitvec.Bitmap, o Options) (uint64, bool) {
	return extremeOpt(col, f, o, true)
}

// MaxOpt is Max with optional multithreading.
func MaxOpt(col valueSource, f *bitvec.Bitmap, o Options) (uint64, bool) {
	return extremeOpt(col, f, o, false)
}

func extremeOpt(col valueSource, f *bitvec.Bitmap, o Options, wantMin bool) (uint64, bool) {
	if o.threads() == 1 {
		if wantMin {
			return Min(col, f)
		}
		return Max(col, f)
	}
	parts := wordRanges(f, o.threads())
	partials := make([]uint64, len(parts))
	found := make([]bool, len(parts))
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var m uint64
			ok := false
			forEachValueRange(col, f, lo, hi, func(v uint64) {
				if !ok || (wantMin && v < m) || (!wantMin && v > m) {
					m, ok = v, true
				}
			})
			partials[w], found[w] = m, ok
		}(w, p[0], p[1])
	}
	wg.Wait()
	var best uint64
	ok := false
	for w := range parts {
		if !found[w] {
			continue
		}
		if !ok || (wantMin && partials[w] < best) || (!wantMin && partials[w] > best) {
			best, ok = partials[w], true
		}
	}
	return best, ok
}

// AvgOpt is Avg with optional multithreading.
func AvgOpt(col valueSource, f *bitvec.Bitmap, o Options) (float64, bool) {
	cnt := f.Count()
	if cnt == 0 {
		return 0, false
	}
	return float64(SumOpt(col, f, o)) / float64(cnt), true
}

// MedianOpt is Median with optional multithreading: workers reconstruct
// their partitions into per-worker buffers, and quickselect runs over the
// concatenation.
func MedianOpt(col valueSource, f *bitvec.Bitmap, o Options) (uint64, bool) {
	vals := collectOpt(col, f, o)
	if len(vals) == 0 {
		return 0, false
	}
	return Quickselect(vals, (uint64(len(vals))+1)/2), true
}

// RankOpt is Rank with optional multithreading.
func RankOpt(col valueSource, f *bitvec.Bitmap, r uint64, o Options) (uint64, bool) {
	vals := collectOpt(col, f, o)
	if r == 0 || r > uint64(len(vals)) {
		return 0, false
	}
	return Quickselect(vals, r), true
}

func collectOpt(col valueSource, f *bitvec.Bitmap, o Options) []uint64 {
	if o.threads() == 1 {
		return collect(col, f)
	}
	parts := wordRanges(f, o.threads())
	bufs := make([][]uint64, len(parts))
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Exact sizing via a rank difference keeps appends allocation-free.
			cnt := f.Rank(hi*64) - f.Rank(lo*64)
			buf := make([]uint64, 0, cnt)
			forEachValueRange(col, f, lo, hi, func(v uint64) { buf = append(buf, v) })
			bufs[w] = buf
		}(w, p[0], p[1])
	}
	wg.Wait()
	var total int
	for _, b := range bufs {
		total += len(b)
	}
	out := make([]uint64, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
