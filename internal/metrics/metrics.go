// Package metrics is the execution-observability substrate of the engine:
// a counter registry that turns the paper's quantitative claims (zone-map
// pruning skips segments, bit-parallel aggregation touches ⌈k/64⌉ words
// per 64 values) into numbers a query can report and a test can assert.
//
// The design splits hot-path accumulation from cross-query aggregation:
//
//   - ExecStats is a plain value of counters. Kernels and drivers
//     accumulate into a local ExecStats (or local integers merged into
//     one at the end), so the hot loops never touch shared memory.
//   - Collector is the shared, concurrency-safe registry: one atomic
//     per counter, fed whole ExecStats batches via Record. A nil
//     *Collector is valid everywhere and records nothing — the
//     disabled path is a nil check, not a lock.
//
// Collection is opt-in per operation. When no collector is supplied the
// drivers run the exact same code paths as before this package existed;
// the disabled-path guarantee is stated in DESIGN.md §8 and enforced by
// a benchmark guard.
package metrics

import (
	"sync/atomic"
	"time"
)

// ExecStats is a snapshot of execution counters for one operation, one
// query, or one collector lifetime. The zero value is empty and ready to
// accumulate into.
//
// Scan counters (incremented by the predicate scans):
//
//   - Scans: bit-parallel scan passes executed. An IN-list of n members
//     counts n (one equality scan per member, paper §II-E).
//   - SegmentsScanned: segments whose packed words were actually
//     compared (zone check inconclusive).
//   - SegmentsPrunedNone: segments skipped because the zone map proved
//     no value can match.
//   - SegmentsPrunedAll: segments short-circuited because the zone map
//     proved every value matches.
//   - WordsCompared: packed column words examined by scan comparisons,
//     net of early stops — the scan-side cost model of §II.
//
// Aggregate counters (incremented by the aggregation drivers):
//
//   - Aggregates: driver invocations (one per SUM/MIN/MAX/MEDIAN/... call
//     that reaches a kernel, including the reconstruction baseline).
//   - SegmentsAggregated: segments with at least one selected tuple that
//     a kernel processed.
//   - WordsTouched: packed column words a kernel had to read. This is
//     defined analytically from the layout (see DESIGN.md §8), so it is
//     independent of thread count and of the 64-bit vs wide kernels.
//   - RadixRounds: rendezvous rounds of the MEDIAN/rank radix descent
//     (VBP: one per bit position; HBP: one per bit-group chunk).
//   - SegmentsCacheServed: all-match segments the fused scan→aggregate
//     path answered from the per-segment aggregate caches without
//     touching a packed word (they contribute nothing to WordsTouched).
//   - SegmentsIndexServed: full segments a range/window aggregate
//     answered from the prefix-sum range index (one prefix difference or
//     sparse-table lookup covers any number of them) without touching a
//     packed word.
//   - RangeFringeWords: packed words touched by the masked fringe
//     kernels on a range's two partial boundary segments — the entire
//     word cost of an index-served range aggregate.
//   - ReconstructedRows: rows materialized by the NBP reconstruction
//     baseline when the optimizer picks it over the bit-parallel path.
//   - GroupsDiscovered: distinct group keys found by a single-pass
//     GROUP BY partition (the legacy per-group walk records Scans
//     instead — the words-touched relation between the two paths is
//     pinned in DESIGN.md §12).
//   - GroupBankWords: non-zero (group, segment) selection words banked
//     by single-pass group partitioning — the memory footprint of the
//     per-group selection banks.
//   - HashProbes: hash-table slot inspections by the hash-banked group
//     tier (per-worker open-addressing tables). Probe order depends on
//     which keys each worker sees, so unlike the analytic counters this
//     one may vary with thread count.
//   - HashGrowths: hash-table capacity doublings by the hash-banked
//     group tier.
//
// Shard counters (incremented by the sharded-table fan-out, once per
// fan-out over the store):
//
//   - ShardsScanned: shards whose columns a fan-out actually queried
//     (shard-catalog check inconclusive).
//   - ShardsPruned: shards skipped because the shard catalog's min/max
//     bounds proved no row can match the predicates — none of the
//     shard's packed words are touched.
//
// Timers (nanoseconds, summed):
//
//   - ScanNanos: wall time of scan passes.
//   - AggNanos: wall time of aggregate driver calls.
//   - WorkerBusyNanos: CPU-side busy time summed over workers; exceeds
//     AggNanos when multiple workers overlap.
type ExecStats struct {
	Scans              uint64
	SegmentsScanned    uint64
	SegmentsPrunedNone uint64
	SegmentsPrunedAll  uint64
	WordsCompared      uint64
	ScanNanos          int64

	Aggregates          uint64
	SegmentsAggregated  uint64
	WordsTouched        uint64
	RadixRounds         uint64
	SegmentsCacheServed uint64
	SegmentsIndexServed uint64
	RangeFringeWords    uint64
	ReconstructedRows   uint64
	GroupsDiscovered    uint64
	GroupBankWords      uint64
	HashProbes          uint64
	HashGrowths         uint64
	AggNanos            int64
	WorkerBusyNanos     int64

	ShardsScanned uint64
	ShardsPruned  uint64
}

// Add returns the field-wise sum s + o.
func (s ExecStats) Add(o ExecStats) ExecStats {
	s.Scans += o.Scans
	s.SegmentsScanned += o.SegmentsScanned
	s.SegmentsPrunedNone += o.SegmentsPrunedNone
	s.SegmentsPrunedAll += o.SegmentsPrunedAll
	s.WordsCompared += o.WordsCompared
	s.ScanNanos += o.ScanNanos
	s.Aggregates += o.Aggregates
	s.SegmentsAggregated += o.SegmentsAggregated
	s.WordsTouched += o.WordsTouched
	s.RadixRounds += o.RadixRounds
	s.SegmentsCacheServed += o.SegmentsCacheServed
	s.SegmentsIndexServed += o.SegmentsIndexServed
	s.RangeFringeWords += o.RangeFringeWords
	s.ReconstructedRows += o.ReconstructedRows
	s.GroupsDiscovered += o.GroupsDiscovered
	s.GroupBankWords += o.GroupBankWords
	s.HashProbes += o.HashProbes
	s.HashGrowths += o.HashGrowths
	s.AggNanos += o.AggNanos
	s.WorkerBusyNanos += o.WorkerBusyNanos
	s.ShardsScanned += o.ShardsScanned
	s.ShardsPruned += o.ShardsPruned
	return s
}

// Sub returns the field-wise difference s - o. It is the snapshot-diff
// primitive: capture a collector before and after an operation and
// subtract to isolate that operation's counters.
func (s ExecStats) Sub(o ExecStats) ExecStats {
	s.Scans -= o.Scans
	s.SegmentsScanned -= o.SegmentsScanned
	s.SegmentsPrunedNone -= o.SegmentsPrunedNone
	s.SegmentsPrunedAll -= o.SegmentsPrunedAll
	s.WordsCompared -= o.WordsCompared
	s.ScanNanos -= o.ScanNanos
	s.Aggregates -= o.Aggregates
	s.SegmentsAggregated -= o.SegmentsAggregated
	s.WordsTouched -= o.WordsTouched
	s.RadixRounds -= o.RadixRounds
	s.SegmentsCacheServed -= o.SegmentsCacheServed
	s.SegmentsIndexServed -= o.SegmentsIndexServed
	s.RangeFringeWords -= o.RangeFringeWords
	s.ReconstructedRows -= o.ReconstructedRows
	s.GroupsDiscovered -= o.GroupsDiscovered
	s.GroupBankWords -= o.GroupBankWords
	s.HashProbes -= o.HashProbes
	s.HashGrowths -= o.HashGrowths
	s.AggNanos -= o.AggNanos
	s.WorkerBusyNanos -= o.WorkerBusyNanos
	s.ShardsScanned -= o.ShardsScanned
	s.ShardsPruned -= o.ShardsPruned
	return s
}

// SegmentsPruned returns the total segments decided by the zone map
// alone (none-match plus all-match).
func (s ExecStats) SegmentsPruned() uint64 {
	return s.SegmentsPrunedNone + s.SegmentsPrunedAll
}

// SegmentsConsidered returns the total segments a scan looked at, pruned
// or not.
func (s ExecStats) SegmentsConsidered() uint64 {
	return s.SegmentsScanned + s.SegmentsPruned()
}

// PruneRatio returns the fraction of considered segments the zone map
// pruned, in [0, 1]; 0 when nothing was scanned.
func (s ExecStats) PruneRatio() float64 {
	total := s.SegmentsConsidered()
	if total == 0 {
		return 0
	}
	return float64(s.SegmentsPruned()) / float64(total)
}

// ScanTime returns ScanNanos as a duration.
func (s ExecStats) ScanTime() time.Duration { return time.Duration(s.ScanNanos) }

// AggTime returns AggNanos as a duration.
func (s ExecStats) AggTime() time.Duration { return time.Duration(s.AggNanos) }

// WorkerBusy returns WorkerBusyNanos as a duration.
func (s ExecStats) WorkerBusy() time.Duration { return time.Duration(s.WorkerBusyNanos) }

// Collector accumulates ExecStats batches from concurrent operations.
// All methods are safe for concurrent use, and all are nil-safe: a nil
// *Collector records nothing and snapshots as zero, so call sites need
// no enabled/disabled branching beyond passing nil.
type Collector struct {
	scans              atomic.Uint64
	segmentsScanned    atomic.Uint64
	segmentsPrunedNone atomic.Uint64
	segmentsPrunedAll  atomic.Uint64
	wordsCompared      atomic.Uint64
	scanNanos          atomic.Int64

	aggregates          atomic.Uint64
	segmentsAggregated  atomic.Uint64
	wordsTouched        atomic.Uint64
	radixRounds         atomic.Uint64
	segmentsCacheServed atomic.Uint64
	segmentsIndexServed atomic.Uint64
	rangeFringeWords    atomic.Uint64
	reconstructedRows   atomic.Uint64
	groupsDiscovered    atomic.Uint64
	groupBankWords      atomic.Uint64
	hashProbes          atomic.Uint64
	hashGrowths         atomic.Uint64
	aggNanos            atomic.Int64
	workerBusyNanos     atomic.Int64

	shardsScanned atomic.Uint64
	shardsPruned  atomic.Uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record adds one ExecStats batch to the collector. Batching keeps the
// atomic traffic at one add per counter per operation rather than per
// segment.
func (c *Collector) Record(s ExecStats) {
	if c == nil {
		return
	}
	if s.Scans != 0 {
		c.scans.Add(s.Scans)
	}
	if s.SegmentsScanned != 0 {
		c.segmentsScanned.Add(s.SegmentsScanned)
	}
	if s.SegmentsPrunedNone != 0 {
		c.segmentsPrunedNone.Add(s.SegmentsPrunedNone)
	}
	if s.SegmentsPrunedAll != 0 {
		c.segmentsPrunedAll.Add(s.SegmentsPrunedAll)
	}
	if s.WordsCompared != 0 {
		c.wordsCompared.Add(s.WordsCompared)
	}
	if s.ScanNanos != 0 {
		c.scanNanos.Add(s.ScanNanos)
	}
	if s.Aggregates != 0 {
		c.aggregates.Add(s.Aggregates)
	}
	if s.SegmentsAggregated != 0 {
		c.segmentsAggregated.Add(s.SegmentsAggregated)
	}
	if s.WordsTouched != 0 {
		c.wordsTouched.Add(s.WordsTouched)
	}
	if s.RadixRounds != 0 {
		c.radixRounds.Add(s.RadixRounds)
	}
	if s.SegmentsCacheServed != 0 {
		c.segmentsCacheServed.Add(s.SegmentsCacheServed)
	}
	if s.SegmentsIndexServed != 0 {
		c.segmentsIndexServed.Add(s.SegmentsIndexServed)
	}
	if s.RangeFringeWords != 0 {
		c.rangeFringeWords.Add(s.RangeFringeWords)
	}
	if s.ReconstructedRows != 0 {
		c.reconstructedRows.Add(s.ReconstructedRows)
	}
	if s.GroupsDiscovered != 0 {
		c.groupsDiscovered.Add(s.GroupsDiscovered)
	}
	if s.GroupBankWords != 0 {
		c.groupBankWords.Add(s.GroupBankWords)
	}
	if s.HashProbes != 0 {
		c.hashProbes.Add(s.HashProbes)
	}
	if s.HashGrowths != 0 {
		c.hashGrowths.Add(s.HashGrowths)
	}
	if s.AggNanos != 0 {
		c.aggNanos.Add(s.AggNanos)
	}
	if s.WorkerBusyNanos != 0 {
		c.workerBusyNanos.Add(s.WorkerBusyNanos)
	}
	if s.ShardsScanned != 0 {
		c.shardsScanned.Add(s.ShardsScanned)
	}
	if s.ShardsPruned != 0 {
		c.shardsPruned.Add(s.ShardsPruned)
	}
}

// Snapshot returns the counters accumulated so far. Each counter is read
// atomically; a snapshot taken concurrently with Record calls may split
// a batch, but a snapshot taken after all recording operations complete
// is exact.
func (c *Collector) Snapshot() ExecStats {
	if c == nil {
		return ExecStats{}
	}
	return ExecStats{
		Scans:               c.scans.Load(),
		SegmentsScanned:     c.segmentsScanned.Load(),
		SegmentsPrunedNone:  c.segmentsPrunedNone.Load(),
		SegmentsPrunedAll:   c.segmentsPrunedAll.Load(),
		WordsCompared:       c.wordsCompared.Load(),
		ScanNanos:           c.scanNanos.Load(),
		Aggregates:          c.aggregates.Load(),
		SegmentsAggregated:  c.segmentsAggregated.Load(),
		WordsTouched:        c.wordsTouched.Load(),
		RadixRounds:         c.radixRounds.Load(),
		SegmentsCacheServed: c.segmentsCacheServed.Load(),
		SegmentsIndexServed: c.segmentsIndexServed.Load(),
		RangeFringeWords:    c.rangeFringeWords.Load(),
		ReconstructedRows:   c.reconstructedRows.Load(),
		GroupsDiscovered:    c.groupsDiscovered.Load(),
		GroupBankWords:      c.groupBankWords.Load(),
		HashProbes:          c.hashProbes.Load(),
		HashGrowths:         c.hashGrowths.Load(),
		AggNanos:            c.aggNanos.Load(),
		WorkerBusyNanos:     c.workerBusyNanos.Load(),
		ShardsScanned:       c.shardsScanned.Load(),
		ShardsPruned:        c.shardsPruned.Load(),
	}
}

// Reset zeroes every counter. Concurrent Record calls may land before or
// after the reset per field; reset only at operation boundaries.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.scans.Store(0)
	c.segmentsScanned.Store(0)
	c.segmentsPrunedNone.Store(0)
	c.segmentsPrunedAll.Store(0)
	c.wordsCompared.Store(0)
	c.scanNanos.Store(0)
	c.aggregates.Store(0)
	c.segmentsAggregated.Store(0)
	c.wordsTouched.Store(0)
	c.radixRounds.Store(0)
	c.segmentsCacheServed.Store(0)
	c.segmentsIndexServed.Store(0)
	c.rangeFringeWords.Store(0)
	c.reconstructedRows.Store(0)
	c.groupsDiscovered.Store(0)
	c.groupBankWords.Store(0)
	c.hashProbes.Store(0)
	c.hashGrowths.Store(0)
	c.aggNanos.Store(0)
	c.workerBusyNanos.Store(0)
	c.shardsScanned.Store(0)
	c.shardsPruned.Store(0)
}
