package metrics

import (
	"sync"
	"testing"
)

// every counter gets a distinct prime so a cross-wired field in
// Record/Snapshot/Add/Sub shows up as a value mismatch, not a
// coincidental equality.
func distinct() ExecStats {
	return ExecStats{
		Scans:              2,
		SegmentsScanned:    3,
		SegmentsPrunedNone: 5,
		SegmentsPrunedAll:  7,
		WordsCompared:      11,
		ScanNanos:          13,
		Aggregates:         17,
		SegmentsAggregated: 19,
		WordsTouched:       23,
		RadixRounds:        29,
		ReconstructedRows:  31,
		AggNanos:           37,
		WorkerBusyNanos:    41,
	}
}

func scale(s ExecStats, n uint64) ExecStats {
	var out ExecStats
	for i := uint64(0); i < n; i++ {
		out = out.Add(s)
	}
	return out
}

func TestCollectorRecordSnapshot(t *testing.T) {
	c := NewCollector()
	c.Record(distinct())
	c.Record(distinct())
	got, want := c.Snapshot(), scale(distinct(), 2)
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
	c.Reset()
	if got := c.Snapshot(); got != (ExecStats{}) {
		t.Fatalf("snapshot after reset = %+v, want zero", got)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	a, b := distinct(), scale(distinct(), 3)
	if got := b.Add(a).Sub(a); got != b {
		t.Fatalf("b+a-a = %+v, want %+v", got, b)
	}
	if got := a.Sub(a); got != (ExecStats{}) {
		t.Fatalf("a-a = %+v, want zero", got)
	}
}

func TestDerivedRatios(t *testing.T) {
	s := ExecStats{SegmentsScanned: 25, SegmentsPrunedNone: 60, SegmentsPrunedAll: 15}
	if got := s.SegmentsPruned(); got != 75 {
		t.Fatalf("SegmentsPruned = %d, want 75", got)
	}
	if got := s.SegmentsConsidered(); got != 100 {
		t.Fatalf("SegmentsConsidered = %d, want 100", got)
	}
	if got := s.PruneRatio(); got != 0.75 {
		t.Fatalf("PruneRatio = %v, want 0.75", got)
	}
	if got := (ExecStats{}).PruneRatio(); got != 0 {
		t.Fatalf("empty PruneRatio = %v, want 0", got)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Record(distinct())
	c.Reset()
	if got := c.Snapshot(); got != (ExecStats{}) {
		t.Fatalf("nil snapshot = %+v, want zero", got)
	}
}

// TestCollectorConcurrentStress hammers one collector from many
// goroutines — recorders, snapshot readers, and a resetting-free mix —
// and checks the final totals. Run under -race (the CI Race step does)
// this doubles as the registry's data-race proof.
func TestCollectorConcurrentStress(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Record(distinct())
			}
		}()
	}
	// Concurrent readers: values are unpredictable mid-flight, but every
	// load must be torn-free and each counter monotonically reasonable.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := c.Snapshot()
				if s.Scans%2 != 0 { // every batch adds 2
					t.Errorf("torn Scans read: %d", s.Scans)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, want := c.Snapshot(), scale(distinct(), goroutines*iters)
	if got != want {
		t.Fatalf("final snapshot = %+v, want %+v", got, want)
	}
}
