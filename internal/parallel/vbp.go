package parallel

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
	"bpagg/internal/wide"
)

// VBPSum computes SUM over a VBP column with the selected strategy.
func VBPSum(col *vbp.Column, f *bitvec.Bitmap, o Options) uint64 {
	if o.threads() == 1 && o.Stats == nil {
		if o.Wide {
			return wide.VBPSum(col, f)
		}
		return core.VBPSum(col, f)
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	partials := make([]uint64, o.threads())
	forEachRange(nseg, o.threads(), func(w, lo, hi int) {
		t0 := statsNow(ws)
		if o.Wide {
			partials[w] = wide.VBPSumRange(col, f, lo, hi)
		} else {
			partials[w] = core.VBPSumRange(col, f, lo, hi)
		}
		if ws != nil {
			vbpCollectDense(ws, w, col, f, lo, hi, t0)
		}
	})
	var sum uint64
	for _, p := range partials {
		sum += p
	}
	o.statsEnd(ws, start, metrics.ExecStats{})
	return sum
}

// VBPMin computes MIN over a VBP column with the selected strategy; ok is
// false when no tuple passes the filter.
func VBPMin(col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool) {
	return vbpExtreme(col, f, o, true)
}

// VBPMax computes MAX over a VBP column with the selected strategy.
func VBPMax(col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool) {
	return vbpExtreme(col, f, o, false)
}

func vbpExtreme(col *vbp.Column, f *bitvec.Bitmap, o Options, wantMin bool) (uint64, bool) {
	if o.threads() == 1 && o.Stats == nil {
		if o.Wide {
			if wantMin {
				return wide.VBPMin(col, f)
			}
			return wide.VBPMax(col, f)
		}
		if wantMin {
			return core.VBPMin(col, f)
		}
		return core.VBPMax(col, f)
	}
	if !f.Any() {
		return 0, false
	}
	ws, start := o.statsBegin()
	k := col.K()
	nseg := col.NumSegments()
	var temps [][]uint64
	if o.Wide {
		workerTemps := make([]wide.VBPExtremeTemps, o.threads())
		used := forEachRange(nseg, o.threads(), func(w, lo, hi int) {
			t0 := statsNow(ws)
			workerTemps[w] = wide.NewVBPExtremeTemps(k, wantMin)
			wide.VBPFoldExtremeRange(col, f, &workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				vbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
		})
		for w := 0; w < used; w++ {
			temps = append(temps, workerTemps[w][:]...)
		}
	} else {
		workerTemps := make([][]uint64, o.threads())
		used := forEachRange(nseg, o.threads(), func(w, lo, hi int) {
			t0 := statsNow(ws)
			workerTemps[w] = core.NewVBPExtremeTemp(k, wantMin)
			core.VBPFoldExtreme(col, f, workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				vbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
		})
		temps = workerTemps[:used]
	}
	v := core.VBPFinishExtreme(temps, k, wantMin)
	o.statsEnd(ws, start, metrics.ExecStats{})
	return v, true
}

// VBPMedian computes the lower MEDIAN with the selected strategy.
func VBPMedian(col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool) {
	u := core.Count(f)
	if u == 0 {
		return 0, false
	}
	return VBPRank(col, f, (u+1)/2, o)
}

// VBPRank computes the r-th smallest filtered value with the selected
// strategy. Workers synchronize once per bit position on the global
// candidate counter, exactly the overhead the paper attributes to
// multi-threaded VBP-MEDIAN.
func VBPRank(col *vbp.Column, f *bitvec.Bitmap, r uint64, o Options) (uint64, bool) {
	if o.threads() == 1 && o.Stats == nil {
		if o.Wide {
			return wide.VBPRank(col, f, r)
		}
		return core.VBPRank(col, f, r)
	}
	u := core.Count(f)
	if r == 0 || r > u {
		return 0, false
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	var extra metrics.ExecStats
	if ws != nil {
		extra.SegmentsAggregated = core.VBPLiveSegments(f, 0, nseg)
	}
	v := core.NewVBPCandidates(f, nseg)
	k := col.K()
	partials := make([]uint64, o.threads())
	var m uint64
	for p := 0; p < k; p++ {
		forEachRange(nseg, o.threads(), func(w, lo, hi int) {
			t0 := statsNow(ws)
			if o.Wide {
				partials[w] = wide.VBPRankCountRange(col, v, p, lo, hi)
			} else {
				partials[w] = core.VBPRankCount(col, v, p, lo, hi)
			}
			if ws != nil {
				// Charge the whole round here: refine reads the same
				// bit-position word for the same live segments.
				vbpCollectRank(ws, w, v, lo, hi, t0)
			}
		})
		var c uint64
		for _, pc := range partials {
			c += pc
		}
		keepOnes := u-c < r
		if keepOnes {
			m |= 1 << uint(k-1-p)
			r -= u - c
			u = c
		} else {
			u -= c
		}
		extra.RadixRounds++
		forEachRange(nseg, o.threads(), func(w, lo, hi int) {
			t0 := statsNow(ws)
			if o.Wide {
				wide.VBPRankRefineRange(col, v, p, keepOnes, lo, hi)
			} else {
				core.VBPRankRefine(col, v, p, keepOnes, lo, hi)
			}
			if ws != nil {
				busyOnly(ws, w, t0)
			}
		})
	}
	o.statsEnd(ws, start, extra)
	return m, true
}

// VBPAvg computes AVG = SUM / COUNT with the selected strategy.
func VBPAvg(col *vbp.Column, f *bitvec.Bitmap, o Options) (float64, bool) {
	cnt := core.Count(f)
	if cnt == 0 {
		return 0, false
	}
	return float64(VBPSum(col, f, o)) / float64(cnt), true
}
