package parallel

import (
	"context"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
	"bpagg/internal/wide"
)

// The Ctx variants are the hardened twins of the drivers in vbp.go: the
// same kernels and partitioning, but run through forEachRangeErr so
// cancellation is observed between segment blocks (and at each radix
// rendezvous for rank) and worker panics come back as *PanicError. They
// run the partitioned path even at Threads=1, trading a goroutine spawn
// for a uniform cancellation guarantee.
//
// Stats collection follows the same contract as the plain drivers; a
// worker body may run several times with sub-ranges, so every stats
// update accumulates (the collect helpers use +=).

// VBPSumCtx computes SUM over a VBP column, honoring ctx.
func VBPSumCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, error) {
	if core.SumOverflowPossible(col.K(), col.Len()) {
		return vbpSumCtx128(ctx, col, f, o)
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	partials := make([]uint64, o.threads())
	_, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
		t0 := statsNow(ws)
		if o.Wide {
			partials[w] += wide.VBPSumRange(col, f, lo, hi)
		} else {
			partials[w] += core.VBPSumRange(col, f, lo, hi)
		}
		if ws != nil {
			vbpCollectDense(ws, w, col, f, lo, hi, t0)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, p := range partials {
		sum += p
	}
	o.statsEnd(ws, start, metrics.ExecStats{})
	return sum, nil
}

// VBPMinCtx computes MIN over a VBP column, honoring ctx; ok is false
// when no tuple passes the filter.
func VBPMinCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool, error) {
	return vbpExtremeCtx(ctx, col, f, o, true)
}

// VBPMaxCtx computes MAX over a VBP column, honoring ctx.
func VBPMaxCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool, error) {
	return vbpExtremeCtx(ctx, col, f, o, false)
}

func vbpExtremeCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options, wantMin bool) (uint64, bool, error) {
	if !f.Any() {
		return 0, false, nil
	}
	ws, start := o.statsBegin()
	k := col.K()
	nseg := col.NumSegments()
	var temps [][]uint64
	if o.Wide {
		workerTemps := make([]wide.VBPExtremeTemps, o.threads())
		for w := range workerTemps {
			workerTemps[w] = wide.NewVBPExtremeTemps(k, wantMin)
		}
		used, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
			t0 := statsNow(ws)
			wide.VBPFoldExtremeRange(col, f, &workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				vbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		for w := 0; w < used; w++ {
			temps = append(temps, workerTemps[w][:]...)
		}
	} else {
		workerTemps := make([][]uint64, o.threads())
		for w := range workerTemps {
			workerTemps[w] = core.NewVBPExtremeTemp(k, wantMin)
		}
		used, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
			t0 := statsNow(ws)
			core.VBPFoldExtreme(col, f, workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				vbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		temps = workerTemps[:used]
	}
	v := core.VBPFinishExtreme(temps, k, wantMin)
	o.statsEnd(ws, start, metrics.ExecStats{})
	return v, true, nil
}

// VBPMedianCtx computes the lower MEDIAN, honoring ctx.
func VBPMedianCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool, error) {
	u := core.Count(f)
	if u == 0 {
		return 0, false, nil
	}
	return VBPRankCtx(ctx, col, f, (u+1)/2, o)
}

// VBPRankCtx computes the r-th smallest filtered value, honoring ctx.
// Cancellation is checked at every per-bit rendezvous in addition to the
// per-block checks inside each scan, so even a mid-refinement deadline
// is honored within one radix step.
func VBPRankCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, r uint64, o Options) (uint64, bool, error) {
	u := core.Count(f)
	if r == 0 || r > u {
		return 0, false, nil
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	var extra metrics.ExecStats
	if ws != nil {
		extra.SegmentsAggregated = core.VBPLiveSegments(f, 0, nseg)
	}
	v := core.NewVBPCandidates(f, nseg)
	k := col.K()
	partials := make([]uint64, o.threads())
	var m uint64
	for p := 0; p < k; p++ {
		for i := range partials {
			partials[i] = 0
		}
		_, err := forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
			t0 := statsNow(ws)
			if o.Wide {
				partials[w] += wide.VBPRankCountRange(col, v, p, lo, hi)
			} else {
				partials[w] += core.VBPRankCount(col, v, p, lo, hi)
			}
			if ws != nil {
				// Charge the whole round here: refine reads the same
				// bit-position word for the same live segments.
				vbpCollectRank(ws, w, v, lo, hi, t0)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		var c uint64
		for _, pc := range partials {
			c += pc
		}
		keepOnes := u-c < r
		if keepOnes {
			m |= 1 << uint(k-1-p)
			r -= u - c
			u = c
		} else {
			u -= c
		}
		extra.RadixRounds++
		_, err = forEachRangeErr(ctx, nseg, o.threads(), func(w, lo, hi int) error {
			t0 := statsNow(ws)
			if o.Wide {
				wide.VBPRankRefineRange(col, v, p, keepOnes, lo, hi)
			} else {
				core.VBPRankRefine(col, v, p, keepOnes, lo, hi)
			}
			if ws != nil {
				busyOnly(ws, w, t0)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
	}
	o.statsEnd(ws, start, extra)
	return m, true, nil
}

// VBPAvgCtx computes AVG = SUM / COUNT, honoring ctx.
func VBPAvgCtx(ctx context.Context, col *vbp.Column, f *bitvec.Bitmap, o Options) (float64, bool, error) {
	cnt := core.Count(f)
	if cnt == 0 {
		return 0, false, nil
	}
	sum, err := VBPSumCtx(ctx, col, f, o)
	if err != nil {
		return 0, false, err
	}
	return float64(sum) / float64(cnt), true, nil
}
