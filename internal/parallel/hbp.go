package parallel

import (
	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/wide"
)

// HBPSum computes SUM over an HBP column with the selected strategy.
func HBPSum(col *hbp.Column, f *bitvec.Bitmap, o Options) uint64 {
	if o.threads() == 1 && o.Stats == nil {
		if o.Wide {
			return wide.HBPSum(col, f)
		}
		return core.HBPSum(col, f)
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	partials := make([]uint64, o.threads())
	forEachRange(nseg, o.threads(), func(w, lo, hi int) {
		t0 := statsNow(ws)
		if o.Wide {
			partials[w] = wide.HBPSumRange(col, f, lo, hi)
		} else {
			partials[w] = core.HBPSumRange(col, f, lo, hi)
		}
		if ws != nil {
			hbpCollectDense(ws, w, col, f, lo, hi, t0)
		}
	})
	var sum uint64
	for _, p := range partials {
		sum += p
	}
	o.statsEnd(ws, start, metrics.ExecStats{})
	return sum
}

// HBPMin computes MIN over an HBP column with the selected strategy; ok is
// false when no tuple passes the filter.
func HBPMin(col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool) {
	return hbpExtreme(col, f, o, true)
}

// HBPMax computes MAX over an HBP column with the selected strategy.
func HBPMax(col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool) {
	return hbpExtreme(col, f, o, false)
}

func hbpExtreme(col *hbp.Column, f *bitvec.Bitmap, o Options, wantMin bool) (uint64, bool) {
	if o.threads() == 1 && o.Stats == nil {
		if o.Wide {
			if wantMin {
				return wide.HBPMin(col, f)
			}
			return wide.HBPMax(col, f)
		}
		if wantMin {
			return core.HBPMin(col, f)
		}
		return core.HBPMax(col, f)
	}
	if !f.Any() {
		return 0, false
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	var temps [][]uint64
	if o.Wide {
		workerTemps := make([]wide.HBPExtremeTemps, o.threads())
		used := forEachRange(nseg, o.threads(), func(w, lo, hi int) {
			t0 := statsNow(ws)
			workerTemps[w] = wide.NewHBPExtremeTemps(col, wantMin)
			wide.HBPFoldExtremeRange(col, f, &workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				hbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
		})
		for w := 0; w < used; w++ {
			temps = append(temps, workerTemps[w][:]...)
		}
	} else {
		workerTemps := make([][]uint64, o.threads())
		used := forEachRange(nseg, o.threads(), func(w, lo, hi int) {
			t0 := statsNow(ws)
			workerTemps[w] = core.NewHBPExtremeTemp(col, wantMin)
			core.HBPFoldExtreme(col, f, workerTemps[w], wantMin, lo, hi)
			if ws != nil {
				hbpCollectDense(ws, w, col, f, lo, hi, t0)
			}
		})
		temps = workerTemps[:used]
	}
	v := core.HBPFinishExtreme(col, temps, wantMin)
	o.statsEnd(ws, start, metrics.ExecStats{})
	return v, true
}

// HBPMedian computes the lower MEDIAN with the selected strategy.
func HBPMedian(col *hbp.Column, f *bitvec.Bitmap, o Options) (uint64, bool) {
	u := core.Count(f)
	if u == 0 {
		return 0, false
	}
	return HBPRank(col, f, (u+1)/2, o)
}

// HBPRank computes the r-th smallest filtered value with the selected
// strategy. Workers build private histograms per bit-group and merge at the
// rendezvous, then refine their candidate partitions.
func HBPRank(col *hbp.Column, f *bitvec.Bitmap, r uint64, o Options) (uint64, bool) {
	if o.threads() == 1 && o.Stats == nil {
		if o.Wide {
			return wide.HBPRank(col, f, r)
		}
		return core.HBPRank(col, f, r)
	}
	u := core.Count(f)
	if r == 0 || r > u {
		return 0, false
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	v := core.NewHBPCandidates(col, f, nseg)
	var extra metrics.ExecStats
	if ws != nil {
		segs, _ := core.HBPLiveWindows(col, f, 0, nseg)
		extra.SegmentsAggregated = segs
	}
	b := col.NumGroups()
	tau := col.Tau()
	chunks, histBits := core.HBPRankChunks(tau, u)

	workerHists := make([][]uint64, o.threads())
	for w := range workerHists {
		workerHists[w] = make([]uint64, 1<<uint(histBits))
	}
	var m uint64
	for g := 0; g < b; g++ {
		for ci, ch := range chunks {
			shift, width := ch[0], ch[1]
			bins := 1 << uint(width)
			last := g == b-1 && ci == len(chunks)-1
			used := forEachRange(nseg, o.threads(), func(w, lo, hi int) {
				t0 := statsNow(ws)
				h := workerHists[w][:bins]
				for i := range h {
					h[i] = 0
				}
				core.HBPHistogramChunk(col, v, g, shift, width, lo, hi, h)
				if ws != nil {
					// Charge the whole round here (histogram plus, unless
					// this is the final round, the refine pass over the
					// same live sub-segments).
					factor := uint64(2)
					if last {
						factor = 1
					}
					hbpCollectRank(ws, w, col, v, factor, lo, hi, t0)
				}
			})
			// Merge worker histograms and locate the bin containing rank r.
			var cum uint64
			bin := bins - 1
			for i := 0; i < bins; i++ {
				var h uint64
				for w := 0; w < used; w++ {
					h += workerHists[w][i]
				}
				if cum+h >= r {
					bin = i
					break
				}
				cum += h
			}
			r -= cum
			m = m<<uint(width) | uint64(bin)
			extra.RadixRounds++
			if last {
				break
			}
			forEachRange(nseg, o.threads(), func(w, lo, hi int) {
				t0 := statsNow(ws)
				if o.Wide {
					wide.HBPRankRefineChunkRange(col, v, g, shift, width, uint64(bin), lo, hi)
				} else {
					core.HBPRankRefineChunk(col, v, g, shift, width, uint64(bin), lo, hi)
				}
				if ws != nil {
					busyOnly(ws, w, t0)
				}
			})
		}
	}
	o.statsEnd(ws, start, extra)
	return m, true
}

// HBPAvg computes AVG = SUM / COUNT with the selected strategy.
func HBPAvg(col *hbp.Column, f *bitvec.Bitmap, o Options) (float64, bool) {
	cnt := core.Count(f)
	if cnt == 0 {
		return 0, false
	}
	return float64(HBPSum(col, f, o)) / float64(cnt), true
}
