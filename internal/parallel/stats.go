package parallel

import (
	"time"

	"bpagg/internal/bitvec"
	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/vbp"
)

// Stats plumbing for the drivers. Collection is per-call: a driver with
// o.Stats == nil runs exactly the pre-observability code (the workers
// never look at the clock or the counters), while an enabled driver
// allocates one ExecStats per worker, lets each worker accumulate into
// its own slot (forEachRangeErr may call a worker several times with
// sub-ranges, so every update is +=), and merges the slots into one
// Record at the end.
//
// The derived counters (SegmentsAggregated, WordsTouched) come from the
// analytic helpers in package core rather than kernel instrumentation;
// their per-layout definitions are documented in DESIGN.md §8. Because
// they only depend on layout geometry and the filter, the totals are
// identical for any thread count and for the 64-bit vs wide kernels —
// the property the determinism tests assert.

// statsBegin returns the per-worker accumulation slots and the driver
// start time, or nils when collection is disabled.
func (o Options) statsBegin() ([]metrics.ExecStats, time.Time) {
	if o.Stats == nil {
		return nil, time.Time{}
	}
	return make([]metrics.ExecStats, o.threads()), time.Now()
}

// statsNow samples the clock only when collection is enabled.
func statsNow(ws []metrics.ExecStats) time.Time {
	if ws == nil {
		return time.Time{}
	}
	return time.Now()
}

// statsEnd merges the worker slots plus driver-level extras and records
// one aggregate invocation into the collector.
func (o Options) statsEnd(ws []metrics.ExecStats, start time.Time, extra metrics.ExecStats) {
	if o.Stats == nil {
		return
	}
	total := extra
	for i := range ws {
		total = total.Add(ws[i])
	}
	total.Aggregates++
	total.AggNanos += time.Since(start).Nanoseconds()
	o.Stats.Record(total)
}

// vbpCollectDense charges worker w for a dense-kernel pass over
// segments [lo, hi): every live segment costs the column's k packed
// words (SUM's per-bit popcounts and the MIN/MAX fold both read all k).
func vbpCollectDense(ws []metrics.ExecStats, w int, col *vbp.Column, f *bitvec.Bitmap, lo, hi int, t0 time.Time) {
	st := &ws[w]
	live := core.VBPLiveSegments(f, lo, hi)
	st.SegmentsAggregated += live
	st.WordsTouched += live * uint64(col.K())
	st.WorkerBusyNanos += time.Since(t0).Nanoseconds()
}

// vbpCollectRank charges worker w for one VBP radix round over
// segments [lo, hi): each segment with live candidates is read once by
// the count pass and once by the refine pass (one bit-position word
// each).
func vbpCollectRank(ws []metrics.ExecStats, w int, v []uint64, lo, hi int, t0 time.Time) {
	st := &ws[w]
	st.WordsTouched += 2 * core.VBPLiveCandidates(v, lo, hi)
	st.WorkerBusyNanos += time.Since(t0).Nanoseconds()
}

// hbpCollectDense charges worker w for a dense-kernel pass over
// segments [lo, hi): every live sub-segment costs NumGroups packed
// words.
func hbpCollectDense(ws []metrics.ExecStats, w int, col *hbp.Column, f *bitvec.Bitmap, lo, hi int, t0 time.Time) {
	st := &ws[w]
	segs, subs := core.HBPLiveWindows(col, f, lo, hi)
	st.SegmentsAggregated += segs
	st.WordsTouched += subs * uint64(col.NumGroups())
	st.WorkerBusyNanos += time.Since(t0).Nanoseconds()
}

// hbpCollectRank charges worker w for one HBP radix round over
// segments [lo, hi). factor is 2 when the round refines after the
// histogram (one word-group word per pass) and 1 on the final round,
// which stops after the histogram.
func hbpCollectRank(ws []metrics.ExecStats, w int, col *hbp.Column, v []uint64, factor uint64, lo, hi int, t0 time.Time) {
	st := &ws[w]
	st.WordsTouched += factor * core.HBPLiveCandidateSubs(col, v, lo, hi)
	st.WorkerBusyNanos += time.Since(t0).Nanoseconds()
}

// busyOnly charges worker w for wall time alone; used by passes whose
// word counts are charged elsewhere (e.g. refine, already counted by
// the round's histogram/count stage).
func busyOnly(ws []metrics.ExecStats, w int, t0 time.Time) {
	st := &ws[w]
	st.WorkerBusyNanos += time.Since(t0).Nanoseconds()
}
