package parallel

import (
	"context"
	"time"

	"bpagg/internal/core"
	"bpagg/internal/hbp"
	"bpagg/internal/metrics"
	"bpagg/internal/scan"
	"bpagg/internal/vbp"
	"bpagg/internal/wide"
)

// Fused scan→aggregate drivers. Each driver partitions the segment range
// exactly like the two-phase Ctx twins (forEachRangeErr, so cancellation
// and panic hardening come for free, uniformly at Threads=1), but the
// worker bodies run the core fused kernels: per segment the predicate
// conjunction's filter word is computed and consumed while still
// register-resident, and all-match segments are answered from the
// per-segment aggregate caches. With o.Wide the SUM/extreme bodies and
// the rank rounds run the internal/wide twins instead — the filter-side
// conjunction and every FusedStats counter are identical on both widths,
// so EXPLAIN ANALYZE cannot tell them apart. COUNT-only and candidate
// passes stay on the 64-bit kernels even when Wide: they touch no
// aggregate words, so there is nothing for wide words to amortize.
//
// Work counting is always on in the kernels (core.FusedStats is cheap
// plain-field accumulation); the counters only reach a collector when
// o.Stats != nil. A fused query records Scans = len(preds) with
// ScanNanos = 0 — all wall time lands in AggNanos, because there is no
// separate scan phase to time.

// fusedStatsEnd merges the per-worker fused kernel counters into the
// ExecStats schema (scan-side and aggregate-side at once) and records a
// single aggregate invocation.
func (o Options) fusedStatsEnd(ws []metrics.ExecStats, start time.Time, fss []core.FusedStats, npreds int, extra metrics.ExecStats) {
	if o.Stats == nil {
		return
	}
	var fs core.FusedStats
	for i := range fss {
		fs = fs.Add(fss[i])
	}
	extra.Scans += uint64(npreds)
	extra.SegmentsScanned += fs.SegmentsScanned
	extra.SegmentsPrunedNone += fs.SegmentsPrunedNone
	extra.SegmentsPrunedAll += fs.SegmentsPrunedAll
	extra.WordsCompared += fs.WordsCompared
	extra.SegmentsAggregated += fs.SegmentsAggregated
	extra.WordsTouched += fs.WordsTouched
	extra.SegmentsCacheServed += fs.SegmentsCacheServed
	o.statsEnd(ws, start, extra)
}

// VBPFusedSumCtx computes SUM and COUNT of the tuples matching the
// predicate conjunction over a VBP column in one fused pass, honoring ctx.
func VBPFusedSumCtx(ctx context.Context, col *vbp.Column, preds []scan.WindowPred, o Options) (sum, cnt uint64, err error) {
	if core.SumOverflowPossible(col.K(), col.Len()) {
		return vbpFusedSumCtx128(ctx, col, preds, o)
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	sums := make([]uint64, n)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		var s, c uint64
		if o.Wide {
			s, c = wide.VBPFusedSumCount(col, preds, lo, hi, &fss[w])
		} else {
			s, c = core.VBPFusedSumCount(col, preds, lo, hi, &fss[w])
		}
		sums[w] += s
		cnts[w] += c
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for w := 0; w < n; w++ {
		sum += sums[w]
		cnt += cnts[w]
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	return sum, cnt, nil
}

// HBPFusedSumCtx computes SUM and COUNT of the tuples matching the
// predicate conjunction over an HBP column in one fused pass, honoring ctx.
func HBPFusedSumCtx(ctx context.Context, col *hbp.Column, preds []scan.WindowPred, o Options) (sum, cnt uint64, err error) {
	if core.SumOverflowPossible(col.K(), col.Len()) {
		return hbpFusedSumCtx128(ctx, col, preds, o)
	}
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	sums := make([]uint64, n)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		var s, c uint64
		if o.Wide {
			s, c = wide.HBPFusedSumCount(col, preds, lo, hi, &fss[w])
		} else {
			s, c = core.HBPFusedSumCount(col, preds, lo, hi, &fss[w])
		}
		sums[w] += s
		cnts[w] += c
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for w := 0; w < n; w++ {
		sum += sums[w]
		cnt += cnts[w]
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	return sum, cnt, nil
}

// VBPFusedCountCtx counts the tuples matching the predicate conjunction
// over a VBP column, honoring ctx. No aggregate words are touched.
func VBPFusedCountCtx(ctx context.Context, col *vbp.Column, preds []scan.WindowPred, o Options) (cnt uint64, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		cnts[w] += core.VBPFusedCount(col, preds, lo, hi, &fss[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for w := 0; w < n; w++ {
		cnt += cnts[w]
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	return cnt, nil
}

// HBPFusedCountCtx counts the tuples matching the predicate conjunction
// over an HBP column, honoring ctx.
func HBPFusedCountCtx(ctx context.Context, col *hbp.Column, preds []scan.WindowPred, o Options) (cnt uint64, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		cnts[w] += core.HBPFusedCount(col, preds, lo, hi, &fss[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for w := 0; w < n; w++ {
		cnt += cnts[w]
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	return cnt, nil
}

// VBPFusedExtremeCtx computes MIN (wantMin) or MAX of the tuples matching
// the predicate conjunction over a VBP column, honoring ctx. The selected
// tuple count is returned alongside; cnt == 0 means nothing matched and v
// is meaningless. Cache-served segments contribute via per-worker scalar
// bests, merged with the reconstructed fold finalists at the end (the
// fold identities are neutral whenever cnt > 0).
func VBPFusedExtremeCtx(ctx context.Context, col *vbp.Column, preds []scan.WindowPred, o Options, wantMin bool) (v uint64, cnt uint64, err error) {
	ws, start := o.statsBegin()
	k := col.K()
	nseg := col.NumSegments()
	n := o.threads()
	var temps [][]uint64
	var wideTemps []wide.VBPExtremeTemps
	if o.Wide {
		wideTemps = make([]wide.VBPExtremeTemps, n)
		for w := range wideTemps {
			wideTemps[w] = wide.NewVBPExtremeTemps(k, wantMin)
		}
	} else {
		temps = make([][]uint64, n)
		for w := range temps {
			temps[w] = core.NewVBPExtremeTemp(k, wantMin)
		}
	}
	bests := make([]uint64, n)
	anys := make([]bool, n)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	used, err := forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		var b, c uint64
		var a bool
		if o.Wide {
			b, a, c = wide.VBPFusedFoldExtreme(col, preds, &wideTemps[w], wantMin, lo, hi, &fss[w])
		} else {
			b, a, c = core.VBPFusedFoldExtreme(col, preds, temps[w], wantMin, lo, hi, &fss[w])
		}
		if a && (!anys[w] || wantMin && b < bests[w] || !wantMin && b > bests[w]) {
			bests[w] = b
			anys[w] = true
		}
		cnts[w] += c
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for w := 0; w < n; w++ {
		cnt += cnts[w]
	}
	if cnt == 0 {
		o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
		return 0, 0, nil
	}
	if o.Wide {
		// Flatten the per-worker lane temps: each worker folded four
		// independent SLOTMIN/SLOTMAX instances.
		flat := make([][]uint64, 0, 4*used)
		for w := 0; w < used; w++ {
			flat = append(flat, wideTemps[w][:]...)
		}
		v = core.VBPFinishExtreme(flat, k, wantMin)
	} else {
		v = core.VBPFinishExtreme(temps[:used], k, wantMin)
	}
	for w := 0; w < used; w++ {
		if anys[w] && (wantMin && bests[w] < v || !wantMin && bests[w] > v) {
			v = bests[w]
		}
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	return v, cnt, nil
}

// HBPFusedExtremeCtx computes MIN (wantMin) or MAX of the tuples matching
// the predicate conjunction over an HBP column, honoring ctx; cnt == 0
// means nothing matched.
func HBPFusedExtremeCtx(ctx context.Context, col *hbp.Column, preds []scan.WindowPred, o Options, wantMin bool) (v uint64, cnt uint64, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	var temps [][]uint64
	var wideTemps []wide.HBPExtremeTemps
	if o.Wide {
		wideTemps = make([]wide.HBPExtremeTemps, n)
		for w := range wideTemps {
			wideTemps[w] = wide.NewHBPExtremeTemps(col, wantMin)
		}
	} else {
		temps = make([][]uint64, n)
		for w := range temps {
			temps[w] = core.NewHBPExtremeTemp(col, wantMin)
		}
	}
	bests := make([]uint64, n)
	anys := make([]bool, n)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	used, err := forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		var b, c uint64
		var a bool
		if o.Wide {
			b, a, c = wide.HBPFusedFoldExtreme(col, preds, &wideTemps[w], wantMin, lo, hi, &fss[w])
		} else {
			b, a, c = core.HBPFusedFoldExtreme(col, preds, temps[w], wantMin, lo, hi, &fss[w])
		}
		if a && (!anys[w] || wantMin && b < bests[w] || !wantMin && b > bests[w]) {
			bests[w] = b
			anys[w] = true
		}
		cnts[w] += c
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for w := 0; w < n; w++ {
		cnt += cnts[w]
	}
	if cnt == 0 {
		o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
		return 0, 0, nil
	}
	if o.Wide {
		flat := make([][]uint64, 0, 4*used)
		for w := 0; w < used; w++ {
			flat = append(flat, wideTemps[w][:]...)
		}
		v = core.HBPFinishExtreme(col, flat, wantMin)
	} else {
		v = core.HBPFinishExtreme(col, temps[:used], wantMin)
	}
	for w := 0; w < used; w++ {
		if anys[w] && (wantMin && bests[w] < v || !wantMin && bests[w] > v) {
			v = bests[w]
		}
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
	return v, cnt, nil
}

// VBPFusedRankCtx computes a rank statistic of the tuples matching the
// predicate conjunction over a VBP column, honoring ctx. The candidate
// vectors are built by the fused pass (no bitmap); rankOf maps the
// selected tuple count u to the 1-based rank to extract (MEDIAN passes
// (u+1)/2) and reports whether a rank is wanted at all. The radix descent
// then runs the same per-bit rendezvous as VBPRankCtx; with o.Wide the
// count and refine rounds run the wide kernels (the candidate-building
// fused pass stays 64-bit — it touches no aggregate words).
func VBPFusedRankCtx(ctx context.Context, col *vbp.Column, preds []scan.WindowPred, rankOf func(u uint64) (uint64, bool), o Options) (val, cnt uint64, ok bool, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	v := make([]uint64, nseg)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		cnts[w] += core.VBPFusedCandidates(col, preds, v, lo, hi, &fss[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, false, err
	}
	var u uint64
	for w := 0; w < n; w++ {
		u += cnts[w]
	}
	cnt = u
	r, want := rankOf(u)
	if !want || r == 0 || r > u {
		o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
		return 0, cnt, false, nil
	}
	var extra metrics.ExecStats
	if ws != nil {
		extra.SegmentsAggregated = core.VBPLiveCandidates(v, 0, nseg)
	}
	k := col.K()
	partials := make([]uint64, n)
	var m uint64
	for p := 0; p < k; p++ {
		for i := range partials {
			partials[i] = 0
		}
		_, err := forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
			t0 := statsNow(ws)
			if o.Wide {
				partials[w] += wide.VBPRankCountRange(col, v, p, lo, hi)
			} else {
				partials[w] += core.VBPRankCount(col, v, p, lo, hi)
			}
			if ws != nil {
				// Charge the whole round here: refine reads the same
				// bit-position word for the same live segments.
				vbpCollectRank(ws, w, v, lo, hi, t0)
			}
			return nil
		})
		if err != nil {
			return 0, 0, false, err
		}
		var c uint64
		for _, pc := range partials {
			c += pc
		}
		keepOnes := u-c < r
		if keepOnes {
			m |= 1 << uint(k-1-p)
			r -= u - c
			u = c
		} else {
			u -= c
		}
		extra.RadixRounds++
		_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
			t0 := statsNow(ws)
			if o.Wide {
				wide.VBPRankRefineRange(col, v, p, keepOnes, lo, hi)
			} else {
				core.VBPRankRefine(col, v, p, keepOnes, lo, hi)
			}
			if ws != nil {
				busyOnly(ws, w, t0)
			}
			return nil
		})
		if err != nil {
			return 0, 0, false, err
		}
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), extra)
	return m, cnt, true, nil
}

// HBPFusedRankCtx computes a rank statistic of the tuples matching the
// predicate conjunction over an HBP column, honoring ctx; see
// VBPFusedRankCtx for the rankOf contract. The radix descent runs the
// same per-chunk histogram rendezvous as HBPRankCtx; with o.Wide the
// refine rounds run the wide kernel (histograms have no wide variant).
func HBPFusedRankCtx(ctx context.Context, col *hbp.Column, preds []scan.WindowPred, rankOf func(u uint64) (uint64, bool), o Options) (val, cnt uint64, ok bool, err error) {
	ws, start := o.statsBegin()
	nseg := col.NumSegments()
	n := o.threads()
	v := make([]uint64, nseg)
	cnts := make([]uint64, n)
	fss := make([]core.FusedStats, n)
	_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
		t0 := statsNow(ws)
		cnts[w] += core.HBPFusedCandidates(col, preds, v, lo, hi, &fss[w])
		if ws != nil {
			busyOnly(ws, w, t0)
		}
		return nil
	})
	if err != nil {
		return 0, 0, false, err
	}
	var u uint64
	for w := 0; w < n; w++ {
		u += cnts[w]
	}
	cnt = u
	r, want := rankOf(u)
	if !want || r == 0 || r > u {
		o.fusedStatsEnd(ws, start, fss, len(preds), metrics.ExecStats{})
		return 0, cnt, false, nil
	}
	var extra metrics.ExecStats
	if ws != nil {
		var live uint64
		for seg := 0; seg < nseg; seg++ {
			if v[seg] != 0 {
				live++
			}
		}
		extra.SegmentsAggregated = live
	}
	b := col.NumGroups()
	tau := col.Tau()
	chunks, histBits := core.HBPRankChunks(tau, u)

	workerHists := make([][]uint64, n)
	for w := range workerHists {
		workerHists[w] = make([]uint64, 1<<uint(histBits))
	}
	var m uint64
	for g := 0; g < b; g++ {
		for ci, ch := range chunks {
			shift, width := ch[0], ch[1]
			bins := 1 << uint(width)
			last := g == b-1 && ci == len(chunks)-1
			// Histograms are zeroed here, not inside the worker body: a
			// worker sees its range in workerBlock slices and must
			// accumulate across them.
			for w := range workerHists {
				h := workerHists[w][:bins]
				for i := range h {
					h[i] = 0
				}
			}
			used, err := forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
				t0 := statsNow(ws)
				core.HBPHistogramChunk(col, v, g, shift, width, lo, hi, workerHists[w][:bins])
				if ws != nil {
					// Charge the whole round here (histogram plus, unless
					// this is the final round, the refine pass over the
					// same live sub-segments).
					factor := uint64(2)
					if last {
						factor = 1
					}
					hbpCollectRank(ws, w, col, v, factor, lo, hi, t0)
				}
				return nil
			})
			if err != nil {
				return 0, 0, false, err
			}
			// Merge worker histograms and locate the bin containing rank r.
			var cum uint64
			bin := bins - 1
			for i := 0; i < bins; i++ {
				var h uint64
				for w := 0; w < used; w++ {
					h += workerHists[w][i]
				}
				if cum+h >= r {
					bin = i
					break
				}
				cum += h
			}
			r -= cum
			m = m<<uint(width) | uint64(bin)
			extra.RadixRounds++
			if last {
				break
			}
			_, err = forEachRangeErr(ctx, nseg, n, func(w, lo, hi int) error {
				t0 := statsNow(ws)
				if o.Wide {
					wide.HBPRankRefineChunkRange(col, v, g, shift, width, uint64(bin), lo, hi)
				} else {
					core.HBPRankRefineChunk(col, v, g, shift, width, uint64(bin), lo, hi)
				}
				if ws != nil {
					busyOnly(ws, w, t0)
				}
				return nil
			})
			if err != nil {
				return 0, 0, false, err
			}
		}
	}
	o.fusedStatsEnd(ws, start, fss, len(preds), extra)
	return m, cnt, true, nil
}
